file(REMOVE_RECURSE
  "CMakeFiles/compressor_tool.dir/compressor_tool.cpp.o"
  "CMakeFiles/compressor_tool.dir/compressor_tool.cpp.o.d"
  "compressor_tool"
  "compressor_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressor_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

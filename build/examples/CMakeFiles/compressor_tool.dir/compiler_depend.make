# Empty compiler generated dependencies file for compressor_tool.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mobile_code.dir/mobile_code.cpp.o"
  "CMakeFiles/mobile_code.dir/mobile_code.cpp.o.d"
  "mobile_code"
  "mobile_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

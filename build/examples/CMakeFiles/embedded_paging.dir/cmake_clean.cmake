file(REMOVE_RECURSE
  "CMakeFiles/embedded_paging.dir/embedded_paging.cpp.o"
  "CMakeFiles/embedded_paging.dir/embedded_paging.cpp.o.d"
  "embedded_paging"
  "embedded_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for embedded_paging.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_brisc_ablation.
# This may be replaced when dependencies are built.

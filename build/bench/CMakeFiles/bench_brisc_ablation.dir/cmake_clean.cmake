file(REMOVE_RECURSE
  "CMakeFiles/bench_brisc_ablation.dir/bench_brisc_ablation.cpp.o"
  "CMakeFiles/bench_brisc_ablation.dir/bench_brisc_ablation.cpp.o.d"
  "bench_brisc_ablation"
  "bench_brisc_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_brisc_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_working_set.dir/bench_working_set.cpp.o"
  "CMakeFiles/bench_working_set.dir/bench_working_set.cpp.o.d"
  "bench_working_set"
  "bench_working_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_working_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

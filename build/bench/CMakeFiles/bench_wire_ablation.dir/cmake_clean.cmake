file(REMOVE_RECURSE
  "CMakeFiles/bench_wire_ablation.dir/bench_wire_ablation.cpp.o"
  "CMakeFiles/bench_wire_ablation.dir/bench_wire_ablation.cpp.o.d"
  "bench_wire_ablation"
  "bench_wire_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wire_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_detune_table3.dir/bench_detune_table3.cpp.o"
  "CMakeFiles/bench_detune_table3.dir/bench_detune_table3.cpp.o.d"
  "bench_detune_table3"
  "bench_detune_table3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detune_table3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_brisc_table2.cpp" "bench/CMakeFiles/bench_brisc_table2.dir/bench_brisc_table2.cpp.o" "gcc" "bench/CMakeFiles/bench_brisc_table2.dir/bench_brisc_table2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/ccomp_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccomp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/native/CMakeFiles/ccomp_native.dir/DependInfo.cmake"
  "/root/repo/build/src/brisc/CMakeFiles/ccomp_brisc.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/ccomp_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/ccomp_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/ccomp_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ccomp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ccomp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/flate/CMakeFiles/ccomp_flate.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccomp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for bench_wire_table1.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_brisc.dir/test_brisc.cpp.o"
  "CMakeFiles/test_brisc.dir/test_brisc.cpp.o.d"
  "test_brisc"
  "test_brisc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_brisc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

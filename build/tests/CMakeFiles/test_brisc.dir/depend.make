# Empty dependencies file for test_brisc.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_flate.
# This may be replaced when dependencies are built.

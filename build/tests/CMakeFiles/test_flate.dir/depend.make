# Empty dependencies file for test_flate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_flate.dir/test_flate.cpp.o"
  "CMakeFiles/test_flate.dir/test_flate.cpp.o.d"
  "test_flate"
  "test_flate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

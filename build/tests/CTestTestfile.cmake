# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_pipeline "/root/repo/build/tests/test_pipeline")
set_tests_properties(test_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;ccomp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_support "/root/repo/build/tests/test_support")
set_tests_properties(test_support PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;13;ccomp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_flate "/root/repo/build/tests/test_flate")
set_tests_properties(test_flate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;14;ccomp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_wire "/root/repo/build/tests/test_wire")
set_tests_properties(test_wire PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;15;ccomp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_brisc "/root/repo/build/tests/test_brisc")
set_tests_properties(test_brisc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;16;ccomp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_corpus "/root/repo/build/tests/test_corpus")
set_tests_properties(test_corpus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;17;ccomp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_vm "/root/repo/build/tests/test_vm")
set_tests_properties(test_vm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;18;ccomp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_minic "/root/repo/build/tests/test_minic")
set_tests_properties(test_minic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;19;ccomp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ir "/root/repo/build/tests/test_ir")
set_tests_properties(test_ir PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;20;ccomp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_native "/root/repo/build/tests/test_native")
set_tests_properties(test_native PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;21;ccomp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;22;ccomp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_codegen "/root/repo/build/tests/test_codegen")
set_tests_properties(test_codegen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;23;ccomp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_props "/root/repo/build/tests/test_props")
set_tests_properties(test_props PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;24;ccomp_test;/root/repo/tests/CMakeLists.txt;0;")

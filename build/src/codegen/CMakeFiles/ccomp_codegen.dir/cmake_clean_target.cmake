file(REMOVE_RECURSE
  "libccomp_codegen.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ccomp_codegen.dir/Codegen.cpp.o"
  "CMakeFiles/ccomp_codegen.dir/Codegen.cpp.o.d"
  "libccomp_codegen.a"
  "libccomp_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccomp_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ccomp_codegen.
# This may be replaced when dependencies are built.

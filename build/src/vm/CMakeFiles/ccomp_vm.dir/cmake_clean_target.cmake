file(REMOVE_RECURSE
  "libccomp_vm.a"
)

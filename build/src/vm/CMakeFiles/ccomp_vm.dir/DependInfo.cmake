
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/Asm.cpp" "src/vm/CMakeFiles/ccomp_vm.dir/Asm.cpp.o" "gcc" "src/vm/CMakeFiles/ccomp_vm.dir/Asm.cpp.o.d"
  "/root/repo/src/vm/Encode.cpp" "src/vm/CMakeFiles/ccomp_vm.dir/Encode.cpp.o" "gcc" "src/vm/CMakeFiles/ccomp_vm.dir/Encode.cpp.o.d"
  "/root/repo/src/vm/ISA.cpp" "src/vm/CMakeFiles/ccomp_vm.dir/ISA.cpp.o" "gcc" "src/vm/CMakeFiles/ccomp_vm.dir/ISA.cpp.o.d"
  "/root/repo/src/vm/Machine.cpp" "src/vm/CMakeFiles/ccomp_vm.dir/Machine.cpp.o" "gcc" "src/vm/CMakeFiles/ccomp_vm.dir/Machine.cpp.o.d"
  "/root/repo/src/vm/Program.cpp" "src/vm/CMakeFiles/ccomp_vm.dir/Program.cpp.o" "gcc" "src/vm/CMakeFiles/ccomp_vm.dir/Program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ccomp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

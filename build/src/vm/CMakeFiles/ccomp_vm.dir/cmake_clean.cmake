file(REMOVE_RECURSE
  "CMakeFiles/ccomp_vm.dir/Asm.cpp.o"
  "CMakeFiles/ccomp_vm.dir/Asm.cpp.o.d"
  "CMakeFiles/ccomp_vm.dir/Encode.cpp.o"
  "CMakeFiles/ccomp_vm.dir/Encode.cpp.o.d"
  "CMakeFiles/ccomp_vm.dir/ISA.cpp.o"
  "CMakeFiles/ccomp_vm.dir/ISA.cpp.o.d"
  "CMakeFiles/ccomp_vm.dir/Machine.cpp.o"
  "CMakeFiles/ccomp_vm.dir/Machine.cpp.o.d"
  "CMakeFiles/ccomp_vm.dir/Program.cpp.o"
  "CMakeFiles/ccomp_vm.dir/Program.cpp.o.d"
  "libccomp_vm.a"
  "libccomp_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccomp_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ccomp_vm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ccomp_wire.dir/Wire.cpp.o"
  "CMakeFiles/ccomp_wire.dir/Wire.cpp.o.d"
  "libccomp_wire.a"
  "libccomp_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccomp_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libccomp_wire.a"
)

# Empty compiler generated dependencies file for ccomp_wire.
# This may be replaced when dependencies are built.

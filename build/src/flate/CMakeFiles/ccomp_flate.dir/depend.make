# Empty dependencies file for ccomp_flate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ccomp_flate.dir/Flate.cpp.o"
  "CMakeFiles/ccomp_flate.dir/Flate.cpp.o.d"
  "libccomp_flate.a"
  "libccomp_flate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccomp_flate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libccomp_flate.a"
)

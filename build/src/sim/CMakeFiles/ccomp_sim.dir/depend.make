# Empty dependencies file for ccomp_sim.
# This may be replaced when dependencies are built.

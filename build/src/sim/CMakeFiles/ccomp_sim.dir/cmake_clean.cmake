file(REMOVE_RECURSE
  "CMakeFiles/ccomp_sim.dir/Paging.cpp.o"
  "CMakeFiles/ccomp_sim.dir/Paging.cpp.o.d"
  "libccomp_sim.a"
  "libccomp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccomp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libccomp_sim.a"
)

file(REMOVE_RECURSE
  "libccomp_minic.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ccomp_minic.dir/Compile.cpp.o"
  "CMakeFiles/ccomp_minic.dir/Compile.cpp.o.d"
  "CMakeFiles/ccomp_minic.dir/Lexer.cpp.o"
  "CMakeFiles/ccomp_minic.dir/Lexer.cpp.o.d"
  "CMakeFiles/ccomp_minic.dir/Types.cpp.o"
  "CMakeFiles/ccomp_minic.dir/Types.cpp.o.d"
  "libccomp_minic.a"
  "libccomp_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccomp_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ccomp_minic.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ccomp_support.
# This may be replaced when dependencies are built.

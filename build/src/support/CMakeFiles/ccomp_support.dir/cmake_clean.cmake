file(REMOVE_RECURSE
  "CMakeFiles/ccomp_support.dir/Huffman.cpp.o"
  "CMakeFiles/ccomp_support.dir/Huffman.cpp.o.d"
  "libccomp_support.a"
  "libccomp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccomp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

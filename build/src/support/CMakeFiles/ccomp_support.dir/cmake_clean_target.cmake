file(REMOVE_RECURSE
  "libccomp_support.a"
)

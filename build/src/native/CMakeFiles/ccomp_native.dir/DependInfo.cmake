
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/native/Threaded.cpp" "src/native/CMakeFiles/ccomp_native.dir/Threaded.cpp.o" "gcc" "src/native/CMakeFiles/ccomp_native.dir/Threaded.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/brisc/CMakeFiles/ccomp_brisc.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ccomp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccomp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

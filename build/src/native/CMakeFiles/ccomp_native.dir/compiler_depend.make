# Empty compiler generated dependencies file for ccomp_native.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ccomp_native.dir/Threaded.cpp.o"
  "CMakeFiles/ccomp_native.dir/Threaded.cpp.o.d"
  "libccomp_native.a"
  "libccomp_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccomp_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

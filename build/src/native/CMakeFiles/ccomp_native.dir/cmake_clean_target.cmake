file(REMOVE_RECURSE
  "libccomp_native.a"
)

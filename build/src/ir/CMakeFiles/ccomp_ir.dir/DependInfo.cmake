
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/IR.cpp" "src/ir/CMakeFiles/ccomp_ir.dir/IR.cpp.o" "gcc" "src/ir/CMakeFiles/ccomp_ir.dir/IR.cpp.o.d"
  "/root/repo/src/ir/Link.cpp" "src/ir/CMakeFiles/ccomp_ir.dir/Link.cpp.o" "gcc" "src/ir/CMakeFiles/ccomp_ir.dir/Link.cpp.o.d"
  "/root/repo/src/ir/Opcode.cpp" "src/ir/CMakeFiles/ccomp_ir.dir/Opcode.cpp.o" "gcc" "src/ir/CMakeFiles/ccomp_ir.dir/Opcode.cpp.o.d"
  "/root/repo/src/ir/Text.cpp" "src/ir/CMakeFiles/ccomp_ir.dir/Text.cpp.o" "gcc" "src/ir/CMakeFiles/ccomp_ir.dir/Text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ccomp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

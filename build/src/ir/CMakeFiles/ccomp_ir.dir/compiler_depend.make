# Empty compiler generated dependencies file for ccomp_ir.
# This may be replaced when dependencies are built.

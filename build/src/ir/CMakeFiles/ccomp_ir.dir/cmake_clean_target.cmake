file(REMOVE_RECURSE
  "libccomp_ir.a"
)

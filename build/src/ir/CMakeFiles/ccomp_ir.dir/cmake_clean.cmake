file(REMOVE_RECURSE
  "CMakeFiles/ccomp_ir.dir/IR.cpp.o"
  "CMakeFiles/ccomp_ir.dir/IR.cpp.o.d"
  "CMakeFiles/ccomp_ir.dir/Link.cpp.o"
  "CMakeFiles/ccomp_ir.dir/Link.cpp.o.d"
  "CMakeFiles/ccomp_ir.dir/Opcode.cpp.o"
  "CMakeFiles/ccomp_ir.dir/Opcode.cpp.o.d"
  "CMakeFiles/ccomp_ir.dir/Text.cpp.o"
  "CMakeFiles/ccomp_ir.dir/Text.cpp.o.d"
  "libccomp_ir.a"
  "libccomp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccomp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

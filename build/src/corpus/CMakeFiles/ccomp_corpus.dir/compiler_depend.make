# Empty compiler generated dependencies file for ccomp_corpus.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libccomp_corpus.a"
)

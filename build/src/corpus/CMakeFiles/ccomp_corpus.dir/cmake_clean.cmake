file(REMOVE_RECURSE
  "CMakeFiles/ccomp_corpus.dir/Programs.cpp.o"
  "CMakeFiles/ccomp_corpus.dir/Programs.cpp.o.d"
  "CMakeFiles/ccomp_corpus.dir/Synth.cpp.o"
  "CMakeFiles/ccomp_corpus.dir/Synth.cpp.o.d"
  "libccomp_corpus.a"
  "libccomp_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccomp_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ccomp_brisc.dir/Compress.cpp.o"
  "CMakeFiles/ccomp_brisc.dir/Compress.cpp.o.d"
  "CMakeFiles/ccomp_brisc.dir/CostModel.cpp.o"
  "CMakeFiles/ccomp_brisc.dir/CostModel.cpp.o.d"
  "CMakeFiles/ccomp_brisc.dir/File.cpp.o"
  "CMakeFiles/ccomp_brisc.dir/File.cpp.o.d"
  "CMakeFiles/ccomp_brisc.dir/Interp.cpp.o"
  "CMakeFiles/ccomp_brisc.dir/Interp.cpp.o.d"
  "CMakeFiles/ccomp_brisc.dir/Pattern.cpp.o"
  "CMakeFiles/ccomp_brisc.dir/Pattern.cpp.o.d"
  "libccomp_brisc.a"
  "libccomp_brisc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccomp_brisc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

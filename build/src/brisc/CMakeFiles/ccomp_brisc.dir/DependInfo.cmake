
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/brisc/Compress.cpp" "src/brisc/CMakeFiles/ccomp_brisc.dir/Compress.cpp.o" "gcc" "src/brisc/CMakeFiles/ccomp_brisc.dir/Compress.cpp.o.d"
  "/root/repo/src/brisc/CostModel.cpp" "src/brisc/CMakeFiles/ccomp_brisc.dir/CostModel.cpp.o" "gcc" "src/brisc/CMakeFiles/ccomp_brisc.dir/CostModel.cpp.o.d"
  "/root/repo/src/brisc/File.cpp" "src/brisc/CMakeFiles/ccomp_brisc.dir/File.cpp.o" "gcc" "src/brisc/CMakeFiles/ccomp_brisc.dir/File.cpp.o.d"
  "/root/repo/src/brisc/Interp.cpp" "src/brisc/CMakeFiles/ccomp_brisc.dir/Interp.cpp.o" "gcc" "src/brisc/CMakeFiles/ccomp_brisc.dir/Interp.cpp.o.d"
  "/root/repo/src/brisc/Pattern.cpp" "src/brisc/CMakeFiles/ccomp_brisc.dir/Pattern.cpp.o" "gcc" "src/brisc/CMakeFiles/ccomp_brisc.dir/Pattern.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/ccomp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccomp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

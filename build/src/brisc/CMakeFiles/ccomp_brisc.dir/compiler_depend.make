# Empty compiler generated dependencies file for ccomp_brisc.
# This may be replaced when dependencies are built.

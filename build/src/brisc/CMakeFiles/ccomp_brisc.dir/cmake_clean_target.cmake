file(REMOVE_RECURSE
  "libccomp_brisc.a"
)

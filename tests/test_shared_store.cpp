//===- tests/test_shared_store.cpp - Process-wide frame registry ---------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The multi-tenant contract: N CodeStore views over one shared
// FrameRegistry decode each frame exactly once process-wide and produce
// byte-identical execution to private stores at every chain, page
// granularity, and budget; tenants of different modules never share
// frames; pins and stats stay per tenant; and a doctored content-hash
// claim is refused at the shared-registry door while private loads
// stay permissive (frame corruption surfaces at fault, as ever).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "corpus/Corpus.h"
#include "pipeline/Codec.h"
#include "pipeline/Pipeline.h"
#include "store/CodeStore.h"
#include "store/FrameRegistry.h"
#include "store/Resolver.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <thread>

using namespace ccomp;
using namespace ccomp::store;
using namespace ccomp::test;

namespace {

std::unique_ptr<CodeStore> mustBuildStore(const vm::VMProgram &P,
                                          const std::string &Chain,
                                          StoreOptions Opts) {
  std::string Err;
  std::unique_ptr<CodeStore> S = CodeStore::build(P, Chain, Opts, Err);
  EXPECT_NE(S, nullptr) << Chain << ": " << Err;
  return S;
}

std::unique_ptr<CodeStore> mustLoadTenant(const std::vector<uint8_t> &Image,
                                          std::shared_ptr<FrameRegistry> Reg) {
  StoreOptions Opts;
  Opts.SharedRegistry = std::move(Reg);
  Result<std::unique_ptr<CodeStore>> R = CodeStore::tryLoad(Image, Opts);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error().message());
  return R.ok() ? R.take() : nullptr;
}

// A registered passthrough codec whose decode can be slowed on demand,
// to widen the cross-tenant single-flight race window.
std::atomic<bool> SlowDecode{false};

class SlowRawCodec final : public pipeline::Codec {
public:
  const char *name() const override { return "slow-raw"; }
  const char *description() const override {
    return "test passthrough with a switchable decode delay";
  }
  pipeline::PayloadKind payloadKind() const override {
    return pipeline::PayloadKind::Raw;
  }

protected:
  std::vector<uint8_t> compressImpl(ByteSpan P) const override {
    return P.toVector();
  }
  Result<std::vector<uint8_t>> tryDecompressImpl(ByteSpan F) const override {
    if (SlowDecode.load(std::memory_order_relaxed))
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return F.toVector();
  }
};

void ensureSlowRawRegistered() {
  static bool Done = [] {
    pipeline::Registry::instance().add(std::make_unique<SlowRawCodec>());
    return true;
  }();
  (void)Done;
}

const char *const PerFunctionChains[] = {"flate", "vm-compact", "brisc",
                                         "brisc+flate", "vm-compact+flate"};

/// Returns \p Image with byte range [6, 14) of its *manifest frame*
/// (the fixed offset of the v3 content-hash claim) XORed, then
/// repacked. Only the claim changes; the function frames — and thus
/// the recomputable content hash — stay intact.
std::vector<uint8_t> doctorHashClaim(const std::vector<uint8_t> &Image) {
  Result<pipeline::Container> C = pipeline::tryUnpackContainer(Image);
  EXPECT_TRUE(C.ok());
  pipeline::Container Box = C.take();
  EXPECT_GE(Box.Frames[0].size(), 15u);
  for (size_t I = 6; I != 14; ++I)
    Box.Frames[0][I] ^= 0xA5;
  return pipeline::packContainer(Box.ChainSpec, Box.Frames);
}

/// Rewrites \p Image's v3 manifest to the legacy v1/v2 layout (drops
/// the flags byte and the hash claim), as a container written by an
/// older build would look.
std::vector<uint8_t> downgradeManifest(const std::vector<uint8_t> &Image) {
  Result<pipeline::Container> C = pipeline::tryUnpackContainer(Image);
  EXPECT_TRUE(C.ok());
  pipeline::Container Box = C.take();
  std::vector<uint8_t> &M = Box.Frames[0];
  EXPECT_GE(M.size(), 15u);
  // v3: magic u32 | version u8 | flags u8 | hash u64 | body...
  // v2: magic u32 | version u8 |                       body...
  bool Paged = (M[5] & 1) != 0;
  std::vector<uint8_t> Legacy(M.begin(), M.begin() + 4);
  Legacy.push_back(Paged ? 2 : 1);
  Legacy.insert(Legacy.end(), M.begin() + 14, M.end());
  M = std::move(Legacy);
  return pipeline::packContainer(Box.ChainSpec, Box.Frames);
}

vm::RunResult mustRun(CodeStore &S) {
  vm::RunResult R = runFromStore(S);
  EXPECT_TRUE(R.Ok) << R.Trap;
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Sharing: one decode process-wide
//===----------------------------------------------------------------------===//

// 8 threads spread over 4 tenant views of one container fault every
// frame concurrently; the registry's single-flight must decode each
// frame exactly once across all tenants and threads. The slow codec
// widens the race window; run under tsan this is also the data-race
// certificate for the registry fault path.
TEST(SharedStore, ConcurrentTenantsDecodeEachFrameOnce) {
  ensureSlowRawRegistered();
  vm::VMProgram P = buildVM(syntheticSource(6));
  StoreOptions BO;
  BO.PageTargetBytes = 256; // Page granularity: more frames, more races.
  std::unique_ptr<CodeStore> Built = mustBuildStore(P, "slow-raw", BO);
  ASSERT_NE(Built, nullptr);
  std::vector<uint8_t> Image = Built->save();

  RegistryOptions RO;
  RO.CacheBudgetBytes = 64u << 20; // No eviction: decode counts are exact.
  auto Reg = std::make_shared<FrameRegistry>(RO);
  constexpr unsigned NumTenants = 4;
  constexpr unsigned NumThreads = 8;
  std::vector<std::unique_ptr<CodeStore>> Tenants;
  for (unsigned I = 0; I != NumTenants; ++I) {
    Tenants.push_back(mustLoadTenant(Image, Reg));
    ASSERT_NE(Tenants.back(), nullptr);
  }
  const uint32_t Funcs = Tenants[0]->functionCount();

  SlowDecode.store(true, std::memory_order_relaxed);
  std::atomic<unsigned> Failures{0};
  {
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&, T] {
        CodeStore &S = *Tenants[T % NumTenants];
        for (uint32_t Fn = 0; Fn != Funcs; ++Fn)
          if (!S.fault(Fn).ok())
            Failures.fetch_add(1, std::memory_order_relaxed);
      });
    for (std::thread &T : Threads)
      T.join();
  }
  SlowDecode.store(false, std::memory_order_relaxed);

  EXPECT_EQ(Failures.load(), 0u);
  RegistryStats RS = Reg->stats();
  EXPECT_EQ(RS.Decodes, Tenants[0]->frameCount())
      << "a shared frame decoded more than once process-wide";
  EXPECT_EQ(RS.DecodeErrors, 0u);
  EXPECT_EQ(RS.Modules, 1u);

  // Traffic adds up per tenant: every fault was a hit, a miss, or a
  // single-flight wait, and only frameCount of them across the whole
  // process were misses that led decodes.
  uint64_t Misses = 0;
  for (auto &S : Tenants)
    Misses += S->stats().Misses;
  EXPECT_GE(Misses, Tenants[0]->frameCount());
}

//===----------------------------------------------------------------------===//
// Differential: shared == private, byte for byte
//===----------------------------------------------------------------------===//

// Every per-function chain x page granularity x budget extreme, run by
// 2 shared tenants and checked against the eager interpretation. A
// 1-byte budget makes the registry thrash (every fault re-decodes under
// contention); a huge one makes the first tenant decode for everybody.
TEST(SharedStore, SharedMatchesPrivateEverywhere) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok) << Eager.Trap;

  for (const char *Chain : PerFunctionChains) {
    for (size_t Target : {size_t(0), size_t(256)}) {
      for (size_t Budget : {size_t(1), size_t(64) << 20}) {
        StoreOptions BO;
        BO.PageTargetBytes = Target;
        std::unique_ptr<CodeStore> Built = mustBuildStore(P, Chain, BO);
        ASSERT_NE(Built, nullptr);
        std::vector<uint8_t> Image = Built->save();

        RegistryOptions RO;
        RO.CacheBudgetBytes = Budget;
        auto Reg = std::make_shared<FrameRegistry>(RO);
        std::unique_ptr<CodeStore> A = mustLoadTenant(Image, Reg);
        std::unique_ptr<CodeStore> B = mustLoadTenant(Image, Reg);
        ASSERT_NE(A, nullptr);
        ASSERT_NE(B, nullptr);
        for (CodeStore *S : {A.get(), B.get()}) {
          vm::RunResult R = mustRun(*S);
          EXPECT_EQ(R.Output, Eager.Output)
              << Chain << " target=" << Target << " budget=" << Budget;
          EXPECT_EQ(R.ExitCode, Eager.ExitCode);
          EXPECT_EQ(R.Steps, Eager.Steps);
        }
      }
    }
  }
}

// The economics claim, asserted at test granularity: under a budget
// that holds the whole module, the registry decode count after N
// tenants run is the same as after one — not N times it.
TEST(SharedStore, DecodeBillIndependentOfTenantCount) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  std::unique_ptr<CodeStore> Built =
      mustBuildStore(P, "brisc+flate", StoreOptions());
  ASSERT_NE(Built, nullptr);
  std::vector<uint8_t> Image = Built->save();

  uint64_t OneTenant = 0;
  for (unsigned N : {1u, 2u, 8u}) {
    RegistryOptions RO;
    RO.CacheBudgetBytes = 64u << 20;
    auto Reg = std::make_shared<FrameRegistry>(RO);
    std::vector<std::unique_ptr<CodeStore>> Tenants;
    for (unsigned I = 0; I != N; ++I) {
      Tenants.push_back(mustLoadTenant(Image, Reg));
      ASSERT_NE(Tenants.back(), nullptr);
      mustRun(*Tenants.back());
    }
    uint64_t Decodes = Reg->stats().Decodes;
    if (N == 1)
      OneTenant = Decodes;
    else
      EXPECT_EQ(Decodes, OneTenant) << N << " tenants";
    // Later tenants ride entirely on the first one's decodes.
    if (N > 1) {
      EXPECT_EQ(Tenants.back()->stats().Misses, 0u);
    }
  }
}

//===----------------------------------------------------------------------===//
// Isolation
//===----------------------------------------------------------------------===//

// Two different modules in one registry share the budget, never the
// frames: same frame ids, different container hashes, distinct decodes
// and distinct bodies.
TEST(SharedStore, DifferentModulesNeverShareFrames) {
  vm::VMProgram P1 = buildVM(syntheticSource(3));
  vm::VMProgram P2 = buildVM(syntheticSource(4));
  std::unique_ptr<CodeStore> B1 =
      mustBuildStore(P1, "brisc+flate", StoreOptions());
  std::unique_ptr<CodeStore> B2 =
      mustBuildStore(P2, "brisc+flate", StoreOptions());
  ASSERT_NE(B1, nullptr);
  ASSERT_NE(B2, nullptr);
  ASSERT_NE(B1->containerHash(), B2->containerHash());

  auto Reg = std::make_shared<FrameRegistry>();
  std::unique_ptr<CodeStore> A = mustLoadTenant(B1->save(), Reg);
  std::unique_ptr<CodeStore> B = mustLoadTenant(B2->save(), Reg);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(Reg->stats().Modules, 2u);

  Result<std::shared_ptr<const vm::VMFunction>> FA = A->fault(0);
  Result<std::shared_ptr<const vm::VMFunction>> FB = B->fault(0);
  ASSERT_TRUE(FA.ok());
  ASSERT_TRUE(FB.ok());
  // Same frame id, two decodes: the keys cannot collide across hashes.
  EXPECT_EQ(Reg->stats().Decodes, 2u);
  EXPECT_NE(FA.value().get(), FB.value().get());
}

// A same-hash registration with a different shape is a forged or
// corrupt manifest; the registry refuses it typed.
TEST(SharedStore, HashCollisionWithDifferentShapeRefused) {
  FrameRegistry Reg;
  ModuleIdent A;
  A.ChainSpec = "flate";
  A.FrameCount = 4;
  A.FuncCount = 4;
  Result<std::shared_ptr<ModuleHeat>> First = Reg.registerModule(0xBEEF, A);
  ASSERT_TRUE(First.ok());

  // Idempotent for the same shape — every tenant of a module registers.
  Result<std::shared_ptr<ModuleHeat>> Again = Reg.registerModule(0xBEEF, A);
  ASSERT_TRUE(Again.ok());
  EXPECT_EQ(First.value().get(), Again.value().get());

  ModuleIdent B = A;
  B.FrameCount = 5;
  Result<std::shared_ptr<ModuleHeat>> Bad = Reg.registerModule(0xBEEF, B);
  ASSERT_FALSE(Bad.ok());
  EXPECT_NE(Bad.error().message().find("collision"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Trust: the manifest's hash claim
//===----------------------------------------------------------------------===//

// A doctored v3 hash claim must not key into a shared registry (where
// it could alias another module), but a private store still loads and
// runs — its registry serves only itself, and the frames are intact.
TEST(SharedStore, DoctoredHashClaimRefusedSharedAcceptedPrivate) {
  vm::VMProgram P = buildVM(syntheticSource(4));
  std::unique_ptr<CodeStore> Built =
      mustBuildStore(P, "brisc+flate", StoreOptions());
  ASSERT_NE(Built, nullptr);
  std::vector<uint8_t> Doctored = doctorHashClaim(Built->save());

  StoreOptions Shared;
  Shared.SharedRegistry = std::make_shared<FrameRegistry>();
  Result<std::unique_ptr<CodeStore>> R = CodeStore::tryLoad(Doctored, Shared);
  ASSERT_FALSE(R.ok()) << "forged claim joined a shared registry";
  EXPECT_NE(R.error().message().find("hash"), std::string::npos);

  Result<std::unique_ptr<CodeStore>> Priv =
      CodeStore::tryLoad(Doctored, StoreOptions());
  ASSERT_TRUE(Priv.ok()) << Priv.error().message();
  vm::RunResult Run = mustRun(*Priv.value());
  EXPECT_EQ(Run.ExitCode, vm::runProgram(P).ExitCode);
}

// Legacy (pre-hash) containers on a source that cannot be re-hashed —
// an on-demand file — carry no trustworthy identity, so they are
// refused shared registration and accepted privately.
TEST(SharedStore, LegacyFileContainerRefusedSharedAcceptedPrivate) {
  vm::VMProgram P = buildVM(syntheticSource(4));
  std::unique_ptr<CodeStore> Built =
      mustBuildStore(P, "brisc+flate", StoreOptions());
  ASSERT_NE(Built, nullptr);
  std::vector<uint8_t> Legacy = downgradeManifest(Built->save());

  const std::string Path = testing::TempDir() + "ccomp_legacy_store.ccpk";
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(reinterpret_cast<const char *>(Legacy.data()),
              static_cast<std::streamsize>(Legacy.size()));
  }

  StoreOptions Shared;
  Shared.SharedRegistry = std::make_shared<FrameRegistry>();
  Result<std::unique_ptr<CodeStore>> R = CodeStore::tryOpenFile(Path, Shared);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("shared"), std::string::npos);

  Result<std::unique_ptr<CodeStore>> Priv =
      CodeStore::tryOpenFile(Path, StoreOptions());
  ASSERT_TRUE(Priv.ok()) << Priv.error().message();
  EXPECT_TRUE(mustRun(*Priv.value()).Ok);

  // The same legacy bytes *in memory* can be re-hashed, so they may
  // join a shared registry under their computed identity.
  Result<std::unique_ptr<CodeStore>> Mem = CodeStore::tryLoad(Legacy, Shared);
  ASSERT_TRUE(Mem.ok()) << Mem.error().message();

  // And a v3 container loaded from a file joins on its (trusted) claim,
  // landing on the same identity as the in-memory load.
  std::vector<uint8_t> V3 = Built->save();
  const std::string V3Path = testing::TempDir() + "ccomp_v3_store.ccpk";
  {
    std::ofstream Out(V3Path, std::ios::binary | std::ios::trunc);
    Out.write(reinterpret_cast<const char *>(V3.data()),
              static_cast<std::streamsize>(V3.size()));
  }
  Result<std::unique_ptr<CodeStore>> FromFile =
      CodeStore::tryOpenFile(V3Path, StoreOptions());
  ASSERT_TRUE(FromFile.ok()) << FromFile.error().message();
  EXPECT_EQ(FromFile.value()->containerHash(), Built->containerHash());
}

//===----------------------------------------------------------------------===//
// Stats attribution
//===----------------------------------------------------------------------===//

// Traffic is the tenant's; decodes are the registry's; one tenant's
// resetStats touches neither the other tenant nor the shared registry
// nor the pooled heat tables.
TEST(SharedStore, StatsAttributionAndResetIsolation) {
  vm::VMProgram P = buildVM(syntheticSource(4));
  std::unique_ptr<CodeStore> Built =
      mustBuildStore(P, "brisc+flate", StoreOptions());
  ASSERT_NE(Built, nullptr);
  std::vector<uint8_t> Image = Built->save();

  auto Reg = std::make_shared<FrameRegistry>();
  std::unique_ptr<CodeStore> A = mustLoadTenant(Image, Reg);
  std::unique_ptr<CodeStore> B = mustLoadTenant(Image, Reg);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_TRUE(A->sharesRegistry());
  EXPECT_EQ(&A->registry(), Reg.get());

  ASSERT_TRUE(A->fault(0).ok()); // A leads the decode...
  ASSERT_TRUE(B->fault(0).ok()); // ...B rides it.
  EXPECT_EQ(A->stats().Misses, 1u);
  EXPECT_EQ(A->stats().Hits, 0u);
  EXPECT_EQ(B->stats().Misses, 0u);
  EXPECT_EQ(B->stats().Hits, 1u);
  EXPECT_EQ(Reg->stats().Decodes, 1u);
  // Both tenants see the same registry-global decode/gauge side.
  EXPECT_EQ(A->stats().Decodes, 1u);
  EXPECT_EQ(B->stats().Decodes, 1u);
  EXPECT_EQ(A->stats().ResidentBytes, B->stats().ResidentBytes);
  // Heat pools across tenants: one demand touch each.
  EXPECT_EQ(A->frameHeat(0), 2u);
  EXPECT_EQ(B->frameHeat(0), 2u);

  A->resetStats();
  EXPECT_EQ(A->stats().Misses, 0u);
  EXPECT_EQ(B->stats().Hits, 1u) << "A's reset erased B's counters";
  EXPECT_EQ(Reg->stats().Decodes, 1u)
      << "a tenant reset cleared the shared registry";
  EXPECT_EQ(B->frameHeat(0), 2u) << "a tenant reset cooled shared heat";

  // The registry's own reset zeroes the decode bill but not the heat
  // tables or the gauges.
  Reg->resetStats();
  EXPECT_EQ(Reg->stats().Decodes, 0u);
  EXPECT_GT(Reg->stats().ResidentBytes, 0u);
  EXPECT_EQ(A->frameHeat(0), 2u);
  // And never a tenant's counters.
  EXPECT_EQ(B->stats().Hits, 1u);
}

//===----------------------------------------------------------------------===//
// Pins
//===----------------------------------------------------------------------===//

// Pins are per tenant: B unpinning a frame it never pinned is a no-op
// on A's pin, and two tenants pinning the same frame hold independent
// references — the frame stays pinned until *both* release.
TEST(SharedStore, PinsArePerTenant) {
  vm::VMProgram P = buildVM(syntheticSource(5));
  std::unique_ptr<CodeStore> Built =
      mustBuildStore(P, "brisc+flate", StoreOptions());
  ASSERT_NE(Built, nullptr);
  std::vector<uint8_t> Image = Built->save();

  RegistryOptions RO;
  RO.CacheBudgetBytes = 1; // Anything unpinned evicts on the next fault.
  RO.Shards = 1;
  auto Reg = std::make_shared<FrameRegistry>(RO);
  std::unique_ptr<CodeStore> A = mustLoadTenant(Image, Reg);
  std::unique_ptr<CodeStore> B = mustLoadTenant(Image, Reg);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);

  ASSERT_TRUE(A->pin(0).ok());
  ASSERT_TRUE(B->pin(0).ok());
  EXPECT_EQ(Reg->stats().PinnedFrames, 1u); // One entry, two references.

  B->unpin(1); // Never pinned: no-op.
  B->unpin(0); // Releases B's reference only.
  // Eviction pressure: fault everything else through the 1-byte budget.
  for (uint32_t Fn = 1; Fn != A->functionCount(); ++Fn)
    ASSERT_TRUE(A->fault(Fn).ok());
  EXPECT_TRUE(A->isResident(0)) << "A's pin did not survive B's unpin";

  A->unpin(0);
  for (uint32_t Fn = 1; Fn != A->functionCount(); ++Fn)
    ASSERT_TRUE(A->fault(Fn).ok());
  EXPECT_FALSE(A->isResident(0)) << "fully released frame never evicted";
  EXPECT_EQ(Reg->stats().PinnedFrames, 0u);
}

// A departing tenant releases its pins: frames a dead tenant pinned
// must not stay unevictable forever.
TEST(SharedStore, TenantDestructorReleasesItsPins) {
  vm::VMProgram P = buildVM(syntheticSource(5));
  std::unique_ptr<CodeStore> Built =
      mustBuildStore(P, "brisc+flate", StoreOptions());
  ASSERT_NE(Built, nullptr);
  std::vector<uint8_t> Image = Built->save();

  RegistryOptions RO;
  RO.CacheBudgetBytes = 1;
  RO.Shards = 1;
  auto Reg = std::make_shared<FrameRegistry>(RO);
  std::unique_ptr<CodeStore> A = mustLoadTenant(Image, Reg);
  std::unique_ptr<CodeStore> B = mustLoadTenant(Image, Reg);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);

  ASSERT_TRUE(A->pin(0).ok());
  EXPECT_EQ(Reg->stats().PinnedFrames, 1u);
  A.reset();
  EXPECT_EQ(Reg->stats().PinnedFrames, 0u);
  for (uint32_t Fn = 1; Fn != B->functionCount(); ++Fn)
    ASSERT_TRUE(B->fault(Fn).ok());
  EXPECT_FALSE(B->isResident(0)) << "a dead tenant's pin outlived it";
}

//===----------------------------------------------------------------------===//
// Configuration plumbing
//===----------------------------------------------------------------------===//

// A shared tenant reports the registry's budget, not its own (ignored)
// StoreOptions budget; a private store keeps the old contract.
TEST(SharedStore, BudgetComesFromTheRegistry) {
  vm::VMProgram P = buildVM(syntheticSource(3));
  std::unique_ptr<CodeStore> Built =
      mustBuildStore(P, "flate", StoreOptions());
  ASSERT_NE(Built, nullptr);
  std::vector<uint8_t> Image = Built->save();

  RegistryOptions RO;
  RO.CacheBudgetBytes = 12345;
  auto Reg = std::make_shared<FrameRegistry>(RO);
  StoreOptions Opts;
  Opts.CacheBudgetBytes = 999; // Ignored when shared.
  Opts.SharedRegistry = Reg;
  Result<std::unique_ptr<CodeStore>> S = CodeStore::tryLoad(Image, Opts);
  ASSERT_TRUE(S.ok());
  EXPECT_EQ(S.value()->cacheBudgetBytes(), 12345u);
  EXPECT_EQ(Reg->cacheBudgetBytes(), 12345u);

  StoreOptions Priv;
  Priv.CacheBudgetBytes = 777;
  Result<std::unique_ptr<CodeStore>> PS = CodeStore::tryLoad(Image, Priv);
  ASSERT_TRUE(PS.ok());
  EXPECT_FALSE(PS.value()->sharesRegistry());
  EXPECT_EQ(PS.value()->cacheBudgetBytes(), 777u);
}

// build() can also join a shared registry directly, and two builds of
// the same program over the same chain land on the same content hash —
// rebuild-level dedup.
TEST(SharedStore, BuildJoinsRegistryAndRebuildsShareIdentity) {
  vm::VMProgram P = buildVM(syntheticSource(4));
  auto Reg = std::make_shared<FrameRegistry>();
  StoreOptions Opts;
  Opts.SharedRegistry = Reg;
  std::unique_ptr<CodeStore> A = mustBuildStore(P, "brisc+flate", Opts);
  std::unique_ptr<CodeStore> B = mustBuildStore(P, "brisc+flate", Opts);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(A->containerHash(), B->containerHash());
  EXPECT_EQ(Reg->stats().Modules, 1u);

  ASSERT_TRUE(A->fault(0).ok());
  ASSERT_TRUE(B->fault(0).ok());
  EXPECT_EQ(Reg->stats().Decodes, 1u) << "rebuilt twins did not share";
}

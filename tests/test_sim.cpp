//===- tests/test_sim.cpp - Transport and paging simulators --------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/Paging.h"
#include "sim/Transport.h"
#include "support/PRNG.h"

#include "gtest/gtest.h"

using namespace ccomp;
using namespace ccomp::sim;

TEST(Transport, TransferTimes) {
  Link Modem = modem28k();
  // 28800 bits/s: 3600 bytes take 1 second plus latency.
  EXPECT_NEAR(Modem.transferSeconds(3600), 1.0 + Modem.LatencySeconds,
              1e-9);
  Link Lan = ethernet10M();
  EXPECT_LT(Lan.transferSeconds(100000), Modem.transferSeconds(100000));
  EXPECT_GT(Modem.transferSeconds(1), 0.0);
}

TEST(Transport, DeliveryTotals) {
  Delivery D = deliver(ethernet10M(), 1000000, 0.5);
  EXPECT_NEAR(D.total(), D.TransferSeconds + 0.5, 1e-12);
}

// Pins the two costing modes: LatencySeconds is per-transfer *setup*,
// charged exactly once by transferSeconds() and not at all by
// streamSeconds(). A frame stream over one session costs latency once
// plus the summed stream time — never N redials.
TEST(Transport, LatencyChargedOncePerTransferAndBatchedStreams) {
  for (const Link &L : {modem28k(), isdn128k(), ethernet10M(), fast100M()}) {
    EXPECT_NEAR(L.streamSeconds(3600), 3600 * 8.0 / L.BitsPerSecond, 1e-12)
        << L.Name;
    EXPECT_NEAR(L.transferSeconds(3600),
                L.LatencySeconds + L.streamSeconds(3600), 1e-12)
        << L.Name;
    EXPECT_NEAR(L.transferSeconds(0), L.LatencySeconds, 1e-12)
        << L.Name << ": an empty transfer still pays setup exactly once";

    // 100 frames of 512 bytes: per-fetch vs one batched session.
    double PerFetch = 0, Stream = 0;
    for (int I = 0; I != 100; ++I) {
      PerFetch += L.transferSeconds(512);
      Stream += L.streamSeconds(512);
    }
    double Batched = L.LatencySeconds + Stream;
    EXPECT_NEAR(PerFetch, 100 * L.LatencySeconds + Stream, 1e-9) << L.Name;
    EXPECT_NEAR(PerFetch - Batched, 99 * L.LatencySeconds, 1e-9)
        << L.Name << ": the modes differ by exactly the saved redials";
  }
}

TEST(Paging, RemoteTotalTimeModel) {
  // 3s CPU + 0.5s of measured decode; 2s of virtual link time.
  TotalTime T = remoteTotalTime(3.0, 500000000ull, 2000000000ull);
  EXPECT_NEAR(T.CpuSeconds, 3.5, 1e-12);
  EXPECT_NEAR(T.PagingSeconds, 2.0, 1e-12);
  EXPECT_NEAR(T.total(), 5.5, 1e-12);
}

TEST(Paging, SequentialFitsInBudget) {
  // 4 pages cycled, 4 frames: only compulsory faults.
  std::vector<uint32_t> Trace;
  for (int I = 0; I != 100; ++I)
    Trace.push_back(I % 4);
  PagingResult R = simulateLRU(Trace, 4);
  EXPECT_EQ(R.Faults, 4u);
  EXPECT_EQ(R.References, 100u);
}

TEST(Paging, LruEvictsLeastRecent) {
  // Classic LRU check: with 2 frames, trace 1 2 1 3 2 faults on
  // 1, 2, 3 (evicts 2), then 2 again (evicted) -> 4 faults.
  std::vector<uint32_t> Trace = {1, 2, 1, 3, 2};
  PagingResult R = simulateLRU(Trace, 2);
  EXPECT_EQ(R.Faults, 4u);
}

TEST(Paging, ThrashingWhenBudgetTooSmall) {
  // Cyclic access over N+1 pages with N frames: LRU faults every time.
  std::vector<uint32_t> Trace;
  for (int I = 0; I != 90; ++I)
    Trace.push_back(I % 9);
  PagingResult R = simulateLRU(Trace, 8);
  EXPECT_EQ(R.Faults, 90u);
}

TEST(Paging, MoreFramesNeverMoreFaults) {
  // LRU is a stack algorithm: faults are monotone in the frame count.
  PRNG Rng(77);
  std::vector<uint32_t> Trace;
  uint32_t Cur = 0;
  for (int I = 0; I != 5000; ++I) {
    Cur = Rng.chance(3, 4) ? (Cur + 1) % 40
                           : static_cast<uint32_t>(Rng.below(40));
    Trace.push_back(Cur);
  }
  uint64_t Prev = ~0ull;
  for (unsigned Frames : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    PagingResult R = simulateLRU(Trace, Frames);
    EXPECT_LE(R.Faults, Prev) << Frames << " frames";
    Prev = R.Faults;
  }
}

TEST(Paging, ZeroBudgetFaultsAlways) {
  std::vector<uint32_t> Trace = {1, 2, 3};
  PagingResult R = simulateLRU(Trace, 0);
  EXPECT_EQ(R.Faults, 3u);
}

TEST(Paging, TotalTimeModel) {
  PagingResult P;
  P.Faults = 10;
  DiskModel D;
  TotalTime T = totalTime(2.0, P, D);
  EXPECT_NEAR(T.CpuSeconds, 2.0, 1e-12);
  EXPECT_NEAR(T.PagingSeconds, 10 * D.FaultSeconds, 1e-12);
  EXPECT_NEAR(T.total(), 2.0 + 10 * D.FaultSeconds, 1e-12);
}

//===- tests/test_net_store.cpp - Frame service over real TCP ------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The network subsystem's promises, checked over real loopback sockets:
// the wire codec round-trips every message type and rejects malformed
// input typed on both ends; store-backed execution through a
// net::SocketFrameSource is byte-identical to the local store across
// chains, page granularities, and cache budgets; a batched prefetch is
// exactly ONE round trip (asserted from the server's own counters); a
// server killed mid-run yields typed FetchErrorKinds quickly — never a
// hang (the ctest TIMEOUT is the hard guard); the handshake's content
// hash carries shared-registry trust end-to-end over the network; and
// RetryPolicy::RealTime turns backoff into real sleeps bounded by a
// wall-clock deadline.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "net/FrameServer.h"
#include "net/Message.h"
#include "net/Socket.h"
#include "net/SocketFrameSource.h"
#include "store/CodeStore.h"
#include "store/FrameRegistry.h"
#include "store/FrameSource.h"
#include "store/Resolver.h"
#include "store/Trace.h"
#include "support/ThreadPool.h"
#include "vm/Machine.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

using namespace ccomp;
using namespace ccomp::store;
using namespace ccomp::test;

namespace {

std::vector<uint8_t> buildImage(const vm::VMProgram &P,
                                const std::string &Chain,
                                size_t PageTargetBytes = 0) {
  StoreOptions Opts;
  Opts.PageTargetBytes = PageTargetBytes;
  std::string Err;
  std::unique_ptr<CodeStore> S = CodeStore::build(P, Chain, Opts, Err);
  EXPECT_NE(S, nullptr) << Chain << ": " << Err;
  return S->save();
}

std::unique_ptr<net::FrameServer>
startServer(const std::vector<uint8_t> &Image) {
  Result<std::unique_ptr<LocalFrameSource>> Src =
      LocalFrameSource::fromContainerBytes(Image);
  EXPECT_TRUE(Src.ok()) << (Src.ok() ? "" : Src.error().message());
  if (!Src.ok())
    return nullptr;
  Result<std::unique_ptr<net::FrameServer>> Srv =
      net::FrameServer::start(Src.take(), net::ServerOptions());
  EXPECT_TRUE(Srv.ok()) << (Srv.ok() ? "" : Srv.error().message());
  return Srv.ok() ? Srv.take() : nullptr;
}

std::unique_ptr<net::SocketFrameSource> connectClient(uint16_t Port) {
  net::SocketOptions SO;
  SO.Port = Port;
  Result<std::unique_ptr<net::SocketFrameSource>> Src =
      net::SocketFrameSource::connect(SO);
  EXPECT_TRUE(Src.ok()) << (Src.ok() ? "" : Src.error().message());
  return Src.ok() ? Src.take() : nullptr;
}

/// The payload of an encoded message: everything after the length
/// prefix, which is what tryParseMessage consumes.
std::vector<uint8_t> body(const std::vector<uint8_t> &Wire) {
  EXPECT_GE(Wire.size(), net::LengthPrefixBytes);
  return std::vector<uint8_t>(Wire.begin() + net::LengthPrefixBytes,
                              Wire.end());
}

//===----------------------------------------------------------------------===//
// Wire codec
//===----------------------------------------------------------------------===//

TEST(WireCodec, SizeHelpersMatchEncodedSizes) {
  EXPECT_EQ(net::encodeHello().size(), net::wireSizeHello());
  EXPECT_EQ(net::encodeWelcome(0x1234, "brisc+flate", 42, 9001).size(),
            net::wireSizeWelcome("brisc+flate"));
  EXPECT_EQ(net::encodeGetFrame(7).size(), net::wireSizeGetFrame());
  for (size_t N : {size_t(0), size_t(1), size_t(200)}) {
    std::vector<uint32_t> Ids(N, 5);
    EXPECT_EQ(net::encodeGetBatch(Ids).size(), net::wireSizeGetBatch(N));
  }
  std::vector<uint8_t> Payload(300, 0xAB);
  EXPECT_EQ(net::encodeFrameData(3, Payload).size(),
            net::wireSizeFrameData(Payload.size()));
  EXPECT_EQ(net::encodeErrorReply(1, FetchErrorKind::Timeout, "slow").size(),
            net::wireSizeErrorReply("slow"));
  // One fetch's full wire cost: request plus framed reply. This is the
  // quantity RemoteOptions::WireFraming charges, so the identity below
  // is what keeps the sim and a real server byte-for-byte agreed.
  EXPECT_EQ(net::wireSizeFetch(Payload.size()),
            net::encodeGetFrame(3).size() +
                net::encodeFrameData(3, Payload).size());
}

TEST(WireCodec, RoundTripsEveryMessageType) {
  auto Parse = [](const std::vector<uint8_t> &Wire) {
    Result<net::Message> M = net::tryParseMessage(body(Wire));
    EXPECT_TRUE(M.ok()) << (M.ok() ? "" : M.error().message());
    return M.ok() ? M.take() : net::Message();
  };

  net::Message M = Parse(net::encodeHello());
  EXPECT_EQ(M.Type, net::MsgType::Hello);
  EXPECT_EQ(M.Version, net::WireVersion);

  M = Parse(net::encodeWelcome(0xDEADBEEFCAFE, "vm-compact+flate", 17, 4242));
  EXPECT_EQ(M.Type, net::MsgType::Welcome);
  EXPECT_EQ(M.ContentHash, 0xDEADBEEFCAFEull);
  EXPECT_EQ(M.ChainSpec, "vm-compact+flate");
  EXPECT_EQ(M.FrameCount, 17u);
  EXPECT_EQ(M.FrameBytes, 4242u);

  M = Parse(net::encodeGetFrame(ManifestFrameId));
  EXPECT_EQ(M.Type, net::MsgType::GetFrame);
  EXPECT_EQ(M.Id, ManifestFrameId);

  std::vector<uint32_t> Ids = {0, 9, 3, 0xFFFF0000};
  M = Parse(net::encodeGetBatch(Ids));
  EXPECT_EQ(M.Type, net::MsgType::GetBatch);
  EXPECT_EQ(M.Ids, Ids);

  std::vector<uint8_t> Payload = {1, 2, 3, 0, 255};
  M = Parse(net::encodeFrameData(6, Payload));
  EXPECT_EQ(M.Type, net::MsgType::FrameData);
  EXPECT_EQ(M.Id, 6u);
  EXPECT_EQ(M.Bytes, Payload);

  std::vector<net::BatchEntry> Es(2);
  Es[0].Id = 4;
  Es[0].Ok = true;
  Es[0].Bytes = {9, 8, 7};
  Es[1].Id = 5;
  Es[1].Ok = false;
  Es[1].Err = FetchErrorKind::NotFound;
  Es[1].Msg = "no frame 5";
  M = Parse(net::encodeBatchData(Es));
  EXPECT_EQ(M.Type, net::MsgType::BatchData);
  ASSERT_EQ(M.Entries.size(), 2u);
  EXPECT_TRUE(M.Entries[0].Ok);
  EXPECT_EQ(M.Entries[0].Id, 4u);
  EXPECT_EQ(M.Entries[0].Bytes, Es[0].Bytes);
  EXPECT_FALSE(M.Entries[1].Ok);
  EXPECT_EQ(M.Entries[1].Err, FetchErrorKind::NotFound);
  EXPECT_EQ(M.Entries[1].Msg, "no frame 5");

  M = Parse(net::encodeErrorReply(11, FetchErrorKind::Corrupt, "bad csum"));
  EXPECT_EQ(M.Type, net::MsgType::ErrorReply);
  EXPECT_EQ(M.Id, 11u);
  EXPECT_EQ(M.Err, FetchErrorKind::Corrupt);
  EXPECT_EQ(M.Msg, "bad csum");
}

TEST(WireCodec, MalformedPayloadsRejectedTyped) {
  auto Rejects = [](std::vector<uint8_t> Payload, const char *Why) {
    Result<net::Message> M = net::tryParseMessage(Payload);
    EXPECT_FALSE(M.ok()) << Why;
    if (!M.ok()) {
      EXPECT_FALSE(M.error().message().empty()) << Why;
    }
  };

  Rejects({}, "empty payload");
  Rejects({0}, "message type 0");
  Rejects({8}, "message type past ErrorReply");
  Rejects({200}, "garbage message type");

  std::vector<uint8_t> Hello = body(net::encodeHello());
  Hello[1] ^= 0xFF; // First magic byte.
  Rejects(Hello, "bad magic");

  Hello = body(net::encodeHello());
  Hello[5] = net::WireVersion + 1;
  Rejects(Hello, "unsupported version");

  std::vector<uint8_t> Welcome =
      body(net::encodeWelcome(1, "flate", 2, 3));
  Welcome.pop_back();
  Rejects(Welcome, "truncated Welcome");

  std::vector<uint8_t> Get = body(net::encodeGetFrame(1));
  Get.push_back(0);
  Rejects(Get, "trailing bytes");

  // Lying counts/lengths: the parser must reject them *before* any
  // count-driven allocation.
  Rejects({static_cast<uint8_t>(net::MsgType::GetBatch), 0x7F},
          "GetBatch count overruns payload");
  Rejects({static_cast<uint8_t>(net::MsgType::BatchData), 0x7F},
          "BatchData count overruns payload");
  Rejects({static_cast<uint8_t>(net::MsgType::FrameData), 1, 0, 0, 0, 0x7F},
          "FrameData length overruns payload");
  // ErrorReply with a fetch-error kind past the enum.
  Rejects({static_cast<uint8_t>(net::MsgType::ErrorReply), 1, 0, 0, 0, 9, 0},
          "unknown fetch-error kind");
}

//===----------------------------------------------------------------------===//
// Handshake identity
//===----------------------------------------------------------------------===//

TEST(NetStore, HandshakeCarriesContainerIdentity) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  std::vector<uint8_t> Image = buildImage(P, "flate");
  std::unique_ptr<net::FrameServer> Server = startServer(Image);
  ASSERT_NE(Server, nullptr);

  std::unique_ptr<net::SocketFrameSource> Sock = connectClient(Server->port());
  ASSERT_NE(Sock, nullptr);

  // The handshake told the client everything a source must know — no
  // fetches have happened yet.
  EXPECT_EQ(Sock->chainSpec(), "flate");
  EXPECT_EQ(Sock->functionFrameCount(),
            Server->source().functionFrameCount());
  EXPECT_EQ(Sock->frameBytes(), Server->source().frameBytes());
  uint64_t H = 0;
  EXPECT_TRUE(Sock->contentHash(H));
  EXPECT_EQ(H, Server->contentHash());
  EXPECT_EQ(Server->stats().Requests, 0u);

  // Out-of-range ids fail NotFound on the client side, with no round
  // trip wasted on a frame the handshake already says cannot exist.
  uint64_t TripsBefore = Sock->stats().RoundTrips;
  FetchResult R = Sock->fetchFrame(Sock->functionFrameCount() + 100);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Err, FetchErrorKind::NotFound);
  EXPECT_EQ(Sock->stats().RoundTrips, TripsBefore);

  // The manifest and a real frame do cross the wire.
  EXPECT_TRUE(Sock->fetchManifest().Ok);
  EXPECT_TRUE(Sock->fetchFrame(0).Ok);
  EXPECT_EQ(Sock->stats().RoundTrips, TripsBefore + 2);
  EXPECT_EQ(Server->stats().Requests, 2u);
}

//===----------------------------------------------------------------------===//
// Differential execution: socket vs local
//===----------------------------------------------------------------------===//

TEST(NetStore, LoopbackExecutionMatchesLocalAcrossChainsPagesBudgets) {
  vm::VMProgram P = buildVM(syntheticSource(12));
  vm::RunResult Eager = vm::Machine(P).run();
  ASSERT_TRUE(Eager.Ok) << Eager.Trap;

  const char *Chains[] = {"flate", "vm-compact", "brisc+flate"};
  for (const char *Chain : Chains) {
    for (size_t PageTarget : {size_t(0), size_t(48)}) {
      std::vector<uint8_t> Image = buildImage(P, Chain, PageTarget);
      std::unique_ptr<net::FrameServer> Server = startServer(Image);
      ASSERT_NE(Server, nullptr);

      for (size_t Budget : {size_t(1), size_t(1) << 20}) {
        SCOPED_TRACE(std::string(Chain) + " pages=" +
                     std::to_string(PageTarget) + " budget=" +
                     std::to_string(Budget));
        // The reference: the same container through a local source.
        StoreOptions Opts;
        Opts.CacheBudgetBytes = Budget;
        Opts.Retry.RealTime = true;
        Result<std::unique_ptr<CodeStore>> Ref =
            CodeStore::tryLoad(Image, Opts);
        ASSERT_TRUE(Ref.ok()) << Ref.error().message();
        vm::RunResult LocalRun = runFromStore(*Ref.value());

        std::unique_ptr<net::SocketFrameSource> Sock =
            connectClient(Server->port());
        ASSERT_NE(Sock, nullptr);
        Result<std::unique_ptr<CodeStore>> St =
            CodeStore::tryFromSource(std::move(Sock), Opts);
        ASSERT_TRUE(St.ok()) << St.error().message();
        vm::RunResult NetRun = runFromStore(*St.value());

        ASSERT_TRUE(LocalRun.Ok) << LocalRun.Trap;
        ASSERT_TRUE(NetRun.Ok) << NetRun.Trap;
        EXPECT_EQ(NetRun.Output, Eager.Output);
        EXPECT_EQ(NetRun.ExitCode, Eager.ExitCode);
        EXPECT_EQ(NetRun.Output, LocalRun.Output);
        EXPECT_EQ(NetRun.ExitCode, LocalRun.ExitCode);
        EXPECT_EQ(NetRun.Steps, LocalRun.Steps);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Batched prefetch economics
//===----------------------------------------------------------------------===//

TEST(NetStore, BatchedPrefetchIsOneRoundTrip) {
  vm::VMProgram P = buildVM(syntheticSource(16));
  std::vector<uint8_t> Image = buildImage(P, "flate");
  std::unique_ptr<net::FrameServer> Server = startServer(Image);
  ASSERT_NE(Server, nullptr);

  std::unique_ptr<net::SocketFrameSource> Sock = connectClient(Server->port());
  ASSERT_NE(Sock, nullptr);
  net::SocketFrameSource *Raw = Sock.get();

  StoreOptions Opts;
  Opts.CacheBudgetBytes = 64u << 20; // Nothing re-faults.
  Opts.Retry.RealTime = true;
  Result<std::unique_ptr<CodeStore>> St =
      CodeStore::tryFromSource(std::move(Sock), Opts);
  ASSERT_TRUE(St.ok()) << St.error().message();
  CodeStore &Store = *St.value();

  uint64_t ReqBefore = Server->stats().Requests;
  uint64_t BatchBefore = Server->stats().Batches;

  std::vector<uint32_t> All(Store.functionCount());
  for (uint32_t I = 0; I != Store.functionCount(); ++I)
    All[I] = I;
  ThreadPool Pool(4);
  Store.prefetch(All, Pool);
  Pool.wait();

  // The whole working set crossed the wire in exactly ONE request — the
  // server's own counter is the witness, not client bookkeeping.
  net::ServerStats SS = Server->stats();
  EXPECT_EQ(SS.Requests - ReqBefore, 1u);
  EXPECT_EQ(SS.Batches - BatchBefore, 1u);
  net::ClientStats CS = Raw->stats();
  EXPECT_EQ(CS.BatchRoundTrips, 1u);
  EXPECT_EQ(CS.StagedServes, Store.frameCount());

  // And the prefetched store still executes correctly — with no
  // further wire traffic at all.
  vm::RunResult Eager = vm::Machine(P).run();
  vm::RunResult R = runFromStore(Store);
  ASSERT_TRUE(R.Ok) << R.Trap;
  EXPECT_EQ(R.Output, Eager.Output);
  EXPECT_EQ(Server->stats().Requests - ReqBefore, 1u);
}

// Trace-driven prefetch over the wire: after a fault, the store warms
// exactly the predicted-next set — one GetBatch whose frame count the
// server's own counters witness, with every predicted frame resident
// afterwards and nothing else fetched.
TEST(NetStore, PredictivePrefetchSendsExactlyThePredictedSet) {
  vm::VMProgram P = buildVM(syntheticSource(16));
  store::TraceRunResult Recorded = store::recordTrace(P);
  ASSERT_TRUE(Recorded.Run.Ok) << Recorded.Run.Trap;
  std::vector<uint8_t> Image = buildImage(P, "flate");
  std::unique_ptr<net::FrameServer> Server = startServer(Image);
  ASSERT_NE(Server, nullptr);

  std::unique_ptr<net::SocketFrameSource> Sock = connectClient(Server->port());
  ASSERT_NE(Sock, nullptr);
  net::SocketFrameSource *Raw = Sock.get();

  StoreOptions Opts;
  Opts.CacheBudgetBytes = 64u << 20;
  Opts.Retry.RealTime = true;
  Result<std::unique_ptr<CodeStore>> St =
      CodeStore::tryFromSource(std::move(Sock), Opts);
  ASSERT_TRUE(St.ok()) << St.error().message();
  CodeStore &Store = *St.value();
  Store.applyAccessProfile(Recorded.Trace);
  ASSERT_TRUE(Store.hasAccessProfile());

  // Fault the frame the trace starts in, then snapshot its predictions
  // — the set the prefetch is REQUIRED to send, no more, no less.
  ASSERT_FALSE(Recorded.Trace.Events.empty());
  uint32_t Fn = Recorded.Trace.Events[0].Fn;
  ASSERT_TRUE(Store.fault(Fn).ok());
  std::vector<uint32_t> Expect;
  for (uint32_t Id : Store.predictedSuccessors(Fn, ~0u)) {
    if (Store.isResident(Id))
      continue;
    Expect.push_back(Id);
    if (Expect.size() == CodeStore::DefaultPredictions)
      break;
  }
  ASSERT_FALSE(Expect.empty()) << "the trace must predict something";

  uint64_t ReqBefore = Server->stats().Requests;
  uint64_t BatchBefore = Server->stats().Batches;
  uint64_t ServedBefore = Server->stats().FramesServed;
  uint64_t StagedBefore = Raw->stats().StagedServes;
  {
    ThreadPool Pool(4);
    Store.prefetchPredicted(Fn, 0, Pool);
    Pool.wait();
  }

  net::ServerStats SS = Server->stats();
  EXPECT_EQ(SS.Requests - ReqBefore, 1u) << "one GetBatch, nothing else";
  EXPECT_EQ(SS.Batches - BatchBefore, 1u);
  EXPECT_EQ(SS.FramesServed - ServedBefore, Expect.size())
      << "the batch carries exactly the predicted-next set";
  EXPECT_EQ(Raw->stats().StagedServes - StagedBefore, Expect.size())
      << "every warm was served from staging, not its own round trip";

  // The predicted frames are now resident; unpredicted ones are not.
  for (uint32_t Id : Expect)
    EXPECT_TRUE(Store.isResident(Id)) << Id;
  for (uint32_t Id = 0; Id != Store.functionCount(); ++Id) {
    bool Predicted =
        std::find(Expect.begin(), Expect.end(), Id) != Expect.end();
    if (!Predicted && Id != Fn)
      EXPECT_FALSE(Store.isResident(Id)) << Id << ": over-fetched";
  }
}

// The admission clamp holds over the wire too: on a 1-byte budget a
// predictive prefetch may ship at most the one frame the cache will
// actually keep — no over-fetch bytes crossing the socket.
TEST(NetStore, PredictivePrefetchClampsOnTinyBudget) {
  vm::VMProgram P = buildVM(syntheticSource(16));
  store::TraceRunResult Recorded = store::recordTrace(P);
  ASSERT_TRUE(Recorded.Run.Ok) << Recorded.Run.Trap;
  std::vector<uint8_t> Image = buildImage(P, "flate");
  std::unique_ptr<net::FrameServer> Server = startServer(Image);
  ASSERT_NE(Server, nullptr);

  std::unique_ptr<net::SocketFrameSource> Sock = connectClient(Server->port());
  ASSERT_NE(Sock, nullptr);

  StoreOptions Opts;
  Opts.Shards = 1;
  Opts.CacheBudgetBytes = 1;
  Opts.Retry.RealTime = true;
  Result<std::unique_ptr<CodeStore>> St =
      CodeStore::tryFromSource(std::move(Sock), Opts);
  ASSERT_TRUE(St.ok()) << St.error().message();
  CodeStore &Store = *St.value();
  Store.applyAccessProfile(Recorded.Trace);

  ASSERT_FALSE(Recorded.Trace.Events.empty());
  uint32_t Fn = Recorded.Trace.Events[0].Fn;
  ASSERT_TRUE(Store.fault(Fn).ok());

  uint64_t ServedBefore = Server->stats().FramesServed;
  {
    ThreadPool Pool(4);
    Store.prefetchPredicted(Fn, 0, Pool);
    Pool.wait();
  }
  EXPECT_LE(Server->stats().FramesServed - ServedBefore, 1u)
      << "a 1-byte budget admits one frame; the batch must shrink to it";
  EXPECT_LE(Store.stats().PrefetchDecodes, 1u);
}

//===----------------------------------------------------------------------===//
// Server death: typed errors, never hangs
//===----------------------------------------------------------------------===//

TEST(NetStore, ServerStoppedMidRunYieldsTypedErrorsNotHangs) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  std::vector<uint8_t> Image = buildImage(P, "flate");
  std::unique_ptr<net::FrameServer> Server = startServer(Image);
  ASSERT_NE(Server, nullptr);

  StoreOptions Opts;
  Opts.CacheBudgetBytes = 1; // Keep almost nothing resident.
  Opts.Retry.MaxAttempts = 2;
  Opts.Retry.BaseBackoffSeconds = 0.01;
  Opts.Retry.MaxBackoffSeconds = 0.02;
  Opts.Retry.RealTime = true;
  Opts.Retry.DeadlineSeconds = 5.0;
  std::unique_ptr<net::SocketFrameSource> Sock = connectClient(Server->port());
  ASSERT_NE(Sock, nullptr);
  Result<std::unique_ptr<CodeStore>> St =
      CodeStore::tryFromSource(std::move(Sock), Opts);
  ASSERT_TRUE(St.ok()) << St.error().message();
  CodeStore &Store = *St.value();

  ASSERT_TRUE(Store.fault(0).ok()); // The server was alive...
  Server->stop();                   // ...and now it is not.

  // Every fault against the dead server must come back as a typed
  // error, promptly: redials fail fast on loopback and the retry
  // policy's sleeps are milliseconds. The ctest TIMEOUT is the hard
  // no-hang guard; the wall check below catches soft regressions.
  auto Start = std::chrono::steady_clock::now();
  for (uint32_t Id = 1; Id != Store.functionCount(); ++Id) {
    Result<std::shared_ptr<const vm::VMFunction>> R = Store.fault(Id);
    EXPECT_FALSE(R.ok()) << "function " << Id << " after server stop";
    if (!R.ok()) {
      EXPECT_FALSE(R.error().message().empty());
    }
  }
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  EXPECT_LT(Wall, 30.0);
  StoreStats SS = Store.stats();
  EXPECT_GE(SS.FetchFailures, Store.functionCount() - 1u);
}

//===----------------------------------------------------------------------===//
// Malformed traffic against a real server
//===----------------------------------------------------------------------===//

/// Reads and parses one framed reply off a raw test socket.
Result<net::Message> readReply(net::Socket &S) {
  return tryDecode([&] {
    uint8_t Prefix[4];
    std::string Err;
    if (S.recvAll(Prefix, 4, 5'000, Err) != net::IoStatus::Ok)
      decodeFail("no reply prefix: " + Err);
    uint32_t Len = static_cast<uint32_t>(Prefix[0]) |
                   (static_cast<uint32_t>(Prefix[1]) << 8) |
                   (static_cast<uint32_t>(Prefix[2]) << 16) |
                   (static_cast<uint32_t>(Prefix[3]) << 24);
    if (Len == 0 || Len > net::MaxMessageBytes)
      decodeFail("bad reply length");
    std::vector<uint8_t> Payload(Len);
    if (S.recvAll(Payload.data(), Len, 5'000, Err) != net::IoStatus::Ok)
      decodeFail("short reply: " + Err);
    Result<net::Message> M = net::tryParseMessage(Payload);
    if (!M.ok())
      decodeFail(M.error().message());
    return M.take();
  });
}

net::IoStatus sendRaw(net::Socket &S, const std::vector<uint8_t> &Bytes) {
  std::string Err;
  return S.sendAll(Bytes.data(), Bytes.size(), 5'000, Err);
}

TEST(NetStore, MalformedRequestsGetTypedRepliesAndServerSurvives) {
  vm::VMProgram P = buildVM(syntheticSource(4));
  std::vector<uint8_t> Image = buildImage(P, "flate");
  std::unique_ptr<net::FrameServer> Server = startServer(Image);
  ASSERT_NE(Server, nullptr);

  // A handshaken connection that then talks garbage: the server answers
  // with a typed Corrupt ErrorReply, then closes — framing past a
  // malformed body cannot be trusted.
  {
    Result<net::Socket> C =
        net::Socket::connectTo("127.0.0.1", Server->port(), 5'000);
    ASSERT_TRUE(C.ok()) << C.error().message();
    net::Socket S = C.take();
    ASSERT_EQ(sendRaw(S, net::encodeHello()), net::IoStatus::Ok);
    Result<net::Message> Welcome = readReply(S);
    ASSERT_TRUE(Welcome.ok()) << Welcome.error().message();
    EXPECT_EQ(Welcome.value().Type, net::MsgType::Welcome);

    ASSERT_EQ(sendRaw(S, {3, 0, 0, 0, 0xFF, 0xEE, 0xDD}),
              net::IoStatus::Ok); // Length 3, garbage body.
    Result<net::Message> Reply = readReply(S);
    ASSERT_TRUE(Reply.ok()) << Reply.error().message();
    EXPECT_EQ(Reply.value().Type, net::MsgType::ErrorReply);
    EXPECT_EQ(Reply.value().Err, FetchErrorKind::Corrupt);

    uint8_t Byte;
    std::string Err;
    EXPECT_EQ(S.recvAll(&Byte, 1, 5'000, Err), net::IoStatus::Closed)
        << "server must close after a protocol violation";
  }

  // An oversized length prefix is rejected before any allocation, with
  // the same typed reply.
  {
    Result<net::Socket> C =
        net::Socket::connectTo("127.0.0.1", Server->port(), 5'000);
    ASSERT_TRUE(C.ok()) << C.error().message();
    net::Socket S = C.take();
    ASSERT_EQ(sendRaw(S, {0xFF, 0xFF, 0xFF, 0xFF}), net::IoStatus::Ok);
    Result<net::Message> Reply = readReply(S);
    ASSERT_TRUE(Reply.ok()) << Reply.error().message();
    EXPECT_EQ(Reply.value().Type, net::MsgType::ErrorReply);
    EXPECT_EQ(Reply.value().Err, FetchErrorKind::Corrupt);
  }

  EXPECT_GE(Server->stats().ProtocolErrors, 2u);

  // The abuse is contained to its connections: a well-behaved client
  // connecting afterwards is served normally.
  std::unique_ptr<net::SocketFrameSource> Sock = connectClient(Server->port());
  ASSERT_NE(Sock, nullptr);
  EXPECT_TRUE(Sock->fetchFrame(0).Ok);
}

//===----------------------------------------------------------------------===//
// Malformed replies against a real client
//===----------------------------------------------------------------------===//

/// A scripted fake server: per accepted connection, answers the Hello
/// handshake properly and then replies to the first request with the
/// next scripted byte string (raw, exactly as given) before closing.
class ScriptedServer {
public:
  ScriptedServer(uint64_t Hash, std::vector<std::vector<uint8_t>> Script)
      : Script(std::move(Script)) {
    Result<net::Listener> L = net::Listener::listenOn("127.0.0.1", 0);
    EXPECT_TRUE(L.ok()) << (L.ok() ? "" : L.error().message());
    Listen = L.take();
    Welcome = net::encodeWelcome(Hash, "flate", 4, 400);
    Serve = std::thread([this] { run(); });
  }
  ~ScriptedServer() {
    Listen.close();
    if (Serve.joinable())
      Serve.join();
  }

  uint16_t port() const { return Listen.port(); }

private:
  void run() {
    std::string Err;
    for (size_t I = 0; I < Script.size();) {
      net::Socket C = Listen.accept(5'000, Err);
      if (!C.valid())
        return; // Listener closed (test over) or accept timed out.
      std::vector<uint8_t> Hello(net::wireSizeHello());
      if (C.recvAll(Hello.data(), Hello.size(), 5'000, Err) !=
          net::IoStatus::Ok)
        continue;
      if (C.sendAll(Welcome.data(), Welcome.size(), 5'000, Err) !=
          net::IoStatus::Ok)
        continue;
      // One request, one scripted reply, then hang up.
      std::vector<uint8_t> Req(net::wireSizeGetFrame());
      if (C.recvAll(Req.data(), Req.size(), 5'000, Err) != net::IoStatus::Ok)
        continue;
      (void)C.sendAll(Script[I].data(), Script[I].size(), 5'000, Err);
      ++I;
    }
  }

  net::Listener Listen;
  std::vector<uint8_t> Welcome;
  std::vector<std::vector<uint8_t>> Script;
  std::thread Serve;
};

TEST(NetStore, MalformedRepliesRejectedRecoverablyByClient) {
  // Scripted replies, one per client round trip:
  //   1. well-formed frame: 5-byte garbage that parses as nothing.
  //   2. truncated: a prefix promising 100 bytes, then 8 and a close.
  //   3. oversized length prefix.
  //   4. a genuine FrameData — proof the client recovered.
  std::vector<uint8_t> Good =
      net::encodeFrameData(0, std::vector<uint8_t>{1, 2, 3});
  ScriptedServer Fake(0xFEED, {{5, 0, 0, 0, 0xFF, 0xEE, 0xDD, 0xCC, 0xBB},
                               {100, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8},
                               {0xFF, 0xFF, 0xFF, 0xFF},
                               Good});

  std::unique_ptr<net::SocketFrameSource> Sock = connectClient(Fake.port());
  ASSERT_NE(Sock, nullptr);
  uint64_t H = 0;
  EXPECT_TRUE(Sock->contentHash(H));
  EXPECT_EQ(H, 0xFEEDu);

  FetchResult R = Sock->fetchFrame(0);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Err, FetchErrorKind::Corrupt) << R.Msg;
  EXPECT_TRUE(isTransient(R.Err));

  R = Sock->fetchFrame(0);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Err, FetchErrorKind::ShortRead) << R.Msg;
  EXPECT_TRUE(isTransient(R.Err));

  R = Sock->fetchFrame(0);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Err, FetchErrorKind::Corrupt) << R.Msg;

  // Every failure dropped its connection and the next fetch redialed —
  // the source itself stays usable and the fourth reply goes through.
  R = Sock->fetchFrame(0);
  EXPECT_TRUE(R.Ok) << R.Msg;
  EXPECT_EQ(R.Bytes, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(Sock->stats().TransportErrors, 3u);
  EXPECT_GE(Sock->stats().Dials, 4u);
}

TEST(NetStore, RedialToAChangedContainerFailsTyped) {
  // A server that serves hash A on the first handshake and hash B on
  // the redial: the client must refuse to mix frames across container
  // identities.
  net::Listener Listen;
  {
    Result<net::Listener> L = net::Listener::listenOn("127.0.0.1", 0);
    ASSERT_TRUE(L.ok()) << L.error().message();
    Listen = L.take();
  }
  std::thread Serve([&Listen] {
    std::string Err;
    for (uint64_t Hash : {uint64_t(0xAAAA), uint64_t(0xBBBB)}) {
      net::Socket C = Listen.accept(5'000, Err);
      if (!C.valid())
        return;
      std::vector<uint8_t> Hello(net::wireSizeHello());
      if (C.recvAll(Hello.data(), Hello.size(), 5'000, Err) !=
          net::IoStatus::Ok)
        return;
      std::vector<uint8_t> W = net::encodeWelcome(Hash, "flate", 4, 400);
      (void)C.sendAll(W.data(), W.size(), 5'000, Err);
      // Close immediately: the pooled connection dies, forcing the
      // client's next fetch to redial.
    }
  });

  std::unique_ptr<net::SocketFrameSource> Sock = connectClient(Listen.port());
  ASSERT_NE(Sock, nullptr);

  // First fetch rides the (now dead) pooled handshake connection and
  // fails transient; the retry path would redial.
  FetchResult R = Sock->fetchFrame(0);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(isTransient(R.Err)) << R.Msg;

  // The redial reaches the second Welcome — whose hash no longer
  // matches — and must fail rather than serve frames from a different
  // container under the old identity.
  R = Sock->fetchFrame(0);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Msg.find("hash mismatch"), std::string::npos) << R.Msg;

  Serve.join();
  Listen.close();
}

//===----------------------------------------------------------------------===//
// Shared-registry trust over the network
//===----------------------------------------------------------------------===//

TEST(NetStore, SharedRegistryTrustsHandshakeHashAndDecodesOnce) {
  vm::VMProgram P = buildVM(syntheticSource(10));
  vm::RunResult Eager = vm::Machine(P).run();
  ASSERT_TRUE(Eager.Ok) << Eager.Trap;
  std::vector<uint8_t> Image = buildImage(P, "brisc+flate");
  std::unique_ptr<net::FrameServer> Server = startServer(Image);
  ASSERT_NE(Server, nullptr);

  RegistryOptions RO;
  RO.CacheBudgetBytes = 64u << 20;
  auto Reg = std::make_shared<FrameRegistry>(RO);

  // Two tenants, two sockets, one server, one shared decode cache.
  // Joining requires a trustworthy content hash; over the network that
  // trust is exactly the handshake (the server computed the hash from
  // the frames it serves), so both joins must succeed.
  auto MakeTenant = [&]() {
    std::unique_ptr<net::SocketFrameSource> Sock =
        connectClient(Server->port());
    EXPECT_NE(Sock, nullptr);
    StoreOptions Opts;
    Opts.SharedRegistry = Reg;
    Opts.Retry.RealTime = true;
    Result<std::unique_ptr<CodeStore>> St =
        CodeStore::tryFromSource(std::move(Sock), Opts);
    EXPECT_TRUE(St.ok()) << (St.ok() ? "" : St.error().message());
    return St.ok() ? St.take() : nullptr;
  };
  std::unique_ptr<CodeStore> A = MakeTenant();
  std::unique_ptr<CodeStore> B = MakeTenant();
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(A->containerHash(), Server->contentHash());

  vm::RunResult RA = runFromStore(*A);
  ASSERT_TRUE(RA.Ok) << RA.Trap;
  EXPECT_EQ(RA.Output, Eager.Output);
  uint64_t DecodesAfterA = Reg->stats().Decodes;
  EXPECT_GT(DecodesAfterA, 0u);

  // Tenant B touches the same working set: every frame is already
  // decoded in the shared registry, so B runs without decoding — or
  // fetching — anything.
  uint64_t ServerReqBefore = Server->stats().Requests;
  vm::RunResult RB = runFromStore(*B);
  ASSERT_TRUE(RB.Ok) << RB.Trap;
  EXPECT_EQ(RB.Output, Eager.Output);
  EXPECT_EQ(Reg->stats().Decodes, DecodesAfterA);
  EXPECT_EQ(Server->stats().Requests, ServerReqBefore);
}

//===----------------------------------------------------------------------===//
// Real-time retry semantics
//===----------------------------------------------------------------------===//

/// Fails every frame fetch with a transient timeout, charging no
/// virtual time (like a real transport that only consumes wall time).
class AlwaysFailing final : public FrameSource {
public:
  const char *kind() const override { return "always-failing"; }
  const std::string &chainSpec() const override { return Spec; }
  uint32_t functionFrameCount() const override { return 1; }
  size_t frameBytes() const override { return 0; }
  FetchResult fetchFrame(uint32_t Id) override {
    ++Attempts;
    if (SleepMillis)
      std::this_thread::sleep_for(std::chrono::milliseconds(SleepMillis));
    return FetchResult::failure(FetchErrorKind::Timeout,
                                "down: frame " + std::to_string(Id));
  }
  FetchResult fetchManifest() override { return fetchFrame(ManifestFrameId); }

  unsigned SleepMillis = 0;
  std::atomic<unsigned> Attempts{0};

private:
  std::string Spec = "flate";
};

TEST(RetryRealTime, BackoffReallySleeps) {
  AlwaysFailing Src;
  RetryPolicy Policy;
  Policy.MaxAttempts = 3;
  Policy.BaseBackoffSeconds = 0.05;
  Policy.BackoffMultiplier = 1.0;
  Policy.MaxBackoffSeconds = 1.0;
  Policy.JitterFraction = 0.0;
  Policy.DeadlineSeconds = 10.0;

  // Default (virtual) mode: the documented never-sleeps behavior.
  FetchMetrics M;
  auto Start = std::chrono::steady_clock::now();
  FetchResult R = fetchWithRetry(Src, 0, Policy, M);
  double VirtualWall = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - Start)
                           .count();
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(M.Attempts, 3u);
  EXPECT_LT(VirtualWall, 0.04) << "virtual backoff must not sleep";
  EXPECT_GE(M.VirtualSeconds, 0.1 - 1e-9) << "but must charge the clock";

  // RealTime: the same two backoffs (2 x 50ms) become real sleeps.
  Policy.RealTime = true;
  FetchMetrics M2;
  Start = std::chrono::steady_clock::now();
  R = fetchWithRetry(Src, 0, Policy, M2);
  double RealWall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(M2.Attempts, 3u);
  EXPECT_GE(RealWall, 0.09) << "real-time backoff must actually sleep";
}

TEST(RetryRealTime, WallClockDeadlineBoundsTheStorm) {
  AlwaysFailing Src;
  Src.SleepMillis = 20; // Each attempt costs real time, no virtual time.
  RetryPolicy Policy;
  Policy.MaxAttempts = 1000;
  Policy.BaseBackoffSeconds = 0.01;
  Policy.BackoffMultiplier = 1.0;
  Policy.JitterFraction = 0.0;
  Policy.RealTime = true;
  Policy.DeadlineSeconds = 0.1;

  FetchMetrics M;
  auto Start = std::chrono::steady_clock::now();
  FetchResult R = fetchWithRetry(Src, 0, Policy, M);
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Err, FetchErrorKind::Timeout);
  // Without the wall-clock deadline this storm would run all 1000
  // attempts (~30s); the deadline must cut it off around 100ms.
  EXPECT_LT(Wall, 5.0);
  EXPECT_LT(M.Attempts, 100u);
  // A virtual-deadline policy can never fire here (the source charges
  // no virtual time), which is exactly why RealTime exists.
}

//===----------------------------------------------------------------------===//
// Wire framing: sim and socket agree on bytes
//===----------------------------------------------------------------------===//

TEST(NetStore, WireFramingMakesSimChargeRealWireBytes) {
  vm::VMProgram P = buildVM(syntheticSource(5));
  std::vector<uint8_t> Image = buildImage(P, "flate");

  // Measure what one fetch really puts on the wire, both directions.
  std::unique_ptr<net::FrameServer> Server = startServer(Image);
  ASSERT_NE(Server, nullptr);
  std::unique_ptr<net::SocketFrameSource> Sock = connectClient(Server->port());
  ASSERT_NE(Sock, nullptr);
  net::ClientStats Before = Sock->stats();
  FetchResult Real = Sock->fetchFrame(0);
  ASSERT_TRUE(Real.Ok) << Real.Msg;
  net::ClientStats After = Sock->stats();
  uint64_t RealWireBytes = (After.BytesSent - Before.BytesSent) +
                           (After.BytesReceived - Before.BytesReceived);
  EXPECT_EQ(RealWireBytes, net::wireSizeFetch(Real.Bytes.size()));

  // A WireFraming sim over the same container must charge link time
  // for exactly those bytes — the framed size, not the bare payload.
  RemoteOptions RO;
  RO.Link = sim::ethernet10M();
  RO.WireFraming = true;
  Result<std::unique_ptr<LocalFrameSource>> Origin =
      LocalFrameSource::fromContainerBytes(Image);
  ASSERT_TRUE(Origin.ok());
  SimulatedRemoteFrameSource Sim(Origin.take(), RO);
  FetchResult SimFetch = Sim.fetchFrame(0);
  ASSERT_TRUE(SimFetch.Ok);
  EXPECT_EQ(SimFetch.Bytes, Real.Bytes);
  double Expected =
      RO.Link.LatencySeconds + RO.Link.streamSeconds(RealWireBytes);
  EXPECT_DOUBLE_EQ(SimFetch.VirtualSeconds, Expected);

  // And the default stays the old bare-payload accounting.
  RO.WireFraming = false;
  Result<std::unique_ptr<LocalFrameSource>> Origin2 =
      LocalFrameSource::fromContainerBytes(Image);
  ASSERT_TRUE(Origin2.ok());
  SimulatedRemoteFrameSource Bare(Origin2.take(), RO);
  FetchResult BareFetch = Bare.fetchFrame(0);
  ASSERT_TRUE(BareFetch.Ok);
  EXPECT_DOUBLE_EQ(BareFetch.VirtualSeconds,
                   RO.Link.LatencySeconds +
                       RO.Link.streamSeconds(BareFetch.Bytes.size()));
  EXPECT_LT(BareFetch.VirtualSeconds, SimFetch.VirtualSeconds);
}

//===----------------------------------------------------------------------===//
// Many concurrent clients (scaled-down scale harness)
//===----------------------------------------------------------------------===//

TEST(NetStore, ConcurrentClientsAllMatchTheEagerRun) {
  vm::VMProgram P = buildVM(syntheticSource(10));
  vm::RunResult Eager = vm::Machine(P).run();
  ASSERT_TRUE(Eager.Ok) << Eager.Trap;
  std::vector<uint8_t> Image = buildImage(P, "brisc+flate");
  std::unique_ptr<net::FrameServer> Server = startServer(Image);
  ASSERT_NE(Server, nullptr);

  constexpr unsigned NumClients = 24;
  std::atomic<unsigned> Failures{0}, Mismatches{0};
  std::vector<std::thread> Clients;
  Clients.reserve(NumClients);
  for (unsigned I = 0; I != NumClients; ++I)
    Clients.emplace_back([&] {
      net::SocketOptions SO;
      SO.Port = Server->port();
      Result<std::unique_ptr<net::SocketFrameSource>> Sock =
          net::SocketFrameSource::connect(SO);
      if (!Sock.ok()) {
        ++Failures;
        return;
      }
      StoreOptions Opts;
      Opts.Retry.RealTime = true;
      Result<std::unique_ptr<CodeStore>> St =
          CodeStore::tryFromSource(Sock.take(), Opts);
      if (!St.ok()) {
        ++Failures;
        return;
      }
      vm::RunResult R = runFromStore(*St.value());
      if (!R.Ok)
        ++Failures;
      else if (R.Output != Eager.Output || R.ExitCode != Eager.ExitCode)
        ++Mismatches;
    });
  for (std::thread &T : Clients)
    T.join();

  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(Mismatches.load(), 0u);
  net::ServerStats SS = Server->stats();
  EXPECT_EQ(SS.Accepted, NumClients);
  EXPECT_EQ(SS.ProtocolErrors, 0u);
  EXPECT_GE(SS.FramesServed, uint64_t(NumClients));
}

} // namespace

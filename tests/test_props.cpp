//===- tests/test_props.cpp - Parameterized property sweeps --------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Cross-cutting invariants checked over families of randomized inputs:
// compression round-trips, engine agreement on synthetic programs, and
// the BRISC width-class laws.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "brisc/Brisc.h"
#include "brisc/Interp.h"
#include "brisc/Pattern.h"
#include "corpus/Corpus.h"
#include "flate/Flate.h"
#include "ir/Text.h"
#include "native/Threaded.h"
#include "support/PRNG.h"
#include "vm/Encode.h"
#include "wire/Wire.h"

using namespace ccomp;
using namespace ccomp::test;

//===----------------------------------------------------------------------===//
// Synthetic-program sweep: every engine agrees, every compressor
// round-trips, across generator seeds.
//===----------------------------------------------------------------------===//

namespace {

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(SeedSweep, EnginesAgree) {
  std::string Src = corpus::synthesize(30, GetParam());
  vm::VMProgram P = buildVM(Src);
  vm::RunResult VM = vm::runProgram(P);
  ASSERT_TRUE(VM.Ok) << VM.Trap;

  brisc::BriscProgram B = brisc::compress(P);
  vm::RunResult BR = brisc::interpret(B);
  ASSERT_TRUE(BR.Ok) << BR.Trap;
  EXPECT_EQ(BR.Output, VM.Output);
  EXPECT_EQ(BR.ExitCode, VM.ExitCode);

  vm::RunResult NR = native::run(native::generateFromBrisc(B));
  ASSERT_TRUE(NR.Ok) << NR.Trap;
  EXPECT_EQ(NR.Output, VM.Output);
}

TEST_P(SeedSweep, WireRoundTripsExactly) {
  std::string Src = corpus::synthesize(30, GetParam());
  std::unique_ptr<ir::Module> M = compileC(Src);
  ASSERT_TRUE(M);
  std::string Before = ir::printModule(*M);
  for (wire::Pipeline P :
       {wire::Pipeline::Naive, wire::Pipeline::Streams,
        wire::Pipeline::StreamsMTF, wire::Pipeline::Full}) {
    std::vector<uint8_t> Z = wire::compress(*M, P);
    std::string Error;
    std::unique_ptr<ir::Module> Back = wire::decompress(Z, Error);
    ASSERT_TRUE(Back) << Error;
    EXPECT_EQ(ir::printModule(*Back), Before)
        << "pipeline " << unsigned(P);
  }
}

TEST_P(SeedSweep, NativeEncodingsRoundTrip) {
  std::string Src = corpus::synthesize(30, GetParam());
  vm::VMProgram P = buildVM(Src);
  for (const vm::VMFunction &F : P.Functions) {
    std::vector<vm::Instr> Fixed =
        vm::decodeFunction(vm::encodeFunction(F));
    ASSERT_EQ(Fixed.size(), F.Code.size()) << F.Name;
    for (size_t I = 0; I != Fixed.size(); ++I)
      EXPECT_EQ(Fixed[I], F.Code[I]) << F.Name << " " << I;
    std::vector<vm::Instr> Compact =
        vm::decodeFunctionCompact(vm::encodeFunctionCompact(F));
    ASSERT_EQ(Compact.size(), F.Code.size()) << F.Name;
    for (size_t I = 0; I != Compact.size(); ++I)
      EXPECT_EQ(Compact[I], F.Code[I]) << F.Name << " " << I;
  }
}

TEST_P(SeedSweep, BriscImageRoundTrips) {
  std::string Src = corpus::synthesize(30, GetParam());
  vm::VMProgram P = buildVM(Src);
  brisc::BriscProgram B = brisc::compress(P);
  std::vector<uint8_t> Img = B.serialize(/*IncludeData=*/true);
  brisc::BriscProgram B2 = brisc::BriscProgram::deserialize(Img);
  EXPECT_EQ(B2.serialize(true), Img);
  vm::RunResult R1 = brisc::interpret(B);
  vm::RunResult R2 = brisc::interpret(B2);
  EXPECT_EQ(R1.Output, R2.Output);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(2ull, 3ull, 5ull, 8ull, 13ull,
                                           21ull, 34ull, 55ull));

//===----------------------------------------------------------------------===//
// BRISC width classes
//===----------------------------------------------------------------------===//

namespace {

class WidthSweep : public ::testing::TestWithParam<brisc::Width> {};

} // namespace

TEST_P(WidthSweep, FitsWidthIsConsistentWithPacking) {
  brisc::Width W = GetParam();
  // Values representable under W must survive pack -> unpack through a
  // one-field SPILL pattern (reg specialized, imm at width W).
  brisc::Pattern P = brisc::Pattern::base(vm::VMOp::SPILL);
  P.Elems[0].SpecMask = 1; // Specialize the register field.
  P.Elems[0].SpecVals[0] = vm::N4;
  P.Elems[0].Widths[1] = W;
  ASSERT_TRUE(P.wellFormed());

  PRNG Rng(static_cast<uint64_t>(W) + 100);
  for (int Trial = 0; Trial != 200; ++Trial) {
    int64_t V = static_cast<int32_t>(Rng.next());
    if (Rng.chance(1, 2))
      V = (V % 600) * (Rng.chance(1, 2) ? 4 : 1);
    vm::Instr In;
    In.Op = vm::VMOp::SPILL;
    In.Rd = vm::N4;
    In.Imm = static_cast<int32_t>(V);
    bool Fits = brisc::fitsWidth(W, V);
    EXPECT_EQ(P.matches(&In, 1), Fits) << V;
    if (!Fits)
      continue;
    ByteWriter Wtr;
    brisc::packOperands(P, &In, Wtr);
    EXPECT_EQ(Wtr.size(), P.operandBytes());
    std::vector<vm::Instr> Out;
    size_t Used =
        brisc::unpackOperands(P, Wtr.bytes().data(), Wtr.size(), Out);
    EXPECT_EQ(Used, Wtr.size());
    ASSERT_EQ(Out.size(), 1u);
    EXPECT_EQ(Out[0], In) << "width " << unsigned(W) << " value " << V;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, WidthSweep,
    ::testing::Values(brisc::Width::Nib, brisc::Width::NibX4,
                      brisc::Width::B1, brisc::Width::B1X4,
                      brisc::Width::B2, brisc::Width::B4));

//===----------------------------------------------------------------------===//
// Flate: structured-buffer sweep
//===----------------------------------------------------------------------===//

namespace {

class FlateSweep : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(FlateSweep, RoundTripsStructuredBuffers) {
  PRNG Rng(GetParam());
  std::vector<uint8_t> In;
  size_t N = 1000 + Rng.below(80000);
  // Alternate runs, motifs, and noise.
  std::vector<uint8_t> Motif;
  for (int I = 0; I != 24; ++I)
    Motif.push_back(static_cast<uint8_t>(Rng.next()));
  while (In.size() < N) {
    switch (Rng.below(3)) {
    case 0:
      In.insert(In.end(), Motif.begin(), Motif.end());
      break;
    case 1:
      In.insert(In.end(), 1 + Rng.below(60),
                static_cast<uint8_t>(Rng.next()));
      break;
    default:
      for (unsigned I = 0, E = 1 + Rng.below(40); I != E; ++I)
        In.push_back(static_cast<uint8_t>(Rng.next()));
      break;
    }
  }
  std::vector<uint8_t> Z = flate::compress(In);
  EXPECT_EQ(flate::decompress(Z), In);
  // Structured data must actually compress.
  EXPECT_LT(Z.size(), In.size());
}

INSTANTIATE_TEST_SUITE_P(Buffers, FlateSweep,
                         ::testing::Range(1u, 13u));

//===- tests/test_corpus.cpp - Corpus differential tests ----------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Every corpus program must produce identical output and exit status
// under all execution engines: the VM interpreter on decoded code, the
// in-place BRISC interpreter, and the threaded-code ("native") backend —
// both generated directly and generated from BRISC (the JIT path). The
// wire format must round-trip each program's IR to identical text.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "brisc/Brisc.h"
#include "brisc/Interp.h"
#include "corpus/Corpus.h"
#include "ir/Text.h"
#include "native/Threaded.h"
#include "vm/Encode.h"
#include "wire/Wire.h"

using namespace ccomp;
using namespace ccomp::test;

namespace {

class CorpusTest : public ::testing::TestWithParam<corpus::Program> {};

} // namespace

TEST_P(CorpusTest, CompilesAndRuns) {
  const corpus::Program &P = GetParam();
  vm::RunResult R = runC(P.Source);
  EXPECT_TRUE(R.Ok) << P.Name << ": " << R.Trap;
  EXPECT_FALSE(R.Output.empty()) << P.Name << " printed nothing";
}

TEST_P(CorpusTest, EnginesAgree) {
  const corpus::Program &P = GetParam();
  vm::VMProgram VP = buildVM(P.Source);
  vm::RunResult VM = vm::runProgram(VP);
  ASSERT_TRUE(VM.Ok) << P.Name << ": " << VM.Trap;

  brisc::BriscProgram B = brisc::compress(VP);
  vm::RunResult BI = brisc::interpret(B);
  ASSERT_TRUE(BI.Ok) << P.Name << " (brisc interp): " << BI.Trap;
  EXPECT_EQ(BI.ExitCode, VM.ExitCode) << P.Name;
  EXPECT_EQ(BI.Output, VM.Output) << P.Name;

  native::NProgram N = native::generate(VP);
  vm::RunResult NR = native::run(N);
  ASSERT_TRUE(NR.Ok) << P.Name << " (native): " << NR.Trap;
  EXPECT_EQ(NR.ExitCode, VM.ExitCode) << P.Name;
  EXPECT_EQ(NR.Output, VM.Output) << P.Name;

  native::NProgram NJ = native::generateFromBrisc(B);
  vm::RunResult JR = native::run(NJ);
  ASSERT_TRUE(JR.Ok) << P.Name << " (jit): " << JR.Trap;
  EXPECT_EQ(JR.ExitCode, VM.ExitCode) << P.Name;
  EXPECT_EQ(JR.Output, VM.Output) << P.Name;
}

TEST_P(CorpusTest, WireRoundTrip) {
  const corpus::Program &P = GetParam();
  std::unique_ptr<ir::Module> M = compileC(P.Source);
  ASSERT_TRUE(M);
  std::string Before = ir::printModule(*M);
  std::vector<uint8_t> Z = wire::compress(*M);
  std::string Error;
  std::unique_ptr<ir::Module> Back = wire::decompress(Z, Error);
  ASSERT_TRUE(Back) << P.Name << ": " << Error;
  EXPECT_EQ(ir::printModule(*Back), Before) << P.Name;
}

TEST_P(CorpusTest, BriscImageRoundTrip) {
  const corpus::Program &P = GetParam();
  vm::VMProgram VP = buildVM(P.Source);
  brisc::BriscProgram B = brisc::compress(VP);
  std::vector<uint8_t> Image = B.serialize(/*IncludeData=*/true);
  brisc::BriscProgram B2 = brisc::BriscProgram::deserialize(Image);
  vm::RunResult R1 = brisc::interpret(B);
  vm::RunResult R2 = brisc::interpret(B2);
  ASSERT_TRUE(R1.Ok && R2.Ok) << P.Name;
  EXPECT_EQ(R1.Output, R2.Output) << P.Name;
}

INSTANTIATE_TEST_SUITE_P(
    All, CorpusTest, ::testing::ValuesIn(corpus::programs()),
    [](const ::testing::TestParamInfo<corpus::Program> &Info) {
      return std::string(Info.param.Name);
    });

//===----------------------------------------------------------------------===//
// Synthetic generator
//===----------------------------------------------------------------------===//

TEST(Synth, Deterministic) {
  EXPECT_EQ(corpus::synthesize(50, 7), corpus::synthesize(50, 7));
  EXPECT_NE(corpus::synthesize(50, 7), corpus::synthesize(50, 8));
}

TEST(Synth, CompilesAndRunsAcrossSeeds) {
  for (uint64_t Seed : {1ull, 99ull, 31337ull}) {
    std::string Src = corpus::synthesize(40, Seed);
    vm::VMProgram P = buildVM(Src);
    vm::RunResult R = vm::runProgram(P);
    ASSERT_TRUE(R.Ok) << "seed " << Seed << ": " << R.Trap;
  }
}

TEST(Synth, EnginesAgreeOnSynthetic) {
  std::string Src = corpus::synthesize(80, 5);
  vm::VMProgram P = buildVM(Src);
  vm::RunResult VM = vm::runProgram(P);
  ASSERT_TRUE(VM.Ok) << VM.Trap;
  brisc::BriscProgram B = brisc::compress(P);
  vm::RunResult BI = brisc::interpret(B);
  ASSERT_TRUE(BI.Ok) << BI.Trap;
  EXPECT_EQ(BI.Output, VM.Output);
  vm::RunResult NR = native::run(native::generate(P));
  ASSERT_TRUE(NR.Ok) << NR.Trap;
  EXPECT_EQ(NR.Output, VM.Output);
}

TEST(Synth, SizeClassesScale) {
  std::string Wep = corpus::sizeClassSource("wep");
  std::string Icc = corpus::sizeClassSource("icc");
  EXPECT_LT(Wep.size(), Icc.size());
}

//===- tests/test_store.cpp - Demand-paged compressed-code store ---------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The store's promises: execution out of the decode-on-fault cache is
// byte-for-byte identical to eager full decode for every per-function
// codec at any budget; eviction follows LRU recency and honors pins;
// N concurrent faults on one function perform exactly one decode; and a
// corrupt frame fails its own faults recoverably while every other
// function stays servable.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "corpus/Corpus.h"
#include "pipeline/Codec.h"
#include "pipeline/Pipeline.h"
#include "store/CodeStore.h"
#include "store/Resolver.h"
#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <thread>

using namespace ccomp;
using namespace ccomp::store;
using namespace ccomp::test;

namespace {

std::unique_ptr<CodeStore> mustBuildStore(const vm::VMProgram &P,
                                          const std::string &Chain,
                                          StoreOptions Opts) {
  std::string Err;
  std::unique_ptr<CodeStore> S = CodeStore::build(P, Chain, Opts, Err);
  EXPECT_NE(S, nullptr) << Chain << ": " << Err;
  return S;
}

// A registered passthrough codec whose decode can be slowed on demand,
// to widen the single-flight race window without slowing other tests.
std::atomic<bool> SlowDecode{false};

class SlowRawCodec final : public pipeline::Codec {
public:
  const char *name() const override { return "slow-raw"; }
  const char *description() const override {
    return "test passthrough with a switchable decode delay";
  }
  pipeline::PayloadKind payloadKind() const override {
    return pipeline::PayloadKind::Raw;
  }

protected:
  std::vector<uint8_t> compressImpl(ByteSpan P) const override {
    return P.toVector();
  }
  Result<std::vector<uint8_t>> tryDecompressImpl(ByteSpan F) const override {
    if (SlowDecode.load(std::memory_order_relaxed))
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return F.toVector();
  }
};

void ensureSlowRawRegistered() {
  static bool Done = [] {
    pipeline::Registry::instance().add(std::make_unique<SlowRawCodec>());
    return true;
  }();
  (void)Done;
}

// Per-function chains under test; iterating the registry would also pick
// up test codecs registered by other cases.
const char *const PerFunctionChains[] = {"flate", "vm-compact", "brisc",
                                         "brisc+flate", "vm-compact+flate"};

TEST(Store, BuildSaveLoadRoundTrip) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  std::unique_ptr<CodeStore> S =
      mustBuildStore(P, "brisc+flate", StoreOptions());
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->functionCount(), P.Functions.size());
  EXPECT_EQ(S->chainSpec(), "brisc+flate");
  EXPECT_GT(S->frameBytes(), 0u);
  for (uint32_t I = 0; I != S->functionCount(); ++I)
    EXPECT_EQ(S->functionName(I), P.Functions[I].Name);

  std::vector<uint8_t> Image = S->save();
  Result<std::unique_ptr<CodeStore>> Back =
      CodeStore::tryLoad(Image, StoreOptions());
  ASSERT_TRUE(Back.ok()) << Back.error().message();
  std::unique_ptr<CodeStore> L = Back.take();
  EXPECT_EQ(L->functionCount(), S->functionCount());
  EXPECT_EQ(L->chainSpec(), "brisc+flate");
  EXPECT_EQ(L->frameBytes(), S->frameBytes());
  EXPECT_EQ(L->skeleton().Entry, P.Entry);
  EXPECT_EQ(L->skeleton().Globals.size(), P.Globals.size());

  // Corrupt containers fail typed at load, never abort.
  for (size_t Keep : {size_t(0), size_t(5), Image.size() / 2}) {
    std::vector<uint8_t> Cut(Image.begin(), Image.begin() + Keep);
    EXPECT_FALSE(CodeStore::tryLoad(Cut, StoreOptions()).ok())
        << "keep=" << Keep;
  }
}

TEST(Store, ColdMissThenWarmHit) {
  vm::VMProgram P = buildVM(syntheticSource(4));
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "flate", StoreOptions());
  EXPECT_FALSE(S->isResident(0));

  Result<std::shared_ptr<const vm::VMFunction>> Cold = S->fault(0);
  ASSERT_TRUE(Cold.ok()) << Cold.error().message();
  EXPECT_EQ(Cold.value()->Name, P.Functions[0].Name);
  EXPECT_EQ(Cold.value()->Code.size(), P.Functions[0].Code.size());
  EXPECT_TRUE(S->isResident(0));

  Result<std::shared_ptr<const vm::VMFunction>> Warm = S->fault(0);
  ASSERT_TRUE(Warm.ok());
  EXPECT_EQ(Warm.value().get(), Cold.value().get()) << "hit must not decode";

  StoreStats St = S->stats();
  EXPECT_EQ(St.Misses, 1u);
  EXPECT_EQ(St.Decodes, 1u);
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.DecodeErrors, 0u);
  EXPECT_EQ(St.ResidentFunctions, 1u);
  EXPECT_EQ(St.ResidentBytes, decodedCostBytes(*Cold.value()));
  EXPECT_GT(St.DecodeNanos, 0u);
  EXPECT_DOUBLE_EQ(St.hitRate(), 0.5);

  S->resetStats();
  StoreStats R = S->stats();
  EXPECT_EQ(R.Hits + R.Misses + R.Decodes, 0u);
  EXPECT_EQ(R.ResidentFunctions, 1u) << "gauges survive resetStats";
  EXPECT_EQ(R.ResidentBytes, St.ResidentBytes);
}

// The acceptance bar: a store-backed run is byte-for-byte the eager run,
// for every per-function codec, at a generous budget and at a 1-byte
// budget (which holds exactly the most recently faulted function).
TEST(Store, ExecutionMatchesEagerAtAnyBudget) {
  vm::VMProgram P = buildVM(syntheticSource(10));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok) << Eager.Trap;

  for (const char *Chain : PerFunctionChains) {
    std::unique_ptr<CodeStore> Built =
        mustBuildStore(P, Chain, StoreOptions());
    ASSERT_NE(Built, nullptr);
    std::vector<uint8_t> Image = Built->save();
    for (size_t Budget : {size_t(16) << 20, size_t(1)}) {
      StoreOptions Opts;
      Opts.CacheBudgetBytes = Budget;
      Result<std::unique_ptr<CodeStore>> L = CodeStore::tryLoad(Image, Opts);
      ASSERT_TRUE(L.ok()) << Chain << ": " << L.error().message();
      std::unique_ptr<CodeStore> S = L.take();

      vm::RunResult R = runFromStore(*S);
      EXPECT_TRUE(R.Ok) << Chain << " budget=" << Budget << ": " << R.Trap;
      EXPECT_EQ(R.ExitCode, Eager.ExitCode) << Chain << " budget=" << Budget;
      EXPECT_EQ(R.Output, Eager.Output) << Chain << " budget=" << Budget;
      EXPECT_EQ(R.Steps, Eager.Steps) << Chain << " budget=" << Budget;

      StoreStats St = S->stats();
      EXPECT_GE(St.Misses, 1u) << Chain;
      if (Budget == size_t(1))
        EXPECT_GT(St.Evictions, 0u)
            << Chain << ": a 1-byte budget must be evicting";
    }
  }
}

// Same bar on a real corpus program (its checksum output makes Output
// equality meaningful), default budget.
TEST(Store, CorpusProgramMatchesEagerForEveryChain) {
  const corpus::Program &CP = corpus::programs().front();
  vm::VMProgram P = buildVM(CP.Source);
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok) << CP.Name << ": " << Eager.Trap;
  ASSERT_FALSE(Eager.Output.empty()) << "corpus programs print a checksum";

  for (const char *Chain : PerFunctionChains) {
    std::unique_ptr<CodeStore> S = mustBuildStore(P, Chain, StoreOptions());
    ASSERT_NE(S, nullptr);
    vm::RunResult R = runFromStore(*S);
    EXPECT_TRUE(R.Ok) << Chain << ": " << R.Trap;
    EXPECT_EQ(R.Output, Eager.Output) << Chain;
    EXPECT_EQ(R.ExitCode, Eager.ExitCode) << Chain;
    EXPECT_EQ(R.Steps, Eager.Steps) << Chain;
  }
}

TEST(Store, ModuleGranularityCodecRejected) {
  vm::VMProgram P = buildVM(syntheticSource(3));
  std::string Err;
  EXPECT_EQ(CodeStore::build(P, "wire", StoreOptions(), Err), nullptr);
  EXPECT_NE(Err.find("wire"), std::string::npos) << Err;

  // A container claiming a module chain is rejected at load too. Frame 0
  // carries the manifest magic ("CCSM") so the refusal under test is the
  // chain kind, not the missing-manifest check.
  std::vector<uint8_t> Fake = pipeline::packContainer(
      "wire", {std::vector<uint8_t>{0x43, 0x43, 0x53, 0x4D},
               std::vector<uint8_t>{4, 5}});
  Result<std::unique_ptr<CodeStore>> L =
      CodeStore::tryLoad(Fake, StoreOptions());
  ASSERT_FALSE(L.ok());
  EXPECT_NE(L.error().message().find("wire"), std::string::npos);
}

TEST(Store, EvictionFollowsLruRecency) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  ASSERT_GE(P.Functions.size(), 3u);
  // flate preserves Code/LabelPos/Name/FrameSize exactly, so decoded
  // costs equal the eager program's.
  size_t C0 = decodedCostBytes(P.Functions[0]);
  size_t C1 = decodedCostBytes(P.Functions[1]);
  size_t C2 = decodedCostBytes(P.Functions[2]);

  StoreOptions Opts;
  Opts.Shards = 1; // One shard so all three ids share one LRU list.
  Opts.CacheBudgetBytes = C0 + C1 + C2 - 1;
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "flate", Opts);

  ASSERT_TRUE(S->fault(0).ok());
  ASSERT_TRUE(S->fault(1).ok());
  ASSERT_TRUE(S->fault(2).ok()); // Over budget: the coldest (0) goes.
  EXPECT_FALSE(S->isResident(0));
  EXPECT_TRUE(S->isResident(1));
  EXPECT_TRUE(S->isResident(2));
  EXPECT_EQ(S->stats().Evictions, 1u);
  EXPECT_EQ(S->stats().ResidentBytes, C1 + C2);

  // Touch 1 so 2 becomes the coldest, then re-fault 0.
  ASSERT_TRUE(S->fault(1).ok());
  ASSERT_TRUE(S->fault(0).ok());
  EXPECT_TRUE(S->isResident(0));
  EXPECT_TRUE(S->isResident(1));
  EXPECT_FALSE(S->isResident(2)) << "recency order decides the victim";
  EXPECT_EQ(S->stats().Evictions, 2u);
}

TEST(Store, PinnedEntriesSurviveEviction) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  ASSERT_GE(P.Functions.size(), 4u);
  StoreOptions Opts;
  Opts.Shards = 1;
  Opts.CacheBudgetBytes = 1; // Every insertion is over budget.
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "vm-compact", Opts);

  ASSERT_TRUE(S->pin(0).ok());
  EXPECT_EQ(S->stats().PinnedFunctions, 1u);
  ASSERT_TRUE(S->fault(1).ok());
  ASSERT_TRUE(S->fault(2).ok());
  EXPECT_TRUE(S->isResident(0)) << "pinned entries are not victims";
  EXPECT_FALSE(S->isResident(1));
  EXPECT_TRUE(S->isResident(2)) << "the newest insertion always stays";

  // Pinning an already-resident entry goes through the hit path.
  ASSERT_TRUE(S->pin(2).ok());
  EXPECT_EQ(S->stats().PinnedFunctions, 2u);
  ASSERT_TRUE(S->fault(3).ok());
  EXPECT_TRUE(S->isResident(0));
  EXPECT_TRUE(S->isResident(2));

  S->unpin(0);
  EXPECT_EQ(S->stats().PinnedFunctions, 1u);
  ASSERT_TRUE(S->fault(1).ok());
  EXPECT_FALSE(S->isResident(0)) << "unpin makes it evictable again";

  // Plain LRU records pins but does not honor them.
  StoreOptions Plain = Opts;
  Plain.Policy = EvictPolicy::LRU;
  std::unique_ptr<CodeStore> S2 = mustBuildStore(P, "vm-compact", Plain);
  ASSERT_TRUE(S2->pin(0).ok());
  ASSERT_TRUE(S2->fault(1).ok());
  EXPECT_FALSE(S2->isResident(0));
  EXPECT_EQ(S2->stats().PinnedFunctions, 0u);
}

// N threads faulting the same cold function: exactly one decode, the
// rest served as hits or single-flight waits. The tsan preset runs this
// with full happens-before checking.
TEST(Store, ConcurrentFaultsDecodeOnce) {
  ensureSlowRawRegistered();
  vm::VMProgram P = buildVM(syntheticSource(4));
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "slow-raw", StoreOptions());

  constexpr unsigned NumThreads = 8;
  SlowDecode.store(true);
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::atomic<unsigned> Failures{0};
  const vm::VMFunction *Seen[NumThreads] = {};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      ++Ready;
      while (!Go.load())
        std::this_thread::yield();
      Result<std::shared_ptr<const vm::VMFunction>> R = S->fault(0);
      if (R.ok())
        Seen[T] = R.value().get();
      else
        ++Failures;
    });
  while (Ready.load() != NumThreads)
    std::this_thread::yield();
  Go.store(true);
  for (std::thread &T : Threads)
    T.join();
  SlowDecode.store(false);

  EXPECT_EQ(Failures.load(), 0u);
  for (unsigned T = 1; T != NumThreads; ++T)
    EXPECT_EQ(Seen[T], Seen[0]) << "all threads share one decoded body";

  StoreStats St = S->stats();
  EXPECT_EQ(St.Decodes, 1u) << "single-flight collapses concurrent decodes";
  EXPECT_EQ(St.Hits + St.Misses, uint64_t(NumThreads));
  EXPECT_EQ(St.SingleFlightWaits, St.Misses - 1)
      << "every miss after the leader waits on its future";
  EXPECT_EQ(St.DecodeErrors, 0u);
}

TEST(Store, CorruptFrameFailsRecoverablyOthersServable) {
  vm::VMProgram P = buildVM(syntheticSource(5));
  std::unique_ptr<CodeStore> Built = mustBuildStore(P, "flate", StoreOptions());
  std::vector<uint8_t> Image = Built->save();

  // Container surgery: replace the entry function's frame (frame 0 is
  // the manifest) with junk flate will reject, repack, reload.
  Result<pipeline::Container> Box = pipeline::tryUnpackContainer(Image);
  ASSERT_TRUE(Box.ok());
  uint32_t Victim = Built->skeleton().Entry;
  Box.value().Frames[Victim + 1] = {1, 2, 3};
  std::vector<uint8_t> Doctored =
      pipeline::packContainer(Box.value().ChainSpec, Box.value().Frames);

  Result<std::unique_ptr<CodeStore>> L =
      CodeStore::tryLoad(Doctored, StoreOptions());
  ASSERT_TRUE(L.ok()) << "frame corruption surfaces at fault, not load: "
                      << L.error().message();
  std::unique_ptr<CodeStore> S = L.take();

  // The corrupt function fails every fault (errors are not cached)...
  for (int Try = 0; Try != 2; ++Try) {
    Result<std::shared_ptr<const vm::VMFunction>> R = S->fault(Victim);
    ASSERT_FALSE(R.ok());
    EXPECT_FALSE(R.error().message().empty());
  }
  EXPECT_EQ(S->stats().DecodeErrors, 2u);
  EXPECT_FALSE(S->isResident(Victim));

  // ...while every other function still serves.
  for (uint32_t I = 0; I != S->functionCount(); ++I) {
    if (I == Victim)
      continue;
    Result<std::shared_ptr<const vm::VMFunction>> R = S->fault(I);
    EXPECT_TRUE(R.ok()) << I << ": " << R.error().message();
  }

  // Executing through the resolver traps that run; the process carries on.
  vm::RunResult R = runFromStore(*S);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Trap.find("resolve function"), std::string::npos) << R.Trap;
}

// The shard split must not truncate: budget/N drops up to N-1 bytes, so
// a 7-byte budget over 4 shards would quietly behave as 4 bytes. The
// remainder is distributed one byte per shard and the effective
// capacity always equals the configured budget.
TEST(Store, ShardBudgetDistributesRemainder) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  for (unsigned Shards : {1u, 3u, 4u, 7u}) {
    for (size_t Budget : {size_t(7), size_t(1), size_t(64) + 3,
                          size_t(1) << 20}) {
      StoreOptions Opts;
      Opts.Shards = Shards;
      Opts.CacheBudgetBytes = Budget;
      std::unique_ptr<CodeStore> S = mustBuildStore(P, "flate", Opts);
      ASSERT_NE(S, nullptr);
      EXPECT_EQ(S->cacheBudgetBytes(), Budget)
          << Shards << " shards, budget " << Budget;
    }
  }
}

// Prefetch warms must not masquerade as demand traffic: a prefetched
// frame is neither a Hit nor a Miss, and its decode is tallied
// separately as a PrefetchDecode.
TEST(Store, PrefetchAccountsSeparatelyFromDemand) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "flate", StoreOptions());
  ASSERT_NE(S, nullptr);
  std::vector<uint32_t> All;
  for (uint32_t I = 0; I != S->functionCount(); ++I)
    All.push_back(I);

  ThreadPool Pool(4);
  S->prefetch(All, Pool);
  Pool.wait();

  StoreStats St = S->stats();
  EXPECT_EQ(St.Misses, 0u) << "prefetch warms are not cold misses";
  EXPECT_EQ(St.Hits, 0u);
  EXPECT_EQ(St.Decodes, uint64_t(All.size()));
  EXPECT_EQ(St.PrefetchDecodes, uint64_t(All.size()));
  EXPECT_EQ(St.ResidentFunctions, uint64_t(All.size()));

  // Demand traffic after the warm-up is pure hits, and demand decodes
  // (here: none) stay out of PrefetchDecodes.
  ASSERT_TRUE(S->fault(0).ok());
  St = S->stats();
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Misses, 0u);
  EXPECT_EQ(St.Decodes, uint64_t(All.size()));
  EXPECT_EQ(St.PrefetchDecodes, uint64_t(All.size()));
}

TEST(Store, PrefetchWarmsTheCache) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok);

  std::unique_ptr<CodeStore> S =
      mustBuildStore(P, "brisc+flate", StoreOptions());
  std::vector<uint32_t> All;
  for (uint32_t I = 0; I != S->functionCount(); ++I)
    All.push_back(I);

  ThreadPool Pool(4);
  S->prefetch(All, Pool);
  Pool.wait();
  EXPECT_EQ(S->stats().ResidentFunctions, uint64_t(All.size()));

  S->resetStats();
  vm::RunResult R = runFromStore(*S);
  EXPECT_TRUE(R.Ok) << R.Trap;
  EXPECT_EQ(R.Output, Eager.Output);
  StoreStats St = S->stats();
  EXPECT_EQ(St.Misses, 0u) << "a prefetched store never faults";
  EXPECT_GT(St.Hits, 0u);
}

TEST(Store, FaultOutOfRangeIsTypedError) {
  vm::VMProgram P = buildVM(syntheticSource(3));
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "flate", StoreOptions());
  Result<std::shared_ptr<const vm::VMFunction>> R =
      S->fault(S->functionCount());
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("out of range"), std::string::npos);
  EXPECT_FALSE(S->isResident(S->functionCount()));
}

} // namespace

//===- tests/test_perpage_store.cpp - Per-frame codec selection ----------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The per-page selection promises: a store built with candidate chains
// never produces more compressed bytes than any of its chains used
// globally; the selection is deterministic (budget 0); a non-uniform
// outcome round-trips through a manifest v4 image that executes
// byte-identically to eager; a uniform outcome (duplicate candidates,
// or a decode budget that rejects every alternative) normalizes to a
// container bit-identical to a plain single-chain build; crafted v4
// manifests fail typed; and concurrent faults through mixed per-frame
// chains decode correctly under the thread sanitizer.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pipeline/Codec.h"
#include "pipeline/Pipeline.h"
#include "store/CodeStore.h"
#include "store/Resolver.h"

#include "gtest/gtest.h"

#include <thread>

using namespace ccomp;
using namespace ccomp::store;
using namespace ccomp::test;

namespace {

// Primary first; the rest are the --chains candidates. All of one body
// kind family (Raw/FixedCode payloads are the same bytes).
const char *const Primary = "vm-compact";
const std::vector<std::string> Candidates = {"vm-compact+flate", "bwt-dict",
                                             "brisc-ctx"};

std::unique_ptr<CodeStore> mustBuildStore(const vm::VMProgram &P,
                                          const std::string &Chain,
                                          StoreOptions Opts) {
  std::string Err;
  std::unique_ptr<CodeStore> S = CodeStore::build(P, Chain, Opts, Err);
  EXPECT_NE(S, nullptr) << Chain << ": " << Err;
  return S;
}

StoreOptions perPageOpts(size_t PageTarget) {
  StoreOptions Opts;
  Opts.PageTargetBytes = PageTarget;
  Opts.CacheBudgetBytes = 64u << 20;
  Opts.CandidateChains = Candidates;
  return Opts;
}

/// The version byte of a container's store manifest (frame 0).
uint8_t manifestVersion(const std::vector<uint8_t> &Image) {
  Result<pipeline::Container> C = pipeline::tryUnpackContainer(Image);
  EXPECT_TRUE(C.ok());
  EXPECT_GE(C.value().Frames[0].size(), size_t(5));
  return C.value().Frames[0][4];
}

/// Repacks \p Image with its manifest replaced by \p Manifest.
std::vector<uint8_t> withManifest(const std::vector<uint8_t> &Image,
                                  std::vector<uint8_t> Manifest) {
  Result<pipeline::Container> C = pipeline::tryUnpackContainer(Image);
  EXPECT_TRUE(C.ok());
  pipeline::Container Cont = C.take();
  Cont.Frames[0] = std::move(Manifest);
  return pipeline::packContainer(Cont.ChainSpec, Cont.Frames);
}

void expectLoadFails(const std::vector<uint8_t> &Image,
                     const std::string &Needle) {
  Result<std::unique_ptr<CodeStore>> L =
      CodeStore::tryLoad(Image, StoreOptions());
  ASSERT_FALSE(L.ok()) << "expected a typed reject: " << Needle;
  EXPECT_NE(L.error().message().find(Needle), std::string::npos)
      << L.error().message();
}

TEST(PerPageStore, SelectionNeverWorseAndExecutesIdentically) {
  vm::VMProgram P = buildVM(syntheticSource(10));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok) << Eager.Trap;

  for (size_t Target : {size_t(64), size_t(256), size_t(0)}) {
    StoreOptions Single;
    Single.PageTargetBytes = Target;
    Single.CacheBudgetBytes = 64u << 20;
    size_t MinSingle = ~size_t(0);
    std::vector<std::string> All{Primary};
    All.insert(All.end(), Candidates.begin(), Candidates.end());
    for (const std::string &CS : All) {
      std::unique_ptr<CodeStore> S = mustBuildStore(P, CS, Single);
      ASSERT_NE(S, nullptr);
      MinSingle = std::min(MinSingle, S->frameBytes());
    }

    std::unique_ptr<CodeStore> Sel =
        mustBuildStore(P, Primary, perPageOpts(Target));
    ASSERT_NE(Sel, nullptr);
    // Per-frame minimum over the same chains can never lose to any one
    // chain applied globally.
    EXPECT_LE(Sel->frameBytes(), MinSingle) << "page target " << Target;

    vm::RunResult R = runFromStore(*Sel);
    ASSERT_TRUE(R.Ok) << R.Trap;
    EXPECT_EQ(R.Output, Eager.Output);
    EXPECT_EQ(R.ExitCode, Eager.ExitCode);
    EXPECT_EQ(R.Steps, Eager.Steps);
  }
}

TEST(PerPageStore, SelectionIsDeterministic) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  std::unique_ptr<CodeStore> A = mustBuildStore(P, Primary, perPageOpts(64));
  ASSERT_NE(A, nullptr);
  StoreOptions Parallel = perPageOpts(64);
  Parallel.BuildJobs = 4;
  std::unique_ptr<CodeStore> B = mustBuildStore(P, Primary, Parallel);
  ASSERT_NE(B, nullptr);
  // Budget 0 makes the selection a pure size comparison, so serial and
  // 4-job builds must produce bit-identical containers.
  EXPECT_EQ(A->save(), B->save());
}

TEST(PerPageStore, NonUniformSelectionRoundTripsAsManifestV4) {
  vm::VMProgram P = buildVM(syntheticSource(10));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok) << Eager.Trap;

  std::unique_ptr<CodeStore> Sel = mustBuildStore(P, Primary, perPageOpts(64));
  ASSERT_NE(Sel, nullptr);
  // This corpus/chain set is known to split across chains; the build is
  // deterministic, so this cannot flake.
  ASSERT_TRUE(Sel->perPageChains());
  EXPECT_EQ(Sel->chainSpec(), Primary);

  std::vector<uint8_t> Image = Sel->save();
  EXPECT_EQ(manifestVersion(Image), 4);

  Result<std::unique_ptr<CodeStore>> L =
      CodeStore::tryLoad(Image, StoreOptions());
  ASSERT_TRUE(L.ok()) << L.error().message();
  CodeStore &Re = *L.value();
  EXPECT_TRUE(Re.perPageChains());
  EXPECT_EQ(Re.chainSpec(), Primary);
  EXPECT_EQ(Re.frameBytes(), Sel->frameBytes());
  // Every frame's chain survived the round trip.
  for (uint32_t I = 0; I != Re.frameCount(); ++I)
    EXPECT_EQ(Re.frameChainSpec(I), Sel->frameChainSpec(I)) << "frame " << I;
  // Re-saving the loaded store reproduces the image bit for bit.
  EXPECT_EQ(Re.save(), Image);

  vm::RunResult R = runFromStore(Re);
  ASSERT_TRUE(R.Ok) << R.Trap;
  EXPECT_EQ(R.Output, Eager.Output);
  EXPECT_EQ(R.ExitCode, Eager.ExitCode);
  EXPECT_EQ(R.Steps, Eager.Steps);
}

TEST(PerPageStore, UniformOutcomesNormalizeToV3) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  StoreOptions Plain;
  Plain.PageTargetBytes = 64;
  std::unique_ptr<CodeStore> Base = mustBuildStore(P, Primary, Plain);
  ASSERT_NE(Base, nullptr);
  std::vector<uint8_t> BaseImage = Base->save();
  EXPECT_EQ(manifestVersion(BaseImage), 3);

  // Candidates that duplicate the primary collapse to a single chain.
  StoreOptions Dup = Plain;
  Dup.CandidateChains = {Primary, Primary};
  std::unique_ptr<CodeStore> D = mustBuildStore(P, Primary, Dup);
  ASSERT_NE(D, nullptr);
  EXPECT_FALSE(D->perPageChains());
  EXPECT_EQ(D->save(), BaseImage);

  // A decode budget no chain can meet rejects every candidate, so each
  // frame falls back to the primary — uniform, normalized, identical.
  StoreOptions Starved = perPageOpts(64);
  Starved.FrameDecodeBudgetNanos = 1;
  std::unique_ptr<CodeStore> S = mustBuildStore(P, Primary, Starved);
  ASSERT_NE(S, nullptr);
  EXPECT_FALSE(S->perPageChains());
  EXPECT_EQ(S->save(), BaseImage);
}

TEST(PerPageStore, RejectsCandidateOfDifferentBodyKind) {
  vm::VMProgram P = buildVM(syntheticSource(4));
  StoreOptions Opts;
  Opts.CandidateChains = {"brisc"}; // FuncImage vs vm-compact's FixedCode.
  std::string Err;
  std::unique_ptr<CodeStore> S = CodeStore::build(P, Primary, Opts, Err);
  EXPECT_EQ(S, nullptr);
  EXPECT_NE(Err.find("different frame body kind"), std::string::npos) << Err;

  Opts.CandidateChains = {"no-such-codec"};
  S = CodeStore::build(P, Primary, Opts, Err);
  EXPECT_EQ(S, nullptr);
}

TEST(PerPageStore, CraftedV4ManifestsFailTyped) {
  vm::VMProgram P = buildVM(syntheticSource(10));
  std::unique_ptr<CodeStore> Sel = mustBuildStore(P, Primary, perPageOpts(64));
  ASSERT_NE(Sel, nullptr);
  ASSERT_TRUE(Sel->perPageChains());
  std::vector<uint8_t> Image = Sel->save();
  Result<pipeline::Container> C = pipeline::tryUnpackContainer(Image);
  ASSERT_TRUE(C.ok());
  const std::vector<uint8_t> &M = C.value().Frames[0];
  // v4 layout: magic(4) version(1) flags(1) hash(8) bodyTag(1), then
  // varU NumChains at 15, then the chain-spec strings.
  ASSERT_EQ(M[4], 4);
  const size_t ChainCountOff = 15;
  ASSERT_LT(M[ChainCountOff], 128) << "chain count varU is one byte";

  { // Chain count below the v4 minimum.
    std::vector<uint8_t> X = M;
    X[ChainCountOff] = 1;
    expectLoadFails(withManifest(Image, X), "chain count out of range");
  }
  { // Chain count above the cap.
    std::vector<uint8_t> X = M;
    X[ChainCountOff] = 65;
    expectLoadFails(withManifest(Image, X), "chain count out of range");
  }
  { // Table head rerouted away from the container spec.
    std::vector<uint8_t> X = M;
    X[ChainCountOff + 2] ^= 0x01; // First byte of the head spec string.
    expectLoadFails(withManifest(Image, X),
                    "chain table head does not match");
  }
  { // A candidate spec mangled into an unknown codec.
    std::vector<uint8_t> X = M;
    size_t HeadLen = M[ChainCountOff + 1];
    size_t Spec1 = ChainCountOff + 2 + HeadLen; // varU len of spec 1.
    X[Spec1 + 1] ^= 0x01;
    expectLoadFails(withManifest(Image, X), "per-page chain");
  }
  { // A per-frame index past the chain table (the indices are the last
    // bytes of the manifest, one single-byte varU per frame).
    std::vector<uint8_t> X = M;
    X.back() = 63;
    expectLoadFails(withManifest(Image, X), "chain index out of range");
  }
}

// The tsan-preset hammer: many threads fault every function of a
// mixed-chain store concurrently, under a budget small enough to force
// eviction and re-decode, and every body must match the eager decode.
TEST(PerPageStore, ConcurrentMixedChainFaultsMatchEager) {
  vm::VMProgram P = buildVM(syntheticSource(10));
  StoreOptions Opts = perPageOpts(64);
  Opts.CacheBudgetBytes = 4096; // Thrash: decode, evict, decode again.
  std::unique_ptr<CodeStore> S = mustBuildStore(P, Primary, Opts);
  ASSERT_NE(S, nullptr);
  ASSERT_TRUE(S->perPageChains());

  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != 8; ++T)
    Threads.emplace_back([&] {
      for (int Round = 0; Round != 4; ++Round)
        for (uint32_t Fn = 0; Fn != S->functionCount(); ++Fn) {
          Result<std::shared_ptr<const vm::VMFunction>> R = S->fault(Fn);
          if (!R.ok() || R.value()->Code.size() != P.Functions[Fn].Code.size())
            Failures.fetch_add(1, std::memory_order_relaxed);
        }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
}

} // namespace

//===- tests/test_codegen.cpp - IR -> VM code generation tests -----------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "corpus/Corpus.h"
#include "vm/Asm.h"
#include "vm/Encode.h"

using namespace ccomp;
using namespace ccomp::test;
using vm::VMOp;

namespace {

/// Returns the generated code of function \p Name.
const vm::VMFunction &functionOf(const vm::VMProgram &P,
                                 const std::string &Name) {
  int32_t I = P.findFunction(Name);
  EXPECT_GE(I, 0) << Name;
  return P.Functions[static_cast<size_t>(I)];
}

unsigned countOp(const vm::VMFunction &F, VMOp Op) {
  unsigned N = 0;
  for (const vm::Instr &In : F.Code)
    N += In.Op == Op;
  return N;
}

} // namespace

TEST(Codegen, PrologueEpilogueShape) {
  // The paper's section-4 example shape: enter; spill...; body;
  // reload...; exit; rjr ra.
  vm::VMProgram P = buildVM(
      "int pepper(int i, int j) { return i + j; }\n"
      "int salt(int j, int i) {\n"
      "  if (j > 0) { pepper(i, j); j--; }\n"
      "  return j;\n"
      "}\n"
      "int main(void) { return salt(5, 9); }");
  const vm::VMFunction &Salt = functionOf(P, "salt");
  ASSERT_GT(Salt.Code.size(), 6u);
  EXPECT_EQ(Salt.Code[0].Op, VMOp::ENTER);
  EXPECT_EQ(Salt.Code[1].Op, VMOp::SPILL);
  EXPECT_EQ(Salt.Code.back().Op, VMOp::RJR);
  EXPECT_EQ(Salt.Code.back().Rd, vm::RA);
  EXPECT_EQ(Salt.Code[Salt.Code.size() - 2].Op, VMOp::EXIT);
  EXPECT_GT(countOp(Salt, VMOp::RELOAD), 0u);
  // salt calls pepper, so ra must be among the spills.
  bool SpillsRA = false;
  for (const vm::Instr &In : Salt.Code)
    if (In.Op == VMOp::SPILL && In.Rd == vm::RA)
      SpillsRA = true;
  EXPECT_TRUE(SpillsRA);
  // The enter/exit frame sizes agree.
  EXPECT_EQ(Salt.Code[0].Imm,
            Salt.Code[Salt.Code.size() - 2].Imm);
}

TEST(Codegen, LeafFunctionSkipsRaSpill) {
  vm::VMProgram P = buildVM("int leaf(int a) { return a * 2; }\n"
                            "int main(void) { return leaf(21); }");
  const vm::VMFunction &Leaf = functionOf(P, "leaf");
  for (const vm::Instr &In : Leaf.Code)
    if (In.Op == VMOp::SPILL)
      EXPECT_NE(In.Rd, vm::RA);
}

TEST(Codegen, ImmediateSelection) {
  vm::VMProgram P = buildVM(
      "int f(int x) { return x + 3 - 5 * x / 1; }\n"
      "int main(void) { return f(2); }");
  const vm::VMFunction &F = functionOf(P, "f");
  EXPECT_GT(countOp(F, VMOp::ADDI), 0u); // x + 3 and the -5 fold.
}

TEST(Codegen, StrengthReduction) {
  vm::VMProgram P = buildVM(
      "unsigned f(unsigned x) { return x * 8 + x / 4 + x % 16; }\n"
      "int main(void) { return (int)f(100); }");
  const vm::VMFunction &F = functionOf(P, "f");
  EXPECT_GT(countOp(F, VMOp::SLLI), 0u); // * 8.
  EXPECT_GT(countOp(F, VMOp::SRLI), 0u); // / 4 unsigned.
  EXPECT_GT(countOp(F, VMOp::ANDI), 0u); // % 16 unsigned.
  EXPECT_EQ(countOp(F, VMOp::MUL), 0u);
  EXPECT_EQ(countOp(F, VMOp::DIVU), 0u);
}

TEST(Codegen, UnsignedSubwordLoadsSelected) {
  vm::VMProgram P = buildVM(
      "unsigned char b[4];\n"
      "unsigned short h[4];\n"
      "int f(void) { return b[1] + h[1]; }\n"
      "int main(void) { return f(); }");
  const vm::VMFunction &F = functionOf(P, "f");
  EXPECT_GT(countOp(F, VMOp::LD_BU), 0u);
  EXPECT_GT(countOp(F, VMOp::LD_HU), 0u);
  EXPECT_EQ(countOp(F, VMOp::ZXTB), 0u); // Folded into the load.
}

TEST(Codegen, GlobalsUseZeroRegisterDisplacement) {
  vm::VMProgram P = buildVM("int g;\n"
                            "int f(void) { return g; }\n"
                            "int main(void) { return f(); }");
  const vm::VMFunction &F = functionOf(P, "f");
  bool ZrBase = false;
  for (const vm::Instr &In : F.Code)
    if (In.Op == VMOp::LD_W && In.Rs1 == vm::ZR)
      ZrBase = true;
  EXPECT_TRUE(ZrBase);
}

TEST(Codegen, DetunedNoImmediatesHasNoImmediateForms) {
  codegen::Options Opts;
  Opts.NoImmediates = true;
  vm::VMProgram P = buildVM(syntheticSource(20), Opts);
  for (const vm::VMFunction &F : P.Functions)
    for (const vm::Instr &In : F.Code)
      EXPECT_FALSE(vm::isImmediateForm(In.Op))
          << F.Name << ": " << vm::printInstr(In);
}

TEST(Codegen, DetunedNoRegDispHasZeroDisplacements) {
  codegen::Options Opts;
  Opts.NoRegDisp = true;
  vm::VMProgram P = buildVM(syntheticSource(20), Opts);
  for (const vm::VMFunction &F : P.Functions)
    for (const vm::Instr &In : F.Code) {
      switch (In.Op) {
      case VMOp::LD_B: case VMOp::LD_BU: case VMOp::LD_H:
      case VMOp::LD_HU: case VMOp::LD_W: case VMOp::ST_B:
      case VMOp::ST_H: case VMOp::ST_W:
        EXPECT_EQ(In.Imm, 0) << F.Name << ": " << vm::printInstr(In);
        break;
      default:
        break;
      }
    }
}

TEST(Codegen, RuntimeBuiltinsBecomeSyscalls) {
  vm::VMProgram P = buildVM("int main(void) {\n"
                            "  print_int(1);\n"
                            "  print_char('\\n');\n"
                            "  int *p = alloc(8);\n"
                            "  p[0] = 3;\n"
                            "  return p[0];\n"
                            "}");
  const vm::VMFunction &Main = functionOf(P, "main");
  EXPECT_GE(countOp(Main, VMOp::SYS), 3u);
  EXPECT_EQ(countOp(Main, VMOp::CALL), 0u);
}

TEST(Codegen, StructCopyUsesMcpy) {
  vm::VMProgram P = buildVM(
      "struct Big { int a[8]; };\n"
      "struct Big x, y;\n"
      "int main(void) { x = y; return 0; }");
  const vm::VMFunction &Main = functionOf(P, "main");
  EXPECT_EQ(countOp(Main, VMOp::MCPY), 1u);
}

TEST(Codegen, UndefinedSymbolReported) {
  minic::CompileResult CR =
      minic::compile("int main(void) { return mystery(); }");
  ASSERT_TRUE(CR.ok()); // Implicit declaration is legal old C...
  codegen::Result R = codegen::generate(*CR.M);
  EXPECT_FALSE(R.ok()); // ...but linking it is not.
}

//===----------------------------------------------------------------------===//
// Property sweep: every (program, machine variant) pair must agree with
// the baseline machine.
//===----------------------------------------------------------------------===//

namespace {

struct VariantCase {
  const char *Name;
  bool NoImm;
  bool NoDisp;
};

class DetuneSweep
    : public ::testing::TestWithParam<std::tuple<corpus::Program,
                                                 VariantCase>> {};

} // namespace

TEST_P(DetuneSweep, VariantAgreesWithBaseline) {
  const auto &[Prog, Var] = GetParam();
  vm::RunResult Base = runC(Prog.Source);
  codegen::Options Opts;
  Opts.NoImmediates = Var.NoImm;
  Opts.NoRegDisp = Var.NoDisp;
  vm::RunResult R = runC(Prog.Source, Opts);
  EXPECT_EQ(R.ExitCode, Base.ExitCode) << Prog.Name << " " << Var.Name;
  EXPECT_EQ(R.Output, Base.Output) << Prog.Name << " " << Var.Name;
}

INSTANTIATE_TEST_SUITE_P(
    All, DetuneSweep,
    ::testing::Combine(
        ::testing::ValuesIn(corpus::programs()),
        ::testing::Values(VariantCase{"noimm", true, false},
                          VariantCase{"nodisp", false, true},
                          VariantCase{"minimal", true, true})),
    [](const ::testing::TestParamInfo<
        std::tuple<corpus::Program, VariantCase>> &Info) {
      return std::string(std::get<0>(Info.param).Name) + "_" +
             std::get<1>(Info.param).Name;
    });

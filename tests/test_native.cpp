//===- tests/test_native.cpp - Threaded-code backend tests ---------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "brisc/Brisc.h"
#include "brisc/Interp.h"
#include "native/Threaded.h"

#include <chrono>

using namespace ccomp;
using namespace ccomp::test;

namespace {

const char *WorkProgram = R"(
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main(void) {
  int s = 0, i;
  for (i = 0; i < 18; i++) s += fib(i);
  print_int(s);
  return s & 255;
}
)";

} // namespace

TEST(Native, MatchesVMInterp) {
  vm::VMProgram P = buildVM(WorkProgram);
  vm::RunResult VM = vm::runProgram(P);
  native::NProgram N = native::generate(P);
  vm::RunResult NR = native::run(N);
  ASSERT_TRUE(VM.Ok && NR.Ok) << VM.Trap << " / " << NR.Trap;
  EXPECT_EQ(NR.ExitCode, VM.ExitCode);
  EXPECT_EQ(NR.Output, VM.Output);
  EXPECT_EQ(NR.Steps, VM.Steps); // Same instruction stream executed.
}

TEST(Native, GenStatsPopulated) {
  vm::VMProgram P = buildVM(WorkProgram);
  native::GenStats S;
  native::NProgram N = native::generate(P, &S);
  EXPECT_EQ(S.InputInstrs, vm::countInstrs(P));
  EXPECT_EQ(S.OutputBytes, N.codeBytes());
  EXPECT_GT(S.OutputBytes, 0u);
}

TEST(Native, JitFromBriscMatches) {
  vm::VMProgram P = buildVM(WorkProgram);
  brisc::BriscProgram B = brisc::compress(P);
  native::GenStats S;
  native::NProgram N = native::generateFromBrisc(B, &S);
  EXPECT_GT(S.InputInstrs, 0u);
  vm::RunResult R1 = vm::runProgram(P);
  vm::RunResult R2 = native::run(N);
  ASSERT_TRUE(R2.Ok) << R2.Trap;
  EXPECT_EQ(R2.ExitCode, R1.ExitCode);
  EXPECT_EQ(R2.Output, R1.Output);
}

TEST(Native, StepLimitRespected) {
  vm::VMProgram P = buildVM("int main(void) { for (;;) ; return 0; }");
  native::NProgram N = native::generate(P);
  vm::RunOptions Opts;
  Opts.MaxSteps = 100000;
  vm::RunResult R = native::run(N, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Trap.find("step limit"), std::string::npos);
}

TEST(Native, TrapsPropagate) {
  vm::VMProgram P = buildVM("int main(void) {\n"
                            "  int *p = 0;\n"
                            "  return *p;\n"
                            "}");
  native::NProgram N = native::generate(P);
  vm::RunResult R = native::run(N);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Trap.find("out of range"), std::string::npos);
}

TEST(Native, SpeedOrderingHolds) {
  // The performance ordering the paper's measurements rest on:
  // threaded native is faster than the decoding VM interpreter, which
  // is faster than in-place BRISC interpretation.
  vm::VMProgram P = buildVM(WorkProgram);
  brisc::BriscProgram B = brisc::compress(P);
  native::NProgram N = native::generate(P);

  auto Time = [](auto &&Fn) {
    // Warm up once, then take the best of 3.
    Fn();
    double Best = 1e9;
    for (int I = 0; I != 3; ++I) {
      auto T0 = std::chrono::steady_clock::now();
      Fn();
      auto T1 = std::chrono::steady_clock::now();
      Best = std::min(Best,
                      std::chrono::duration<double>(T1 - T0).count());
    }
    return Best;
  };

  double TNative = Time([&] { native::run(N); });
  double TVm = Time([&] { vm::runProgram(P); });
  double TBrisc = Time([&] { brisc::interpret(B); });
  EXPECT_LT(TNative, TVm);
  EXPECT_LT(TVm, TBrisc);
}

TEST(Native, CodeBytesScaleWithInstrs) {
  vm::VMProgram P = buildVM(WorkProgram);
  native::NProgram N = native::generate(P);
  EXPECT_EQ(N.codeBytes(), vm::countInstrs(P) * sizeof(native::NInstr));
}

TEST(Native, EmptyProgramRejected) {
  native::NProgram N;
  vm::RunResult R = native::run(N);
  EXPECT_FALSE(R.Ok);
}

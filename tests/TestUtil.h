//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// gtest-flavored wrappers over the shared corpus helpers in
/// harness/CorpusUtil.h: same pipeline, but front-end and codegen
/// failures become test failures instead of aborts.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_TESTS_TESTUTIL_H
#define CCOMP_TESTS_TESTUTIL_H

#include "CorpusUtil.h"
#include "codegen/Codegen.h"
#include "minic/Compile.h"
#include "vm/Machine.h"

#include "gtest/gtest.h"

#include <string>

namespace ccomp {
namespace test {

using harness::suiteModule;
using harness::suiteProgram;
using harness::syntheticSource;

/// Compiles C source to IR, failing the test on a front-end error.
inline std::unique_ptr<ir::Module> compileC(const std::string &Src) {
  minic::CompileResult R = minic::compile(Src);
  EXPECT_TRUE(R.ok()) << "minic: " << R.Error;
  return std::move(R.M);
}

/// Compiles C source all the way to a linked VM program.
inline vm::VMProgram buildVM(const std::string &Src,
                             codegen::Options Opts = codegen::Options()) {
  std::unique_ptr<ir::Module> M = compileC(Src);
  if (!M)
    return vm::VMProgram();
  codegen::Result R = codegen::generate(*M, Opts);
  EXPECT_TRUE(R.ok()) << "codegen: " << R.Error;
  return std::move(R.P);
}

/// Compiles and interprets \p Src; checks exit code and (optionally)
/// output.
inline vm::RunResult runC(const std::string &Src,
                          codegen::Options Opts = codegen::Options()) {
  vm::VMProgram P = buildVM(Src, Opts);
  vm::RunResult R = vm::runProgram(P);
  EXPECT_TRUE(R.Ok) << "run trapped: " << R.Trap;
  return R;
}

} // namespace test
} // namespace ccomp

#endif // CCOMP_TESTS_TESTUTIL_H

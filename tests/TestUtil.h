//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef CCOMP_TESTS_TESTUTIL_H
#define CCOMP_TESTS_TESTUTIL_H

#include "codegen/Codegen.h"
#include "minic/Compile.h"
#include "vm/Machine.h"

#include "gtest/gtest.h"

#include <string>

namespace ccomp {
namespace test {

/// Compiles C source to IR, failing the test on a front-end error.
inline std::unique_ptr<ir::Module> compileC(const std::string &Src) {
  minic::CompileResult R = minic::compile(Src);
  EXPECT_TRUE(R.ok()) << "minic: " << R.Error;
  return std::move(R.M);
}

/// Compiles C source all the way to a linked VM program.
inline vm::VMProgram buildVM(const std::string &Src,
                             codegen::Options Opts = codegen::Options()) {
  std::unique_ptr<ir::Module> M = compileC(Src);
  if (!M)
    return vm::VMProgram();
  codegen::Result R = codegen::generate(*M, Opts);
  EXPECT_TRUE(R.ok()) << "codegen: " << R.Error;
  return std::move(R.P);
}

/// Compiles and interprets \p Src; checks exit code and (optionally)
/// output.
inline vm::RunResult runC(const std::string &Src,
                          codegen::Options Opts = codegen::Options()) {
  vm::VMProgram P = buildVM(Src, Opts);
  vm::RunResult R = vm::runProgram(P);
  EXPECT_TRUE(R.Ok) << "run trapped: " << R.Trap;
  return R;
}

/// Builds a structurally varied C source with \p NumFuncs functions, big
/// enough for the compressors to amortize their dictionaries. Constants
/// come from small pools (real programs reuse a few favorite literals).
inline std::string syntheticSource(unsigned NumFuncs) {
  std::string Src = "int acc;\nint buf[256];\nchar bytes[512];\n";
  for (unsigned I = 0; I != NumFuncs; ++I) {
    std::string N = std::to_string(I);
    static const int Pool1[] = {1, 2, 4, 8, 16, 32, 100, 255};
    std::string K1 = std::to_string(Pool1[(I * 7 + 3) % 8]);
    std::string K2 = std::to_string(1 + I % 8);
    std::string K3 = std::to_string((I % 16) * 4);
    switch (I % 6) {
    case 0:
      Src += "int work" + N + "(int a, int b) {\n"
             "  int i, s = " + K1 + ";\n"
             "  for (i = 0; i < a; i++) s += buf[(i + b) & 255] * " + K2 +
             ";\n  acc += s;\n  return s;\n}\n";
      break;
    case 1:
      Src += "int work" + N + "(int a, int b) {\n"
             "  int s = a, n = 0;\n"
             "  while (s > " + K1 + " && n++ < 40) s = s / 2 + b % " + K2 +
             ";\n"
             "  bytes[" + K3 + "] = s;\n  return s + bytes[" + K3 +
             "];\n}\n";
      break;
    case 2:
      Src += "int work" + N + "(int a, int b) {\n"
             "  if (a < b) return work" + std::to_string(I ? I - 1 : 0) +
             "(b, a);\n"
             "  switch (a & 3) {\n"
             "  case 0: return a + " + K1 + ";\n"
             "  case 1: return a - b;\n"
             "  case 2: return a * " + K2 + ";\n"
             "  default: return a ^ b;\n  }\n}\n";
      break;
    case 3:
      Src += "unsigned work" + N + "(unsigned a, unsigned b) {\n"
             "  unsigned h = " + K1 + "u, n = 0;\n"
             "  do { h = (h << 5) ^ (h >> 3) ^ a; a = a / 2 + b % " + K2 +
             "; } while (a > " + K3 + " && ++n < 48u);\n"
             "  return h;\n}\n";
      break;
    case 4:
      Src += "int work" + N + "(int n, int d) {\n"
             "  int i, j, t = 0;\n"
             "  for (i = 1; i <= n % 9 + 2; i++)\n"
             "    for (j = i; j; j--) t += i * j - d + " + K1 + ";\n"
             "  buf[" + std::to_string(I % 256) + "] = t;\n"
             "  return t;\n}\n";
      break;
    default:
      Src += "int work" + N + "(int a, int b) {\n"
             "  int *p = &buf[a & 127];\n"
             "  *p = b + " + K1 + ";\n"
             "  p[1] = *p - " + K2 + ";\n"
             "  return p[0] + p[1] + acc % " + K2 + ";\n}\n";
      break;
    }
  }
  Src += "int main(void) {\n  int r = 0;\n";
  for (unsigned I = 0; I != NumFuncs; ++I)
    Src += "  r += work" + std::to_string(I) + "(" +
           std::to_string(I % 13 + 1) + ", " + std::to_string(I % 5 + 1) +
           ");\n";
  Src += "  return r & 255;\n}\n";
  return Src;
}

} // namespace test
} // namespace ccomp

#endif // CCOMP_TESTS_TESTUTIL_H

//===- tests/test_pipeline.cpp - minic -> codegen -> VM smoke tests ----------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace ccomp;
using namespace ccomp::test;

TEST(Pipeline, ReturnConstant) {
  vm::RunResult R = runC("int main(void) { return 42; }");
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(Pipeline, Arithmetic) {
  vm::RunResult R = runC(
      "int main(void) { int a = 6; int b = 7; return a * b; }");
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(Pipeline, IfElse) {
  vm::RunResult R = runC("int main(void) {\n"
                         "  int j = 3;\n"
                         "  if (j > 0) j = j - 1; else j = 100;\n"
                         "  return j;\n"
                         "}");
  EXPECT_EQ(R.ExitCode, 2);
}

TEST(Pipeline, WhileLoopSum) {
  vm::RunResult R = runC("int main(void) {\n"
                         "  int i = 0, s = 0;\n"
                         "  while (i < 10) { s += i; i++; }\n"
                         "  return s;\n"
                         "}");
  EXPECT_EQ(R.ExitCode, 45);
}

TEST(Pipeline, ForLoopFactorial) {
  vm::RunResult R = runC("int main(void) {\n"
                         "  int f = 1;\n"
                         "  for (int i = 1; i <= 6; i++) f *= i;\n"
                         "  return f;\n"
                         "}");
  EXPECT_EQ(R.ExitCode, 720);
}

TEST(Pipeline, FunctionCall) {
  vm::RunResult R = runC("int add(int a, int b) { return a + b; }\n"
                         "int main(void) { return add(40, 2); }");
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(Pipeline, PaperExample) {
  // The paper's running example (section 3); pepper is given a body.
  vm::RunResult R = runC(
      "int pepper(int i, int j) { return i + j; }\n"
      "int salt(int j, int i) {\n"
      "  if (j > 0) {\n"
      "    pepper(i, j);\n"
      "    j--;\n"
      "  }\n"
      "  return j;\n"
      "}\n"
      "int main(void) { return salt(5, 9); }");
  EXPECT_EQ(R.ExitCode, 4);
}

TEST(Pipeline, Recursion) {
  vm::RunResult R = runC(
      "int fib(int n) { if (n < 2) return n; return fib(n-1)+fib(n-2); }\n"
      "int main(void) { return fib(12); }");
  EXPECT_EQ(R.ExitCode, 144);
}

TEST(Pipeline, GlobalsAndPointers) {
  vm::RunResult R = runC("int g = 10;\n"
                         "int *p;\n"
                         "int main(void) {\n"
                         "  p = &g;\n"
                         "  *p = *p + 32;\n"
                         "  return g;\n"
                         "}");
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(Pipeline, Arrays) {
  vm::RunResult R = runC("int a[10];\n"
                         "int main(void) {\n"
                         "  int i;\n"
                         "  for (i = 0; i < 10; i++) a[i] = i * i;\n"
                         "  return a[7];\n"
                         "}");
  EXPECT_EQ(R.ExitCode, 49);
}

TEST(Pipeline, CharShortTypes) {
  vm::RunResult R = runC(
      "int main(void) {\n"
      "  char c = 200;\n"       // Becomes -56 as signed char.
      "  unsigned char u = 200;\n"
      "  short s = 40000;\n"    // Wraps to -25536.
      "  unsigned short w = 40000;\n"
      "  if (c != -56) return 1;\n"
      "  if (u != 200) return 2;\n"
      "  if (s != -25536) return 3;\n"
      "  if (w != 40000) return 4;\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Pipeline, UnsignedOps) {
  vm::RunResult R = runC(
      "int main(void) {\n"
      "  unsigned a = 0xFFFFFFF0u;\n"
      "  unsigned b = 16;\n"
      "  if (a / b != 0x0FFFFFFF) return 1;\n"
      "  if (a + b != 0) return 2;\n"
      "  if (!(a > b)) return 3;\n"
      "  if ((int)a > (int)b) return 4;\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Pipeline, ShortCircuit) {
  vm::RunResult R = runC(
      "int calls = 0;\n"
      "int bump(void) { calls++; return 1; }\n"
      "int main(void) {\n"
      "  int x = 0;\n"
      "  if (x != 0 && bump()) return 1;\n"
      "  if (calls != 0) return 2;\n"
      "  if (x == 0 || bump()) { ; } else return 3;\n"
      "  if (calls != 0) return 4;\n"
      "  int y = (x == 0) && bump();\n"
      "  if (y != 1 || calls != 1) return 5;\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Pipeline, TernaryAndComma) {
  vm::RunResult R = runC(
      "int main(void) {\n"
      "  int a = 5;\n"
      "  int b = a > 3 ? 10 : 20;\n"
      "  int c;\n"
      "  for (c = 0, a = 0; a < 4; a++, c += 2) ;\n"
      "  return b + c;\n"
      "}");
  EXPECT_EQ(R.ExitCode, 18);
}

TEST(Pipeline, SwitchStatement) {
  vm::RunResult R = runC(
      "int classify(int x) {\n"
      "  switch (x) {\n"
      "  case 0: return 100;\n"
      "  case 1:\n"
      "  case 2: return 200;\n"
      "  case 3: x += 1; /* fall through */\n"
      "  case 4: return 300 + x;\n"
      "  default: return 999;\n"
      "  }\n"
      "}\n"
      "int main(void) {\n"
      "  if (classify(0) != 100) return 1;\n"
      "  if (classify(1) != 200) return 2;\n"
      "  if (classify(2) != 200) return 3;\n"
      "  if (classify(3) != 304) return 4;\n"
      "  if (classify(4) != 304) return 5;\n"
      "  if (classify(77) != 999) return 6;\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Pipeline, Structs) {
  vm::RunResult R = runC(
      "struct Point { int x; int y; char tag; };\n"
      "struct Point g;\n"
      "int main(void) {\n"
      "  struct Point p;\n"
      "  p.x = 11; p.y = 31; p.tag = 7;\n"
      "  g = p;\n"
      "  struct Point *q = &g;\n"
      "  return q->x + q->y - q->tag + sizeof(struct Point);\n"
      "}");
  // sizeof(Point) = 12 (4+4+1 padded to 12); 11+31-7+12 = 47.
  EXPECT_EQ(R.ExitCode, 47);
}

TEST(Pipeline, StringsAndOutput) {
  vm::RunResult R = runC(
      "int main(void) {\n"
      "  print_str(\"hello \");\n"
      "  print_int(42);\n"
      "  print_char('\\n');\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(R.Output, "hello 42\n");
}

TEST(Pipeline, AllocHeap) {
  vm::RunResult R = runC(
      "int main(void) {\n"
      "  int *a = alloc(40);\n"
      "  int i;\n"
      "  for (i = 0; i < 10; i++) a[i] = i + 1;\n"
      "  int s = 0;\n"
      "  for (i = 0; i < 10; i++) s += a[i];\n"
      "  return s;\n"
      "}");
  EXPECT_EQ(R.ExitCode, 55);
}

TEST(Pipeline, StackArguments) {
  vm::RunResult R = runC(
      "int sum6(int a, int b, int c, int d, int e, int f) {\n"
      "  return a + b + c + d + e + f;\n"
      "}\n"
      "int main(void) { return sum6(1, 2, 3, 4, 5, 6); }");
  EXPECT_EQ(R.ExitCode, 21);
}

TEST(Pipeline, PointerArithmetic) {
  vm::RunResult R = runC(
      "int a[5] = {1, 2, 3, 4, 5};\n"
      "int main(void) {\n"
      "  int *p = a;\n"
      "  int *q = p + 4;\n"
      "  if (*q != 5) return 1;\n"
      "  if (q - p != 4) return 2;\n"
      "  p++;\n"
      "  if (*p != 2) return 3;\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Pipeline, StringFunctions) {
  vm::RunResult R = runC(
      "int slen(char *s) { int n = 0; while (*s++) n++; return n; }\n"
      "int main(void) {\n"
      "  char buf[16] = \"compress\";\n"
      "  return slen(buf);\n"
      "}");
  EXPECT_EQ(R.ExitCode, 8);
}

TEST(Pipeline, GotoStatement) {
  vm::RunResult R = runC(
      "int main(void) {\n"
      "  int i = 0, s = 0;\n"
      "again:\n"
      "  s += i;\n"
      "  i++;\n"
      "  if (i < 5) goto again;\n"
      "  return s;\n"
      "}");
  EXPECT_EQ(R.ExitCode, 10);
}

TEST(Pipeline, EnumConstants) {
  vm::RunResult R = runC(
      "enum { A, B = 10, C };\n"
      "int main(void) { return A + B + C; }");
  EXPECT_EQ(R.ExitCode, 21);
}

TEST(Pipeline, DeepExpression) {
  // Forces the evaluation stack past eight registers (spill path).
  vm::RunResult R = runC(
      "int f(int x) { return x; }\n"
      "int main(void) {\n"
      "  int a = 1;\n"
      "  int r = (a + (a + (a + (a + (a + (a + (a + (a + (a + (a + a\n"
      "      * 2))))))))));\n"
      "  return r;\n"
      "}");
  EXPECT_EQ(R.ExitCode, 12);
}

TEST(Pipeline, DetunedVariantsAgree) {
  const char *Src =
      "int fib(int n) { if (n < 2) return n; return fib(n-1)+fib(n-2); }\n"
      "int a[8];\n"
      "int main(void) {\n"
      "  int i, s = 0;\n"
      "  for (i = 0; i < 8; i++) a[i] = fib(i);\n"
      "  for (i = 0; i < 8; i++) s += a[i];\n"
      "  return s;\n"
      "}";
  vm::RunResult Base = runC(Src);
  codegen::Options NoImm;
  NoImm.NoImmediates = true;
  codegen::Options NoDisp;
  NoDisp.NoRegDisp = true;
  codegen::Options Neither;
  Neither.NoImmediates = true;
  Neither.NoRegDisp = true;
  vm::RunResult R1 = runC(Src, NoImm);
  vm::RunResult R2 = runC(Src, NoDisp);
  vm::RunResult R3 = runC(Src, Neither);
  EXPECT_EQ(Base.ExitCode, 33);
  EXPECT_EQ(R1.ExitCode, 33);
  EXPECT_EQ(R2.ExitCode, 33);
  EXPECT_EQ(R3.ExitCode, 33);
}

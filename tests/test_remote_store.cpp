//===- tests/test_remote_store.cpp - Flaky-transport store robustness ----------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The remote-fetch promises: store-backed execution is byte-for-byte
// identical to eager decode through every FrameSource backend (memory,
// file, simulated remote) for every per-function chain, at any cache
// budget, over any link preset — including links that drop, truncate,
// or corrupt one fetch attempt in ten (retries mask transients). When
// the transport fails permanently, every faulting call returns a typed
// error: no abort, no hang, and concurrent single-flight waiters all
// observe the leader's outcome. The tsan preset runs the soak with full
// happens-before checking.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pipeline/Pipeline.h"
#include "store/CodeStore.h"
#include "store/FrameSource.h"
#include "store/Resolver.h"
#include "support/PRNG.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <set>
#include <thread>

using namespace ccomp;
using namespace ccomp::store;
using namespace ccomp::test;

namespace {

const char *const PerFunctionChains[] = {"flate", "vm-compact", "brisc",
                                         "brisc+flate", "vm-compact+flate"};

std::vector<uint8_t> buildImage(const vm::VMProgram &P,
                                const std::string &Chain) {
  std::string Err;
  std::unique_ptr<CodeStore> S =
      CodeStore::build(P, Chain, StoreOptions(), Err);
  EXPECT_NE(S, nullptr) << Chain << ": " << Err;
  return S->save();
}

/// Writes \p Bytes to a fresh file under gtest's temp dir.
std::string writeTemp(const std::string &Name,
                      const std::vector<uint8_t> &Bytes) {
  std::string Path = testing::TempDir() + "ccomp_" + Name;
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  EXPECT_TRUE(Out.good()) << Path;
  return Path;
}

std::unique_ptr<FrameSource> mustLocal(const std::vector<uint8_t> &Image) {
  Result<std::unique_ptr<LocalFrameSource>> S =
      LocalFrameSource::fromContainerBytes(Image);
  EXPECT_TRUE(S.ok()) << (S.ok() ? "" : S.error().message());
  return S.ok() ? S.take() : nullptr;
}

std::unique_ptr<FrameSource> mustFile(const std::string &Path) {
  Result<std::unique_ptr<FileFrameSource>> S = FileFrameSource::open(Path);
  EXPECT_TRUE(S.ok()) << (S.ok() ? "" : S.error().message());
  return S.ok() ? S.take() : nullptr;
}

/// A source whose frames never arrive (permanent outage modeled as
/// endless transient timeouts) while the manifest stays reachable, so a
/// store can be constructed and then watched failing every fault.
class OutageFrames final : public FrameSource {
public:
  OutageFrames(std::unique_ptr<FrameSource> Origin, unsigned SleepMillis = 0)
      : Origin(std::move(Origin)), SleepMillis(SleepMillis) {}

  const char *kind() const override { return "outage"; }
  const std::string &chainSpec() const override { return Origin->chainSpec(); }
  uint32_t functionFrameCount() const override {
    return Origin->functionFrameCount();
  }
  size_t frameBytes() const override { return Origin->frameBytes(); }

  FetchResult fetchFrame(uint32_t Id) override {
    ++FrameFetches;
    if (SleepMillis) // Widen the single-flight race window.
      std::this_thread::sleep_for(std::chrono::milliseconds(SleepMillis));
    return FetchResult::failure(FetchErrorKind::Timeout,
                                "outage: frame " + std::to_string(Id),
                                0.01);
  }
  FetchResult fetchManifest() override { return Origin->fetchManifest(); }

  std::atomic<unsigned> FrameFetches{0};

private:
  std::unique_ptr<FrameSource> Origin;
  unsigned SleepMillis;
};

//===----------------------------------------------------------------------===//
// Retry policy
//===----------------------------------------------------------------------===//

TEST(RemoteStore, BackoffIsBoundedDeterministicAndJittered) {
  RetryPolicy P;
  for (uint32_t Frame : {0u, 7u, 123u}) {
    for (unsigned A = 0; A != 12; ++A) {
      double B = P.backoffSeconds(Frame, A);
      double Ideal = P.BaseBackoffSeconds;
      for (unsigned I = 0; I != A; ++I)
        Ideal = std::min(Ideal * P.BackoffMultiplier, P.MaxBackoffSeconds);
      EXPECT_GE(B, Ideal * (1.0 - P.JitterFraction) - 1e-12);
      EXPECT_LE(B, Ideal * (1.0 + P.JitterFraction) + 1e-12);
      EXPECT_EQ(B, P.backoffSeconds(Frame, A)) << "pure function";
    }
    EXPECT_LE(P.backoffSeconds(Frame, 30),
              P.MaxBackoffSeconds * (1.0 + P.JitterFraction))
        << "clamped at the cap";
  }
  // Different frames draw different jitter (that is the point of
  // seeding by frame: concurrent retries must not synchronize).
  EXPECT_NE(P.backoffSeconds(0, 3), P.backoffSeconds(1, 3));
}

// Regression: the old loop-based growth ran Attempt iterations, so a
// multiplier <= 1.0 never reached the cap and a huge Attempt (a
// corrupted counter, or a policy driven by an external retry budget)
// spun for minutes. The closed form must return instantly and clamped
// for any input.
TEST(RemoteStore, BackoffTerminatesAndClampsForDegenerateInputs) {
  for (double Mult : {1.0, 0.5, 0.0}) {
    RetryPolicy P;
    P.BackoffMultiplier = Mult;
    for (unsigned A : {0u, 1u, 7u, 1u << 31, ~0u}) {
      double B = P.backoffSeconds(3, A);
      // No growth: every attempt waits the jittered base.
      EXPECT_GE(B, P.BaseBackoffSeconds * (1.0 - P.JitterFraction) - 1e-12)
          << "mult=" << Mult << " attempt=" << A;
      EXPECT_LE(B, P.BaseBackoffSeconds * (1.0 + P.JitterFraction) + 1e-12)
          << "mult=" << Mult << " attempt=" << A;
    }
  }
  // Growing policy, astronomically large attempt: pow overflows to inf,
  // which must clamp to exactly the cap, not NaN or a hang.
  RetryPolicy P;
  EXPECT_EQ(P.backoffSeconds(0, ~0u), P.MaxBackoffSeconds);
  EXPECT_EQ(P.backoffSeconds(0, 1u << 31), P.MaxBackoffSeconds);
  // A non-positive cap still terminates and never goes negative.
  RetryPolicy Z;
  Z.MaxBackoffSeconds = 0.0;
  EXPECT_EQ(Z.backoffSeconds(0, 50), 0.0);
  Z.MaxBackoffSeconds = -1.0;
  EXPECT_GE(Z.backoffSeconds(0, 50), 0.0);
}

// Regression: the clamped backoff sequence must be monotone
// non-decreasing in Attempt for the default policy — jitter may wiggle
// a single draw but never below the previous attempt's draw, and once
// the cap is reached every later attempt returns exactly the cap.
TEST(RemoteStore, BackoffIsMonotoneNonDecreasing) {
  RetryPolicy P;
  for (uint32_t Frame : {0u, 7u, 123u, 4096u}) {
    double Prev = -1.0;
    for (unsigned A = 0; A != 64; ++A) {
      double B = P.backoffSeconds(Frame, A);
      EXPECT_GE(B, Prev - 1e-12)
          << "frame " << Frame << ": backoff shrank at attempt " << A;
      Prev = B;
    }
    EXPECT_EQ(Prev, P.MaxBackoffSeconds) << "saturates at the cap";
  }
}

// The unified jitter/fault draw: purposes must not alias (the old code
// XORed Frame<<32 with Attempt<<33, so (frame, attempt) pairs could
// collide across the two draw sites), and distinct inputs must draw
// distinct keys.
TEST(RemoteStore, DrawKeySeparatesPurposesAndInputs) {
  const uint64_t Seed = 0x1234;
  std::set<uint64_t> Keys;
  unsigned Total = 0;
  for (uint32_t Frame : {0u, 1u, 2u, 77u}) {
    for (unsigned A = 0; A != 8; ++A) {
      for (DrawPurpose Pu :
           {DrawPurpose::BackoffJitter, DrawPurpose::TransportFault}) {
        Keys.insert(drawKey(Seed, Frame, A, Pu));
        ++Total;
      }
    }
  }
  EXPECT_EQ(Keys.size(), Total) << "drawKey collided on distinct inputs";
  // The historical collision class: (Frame, Attempt) vs (Frame', Attempt')
  // where Frame<<32 == Attempt'<<33 style packings overlapped. The
  // injective pack keys (1,0) and (0, 1<<31)-like pairs apart too.
  EXPECT_NE(drawKey(Seed, 1, 0, DrawPurpose::BackoffJitter),
            drawKey(Seed, 0, 1u << 31, DrawPurpose::BackoffJitter));
  // Purpose matters even for identical (seed, frame, attempt).
  EXPECT_NE(drawKey(Seed, 5, 2, DrawPurpose::BackoffJitter),
            drawKey(Seed, 5, 2, DrawPurpose::TransportFault));
}

TEST(RemoteStore, ErrorTaxonomy) {
  EXPECT_TRUE(isTransient(FetchErrorKind::Timeout));
  EXPECT_TRUE(isTransient(FetchErrorKind::ShortRead));
  EXPECT_TRUE(isTransient(FetchErrorKind::Corrupt));
  EXPECT_FALSE(isTransient(FetchErrorKind::NotFound));
  EXPECT_FALSE(isTransient(FetchErrorKind::Io));
  EXPECT_STREQ(fetchErrorKindName(FetchErrorKind::Timeout), "timeout");
  EXPECT_STREQ(fetchErrorKindName(FetchErrorKind::NotFound), "not-found");
}

TEST(RemoteStore, RetryMasksTransientsAndChargesVirtualTime) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  std::vector<uint8_t> Image = buildImage(P, "flate");
  std::unique_ptr<FrameSource> Clean = mustLocal(Image);
  ASSERT_NE(Clean, nullptr);

  RemoteOptions RO;
  RO.Link = sim::modem28k();
  RO.TransientFailureRate = 0.5;
  RO.FaultSeed = 7;
  SimulatedRemoteFrameSource Remote(mustLocal(Image), RO);

  RetryPolicy Policy;
  Policy.MaxAttempts = 32; // At 50% per attempt, failure odds ~2^-32.
  FetchMetrics Total;
  for (uint32_t I = 0; I != Remote.functionFrameCount(); ++I) {
    FetchMetrics M;
    FetchResult R = fetchWithRetry(Remote, I, Policy, M);
    ASSERT_TRUE(R.Ok) << "frame " << I << ": " << R.Msg;
    EXPECT_EQ(R.Bytes, Clean->fetchFrame(I).Bytes)
        << "retries must deliver the origin bytes untouched";
    EXPECT_GT(R.VirtualSeconds, 0.0);
    EXPECT_EQ(R.VirtualSeconds, M.VirtualSeconds);
    Total.Attempts += M.Attempts;
    Total.TransientFailures += M.TransientFailures;
  }
  EXPECT_GT(Total.TransientFailures, 0u)
      << "a 50% fault rate must actually inject failures";
  EXPECT_EQ(Total.Attempts,
            Remote.functionFrameCount() + Total.TransientFailures);
}

TEST(RemoteStore, PermanentErrorsSkipTheRetryBudget) {
  vm::VMProgram P = buildVM(syntheticSource(3));
  std::vector<uint8_t> Image = buildImage(P, "flate");
  std::unique_ptr<FrameSource> Src = mustLocal(Image);
  ASSERT_NE(Src, nullptr);

  FetchMetrics M;
  FetchResult R =
      fetchWithRetry(*Src, Src->functionFrameCount() + 5, RetryPolicy(), M);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Err, FetchErrorKind::NotFound);
  EXPECT_EQ(M.Attempts, 1u) << "NotFound will not improve; do not retry";
}

TEST(RemoteStore, DeadlineBoundsARetryStorm) {
  vm::VMProgram P = buildVM(syntheticSource(3));
  std::vector<uint8_t> Image = buildImage(P, "flate");
  RemoteOptions RO;
  RO.Link = sim::modem28k();
  RO.TransientFailureRate = 1.0;
  SimulatedRemoteFrameSource Remote(mustLocal(Image), RO);

  RetryPolicy Policy;
  Policy.MaxAttempts = 1u << 30; // The deadline, not the count, must stop it.
  Policy.DeadlineSeconds = 5.0;  // Virtual seconds: the test runs instantly.
  FetchMetrics M;
  FetchResult R = fetchWithRetry(Remote, 0, Policy, M);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Err, FetchErrorKind::Timeout);
  EXPECT_NE(R.Msg.find("deadline"), std::string::npos) << R.Msg;
  EXPECT_GT(M.VirtualSeconds, Policy.DeadlineSeconds);
  EXPECT_LT(M.Attempts, 1u << 10) << "bounded by virtual time, not wall time";
}

//===----------------------------------------------------------------------===//
// Source parity
//===----------------------------------------------------------------------===//

TEST(RemoteStore, AllSourcesServeIdenticalBytes) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  for (const char *Chain : PerFunctionChains) {
    std::vector<uint8_t> Image = buildImage(P, Chain);
    std::string Path = writeTemp(std::string("parity_") + Chain + ".ccpk",
                                 Image);
    std::unique_ptr<FrameSource> Local = mustLocal(Image);
    std::unique_ptr<FrameSource> File = mustFile(Path);
    ASSERT_NE(Local, nullptr);
    ASSERT_NE(File, nullptr);
    RemoteOptions RO; // Clean link: remote must be a transparent proxy.
    SimulatedRemoteFrameSource Remote(mustLocal(Image), RO);

    EXPECT_EQ(Local->chainSpec(), Chain);
    EXPECT_EQ(File->chainSpec(), Chain);
    EXPECT_EQ(Remote.chainSpec(), Chain);
    ASSERT_EQ(File->functionFrameCount(), Local->functionFrameCount());
    ASSERT_EQ(Remote.functionFrameCount(), Local->functionFrameCount());
    EXPECT_EQ(File->frameBytes(), Local->frameBytes());

    FetchResult M0 = Local->fetchManifest();
    FetchResult M1 = File->fetchManifest();
    FetchResult M2 = Remote.fetchManifest();
    ASSERT_TRUE(M0.Ok && M1.Ok && M2.Ok);
    EXPECT_EQ(M1.Bytes, M0.Bytes);
    EXPECT_EQ(M2.Bytes, M0.Bytes);
    EXPECT_GT(M2.VirtualSeconds, 0.0) << "remote charges link time";

    for (uint32_t I = 0; I != Local->functionFrameCount(); ++I) {
      FetchResult A = Local->fetchFrame(I);
      FetchResult B = File->fetchFrame(I);
      FetchResult C = Remote.fetchFrame(I);
      ASSERT_TRUE(A.Ok && B.Ok && C.Ok) << Chain << " frame " << I;
      EXPECT_EQ(B.Bytes, A.Bytes) << Chain << " frame " << I;
      EXPECT_EQ(C.Bytes, A.Bytes) << Chain << " frame " << I;
    }
  }
}

TEST(RemoteStore, OpeningAMissingFileFailsTyped) {
  Result<std::unique_ptr<FileFrameSource>> S =
      FileFrameSource::open(testing::TempDir() + "ccomp_does_not_exist.ccpk");
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.error().message().find("cannot open"), std::string::npos);
}

// A bare codec archive (compressor_tool without --store) shares the
// container format with store images but has no manifest at frame 0;
// both sources must refuse it up front with a message that names the
// problem, instead of serving a function payload as the "manifest" and
// failing much later at the client's decode.
TEST(RemoteStore, ContainerWithoutAManifestIsRefusedUpFront) {
  std::vector<std::vector<uint8_t>> Frames = {{1, 2, 3, 4, 5}, {6, 7, 8}};
  std::vector<uint8_t> Archive = pipeline::packContainer("flate", Frames);

  Result<std::unique_ptr<LocalFrameSource>> L =
      LocalFrameSource::fromContainerBytes(Archive);
  ASSERT_FALSE(L.ok());
  EXPECT_NE(L.error().message().find("not a store manifest"),
            std::string::npos)
      << L.error().message();

  std::string Path = writeTemp("no_manifest.ccpk", Archive);
  Result<std::unique_ptr<FileFrameSource>> F = FileFrameSource::open(Path);
  ASSERT_FALSE(F.ok());
  EXPECT_NE(F.error().message().find("no store manifest"), std::string::npos)
      << F.error().message();
}

//===----------------------------------------------------------------------===//
// Differential execution
//===----------------------------------------------------------------------===//

// The acceptance bar: store-backed execution out of every backend —
// including a remote link injecting transient faults into 10% of fetch
// attempts — is byte-identical to the eager run, for every chain, at a
// generous and at a 1-byte cache budget (the latter refetches every
// frame on every fault, multiplying the transport's chances to betray
// us).
TEST(RemoteStore, ExecutionMatchesEagerThroughEveryBackend) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok) << Eager.Trap;

  const sim::Link Links[] = {sim::modem28k(), sim::isdn128k(),
                             sim::ethernet10M(), sim::fast100M()};
  for (const char *Chain : PerFunctionChains) {
    std::vector<uint8_t> Image = buildImage(P, Chain);
    std::string Path = writeTemp(std::string("diff_") + Chain + ".ccpk",
                                 Image);
    for (size_t Budget : {size_t(1), size_t(16) << 20}) {
      StoreOptions Opts;
      Opts.CacheBudgetBytes = Budget;
      Opts.Retry.MaxAttempts = 8; // 10% fault rate -> ~1e-8 residual odds.

      std::vector<std::unique_ptr<FrameSource>> Sources;
      Sources.push_back(mustLocal(Image));
      Sources.push_back(mustFile(Path));
      for (size_t LinkIdx = 0; LinkIdx != 4; ++LinkIdx) {
        RemoteOptions RO;
        RO.Link = Links[LinkIdx];
        RO.TransientFailureRate = 0.10;
        RO.FaultSeed = 0xC0DE + LinkIdx + Budget;
        // Flaky remotes over both in-memory and file origins.
        Sources.push_back(std::make_unique<SimulatedRemoteFrameSource>(
            LinkIdx % 2 ? mustFile(Path) : mustLocal(Image), RO));
      }

      for (std::unique_ptr<FrameSource> &Src : Sources) {
        ASSERT_NE(Src, nullptr);
        std::string Kind = Src->kind();
        Result<std::unique_ptr<CodeStore>> L =
            CodeStore::tryFromSource(std::move(Src), Opts);
        ASSERT_TRUE(L.ok()) << Chain << " " << Kind << " budget=" << Budget
                            << ": " << L.error().message();
        std::unique_ptr<CodeStore> S = L.take();

        vm::RunResult R = runFromStore(*S);
        EXPECT_TRUE(R.Ok) << Chain << " " << Kind << " budget=" << Budget
                          << ": " << R.Trap;
        EXPECT_EQ(R.ExitCode, Eager.ExitCode) << Chain << " " << Kind;
        EXPECT_EQ(R.Output, Eager.Output) << Chain << " " << Kind;
        EXPECT_EQ(R.Steps, Eager.Steps) << Chain << " " << Kind;

        StoreStats St = S->stats();
        EXPECT_EQ(St.DecodeErrors, 0u) << Chain << " " << Kind;
        EXPECT_EQ(St.FetchFailures, 0u)
            << Chain << " " << Kind << ": transients must be masked";
        if (Kind == std::string("sim-remote")) {
          EXPECT_GT(St.FetchVirtualNanos, 0u) << Chain;
          EXPECT_GE(St.FetchAttempts,
                    St.Misses + 1 /*manifest*/ + St.FetchRetries);
        }
      }
    }
  }
}

// The same flaky run replays bit-identically: fault draws, retries, and
// the virtual clock are pure functions of the seed, not of timing.
TEST(RemoteStore, FlakyTransportIsDeterministic) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  std::vector<uint8_t> Image = buildImage(P, "brisc+flate");

  auto RunOnce = [&](uint64_t Seed) {
    RemoteOptions RO;
    RO.Link = sim::isdn128k();
    RO.TransientFailureRate = 0.25;
    RO.FaultSeed = Seed;
    StoreOptions Opts;
    Opts.CacheBudgetBytes = 1; // Evict everything: maximum refetching.
    Opts.Retry.MaxAttempts = 16;
    Result<std::unique_ptr<CodeStore>> L = CodeStore::tryFromSource(
        std::make_unique<SimulatedRemoteFrameSource>(mustLocal(Image), RO),
        Opts);
    EXPECT_TRUE(L.ok()) << L.error().message();
    std::unique_ptr<CodeStore> S = L.take();
    vm::RunResult R = runFromStore(*S);
    EXPECT_TRUE(R.Ok) << R.Trap;
    return S->stats();
  };

  StoreStats A = RunOnce(42), B = RunOnce(42), C = RunOnce(43);
  EXPECT_EQ(A.FetchAttempts, B.FetchAttempts);
  EXPECT_EQ(A.FetchRetries, B.FetchRetries);
  EXPECT_EQ(A.FetchedBytes, B.FetchedBytes);
  EXPECT_EQ(A.FetchVirtualNanos, B.FetchVirtualNanos);
  EXPECT_GT(A.FetchRetries, 0u) << "25% fault rate must inject something";
  EXPECT_NE(A.FetchVirtualNanos, C.FetchVirtualNanos)
      << "a different seed draws a different history";
}

//===----------------------------------------------------------------------===//
// Permanent failure: typed errors, no aborts, no hangs
//===----------------------------------------------------------------------===//

TEST(RemoteStore, TotalOutageFailsConstructionTyped) {
  vm::VMProgram P = buildVM(syntheticSource(3));
  std::vector<uint8_t> Image = buildImage(P, "flate");
  RemoteOptions RO;
  RO.TransientFailureRate = 1.0; // Every attempt fails: retries exhaust.
  StoreOptions Opts;
  Opts.Retry.MaxAttempts = 4;
  Result<std::unique_ptr<CodeStore>> L = CodeStore::tryFromSource(
      std::make_unique<SimulatedRemoteFrameSource>(mustLocal(Image), RO),
      Opts);
  ASSERT_FALSE(L.ok());
  EXPECT_NE(L.error().message().find("fetch manifest"), std::string::npos)
      << L.error().message();
}

TEST(RemoteStore, FrameOutageFailsEveryFaultTyped) {
  vm::VMProgram P = buildVM(syntheticSource(4));
  std::vector<uint8_t> Image = buildImage(P, "flate");
  StoreOptions Opts;
  Opts.Retry.MaxAttempts = 3;
  auto Src = std::make_unique<OutageFrames>(mustLocal(Image));
  OutageFrames *Raw = Src.get();
  Result<std::unique_ptr<CodeStore>> L =
      CodeStore::tryFromSource(std::move(Src), Opts);
  ASSERT_TRUE(L.ok()) << L.error().message();
  std::unique_ptr<CodeStore> S = L.take();

  for (uint32_t I = 0; I != S->functionCount(); ++I) {
    Result<std::shared_ptr<const vm::VMFunction>> R = S->fault(I);
    ASSERT_FALSE(R.ok()) << I;
    EXPECT_NE(R.error().message().find("fetch frame"), std::string::npos);
    EXPECT_NE(R.error().message().find("timeout"), std::string::npos);
    EXPECT_FALSE(S->isResident(I));
  }
  EXPECT_EQ(Raw->FrameFetches.load(),
            S->functionCount() * Opts.Retry.MaxAttempts)
      << "each fault retries exactly MaxAttempts times";

  StoreStats St = S->stats();
  EXPECT_EQ(St.FetchFailures, S->functionCount());
  EXPECT_EQ(St.DecodeErrors, S->functionCount());
  EXPECT_EQ(St.Decodes, 0u) << "no bytes ever arrived, nothing decoded";

  // Executing through the resolver traps recoverably; no abort.
  vm::RunResult R = runFromStore(*S);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Trap.find("resolve function"), std::string::npos) << R.Trap;
}

// Eight threads faulting one dead function: the single-flight leader's
// failure must wake every waiter with that same typed error — no thread
// may hang on the future, and no thread may crash.
TEST(RemoteStore, FailedFetchWakesAllSingleFlightWaiters) {
  vm::VMProgram P = buildVM(syntheticSource(4));
  std::vector<uint8_t> Image = buildImage(P, "flate");
  StoreOptions Opts;
  Opts.Retry.MaxAttempts = 2;
  Result<std::unique_ptr<CodeStore>> L = CodeStore::tryFromSource(
      std::make_unique<OutageFrames>(mustLocal(Image), /*SleepMillis=*/20),
      Opts);
  ASSERT_TRUE(L.ok()) << L.error().message();
  std::unique_ptr<CodeStore> S = L.take();

  constexpr unsigned NumThreads = 8;
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::string Errors[NumThreads];
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      ++Ready;
      while (!Go.load())
        std::this_thread::yield();
      Result<std::shared_ptr<const vm::VMFunction>> R = S->fault(0);
      Errors[T] = R.ok() ? std::string() : R.error().message();
    });
  while (Ready.load() != NumThreads)
    std::this_thread::yield();
  Go.store(true);
  for (std::thread &T : Threads)
    T.join();

  for (unsigned T = 0; T != NumThreads; ++T) {
    EXPECT_FALSE(Errors[T].empty()) << "thread " << T << " must see the error";
    EXPECT_NE(Errors[T].find("outage"), std::string::npos) << Errors[T];
  }
  StoreStats St = S->stats();
  EXPECT_EQ(St.Misses, uint64_t(NumThreads));
  EXPECT_EQ(St.SingleFlightWaits + St.FetchFailures, uint64_t(NumThreads))
      << "every miss either led a failed fetch or waited on one";
}

//===----------------------------------------------------------------------===//
// Concurrency soak (tsan)
//===----------------------------------------------------------------------===//

// Eight threads hammering a flaky remote store with a tiny budget:
// constant faulting, refetching, eviction, injected failures, and
// single-flight collisions. Every outcome must be either the right
// decoded function or a typed error, and the stats must stay coherent.
TEST(RemoteStore, ConcurrentSoakOverFlakyLink) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  std::vector<uint8_t> Image = buildImage(P, "vm-compact");

  RemoteOptions RO;
  RO.Link = sim::fast100M();
  RO.TransientFailureRate = 0.30;
  RO.FaultSeed = 99;
  StoreOptions Opts;
  Opts.CacheBudgetBytes = 4096; // Small: constant eviction + refetch.
  Opts.Shards = 2;              // Cross-shard and same-shard contention.
  Opts.Retry.MaxAttempts = 12;
  Result<std::unique_ptr<CodeStore>> L = CodeStore::tryFromSource(
      std::make_unique<SimulatedRemoteFrameSource>(mustLocal(Image), RO),
      Opts);
  ASSERT_TRUE(L.ok()) << L.error().message();
  std::unique_ptr<CodeStore> S = L.take();
  const uint32_t N = S->functionCount();

  constexpr unsigned NumThreads = 8;
  constexpr unsigned Iters = 300;
  std::atomic<unsigned> TypedErrors{0};
  std::atomic<unsigned> WrongBodies{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      PRNG Rng(0x50A4'0000ull + T);
      for (unsigned I = 0; I != Iters; ++I) {
        uint32_t Id = static_cast<uint32_t>(Rng.below(N));
        Result<std::shared_ptr<const vm::VMFunction>> R = S->fault(Id);
        if (!R.ok())
          ++TypedErrors;
        else if (R.value()->Name != S->functionName(Id))
          ++WrongBodies;
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(WrongBodies.load(), 0u);
  // MaxAttempts=12 at 30%: per-fetch failure odds ~5e-7; with ~2400
  // faults the expected count is ~0.001, so flakes would mean a bug.
  EXPECT_EQ(TypedErrors.load(), 0u);

  StoreStats St = S->stats();
  EXPECT_EQ(St.Hits + St.Misses, uint64_t(NumThreads) * Iters);
  EXPECT_LE(St.SingleFlightWaits, St.Misses);
  EXPECT_GT(St.FetchRetries, 0u) << "the link must actually have flaked";
  EXPECT_EQ(St.FetchFailures, 0u);
  EXPECT_GT(St.Evictions, 0u) << "the budget must actually have evicted";
}

//===----------------------------------------------------------------------===//
// Virtual-clock accounting
//===----------------------------------------------------------------------===//

TEST(RemoteStore, BatchedLatencyChargesSetupOnce) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  std::vector<uint8_t> Image = buildImage(P, "flate");
  const sim::Link Modem = sim::modem28k();

  auto TotalSeconds = [&](LatencyMode Mode) {
    RemoteOptions RO;
    RO.Link = Modem;
    RO.Latency = Mode;
    SimulatedRemoteFrameSource Remote(mustLocal(Image), RO);
    double Total = 0;
    FetchResult M = Remote.fetchManifest();
    EXPECT_TRUE(M.Ok);
    Total += M.VirtualSeconds;
    for (uint32_t I = 0; I != Remote.functionFrameCount(); ++I) {
      FetchResult R = Remote.fetchFrame(I);
      EXPECT_TRUE(R.Ok);
      Total += R.VirtualSeconds;
    }
    return Total;
  };

  std::unique_ptr<FrameSource> Src = mustLocal(Image);
  size_t PayloadBytes = Src->frameBytes() + Src->fetchManifest().Bytes.size();
  size_t Transfers = Src->functionFrameCount() + 1;

  double PerFetch = TotalSeconds(LatencyMode::PerFetch);
  double Batched = TotalSeconds(LatencyMode::Batched);
  EXPECT_NEAR(PerFetch,
              Modem.LatencySeconds * Transfers +
                  Modem.streamSeconds(PayloadBytes),
              1e-9);
  EXPECT_NEAR(Batched,
              Modem.LatencySeconds + Modem.streamSeconds(PayloadBytes),
              1e-9);
  EXPECT_LT(Batched, PerFetch)
      << "one session must beat per-frame modem redials";
}

} // namespace

//===- tests/test_codec.cpp - Codec registry and pipeline driver ---------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The codec seam's core promise: every registered codec round-trips its
// canonical payload byte-identically through compress -> tryDecompress,
// for every corpus program; and the parallel pipeline driver's output is
// byte-identical to a serial run at any job count.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "corpus/Corpus.h"
#include "pipeline/Codec.h"
#include "pipeline/Payload.h"
#include "pipeline/Pipeline.h"

#include "gtest/gtest.h"

#include <atomic>
#include <thread>

using namespace ccomp;
using namespace ccomp::pipeline;
using namespace ccomp::test;

namespace {

struct Compiled {
  std::string Name;
  std::unique_ptr<ir::Module> M;
  vm::VMProgram P;
};

// Compiles every corpus program once for the whole suite.
const std::vector<Compiled> &corpusPrograms() {
  static std::vector<Compiled> *Programs = [] {
    auto *V = new std::vector<Compiled>();
    for (const corpus::Program &CP : corpus::programs()) {
      Compiled C;
      C.Name = CP.Name;
      C.M = compileC(CP.Source);
      C.P = buildVM(CP.Source);
      V->push_back(std::move(C));
    }
    return V;
  }();
  return *Programs;
}

TEST(Codec, RegistryHasBuiltins) {
  const Registry &R = Registry::instance();
  EXPECT_NE(R.find("flate"), nullptr);
  EXPECT_NE(R.find("vm-compact"), nullptr);
  EXPECT_NE(R.find("brisc"), nullptr);
  EXPECT_NE(R.find("wire"), nullptr);
  EXPECT_NE(R.find("brisc-ctx"), nullptr);
  EXPECT_NE(R.find("bwt-dict"), nullptr);
  EXPECT_EQ(R.find("no-such-codec"), nullptr);
  for (const auto &C : R.all()) {
    EXPECT_STRNE(C->name(), "");
    EXPECT_STRNE(C->description(), "");
  }
}

// The core contract: every codec round-trips every corpus program's
// canonical payloads byte-identically.
TEST(Codec, EveryCodecRoundTripsEveryCorpusProgram) {
  for (const Compiled &C : corpusPrograms()) {
    for (const auto &Codec : Registry::instance().all()) {
      std::vector<std::vector<uint8_t>> Payloads =
          makePayloads(*Codec, C.P, C.M.get());
      ASSERT_FALSE(Payloads.empty()) << C.Name << " " << Codec->name();
      for (size_t I = 0; I != Payloads.size(); ++I) {
        std::vector<uint8_t> Frame = Codec->compress(Payloads[I]);
        Result<std::vector<uint8_t>> Back = Codec->tryDecompress(Frame);
        ASSERT_TRUE(Back.ok())
            << C.Name << " " << Codec->name() << " item " << I << ": "
            << Back.error().message();
        EXPECT_EQ(Back.value(), Payloads[I])
            << C.Name << " " << Codec->name() << " item " << I;
      }
    }
  }
}

TEST(Codec, StatsCountCallsAndBytes) {
  const Codec *Flate = Registry::instance().find("flate");
  ASSERT_NE(Flate, nullptr);
  Flate->resetStats();
  std::vector<uint8_t> Payload(2000, 7);
  std::vector<uint8_t> Frame = Flate->compress(Payload);
  ASSERT_TRUE(Flate->tryDecompress(Frame).ok());
  EXPECT_FALSE(Flate->tryDecompress(std::vector<uint8_t>{1, 2, 3}).ok());
  CodecStats S = Flate->snapshot();
  EXPECT_EQ(S.CompressCalls, 1u);
  EXPECT_EQ(S.BytesIn, Payload.size());
  EXPECT_EQ(S.BytesOut, Frame.size());
  EXPECT_EQ(S.DecompressCalls, 2u);
  EXPECT_EQ(S.DecodeErrors, 1u);
  Flate->resetStats();
  EXPECT_EQ(Flate->snapshot().CompressCalls, 0u);
}

// snapshot() taken while other threads are mid-update must never show a
// torn view: the call counters are published last (release) and read
// first (acquire), so any snapshot that observes k CompressCalls must
// also observe at least the payload bytes those k calls recorded. Eight
// writer threads hammer a fixed-size payload while readers snapshot
// concurrently; every snapshot's byte delta is checked against its call
// delta. Deltas are taken against a pre-hammer baseline because other
// tests in this binary may already have bumped the global counters.
TEST(Codec, SnapshotIsCoherentUnderConcurrentUpdates) {
  const Codec *Flate = Registry::instance().find("flate");
  ASSERT_NE(Flate, nullptr);
  const std::vector<uint8_t> Payload(512, 42);
  const std::vector<uint8_t> Frame = Flate->compress(Payload);
  const CodecStats Base = Flate->snapshot();

  constexpr int Writers = 4;
  constexpr int Readers = 4;
  constexpr int Rounds = 400;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Violations{0};

  std::vector<std::thread> Threads;
  for (int W = 0; W != Writers; ++W)
    Threads.emplace_back([&] {
      for (int I = 0; I != Rounds; ++I) {
        Flate->compress(Payload);
        if (!Flate->tryDecompress(Frame).ok())
          Violations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (int R = 0; R != Readers; ++R)
    Threads.emplace_back([&] {
      while (!Stop.load(std::memory_order_acquire)) {
        CodecStats S = Flate->snapshot();
        uint64_t Calls = S.CompressCalls - Base.CompressCalls;
        uint64_t Bytes = S.BytesIn - Base.BytesIn;
        if (Bytes < Calls * Payload.size())
          Violations.fetch_add(1, std::memory_order_relaxed);
        uint64_t Decodes = S.DecompressCalls - Base.DecompressCalls;
        if (Decodes > uint64_t(Writers) * Rounds)
          Violations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (int W = 0; W != Writers; ++W)
    Threads[W].join();
  Stop.store(true, std::memory_order_release);
  for (size_t I = Writers; I != Threads.size(); ++I)
    Threads[I].join();

  EXPECT_EQ(Violations.load(), 0u);
  CodecStats Final = Flate->snapshot();
  EXPECT_EQ(Final.CompressCalls - Base.CompressCalls,
            uint64_t(Writers) * Rounds);
  EXPECT_EQ(Final.BytesIn - Base.BytesIn,
            uint64_t(Writers) * Rounds * Payload.size());
  EXPECT_EQ(Final.DecompressCalls - Base.DecompressCalls,
            uint64_t(Writers) * Rounds);
}

TEST(Codec, CorruptFramesYieldTypedErrors) {
  const Compiled &C = corpusPrograms().front();
  for (const auto &Codec : Registry::instance().all()) {
    std::vector<std::vector<uint8_t>> Payloads =
        makePayloads(*Codec, C.P, C.M.get());
    std::vector<uint8_t> Frame = Codec->compress(Payloads[0]);
    // Truncation must fail recoverably — except for vm-compact, whose
    // headerless self-delimiting stream legally decodes a prefix cut at
    // an instruction boundary as a shorter function.
    for (size_t Keep : {size_t(0), size_t(1), Frame.size() / 2}) {
      std::vector<uint8_t> Cut(Frame.begin(), Frame.begin() + Keep);
      Result<std::vector<uint8_t>> R = Codec->tryDecompress(Cut);
      if (std::string(Codec->name()) != "vm-compact")
        EXPECT_FALSE(R.ok()) << Codec->name() << " keep=" << Keep;
    }
    std::vector<uint8_t> Bad = Frame;
    Bad[0] ^= 0xFF;
    Result<std::vector<uint8_t>> R = Codec->tryDecompress(Bad);
    if (!R.ok())
      EXPECT_FALSE(R.error().message().empty()) << Codec->name();
  }
}

TEST(Chain, ParseAcceptsKnownChainsRejectsBadOnes) {
  std::string Error;
  EXPECT_EQ(parseChain("brisc", Error).size(), 1u);
  EXPECT_EQ(parseChain("brisc+flate", Error).size(), 2u);
  EXPECT_EQ(parseChain("vm-compact+flate", Error).size(), 2u);

  EXPECT_TRUE(parseChain("", Error).empty());
  EXPECT_FALSE(Error.empty());
  EXPECT_TRUE(parseChain("nope", Error).empty());
  EXPECT_NE(Error.find("nope"), std::string::npos);
  // Only raw-byte codecs may follow another codec.
  EXPECT_TRUE(parseChain("flate+brisc", Error).empty());
  EXPECT_TRUE(parseChain("brisc+", Error).empty());
}

TEST(Chain, ChainedCompressInverts) {
  const Compiled &C = corpusPrograms().front();
  std::string Error;
  std::vector<const Codec *> Chain = parseChain("brisc+flate", Error);
  ASSERT_EQ(Chain.size(), 2u) << Error;
  std::vector<std::vector<uint8_t>> Payloads =
      makePayloads(*Chain.front(), C.P, C.M.get());
  std::vector<std::vector<uint8_t>> Frames = compressAll(Chain, Payloads, 1);
  Result<std::vector<std::vector<uint8_t>>> Back =
      tryDecompressAll(Chain, Frames, 1);
  ASSERT_TRUE(Back.ok()) << Back.error().message();
  EXPECT_EQ(Back.value(), Payloads);
}

// The pipeline driver's determinism promise: fanning jobs across 4
// worker threads produces bytes identical to the serial run.
TEST(Pipeline, ParallelOutputMatchesSerial) {
  vm::VMProgram P = buildVM(syntheticSource(40));
  std::string Error;
  for (const char *Spec : {"brisc", "vm-compact+flate", "flate", "bwt-dict",
                           "brisc-ctx+flate"}) {
    std::vector<const Codec *> Chain = parseChain(Spec, Error);
    ASSERT_FALSE(Chain.empty()) << Error;
    std::vector<std::vector<uint8_t>> Payloads =
        makePayloads(*Chain.front(), P, nullptr);
    ASSERT_GT(Payloads.size(), 8u);

    std::vector<std::vector<uint8_t>> Serial = compressAll(Chain, Payloads, 1);
    std::vector<std::vector<uint8_t>> Parallel =
        compressAll(Chain, Payloads, 4);
    EXPECT_EQ(Parallel, Serial) << Spec;

    Result<std::vector<std::vector<uint8_t>>> SerialBack =
        tryDecompressAll(Chain, Serial, 1);
    Result<std::vector<std::vector<uint8_t>>> ParallelBack =
        tryDecompressAll(Chain, Serial, 4);
    ASSERT_TRUE(SerialBack.ok()) << Spec;
    ASSERT_TRUE(ParallelBack.ok()) << Spec;
    EXPECT_EQ(ParallelBack.value(), SerialBack.value()) << Spec;
    EXPECT_EQ(SerialBack.value(), Payloads) << Spec;
  }
}

TEST(Pipeline, ErrorReportingIsDeterministic) {
  vm::VMProgram P = buildVM(syntheticSource(12));
  std::string Error;
  std::vector<const Codec *> Chain = parseChain("flate", Error);
  ASSERT_FALSE(Chain.empty());
  std::vector<std::vector<uint8_t>> Payloads =
      makePayloads(*Chain.front(), P, nullptr);
  std::vector<std::vector<uint8_t>> Frames = compressAll(Chain, Payloads, 1);
  // Corrupt two frames; the lowest-index failure must be the one
  // reported regardless of job count.
  Frames[3] = {0xDE, 0xAD};
  Frames[7] = {0xBE, 0xEF};
  Result<std::vector<std::vector<uint8_t>>> Serial =
      tryDecompressAll(Chain, Frames, 1);
  Result<std::vector<std::vector<uint8_t>>> Parallel =
      tryDecompressAll(Chain, Frames, 4);
  ASSERT_FALSE(Serial.ok());
  ASSERT_FALSE(Parallel.ok());
  EXPECT_EQ(Parallel.error().message(), Serial.error().message());
}

TEST(Pipeline, ContainerRoundTripsAndRejectsCorruption) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  std::string Error;
  std::vector<const Codec *> Chain = parseChain("brisc+flate", Error);
  ASSERT_FALSE(Chain.empty());
  std::vector<std::vector<uint8_t>> Payloads =
      makePayloads(*Chain.front(), P, nullptr);
  std::vector<std::vector<uint8_t>> Frames = compressAll(Chain, Payloads, 2);

  std::vector<uint8_t> Packed = packContainer("brisc+flate", Frames);
  Result<Container> C = tryUnpackContainer(Packed);
  ASSERT_TRUE(C.ok()) << C.error().message();
  EXPECT_EQ(C.value().ChainSpec, "brisc+flate");
  EXPECT_EQ(C.value().Frames, Frames);

  for (size_t Keep : {size_t(0), size_t(3), Packed.size() - 1}) {
    std::vector<uint8_t> Cut(Packed.begin(), Packed.begin() + Keep);
    EXPECT_FALSE(tryUnpackContainer(Cut).ok()) << "keep=" << Keep;
  }
  std::vector<uint8_t> Bad = Packed;
  Bad[0] ^= 0xFF;
  EXPECT_FALSE(tryUnpackContainer(Bad).ok());
}

// The function image rebuilds label tables from resolved branch targets;
// a function whose labels are renumbered by a compressor still
// round-trips byte-exactly.
TEST(Payload, FuncImageRoundTrip) {
  vm::VMProgram P = buildVM(syntheticSource(10));
  for (const vm::VMFunction &F : P.Functions) {
    std::vector<uint8_t> Img = encodeFuncImage(F);
    Result<vm::VMFunction> Back = tryDecodeFuncImage(Img);
    ASSERT_TRUE(Back.ok()) << F.Name << ": " << Back.error().message();
    EXPECT_EQ(encodeFuncImage(Back.value()), Img) << F.Name;
    EXPECT_EQ(Back.value().Code.size(), F.Code.size()) << F.Name;
    EXPECT_EQ(Back.value().Name, F.Name);
    EXPECT_EQ(Back.value().FrameSize, F.FrameSize) << F.Name;
  }
  EXPECT_FALSE(tryDecodeFuncImage(std::vector<uint8_t>{1, 2, 3}).ok());
}

} // namespace

//===- tests/test_tiered.cpp - Tiered execution equivalence ---------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The tier's promise: hotness-driven native execution out of the
// compressed store is byte-for-byte identical to eager interpretation —
// same output, same exit code, same Trap text, same Steps — for every
// per-function codec chain, at any page target, at generous and
// pathological budgets, and at any hot threshold (including "compile
// everything at first entry"). Plus the cache mechanics: threshold
// semantics, eviction under a 1-byte compiled budget, pinning, and an
// 8-thread compile-vs-fault race that must stay tsan-clean and perform
// exactly one compile per function (single-flight).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "store/CodeStore.h"
#include "store/Resolver.h"
#include "store/Tiered.h"

#include "gtest/gtest.h"

#include <thread>
#include <vector>

using namespace ccomp;
using namespace ccomp::store;
using namespace ccomp::test;

namespace {

const char *const PerFunctionChains[] = {"flate", "vm-compact", "brisc",
                                         "brisc+flate", "vm-compact+flate"};

std::unique_ptr<CodeStore> mustBuildStore(const vm::VMProgram &P,
                                          const std::string &Chain,
                                          StoreOptions Opts) {
  std::string Err;
  std::unique_ptr<CodeStore> S = CodeStore::build(P, Chain, Opts, Err);
  EXPECT_NE(S, nullptr) << Chain << ": " << Err;
  return S;
}

void expectSameRun(const vm::RunResult &Tiered, const vm::RunResult &Eager,
                   const std::string &Ctx) {
  EXPECT_EQ(Tiered.Ok, Eager.Ok) << Ctx << ": " << Tiered.Trap;
  EXPECT_EQ(Tiered.ExitCode, Eager.ExitCode) << Ctx;
  EXPECT_EQ(Tiered.Output, Eager.Output) << Ctx;
  EXPECT_EQ(Tiered.Trap, Eager.Trap) << Ctx;
  EXPECT_EQ(Tiered.Steps, Eager.Steps) << Ctx;
}

// The acceptance bar: tiered execution equals eager interpretation for
// every chain x page target x budget x threshold. Threshold 0 compiles
// every function at first entry (the whole program runs native);
// threshold 4 exercises mid-run tier transitions where a function's
// first few calls interpret and later ones run compiled.
TEST(Tiered, ExecutionMatchesEagerAcrossChainsPagesBudgetsThresholds) {
  vm::VMProgram P = buildVM(syntheticSource(10));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok) << Eager.Trap;

  for (const char *Chain : PerFunctionChains) {
    for (size_t Target : {size_t(0), size_t(64), size_t(4096)}) {
      for (size_t Budget : {size_t(1), size_t(16) << 20}) {
        StoreOptions Opts;
        Opts.PageTargetBytes = Target;
        Opts.CacheBudgetBytes = Budget;
        std::unique_ptr<CodeStore> S = mustBuildStore(P, Chain, Opts);
        ASSERT_NE(S, nullptr);
        for (uint64_t Threshold : {uint64_t(0), uint64_t(4)}) {
          TierOptions TO;
          TO.HotThreshold = Threshold;
          TierStats TS;
          vm::RunResult R =
              runTieredFromStore(*S, TO, vm::RunOptions(), &TS);
          std::string Ctx = std::string(Chain) + " target=" +
                            std::to_string(Target) + " budget=" +
                            std::to_string(Budget) + " threshold=" +
                            std::to_string(Threshold);
          expectSameRun(R, Eager, Ctx);
          if (Threshold == 0) {
            EXPECT_GT(TS.Compiles, 0u) << Ctx;
            EXPECT_GT(TS.NativeSteps, 0u) << Ctx;
          }
        }
      }
    }
  }
}

// Steps parity at the limit: when the budgeted run hits MaxSteps the
// tier must charge exactly the same step count the interpreter does
// (the failing step is counted) and surface the same trap.
TEST(Tiered, StepLimitParity) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  vm::RunOptions Lim;
  Lim.MaxSteps = 500;
  vm::RunResult Eager = vm::runProgram(P, Lim);
  ASSERT_FALSE(Eager.Ok);
  EXPECT_EQ(Eager.Trap, "step limit exceeded");

  std::unique_ptr<CodeStore> S = mustBuildStore(P, "flate", StoreOptions());
  ASSERT_NE(S, nullptr);
  TierOptions TO;
  TO.HotThreshold = 0; // Everything native: the limit trips on the tier.
  vm::RunOptions TLim;
  TLim.MaxSteps = Lim.MaxSteps;
  vm::RunResult R = runTieredFromStore(*S, TO, TLim);
  expectSameRun(R, Eager, "step-limit");
}

// Threshold semantics: with a threshold higher than any function's
// final demand heat, nothing compiles and the run is pure
// interpretation; with threshold 0 every executed function compiles.
TEST(Tiered, HotThresholdGatesCompilation) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok) << Eager.Trap;

  std::unique_ptr<CodeStore> S = mustBuildStore(P, "flate", StoreOptions());
  ASSERT_NE(S, nullptr);

  TierOptions Cold;
  Cold.HotThreshold = ~0ull;
  TierStats ColdStats;
  vm::RunResult ColdRun = runTieredFromStore(*S, Cold, {}, &ColdStats);
  expectSameRun(ColdRun, Eager, "cold-threshold");
  EXPECT_EQ(ColdStats.Compiles, 0u);
  EXPECT_EQ(ColdStats.NativeSteps, 0u);

  TierOptions Hot;
  Hot.HotThreshold = 0;
  TierStats HotStats;
  vm::RunResult HotRun = runTieredFromStore(*S, Hot, {}, &HotStats);
  expectSameRun(HotRun, Eager, "zero-threshold");
  EXPECT_GT(HotStats.Compiles, 0u);
  EXPECT_GT(HotStats.NativeSteps, 0u);
  // Single-flight + cache: at most one compile per store function.
  EXPECT_LE(HotStats.Compiles, uint64_t(S->functionCount()));
}

// Heat accounting feeds the gate: demand faults and hits both count,
// and functionHeat is monotone across runs (warmth carries over, by
// design, so a second run tiers up immediately).
TEST(Tiered, DemandHeatAccumulatesAcrossRuns) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "flate", StoreOptions());
  ASSERT_NE(S, nullptr);
  ASSERT_GT(S->functionCount(), 0u);
  EXPECT_EQ(S->functionHeat(S->skeleton().Entry), 0u);

  vm::RunResult First = runFromStore(*S);
  ASSERT_TRUE(First.Ok) << First.Trap;
  uint64_t H1 = S->functionHeat(S->skeleton().Entry);
  EXPECT_GT(H1, 0u);

  vm::RunResult Second = runFromStore(*S);
  ASSERT_TRUE(Second.Ok) << Second.Trap;
  uint64_t H2 = S->functionHeat(S->skeleton().Entry);
  EXPECT_GT(H2, H1);

  // Out-of-range queries answer 0, not UB.
  EXPECT_EQ(S->functionHeat(~0u), 0u);
  EXPECT_EQ(S->frameHeat(~0u), 0u);
}

// A 1-byte compiled budget forces eviction churn (every new unit evicts
// the previous one) yet execution stays byte-identical.
TEST(Tiered, TinyCompiledBudgetEvictsButStaysCorrect) {
  vm::VMProgram P = buildVM(syntheticSource(10));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok) << Eager.Trap;

  std::unique_ptr<CodeStore> S = mustBuildStore(P, "flate", StoreOptions());
  ASSERT_NE(S, nullptr);
  TierOptions TO;
  TO.HotThreshold = 0;
  TO.CompiledBudgetBytes = 1;
  TierStats TS;
  vm::RunResult R = runTieredFromStore(*S, TO, {}, &TS);
  expectSameRun(R, Eager, "tiny-compiled-budget");
  EXPECT_GT(TS.Evictions, 0u);
  EXPECT_LE(TS.ResidentUnits, 2u); // Most-recent unit + at most a pin.
}

// Pinned units ignore the budget: pin every function under a 1-byte
// budget and nothing can be evicted.
TEST(Tiered, PinnedUnitsSurviveEviction) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "flate", StoreOptions());
  ASSERT_NE(S, nullptr);

  TierOptions TO;
  TO.HotThreshold = ~0ull; // Only pinCompiled may compile.
  TO.CompiledBudgetBytes = 1;
  TieredResolver Rv(*S, TO);
  uint32_t N = S->functionCount();
  for (uint32_t Fn = 0; Fn != N; ++Fn)
    ASSERT_TRUE(Rv.pinCompiled(Fn)) << "fn " << Fn;
  for (uint32_t Fn = 0; Fn != N; ++Fn)
    EXPECT_TRUE(Rv.isCompiled(Fn)) << "fn " << Fn;
  TierStats TS = Rv.tierStats();
  EXPECT_EQ(TS.Compiles, uint64_t(N));
  EXPECT_EQ(TS.PinnedUnits, uint64_t(N));
  EXPECT_EQ(TS.Evictions, 0u);
  EXPECT_EQ(TS.ResidentUnits, uint64_t(N));

  // Unpin everything; the next compile-triggering access may now evict.
  for (uint32_t Fn = 0; Fn != N; ++Fn)
    Rv.unpinCompiled(Fn);
  EXPECT_EQ(Rv.tierStats().PinnedUnits, 0u);

  // The pinned resolver still runs the program correctly.
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok) << Eager.Trap;
  vm::RunOptions Opts;
  Opts.Resolver = &Rv;
  vm::Machine M(S->skeleton(), Opts);
  expectSameRun(M.run(), Eager, "pinned-run");
}

// Stats reset preserves residency gauges while zeroing the counters.
TEST(Tiered, ResetTierStatsPreservesGauges) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "flate", StoreOptions());
  ASSERT_NE(S, nullptr);
  TierOptions TO;
  TO.HotThreshold = 0;
  TieredResolver Rv(*S, TO);
  vm::RunOptions Opts;
  Opts.Resolver = &Rv;
  vm::Machine M(S->skeleton(), Opts);
  ASSERT_TRUE(M.run().Ok);

  TierStats Before = Rv.tierStats();
  ASSERT_GT(Before.Compiles, 0u);
  ASSERT_GT(Before.ResidentUnits, 0u);
  Rv.resetTierStats();
  TierStats After = Rv.tierStats();
  EXPECT_EQ(After.Compiles, 0u);
  EXPECT_EQ(After.NativeSteps, 0u);
  EXPECT_EQ(After.ResidentUnits, Before.ResidentUnits);
  EXPECT_EQ(After.ResidentBytes, Before.ResidentBytes);
}

// Disabled tiering falls back to pure interpretation through the same
// resolver object.
TEST(Tiered, DisabledTierInterprets) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok) << Eager.Trap;

  std::unique_ptr<CodeStore> S = mustBuildStore(P, "flate", StoreOptions());
  ASSERT_NE(S, nullptr);
  TierOptions TO;
  TO.Enabled = false;
  TO.HotThreshold = 0;
  TierStats TS;
  vm::RunResult R = runTieredFromStore(*S, TO, {}, &TS);
  expectSameRun(R, Eager, "disabled");
  EXPECT_EQ(TS.Compiles, 0u);
  EXPECT_EQ(TS.NativeEnters, 0u);
}

// The race the issue calls out: 8 threads enter hot functions through
// one shared TieredResolver while the store is also servicing their
// interpretation faults. Every thread's run must equal the eager run,
// and single-flight must hold — no function compiles twice. Run under
// the tsan preset this must be clean.
TEST(Tiered, ConcurrentMachinesShareOneCompilePerFunction) {
  vm::VMProgram P = buildVM(syntheticSource(10));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok) << Eager.Trap;

  StoreOptions SO;
  SO.PageTargetBytes = 256; // Page-granular faults race the compiles.
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "flate", SO);
  ASSERT_NE(S, nullptr);

  TierOptions TO;
  TO.HotThreshold = 2;
  TieredResolver Rv(*S, TO);

  constexpr unsigned Threads = 8;
  std::vector<vm::RunResult> Results(Threads);
  {
    std::vector<std::thread> Pool;
    for (unsigned T = 0; T != Threads; ++T)
      Pool.emplace_back([&, T] {
        vm::RunOptions Opts;
        Opts.Resolver = &Rv;
        vm::Machine M(S->skeleton(), Opts);
        Results[T] = M.run();
      });
    for (std::thread &Th : Pool)
      Th.join();
  }
  for (unsigned T = 0; T != Threads; ++T)
    expectSameRun(Results[T], Eager, "thread " + std::to_string(T));

  TierStats TS = Rv.tierStats();
  EXPECT_LE(TS.Compiles, uint64_t(S->functionCount()))
      << "single-flight violated: some function compiled twice";
  EXPECT_GT(TS.Compiles, 0u);
}

} // namespace

//===- tests/test_flate.cpp - LZ77+Huffman compressor tests ------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "flate/Flate.h"
#include "support/ByteIO.h"
#include "support/PRNG.h"

#include "gtest/gtest.h"

#include <numeric>

using namespace ccomp;

namespace {

void roundTrip(const std::vector<uint8_t> &In) {
  std::vector<uint8_t> Z = flate::compress(In);
  std::vector<uint8_t> Out = flate::decompress(Z);
  ASSERT_EQ(Out.size(), In.size());
  ASSERT_EQ(Out, In);
}

} // namespace

TEST(Flate, Empty) { roundTrip({}); }

TEST(Flate, OneByte) { roundTrip({42}); }

TEST(Flate, ShortLiteralOnly) {
  std::vector<uint8_t> In = {'a', 'b', 'c', 'd', 'e'};
  roundTrip(In);
}

TEST(Flate, AllSameByte) {
  std::vector<uint8_t> In(100000, 7);
  std::vector<uint8_t> Z = flate::compress(In);
  EXPECT_LT(Z.size(), In.size() / 50); // Extreme redundancy compresses hard.
  roundTrip(In);
}

TEST(Flate, RepeatedPhrase) {
  std::string Phrase = "the quick brown fox jumps over the lazy dog. ";
  std::vector<uint8_t> In;
  for (int I = 0; I != 500; ++I)
    In.insert(In.end(), Phrase.begin(), Phrase.end());
  std::vector<uint8_t> Z = flate::compress(In);
  EXPECT_LT(Z.size(), In.size() / 10);
  roundTrip(In);
}

TEST(Flate, IncompressibleRandom) {
  PRNG Rng(1);
  std::vector<uint8_t> In(65536);
  for (uint8_t &B : In)
    B = static_cast<uint8_t>(Rng.next());
  std::vector<uint8_t> Z = flate::compress(In);
  // Stored-block fallback keeps expansion tiny.
  EXPECT_LT(Z.size(), In.size() + In.size() / 100 + 64);
  roundTrip(In);
}

TEST(Flate, OverlappingMatches) {
  // "abcabcabc..." exercises overlapping copy semantics (dist < len).
  std::vector<uint8_t> In;
  for (int I = 0; I != 10000; ++I)
    In.push_back(static_cast<uint8_t>('a' + I % 3));
  roundTrip(In);
}

TEST(Flate, MultiBlockInput) {
  PRNG Rng(5);
  std::vector<uint8_t> In;
  // > 64 KiB forces several blocks, mixing compressible and random runs.
  for (int Block = 0; Block != 5; ++Block) {
    for (int I = 0; I != 30000; ++I)
      In.push_back(Block % 2 ? static_cast<uint8_t>(Rng.next())
                             : static_cast<uint8_t>(I % 17));
  }
  roundTrip(In);
}

TEST(Flate, CodeLikeInputCompresses2to3x) {
  // Synthesize fixed-width instruction-like records: gzip-class
  // compressors get factors between 2 and 3 on such data (the paper's
  // stated range for machine code).
  // Real code repeats whole instruction sequences (idioms, prologues),
  // which is what LZ77 exploits. Build a pool of motifs and emit a
  // stream of motif instances with occasional noise records.
  PRNG Rng(11);
  std::vector<std::vector<uint8_t>> Motifs;
  for (int M = 0; M != 64; ++M) {
    std::vector<uint8_t> Motif;
    unsigned Records = 3 + Rng.below(12);
    for (unsigned I = 0; I != Records; ++I) {
      Motif.push_back(static_cast<uint8_t>(Rng.below(40)));
      Motif.push_back(static_cast<uint8_t>(Rng.below(256)));
      uint16_t Imm = static_cast<uint16_t>(4 * Rng.below(16));
      Motif.push_back(static_cast<uint8_t>(Imm));
      Motif.push_back(static_cast<uint8_t>(Imm >> 8));
    }
    Motifs.push_back(std::move(Motif));
  }
  std::vector<uint8_t> In;
  while (In.size() < 120000) {
    const auto &M = Motifs[Rng.below(Motifs.size())];
    In.insert(In.end(), M.begin(), M.end());
    if (Rng.chance(1, 4)) {
      In.push_back(static_cast<uint8_t>(Rng.below(40)));
      In.push_back(static_cast<uint8_t>(Rng.next()));
      In.push_back(static_cast<uint8_t>(Rng.next()));
      In.push_back(0);
    }
  }
  std::vector<uint8_t> Z = flate::compress(In);
  double Factor = double(In.size()) / double(Z.size());
  EXPECT_GT(Factor, 2.0);
  EXPECT_LT(Factor, 15.0);
  roundTrip(In);
}

TEST(Flate, RandomizedFuzzRoundTrip) {
  PRNG Rng(123);
  for (int Trial = 0; Trial != 30; ++Trial) {
    size_t N = Rng.below(20000);
    std::vector<uint8_t> In(N);
    // Mix of runs, ramps and noise.
    size_t I = 0;
    while (I < N) {
      unsigned Mode = static_cast<unsigned>(Rng.below(3));
      size_t Len = std::min<size_t>(N - I, 1 + Rng.below(200));
      uint8_t B = static_cast<uint8_t>(Rng.next());
      for (size_t K = 0; K != Len; ++K, ++I)
        In[I] = Mode == 0 ? B
                : Mode == 1 ? static_cast<uint8_t>(I & 0xFF)
                            : static_cast<uint8_t>(Rng.next());
    }
    roundTrip(In);
  }
}

TEST(Flate, TruncationAtEveryEighthYieldsTypedError) {
  std::vector<uint8_t> In;
  for (int I = 0; I != 20000; ++I)
    In.push_back(static_cast<uint8_t>(I * 31 + I / 7));
  std::vector<uint8_t> Z = flate::compress(In);
  ASSERT_GT(Z.size(), 8u);
  for (unsigned K = 0; K != 8; ++K) {
    std::vector<uint8_t> Cut(Z.begin(), Z.begin() + Z.size() * K / 8);
    Result<std::vector<uint8_t>> R = flate::tryDecompress(Cut);
    EXPECT_FALSE(R.ok()) << "prefix " << K << "/8 decoded";
    if (!R.ok())
      EXPECT_FALSE(R.error().message().empty());
  }
}

TEST(Flate, HugeDeclaredSizeRejectedWithoutAllocating) {
  // Regression: the decoder used to `reserve(OrigSize)` straight from
  // the frame's unvalidated varint, so a 12-byte input claiming a 1 TiB
  // output allocated (or died trying) before the first block was read.
  ByteWriter W;
  W.writeVarU(1ull << 40); // Declared original size: 1 TiB.
  W.writeU8(0x00);         // A token of block data, nowhere near enough.
  W.writeU8(0x00);
  Result<std::vector<uint8_t>> R = flate::tryDecompress(W.bytes());
  ASSERT_FALSE(R.ok());
  EXPECT_FALSE(R.error().message().empty());
}

TEST(Flate, GarbageInputsYieldTypedErrors) {
  PRNG Rng(77);
  for (int Trial = 0; Trial != 50; ++Trial) {
    std::vector<uint8_t> Junk(Rng.below(200));
    for (uint8_t &B : Junk)
      B = static_cast<uint8_t>(Rng.next());
    // Must terminate promptly with either a clean decode or a typed
    // error; gtest's timeout (and the sanitizers) police the rest.
    (void)flate::tryDecompress(Junk);
  }
}

TEST(Flate, LazyMatchingNoWorse) {
  std::string Phrase = "abcde abcdx abcde abcdx ";
  std::vector<uint8_t> In;
  for (int I = 0; I != 300; ++I)
    In.insert(In.end(), Phrase.begin(), Phrase.end());
  flate::Options Lazy;
  flate::Options Greedy;
  Greedy.Lazy = false;
  size_t L = flate::compress(In, Lazy).size();
  size_t G = flate::compress(In, Greedy).size();
  EXPECT_LE(L, G + 8);
  EXPECT_EQ(flate::decompress(flate::compress(In, Greedy)), In);
}

//===- tests/test_wire.cpp - Wire-format compressor tests --------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "flate/Flate.h"
#include "ir/Text.h"
#include "vm/Encode.h"
#include "wire/Wire.h"

using namespace ccomp;
using namespace ccomp::test;

namespace {

const char *SampleProgram = R"(
int pepper(int i, int j) { return i + j; }
int salt(int j, int i) {
  if (j > 0) {
    pepper(i, j);
    j--;
  }
  return j;
}
int gcd(int a, int b) { while (b) { int t = a % b; a = b; b = t; } return a; }
int table[64];
char msg[] = "wire format";
int main(void) {
  int i;
  for (i = 0; i < 64; i++) table[i] = gcd(i * 7 + 3, i + 1) + salt(i, 2);
  int s = 0;
  for (i = 0; i < 64; i++) s += table[i];
  print_int(s);
  return s & 255;
}
)";

std::string canonicalText(const ir::Module &M) { return ir::printModule(M); }

void roundTripModule(const ir::Module &M, wire::Pipeline P) {
  std::string Before = canonicalText(M);
  std::vector<uint8_t> Z = wire::compress(M, P);
  std::string Error;
  std::unique_ptr<ir::Module> Back = wire::decompress(Z, Error);
  ASSERT_TRUE(Back) << Error;
  EXPECT_EQ(canonicalText(*Back), Before);
}

} // namespace

TEST(Wire, TextRoundTripOracle) {
  // The canonical-text oracle itself must round-trip through the parser.
  std::unique_ptr<ir::Module> M = compileC(SampleProgram);
  std::string T1 = canonicalText(*M);
  std::string Error;
  std::unique_ptr<ir::Module> M2 = ir::parseModule(T1, Error);
  ASSERT_TRUE(M2) << Error;
  EXPECT_EQ(canonicalText(*M2), T1);
}

TEST(Wire, RoundTripFull) {
  std::unique_ptr<ir::Module> M = compileC(SampleProgram);
  roundTripModule(*M, wire::Pipeline::Full);
}

TEST(Wire, RoundTripNaive) {
  std::unique_ptr<ir::Module> M = compileC(SampleProgram);
  roundTripModule(*M, wire::Pipeline::Naive);
}

TEST(Wire, RoundTripStreams) {
  std::unique_ptr<ir::Module> M = compileC(SampleProgram);
  roundTripModule(*M, wire::Pipeline::Streams);
}

TEST(Wire, RoundTripStreamsMTF) {
  std::unique_ptr<ir::Module> M = compileC(SampleProgram);
  roundTripModule(*M, wire::Pipeline::StreamsMTF);
}

TEST(Wire, EmptyModule) {
  ir::Module M;
  roundTripModule(M, wire::Pipeline::Full);
}

TEST(Wire, DecompressedModuleStillRuns) {
  std::unique_ptr<ir::Module> M = compileC(SampleProgram);
  codegen::Result Direct = codegen::generate(*M);
  ASSERT_TRUE(Direct.ok()) << Direct.Error;
  vm::RunResult R1 = vm::runProgram(Direct.P);
  ASSERT_TRUE(R1.Ok) << R1.Trap;

  std::vector<uint8_t> Z = wire::compress(*M);
  std::string Error;
  std::unique_ptr<ir::Module> Back = wire::decompress(Z, Error);
  ASSERT_TRUE(Back) << Error;
  codegen::Result Again = codegen::generate(*Back);
  ASSERT_TRUE(Again.ok()) << Again.Error;
  vm::RunResult R2 = vm::runProgram(Again.P);
  ASSERT_TRUE(R2.Ok) << R2.Trap;
  EXPECT_EQ(R1.ExitCode, R2.ExitCode);
  EXPECT_EQ(R1.Output, R2.Output);
}



TEST(Wire, FullBeatsNaiveOnLargeInput) {
  std::unique_ptr<ir::Module> M = compileC(syntheticSource(80));
  ASSERT_TRUE(M);
  size_t Full = wire::compress(*M, wire::Pipeline::Full).size();
  size_t Naive = wire::compress(*M, wire::Pipeline::Naive).size();
  EXPECT_LT(Full, Naive);
}

TEST(Wire, PipelineStagesMonotoneOnLargeInput) {
  std::unique_ptr<ir::Module> M = compileC(syntheticSource(80));
  ASSERT_TRUE(M);
  size_t Naive = wire::compress(*M, wire::Pipeline::Naive).size();
  size_t Streams = wire::compress(*M, wire::Pipeline::Streams).size();
  size_t MTF = wire::compress(*M, wire::Pipeline::StreamsMTF).size();
  size_t Full = wire::compress(*M, wire::Pipeline::Full).size();
  // Later stages should not hurt materially (tolerances cover per-stream
  // header noise; the corpus benchmarks measure the real gains).
  EXPECT_LT(Streams, Naive + 64);
  EXPECT_LT(MTF, Streams + Streams / 8 + 64);
  EXPECT_LE(Full, MTF + 16); // Huffman submode falls back when useless.
}

TEST(Wire, StatsAreConsistent) {
  std::unique_ptr<ir::Module> M = compileC(SampleProgram);
  wire::Stats S;
  std::vector<uint8_t> Z = wire::compress(*M, wire::Pipeline::Full, &S);
  EXPECT_EQ(S.TotalBytes, Z.size());
  EXPECT_GT(S.PatternCount, 0u);
  EXPECT_GT(S.TreeCount, 0u);
  EXPECT_GE(S.TreeCount, S.PatternCount);
  size_t Sum = 0;
  for (const wire::StreamStat &St : S.Streams)
    Sum += St.CompressedBytes;
  EXPECT_LE(Sum, S.TotalBytes);
  EXPECT_GT(Sum, 0u);
}

TEST(Wire, CorruptInputRejected) {
  std::unique_ptr<ir::Module> M = compileC("int main(void){return 0;}");
  std::vector<uint8_t> Z = wire::compress(*M);
  std::string Error;
  // Bad magic.
  std::vector<uint8_t> Bad = Z;
  Bad[0] ^= 0xFF;
  EXPECT_EQ(wire::decompress(Bad, Error), nullptr);
  EXPECT_FALSE(Error.empty());
}

TEST(Wire, TruncationAtEveryEighthYieldsTypedError) {
  std::unique_ptr<ir::Module> M = compileC(SampleProgram);
  for (wire::Pipeline P :
       {wire::Pipeline::Naive, wire::Pipeline::Streams,
        wire::Pipeline::StreamsMTF, wire::Pipeline::Full}) {
    std::vector<uint8_t> Z = wire::compress(*M, P);
    ASSERT_GT(Z.size(), 8u);
    for (unsigned K = 0; K != 8; ++K) {
      std::vector<uint8_t> Cut(Z.begin(), Z.begin() + Z.size() * K / 8);
      std::string Error;
      std::unique_ptr<ir::Module> Back = wire::decompress(Cut, Error);
      EXPECT_EQ(Back, nullptr)
          << "pipeline " << unsigned(P) << " prefix " << K << "/8 decoded";
      EXPECT_FALSE(Error.empty());
    }
  }
}

TEST(Wire, InflatedStreamCountRejectedWithoutAllocating) {
  // Regression: stream element counts were fed to vector::reserve before
  // being validated against the bytes actually present, so a corrupt
  // count field could demand gigabytes. Saturate every varint near the
  // front of the file and require prompt, typed rejection.
  std::unique_ptr<ir::Module> M = compileC(SampleProgram);
  std::vector<uint8_t> Z = wire::compress(*M, wire::Pipeline::Streams);
  for (size_t At = 4; At < std::min<size_t>(Z.size(), 40); ++At) {
    std::vector<uint8_t> Bad = Z;
    for (size_t I = At; I < std::min(At + 6, Bad.size()); ++I)
      Bad[I] = 0xFF;
    std::string Error;
    std::unique_ptr<ir::Module> Back = wire::decompress(Bad, Error);
    EXPECT_NE(Back == nullptr, Error.empty());
  }
}

TEST(Wire, CompressionBeatsGzippedNative) {
  // The headline claim of section 3: the wire format is significantly
  // smaller than both native code and gzipped native code.
  std::unique_ptr<ir::Module> M = compileC(syntheticSource(80));
  ASSERT_TRUE(M);
  codegen::Result CG = codegen::generate(*M);
  ASSERT_TRUE(CG.ok());
  std::vector<uint8_t> Native = vm::encodeProgram(CG.P);
  size_t Gz = flate::compress(Native).size();
  size_t Wire = wire::compress(*M).size();
  // Far below native; competitive with gzipped native even on this
  // synthetic input, which is pathologically kind to the LZ window
  // (structurally repetitive functions). The corpus benchmarks check the
  // paper's "wire beats gzip" result on realistic programs.
  EXPECT_LT(Wire, Native.size() / 4);
  EXPECT_LT(Wire, Gz + Gz / 4);
}

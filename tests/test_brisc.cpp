//===- tests/test_brisc.cpp - BRISC compressor/interpreter tests -------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "brisc/Brisc.h"
#include "brisc/CostModel.h"
#include "brisc/Interp.h"
#include "flate/Flate.h"
#include "vm/Encode.h"

using namespace ccomp;
using namespace ccomp::test;

namespace {

const char *Program = R"(
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int gcd(int a, int b) { while (b) { int t = a % b; a = b; b = t; } return a; }
int table[32];
char text[] = "brisc interpretable code";
int strsum(char *s) { int n = 0; while (*s) n += *s++; return n; }
int main(void) {
  int i, s = 0;
  for (i = 0; i < 16; i++) table[i] = fib(i % 10) + gcd(i * 3 + 1, i + 2);
  for (i = 0; i < 16; i++) s += table[i];
  s += strsum(text);
  print_int(s);
  print_char('\n');
  return s & 255;
}
)";

vm::VMProgram buildProgram() { return buildVM(Program); }

} // namespace

TEST(Brisc, PatternBasics) {
  brisc::Pattern P = brisc::Pattern::base(vm::VMOp::LD_W);
  EXPECT_TRUE(P.wellFormed());
  EXPECT_TRUE(P.allDataOps());
  // Base ld.iw: rd nibble + imm 4 bytes + rs nibble = 5 operand bytes.
  EXPECT_EQ(P.operandBytes(), 5u);

  vm::Instr In;
  In.Op = vm::VMOp::LD_W;
  In.Rd = vm::N0;
  In.Rs1 = vm::SP;
  In.Imm = 4;
  EXPECT_TRUE(P.matches(&In, 1));

  // Specialize the base register to sp and narrow the offset to a
  // scaled nibble: [ld.iw *,*x4(sp)].
  brisc::Pattern Q = P;
  Q.Elems[0].SpecMask |= 1u << 2; // rs1 field (assembly position 2).
  Q.Elems[0].SpecVals[2] = vm::SP;
  Q.Elems[0].Widths[1] = brisc::Width::NibX4;
  EXPECT_TRUE(Q.matches(&In, 1));
  // rd nibble + imm nibble = 1 byte.
  EXPECT_EQ(Q.operandBytes(), 1u);

  In.Imm = 6; // Not a multiple of 4: no longer matches the x4 width.
  EXPECT_FALSE(Q.matches(&In, 1));
  In.Imm = 64; // 64/4 = 16 overflows the nibble.
  EXPECT_FALSE(Q.matches(&In, 1));
}

TEST(Brisc, PatternSerializeRoundTrip) {
  brisc::Pattern P = brisc::Pattern::base(vm::VMOp::ADD);
  brisc::Pattern Q = brisc::Pattern::base(vm::VMOp::SPILL);
  Q.Elems[0].SpecMask = 1;
  Q.Elems[0].SpecVals[0] = vm::RA;
  brisc::Pattern Combined;
  Combined.Elems = P.Elems;
  Combined.Elems.push_back(Q.Elems[0]);

  ByteWriter W;
  Combined.serialize(W);
  ByteReader R(W.bytes());
  brisc::Pattern Back = brisc::Pattern::deserialize(R);
  EXPECT_EQ(Back.key(), Combined.key());
  EXPECT_TRUE(R.atEnd());
}

TEST(Brisc, OperandPackRoundTrip) {
  brisc::Pattern P;
  brisc::SpecInstr A;
  A.Op = vm::VMOp::ADDI;
  A.Widths[0] = brisc::Width::Nib;  // rd
  A.Widths[1] = brisc::Width::Nib;  // rs1
  A.Widths[2] = brisc::Width::B1;   // imm
  P.Elems.push_back(A);
  brisc::SpecInstr Bm;
  Bm.Op = vm::VMOp::MOV;
  Bm.Widths[0] = brisc::Width::Nib;
  Bm.Widths[1] = brisc::Width::Nib;
  P.Elems.push_back(Bm);
  ASSERT_TRUE(P.wellFormed());

  vm::Instr Seq[2];
  Seq[0].Op = vm::VMOp::ADDI;
  Seq[0].Rd = vm::N3;
  Seq[0].Rs1 = vm::N4;
  Seq[0].Imm = -5;
  Seq[1].Op = vm::VMOp::MOV;
  Seq[1].Rd = vm::N0;
  Seq[1].Rs1 = vm::N3;
  ASSERT_TRUE(P.matches(Seq, 2));

  ByteWriter W;
  brisc::packOperands(P, Seq, W);
  EXPECT_EQ(W.size(), P.operandBytes());

  std::vector<vm::Instr> Out;
  size_t Used = brisc::unpackOperands(P, W.bytes().data(), W.size(), Out);
  EXPECT_EQ(Used, W.size());
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0], Seq[0]);
  EXPECT_EQ(Out[1], Seq[1]);
}

TEST(Brisc, LoaderRoundTripExecution) {
  vm::VMProgram P = buildProgram();
  vm::RunResult Orig = vm::runProgram(P);
  ASSERT_TRUE(Orig.Ok) << Orig.Trap;

  brisc::CompressStats Stats;
  brisc::BriscProgram B = brisc::compress(P, brisc::CompressOptions(),
                                          &Stats);
  vm::VMProgram Decoded = brisc::decodeToVM(B);
  vm::RunResult Back = vm::runProgram(Decoded);
  ASSERT_TRUE(Back.Ok) << Back.Trap;
  EXPECT_EQ(Back.ExitCode, Orig.ExitCode);
  EXPECT_EQ(Back.Output, Orig.Output);
  EXPECT_GT(Stats.DictPatterns,
            static_cast<size_t>(vm::VMOp::NumOps));
}

TEST(Brisc, ExactInstructionRoundTripWithoutEpi) {
  vm::VMProgram P = buildProgram();
  brisc::CompressOptions Opts;
  Opts.EnableEpi = false;
  brisc::BriscProgram B = brisc::compress(P, Opts);
  vm::VMProgram Decoded = brisc::decodeToVM(B);
  ASSERT_EQ(Decoded.Functions.size(), P.Functions.size());
  for (size_t I = 0; I != P.Functions.size(); ++I) {
    const vm::VMFunction &A = P.Functions[I];
    const vm::VMFunction &C = Decoded.Functions[I];
    ASSERT_EQ(A.Code.size(), C.Code.size()) << A.Name;
    for (size_t K = 0; K != A.Code.size(); ++K) {
      vm::Instr X = A.Code[K], Y = C.Code[K];
      // Branch targets use different label numbering; compare resolved
      // positions instead.
      if (vm::isBranch(X.Op)) {
        ASSERT_EQ(X.Op, Y.Op);
        EXPECT_EQ(A.LabelPos[X.Target], C.LabelPos[Y.Target])
            << A.Name << " instr " << K;
        X.Target = Y.Target = 0;
      }
      EXPECT_EQ(X, Y) << A.Name << " instr " << K;
    }
  }
}

TEST(Brisc, SerializeDeserializeExecutes) {
  vm::VMProgram P = buildProgram();
  brisc::BriscProgram B = brisc::compress(P);
  std::vector<uint8_t> Image = B.serialize(/*IncludeData=*/true);
  brisc::BriscProgram B2 = brisc::BriscProgram::deserialize(Image);
  vm::RunResult R1 = brisc::interpret(B);
  vm::RunResult R2 = brisc::interpret(B2);
  ASSERT_TRUE(R1.Ok) << R1.Trap;
  ASSERT_TRUE(R2.Ok) << R2.Trap;
  EXPECT_EQ(R1.ExitCode, R2.ExitCode);
  EXPECT_EQ(R1.Output, R2.Output);
}

TEST(Brisc, InterpreterMatchesVM) {
  vm::VMProgram P = buildProgram();
  vm::RunResult VM = vm::runProgram(P);
  ASSERT_TRUE(VM.Ok) << VM.Trap;
  brisc::BriscProgram B = brisc::compress(P);
  vm::RunResult BR = brisc::interpret(B);
  ASSERT_TRUE(BR.Ok) << BR.Trap;
  EXPECT_EQ(BR.ExitCode, VM.ExitCode);
  EXPECT_EQ(BR.Output, VM.Output);
}

TEST(Brisc, CompressionShrinksCode) {
  // Dictionary and Markov tables only amortize on realistically sized
  // inputs (the paper's own toy example ends with "the program, as
  // given, remains").
  vm::VMProgram P = buildVM(syntheticSource(60));
  size_t Native = vm::encodeProgram(P).size();
  brisc::BriscProgram B = brisc::compress(P);
  size_t Brisc = B.codeSegmentBytes();
  EXPECT_LT(Brisc, Native * 3 / 4);

  vm::RunResult VM = vm::runProgram(P);
  vm::RunResult BR = brisc::interpret(B);
  ASSERT_TRUE(VM.Ok);
  ASSERT_TRUE(BR.Ok) << BR.Trap;
  EXPECT_EQ(BR.ExitCode, VM.ExitCode);
}

TEST(Brisc, AbundantMemoryAdoptsMorePatterns) {
  vm::VMProgram P = buildVM(syntheticSource(60));
  brisc::CompressOptions Normal;
  brisc::CompressOptions Abundant;
  Abundant.AbundantMemory = true;
  brisc::CompressStats NS, AS;
  brisc::BriscProgram NB = brisc::compress(P, Normal, &NS);
  brisc::BriscProgram AB = brisc::compress(P, Abundant, &AS);
  // B = P removes the working-set brake: at least as many patterns are
  // adopted. File size may wobble either way (greedy estimates overlap),
  // but must stay in the same band, and execution must be identical.
  EXPECT_GE(AS.DictPatterns, NS.DictPatterns);
  EXPECT_LE(AS.TotalBytes, NS.TotalBytes + NS.TotalBytes / 8);
  vm::RunResult R1 = brisc::interpret(NB);
  vm::RunResult R2 = brisc::interpret(AB);
  ASSERT_TRUE(R1.Ok) << R1.Trap;
  ASSERT_TRUE(R2.Ok) << R2.Trap;
  EXPECT_EQ(R1.ExitCode, R2.ExitCode);
}

TEST(Brisc, AblationKnobsExecuteCorrectly) {
  vm::VMProgram P = buildProgram();
  vm::RunResult VM = vm::runProgram(P);
  for (int Mode = 0; Mode != 4; ++Mode) {
    brisc::CompressOptions Opts;
    Opts.EnableSpecialization = Mode & 1;
    Opts.EnableCombination = Mode & 2;
    brisc::BriscProgram B = brisc::compress(P, Opts);
    vm::RunResult R = brisc::interpret(B);
    ASSERT_TRUE(R.Ok) << "mode " << Mode << ": " << R.Trap;
    EXPECT_EQ(R.ExitCode, VM.ExitCode) << "mode " << Mode;
    EXPECT_EQ(R.Output, VM.Output) << "mode " << Mode;
  }
}

TEST(Brisc, DictionaryPatternsWellFormed) {
  vm::VMProgram P = buildProgram();
  brisc::BriscProgram B = brisc::compress(P);
  for (const brisc::Pattern &Pat : B.Pats)
    EXPECT_TRUE(Pat.wellFormed()) << Pat.str();
  // Successor tables must reference valid ids.
  for (const auto &L : B.Successors)
    for (uint32_t Id : L)
      EXPECT_LT(Id, B.Pats.size());
}

TEST(Brisc, TruncationAtEveryEighthYieldsTypedError) {
  vm::VMProgram P = buildProgram();
  brisc::BriscProgram B = brisc::compress(P);
  for (bool IncludeData : {true, false}) {
    std::vector<uint8_t> Img = B.serialize(IncludeData);
    ASSERT_GT(Img.size(), 8u);
    for (unsigned K = 0; K != 8; ++K) {
      std::vector<uint8_t> Cut(Img.begin(), Img.begin() + Img.size() * K / 8);
      Result<brisc::BriscProgram> R = brisc::BriscProgram::parse(Cut);
      EXPECT_FALSE(R.ok()) << "prefix " << K << "/8 parsed"
                           << (IncludeData ? " (with data)" : "");
      if (!R.ok())
        EXPECT_FALSE(R.error().message().empty());
    }
  }
}

TEST(Brisc, VMEncodingTruncationYieldsTypedError) {
  vm::VMProgram P = buildProgram();
  const vm::VMFunction &F = P.Functions.front();
  std::vector<uint8_t> Fixed = vm::encodeFunction(F);
  std::vector<uint8_t> Compact = vm::encodeFunctionCompact(F);
  for (unsigned K = 1; K != 8; ++K) {
    // Fixed-width decode requires whole 4-byte words; chop mid-word.
    std::vector<uint8_t> CutF(Fixed.begin(),
                              Fixed.begin() + Fixed.size() * K / 8 + 1);
    if (CutF.size() % 4 == 0)
      CutF.pop_back();
    EXPECT_FALSE(vm::tryDecodeFunction(CutF).ok()) << "fixed " << K << "/8";
    // The compact stream is self-delimiting with no instruction count,
    // so a cut on an instruction boundary legitimately decodes to a
    // shorter function; anything else must be a typed error, and a
    // clean decode must be a strict prefix of the original.
    std::vector<uint8_t> CutC(Compact.begin(),
                              Compact.begin() + Compact.size() * K / 8);
    Result<std::vector<vm::Instr>> RC = vm::tryDecodeFunctionCompact(CutC);
    if (RC.ok()) {
      ASSERT_LT(RC.value().size(), F.Code.size()) << "compact " << K << "/8";
      for (size_t I = 0; I != RC.value().size(); ++I)
        EXPECT_EQ(RC.value()[I], F.Code[I]) << "compact " << K << "/8";
    }
  }
}

TEST(Brisc, DetunedProgramsCompressAndRun) {
  codegen::Options NoBoth;
  NoBoth.NoImmediates = true;
  NoBoth.NoRegDisp = true;
  vm::VMProgram P = buildVM(Program, NoBoth);
  vm::RunResult VM = vm::runProgram(P);
  ASSERT_TRUE(VM.Ok) << VM.Trap;
  brisc::BriscProgram B = brisc::compress(P);
  vm::RunResult R = brisc::interpret(B);
  ASSERT_TRUE(R.Ok) << R.Trap;
  EXPECT_EQ(R.ExitCode, VM.ExitCode);
}

TEST(Brisc, WorkingSetSmallerThanNative) {
  vm::VMProgram P = buildProgram();
  vm::CodeLayout NL = vm::nativeLayout(P);
  vm::RunOptions NOpts;
  NOpts.Layout = &NL;
  NOpts.PageSize = 256; // Small pages make the tiny test meaningful.
  vm::RunResult NR = vm::runProgram(P, NOpts);
  ASSERT_TRUE(NR.Ok);

  brisc::BriscProgram B = brisc::compress(P);
  vm::RunOptions BOpts;
  BOpts.PageSize = 256;
  vm::RunResult BR = brisc::interpret(B, BOpts);
  ASSERT_TRUE(BR.Ok);
  EXPECT_GT(NR.PagesTouched, 0u);
  EXPECT_GT(BR.PagesTouched, 0u);
}

//===- tests/test_vm.cpp - VM ISA, encodings, assembler, machine --------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/Asm.h"
#include "vm/Encode.h"
#include "vm/ISA.h"
#include "vm/Machine.h"
#include "support/PRNG.h"

#include "gtest/gtest.h"

using namespace ccomp;
using namespace ccomp::vm;

namespace {

/// Builds a random-but-valid instruction of opcode \p Op.
Instr randomInstr(VMOp Op, PRNG &Rng, unsigned NumLabels,
                  unsigned NumFuncs) {
  Instr In;
  In.Op = Op;
  unsigned NF = numFields(Op);
  const FieldKind *FK = fieldKinds(Op);
  for (unsigned F = 0; F != NF; ++F) {
    switch (FK[F]) {
    case FieldKind::Reg:
      setField(In, F, Rng.below(16));
      break;
    case FieldKind::Imm: {
      // Mixed magnitudes, including the int16 boundary cases.
      static const int64_t Interesting[] = {0, 1, -1, 4, 127, -128,
                                            32767, -32767, -32768,
                                            65536, -400000, INT32_MAX,
                                            INT32_MIN};
      if (Rng.chance(1, 2))
        setField(In, F, Interesting[Rng.below(13)]);
      else
        setField(In, F, static_cast<int32_t>(Rng.next()));
      break;
    }
    case FieldKind::Label:
      setField(In, F, Rng.below(NumLabels));
      break;
    case FieldKind::Func:
      setField(In, F, Rng.below(NumFuncs));
      break;
    case FieldKind::None:
      break;
    }
  }
  return In;
}

} // namespace

//===----------------------------------------------------------------------===//
// Field descriptors
//===----------------------------------------------------------------------===//

TEST(ISA, FieldAccessorsRoundTrip) {
  PRNG Rng(17);
  for (unsigned OpI = 0; OpI != unsigned(VMOp::NumOps); ++OpI) {
    VMOp Op = static_cast<VMOp>(OpI);
    unsigned NF = numFields(Op);
    for (int Trial = 0; Trial != 20; ++Trial) {
      Instr In;
      In.Op = Op;
      std::vector<int64_t> Vals;
      const FieldKind *FK = fieldKinds(Op);
      for (unsigned F = 0; F != NF; ++F) {
        int64_t V = FK[F] == FieldKind::Reg
                        ? static_cast<int64_t>(Rng.below(16))
                        : static_cast<int64_t>(Rng.below(30000));
        Vals.push_back(V);
        setField(In, F, V);
      }
      for (unsigned F = 0; F != NF; ++F)
        EXPECT_EQ(getField(In, F), Vals[F])
            << opMnemonic(Op) << " field " << F;
    }
  }
}

TEST(ISA, BranchFieldsUseRs1Rs2) {
  Instr In;
  In.Op = VMOp::BLEI;
  setField(In, 0, N4);
  setField(In, 1, 0);
  setField(In, 2, 5);
  EXPECT_EQ(In.Rs1, N4);
  EXPECT_EQ(In.Imm, 0);
  EXPECT_EQ(In.Target, 5u);
  EXPECT_EQ(In.Rd, 0); // Branches have no destination register.
}

TEST(ISA, EveryOpcodeHasMnemonicAndFields) {
  for (unsigned OpI = 0; OpI != unsigned(VMOp::NumOps); ++OpI) {
    VMOp Op = static_cast<VMOp>(OpI);
    EXPECT_NE(opMnemonic(Op), nullptr);
    EXPECT_LE(numFields(Op), MaxFields);
  }
}

//===----------------------------------------------------------------------===//
// Encodings
//===----------------------------------------------------------------------===//

TEST(Encode, FixedWidthRoundTripAllOpcodes) {
  PRNG Rng(23);
  VMFunction F;
  F.Name = "t";
  for (unsigned OpI = 0; OpI != unsigned(VMOp::NumOps); ++OpI)
    for (int Trial = 0; Trial != 40; ++Trial)
      F.Code.push_back(
          randomInstr(static_cast<VMOp>(OpI), Rng, 1000, 1000));
  std::vector<uint8_t> Bytes = encodeFunction(F);
  std::vector<Instr> Back = decodeFunction(Bytes);
  ASSERT_EQ(Back.size(), F.Code.size());
  for (size_t I = 0; I != Back.size(); ++I)
    EXPECT_EQ(Back[I], F.Code[I]) << "instr " << I << " "
                                  << printInstr(F.Code[I]);
}

TEST(Encode, CompactRoundTripAllOpcodes) {
  PRNG Rng(29);
  VMFunction F;
  F.Name = "t";
  for (unsigned OpI = 0; OpI != unsigned(VMOp::NumOps); ++OpI)
    for (int Trial = 0; Trial != 40; ++Trial)
      F.Code.push_back(
          randomInstr(static_cast<VMOp>(OpI), Rng, 1000, 1000));
  std::vector<uint8_t> Bytes = encodeFunctionCompact(F);
  std::vector<Instr> Back = decodeFunctionCompact(Bytes);
  ASSERT_EQ(Back.size(), F.Code.size());
  for (size_t I = 0; I != Back.size(); ++I)
    EXPECT_EQ(Back[I], F.Code[I]) << "instr " << I;
}

TEST(Encode, SizesMatchEncodings) {
  PRNG Rng(31);
  for (unsigned OpI = 0; OpI != unsigned(VMOp::NumOps); ++OpI) {
    for (int Trial = 0; Trial != 20; ++Trial) {
      VMFunction F;
      F.Code.push_back(
          randomInstr(static_cast<VMOp>(OpI), Rng, 100, 100));
      EXPECT_EQ(encodeFunction(F).size(), encodedSize(F.Code[0]));
      EXPECT_EQ(encodeFunctionCompact(F).size(),
                encodedSizeCompact(F.Code[0]));
    }
  }
}

TEST(Encode, CompactDenserThanFixedOnTypicalCode) {
  // Typical code: small immediates, frequent loads/stores.
  VMFunction F;
  PRNG Rng(37);
  for (int I = 0; I != 1000; ++I) {
    Instr In;
    In.Op = Rng.chance(1, 2) ? VMOp::LD_W : VMOp::ADDI;
    In.Rd = static_cast<uint8_t>(Rng.below(16));
    In.Rs1 = SP;
    In.Imm = static_cast<int32_t>(4 * Rng.below(16));
    F.Code.push_back(In);
  }
  EXPECT_LT(encodeFunctionCompact(F).size(), encodeFunction(F).size());
}

//===----------------------------------------------------------------------===//
// Assembler
//===----------------------------------------------------------------------===//

TEST(Asm, PaperExampleRoundTrip) {
  // The paper's compiled salt() (section 4), verbatim shape.
  const char *Text = R"(
func salt frame 24
  enter sp,sp,24
  spill.i n4,16(sp)
  spill.i ra,20(sp)
  mov.i n4,n0
  mov.i n2,n1
  ble.i n4,0,$L56
  mov.i n1,n4
  mov.i n0,n2
  call pepper
$L56:
  add.i n0,n4,-1
  reload.i n4,16(sp)
  reload.i ra,20(sp)
  exit sp,sp,24
  rjr ra
endfunc
func pepper frame 0
  li n0,0
  rjr ra
endfunc
entry salt
)";
  VMProgram P;
  std::string Error;
  ASSERT_TRUE(parseProgram(Text, P, Error)) << Error;
  ASSERT_EQ(P.Functions.size(), 2u);
  const VMFunction &Salt = P.Functions[0];
  EXPECT_EQ(Salt.Code.size(), 14u);
  EXPECT_EQ(Salt.Code[0].Op, VMOp::ENTER);
  EXPECT_EQ(Salt.Code[0].Imm, 24);
  EXPECT_EQ(Salt.Code[5].Op, VMOp::BLEI); // ble.i with imm comparand.
  EXPECT_EQ(Salt.Code[5].Imm, 0);
  EXPECT_EQ(Salt.Code[8].Op, VMOp::CALL);
  EXPECT_EQ(Salt.Code[8].Target, 1u);

  // Print -> parse -> print is stable.
  std::string Printed = printProgram(P);
  VMProgram P2;
  ASSERT_TRUE(parseProgram(Printed, P2, Error)) << Error;
  EXPECT_EQ(printProgram(P2), Printed);
}

TEST(Asm, ImmediateBranchMnemonicSelection) {
  VMProgram P;
  std::string Error;
  ASSERT_TRUE(parseProgram("func f frame 0\n"
                           "$top:\n"
                           "  beq.i n0,n1,$top\n"
                           "  beq.i n0,7,$top\n"
                           "  rjr ra\n"
                           "endfunc\nentry f\n",
                           P, Error))
      << Error;
  EXPECT_EQ(P.Functions[0].Code[0].Op, VMOp::BEQ);
  EXPECT_EQ(P.Functions[0].Code[1].Op, VMOp::BEQI);
  EXPECT_EQ(P.Functions[0].Code[1].Imm, 7);
}

TEST(Asm, ErrorsAreReported) {
  VMProgram P;
  std::string Error;
  EXPECT_FALSE(parseProgram("func f frame 0\n  bogus.op n0\nendfunc\n",
                            P, Error));
  EXPECT_FALSE(Error.empty());
  Error.clear();
  EXPECT_FALSE(parseProgram("func f frame 0\n  jmp $missing\nendfunc\n",
                            P, Error));
  EXPECT_FALSE(Error.empty());
  Error.clear();
  EXPECT_FALSE(parseProgram("func f frame 0\n  call nowhere\n"
                            "  rjr ra\nendfunc\n",
                            P, Error));
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Machine semantics (assembly-level)
//===----------------------------------------------------------------------===//

namespace {

RunResult runAsm(const std::string &Text) {
  VMProgram P;
  std::string Error;
  EXPECT_TRUE(parseProgram(Text, P, Error)) << Error;
  return runProgram(P);
}

} // namespace

TEST(Machine, ArithmeticSemantics) {
  RunResult R = runAsm(R"(
func main frame 0
  li n0,7
  li n1,-3
  mul.i n2,n0,n1
  addi.i n2,n2,1
  neg.i n2,n2
  sys 1
  mov.i n0,n2
  rjr ra
endfunc
entry main
)");
  // n2 = -(7 * -3 + 1) = 20... but sys 1 prints n0 (7).
  ASSERT_TRUE(R.Ok) << R.Trap;
  EXPECT_EQ(R.Output, "7");
  EXPECT_EQ(R.ExitCode, 20);
}

TEST(Machine, DivisionTrapsOnZero) {
  RunResult R = runAsm(R"(
func main frame 0
  li n0,1
  li n1,0
  div.i n2,n0,n1
  rjr ra
endfunc
entry main
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Trap.find("division"), std::string::npos);
}

TEST(Machine, DivisionTrapsOnIntMinOverflow) {
  RunResult R = runAsm(R"(
func main frame 0
  li n0,-2147483648
  li n1,-1
  div.i n2,n0,n1
  rjr ra
endfunc
entry main
)");
  EXPECT_FALSE(R.Ok);
}

TEST(Machine, ZeroRegisterReadsZero) {
  RunResult R = runAsm(R"(
func main frame 0
  li zr,123
  mov.i n0,zr
  rjr ra
endfunc
entry main
)");
  ASSERT_TRUE(R.Ok) << R.Trap;
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Machine, MemoryBoundsTrap) {
  RunResult R = runAsm(R"(
func main frame 0
  li n1,8
  ld.iw n0,0(n1)
  rjr ra
endfunc
entry main
)");
  EXPECT_FALSE(R.Ok); // Address 8 is in the guard region.
}

TEST(Machine, McpyAndMsetSemantics) {
  RunResult R = runAsm(R"(
global buf size 64 init -
func main frame 0
  li n0,&buf
  li n1,65
  mset n0,n1,8
  li n2,&buf
  addi.i n2,n2,32
  mcpy n2,n0,8
  ld.ibu n0,0(n2)
  rjr ra
endfunc
entry main
)");
  ASSERT_TRUE(R.Ok) << R.Trap;
  EXPECT_EQ(R.ExitCode, 65);
}

TEST(Machine, SubWordLoadsExtendCorrectly) {
  RunResult R = runAsm(R"(
global bytes size 4 init f0ff0000
func main frame 0
  li n1,&bytes
  ld.ib n2,0(n1)
  ld.ibu n3,0(n1)
  ld.ih n4,0(n1)
  ld.ihu n5,0(n1)
  add.i n0,n2,n3
  add.i n0,n0,n4
  add.i n0,n0,n5
  rjr ra
endfunc
entry main
)");
  ASSERT_TRUE(R.Ok) << R.Trap;
  // -16 + 240 + -16 + 65520 = 65728; exit truncates to int32 then the
  // harness returns it unchanged.
  EXPECT_EQ(R.ExitCode, 65728);
}

TEST(Machine, EpiRestoresAndReturns) {
  RunResult R = runAsm(R"(
func helper frame 16
  enter sp,sp,16
  spill.i n4,0(sp)
  spill.i n5,4(sp)
  li n4,1
  li n5,2
  li n0,42
  epi
endfunc
func main frame 8
  enter sp,sp,8
  spill.i ra,0(sp)
  li n4,100
  li n5,200
  call helper
  add.i n0,n0,n4
  add.i n0,n0,n5
  reload.i ra,0(sp)
  exit sp,sp,8
  rjr ra
endfunc
entry main
)");
  ASSERT_TRUE(R.Ok) << R.Trap;
  // helper's epi restores n4/n5 to 100/200: 42 + 100 + 200 = 342.
  EXPECT_EQ(R.ExitCode, 342);
}

TEST(Machine, StepLimitTrapsInfiniteLoop) {
  VMProgram P;
  std::string Error;
  ASSERT_TRUE(parseProgram("func main frame 0\n$top:\n  jmp $top\n"
                           "endfunc\nentry main\n",
                           P, Error));
  RunOptions Opts;
  Opts.MaxSteps = 10000;
  RunResult R = runProgram(P, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Trap.find("step limit"), std::string::npos);
}

TEST(Machine, ShiftsMaskTo5Bits) {
  RunResult R = runAsm(R"(
func main frame 0
  li n0,1
  li n1,33
  sll.i n0,n0,n1
  rjr ra
endfunc
entry main
)");
  ASSERT_TRUE(R.Ok) << R.Trap;
  EXPECT_EQ(R.ExitCode, 2); // 33 & 31 == 1.
}

TEST(Machine, UnsignedComparisons) {
  RunResult R = runAsm(R"(
func main frame 0
  li n1,-1
  li n2,1
  li n0,0
  blt.u n1,n2,$less
  li n0,1
$less:
  rjr ra
endfunc
entry main
)");
  ASSERT_TRUE(R.Ok) << R.Trap;
  EXPECT_EQ(R.ExitCode, 1); // 0xFFFFFFFF is not < 1 unsigned.
}

TEST(Machine, ProgramVerifyCatchesBadTargets) {
  VMFunction F;
  F.Name = "f";
  Instr In;
  In.Op = VMOp::JMP;
  In.Target = 7; // No such label.
  F.Code.push_back(In);
  VMProgram P;
  P.Functions.push_back(F);
  EXPECT_FALSE(verify(P).empty());
}

TEST(Machine, DeriveMetaFindsPrologue) {
  VMProgram P;
  std::string Error;
  ASSERT_TRUE(parseProgram(R"(
func f frame 24
  enter sp,sp,24
  spill.i n4,8(sp)
  spill.i ra,12(sp)
  li n0,0
  rjr ra
endfunc
entry f
)",
                           P, Error))
      << Error;
  FuncMeta M = deriveMeta(P.Functions[0]);
  EXPECT_EQ(M.FrameSize, 24u);
  ASSERT_EQ(M.Saves.size(), 2u);
  EXPECT_EQ(M.Saves[0].Reg, N4);
  EXPECT_EQ(M.Saves[1].Reg, RA);
}

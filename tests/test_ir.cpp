//===- tests/test_ir.cpp - Tree IR, text form, linker --------------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Link.h"
#include "ir/Text.h"

using namespace ccomp;
using namespace ccomp::ir;
using namespace ccomp::test;

TEST(IR, OpcodeTables) {
  for (unsigned I = 0; I != unsigned(Op::NumOps); ++I) {
    Op O = static_cast<Op>(I);
    EXPECT_NE(opName(O), nullptr);
    EXPECT_LE(numKids(O), 2u);
    if (hasLiteral(O))
      EXPECT_NE(litClass(O), LitClass::None);
  }
  EXPECT_EQ(litClass(Op::CNST), LitClass::Const);
  EXPECT_EQ(litClass(Op::ADDRL), LitClass::Local);
  EXPECT_EQ(litClass(Op::ADDRG), LitClass::Global);
  EXPECT_EQ(litClass(Op::JUMP), LitClass::Label);
  EXPECT_EQ(litClass(Op::ADD), LitClass::None);
}

TEST(IR, PaperTreeNotation) {
  // Build ASGNI(ADDRLP8[72], SUBI(INDIRI(ADDRLP8[72]),CNSTI8[1])) and
  // check it prints exactly as in the paper (modulo our CNSTI8 spelling
  // of width-flagged constants).
  Module M;
  Function *F = M.addFunction("f");
  Tree *Addr1 = F->newTree(Op::ADDRL, TypeSuffix::P, 72);
  Tree *Load = F->newTree(Op::INDIR, TypeSuffix::I, 0, Addr1);
  Tree *One = F->newTree(Op::CNST, TypeSuffix::I, 1);
  Tree *Sub = F->newTree(Op::SUB, TypeSuffix::I, 0, Load, One);
  Tree *Addr2 = F->newTree(Op::ADDRL, TypeSuffix::P, 72);
  Tree *Asgn = F->newTree(Op::ASGN, TypeSuffix::I, 0, Addr2, Sub);
  EXPECT_EQ(printTree(M, Asgn),
            "ASGNI(ADDRLP8[72],SUBI(INDIRI(ADDRLP8[72]),CNSTI8[1]))");
}

TEST(IR, WidthFlagsFollowLiteralMagnitude) {
  Module M;
  Function *F = M.addFunction("f");
  EXPECT_EQ(printTree(M, F->newTree(Op::CNST, TypeSuffix::I, 5)),
            "CNSTI8[5]");
  EXPECT_EQ(printTree(M, F->newTree(Op::CNST, TypeSuffix::I, 300)),
            "CNSTI16[300]");
  EXPECT_EQ(printTree(M, F->newTree(Op::CNST, TypeSuffix::I, 100000)),
            "CNSTI[100000]");
  EXPECT_EQ(printTree(M, F->newTree(Op::CNST, TypeSuffix::I, -128)),
            "CNSTI8[-128]");
}

TEST(IR, VerifyCatchesBadKidCounts) {
  Module M;
  Function *F = M.addFunction("f");
  Tree *Bad = F->newTree(Op::ADD, TypeSuffix::I, 0,
                         F->newTree(Op::CNST, TypeSuffix::I, 1));
  F->Forest.push_back(Bad);
  EXPECT_FALSE(verify(M).empty());
}

TEST(IR, VerifyCatchesBadLabels) {
  Module M;
  Function *F = M.addFunction("f");
  F->NumLabels = 2;
  F->Forest.push_back(F->newTree(Op::JUMP, TypeSuffix::V, 7));
  EXPECT_FALSE(verify(M).empty());
}

TEST(IR, VerifyCatchesBadSymbols) {
  Module M;
  Function *F = M.addFunction("f");
  F->Forest.push_back(F->newTree(Op::ADDRG, TypeSuffix::P, 99));
  EXPECT_FALSE(verify(M).empty());
}

TEST(IR, CountNodes) {
  std::unique_ptr<Module> M =
      compileC("int main(void) { return 1 + 2 + 3; }");
  ASSERT_TRUE(M);
  EXPECT_GT(countNodes(*M), 0u);
}

TEST(IRText, ParserRejectsGarbage) {
  std::string Error;
  EXPECT_EQ(parseModule("not a module", Error), nullptr);
  EXPECT_FALSE(Error.empty());
  Error.clear();
  EXPECT_EQ(parseModule("module\nfunc f frame 0 params 0 labels 0 slots\n"
                        "  BOGUS[1]\nendfunc\nendmodule\n",
                        Error),
            nullptr);
  EXPECT_FALSE(Error.empty());
}

TEST(IRText, SymbolsAndGlobalsRoundTrip) {
  std::unique_ptr<Module> M = compileC(
      "int g = 77;\nchar msg[] = \"hi\";\n"
      "int f(int a) { return a + g + msg[0]; }\n"
      "int main(void) { return f(1); }");
  ASSERT_TRUE(M);
  std::string T = printModule(*M);
  std::string Error;
  std::unique_ptr<Module> M2 = parseModule(T, Error);
  ASSERT_TRUE(M2) << Error;
  EXPECT_EQ(M2->Symbols.size(), M->Symbols.size());
  EXPECT_EQ(M2->Globals.size(), M->Globals.size());
  EXPECT_EQ(M2->Globals[0].Init, M->Globals[0].Init);
  EXPECT_EQ(printModule(*M2), T);
}

//===----------------------------------------------------------------------===//
// Linker
//===----------------------------------------------------------------------===//

TEST(Link, TwoUnitsRunTogether) {
  std::vector<std::unique_ptr<Module>> Units;
  Units.push_back(compileC("int g = 1;\n"
                           "int main(void) { print_str(\"A\"); "
                           "return g + 9; }"));
  Units.push_back(compileC("int g = 2;\n" // Same name, different unit.
                           "int main(void) { print_str(\"B\"); "
                           "return g + 20; }"));
  ASSERT_TRUE(Units[0] && Units[1]);
  std::unique_ptr<Module> Linked = linkModules(std::move(Units));
  codegen::Result CG = codegen::generate(*Linked);
  ASSERT_TRUE(CG.ok()) << CG.Error;
  vm::RunResult R = vm::runProgram(CG.P);
  ASSERT_TRUE(R.Ok) << R.Trap;
  EXPECT_EQ(R.Output, "AB");
  EXPECT_EQ(R.ExitCode, (10 + 22) & 255);
}

TEST(Link, RuntimeSymbolsStayShared) {
  std::vector<std::unique_ptr<Module>> Units;
  Units.push_back(compileC("int main(void) { print_int(1); return 0; }"));
  Units.push_back(compileC("int main(void) { print_int(2); return 0; }"));
  std::unique_ptr<Module> Linked = linkModules(std::move(Units));
  // Exactly one print_int symbol must remain.
  unsigned Count = 0;
  for (const Symbol &S : Linked->Symbols)
    if (S.Name == "print_int")
      ++Count;
  EXPECT_EQ(Count, 1u);
  codegen::Result CG = codegen::generate(*Linked);
  ASSERT_TRUE(CG.ok()) << CG.Error;
  vm::RunResult R = vm::runProgram(CG.P);
  EXPECT_EQ(R.Output, "12");
}

TEST(Link, LinkedSuiteTextRoundTrips) {
  std::vector<std::unique_ptr<Module>> Units;
  Units.push_back(compileC("int main(void) { return 1; }"));
  Units.push_back(
      compileC("int sq(int x) { return x * x; }\n"
               "int main(void) { return sq(3); }"));
  std::unique_ptr<Module> Linked = linkModules(std::move(Units));
  std::string T = printModule(*Linked);
  std::string Error;
  std::unique_ptr<Module> Back = parseModule(T, Error);
  ASSERT_TRUE(Back) << Error;
  EXPECT_EQ(printModule(*Back), T);
}

//===- tests/test_minic.cpp - Front-end unit tests -----------------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "minic/Lexer.h"

using namespace ccomp;
using namespace ccomp::minic;
using namespace ccomp::test;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, TokenSequence) {
  Lexer L("int x = 42; /* c */ x += 0x1F; // line\n\"s\\n\" 'a' '\\n'");
  EXPECT_EQ(L.kind(), Tok::KwInt);
  L.next();
  EXPECT_EQ(L.kind(), Tok::Ident);
  EXPECT_EQ(L.text(), "x");
  L.next();
  EXPECT_EQ(L.kind(), Tok::Assign);
  L.next();
  EXPECT_EQ(L.kind(), Tok::IntConst);
  EXPECT_EQ(L.intValue(), 42);
  L.next();
  EXPECT_EQ(L.kind(), Tok::Semi);
  L.next();
  EXPECT_EQ(L.kind(), Tok::Ident);
  L.next();
  EXPECT_EQ(L.kind(), Tok::PlusAssign);
  L.next();
  EXPECT_EQ(L.intValue(), 0x1F);
  L.next();
  EXPECT_EQ(L.kind(), Tok::Semi);
  L.next();
  EXPECT_EQ(L.kind(), Tok::StrConst);
  EXPECT_EQ(L.strValue(), "s\n");
  L.next();
  EXPECT_EQ(L.intValue(), 'a');
  L.next();
  EXPECT_EQ(L.intValue(), '\n');
  L.next();
  EXPECT_EQ(L.kind(), Tok::End);
}

TEST(Lexer, AdjacentStringsConcatenate) {
  Lexer L("\"ab\" \"cd\" \"ef\"");
  EXPECT_EQ(L.kind(), Tok::StrConst);
  EXPECT_EQ(L.strValue(), "abcdef");
  L.next();
  EXPECT_EQ(L.kind(), Tok::End);
}

TEST(Lexer, ThreeCharOperators) {
  Lexer L("a <<= 1; b >>= 2;");
  L.next(); // a -> <<=
  EXPECT_EQ(L.kind(), Tok::ShlAssign);
  L.next(); // 1
  L.next(); // ;
  L.next(); // b
  L.next(); // >>=
  EXPECT_EQ(L.kind(), Tok::ShrAssign);
}

TEST(Lexer, SaveRestore) {
  Lexer L("a b c");
  Lexer::State S = L.save();
  L.next();
  L.next();
  EXPECT_EQ(L.text(), "c");
  L.restore(S);
  EXPECT_EQ(L.text(), "a");
}

//===----------------------------------------------------------------------===//
// Diagnostics: bad programs are rejected with a line-numbered message.
//===----------------------------------------------------------------------===//

namespace {

std::string errorOf(const std::string &Src) {
  minic::CompileResult R = minic::compile(Src);
  EXPECT_FALSE(R.ok()) << "expected a compile error";
  return R.Error;
}

} // namespace

TEST(Diagnostics, UndeclaredIdentifier) {
  std::string E = errorOf("int main(void) { return nope; }");
  EXPECT_NE(E.find("undeclared"), std::string::npos);
  EXPECT_NE(E.find("line 1"), std::string::npos);
}

TEST(Diagnostics, AssignToRValue) {
  EXPECT_NE(errorOf("int main(void) { 1 = 2; return 0; }")
                .find("lvalue"),
            std::string::npos);
}

TEST(Diagnostics, BreakOutsideLoop) {
  EXPECT_NE(errorOf("int main(void) { break; }").find("break"),
            std::string::npos);
}

TEST(Diagnostics, CaseOutsideSwitch) {
  EXPECT_NE(errorOf("int main(void) { case 1: return 0; }").find("case"),
            std::string::npos);
}

TEST(Diagnostics, UndefinedGotoLabel) {
  EXPECT_NE(errorOf("int main(void) { goto nowhere; }").find("nowhere"),
            std::string::npos);
}

TEST(Diagnostics, UnknownStructMember) {
  EXPECT_NE(errorOf("struct S { int a; };\n"
                    "int main(void) { struct S s; return s.b; }")
                .find("member"),
            std::string::npos);
}

TEST(Diagnostics, StructParameterRejected) {
  EXPECT_NE(errorOf("struct S { int a; };\n"
                    "int f(struct S s) { return 0; }\n"
                    "int main(void) { return 0; }")
                .find("struct parameters"),
            std::string::npos);
}

TEST(Diagnostics, VoidValueUse) {
  EXPECT_FALSE(
      minic::compile("void f(void) {}\n"
                     "int main(void) { return f() + 1; }")
          .ok());
}

TEST(Diagnostics, DerefNonPointer) {
  EXPECT_NE(errorOf("int main(void) { int x; return *x; }")
                .find("pointer"),
            std::string::npos);
}

TEST(Diagnostics, ReturnValueFromVoid) {
  EXPECT_FALSE(minic::compile("void f(void) { return 3; }\n"
                              "int main(void) { return 0; }")
                   .ok());
}

//===----------------------------------------------------------------------===//
// Semantics through execution
//===----------------------------------------------------------------------===//

TEST(Semantics, OperatorPrecedence) {
  vm::RunResult R = runC(
      "int main(void) {\n"
      "  if (2 + 3 * 4 != 14) return 1;\n"
      "  if ((2 + 3) * 4 != 20) return 2;\n"
      "  if (10 - 4 - 3 != 3) return 3;\n"       // Left assoc.
      "  if (1 << 2 + 1 != 8) return 4;\n"       // Shift below add.
      "  if ((7 & 3 | 4) != 7) return 5;\n"
      "  if ((1 | 2 ^ 2) != 1) return 6;\n"
      "  if (-2 * -3 != 6) return 7;\n"
      "  if (~0 != -1) return 8;\n"
      "  if (!(0) != 1) return 9;\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Semantics, SignedDivisionTruncatesTowardZero) {
  vm::RunResult R = runC("int main(void) {\n"
                         "  if (-7 / 2 != -3) return 1;\n"
                         "  if (-7 % 2 != -1) return 2;\n"
                         "  if (7 / -2 != -3) return 3;\n"
                         "  if (7 % -2 != 1) return 4;\n"
                         "  return 0;\n"
                         "}");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Semantics, IntegerOverflowWraps) {
  vm::RunResult R = runC(
      "int main(void) {\n"
      "  int big = 2147483647;\n"
      "  big = big + 1;\n"
      "  if (big != -2147483648) return 1;\n"
      "  unsigned u = 0;\n"
      "  u = u - 1;\n"
      "  if (u != 0xffffffffu) return 2;\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Semantics, CharSignedness) {
  vm::RunResult R = runC("int main(void) {\n"
                         "  char c = -1;\n"
                         "  unsigned char u = -1;\n"
                         "  if (c != -1) return 1;\n"
                         "  if (u != 255) return 2;\n"
                         "  if ((c & 0xff) != 255) return 3;\n"
                         "  return 0;\n"
                         "}");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Semantics, PostAndPreIncrementValues) {
  vm::RunResult R = runC("int main(void) {\n"
                         "  int i = 5;\n"
                         "  if (i++ != 5) return 1;\n"
                         "  if (i != 6) return 2;\n"
                         "  if (++i != 7) return 3;\n"
                         "  int a[3];\n"
                         "  a[0] = 10; a[1] = 20; a[2] = 30;\n"
                         "  int *p = a;\n"
                         "  if (*p++ != 10) return 4;\n"
                         "  if (*p != 20) return 5;\n"
                         "  if (*++p != 30) return 6;\n"
                         "  return 0;\n"
                         "}");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Semantics, SideEffectsInIndicesHappenOnce) {
  vm::RunResult R = runC("int a[8];\n"
                         "int idx;\n"
                         "int next(void) { return idx++; }\n"
                         "int main(void) {\n"
                         "  a[next()] += 5;\n" // Index computed once.
                         "  if (idx != 1) return 1;\n"
                         "  if (a[0] != 5) return 2;\n"
                         "  return 0;\n"
                         "}");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Semantics, NestedCalls) {
  vm::RunResult R = runC(
      "int add(int a, int b) { return a + b; }\n"
      "int twice(int x) { return x * 2; }\n"
      "int main(void) { return add(twice(add(1, 2)), twice(3)); }");
  EXPECT_EQ(R.ExitCode, 12);
}

TEST(Semantics, ConditionalEvaluatesOneArm) {
  vm::RunResult R = runC("int calls;\n"
                         "int bump(int v) { calls++; return v; }\n"
                         "int main(void) {\n"
                         "  int x = 1 ? bump(10) : bump(20);\n"
                         "  if (x != 10) return 1;\n"
                         "  if (calls != 1) return 2;\n"
                         "  return 0;\n"
                         "}");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Semantics, SizeofValues) {
  vm::RunResult R = runC(
      "struct P { char c; int x; short s; };\n"
      "int main(void) {\n"
      "  if (sizeof(char) != 1) return 1;\n"
      "  if (sizeof(short) != 2) return 2;\n"
      "  if (sizeof(int) != 4) return 3;\n"
      "  if (sizeof(int *) != 4) return 4;\n"
      "  if (sizeof(struct P) != 12) return 5;\n"
      "  int a[10];\n"
      "  if (sizeof a != 40) return 6;\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Semantics, GlobalInitializers) {
  vm::RunResult R = runC(
      "int a = 5 * 4 + 2;\n"
      "int b[4] = {1, 2, 3, 4};\n"
      "char s[] = \"xyz\";\n"
      "short h = -7;\n"
      "unsigned char uc = 200;\n"
      "enum { K = 11 };\n"
      "int k = K + 1;\n"
      "int main(void) {\n"
      "  if (a != 22) return 1;\n"
      "  if (b[0] + b[3] != 5) return 2;\n"
      "  if (s[2] != 'z' || s[3] != 0) return 3;\n"
      "  if (h != -7) return 4;\n"
      "  if (uc != 200) return 5;\n"
      "  if (k != 12) return 6;\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Semantics, WhileWithAssignCondition) {
  vm::RunResult R = runC("char src[] = \"count\";\n"
                         "int main(void) {\n"
                         "  char *p = src;\n"
                         "  int n = 0;\n"
                         "  char c;\n"
                         "  while ((c = *p++)) n++;\n"
                         "  return n;\n"
                         "}");
  EXPECT_EQ(R.ExitCode, 5);
}

TEST(Semantics, MultiDimensionalArrays) {
  vm::RunResult R = runC("int g[3][4];\n"
                         "int main(void) {\n"
                         "  int i, j;\n"
                         "  for (i = 0; i < 3; i++)\n"
                         "    for (j = 0; j < 4; j++)\n"
                         "      g[i][j] = i * 10 + j;\n"
                         "  return g[2][3];\n"
                         "}");
  EXPECT_EQ(R.ExitCode, 23);
}

TEST(Semantics, DoWhileRunsOnce) {
  vm::RunResult R = runC("int main(void) {\n"
                         "  int n = 0;\n"
                         "  do { n++; } while (0);\n"
                         "  return n;\n"
                         "}");
  EXPECT_EQ(R.ExitCode, 1);
}

TEST(Semantics, ContinueInLoops) {
  vm::RunResult R = runC("int main(void) {\n"
                         "  int i, s = 0;\n"
                         "  for (i = 0; i < 10; i++) {\n"
                         "    if (i % 2) continue;\n"
                         "    s += i;\n"
                         "  }\n"
                         "  return s;\n" // 0+2+4+6+8.
                         "}");
  EXPECT_EQ(R.ExitCode, 20);
}

TEST(Semantics, ComplexConditions) {
  vm::RunResult R = runC(
      "int main(void) {\n"
      "  int a = 3, b = 7, c = 0;\n"
      "  if (a < b && b < 10 || c) c = 1; else c = 2;\n"
      "  if (c != 1) return 1;\n"
      "  if (!(a == 3) || (b != 7 && a)) return 2;\n"
      "  int d = (a > 1) + (b > 1) * 2;\n"
      "  if (d != 3) return 3;\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Semantics, CastsTruncate) {
  vm::RunResult R = runC("int main(void) {\n"
                         "  int big = 0x12345;\n"
                         "  if ((char)big != 0x45) return 1;\n"
                         "  if ((unsigned char)0x1FF != 0xFF) return 2;\n"
                         "  if ((short)0x18000 != -0x8000) return 3;\n"
                         "  if ((unsigned short)0x18000 != 0x8000)\n"
                         "    return 4;\n"
                         "  return 0;\n"
                         "}");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Semantics, RecursiveStructViaPointer) {
  vm::RunResult R = runC(
      "struct N { int v; struct N *next; };\n"
      "int main(void) {\n"
      "  struct N a, b, c;\n"
      "  a.v = 1; b.v = 2; c.v = 3;\n"
      "  a.next = &b; b.next = &c; c.next = 0;\n"
      "  int s = 0;\n"
      "  struct N *p = &a;\n"
      "  while (p) { s += p->v; p = p->next; }\n"
      "  return s;\n"
      "}");
  EXPECT_EQ(R.ExitCode, 6);
}

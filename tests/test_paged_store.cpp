//===- tests/test_paged_store.cpp - Sub-function fault granularity -------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The paged store's promises: execution out of page-granular faults is
// byte-for-byte identical to eager full decode for every per-function
// codec, at any page-size target and any budget; a function assembled
// from its pages equals the unpaged store's decode exactly; pinned pages
// survive eviction; N concurrent faults on one page perform exactly one
// decode; and a corrupt page fails its own faults recoverably while the
// function's other pages — and every other function — stay servable.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pipeline/Codec.h"
#include "pipeline/Pipeline.h"
#include "store/CodeStore.h"
#include "store/Resolver.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <thread>

using namespace ccomp;
using namespace ccomp::store;
using namespace ccomp::test;

namespace {

const size_t PageTargets[] = {64, 256, 4096, 0}; // 0 = whole function.

const char *const PerFunctionChains[] = {
    "flate",     "vm-compact", "brisc",          "brisc+flate",
    "vm-compact+flate", "bwt-dict", "brisc-ctx", "brisc-ctx+flate",
    "brisc-ctx+bwt-dict"};

std::unique_ptr<CodeStore> mustBuildStore(const vm::VMProgram &P,
                                          const std::string &Chain,
                                          StoreOptions Opts) {
  std::string Err;
  std::unique_ptr<CodeStore> S = CodeStore::build(P, Chain, Opts, Err);
  EXPECT_NE(S, nullptr) << Chain << ": " << Err;
  return S;
}

void expectSameFunction(const vm::VMFunction &A, const vm::VMFunction &B,
                        const std::string &Ctx) {
  EXPECT_EQ(A.Name, B.Name) << Ctx;
  EXPECT_EQ(A.FrameSize, B.FrameSize) << Ctx;
  EXPECT_EQ(A.LabelPos, B.LabelPos) << Ctx;
  ASSERT_EQ(A.Code.size(), B.Code.size()) << Ctx;
  for (size_t I = 0; I != A.Code.size(); ++I) {
    const vm::Instr &X = A.Code[I], &Y = B.Code[I];
    ASSERT_TRUE(X.Op == Y.Op && X.Rd == Y.Rd && X.Rs1 == Y.Rs1 &&
                X.Rs2 == Y.Rs2 && X.Imm == Y.Imm && X.Target == Y.Target)
        << Ctx << ": instruction " << I << " differs";
  }
}

/// Frame id of function Fn's first page (frame 0 of the container is the
/// manifest, so the container index is this plus one).
uint32_t firstPageOf(const CodeStore &S, uint32_t Fn) {
  uint32_t Id = 0;
  for (uint32_t I = 0; I != Fn; ++I)
    Id += S.pageCountOf(I);
  return Id;
}

// A registered passthrough codec with a switchable decode delay, to
// widen the single-flight race window (same trick as test_store).
std::atomic<bool> SlowDecode{false};

class SlowRawCodec final : public pipeline::Codec {
public:
  const char *name() const override { return "slow-raw-paged"; }
  const char *description() const override {
    return "test passthrough with a switchable decode delay";
  }
  pipeline::PayloadKind payloadKind() const override {
    return pipeline::PayloadKind::Raw;
  }

protected:
  std::vector<uint8_t> compressImpl(ByteSpan P) const override {
    return P.toVector();
  }
  Result<std::vector<uint8_t>> tryDecompressImpl(ByteSpan F) const override {
    if (SlowDecode.load(std::memory_order_relaxed))
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return F.toVector();
  }
};

void ensureSlowRawRegistered() {
  static bool Done = [] {
    pipeline::Registry::instance().add(std::make_unique<SlowRawCodec>());
    return true;
  }();
  (void)Done;
}

// The acceptance bar: a page-granular run is byte-for-byte the eager
// run, for every per-function codec, at every page target, at a
// generous budget and at a 1-byte budget (which holds exactly the most
// recently faulted page).
TEST(PagedStore, ExecutionMatchesEagerAtAnyPageSizeAndBudget) {
  vm::VMProgram P = buildVM(syntheticSource(10));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok) << Eager.Trap;

  for (const char *Chain : PerFunctionChains) {
    for (size_t Target : PageTargets) {
      for (size_t Budget : {size_t(16) << 20, size_t(1)}) {
        StoreOptions Opts;
        Opts.PageTargetBytes = Target;
        Opts.CacheBudgetBytes = Budget;
        std::unique_ptr<CodeStore> S = mustBuildStore(P, Chain, Opts);
        ASSERT_NE(S, nullptr);
        EXPECT_EQ(S->paged(), Target != 0) << "0 keeps whole-function frames";
        EXPECT_GE(S->frameCount(), S->functionCount());

        vm::RunResult R = runFromStore(*S);
        std::string Ctx = std::string(Chain) + " target=" +
                          std::to_string(Target) + " budget=" +
                          std::to_string(Budget);
        EXPECT_TRUE(R.Ok) << Ctx << ": " << R.Trap;
        EXPECT_EQ(R.ExitCode, Eager.ExitCode) << Ctx;
        EXPECT_EQ(R.Output, Eager.Output) << Ctx;
        EXPECT_EQ(R.Steps, Eager.Steps) << Ctx;
        if (Budget == size_t(1))
          EXPECT_GT(S->stats().Evictions, 0u)
              << Ctx << ": a 1-byte budget must be evicting";
      }
    }
  }
}

// fault(Fn) on a paged store assembles the body from its pages; the
// result must equal the unpaged store's decode of the same function
// exactly — name, frame size, label table, and every instruction.
TEST(PagedStore, AssembledFunctionMatchesUnpagedDecode) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  for (const char *Chain : PerFunctionChains) {
    std::unique_ptr<CodeStore> Whole =
        mustBuildStore(P, Chain, StoreOptions());
    StoreOptions PagedOpts;
    PagedOpts.PageTargetBytes = 64; // Small pages: many per function.
    std::unique_ptr<CodeStore> Paged = mustBuildStore(P, Chain, PagedOpts);
    ASSERT_NE(Whole, nullptr);
    ASSERT_NE(Paged, nullptr);
    EXPECT_GT(Paged->frameCount(), Paged->functionCount())
        << Chain << ": 64-byte pages must split some function";

    for (uint32_t I = 0; I != P.Functions.size(); ++I) {
      Result<std::shared_ptr<const vm::VMFunction>> A = Whole->fault(I);
      Result<std::shared_ptr<const vm::VMFunction>> B = Paged->fault(I);
      ASSERT_TRUE(A.ok()) << Chain << ": " << A.error().message();
      ASSERT_TRUE(B.ok()) << Chain << ": " << B.error().message();
      expectSameFunction(*A.value(), *B.value(),
                         std::string(Chain) + " fn " + std::to_string(I));
    }
  }
}

TEST(PagedStore, SaveLoadRoundTripKeepsPageGranularity) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok);

  StoreOptions Opts;
  Opts.PageTargetBytes = 128;
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "brisc+flate", Opts);
  ASSERT_NE(S, nullptr);
  std::vector<uint8_t> Image = S->save();

  // Loading infers page granularity from the manifest version: the
  // options carry no page target.
  Result<std::unique_ptr<CodeStore>> Back =
      CodeStore::tryLoad(Image, StoreOptions());
  ASSERT_TRUE(Back.ok()) << Back.error().message();
  std::unique_ptr<CodeStore> L = Back.take();
  EXPECT_TRUE(L->paged());
  EXPECT_EQ(L->frameCount(), S->frameCount());
  EXPECT_EQ(L->functionCount(), S->functionCount());
  for (uint32_t I = 0; I != L->functionCount(); ++I)
    EXPECT_EQ(L->pageCountOf(I), S->pageCountOf(I)) << I;

  vm::RunResult R = runFromStore(*L);
  EXPECT_TRUE(R.Ok) << R.Trap;
  EXPECT_EQ(R.Output, Eager.Output);
  EXPECT_EQ(R.Steps, Eager.Steps);

  // Truncated paged containers fail typed at load, never abort.
  for (size_t Keep : {size_t(0), size_t(9), Image.size() / 2}) {
    std::vector<uint8_t> Cut(Image.begin(), Image.begin() + Keep);
    EXPECT_FALSE(CodeStore::tryLoad(Cut, StoreOptions()).ok())
        << "keep=" << Keep;
  }
}

TEST(PagedStore, FaultSpanServesOnePageAndClamps) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  StoreOptions Opts;
  Opts.Shards = 1;
  Opts.PageTargetBytes = 64;
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "flate", Opts);
  ASSERT_NE(S, nullptr);

  // Pick a multi-page function.
  uint32_t Fn = 0;
  while (Fn != S->functionCount() && S->pageCountOf(Fn) < 2)
    ++Fn;
  ASSERT_NE(Fn, S->functionCount()) << "need a function with several pages";
  uint32_t Len = static_cast<uint32_t>(P.Functions[Fn].Code.size());

  Result<vm::CodeSpan> First = S->faultSpan(Fn, 0);
  ASSERT_TRUE(First.ok()) << First.error().message();
  EXPECT_EQ(First.value().Begin, 0u);
  EXPECT_LT(First.value().End, Len) << "one page, not the whole body";
  EXPECT_EQ(First.value().FuncLen, Len);
  EXPECT_TRUE(First.value().contains(0));
  EXPECT_EQ(S->stats().Decodes, 1u) << "only the touched page decodes";

  // The span's instructions are the eager body's slice.
  for (uint32_t I = First.value().Begin; I != First.value().End; ++I)
    EXPECT_EQ(First.value().Code[I - First.value().Begin].Op,
              P.Functions[Fn].Code[I].Op);

  // An index past the end clamps to the last page (the interpreter
  // turns the out-of-range Pc into a trap itself).
  Result<vm::CodeSpan> Past = S->faultSpan(Fn, Len + 100);
  ASSERT_TRUE(Past.ok());
  EXPECT_EQ(Past.value().End, Len);
  EXPECT_TRUE(Past.value().contains(Len - 1));

  // Out-of-range function ids stay typed errors.
  EXPECT_FALSE(S->faultSpan(S->functionCount(), 0).ok());
}

TEST(PagedStore, PinnedPagesSurviveEviction) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  ASSERT_GE(P.Functions.size(), 4u);
  StoreOptions Opts;
  Opts.Shards = 1;
  Opts.CacheBudgetBytes = 1; // Every insertion is over budget.
  Opts.PageTargetBytes = 64;
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "vm-compact", Opts);
  ASSERT_NE(S, nullptr);

  // Pin a multi-page function: every page must stay resident while
  // traffic on other functions churns the 1-byte cache.
  uint32_t Fn = 0;
  while (Fn != S->functionCount() && S->pageCountOf(Fn) < 2)
    ++Fn;
  ASSERT_NE(Fn, S->functionCount());
  ASSERT_TRUE(S->pin(Fn).ok());
  EXPECT_EQ(S->stats().PinnedFunctions, uint64_t(S->pageCountOf(Fn)));
  EXPECT_TRUE(S->isResident(Fn));

  for (uint32_t I = 0; I != S->functionCount(); ++I)
    if (I != Fn)
      ASSERT_TRUE(S->fault(I).ok());
  EXPECT_TRUE(S->isResident(Fn)) << "pinned pages are never victims";

  S->unpin(Fn);
  EXPECT_EQ(S->stats().PinnedFunctions, 0u);
  uint32_t Other = Fn == 0 ? 1 : 0;
  ASSERT_TRUE(S->fault(Other).ok());
  EXPECT_FALSE(S->isResident(Fn)) << "unpin makes the pages evictable";
}

// 8 threads resolving the same cold instruction: exactly one decode of
// exactly one page. The tsan preset runs this with full happens-before
// checking.
TEST(PagedStore, ConcurrentSpanFaultsDecodeOncePerPage) {
  ensureSlowRawRegistered();
  vm::VMProgram P = buildVM(syntheticSource(6));
  StoreOptions Opts;
  Opts.PageTargetBytes = 64;
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "slow-raw-paged", Opts);
  ASSERT_NE(S, nullptr);
  uint32_t Fn = 0;
  while (Fn != S->functionCount() && S->pageCountOf(Fn) < 2)
    ++Fn;
  ASSERT_NE(Fn, S->functionCount());

  constexpr unsigned NumThreads = 8;
  SlowDecode.store(true);
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::atomic<unsigned> Failures{0};
  const vm::Instr *Seen[NumThreads] = {};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      ++Ready;
      while (!Go.load())
        std::this_thread::yield();
      Result<vm::CodeSpan> R = S->faultSpan(Fn, 0);
      if (R.ok())
        Seen[T] = R.value().Code;
      else
        ++Failures;
    });
  while (Ready.load() != NumThreads)
    std::this_thread::yield();
  Go.store(true);
  for (std::thread &T : Threads)
    T.join();
  SlowDecode.store(false);

  EXPECT_EQ(Failures.load(), 0u);
  for (unsigned T = 1; T != NumThreads; ++T)
    EXPECT_EQ(Seen[T], Seen[0]) << "all threads share one decoded page";

  StoreStats St = S->stats();
  EXPECT_EQ(St.Decodes, 1u) << "single-flight collapses to one page decode";
  EXPECT_EQ(St.Hits + St.Misses, uint64_t(NumThreads));
  EXPECT_EQ(St.SingleFlightWaits, St.Misses - 1);

  // Assembling the whole function decodes only the remaining pages.
  S->resetStats();
  ASSERT_TRUE(S->fault(Fn).ok());
  EXPECT_EQ(S->stats().Decodes, uint64_t(S->pageCountOf(Fn) - 1));
}

TEST(PagedStore, CorruptPageFailsRecoverablyOtherPagesServable) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  StoreOptions Opts;
  Opts.PageTargetBytes = 64;
  std::unique_ptr<CodeStore> Built = mustBuildStore(P, "flate", Opts);
  ASSERT_NE(Built, nullptr);
  std::vector<uint8_t> Image = Built->save();

  // Pick a multi-page victim and corrupt its *last* page, so spans in
  // the earlier pages keep serving.
  uint32_t Victim = 0;
  while (Victim != Built->functionCount() && Built->pageCountOf(Victim) < 2)
    ++Victim;
  ASSERT_NE(Victim, Built->functionCount());
  uint32_t BadPage =
      firstPageOf(*Built, Victim) + Built->pageCountOf(Victim) - 1;

  Result<pipeline::Container> Box = pipeline::tryUnpackContainer(Image);
  ASSERT_TRUE(Box.ok());
  Box.value().Frames[BadPage + 1] = {1, 2, 3}; // +1: frame 0 is the manifest.
  std::vector<uint8_t> Doctored =
      pipeline::packContainer(Box.value().ChainSpec, Box.value().Frames);

  Result<std::unique_ptr<CodeStore>> L =
      CodeStore::tryLoad(Doctored, StoreOptions());
  ASSERT_TRUE(L.ok()) << "page corruption surfaces at fault, not load: "
                      << L.error().message();
  std::unique_ptr<CodeStore> S = L.take();

  // Assembling the victim hits the bad page and fails typed, twice
  // (errors are not cached)...
  for (int Try = 0; Try != 2; ++Try) {
    Result<std::shared_ptr<const vm::VMFunction>> R = S->fault(Victim);
    ASSERT_FALSE(R.ok());
    EXPECT_FALSE(R.error().message().empty());
  }
  EXPECT_EQ(S->stats().DecodeErrors, 2u);
  EXPECT_FALSE(S->isResident(Victim));

  // ...while the victim's first page still serves as a span...
  Result<vm::CodeSpan> Span = S->faultSpan(Victim, 0);
  EXPECT_TRUE(Span.ok()) << Span.error().message();

  // ...and every other function stays servable.
  for (uint32_t I = 0; I != S->functionCount(); ++I) {
    if (I == Victim)
      continue;
    Result<std::shared_ptr<const vm::VMFunction>> R = S->fault(I);
    EXPECT_TRUE(R.ok()) << I << ": " << R.error().message();
  }
}

} // namespace

//===- tests/test_layout.cpp - Profile-guided layout differential suite --------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The profile-guided page layout's promises, pinned differentially
// against the source-order layout: execution out of a trace-guided
// store is byte-for-byte identical to both the eager run and the
// source-order store for every per-function codec, at every page
// target, at a generous budget and at a 1-byte budget; a profiled
// partition is still a valid source-order partition cut only at block
// boundaries; no profile (or an all-cold one) reproduces the greedy
// packing bit-identically; traces are deterministic and round-trip
// their sidecar encoding; the profiled layout rides the manifest
// through save/load; admission-clamped prefetch never over-fetches on
// a tiny budget; and concurrent span faults on a profiled layout still
// collapse to one decode.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pipeline/Codec.h"
#include "pipeline/Payload.h"
#include "pipeline/Profile.h"
#include "store/CodeStore.h"
#include "store/Resolver.h"
#include "store/Trace.h"
#include "support/ThreadPool.h"
#include "vm/Encode.h"
#include "vm/Program.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>

using namespace ccomp;
using namespace ccomp::store;
using namespace ccomp::test;

namespace {

const size_t PageTargets[] = {64, 256, 4096, 0}; // 0 = whole function.

const char *const PerFunctionChains[] = {"flate", "vm-compact", "brisc",
                                         "brisc+flate", "vm-compact+flate"};

std::unique_ptr<CodeStore> mustBuildStore(const vm::VMProgram &P,
                                          const std::string &Chain,
                                          StoreOptions Opts) {
  std::string Err;
  std::unique_ptr<CodeStore> S = CodeStore::build(P, Chain, Opts, Err);
  EXPECT_NE(S, nullptr) << Chain << ": " << Err;
  return S;
}

void expectSameFunction(const vm::VMFunction &A, const vm::VMFunction &B,
                        const std::string &Ctx) {
  EXPECT_EQ(A.Name, B.Name) << Ctx;
  EXPECT_EQ(A.FrameSize, B.FrameSize) << Ctx;
  EXPECT_EQ(A.LabelPos, B.LabelPos) << Ctx;
  ASSERT_EQ(A.Code.size(), B.Code.size()) << Ctx;
  for (size_t I = 0; I != A.Code.size(); ++I) {
    const vm::Instr &X = A.Code[I], &Y = B.Code[I];
    ASSERT_TRUE(X.Op == Y.Op && X.Rd == Y.Rd && X.Rs1 == Y.Rs1 &&
                X.Rs2 == Y.Rs2 && X.Imm == Y.Imm && X.Target == Y.Target)
        << Ctx << ": instruction " << I << " differs";
  }
}

/// The recorded trace of \p P, failing the test if the profiling run
/// traps or diverges from \p Eager.
pipeline::ExecutionTrace mustRecord(const vm::VMProgram &P,
                                    const vm::RunResult &Eager) {
  TraceRunResult R = recordTrace(P);
  EXPECT_TRUE(R.Run.Ok) << R.Run.Trap;
  EXPECT_EQ(R.Run.Output, Eager.Output) << "profiling must not perturb";
  EXPECT_EQ(R.Run.ExitCode, Eager.ExitCode);
  return std::move(R.Trace);
}

/// Per-function shapes for digestTrace, straight from the program.
std::vector<pipeline::FunctionShape> shapesOf(const vm::VMProgram &P) {
  std::vector<pipeline::FunctionShape> Shapes;
  Shapes.reserve(P.Functions.size());
  for (const vm::VMFunction &F : P.Functions)
    Shapes.push_back({F.LabelPos, static_cast<uint32_t>(F.Code.size())});
  return Shapes;
}

// A registered passthrough codec with a switchable decode delay, to
// widen the single-flight race window (same trick as test_paged_store).
std::atomic<bool> SlowDecode{false};

class SlowRawCodec final : public pipeline::Codec {
public:
  const char *name() const override { return "slow-raw-layout"; }
  const char *description() const override {
    return "test passthrough with a switchable decode delay";
  }
  pipeline::PayloadKind payloadKind() const override {
    return pipeline::PayloadKind::Raw;
  }

protected:
  std::vector<uint8_t> compressImpl(ByteSpan P) const override {
    return P.toVector();
  }
  Result<std::vector<uint8_t>> tryDecompressImpl(ByteSpan F) const override {
    if (SlowDecode.load(std::memory_order_relaxed))
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return F.toVector();
  }
};

void ensureSlowRawRegistered() {
  static bool Done = [] {
    pipeline::Registry::instance().add(std::make_unique<SlowRawCodec>());
    return true;
  }();
  (void)Done;
}

// The differential acceptance bar: a trace-guided store must execute
// byte-for-byte like the eager run AND decode every function
// byte-for-byte like the source-order store, for every per-function
// codec, at every page target, at a generous budget and at a 1-byte
// budget.
TEST(Layout, ProfiledExecutionMatchesSourceOrderEverywhere) {
  vm::VMProgram P = buildVM(syntheticSource(10));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok) << Eager.Trap;
  pipeline::ExecutionTrace Trace = mustRecord(P, Eager);
  ASSERT_FALSE(Trace.Events.empty());

  for (const char *Chain : PerFunctionChains) {
    for (size_t Target : PageTargets) {
      for (size_t Budget : {size_t(16) << 20, size_t(1)}) {
        std::string Ctx = std::string(Chain) + " target=" +
                          std::to_string(Target) + " budget=" +
                          std::to_string(Budget);
        StoreOptions Plain;
        Plain.PageTargetBytes = Target;
        Plain.CacheBudgetBytes = Budget;
        StoreOptions Profiled = Plain;
        Profiled.Profile = &Trace;
        std::unique_ptr<CodeStore> Src = mustBuildStore(P, Chain, Plain);
        std::unique_ptr<CodeStore> Prof = mustBuildStore(P, Chain, Profiled);
        ASSERT_NE(Src, nullptr);
        ASSERT_NE(Prof, nullptr);
        EXPECT_TRUE(Prof->hasAccessProfile()) << Ctx;
        EXPECT_FALSE(Src->hasAccessProfile()) << Ctx;

        for (CodeStore *S : {Src.get(), Prof.get()}) {
          vm::RunResult R = runFromStore(*S);
          EXPECT_TRUE(R.Ok) << Ctx << ": " << R.Trap;
          EXPECT_EQ(R.ExitCode, Eager.ExitCode) << Ctx;
          EXPECT_EQ(R.Output, Eager.Output) << Ctx;
          EXPECT_EQ(R.Steps, Eager.Steps) << Ctx;
        }

        // Assembled bodies are identical across the two layouts.
        for (uint32_t I = 0; I != P.Functions.size(); ++I) {
          Result<std::shared_ptr<const vm::VMFunction>> A = Src->fault(I);
          Result<std::shared_ptr<const vm::VMFunction>> B = Prof->fault(I);
          ASSERT_TRUE(A.ok()) << Ctx << ": " << A.error().message();
          ASSERT_TRUE(B.ok()) << Ctx << ": " << B.error().message();
          expectSameFunction(*A.value(), *B.value(),
                             Ctx + " fn " + std::to_string(I));
        }
      }
    }
  }
}

// Without a usable profile the 3-argument splitFunctionPages must be
// bit-identical to the greedy source-order packer — same page count,
// same cut points, same instructions.
TEST(Layout, NoProfileIsBitIdenticalToGreedyPacking) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  for (const vm::VMFunction &F : P.Functions) {
    size_t N = vm::blockCuts(F.LabelPos, F.Code.size()).size() - 1;
    pipeline::FunctionProfile Cold;
    Cold.BlockHeat.assign(N, 0);
    Cold.EdgeAffinity.assign(N > 1 ? N - 1 : 0, 0);
    for (size_t Target : PageTargets) {
      std::vector<pipeline::PageChunk> Greedy =
          pipeline::splitFunctionPages(F, Target);
      const pipeline::FunctionProfile *Variants[] = {nullptr, &Cold};
      for (const pipeline::FunctionProfile *Prof : Variants) {
        std::vector<pipeline::PageChunk> Got =
            pipeline::splitFunctionPages(F, Target, Prof);
        ASSERT_EQ(Got.size(), Greedy.size())
            << F.Name << " target=" << Target;
        for (size_t K = 0; K != Got.size(); ++K) {
          EXPECT_EQ(Got[K].FirstInstr, Greedy[K].FirstInstr) << F.Name;
          EXPECT_EQ(Got[K].Code.size(), Greedy[K].Code.size()) << F.Name;
        }
      }
    }
  }
}

// A profiled split is still a valid layout: pages are a contiguous
// partition of the body in source order, every cut lands on a block
// boundary, and no page except a lone oversized block exceeds the
// target.
TEST(Layout, ProfiledSplitIsAValidBlockPartition) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok);
  pipeline::ExecutionTrace Trace = mustRecord(P, Eager);
  std::vector<pipeline::FunctionProfile> Profiles =
      pipeline::digestTrace(Trace, shapesOf(P));
  ASSERT_EQ(Profiles.size(), P.Functions.size());

  for (size_t Target : {size_t(64), size_t(256)}) {
    for (size_t Fn = 0; Fn != P.Functions.size(); ++Fn) {
      const vm::VMFunction &F = P.Functions[Fn];
      std::vector<uint32_t> Cuts = vm::blockCuts(F.LabelPos, F.Code.size());
      std::vector<pipeline::PageChunk> Pages =
          pipeline::splitFunctionPages(F, Target, &Profiles[Fn]);
      ASSERT_FALSE(Pages.empty()) << F.Name;
      uint32_t At = 0;
      for (const pipeline::PageChunk &Pg : Pages) {
        EXPECT_EQ(Pg.FirstInstr, At) << F.Name << ": contiguous partition";
        EXPECT_TRUE(std::binary_search(Cuts.begin(), Cuts.end(),
                                       Pg.FirstInstr))
            << F.Name << ": cut off a block boundary at " << Pg.FirstInstr;
        size_t Bytes = 0;
        for (const vm::Instr &In : Pg.Code) {
          const vm::Instr &Want = F.Code[At + (&In - Pg.Code.data())];
          EXPECT_TRUE(In.Op == Want.Op && In.Imm == Want.Imm)
              << F.Name << ": reordered instructions";
          Bytes += vm::encodedSize(In);
        }
        // Over-target pages are only legal as single oversized blocks.
        if (Bytes > Target) {
          uint32_t Lo = Pg.FirstInstr;
          uint32_t Hi = Lo + static_cast<uint32_t>(Pg.Code.size());
          auto It = std::upper_bound(Cuts.begin(), Cuts.end(), Lo);
          EXPECT_TRUE(It != Cuts.end() && *It == Hi)
              << F.Name << ": multi-block page over target";
        }
        At += static_cast<uint32_t>(Pg.Code.size());
      }
      EXPECT_EQ(At, F.Code.size()) << F.Name << ": covers the whole body";
    }
  }
}

// Recording the same program twice yields the same trace, event for
// event — the foundation for reproducible layouts.
TEST(Layout, TraceIsDeterministic) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok);
  pipeline::ExecutionTrace A = mustRecord(P, Eager);
  pipeline::ExecutionTrace B = mustRecord(P, Eager);
  EXPECT_EQ(A.FuncCount, B.FuncCount);
  EXPECT_EQ(A.Truncated, B.Truncated);
  ASSERT_EQ(A.Events.size(), B.Events.size());
  EXPECT_TRUE(A.Events == B.Events) << "trace must be deterministic";
  ASSERT_FALSE(A.Events.empty());
  for (const pipeline::TraceEvent &E : A.Events) {
    EXPECT_LT(E.Fn, A.FuncCount);
    EXPECT_LT(E.Idx, pipeline::MaxTraceInstrIdx);
  }
}

// The CCPF sidecar round-trips exactly, including the truncation flag
// and the empty trace.
TEST(Layout, ProfileSidecarRoundTrips) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok);
  pipeline::ExecutionTrace T = mustRecord(P, Eager);

  for (bool Truncated : {false, true}) {
    T.Truncated = Truncated;
    std::vector<uint8_t> Bytes = T.serialize();
    Result<pipeline::ExecutionTrace> Back =
        pipeline::ExecutionTrace::tryDeserialize(Bytes);
    ASSERT_TRUE(Back.ok()) << Back.error().message();
    EXPECT_EQ(Back.value().FuncCount, T.FuncCount);
    EXPECT_EQ(Back.value().Truncated, Truncated);
    EXPECT_TRUE(Back.value().Events == T.Events);
  }

  pipeline::ExecutionTrace Empty;
  Empty.FuncCount = 3;
  Result<pipeline::ExecutionTrace> Back =
      pipeline::ExecutionTrace::tryDeserialize(Empty.serialize());
  ASSERT_TRUE(Back.ok());
  EXPECT_TRUE(Back.value().Events.empty());
  EXPECT_EQ(Back.value().FuncCount, 3u);
}

// The profiled layout rides the manifest: save/load preserves the page
// table exactly and the loaded store still replays the eager run.
TEST(Layout, ProfiledContainerSaveLoadRoundTrips) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok);
  pipeline::ExecutionTrace Trace = mustRecord(P, Eager);

  StoreOptions Opts;
  Opts.PageTargetBytes = 96;
  Opts.Profile = &Trace;
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "brisc+flate", Opts);
  ASSERT_NE(S, nullptr);
  std::vector<uint8_t> Image = S->save();

  Result<std::unique_ptr<CodeStore>> Back =
      CodeStore::tryLoad(Image, StoreOptions());
  ASSERT_TRUE(Back.ok()) << Back.error().message();
  std::unique_ptr<CodeStore> L = Back.take();
  EXPECT_TRUE(L->paged());
  EXPECT_EQ(L->frameCount(), S->frameCount());
  EXPECT_EQ(L->functionCount(), S->functionCount());
  for (uint32_t I = 0; I != L->functionCount(); ++I)
    EXPECT_EQ(L->pageCountOf(I), S->pageCountOf(I)) << I;

  vm::RunResult R = runFromStore(*L);
  EXPECT_TRUE(R.Ok) << R.Trap;
  EXPECT_EQ(R.Output, Eager.Output);
  EXPECT_EQ(R.Steps, Eager.Steps);

  // Byte-stability: saving the loaded store reproduces the image.
  EXPECT_EQ(L->save(), Image);
}

// The prefetch clamp: on a 1-byte budget a whole-store prefetch may
// decode at most the one frame admission will actually keep — no
// over-fetch, no wasted decodes. On a generous budget the same call
// warms everything.
TEST(Layout, PrefetchClampsToAdmissionOnTinyBudget) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  std::vector<uint32_t> All;

  StoreOptions Tiny;
  Tiny.Shards = 1;
  Tiny.PageTargetBytes = 64;
  Tiny.CacheBudgetBytes = 1;
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "flate", Tiny);
  ASSERT_NE(S, nullptr);
  for (uint32_t I = 0; I != S->functionCount(); ++I)
    All.push_back(I);
  {
    ThreadPool Pool(4);
    S->prefetch(All, Pool);
    Pool.wait();
  }
  StoreStats St = S->stats();
  EXPECT_LE(St.PrefetchDecodes, 1u)
      << "1-byte budget admits one frame; prefetch must not decode more";
  EXPECT_LE(St.ResidentFunctions, 1u);

  StoreOptions Big = Tiny;
  Big.CacheBudgetBytes = 16u << 20;
  std::unique_ptr<CodeStore> G = mustBuildStore(P, "flate", Big);
  ASSERT_NE(G, nullptr);
  {
    ThreadPool Pool(4);
    G->prefetch(All, Pool);
    Pool.wait();
  }
  EXPECT_EQ(G->stats().PrefetchDecodes, uint64_t(G->frameCount()))
      << "a generous budget warms every frame";
  for (uint32_t I = 0; I != G->functionCount(); ++I)
    EXPECT_TRUE(G->isResident(I)) << I;
}

// The recorded successor graph predicts only frames the trace actually
// transitioned to, best first.
TEST(Layout, PredictedSuccessorsComeFromTheTrace) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok);
  pipeline::ExecutionTrace Trace = mustRecord(P, Eager);

  StoreOptions Opts; // Unpaged: frames are functions, easy to check.
  Opts.Profile = &Trace;
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "flate", Opts);
  ASSERT_NE(S, nullptr);
  ASSERT_TRUE(S->hasAccessProfile());

  // Recompute the observed frame transitions straight from the trace.
  std::vector<std::set<uint32_t>> Observed(S->frameCount());
  for (size_t I = 1; I < Trace.Events.size(); ++I) {
    uint32_t From = Trace.Events[I - 1].Fn, To = Trace.Events[I].Fn;
    if (From != To)
      Observed[From].insert(To);
  }
  bool AnyPrediction = false;
  for (uint32_t F = 0; F != S->frameCount(); ++F) {
    std::vector<uint32_t> Pred = S->predictedSuccessors(F, ~0u);
    AnyPrediction = AnyPrediction || !Pred.empty();
    for (uint32_t N : Pred)
      EXPECT_TRUE(Observed[F].count(N))
          << "frame " << F << " predicts " << N << " never observed";
  }
  EXPECT_TRUE(AnyPrediction) << "a real trace must predict something";
}

// 8 threads resolving the same cold instruction on a *profiled* layout:
// exactly one decode of exactly one page, all threads sharing it. The
// tsan preset runs this with full happens-before checking.
TEST(Layout, ConcurrentSpanFaultsOnProfiledLayoutDecodeOnce) {
  ensureSlowRawRegistered();
  vm::VMProgram P = buildVM(syntheticSource(6));
  vm::RunResult Eager = vm::runProgram(P);
  ASSERT_TRUE(Eager.Ok);
  pipeline::ExecutionTrace Trace = mustRecord(P, Eager);

  StoreOptions Opts;
  Opts.PageTargetBytes = 64;
  Opts.Profile = &Trace;
  std::unique_ptr<CodeStore> S = mustBuildStore(P, "slow-raw-layout", Opts);
  ASSERT_NE(S, nullptr);
  uint32_t Fn = 0;
  while (Fn != S->functionCount() && S->pageCountOf(Fn) < 2)
    ++Fn;
  ASSERT_NE(Fn, S->functionCount()) << "need a function with several pages";

  constexpr unsigned NumThreads = 8;
  SlowDecode.store(true);
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::atomic<unsigned> Failures{0};
  const vm::Instr *Seen[NumThreads] = {};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      ++Ready;
      while (!Go.load())
        std::this_thread::yield();
      Result<vm::CodeSpan> R = S->faultSpan(Fn, 0);
      if (R.ok())
        Seen[T] = R.value().Code;
      else
        ++Failures;
    });
  while (Ready.load() != NumThreads)
    std::this_thread::yield();
  Go.store(true);
  for (std::thread &T : Threads)
    T.join();
  SlowDecode.store(false);

  EXPECT_EQ(Failures.load(), 0u);
  for (unsigned T = 1; T != NumThreads; ++T)
    EXPECT_EQ(Seen[T], Seen[0]) << "all threads share one decoded page";
  StoreStats St = S->stats();
  EXPECT_EQ(St.Decodes, 1u) << "single-flight collapses to one page decode";
  EXPECT_EQ(St.Hits + St.Misses, uint64_t(NumThreads));
  EXPECT_EQ(St.SingleFlightWaits, St.Misses - 1);
}

} // namespace

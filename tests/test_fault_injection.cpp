//===- tests/test_fault_injection.cpp - Decoder corruption sweeps ------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Drives every delivery-format decoder through thousands of seeded,
// reproducible corruptions (bit flips, byte substitutions, truncations,
// inserted garbage, inflated length fields, zero runs) and asserts each
// corrupted buffer either decodes cleanly or is rejected with a typed
// DecodeError — never a crash, hang, or out-of-bounds access. Run under
// the `asan` CMake preset to have the sanitizers check the last part.
//
// A failing case prints its Fault (kind, offset, count, seed), which
// replays deterministically through applyFault().
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "brisc/Brisc.h"
#include "flate/Flate.h"
#include "pipeline/Codec.h"
#include "pipeline/Pipeline.h"
#include "pipeline/Profile.h"
#include "store/CodeStore.h"
#include "store/FrameSource.h"
#include "store/Trace.h"
#include "support/BitStream.h"
#include "support/ByteIO.h"
#include "support/FaultInject.h"
#include "support/Huffman.h"
#include "vm/Encode.h"
#include "wire/Wire.h"

#include <algorithm>
#include <fstream>

using namespace ccomp;
using namespace ccomp::test;

namespace {

/// Rounds per (buffer, decoder) sweep. The suite must total >= 1000
/// corruptions across flate + wire (4 levels) + brisc + vm.
constexpr unsigned Rounds = 160;

/// Sweeps \p Valid through \p Decode and sanity-checks the outcome mix:
/// at least one corruption must have been rejected (a harness that never
/// trips a decoder is not corrupting), and none may escape as anything
/// but a clean bool (DecodeError escapes are caught by the Result-based
/// decoders themselves; any other escape fails the test here).
void sweep(const std::vector<uint8_t> &Valid, uint64_t Seed,
           const std::function<bool(const std::vector<uint8_t> &)> &Decode,
           const char *What) {
  ASSERT_FALSE(Valid.empty()) << What;
  Fault Last;
  size_t Rejected = 0;
  try {
    Rejected = corruptionSweep(Valid, Seed, Rounds, Decode, &Last);
  } catch (const std::exception &E) {
    FAIL() << What << ": decoder escaped on fault {" << Last.str()
           << "}: " << E.what();
  }
  EXPECT_GT(Rejected, 0u) << What << ": no corruption was ever rejected";
}

std::vector<uint8_t> flateCorpusBuffer(uint64_t Seed) {
  // Mixed runs/ramps/noise so all block types (stored + dynamic) appear.
  PRNG Rng(Seed);
  std::vector<uint8_t> In;
  while (In.size() < 30000) {
    unsigned Mode = static_cast<unsigned>(Rng.below(3));
    size_t Len = 1 + Rng.below(300);
    uint8_t B = static_cast<uint8_t>(Rng.next());
    for (size_t K = 0; K != Len; ++K)
      In.push_back(Mode == 0   ? B
                   : Mode == 1 ? static_cast<uint8_t>(In.size() & 0xFF)
                               : static_cast<uint8_t>(Rng.next()));
  }
  return In;
}

} // namespace

//===----------------------------------------------------------------------===//
// flate
//===----------------------------------------------------------------------===//

TEST(FaultInjection, FlateSurvivesCorruption) {
  for (uint64_t Seed : {1u, 2u}) {
    std::vector<uint8_t> In = flateCorpusBuffer(Seed);
    std::vector<uint8_t> Z = flate::compress(In);
    // The uncorrupted image must still round-trip.
    Result<std::vector<uint8_t>> Clean = flate::tryDecompress(Z);
    ASSERT_TRUE(Clean.ok()) << Clean.error().message();
    ASSERT_EQ(Clean.value(), In);

    sweep(Z, 1000 + Seed, [&](const std::vector<uint8_t> &Bad) {
      Result<std::vector<uint8_t>> R = flate::tryDecompress(Bad);
      return R.ok();
    }, "flate");
  }
}

//===----------------------------------------------------------------------===//
// wire (all four pipeline levels)
//===----------------------------------------------------------------------===//

TEST(FaultInjection, WireSurvivesCorruptionAtEveryPipelineLevel) {
  std::unique_ptr<ir::Module> M = compileC(syntheticSource(24));
  ASSERT_TRUE(M);
  for (wire::Pipeline P :
       {wire::Pipeline::Naive, wire::Pipeline::Streams,
        wire::Pipeline::StreamsMTF, wire::Pipeline::Full}) {
    std::vector<uint8_t> Z = wire::compress(*M, P);
    std::string Error;
    ASSERT_TRUE(wire::decompress(Z, Error)) << Error;

    sweep(Z, 2000 + static_cast<uint64_t>(P),
          [&](const std::vector<uint8_t> &Bad) {
            std::string Err;
            std::unique_ptr<ir::Module> Back = wire::decompress(Bad, Err);
            // The (module, error) contract: exactly one of the two.
            EXPECT_NE(Back == nullptr, Err.empty());
            return Back != nullptr;
          },
          "wire");
  }
}

//===----------------------------------------------------------------------===//
// brisc images (with and without the data segment), chained into the
// loader: a corrupt image that still parses must also fail cleanly (or
// succeed) in decodeToVM and vm::verify, never crash.
//===----------------------------------------------------------------------===//

TEST(FaultInjection, BriscImageSurvivesCorruptionThroughLoader) {
  vm::VMProgram P = buildVM(syntheticSource(12));
  brisc::BriscProgram B = brisc::compress(P);
  for (bool IncludeData : {true, false}) {
    std::vector<uint8_t> Img = B.serialize(IncludeData);
    Result<brisc::BriscProgram> Clean = brisc::BriscProgram::parse(Img);
    ASSERT_TRUE(Clean.ok()) << Clean.error().message();

    sweep(Img, 3000 + (IncludeData ? 1 : 0),
          [&](const std::vector<uint8_t> &Bad) {
            Result<brisc::BriscProgram> R = brisc::BriscProgram::parse(Bad);
            if (!R.ok())
              return false;
            // Parsed: push the survivor through the loader too.
            Result<vm::VMProgram> V = brisc::tryDecodeToVM(R.value());
            if (!V.ok())
              return false;
            // Whatever verify says is acceptable; it must just not crash.
            (void)vm::verify(V.value());
            return true;
          },
          "brisc");
  }
}

//===----------------------------------------------------------------------===//
// vm fixed-width and compact function encodings
//===----------------------------------------------------------------------===//

TEST(FaultInjection, VMEncodingsSurviveCorruption) {
  vm::VMProgram P = buildVM(syntheticSource(6));
  ASSERT_FALSE(P.Functions.empty());
  const vm::VMFunction &F = P.Functions[0];

  std::vector<uint8_t> Fixed = vm::encodeFunction(F);
  sweep(Fixed, 4001, [](const std::vector<uint8_t> &Bad) {
    return vm::tryDecodeFunction(Bad).ok();
  }, "vm fixed-width");

  std::vector<uint8_t> Compact = vm::encodeFunctionCompact(F);
  sweep(Compact, 4002, [](const std::vector<uint8_t> &Bad) {
    return vm::tryDecodeFunctionCompact(Bad).ok();
  }, "vm compact");
}

//===----------------------------------------------------------------------===//
// bwt-dict and brisc-ctx codec frames: both decoders run over
// attacker-controlled container bytes like every other delivery format,
// so both get the seeded sweep — corrupt frames decode cleanly or fail
// typed, never crash, hang, or over-allocate (asan preset checks).
//===----------------------------------------------------------------------===//

TEST(FaultInjection, BwtDictAndBriscCtxFramesSurviveCorruption) {
  vm::VMProgram P = buildVM(syntheticSource(10));
  ASSERT_FALSE(P.Functions.empty());
  // Both codecs consume fixed-width function encodings (FixedCode /
  // Raw payloads are the same bytes).
  std::vector<uint8_t> Payload = vm::encodeFunction(P.Functions[0]);

  for (const char *Name : {"bwt-dict", "brisc-ctx"}) {
    const pipeline::Codec *C = pipeline::Registry::instance().find(Name);
    ASSERT_NE(C, nullptr) << Name;
    std::vector<uint8_t> Frame = C->compress(Payload);
    Result<std::vector<uint8_t>> Clean = C->tryDecompress(Frame);
    ASSERT_TRUE(Clean.ok()) << Name << ": " << Clean.error().message();
    ASSERT_EQ(Clean.value(), Payload) << Name;

    sweep(Frame, Name[1] == 'w' ? 8001 : 8002,
          [&](const std::vector<uint8_t> &Bad) {
            return C->tryDecompress(Bad).ok();
          },
          Name);
  }
}

// A hand-built bwt-dict frame whose MTF stream re-announces an
// already-known byte as "new". The encoder never emits this shape (a
// seen symbol is addressed through the table), so it only appears in a
// corrupt or hostile stream — and before the duplicate reject existed,
// a long run of such tokens grew the decoder table without bound. The
// reject must be a typed error naming the duplicate.
TEST(FaultInjection, BwtDictRejectsDuplicateNewSymbolBomb) {
  // Alphabet {0}: the single 1-bit code '0' maps to MTF index 0 ("new
  // symbol"), so every token is index 0 followed by an 8-bit literal.
  std::vector<uint8_t> Lens = {1};
  ASSERT_TRUE(HuffmanCode::isValidLengthSet(Lens));
  HuffmanCode Code(Lens);
  BitWriter BW;
  for (int I = 0; I != 2; ++I) {
    Code.encode(BW, 0);
    BW.writeBits(5, 8); // The same literal twice: the second is the bomb.
  }
  std::vector<uint8_t> Bits = BW.finish();

  ByteWriter W;
  W.writeU8('B');
  W.writeU8('D');
  W.writeU8(1);          // version
  W.writeVarU(4);        // OrigLen: within the bit budget
  W.writeVarU(0);        // Primary
  W.writeVarU(1);        // NumSyms
  W.writeU8(Lens[0]);    // nibble-packed lengths (one nibble used)
  W.writeVarU(Bits.size());
  W.writeBytes(Bits);

  const pipeline::Codec *C = pipeline::Registry::instance().find("bwt-dict");
  ASSERT_NE(C, nullptr);
  Result<std::vector<uint8_t>> R = C->tryDecompress(W.take());
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("duplicate new-symbol"),
            std::string::npos)
      << R.error().message();
}

//===----------------------------------------------------------------------===//
// Store containers: manifest, frame table, and frames. Corruption must
// surface as a typed load or fault error, whether the container is
// parsed from memory (tryLoad) or demand-read from disk through a
// FileFrameSource's offset table (tryOpenFile).
//===----------------------------------------------------------------------===//

namespace {

std::vector<uint8_t> storeImage(const vm::VMProgram &P,
                                const std::string &Chain) {
  std::string Err;
  std::unique_ptr<store::CodeStore> S =
      store::CodeStore::build(P, Chain, store::StoreOptions(), Err);
  EXPECT_NE(S, nullptr) << Chain << ": " << Err;
  return S->save();
}

/// Loads a (possibly corrupt) store and faults every function: true
/// only if everything decoded cleanly.
bool faultAll(Result<std::unique_ptr<store::CodeStore>> L) {
  if (!L.ok())
    return false;
  std::unique_ptr<store::CodeStore> S = L.take();
  for (uint32_t I = 0; I != S->functionCount(); ++I)
    if (!S->fault(I).ok())
      return false;
  return true;
}

} // namespace

TEST(FaultInjection, StoreContainerSurvivesCorruptionInMemory) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  for (const char *Chain : {"flate", "brisc+flate"}) {
    std::vector<uint8_t> Img = storeImage(P, Chain);
    ASSERT_TRUE(faultAll(store::CodeStore::tryLoad(Img, store::StoreOptions())))
        << Chain << ": the uncorrupted image must serve";

    sweep(Img, 5000, [&](const std::vector<uint8_t> &Bad) {
      return faultAll(store::CodeStore::tryLoad(Bad, store::StoreOptions()));
    }, "store tryLoad");
  }
}

TEST(FaultInjection, StoreFileSurvivesCorruptionOnDisk) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  std::vector<uint8_t> Img = storeImage(P, "vm-compact+flate");
  const std::string Path = testing::TempDir() + "ccomp_fault_store.ccpk";

  auto OpenCorrupt = [&](const std::vector<uint8_t> &Bad) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(reinterpret_cast<const char *>(Bad.data()),
              static_cast<std::streamsize>(Bad.size()));
    Out.close();
    return faultAll(store::CodeStore::tryOpenFile(Path, store::StoreOptions()));
  };
  ASSERT_TRUE(OpenCorrupt(Img)) << "the uncorrupted file must serve";

  sweep(Img, 5100, OpenCorrupt, "store tryOpenFile");
}

// Paged containers (manifest version 2): the per-function page table is
// attacker-controlled input too. Seeded corruption of the whole image
// must stay recoverable through load, whole-function assembly, and
// page-granular spans.
TEST(FaultInjection, PagedStoreContainerSurvivesCorruption) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  for (const char *Chain : {"flate", "brisc+flate"}) {
    std::string Err;
    store::StoreOptions SO;
    SO.PageTargetBytes = 64; // Many small pages: a dense page table.
    std::unique_ptr<store::CodeStore> Built =
        store::CodeStore::build(P, Chain, SO, Err);
    ASSERT_NE(Built, nullptr) << Chain << ": " << Err;
    std::vector<uint8_t> Img = Built->save();

    auto FaultAllSpans = [](Result<std::unique_ptr<store::CodeStore>> L) {
      if (!L.ok())
        return false;
      std::unique_ptr<store::CodeStore> S = L.take();
      for (uint32_t I = 0; I != S->functionCount(); ++I) {
        if (!S->fault(I).ok())
          return false;
        if (!S->faultSpan(I, 0).ok())
          return false;
      }
      return true;
    };
    ASSERT_TRUE(
        FaultAllSpans(store::CodeStore::tryLoad(Img, store::StoreOptions())))
        << Chain << ": the uncorrupted paged image must serve";

    sweep(Img, 5200, [&](const std::vector<uint8_t> &Bad) {
      return FaultAllSpans(
          store::CodeStore::tryLoad(Bad, store::StoreOptions()));
    }, "paged store tryLoad");
  }
}

namespace {

/// Packs a crafted version-2 (paged) store manifest plus \p NumFrames
/// junk frames into a flate container, for targeted page-table attacks.
/// \p BodyTag is 1 for fixed-code chains (flate), 0 for function images.
std::vector<uint8_t>
craftedPagedImage(const std::function<void(ByteWriter &)> &WriteFuncs,
                  size_t NumFrames, const std::string &Chain = "flate",
                  uint8_t BodyTag = 1) {
  ByteWriter W;
  W.writeU32(0x4D534343); // CCSM
  W.writeU8(2);           // paged manifest version
  W.writeU8(BodyTag);
  W.writeVarU(0); // Entry
  W.writeVarU(0); // GlobalBase
  W.writeVarU(0); // GlobalEnd
  W.writeVarU(0); // no globals
  WriteFuncs(W);
  std::vector<std::vector<uint8_t>> Frames;
  Frames.push_back(W.take());
  for (size_t I = 0; I != NumFrames; ++I)
    Frames.push_back({1, 2, 3}); // Junk every codec rejects.
  return pipeline::packContainer(Chain, Frames);
}

} // namespace

// Hand-built page-table attacks: truncated tables, out-of-range page
// extents, and reserve-bomb counts must all surface as typed errors —
// at load where the manifest itself is inconsistent, at fault where
// only the frame bytes can prove the lie — and never abort or allocate
// ahead of decoded content. The asan preset runs these with the
// allocator checked.
TEST(FaultInjection, PagedManifestRejectsCraftedAttacks) {
  store::StoreOptions SO;

  auto ExpectLoadFails = [&](const std::vector<uint8_t> &Img,
                             const char *Needle) {
    Result<std::unique_ptr<store::CodeStore>> L = store::CodeStore::tryLoad(Img, SO);
    ASSERT_FALSE(L.ok()) << Needle;
    EXPECT_NE(L.error().message().find(Needle), std::string::npos)
        << L.error().message();
  };

  // Truncated page table: the function claims two pages, the manifest
  // ends after the first entry.
  ExpectLoadFails(craftedPagedImage(
                      [](ByteWriter &W) {
                        W.writeVarU(1); // one function
                        W.writeStr("f");
                        W.writeVarU(0); // FrameSize
                        W.writeVarU(4); // CodeLen
                        W.writeVarU(0); // no labels
                        W.writeVarU(2); // two pages...
                        W.writeVarU(2); // ...but only one entry
                      },
                      2),
                  "past end");

  // Reserve-bomb page count.
  ExpectLoadFails(craftedPagedImage(
                      [](ByteWriter &W) {
                        W.writeVarU(1);
                        W.writeStr("f");
                        W.writeVarU(0);
                        W.writeVarU(4);
                        W.writeVarU(0);
                        W.writeVarU(uint64_t(1) << 50); // page count bomb
                      },
                      1),
                  "inflated page count");

  // A page extending past the function.
  ExpectLoadFails(craftedPagedImage(
                      [](ByteWriter &W) {
                        W.writeVarU(1);
                        W.writeStr("f");
                        W.writeVarU(0);
                        W.writeVarU(4); // CodeLen 4
                        W.writeVarU(0);
                        W.writeVarU(1);
                        W.writeVarU(10); // one 10-instruction page
                      },
                      1),
                  "overruns the function");

  // A page table that stops short of the function's end.
  ExpectLoadFails(craftedPagedImage(
                      [](ByteWriter &W) {
                        W.writeVarU(1);
                        W.writeStr("f");
                        W.writeVarU(0);
                        W.writeVarU(4);
                        W.writeVarU(0);
                        W.writeVarU(1);
                        W.writeVarU(2); // covers 2 of 4 instructions
                      },
                      1),
                  "does not cover");

  // An empty page inside a nonempty function.
  ExpectLoadFails(craftedPagedImage(
                      [](ByteWriter &W) {
                        W.writeVarU(1);
                        W.writeStr("f");
                        W.writeVarU(0);
                        W.writeVarU(4);
                        W.writeVarU(0);
                        W.writeVarU(2);
                        W.writeVarU(0); // empty page
                        W.writeVarU(4);
                      },
                      2),
                  "empty page");

  // A branch label landing past the function's end.
  ExpectLoadFails(craftedPagedImage(
                      [](ByteWriter &W) {
                        W.writeVarU(1);
                        W.writeStr("f");
                        W.writeVarU(0);
                        W.writeVarU(4);
                        W.writeVarU(1);
                        W.writeVarU(9); // label at 9 of 4
                        W.writeVarU(1);
                        W.writeVarU(4);
                      },
                      1),
                  "label past the end");

  // A page-label rank pointing outside the function's label table
  // (image chains only).
  ExpectLoadFails(craftedPagedImage(
                      [](ByteWriter &W) {
                        W.writeVarU(1);
                        W.writeStr("f");
                        W.writeVarU(0);
                        W.writeVarU(2);
                        W.writeVarU(1);
                        W.writeVarU(0); // one label, at 0
                        W.writeVarU(1);
                        W.writeVarU(2); // one 2-instruction page
                        W.writeVarU(1);
                        W.writeVarU(5); // page label 5 of 1
                      },
                      1, "brisc", /*BodyTag=*/0),
                  "page label out of range");

  // Page count disagreeing with the container's frame count.
  ExpectLoadFails(craftedPagedImage(
                      [](ByteWriter &W) {
                        W.writeVarU(1);
                        W.writeStr("f");
                        W.writeVarU(0);
                        W.writeVarU(4);
                        W.writeVarU(0);
                        W.writeVarU(1);
                        W.writeVarU(4);
                      },
                      3),
                  "does not match");

  // A consistent-but-absurd page table (2^31 instructions in one page)
  // parses, but faulting it must fail typed on the junk frame without
  // allocating 2^31 instructions first.
  {
    std::vector<uint8_t> Img = craftedPagedImage(
        [](ByteWriter &W) {
          W.writeVarU(1);
          W.writeStr("f");
          W.writeVarU(0);
          W.writeVarU(uint64_t(1) << 31);
          W.writeVarU(0);
          W.writeVarU(1);
          W.writeVarU(uint64_t(1) << 31);
        },
        1);
    Result<std::unique_ptr<store::CodeStore>> L =
        store::CodeStore::tryLoad(Img, SO);
    ASSERT_TRUE(L.ok()) << L.error().message();
    std::unique_ptr<store::CodeStore> S = L.take();
    Result<std::shared_ptr<const vm::VMFunction>> F = S->fault(0);
    ASSERT_FALSE(F.ok());
    Result<vm::CodeSpan> Sp = S->faultSpan(0, 5);
    ASSERT_FALSE(Sp.ok());
    EXPECT_EQ(S->stats().DecodeErrors, 2u);
  }
}

// Manifest v3 carries a content-hash claim at a fixed offset (bytes
// [6,14) of the manifest frame). A doctored or corrupt claim is exactly
// the cross-tenant attack the shared FrameRegistry must refuse: keyed
// into another module's hash it could poison that module's resident
// frames. The contract is a recoverable *typed* error at shared load —
// and a still-working private load, whose registry serves only itself.
TEST(FaultInjection, ManifestHashClaimCorruptionIsTypedNeverPoisoning) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  std::vector<uint8_t> Img = storeImage(P, "brisc+flate");

  Result<pipeline::Container> Unpacked = pipeline::tryUnpackContainer(Img);
  ASSERT_TRUE(Unpacked.ok());
  pipeline::Container Box = Unpacked.take();
  ASSERT_GE(Box.Frames[0].size(), 15u);

  // Deterministic claim corruptions: single bit flips across every
  // claim byte, a zeroed claim, and an all-ones claim.
  std::vector<std::vector<uint8_t>> BadClaims;
  for (size_t Byte = 6; Byte != 14; ++Byte)
    for (unsigned Bit = 0; Bit < 8; Bit += 3) {
      std::vector<uint8_t> M = Box.Frames[0];
      M[Byte] ^= static_cast<uint8_t>(1u << Bit);
      BadClaims.push_back(std::move(M));
    }
  {
    std::vector<uint8_t> Zero = Box.Frames[0];
    std::fill(Zero.begin() + 6, Zero.begin() + 14, 0);
    BadClaims.push_back(std::move(Zero));
    std::vector<uint8_t> Ones = Box.Frames[0];
    std::fill(Ones.begin() + 6, Ones.begin() + 14, 0xFF);
    BadClaims.push_back(std::move(Ones));
  }

  auto Reg = std::make_shared<store::FrameRegistry>();
  for (const std::vector<uint8_t> &M : BadClaims) {
    std::vector<std::vector<uint8_t>> Frames = Box.Frames;
    Frames[0] = M;
    std::vector<uint8_t> Bad = pipeline::packContainer(Box.ChainSpec, Frames);

    store::StoreOptions Shared;
    Shared.SharedRegistry = Reg;
    Result<std::unique_ptr<store::CodeStore>> L =
        store::CodeStore::tryLoad(Bad, Shared);
    ASSERT_FALSE(L.ok()) << "a corrupt hash claim joined a shared registry";
    EXPECT_NE(L.error().message().find("refusing to join"), std::string::npos)
        << L.error().message();

    // The same bytes load privately and every function still serves:
    // the frames are intact, only the claim lied.
    ASSERT_TRUE(faultAll(store::CodeStore::tryLoad(Bad, store::StoreOptions())));
  }

  // Nothing above touched the registry: the genuine module joins it
  // afterwards and decodes from scratch, unpoisoned.
  EXPECT_EQ(Reg->stats().Modules, 0u);
  EXPECT_EQ(Reg->stats().Decodes, 0u);
  store::StoreOptions Shared;
  Shared.SharedRegistry = Reg;
  Result<std::unique_ptr<store::CodeStore>> Good =
      store::CodeStore::tryLoad(Img, Shared);
  ASSERT_TRUE(Good.ok()) << Good.error().message();
  Result<std::shared_ptr<const vm::VMFunction>> F = Good.value()->fault(0);
  ASSERT_TRUE(F.ok());
  EXPECT_EQ(F.value()->Code.size(), P.Functions[0].Code.size());

  // An unknown v3 flag bit is a typed parse error, not a guess.
  {
    std::vector<std::vector<uint8_t>> Frames = Box.Frames;
    Frames[0][5] |= 0x80;
    std::vector<uint8_t> Bad = pipeline::packContainer(Box.ChainSpec, Frames);
    Result<std::unique_ptr<store::CodeStore>> L =
        store::CodeStore::tryLoad(Bad, store::StoreOptions());
    ASSERT_FALSE(L.ok());
    EXPECT_NE(L.error().message().find("unknown manifest flags"),
              std::string::npos);
  }
}

// Seeded corruption sweep against a *shared* registry: whatever the
// corruption does to a v3 container — truncation, bit flips, garbage
// runs — the outcome is load-and-serve or a typed error, and the good
// tenant that shares the registry keeps executing correctly the whole
// time. Run under the asan preset to have the allocator checked.
TEST(FaultInjection, SharedRegistryLoadSurvivesContainerCorruption) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  std::vector<uint8_t> Img = storeImage(P, "brisc+flate");

  auto Reg = std::make_shared<store::FrameRegistry>();
  store::StoreOptions Shared;
  Shared.SharedRegistry = Reg;

  // The resident good tenant whose frames a corrupt load must not reach.
  Result<std::unique_ptr<store::CodeStore>> GoodL =
      store::CodeStore::tryLoad(Img, Shared);
  ASSERT_TRUE(GoodL.ok()) << GoodL.error().message();
  std::unique_ptr<store::CodeStore> Good = GoodL.take();
  Result<std::shared_ptr<const vm::VMFunction>> Baseline = Good->fault(0);
  ASSERT_TRUE(Baseline.ok());

  sweep(Img, 5300, [&](const std::vector<uint8_t> &Bad) {
    return faultAll(store::CodeStore::tryLoad(Bad, Shared));
  }, "store tryLoad (shared registry)");

  // Whatever corrupt containers managed to load registered under their
  // *own* computed hashes: the good module's resident frame is still
  // the same object, byte for byte.
  Result<std::shared_ptr<const vm::VMFunction>> After = Good->fault(0);
  ASSERT_TRUE(After.ok());
  EXPECT_EQ(After.value().get(), Baseline.value().get())
      << "a corrupt container displaced a good tenant's resident frame";
  EXPECT_EQ(After.value()->Code.size(), P.Functions[0].Code.size());
}

// A corrupt length prefix must never turn into an allocation: every
// claimed frame size is validated against the real file size before any
// buffer is reserved (the reserve-bomb check).
TEST(FaultInjection, FileSourceRejectsReserveBombs) {
  const std::string Path = testing::TempDir() + "ccomp_bomb.ccpk";
  auto WriteAndOpen = [&](const std::vector<uint8_t> &Bytes) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
    Out.close();
    return store::FileFrameSource::open(Path);
  };

  // A container whose one frame claims to be ~1 TiB.
  ByteWriter Bomb;
  Bomb.writeU32(0x4B504343); // CCPK
  Bomb.writeStr("flate");
  Bomb.writeVarU(2);                  // manifest + 1 function frame
  Bomb.writeVarU(uint64_t(1) << 40);  // manifest "length"
  Bomb.writeU8(0);
  Result<std::unique_ptr<store::FileFrameSource>> R =
      WriteAndOpen(Bomb.bytes());
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("overruns"), std::string::npos)
      << R.error().message();

  // A frame count far beyond what the file could hold.
  ByteWriter Count;
  Count.writeU32(0x4B504343);
  Count.writeStr("flate");
  Count.writeVarU(uint64_t(1) << 50);
  Result<std::unique_ptr<store::FileFrameSource>> R2 =
      WriteAndOpen(Count.bytes());
  ASSERT_FALSE(R2.ok());
  EXPECT_NE(R2.error().message().find("frame count"), std::string::npos)
      << R2.error().message();
}

//===----------------------------------------------------------------------===//
// Execution-trace sidecar (CCPF) + profiled layout table
//===----------------------------------------------------------------------===//

// The profile sidecar decoder under the same seeded sweep as every
// other delivery format: corrupt CCPF bytes either deserialize cleanly
// or fail typed, never crash or over-allocate (asan preset checks the
// latter).
TEST(FaultInjection, ProfileSidecarSurvivesCorruption) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  store::TraceRunResult R = store::recordTrace(P);
  ASSERT_TRUE(R.Run.Ok) << R.Run.Trap;
  ASSERT_FALSE(R.Trace.Events.empty());
  std::vector<uint8_t> Bytes = R.Trace.serialize();

  Result<pipeline::ExecutionTrace> Clean =
      pipeline::ExecutionTrace::tryDeserialize(Bytes);
  ASSERT_TRUE(Clean.ok()) << Clean.error().message();
  ASSERT_TRUE(Clean.value().Events == R.Trace.Events);

  sweep(Bytes, 7100, [](const std::vector<uint8_t> &Bad) {
    return pipeline::ExecutionTrace::tryDeserialize(Bad).ok();
  }, "profile sidecar");
}

// Hand-built sidecar attacks: each malformation the decoder guards
// against must surface as a typed, recoverable error naming the
// problem.
TEST(FaultInjection, ProfileSidecarRejectsCraftedAttacks) {
  auto ExpectFails = [](const std::vector<uint8_t> &Bytes,
                        const char *Needle) {
    Result<pipeline::ExecutionTrace> R =
        pipeline::ExecutionTrace::tryDeserialize(Bytes);
    ASSERT_FALSE(R.ok()) << Needle;
    EXPECT_NE(R.error().message().find(Needle), std::string::npos)
        << R.error().message();
  };
  auto Header = [](uint8_t Version, uint8_t Flags) {
    ByteWriter W;
    W.writeU32(0x46504343); // CCPF
    W.writeU8(Version);
    W.writeU8(Flags);
    return W;
  };

  // Wrong magic.
  {
    ByteWriter W;
    W.writeU32(0x4B504343); // CCPK, not CCPF
    ExpectFails(W.take(), "bad magic");
  }
  // Unknown version and unknown flag bits.
  {
    ByteWriter W = Header(9, 0);
    ExpectFails(W.take(), "unsupported version");
  }
  {
    ByteWriter W = Header(1, 0x80);
    ExpectFails(W.take(), "unknown flag bits");
  }
  // Truncated trace: the header promises events the bytes don't hold
  // (a count small enough to slip past the reserve-bomb check).
  {
    ByteWriter W = Header(1, 0);
    W.writeVarU(4); // FuncCount
    W.writeVarU(3); // EventCount
    W.writeVarU(1); // event 0: Fn...
    W.writeVarU(0); // ...Idx — then the buffer ends two events short.
    ExpectFails(W.take(), "past end");
  }
  // Reserve bomb: an event count no buffer this size could encode.
  {
    ByteWriter W = Header(1, 0);
    W.writeVarU(4);
    W.writeVarU(uint64_t(1) << 50);
    ExpectFails(W.take(), "inflated event count");
  }
  // Event function out of range.
  {
    ByteWriter W = Header(1, 0);
    W.writeVarU(4); // FuncCount
    W.writeVarU(1);
    W.writeVarU(7); // Fn 7 >= FuncCount 4
    W.writeVarU(0);
    ExpectFails(W.take(), "function out of range");
  }
  // Block index out of range (beyond any real function body).
  {
    ByteWriter W = Header(1, 0);
    W.writeVarU(4);
    W.writeVarU(1);
    W.writeVarU(0);
    W.writeVarU(uint64_t(1) << 30);
    ExpectFails(W.take(), "block index out of range");
  }
  // Trailing bytes after the last event.
  {
    ByteWriter W = Header(1, 0);
    W.writeVarU(4);
    W.writeVarU(1);
    W.writeVarU(0);
    W.writeVarU(0);
    W.writeU8(0xEE);
    ExpectFails(W.take(), "trailing bytes");
  }
}

// The layout table a *profiled* build writes into the manifest gets the
// same corruption sweep as the source-order one: a trace-guided page
// table is just data, and a corrupted copy must fail typed at load or
// at fault, never crash.
TEST(FaultInjection, ProfiledLayoutTableSurvivesCorruption) {
  vm::VMProgram P = buildVM(syntheticSource(8));
  store::TraceRunResult R = store::recordTrace(P);
  ASSERT_TRUE(R.Run.Ok) << R.Run.Trap;

  std::string Err;
  store::StoreOptions SO;
  SO.PageTargetBytes = 64;
  SO.Profile = &R.Trace;
  std::unique_ptr<store::CodeStore> Built =
      store::CodeStore::build(P, "flate", SO, Err);
  ASSERT_NE(Built, nullptr) << Err;
  std::vector<uint8_t> Img = Built->save();

  auto FaultAllSpans = [](Result<std::unique_ptr<store::CodeStore>> L) {
    if (!L.ok())
      return false;
    std::unique_ptr<store::CodeStore> S = L.take();
    for (uint32_t I = 0; I != S->functionCount(); ++I) {
      if (!S->fault(I).ok())
        return false;
      if (!S->faultSpan(I, 0).ok())
        return false;
    }
    return true;
  };
  ASSERT_TRUE(
      FaultAllSpans(store::CodeStore::tryLoad(Img, store::StoreOptions())))
      << "the uncorrupted profiled image must serve";

  sweep(Img, 7200, [&](const std::vector<uint8_t> &Bad) {
    return FaultAllSpans(
        store::CodeStore::tryLoad(Bad, store::StoreOptions()));
  }, "profiled layout table");
}

//===----------------------------------------------------------------------===//
// Harness self-checks
//===----------------------------------------------------------------------===//

TEST(FaultInjection, FaultsAreDeterministic) {
  std::vector<uint8_t> Buf(256);
  for (size_t I = 0; I != Buf.size(); ++I)
    Buf[I] = static_cast<uint8_t>(I);
  FaultInjector A(7), Bi(7);
  for (int I = 0; I != 64; ++I) {
    Fault FA = A.plan(Buf.size());
    Fault FB = Bi.plan(Buf.size());
    EXPECT_EQ(FA.str(), FB.str());
    EXPECT_EQ(applyFault(Buf, FA), applyFault(Buf, FB));
  }
}

TEST(FaultInjection, EveryFaultKindOccursAndMutates) {
  std::vector<uint8_t> Buf(512, 0xAB);
  FaultInjector FI(11);
  unsigned SeenMutation[6] = {};
  for (int I = 0; I != 120; ++I) {
    Fault F = FI.plan(Buf.size());
    if (applyFault(Buf, F) != Buf)
      ++SeenMutation[static_cast<unsigned>(F.Kind)];
  }
  for (unsigned K = 0; K != 6; ++K)
    EXPECT_GT(SeenMutation[K], 0u)
        << "kind " << faultKindName(static_cast<FaultKind>(K))
        << " never changed the buffer";
}

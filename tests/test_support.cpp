//===- tests/test_support.cpp - Bit I/O, Huffman, MTF, varints ---------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/BWT.h"
#include "support/BitStream.h"
#include "support/ByteIO.h"
#include "support/Error.h"
#include "support/Huffman.h"
#include "support/MTF.h"
#include "support/PRNG.h"
#include "support/Support.h"

#include "gtest/gtest.h"

using namespace ccomp;

TEST(BitStream, RoundTripFixedPatterns) {
  BitWriter W;
  W.writeBits(0b101, 3);
  W.writeBits(0xFFFF, 16);
  W.writeBits(0, 1);
  W.writeBits(0x12345678, 32);
  std::vector<uint8_t> B = W.finish();
  BitReader R(B);
  EXPECT_EQ(R.readBits(3), 0b101u);
  EXPECT_EQ(R.readBits(16), 0xFFFFu);
  EXPECT_EQ(R.readBits(1), 0u);
  EXPECT_EQ(R.readBits(32), 0x12345678u);
}

TEST(BitStream, RandomRoundTrip) {
  PRNG Rng(7);
  std::vector<std::pair<uint32_t, unsigned>> Items;
  BitWriter W;
  for (int I = 0; I != 10000; ++I) {
    unsigned N = 1 + Rng.below(32);
    uint32_t V = static_cast<uint32_t>(Rng.next()) &
                 (N >= 32 ? 0xFFFFFFFFu : ((1u << N) - 1));
    Items.push_back({V, N});
    W.writeBits(V, N);
  }
  std::vector<uint8_t> B = W.finish();
  BitReader R(B);
  for (auto [V, N] : Items)
    ASSERT_EQ(R.readBits(N), V);
}

TEST(ByteIO, VarIntRoundTrip) {
  ByteWriter W;
  std::vector<int64_t> Signed = {0, 1, -1, 63, -64, 64, -65, 1 << 20,
                                 -(1 << 20), INT64_MAX, INT64_MIN};
  for (int64_t V : Signed)
    W.writeVarS(V);
  std::vector<uint64_t> Unsigned = {0, 127, 128, 1u << 14, UINT64_MAX};
  for (uint64_t V : Unsigned)
    W.writeVarU(V);
  W.writeStr("hello world");
  ByteReader R(W.bytes());
  for (int64_t V : Signed)
    EXPECT_EQ(R.readVarS(), V);
  for (uint64_t V : Unsigned)
    EXPECT_EQ(R.readVarU(), V);
  EXPECT_EQ(R.readStr(), "hello world");
  EXPECT_TRUE(R.atEnd());
}

TEST(Huffman, SingleSymbol) {
  std::vector<uint64_t> Freq = {0, 10, 0};
  std::vector<uint8_t> Lens = buildHuffmanLengths(Freq);
  EXPECT_EQ(Lens[1], 1);
  HuffmanCode Code(Lens);
  BitWriter W;
  for (int I = 0; I != 5; ++I)
    Code.encode(W, 1);
  std::vector<uint8_t> B = W.finish();
  BitReader R(B);
  for (int I = 0; I != 5; ++I)
    EXPECT_EQ(Code.decode(R), 1u);
}

TEST(Huffman, SkewedFrequenciesGiveShortCodes) {
  std::vector<uint64_t> Freq = {1000, 10, 10, 1};
  std::vector<uint8_t> Lens = buildHuffmanLengths(Freq);
  EXPECT_LE(Lens[0], Lens[1]);
  EXPECT_LE(Lens[1], Lens[3]);
}

TEST(Huffman, RandomRoundTrip) {
  PRNG Rng(99);
  for (int Trial = 0; Trial != 20; ++Trial) {
    unsigned Alphabet = 2 + Rng.below(300);
    std::vector<uint64_t> Freq(Alphabet, 0);
    std::vector<unsigned> Data;
    for (int I = 0; I != 2000; ++I) {
      // Zipf-ish skew.
      unsigned S = static_cast<unsigned>(Rng.below(Alphabet));
      S = S * S / Alphabet;
      Data.push_back(S);
      ++Freq[S];
    }
    HuffmanCode Code(buildHuffmanLengths(Freq, 15));
    BitWriter W;
    for (unsigned S : Data)
      Code.encode(W, S);
    std::vector<uint8_t> B = W.finish();
    BitReader R(B);
    for (unsigned S : Data)
      ASSERT_EQ(Code.decode(R), S);
  }
}

TEST(Huffman, LengthLimitRespected) {
  // Fibonacci-like frequencies force deep trees; the limiter must cap
  // them at the requested depth while staying decodable.
  std::vector<uint64_t> Freq;
  uint64_t A = 1, B = 1;
  for (int I = 0; I != 40; ++I) {
    Freq.push_back(A);
    uint64_t T = A + B;
    A = B;
    B = T;
  }
  std::vector<uint8_t> Lens = buildHuffmanLengths(Freq, 12);
  for (uint8_t L : Lens)
    EXPECT_LE(L, 12);
  EXPECT_TRUE(HuffmanCode::isValidLengthSet(Lens));
}

TEST(MTF, PaperExample) {
  // The ADDRLP stream example from section 3: [72 72 68 72 68 68 68 68]
  // MTF-codes to [0 1 0 2 2 1 1 1].
  std::vector<uint64_t> Stream = {72, 72, 68, 72, 68, 68, 68, 68};
  std::vector<uint32_t> Expect = {0, 1, 0, 2, 2, 1, 1, 1};
  MTFEncoder Enc;
  for (size_t I = 0; I != Stream.size(); ++I) {
    MTFToken T = Enc.encode(Stream[I]);
    EXPECT_EQ(T.Index, Expect[I]) << "position " << I;
  }
}

TEST(MTF, RoundTrip) {
  PRNG Rng(3);
  MTFEncoder Enc;
  MTFDecoder Dec;
  for (int I = 0; I != 5000; ++I) {
    uint64_t V = Rng.below(50); // Small alphabet forces table reuse.
    MTFToken T = Enc.encode(V);
    EXPECT_EQ(Dec.decode(T.Index, T.NewSymbol), V);
  }
}

TEST(MTF, LocalityYieldsSmallIndices) {
  // A stream with high locality should produce mostly tiny indices.
  MTFEncoder Enc;
  uint64_t Sum = 0;
  unsigned N = 0;
  for (int Rep = 0; Rep != 100; ++Rep)
    for (uint64_t V : {5, 5, 5, 9, 5, 9, 9, 5}) {
      Sum += Enc.encode(V).Index;
      ++N;
    }
  EXPECT_LT(Sum / double(N), 2.0);
}

TEST(ByteIO, ReadPastEndThrowsDecodeError) {
  std::vector<uint8_t> Buf = {1, 2};
  ByteReader R(Buf);
  EXPECT_EQ(R.readU8(), 1u);
  EXPECT_EQ(R.readU8(), 2u);
  EXPECT_THROW(R.readU8(), DecodeError);
}

TEST(ByteIO, ReadStrHugeLengthRejectedWithoutOverflow) {
  // Regression: a length prefix near UINT64_MAX made the old bounds
  // check `Pos + Len > N` wrap around and pass, then read out of
  // bounds. The reader must reject it with a typed error instead.
  ByteWriter W;
  W.writeVarU(UINT64_MAX - 2);
  W.writeU8('x');
  ByteReader R(W.bytes());
  EXPECT_THROW(R.readStr(), DecodeError);

  std::vector<uint8_t> One = {'x'};
  ByteReader R2(One);
  EXPECT_THROW(R2.readBytes(UINT64_MAX - 2), DecodeError);
}

TEST(ByteIO, MalformedVarIntRejected) {
  // Ten continuation bytes exceed the 64-bit varint limit.
  std::vector<uint8_t> Buf(10, 0xFF);
  ByteReader R(Buf);
  EXPECT_THROW(R.readVarU(), DecodeError);
  // Truncated mid-varint (continuation bit set on the last byte).
  std::vector<uint8_t> Cut = {0x80};
  ByteReader R2(Cut);
  EXPECT_THROW(R2.readVarU(), DecodeError);
}

TEST(BitStream, ReadPastEndThrowsDecodeError) {
  BitWriter W;
  W.writeBits(0x5, 3);
  std::vector<uint8_t> B = W.finish();
  BitReader R(B);
  (void)R.readBits(8); // Padding bits of the final byte are readable.
  EXPECT_THROW(R.readBits(8), DecodeError);
}

TEST(BitStreamDeath, WriteBitsCountOutOfRangeAbortsInEveryBuild) {
  // Regression: in release builds an assert-only check let NBits > 32
  // silently corrupt the stream (mis-decode, no diagnostic). This must
  // abort regardless of NDEBUG.
  BitWriter W;
  EXPECT_DEATH(W.writeBits(0, 33), "bit count out of range");
}

TEST(HuffmanDeath, EncodingCodelessSymbolAbortsInEveryBuild) {
  // Regression: encoding a symbol with no assigned code emitted zero
  // bits in release builds, producing a stream that decodes to the
  // wrong symbol sequence. This must abort regardless of NDEBUG.
  std::vector<uint64_t> Freq = {10, 10, 0};
  HuffmanCode Code(buildHuffmanLengths(Freq));
  BitWriter W;
  EXPECT_DEATH(Code.encode(W, 2), "no code");
  EXPECT_DEATH(Code.encode(W, 99), "no code");
}

TEST(Huffman, DecodeInvalidCodeThrowsDecodeError) {
  // A code table over symbols {0,1} never assigns the all-ones deep
  // codeword that a corrupt stream can contain.
  std::vector<uint64_t> Freq = {1000, 1};
  HuffmanCode Code(buildHuffmanLengths(Freq));
  std::vector<uint8_t> Ones(8, 0xFF);
  BitReader R(Ones);
  // Either decodes (both codes are 1 bit) or throws at end of stream;
  // drain it and require the typed error, never a crash.
  EXPECT_THROW(
      {
        for (int I = 0; I != 100; ++I)
          (void)Code.decode(R);
      },
      DecodeError);
}

TEST(MTF, DecodeOutOfRangeIndexThrowsDecodeError) {
  MTFDecoder Dec;
  (void)Dec.decode(0, 7); // Table now holds one symbol.
  EXPECT_THROW(Dec.decode(5, 0), DecodeError);
}

TEST(MTF, DecoderCapsTableGrowth) {
  // Regression: a hostile stream of Index==0 tokens grew the decoder
  // table without bound. The cap must reject the first token past it
  // with a typed error, not allocate.
  MTFDecoder Dec(4);
  for (uint64_t V = 0; V != 4; ++V)
    EXPECT_EQ(Dec.decode(0, V), V);
  EXPECT_EQ(Dec.tableSize(), 4u);
  try {
    Dec.decode(0, 99);
    FAIL() << "cap not enforced";
  } catch (const DecodeError &E) {
    EXPECT_NE(std::string(E.what()).find("table size cap"),
              std::string::npos);
  }
  // Table-addressing tokens still work at the cap.
  EXPECT_EQ(Dec.decode(4, 0), 0u);
}

TEST(MTF, DecoderRejectsDuplicateNewSymbol) {
  // The encoder never re-announces a seen symbol (it addresses the
  // table instead), so a duplicate "new symbol" token only occurs in a
  // corrupt or hostile stream and must be a typed reject.
  MTFDecoder Dec;
  EXPECT_EQ(Dec.decode(0, 7), 7u);
  EXPECT_EQ(Dec.decode(0, 9), 9u);
  try {
    Dec.decode(0, 7);
    FAIL() << "duplicate accepted";
  } catch (const DecodeError &E) {
    EXPECT_NE(std::string(E.what()).find("duplicate new-symbol"),
              std::string::npos);
  }
}

TEST(BWT, KnownTransformAndRoundTrip) {
  const std::string S = "banana";
  std::vector<uint8_t> In(S.begin(), S.end());
  BWTResult R = bwtForward(ByteSpan(In.data(), In.size()));
  EXPECT_EQ(std::string(R.LastCol.begin(), R.LastCol.end()), "nnbaaa");
  EXPECT_EQ(bwtInverse(R.LastCol, R.Primary), In);
}

TEST(BWT, RandomAndPeriodicRoundTrip) {
  PRNG Rng(11);
  for (int Trial = 0; Trial != 30; ++Trial) {
    size_t N = Rng.below(400);
    std::vector<uint8_t> In(N);
    for (uint8_t &B : In)
      B = static_cast<uint8_t>(Rng.below(Trial % 3 ? 256 : 4));
    BWTResult R = bwtForward(ByteSpan(In.data(), In.size()));
    ASSERT_EQ(bwtInverse(R.LastCol, R.Primary), In) << "trial " << Trial;
  }
  // Periodic inputs have identical rotations; the index tie-break must
  // keep the transform deterministic and invertible all the same.
  std::vector<uint8_t> Periodic;
  for (int I = 0; I != 64; ++I)
    Periodic.push_back(I % 2 ? 0xAB : 0xCD);
  BWTResult A = bwtForward(ByteSpan(Periodic.data(), Periodic.size()));
  BWTResult B = bwtForward(ByteSpan(Periodic.data(), Periodic.size()));
  EXPECT_EQ(A.LastCol, B.LastCol);
  EXPECT_EQ(A.Primary, B.Primary);
  EXPECT_EQ(bwtInverse(A.LastCol, A.Primary), Periodic);
}

TEST(BWT, InverseRejectsBadPrimary) {
  std::vector<uint8_t> Col = {1, 2, 3};
  EXPECT_THROW(bwtInverse(Col, 3), DecodeError);
  EXPECT_THROW(bwtInverse({}, 1), DecodeError);
  EXPECT_TRUE(bwtInverse({}, 0).empty());
}

TEST(Support, ParseUnsignedAcceptsStrictDecimalInRange) {
  uint64_t V = 77;
  EXPECT_TRUE(parseUnsigned("0", 0, 10, V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(parseUnsigned("1024", 1, 4096, V));
  EXPECT_EQ(V, 1024u);
  EXPECT_TRUE(parseUnsigned("18446744073709551615", 0, UINT64_MAX, V));
  EXPECT_EQ(V, UINT64_MAX);
}

TEST(Support, ParseUnsignedRejectsGarbageRangeAndOverflow) {
  // Regression: the CLI used atoi, which maps "4x" to 4, "-3" to a
  // negative surprise, and overflow to UB. The replacement must reject
  // every shape and leave the output untouched.
  uint64_t V = 77;
  EXPECT_FALSE(parseUnsigned("", 0, 10, V));
  EXPECT_FALSE(parseUnsigned(nullptr, 0, 10, V));
  EXPECT_FALSE(parseUnsigned("-3", 0, 10, V));
  EXPECT_FALSE(parseUnsigned("4x", 0, 10, V));
  EXPECT_FALSE(parseUnsigned(" 4", 0, 10, V));
  EXPECT_FALSE(parseUnsigned("0x10", 0, 100, V));
  EXPECT_FALSE(parseUnsigned("11", 0, 10, V));
  EXPECT_FALSE(parseUnsigned("0", 1, 10, V));
  EXPECT_FALSE(parseUnsigned("18446744073709551616", 0, UINT64_MAX, V));
  EXPECT_FALSE(parseUnsigned("99999999999999999999999", 0, UINT64_MAX, V));
  EXPECT_EQ(V, 77u);
}

TEST(PRNG, Deterministic) {
  PRNG A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  PRNG C(43);
  bool Different = false;
  PRNG A2(42);
  for (int I = 0; I != 10; ++I)
    Different |= A2.next() != C.next();
  EXPECT_TRUE(Different);
}

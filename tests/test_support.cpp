//===- tests/test_support.cpp - Bit I/O, Huffman, MTF, varints ---------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/BitStream.h"
#include "support/ByteIO.h"
#include "support/Huffman.h"
#include "support/MTF.h"
#include "support/PRNG.h"

#include "gtest/gtest.h"

using namespace ccomp;

TEST(BitStream, RoundTripFixedPatterns) {
  BitWriter W;
  W.writeBits(0b101, 3);
  W.writeBits(0xFFFF, 16);
  W.writeBits(0, 1);
  W.writeBits(0x12345678, 32);
  std::vector<uint8_t> B = W.finish();
  BitReader R(B);
  EXPECT_EQ(R.readBits(3), 0b101u);
  EXPECT_EQ(R.readBits(16), 0xFFFFu);
  EXPECT_EQ(R.readBits(1), 0u);
  EXPECT_EQ(R.readBits(32), 0x12345678u);
}

TEST(BitStream, RandomRoundTrip) {
  PRNG Rng(7);
  std::vector<std::pair<uint32_t, unsigned>> Items;
  BitWriter W;
  for (int I = 0; I != 10000; ++I) {
    unsigned N = 1 + Rng.below(32);
    uint32_t V = static_cast<uint32_t>(Rng.next()) &
                 (N >= 32 ? 0xFFFFFFFFu : ((1u << N) - 1));
    Items.push_back({V, N});
    W.writeBits(V, N);
  }
  std::vector<uint8_t> B = W.finish();
  BitReader R(B);
  for (auto [V, N] : Items)
    ASSERT_EQ(R.readBits(N), V);
}

TEST(ByteIO, VarIntRoundTrip) {
  ByteWriter W;
  std::vector<int64_t> Signed = {0, 1, -1, 63, -64, 64, -65, 1 << 20,
                                 -(1 << 20), INT64_MAX, INT64_MIN};
  for (int64_t V : Signed)
    W.writeVarS(V);
  std::vector<uint64_t> Unsigned = {0, 127, 128, 1u << 14, UINT64_MAX};
  for (uint64_t V : Unsigned)
    W.writeVarU(V);
  W.writeStr("hello world");
  ByteReader R(W.bytes());
  for (int64_t V : Signed)
    EXPECT_EQ(R.readVarS(), V);
  for (uint64_t V : Unsigned)
    EXPECT_EQ(R.readVarU(), V);
  EXPECT_EQ(R.readStr(), "hello world");
  EXPECT_TRUE(R.atEnd());
}

TEST(Huffman, SingleSymbol) {
  std::vector<uint64_t> Freq = {0, 10, 0};
  std::vector<uint8_t> Lens = buildHuffmanLengths(Freq);
  EXPECT_EQ(Lens[1], 1);
  HuffmanCode Code(Lens);
  BitWriter W;
  for (int I = 0; I != 5; ++I)
    Code.encode(W, 1);
  std::vector<uint8_t> B = W.finish();
  BitReader R(B);
  for (int I = 0; I != 5; ++I)
    EXPECT_EQ(Code.decode(R), 1u);
}

TEST(Huffman, SkewedFrequenciesGiveShortCodes) {
  std::vector<uint64_t> Freq = {1000, 10, 10, 1};
  std::vector<uint8_t> Lens = buildHuffmanLengths(Freq);
  EXPECT_LE(Lens[0], Lens[1]);
  EXPECT_LE(Lens[1], Lens[3]);
}

TEST(Huffman, RandomRoundTrip) {
  PRNG Rng(99);
  for (int Trial = 0; Trial != 20; ++Trial) {
    unsigned Alphabet = 2 + Rng.below(300);
    std::vector<uint64_t> Freq(Alphabet, 0);
    std::vector<unsigned> Data;
    for (int I = 0; I != 2000; ++I) {
      // Zipf-ish skew.
      unsigned S = static_cast<unsigned>(Rng.below(Alphabet));
      S = S * S / Alphabet;
      Data.push_back(S);
      ++Freq[S];
    }
    HuffmanCode Code(buildHuffmanLengths(Freq, 15));
    BitWriter W;
    for (unsigned S : Data)
      Code.encode(W, S);
    std::vector<uint8_t> B = W.finish();
    BitReader R(B);
    for (unsigned S : Data)
      ASSERT_EQ(Code.decode(R), S);
  }
}

TEST(Huffman, LengthLimitRespected) {
  // Fibonacci-like frequencies force deep trees; the limiter must cap
  // them at the requested depth while staying decodable.
  std::vector<uint64_t> Freq;
  uint64_t A = 1, B = 1;
  for (int I = 0; I != 40; ++I) {
    Freq.push_back(A);
    uint64_t T = A + B;
    A = B;
    B = T;
  }
  std::vector<uint8_t> Lens = buildHuffmanLengths(Freq, 12);
  for (uint8_t L : Lens)
    EXPECT_LE(L, 12);
  EXPECT_TRUE(HuffmanCode::isValidLengthSet(Lens));
}

TEST(MTF, PaperExample) {
  // The ADDRLP stream example from section 3: [72 72 68 72 68 68 68 68]
  // MTF-codes to [0 1 0 2 2 1 1 1].
  std::vector<uint64_t> Stream = {72, 72, 68, 72, 68, 68, 68, 68};
  std::vector<uint32_t> Expect = {0, 1, 0, 2, 2, 1, 1, 1};
  MTFEncoder Enc;
  for (size_t I = 0; I != Stream.size(); ++I) {
    MTFToken T = Enc.encode(Stream[I]);
    EXPECT_EQ(T.Index, Expect[I]) << "position " << I;
  }
}

TEST(MTF, RoundTrip) {
  PRNG Rng(3);
  MTFEncoder Enc;
  MTFDecoder Dec;
  for (int I = 0; I != 5000; ++I) {
    uint64_t V = Rng.below(50); // Small alphabet forces table reuse.
    MTFToken T = Enc.encode(V);
    EXPECT_EQ(Dec.decode(T.Index, T.NewSymbol), V);
  }
}

TEST(MTF, LocalityYieldsSmallIndices) {
  // A stream with high locality should produce mostly tiny indices.
  MTFEncoder Enc;
  uint64_t Sum = 0;
  unsigned N = 0;
  for (int Rep = 0; Rep != 100; ++Rep)
    for (uint64_t V : {5, 5, 5, 9, 5, 9, 9, 5}) {
      Sum += Enc.encode(V).Index;
      ++N;
    }
  EXPECT_LT(Sum / double(N), 2.0);
}

TEST(PRNG, Deterministic) {
  PRNG A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  PRNG C(43);
  bool Different = false;
  PRNG A2(42);
  for (int I = 0; I != 10; ++I)
    Different |= A2.next() != C.next();
  EXPECT_TRUE(Different);
}

//===- examples/embedded_paging.cpp - Memory-constrained execution -------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Plays out the introduction's memory scenario: a device with a small
// resident code budget runs an application either as native code (more
// pages, paged from slow storage) or as BRISC interpreted in place
// (denser pages plus a resident dictionary). Prints the total-time
// comparison across resident budgets — the embedded-systems use the
// paper mentions ("compress programs to fit within the memory
// requirements of embedded systems").
//
//   $ ./embedded_paging [resident-pages]
//
//===----------------------------------------------------------------------===//

#include "brisc/Brisc.h"
#include "brisc/Interp.h"
#include "corpus/Corpus.h"
#include "codegen/Codegen.h"
#include "minic/Compile.h"
#include "native/Threaded.h"
#include "sim/Paging.h"
#include "vm/Encode.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace ccomp;

int main(int argc, char **argv) {
  unsigned Budget = argc > 1 ? unsigned(std::atoi(argv[1])) : 0;

  std::printf("building the application (wep size class)...\n");
  std::string Src = corpus::sizeClassSource("wep");
  minic::CompileResult CR = minic::compile(Src);
  if (!CR.ok()) {
    std::printf("compile error: %s\n", CR.Error.c_str());
    return 1;
  }
  codegen::Result CG = codegen::generate(*CR.M);

  const uint32_t PageSize = 512;
  vm::CodeLayout Layout = vm::compactLayout(CG.P);
  vm::RunOptions NOpts;
  NOpts.Layout = &Layout;
  NOpts.PageSize = PageSize;
  vm::RunResult NR = vm::runProgram(CG.P, NOpts);

  // The device loads the compressed image from storage: serialize, then
  // parse it back recoverably, as firmware reading flash must (a corrupt
  // image should degrade gracefully, not crash the device).
  std::vector<uint8_t> Image = brisc::compress(CG.P).serialize(true);
  Result<brisc::BriscProgram> Loaded = brisc::BriscProgram::parse(Image);
  if (!Loaded.ok()) {
    std::printf("BRISC image parse failed: %s\n",
                Loaded.error().message().c_str());
    return 1;
  }
  brisc::BriscProgram B = Loaded.take();
  vm::RunOptions BOpts;
  BOpts.PageSize = PageSize;
  vm::RunResult BR = brisc::interpret(B, BOpts);
  if (!NR.Ok || !BR.Ok) {
    std::printf("run failed\n");
    return 1;
  }

  std::printf("code image: native %u B (%llu pages touched), BRISC %zu B "
              "(%llu pages incl. dictionary)\n",
              Layout.TotalBytes, (unsigned long long)NR.PagesTouched,
              B.codeSegmentBytes(), (unsigned long long)BR.PagesTouched);

  // Measured CPU times.
  native::NProgram N = native::generate(CG.P);
  auto T0 = std::chrono::steady_clock::now();
  native::run(N);
  auto T1 = std::chrono::steady_clock::now();
  brisc::interpret(B);
  auto T2 = std::chrono::steady_clock::now();
  double NativeCpu = std::chrono::duration<double>(T1 - T0).count();
  double InterpCpu = std::chrono::duration<double>(T2 - T1).count();

  sim::DiskModel Disk;
  std::printf("\nresident budget sweep (page %u B, fault %.0f ms, "
              "interp/native CPU %.1fx):\n",
              PageSize, Disk.FaultSeconds * 1e3, InterpCpu / NativeCpu);
  std::printf("%10s %14s %14s %10s\n", "pages", "native total s",
              "BRISC total s", "winner");
  for (unsigned R : {4u, 8u, 16u, 32u, 64u, 128u}) {
    if (Budget && R != Budget)
      continue;
    sim::PagingResult PN = sim::simulateLRU(NR.PageTrace, R);
    sim::PagingResult PB = sim::simulateLRU(BR.PageTrace, R);
    double TN = sim::totalTime(NativeCpu, PN, Disk).total();
    double TB = sim::totalTime(InterpCpu, PB, Disk).total();
    std::printf("%10u %14.3f %14.3f %10s\n", R, TN, TB,
                TB < TN ? "BRISC" : "native");
  }
  return 0;
}

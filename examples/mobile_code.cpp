//===- examples/mobile_code.cpp - Server/client mobile-code scenario -----------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Plays out the paper's mobile-code story (section 4): a server compiles
// and compresses an application; a client downloads it over a chosen
// link, expands or JITs it, and runs it. Compares the wire format (best
// for modems) with BRISC (best for LANs with period CPUs) end to end.
//
//   $ ./mobile_code [modem|isdn|lan|fast]
//
//===----------------------------------------------------------------------===//

#include "brisc/Brisc.h"
#include "codegen/Codegen.h"
#include "corpus/Corpus.h"
#include "minic/Compile.h"
#include "native/Threaded.h"
#include "sim/Transport.h"
#include "wire/Wire.h"

#include <chrono>
#include <cstdio>
#include <cstring>

using namespace ccomp;

namespace {

double secondsOf(std::chrono::steady_clock::time_point A,
                 std::chrono::steady_clock::time_point B) {
  return std::chrono::duration<double>(B - A).count();
}

} // namespace

int main(int argc, char **argv) {
  sim::Link Link = sim::modem28k();
  if (argc > 1) {
    if (!std::strcmp(argv[1], "isdn"))
      Link = sim::isdn128k();
    else if (!std::strcmp(argv[1], "lan"))
      Link = sim::ethernet10M();
    else if (!std::strcmp(argv[1], "fast"))
      Link = sim::fast100M();
  }

  // --- Server side -------------------------------------------------------
  std::printf("[server] compiling the application (icc size class)...\n");
  std::string Src = corpus::sizeClassSource("icc");
  minic::CompileResult CR = minic::compile(Src);
  if (!CR.ok()) {
    std::printf("compile error: %s\n", CR.Error.c_str());
    return 1;
  }
  codegen::Result CG = codegen::generate(*CR.M);

  std::vector<uint8_t> WireFile = wire::compress(*CR.M);
  brisc::BriscProgram B = brisc::compress(CG.P);
  std::vector<uint8_t> BriscFile = B.serialize(/*IncludeData=*/true);
  std::printf("[server] wire file %zu bytes, BRISC file %zu bytes\n",
              WireFile.size(), BriscFile.size());

  // --- Client side, option A: wire --------------------------------------
  std::printf("\n[client] link: %s\n", Link.Name);
  double WireTransfer = Link.transferSeconds(WireFile.size());
  auto T0 = std::chrono::steady_clock::now();
  std::string Error;
  std::unique_ptr<ir::Module> M2 = wire::decompress(WireFile, Error);
  if (!M2) {
    std::printf("wire decompress failed: %s\n", Error.c_str());
    return 1;
  }
  codegen::Result CG2 = codegen::generate(*M2);
  native::NProgram NWire = native::generate(CG2.P);
  auto T1 = std::chrono::steady_clock::now();
  vm::RunResult RWire = native::run(NWire);
  auto T2 = std::chrono::steady_clock::now();
  std::printf("[client] wire:  transfer %.3fs + expand/compile %.3fs + "
              "run %.3fs (exit %d)\n",
              WireTransfer, secondsOf(T0, T1), secondsOf(T1, T2),
              RWire.ExitCode);

  // --- Client side, option B: BRISC --------------------------------------
  double BriscTransfer = Link.transferSeconds(BriscFile.size());
  auto T3 = std::chrono::steady_clock::now();
  // The image just crossed the network: parse recoverably, as a real
  // client must, instead of aborting on a corrupt download.
  Result<brisc::BriscProgram> Parsed = brisc::BriscProgram::parse(BriscFile);
  if (!Parsed.ok()) {
    std::printf("BRISC parse failed: %s\n", Parsed.error().message().c_str());
    return 1;
  }
  brisc::BriscProgram B2 = Parsed.take();
  native::GenStats JS;
  native::NProgram NBrisc = native::generateFromBrisc(B2, &JS);
  auto T4 = std::chrono::steady_clock::now();
  vm::RunResult RBrisc = native::run(NBrisc);
  auto T5 = std::chrono::steady_clock::now();
  std::printf("[client] BRISC: transfer %.3fs + JIT %.3fs (%.0f MB/s) + "
              "run %.3fs (exit %d)\n",
              BriscTransfer, secondsOf(T3, T4),
              double(JS.OutputBytes) / JS.Seconds / 1e6,
              secondsOf(T4, T5), RBrisc.ExitCode);

  if (RWire.ExitCode != RBrisc.ExitCode ||
      RWire.Output != RBrisc.Output) {
    std::printf("MISMATCH between delivery paths!\n");
    return 1;
  }

  double WireTotal = WireTransfer + secondsOf(T0, T2);
  double BriscTotal = BriscTransfer + secondsOf(T3, T5);
  std::printf("\n[client] totals: wire %.3fs vs BRISC %.3fs -> %s wins "
              "on this link\n",
              WireTotal, BriscTotal,
              WireTotal < BriscTotal ? "wire" : "BRISC");
  return 0;
}

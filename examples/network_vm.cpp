//===- examples/network_vm.cpp - Execute a program served over TCP -------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The delivery story of the paper, over a real socket: connect to a
// frame server (examples/frame_server), learn the container's identity
// from the handshake, and execute the program with every function
// faulted over TCP on first call — only the touched working set is
// ever transferred or decoded. With no arguments the example spawns an
// in-process server around a demo container first, so it demonstrates
// the full client/server round trip standalone:
//
//   network_vm                      # in-process server, then connect
//   network_vm 127.0.0.1 9917       # against a running frame_server
//
//===----------------------------------------------------------------------===//

#include "net/FrameServer.h"
#include "net/SocketFrameSource.h"
#include "store/CodeStore.h"
#include "store/Resolver.h"
#include "support/Support.h"

#include "../harness/CorpusUtil.h"

#include <cstdio>
#include <cstdlib>

using namespace ccomp;

namespace {

std::unique_ptr<net::FrameServer> demoServer() {
  vm::VMProgram P = harness::mustBuild(harness::syntheticSource(24));
  std::string Err;
  std::unique_ptr<store::CodeStore> S =
      store::CodeStore::build(P, "brisc+flate", store::StoreOptions(), Err);
  if (!S)
    reportFatal("network_vm: demo build failed: " + Err);
  std::vector<uint8_t> Image = S->save();
  Result<std::unique_ptr<store::LocalFrameSource>> Src =
      store::LocalFrameSource::fromContainerBytes(Image);
  if (!Src)
    reportFatal("network_vm: " + Src.error().message());
  Result<std::unique_ptr<net::FrameServer>> Srv =
      net::FrameServer::start(Src.take(), net::ServerOptions());
  if (!Srv)
    reportFatal("network_vm: " + Srv.error().message());
  return Srv.take();
}

} // namespace

int main(int argc, char **argv) {
  std::unique_ptr<net::FrameServer> Local; // Demo mode only.
  net::SocketOptions SO;
  if (argc > 2) {
    SO.Host = argv[1];
    SO.Port = static_cast<uint16_t>(std::atoi(argv[2]));
  } else {
    Local = demoServer();
    SO.Port = Local->port();
    std::printf("spawned in-process server on %s:%u\n",
                Local->address().c_str(), Local->port());
  }

  Result<std::unique_ptr<net::SocketFrameSource>> Src =
      net::SocketFrameSource::connect(SO);
  if (!Src) {
    std::fprintf(stderr, "network_vm: %s\n", Src.error().message().c_str());
    return 1;
  }
  net::SocketFrameSource *Sock = Src.value().get();
  uint64_t Hash = 0;
  Sock->contentHash(Hash);
  std::printf("handshake: chain %s, %u frames, %zu compressed bytes, "
              "content hash %016llx\n",
              Sock->chainSpec().c_str(), Sock->functionFrameCount(),
              Sock->frameBytes(), (unsigned long long)Hash);

  store::StoreOptions Opts;
  Opts.Retry.RealTime = true; // Real transport: back off on a real clock.
  Opts.Retry.DeadlineSeconds = 10.0;
  Result<std::unique_ptr<store::CodeStore>> St =
      store::CodeStore::tryFromSource(Src.take(), Opts);
  if (!St) {
    std::fprintf(stderr, "network_vm: %s\n", St.error().message().c_str());
    return 1;
  }
  store::CodeStore &Store = *St.value();

  vm::RunResult R = store::runFromStore(Store);
  if (!R.Ok) {
    std::fprintf(stderr, "network_vm: run trapped: %s\n", R.Trap.c_str());
    return 1;
  }
  if (!R.Output.empty())
    std::printf("program output: %s\n", R.Output.c_str());
  std::printf("exit %d after %llu steps\n", R.ExitCode,
              (unsigned long long)R.Steps);

  store::StoreStats SS = Store.stats();
  net::ClientStats CS = Sock->stats();
  std::printf("faulted %llu frames over %llu round trips (%llu dials, "
              "%llu bytes down); fetch wall time %.2fms\n",
              (unsigned long long)SS.Misses,
              (unsigned long long)CS.RoundTrips,
              (unsigned long long)CS.Dials,
              (unsigned long long)CS.BytesReceived,
              SS.FetchVirtualNanos / 1e6);
  return 0;
}

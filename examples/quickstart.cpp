//===- examples/quickstart.cpp - End-to-end tour of the library ----------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The five-minute tour: compile a C program to tree IR, compress it with
// the wire format, ship + decompress it, generate VM code, compress that
// with BRISC, and execute the result three ways (decoded VM code,
// in-place BRISC interpretation, threaded native code).
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "brisc/Brisc.h"
#include "brisc/Interp.h"
#include "codegen/Codegen.h"
#include "flate/Flate.h"
#include "minic/Compile.h"
#include "native/Threaded.h"
#include "vm/Encode.h"
#include "wire/Wire.h"

#include <cstdio>

using namespace ccomp;

static const char *Source = R"(
/* The paper's running example, made runnable. */
int pepper(int i, int j) { return i + j; }

int salt(int j, int i) {
  if (j > 0) {
    pepper(i, j);
    j--;
  }
  return j;
}

int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }

int main(void) {
  print_str("fib(20) = ");
  print_int(fib(20));
  print_char('\n');
  return salt(5, 9);
}
)";

int main() {
  std::printf("== 1. Compile C to lcc-style tree IR ==\n");
  minic::CompileResult CR = minic::compile(Source);
  if (!CR.ok()) {
    std::printf("compile error: %s\n", CR.Error.c_str());
    return 1;
  }
  std::printf("   %u tree nodes in %zu functions\n",
              ir::countNodes(*CR.M), CR.M->Functions.size());

  std::printf("== 2. Wire-format compression (the modem representation) "
              "==\n");
  std::vector<uint8_t> Wire = wire::compress(*CR.M);
  std::printf("   wire file: %zu bytes\n", Wire.size());
  std::string Error;
  std::unique_ptr<ir::Module> Shipped = wire::decompress(Wire, Error);
  if (!Shipped) {
    std::printf("decompress error: %s\n", Error.c_str());
    return 1;
  }

  std::printf("== 3. Generate linked VM code ==\n");
  codegen::Result CG = codegen::generate(*Shipped);
  if (!CG.ok()) {
    std::printf("codegen error: %s\n", CG.Error.c_str());
    return 1;
  }
  std::vector<uint8_t> Native = vm::encodeProgram(CG.P);
  std::vector<uint8_t> Gzipped = flate::compress(Native);
  // Round-trip the gzipped baseline through the recoverable decoder, the
  // same entry point a receiver of untrusted bytes would use.
  Result<std::vector<uint8_t>> Unzipped = flate::tryDecompress(Gzipped);
  if (!Unzipped.ok() || Unzipped.value() != Native) {
    std::printf("flate round trip failed: %s\n",
                Unzipped.ok() ? "bytes differ"
                              : Unzipped.error().message().c_str());
    return 1;
  }
  std::printf("   %llu instructions, %zu bytes fixed-width, %zu bytes "
              "gzipped (verified)\n",
              (unsigned long long)vm::countInstrs(CG.P), Native.size(),
              Gzipped.size());

  std::printf("== 4. BRISC compression (the interpretable "
              "representation) ==\n");
  brisc::CompressStats Stats;
  brisc::BriscProgram B =
      brisc::compress(CG.P, brisc::CompressOptions(), &Stats);
  std::printf("   %zu bytes (dictionary of %zu patterns, %u passes)\n",
              Stats.TotalBytes, Stats.DictPatterns, Stats.Passes);

  std::printf("== 5. Execute three ways ==\n");
  vm::RunResult RVm = vm::runProgram(CG.P);
  std::printf("   VM interpreter:     exit %d, output: %s", RVm.ExitCode,
              RVm.Output.c_str());
  vm::RunResult RBr = brisc::interpret(B);
  std::printf("   BRISC in place:     exit %d, output: %s", RBr.ExitCode,
              RBr.Output.c_str());
  native::NProgram N = native::generateFromBrisc(B);
  vm::RunResult RNat = native::run(N);
  std::printf("   JIT threaded code:  exit %d, output: %s", RNat.ExitCode,
              RNat.Output.c_str());

  bool Agree = RVm.ExitCode == RBr.ExitCode &&
               RBr.ExitCode == RNat.ExitCode &&
               RVm.Output == RBr.Output && RBr.Output == RNat.Output;
  std::printf("== %s ==\n", Agree ? "all three engines agree"
                                  : "ENGINE MISMATCH (bug!)");
  return Agree ? 0 : 1;
}

//===- examples/remote_fetch.cpp - Paging code over a flaky link ---------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The mobile-code scenario end-to-end: a store container is written to
// disk, opened through a FileFrameSource (frames stay on disk until
// faulted), and then served through a SimulatedRemoteFrameSource — a
// 28.8k modem that times out, truncates, or corrupts a fraction of
// fetch attempts. The store's RetryPolicy masks every transient with
// backed-off (virtual-time) retries, so execution is byte-identical to
// the eager run at every fault rate; the damage shows up only as
// virtual transfer seconds and retry counts. At rate 1.0 the link is
// dead and the open fails with a typed error instead of hanging.
//
//   $ ./remote_fetch [chain]            (default chain: vm-compact+flate)
//
//===----------------------------------------------------------------------===//

#include "CorpusUtil.h"

#include "sim/Paging.h"
#include "store/CodeStore.h"
#include "store/FrameSource.h"
#include "store/Resolver.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace ccomp;
using namespace ccomp::harness;

int main(int argc, char **argv) {
  std::string Chain = argc > 1 ? argv[1] : "vm-compact+flate";

  std::printf("building the corpus suite program...\n");
  vm::VMProgram P = suiteProgram();
  vm::RunResult Eager = vm::runProgram(P);
  if (!Eager.Ok) {
    std::printf("eager run trapped: %s\n", Eager.Trap.c_str());
    return 1;
  }

  // Publish the store as a container file, the form a code server would
  // host.
  std::string Err;
  std::unique_ptr<store::CodeStore> Built =
      store::CodeStore::build(P, Chain, store::StoreOptions(), Err);
  if (!Built) {
    std::printf("store build failed: %s\n", Err.c_str());
    return 1;
  }
  std::vector<uint8_t> Image = Built->save();
  const char *TmpDir = std::getenv("TMPDIR");
  std::string Path =
      std::string(TmpDir ? TmpDir : "/tmp") + "/ccomp_remote_fetch.ccpk";
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(reinterpret_cast<const char *>(Image.data()),
              static_cast<std::streamsize>(Image.size()));
    if (!Out.good()) {
      std::printf("cannot write %s\n", Path.c_str());
      return 1;
    }
  }
  std::printf("%u function(s) -> %zu container bytes (chain %s) at %s\n\n",
              Built->functionCount(), Image.size(), Chain.c_str(),
              Path.c_str());

  // Fault the file-backed store over a modem at rising failure rates.
  std::printf("28.8k modem, one session (batched latency), retry budget 16:\n");
  std::printf("%10s | %9s %9s %9s %10s %12s | %s\n", "fail rate", "misses",
              "attempts", "retries", "fetched B", "virtual s", "output");
  hr();
  for (double Rate : {0.0, 0.10, 0.25}) {
    Result<std::unique_ptr<store::FileFrameSource>> File =
        store::FileFrameSource::open(Path);
    if (!File.ok()) {
      std::printf("open failed: %s\n", File.error().message().c_str());
      return 1;
    }
    store::RemoteOptions RO;
    RO.Link = sim::modem28k();
    RO.Latency = store::LatencyMode::Batched;
    RO.TransientFailureRate = Rate;
    RO.FaultSeed = 0xFE7C;
    store::StoreOptions Opts;
    Opts.CacheBudgetBytes = 1u << 20;
    Opts.Retry.MaxAttempts = 16;
    Result<std::unique_ptr<store::CodeStore>> L =
        store::CodeStore::tryFromSource(
            std::make_unique<store::SimulatedRemoteFrameSource>(File.take(),
                                                                RO),
            Opts);
    if (!L.ok()) {
      std::printf("remote open failed: %s\n", L.error().message().c_str());
      return 1;
    }
    std::unique_ptr<store::CodeStore> S = L.take();
    vm::RunResult R = store::runFromStore(*S);
    store::StoreStats St = S->stats();
    bool Match = R.Ok && R.Output == Eager.Output &&
                 R.ExitCode == Eager.ExitCode && R.Steps == Eager.Steps;
    std::printf("%9.0f%% | %9llu %9llu %9llu %10llu %12.3f | %s\n",
                Rate * 100, (unsigned long long)St.Misses,
                (unsigned long long)St.FetchAttempts,
                (unsigned long long)St.FetchRetries,
                (unsigned long long)St.FetchedBytes,
                double(St.FetchVirtualNanos) / 1e9,
                Match ? "byte-identical" : "DIVERGED");
    if (!Match)
      return 1;
  }
  hr();

  // A dead link: every attempt fails, retries exhaust, and the error is
  // typed — the process never hangs or aborts.
  {
    Result<std::unique_ptr<store::FileFrameSource>> File =
        store::FileFrameSource::open(Path);
    store::RemoteOptions RO;
    RO.TransientFailureRate = 1.0;
    store::StoreOptions Opts;
    Opts.Retry.MaxAttempts = 4;
    Result<std::unique_ptr<store::CodeStore>> L =
        store::CodeStore::tryFromSource(
            std::make_unique<store::SimulatedRemoteFrameSource>(File.take(),
                                                                RO),
            Opts);
    std::printf("\ndead link (rate 1.0): %s\n",
                L.ok() ? "UNEXPECTEDLY SUCCEEDED"
                       : L.error().message().c_str());
    if (L.ok())
      return 1;
  }

  std::printf("\nretries masked every transient; only the virtual clock "
              "paid for them\n");
  std::remove(Path.c_str());
  return 0;
}

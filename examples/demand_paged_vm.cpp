//===- examples/demand_paged_vm.cpp - Decode-on-fault execution ----------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Runs the corpus suite end-to-end out of a demand-paged CodeStore: the
// module lives in memory as compressed frames, and function bodies are
// decoded on first call, cached in a byte-budgeted LRU, and re-decoded
// if a return lands on an evicted caller. Sweeping the cache budget
// shows the paper's section-1 trade live — a small budget costs decode
// faults, a large one converges on eager execution — with estimated
// total time from the same disk model the paging benchmark uses.
//
//   $ ./demand_paged_vm [chain]          (default chain: brisc+flate)
//
//===----------------------------------------------------------------------===//

#include "CorpusUtil.h"

#include "sim/Paging.h"
#include "store/CodeStore.h"
#include "store/Resolver.h"
#include "store/Tiered.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace ccomp;
using namespace ccomp::harness;

int main(int argc, char **argv) {
  std::string Chain = argc > 1 ? argv[1] : "brisc+flate";

  std::printf("building the corpus suite program...\n");
  vm::VMProgram P = suiteProgram();

  size_t DecodedBytes = 0;
  for (const vm::VMFunction &F : P.Functions)
    DecodedBytes += store::decodedCostBytes(F);

  // Eager baseline: every function decoded up front, the configuration
  // the store must be byte-for-byte equivalent to.
  vm::RunResult Eager;
  double EagerCpu = timeIt([&] { Eager = vm::runProgram(P); });
  if (!Eager.Ok) {
    std::printf("eager run trapped: %s\n", Eager.Trap.c_str());
    return 1;
  }

  // Compress the module into a store and round-trip the container, as a
  // loader pulling the image from storage would.
  std::string Err;
  std::unique_ptr<store::CodeStore> Built =
      store::CodeStore::build(P, Chain, store::StoreOptions(), Err);
  if (!Built) {
    std::printf("store build failed: %s\n", Err.c_str());
    return 1;
  }
  std::vector<uint8_t> Image = Built->save();
  std::printf("%u function(s): %zu decoded bytes -> %zu container bytes "
              "(chain %s)\n\n",
              Built->functionCount(), DecodedBytes, Image.size(),
              Chain.c_str());

  sim::DiskModel Disk;
  std::printf("cache budget sweep (fault service %.0f ms; eager CPU %.3f s, "
              "exit %d):\n",
              Disk.FaultSeconds * 1e3, EagerCpu, Eager.ExitCode);
  std::printf("%12s | %8s %8s %8s %9s %10s %12s\n", "budget B", "faults",
              "hits", "evicts", "hit rate", "decode ms", "est total s");
  hr();

  bool AllMatch = true;
  for (size_t Budget :
       {DecodedBytes, DecodedBytes / 2, DecodedBytes / 4, DecodedBytes / 8,
        size_t(1)}) {
    store::StoreOptions Opts;
    Opts.CacheBudgetBytes = Budget;
    Result<std::unique_ptr<store::CodeStore>> Loaded =
        store::CodeStore::tryLoad(Image, Opts);
    if (!Loaded.ok()) {
      std::printf("load failed: %s\n", Loaded.error().message().c_str());
      return 1;
    }
    std::unique_ptr<store::CodeStore> S = Loaded.take();

    vm::RunResult R;
    double Cpu = timeIt([&] { R = store::runFromStore(*S); });
    if (!R.Ok) {
      std::printf("store-backed run trapped: %s\n", R.Trap.c_str());
      return 1;
    }
    if (R.Output != Eager.Output || R.ExitCode != Eager.ExitCode ||
        R.Steps != Eager.Steps)
      AllMatch = false;

    store::StoreStats St = S->stats();
    sim::TotalTime T =
        sim::storeTotalTime(Cpu, St.Misses, St.DecodeNanos, Disk);
    std::printf("%12zu | %8llu %8llu %8llu %8.1f%% %10.2f %12.3f\n", Budget,
                (unsigned long long)St.Misses, (unsigned long long)St.Hits,
                (unsigned long long)St.Evictions, St.hitRate() * 100,
                double(St.DecodeNanos) / 1e6, T.total());
  }
  hr();

  // A warm cache behaves like eager execution: prefetch every frame
  // through the pool, then re-run and count faults.
  {
    store::StoreOptions Opts; // Default budget holds the whole suite.
    Opts.CacheBudgetBytes = DecodedBytes * 2;
    std::unique_ptr<store::CodeStore> S =
        store::CodeStore::tryLoad(Image, Opts).take();
    std::vector<uint32_t> All;
    for (uint32_t I = 0; I != S->functionCount(); ++I)
      All.push_back(I);
    ThreadPool Pool(4);
    S->prefetch(All, Pool);
    Pool.wait();
    S->resetStats();
    vm::RunResult R = store::runFromStore(*S);
    store::StoreStats St = S->stats();
    std::printf("\nafter prefetch: %llu fault(s), %llu hit(s) "
                "(output %s eager)\n",
                (unsigned long long)St.Misses, (unsigned long long)St.Hits,
                R.Ok && R.Output == Eager.Output ? "matches" : "DIFFERS from");
    if (!R.Ok || R.Output != Eager.Output)
      AllMatch = false;
  }

  // Page-size sweep: rebuild the store at sub-function fault
  // granularity and shrink the page target. Execution must stay
  // byte-identical at every page size and budget — a branch into a cold
  // page decodes just that page, while the interpreter walks spans
  // instead of whole bodies.
  std::printf("\npage-size sweep (budget %zu B, then 1 B):\n",
              DecodedBytes / 8);
  std::printf("%12s | %8s %8s %8s %9s %10s\n", "page B", "frames",
              "faults", "evicts", "hit rate", "decode ms");
  hr();
  for (size_t Target : {size_t(0), size_t(4096), size_t(256), size_t(64)}) {
    for (size_t Budget : {DecodedBytes / 8, size_t(1)}) {
      store::StoreOptions Opts;
      Opts.CacheBudgetBytes = Budget;
      Opts.PageTargetBytes = Target;
      std::unique_ptr<store::CodeStore> S =
          store::CodeStore::build(P, Chain, Opts, Err);
      if (!S) {
        std::printf("paged store build failed: %s\n", Err.c_str());
        return 1;
      }
      // Round-trip through the container so the paged manifest is
      // exercised too, not just the in-memory build.
      Result<std::unique_ptr<store::CodeStore>> Loaded =
          store::CodeStore::tryLoad(S->save(), Opts);
      if (!Loaded.ok()) {
        std::printf("paged store load failed: %s\n",
                    Loaded.error().message().c_str());
        return 1;
      }
      S = Loaded.take();

      vm::RunResult R = store::runFromStore(*S);
      if (!R.Ok) {
        std::printf("paged run trapped: %s\n", R.Trap.c_str());
        return 1;
      }
      if (R.Output != Eager.Output || R.ExitCode != Eager.ExitCode ||
          R.Steps != Eager.Steps)
        AllMatch = false;
      store::StoreStats St = S->stats();
      if (Budget == DecodedBytes / 8)
        std::printf("%12zu | %8u %8llu %8llu %8.1f%% %10.2f\n", Target,
                    S->frameCount(), (unsigned long long)St.Misses,
                    (unsigned long long)St.Evictions, St.hitRate() * 100,
                    double(St.DecodeNanos) / 1e6);
    }
  }
  hr();

  // Tiered sweep: the same store with the native tier layered on top,
  // at three hot thresholds — compile-everything (0), the default-ish
  // mid-point (4), and never-compile (~0). Execution must stay
  // byte-identical at every threshold; the stats show where the compile
  // work went.
  std::printf("\ntiered sweep (hot threshold -> compiles):\n");
  std::printf("%12s | %8s %10s %12s %12s %10s\n", "threshold", "compiles",
              "unit hits", "native steps", "xfers", "code B");
  hr();
  for (uint64_t Threshold : {uint64_t(0), uint64_t(4), ~uint64_t(0)}) {
    Result<std::unique_ptr<store::CodeStore>> Loaded =
        store::CodeStore::tryLoad(Image, store::StoreOptions());
    if (!Loaded.ok()) {
      std::printf("tiered store load failed: %s\n",
                  Loaded.error().message().c_str());
      return 1;
    }
    std::unique_ptr<store::CodeStore> S = Loaded.take();
    store::TierOptions TO;
    TO.HotThreshold = Threshold;
    store::TierStats TS;
    vm::RunResult R =
        store::runTieredFromStore(*S, TO, vm::RunOptions(), &TS);
    if (!R.Ok) {
      std::printf("tiered run trapped: %s\n", R.Trap.c_str());
      return 1;
    }
    if (R.Output != Eager.Output || R.ExitCode != Eager.ExitCode ||
        R.Steps != Eager.Steps)
      AllMatch = false;
    char Label[32];
    if (Threshold == ~uint64_t(0))
      std::snprintf(Label, sizeof(Label), "%s", "never");
    else
      std::snprintf(Label, sizeof(Label), "%llu",
                    (unsigned long long)Threshold);
    std::printf("%12s | %8llu %10llu %12llu %12llu %10llu\n", Label,
                (unsigned long long)TS.Compiles,
                (unsigned long long)TS.UnitHits,
                (unsigned long long)TS.NativeSteps,
                (unsigned long long)TS.TierTransfers,
                (unsigned long long)TS.CompiledBytesTotal);
  }
  hr();

  if (!AllMatch) {
    std::printf("\nERROR: store-backed execution diverged from eager\n");
    return 1;
  }
  std::printf("\nevery budget, page size, and tier threshold produced "
              "byte-identical output to the eager run\n");
  return 0;
}

//===- examples/frame_server.cpp - Serve a CCPK container over TCP -------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// A standalone frame server: load a CCPK store container (or build a
// small demo one when no path is given) and serve its compressed frames
// over the CCPK wire protocol until stdin closes. Pair with
// examples/network_vm, which connects and executes the program straight
// out of this server.
//
//   frame_server                    # demo container on an ephemeral port
//   frame_server prog.ccpk          # serve a store image built by
//                                   # compressor_tool compress --store
//                                   # (or any CodeStore::save output)
//   frame_server prog.ccpk 9917     # on a fixed port
//
//===----------------------------------------------------------------------===//

#include "net/FrameServer.h"
#include "store/CodeStore.h"
#include "store/FrameSource.h"
#include "support/Support.h"

#include "../harness/CorpusUtil.h"

#include <cstdio>
#include <cstdlib>

using namespace ccomp;

namespace {

std::unique_ptr<store::FrameSource> demoSource() {
  vm::VMProgram P = harness::mustBuild(harness::syntheticSource(24));
  std::string Err;
  std::unique_ptr<store::CodeStore> S =
      store::CodeStore::build(P, "brisc+flate", store::StoreOptions(), Err);
  if (!S)
    reportFatal("frame_server: demo build failed: " + Err);
  std::vector<uint8_t> Image = S->save();
  Result<std::unique_ptr<store::LocalFrameSource>> Src =
      store::LocalFrameSource::fromContainerBytes(Image);
  if (!Src)
    reportFatal("frame_server: " + Src.error().message());
  return Src.take();
}

} // namespace

int main(int argc, char **argv) {
  std::unique_ptr<store::FrameSource> Src;
  if (argc > 1) {
    Result<std::unique_ptr<store::FileFrameSource>> F =
        store::FileFrameSource::open(argv[1]);
    if (!F) {
      std::fprintf(stderr, "frame_server: %s\n", F.error().message().c_str());
      return 1;
    }
    Src = F.take();
  } else {
    Src = demoSource();
  }

  net::ServerOptions Opts;
  if (argc > 2)
    Opts.Port = static_cast<uint16_t>(std::atoi(argv[2]));

  std::printf("serving %u frames (%zu compressed bytes, chain %s)\n",
              Src->functionFrameCount(), Src->frameBytes(),
              Src->chainSpec().c_str());
  Result<std::unique_ptr<net::FrameServer>> Srv =
      net::FrameServer::start(std::move(Src), Opts);
  if (!Srv) {
    std::fprintf(stderr, "frame_server: %s\n", Srv.error().message().c_str());
    return 1;
  }
  net::FrameServer &S = *Srv.value();
  std::printf("listening on %s:%u (content hash %016llx)\n",
              S.address().c_str(), S.port(),
              (unsigned long long)S.contentHash());
  std::printf("press Ctrl-D (EOF) to stop\n");

  // Serve until stdin closes; under a pipe this exits immediately after
  // the pipe does, which is what CI smoke runs want.
  while (std::getchar() != EOF)
    ;

  net::ServerStats St = S.stats();
  std::printf("served %llu requests (%llu batches, %llu frames) across "
              "%llu connections; %llu fetch errors, %llu protocol errors\n",
              (unsigned long long)St.Requests, (unsigned long long)St.Batches,
              (unsigned long long)St.FramesServed,
              (unsigned long long)St.Accepted,
              (unsigned long long)St.FetchErrors,
              (unsigned long long)St.ProtocolErrors);
  S.stop();
  return 0;
}

//===- examples/multi_tenant_vm.cpp - Shared frame registry serving -------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The multi-tenant serving scenario: N independent CodeStore views of
// the same compressed module share one process-wide FrameRegistry, so a
// function decoded for one tenant is a warm hit for every other — one
// decode, one resident copy, one byte budget, no matter how many
// tenants run. The example contrasts that with N fully private stores
// (N decodes, N resident copies), shows per-tenant vs registry-global
// stats attribution, and demonstrates isolation: tenants of a
// *different* module share the registry's budget but never its frames.
//
//   $ ./multi_tenant_vm [chain]          (default chain: brisc+flate)
//
//===----------------------------------------------------------------------===//

#include "CorpusUtil.h"

#include "sim/Paging.h"
#include "store/CodeStore.h"
#include "store/FrameRegistry.h"
#include "store/Resolver.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace ccomp;
using namespace ccomp::harness;

namespace {

/// Loads one tenant view of \p Image over \p Reg (private when null).
std::unique_ptr<store::CodeStore>
loadTenant(const std::vector<uint8_t> &Image,
           std::shared_ptr<store::FrameRegistry> Reg) {
  store::StoreOptions Opts;
  Opts.SharedRegistry = std::move(Reg);
  Result<std::unique_ptr<store::CodeStore>> R =
      store::CodeStore::tryLoad(Image, Opts);
  if (!R.ok()) {
    std::printf("tenant load failed: %s\n", R.error().message().c_str());
    return nullptr;
  }
  return R.take();
}

} // namespace

int main(int argc, char **argv) {
  std::string Chain = argc > 1 ? argv[1] : "brisc+flate";

  std::printf("building the corpus suite program...\n");
  vm::VMProgram P = suiteProgram();
  size_t DecodedBytes = 0;
  for (const vm::VMFunction &F : P.Functions)
    DecodedBytes += store::decodedCostBytes(F);

  vm::RunResult Eager = vm::runProgram(P);
  if (!Eager.Ok) {
    std::printf("eager run trapped: %s\n", Eager.Trap.c_str());
    return 1;
  }

  std::string Err;
  std::unique_ptr<store::CodeStore> Built =
      store::CodeStore::build(P, Chain, store::StoreOptions(), Err);
  if (!Built) {
    std::printf("store build failed: %s\n", Err.c_str());
    return 1;
  }
  std::vector<uint8_t> Image = Built->save();
  std::printf("%u function(s), %zu decoded bytes, container hash "
              "%016llx\n\n",
              Built->functionCount(), DecodedBytes,
              (unsigned long long)Built->containerHash());

  // Tenant sweep: N views over one shared registry vs N private stores.
  // The registry's decode count stays flat as tenants are added — the
  // first tenant decodes, the rest hit — while private serving decodes
  // N times and holds N resident copies.
  sim::DiskModel Disk;
  bool AllMatch = true;
  std::printf("tenant sweep (budget %zu B, shared vs private):\n",
              DecodedBytes * 2);
  std::printf("%7s | %16s | %16s | %10s\n", "tenants",
              "shared dec/resB", "private dec/resB", "est shr s");
  hr();
  for (unsigned N : {1u, 2u, 4u, 8u}) {
    store::RegistryOptions RO;
    RO.CacheBudgetBytes = DecodedBytes * 2;
    auto Reg = std::make_shared<store::FrameRegistry>(RO);

    std::vector<std::unique_ptr<store::CodeStore>> Shared;
    for (unsigned I = 0; I != N; ++I) {
      Shared.push_back(loadTenant(Image, Reg));
      if (!Shared.back())
        return 1;
    }
    double Cpu = timeIt([&] {
      for (auto &S : Shared) {
        vm::RunResult R = store::runFromStore(*S);
        if (!R.Ok || R.Output != Eager.Output ||
            R.ExitCode != Eager.ExitCode || R.Steps != Eager.Steps)
          AllMatch = false;
      }
    });
    store::RegistryStats RS = Reg->stats();

    // The private control: same budget *per store*, no sharing.
    uint64_t PrivDecodes = 0, PrivResident = 0;
    for (unsigned I = 0; I != N; ++I) {
      store::StoreOptions Opts;
      Opts.CacheBudgetBytes = DecodedBytes * 2;
      std::unique_ptr<store::CodeStore> S;
      {
        Result<std::unique_ptr<store::CodeStore>> R =
            store::CodeStore::tryLoad(Image, Opts);
        if (!R.ok())
          return 1;
        S = R.take();
      }
      vm::RunResult R = store::runFromStore(*S);
      if (!R.Ok || R.Output != Eager.Output)
        AllMatch = false;
      store::StoreStats St = S->stats();
      PrivDecodes += St.Decodes;
      PrivResident += St.ResidentBytes;
    }
    sim::TotalTime T =
        sim::sharedStoreTotalTime(Cpu, RS.Decodes, RS.DecodeNanos, Disk);
    std::printf("%7u | %6llu %9llu | %6llu %9llu | %10.3f\n", N,
                (unsigned long long)RS.Decodes,
                (unsigned long long)RS.ResidentBytes,
                (unsigned long long)PrivDecodes,
                (unsigned long long)PrivResident, T.total());
  }
  hr();

  // Per-tenant attribution: two tenants over one registry, run one
  // after the other. Each tenant's StoreStats carries only its own
  // traffic; the registry's decode bill is global; and resetting one
  // tenant's stats leaves the other's — and the registry's — intact.
  {
    store::RegistryOptions RO;
    RO.CacheBudgetBytes = DecodedBytes * 2;
    auto Reg = std::make_shared<store::FrameRegistry>(RO);
    std::unique_ptr<store::CodeStore> A = loadTenant(Image, Reg);
    std::unique_ptr<store::CodeStore> B = loadTenant(Image, Reg);
    if (!A || !B)
      return 1;
    (void)store::runFromStore(*A);
    (void)store::runFromStore(*B);
    store::StoreStats SA = A->stats(), SB = B->stats();
    std::printf("\nattribution (tenant A ran first, then B):\n"
                "  A: %llu miss(es), %llu hit(s)\n"
                "  B: %llu miss(es), %llu hit(s)   <- served by A's decodes\n"
                "  registry: %llu decode(s) across %llu module(s)\n",
                (unsigned long long)SA.Misses, (unsigned long long)SA.Hits,
                (unsigned long long)SB.Misses, (unsigned long long)SB.Hits,
                (unsigned long long)Reg->stats().Decodes,
                (unsigned long long)Reg->stats().Modules);
    A->resetStats();
    std::printf("  after A->resetStats(): A misses %llu, B misses %llu, "
                "registry decodes %llu\n",
                (unsigned long long)A->stats().Misses,
                (unsigned long long)B->stats().Misses,
                (unsigned long long)Reg->stats().Decodes);
    if (B->stats().Misses != SB.Misses)
      AllMatch = false;
  }

  // Isolation: a *different* module (different container hash) joining
  // the same registry shares the byte budget, never the frames — its
  // keys cannot collide with the first module's.
  {
    vm::VMProgram Q = suiteProgram();
    for (vm::VMFunction &F : Q.Functions)
      F.Name += "@v2"; // Different bytes -> different container hash.
    std::unique_ptr<store::CodeStore> OtherBuilt =
        store::CodeStore::build(Q, Chain, store::StoreOptions(), Err);
    if (!OtherBuilt) {
      std::printf("second module build failed: %s\n", Err.c_str());
      return 1;
    }
    store::RegistryOptions RO;
    RO.CacheBudgetBytes = DecodedBytes * 4;
    auto Reg = std::make_shared<store::FrameRegistry>(RO);
    std::unique_ptr<store::CodeStore> A = loadTenant(Image, Reg);
    std::unique_ptr<store::CodeStore> B =
        loadTenant(OtherBuilt->save(), Reg);
    if (!A || !B)
      return 1;
    (void)store::runFromStore(*A);
    (void)store::runFromStore(*B);
    store::RegistryStats RS = Reg->stats();
    std::printf("\nisolation: modules %llu, registry decodes %llu "
                "(= both modules decoded separately), hashes %016llx vs "
                "%016llx\n",
                (unsigned long long)RS.Modules,
                (unsigned long long)RS.Decodes,
                (unsigned long long)A->containerHash(),
                (unsigned long long)B->containerHash());
    if (A->containerHash() == B->containerHash())
      AllMatch = false;
  }

  if (!AllMatch) {
    std::printf("\nERROR: shared-registry execution diverged\n");
    return 1;
  }
  std::printf("\nevery tenant, shared or private, produced byte-identical "
              "output to the eager run\n");
  return 0;
}

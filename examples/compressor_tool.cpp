//===- examples/compressor_tool.cpp - Command-line compressor driver -----------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// A small cc-like driver over the public API:
//
//   compressor_tool run   file.c        compile and execute
//   compressor_tool sizes file.c        print all representation sizes
//   compressor_tool wire  file.c out.wf write a wire file
//   compressor_tool brisc file.c out.br write a BRISC executable
//   compressor_tool exec  out.br        run a BRISC executable in place
//   compressor_tool asm   file.c        print VM assembly
//   compressor_tool ir    file.c        print tree IR
//
//===----------------------------------------------------------------------===//

#include "brisc/Brisc.h"
#include "brisc/Interp.h"
#include "codegen/Codegen.h"
#include "flate/Flate.h"
#include "ir/Text.h"
#include "minic/Compile.h"
#include "vm/Asm.h"
#include "vm/Encode.h"
#include "wire/Wire.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace ccomp;

namespace {

bool readFile(const char *Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string S = SS.str();
  Out.assign(S.begin(), S.end());
  return true;
}

bool writeFile(const char *Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  return static_cast<bool>(Out);
}

int usage() {
  std::fprintf(stderr,
               "usage: compressor_tool <run|sizes|wire|brisc|exec|asm|ir> "
               "<input> [output]\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 3)
    return usage();
  const char *Cmd = argv[1];
  const char *Input = argv[2];

  if (!std::strcmp(Cmd, "exec")) {
    std::vector<uint8_t> Bytes;
    if (!readFile(Input, Bytes)) {
      std::fprintf(stderr, "cannot read %s\n", Input);
      return 1;
    }
    // The image is of unknown provenance: parse recoverably rather than
    // aborting on corruption.
    Result<brisc::BriscProgram> B = brisc::BriscProgram::parse(Bytes);
    if (!B.ok()) {
      std::fprintf(stderr, "%s: corrupt BRISC image: %s\n", Input,
                   B.error().message().c_str());
      return 1;
    }
    vm::RunResult R = brisc::interpret(B.value());
    std::fputs(R.Output.c_str(), stdout);
    if (!R.Ok) {
      std::fprintf(stderr, "trap: %s\n", R.Trap.c_str());
      return 1;
    }
    return R.ExitCode;
  }

  std::vector<uint8_t> SrcBytes;
  if (!readFile(Input, SrcBytes)) {
    std::fprintf(stderr, "cannot read %s\n", Input);
    return 1;
  }
  std::string Src(SrcBytes.begin(), SrcBytes.end());
  minic::CompileResult CR = minic::compile(Src);
  if (!CR.ok()) {
    std::fprintf(stderr, "%s: %s\n", Input, CR.Error.c_str());
    return 1;
  }

  if (!std::strcmp(Cmd, "ir")) {
    std::fputs(ir::printModule(*CR.M).c_str(), stdout);
    return 0;
  }

  if (!std::strcmp(Cmd, "wire")) {
    if (argc < 4)
      return usage();
    std::vector<uint8_t> Z = wire::compress(*CR.M);
    if (!writeFile(argv[3], Z)) {
      std::fprintf(stderr, "cannot write %s\n", argv[3]);
      return 1;
    }
    std::printf("%s: %zu bytes\n", argv[3], Z.size());
    return 0;
  }

  codegen::Result CG = codegen::generate(*CR.M);
  if (!CG.ok()) {
    std::fprintf(stderr, "%s: %s\n", Input, CG.Error.c_str());
    return 1;
  }

  if (!std::strcmp(Cmd, "asm")) {
    std::fputs(vm::printProgram(CG.P).c_str(), stdout);
    return 0;
  }
  if (!std::strcmp(Cmd, "run")) {
    vm::RunResult R = vm::runProgram(CG.P);
    std::fputs(R.Output.c_str(), stdout);
    if (!R.Ok) {
      std::fprintf(stderr, "trap: %s\n", R.Trap.c_str());
      return 1;
    }
    return R.ExitCode;
  }
  if (!std::strcmp(Cmd, "brisc")) {
    if (argc < 4)
      return usage();
    brisc::BriscProgram B = brisc::compress(CG.P);
    std::vector<uint8_t> Img = B.serialize(/*IncludeData=*/true);
    if (!writeFile(argv[3], Img)) {
      std::fprintf(stderr, "cannot write %s\n", argv[3]);
      return 1;
    }
    std::printf("%s: %zu bytes (code segment %zu)\n", argv[3], Img.size(),
                B.codeSegmentBytes());
    return 0;
  }
  if (!std::strcmp(Cmd, "sizes")) {
    std::vector<uint8_t> Native = vm::encodeProgram(CG.P);
    std::vector<uint8_t> Compact = vm::encodeProgramCompact(CG.P);
    std::vector<uint8_t> Wire = wire::compress(*CR.M);
    brisc::BriscProgram B = brisc::compress(CG.P);
    std::printf("%-28s %10zu\n", "fixed-width native (SPARC-ish)",
                Native.size());
    std::printf("%-28s %10zu\n", "compact native (x86-ish)",
                Compact.size());
    std::printf("%-28s %10zu\n", "gzipped fixed-width",
                flate::compress(Native).size());
    std::printf("%-28s %10zu\n", "gzipped compact",
                flate::compress(Compact).size());
    std::printf("%-28s %10zu\n", "wire format", Wire.size());
    std::printf("%-28s %10zu\n", "BRISC code segment",
                B.codeSegmentBytes());
    return 0;
  }
  return usage();
}

//===- examples/compressor_tool.cpp - Registry-driven compressor CLI -----------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The command-line face of the codec registry. Every compression stack
// in the project (flate, vm-compact, brisc, wire) is a registered Codec;
// this tool compiles a mini-C source, fans per-function payloads across
// a thread pool, and packs the frames into one self-describing container
// that `decompress` can invert without being told the chain.
//
//   compressor_tool --list                      show registered codecs
//   compressor_tool compress   file.c out.ccpk  [--codec CHAIN] [--jobs N] [--stats]
//   compressor_tool decompress in.ccpk          [--jobs N] [--stats]
//
// CHAIN is '+'-separated, first codec first: "brisc", "brisc+flate",
// "wire", "vm-compact+flate", ... Codecs after the first must accept raw
// bytes (today that means flate).
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"
#include "minic/Compile.h"
#include "pipeline/Codec.h"
#include "pipeline/Payload.h"
#include "pipeline/Pipeline.h"
#include "pipeline/Profile.h"
#include "store/CodeStore.h"
#include "store/Trace.h"
#include "support/Support.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace ccomp;
using namespace ccomp::pipeline;

namespace {

bool readFile(const char *Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string S = SS.str();
  Out.assign(S.begin(), S.end());
  return true;
}

bool writeFile(const char *Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  return static_cast<bool>(Out);
}

int usage() {
  std::fprintf(
      stderr,
      "usage: compressor_tool --list\n"
      "       compressor_tool compress <file.c> <out.ccpk>"
      " [--codec CHAIN] [--jobs N] [--store] [--page-bytes N]"
      " [--per-page --chains A,B,..] [--profile FILE] [--stats]\n"
      "       compressor_tool decompress <in.ccpk> [--jobs N] [--stats]\n"
      "       compressor_tool profile <file.c> <out.ccprof>\n"
      "CHAIN: '+'-separated codec names, e.g. brisc+flate (see --list)\n"
      "--store emits a CodeStore image (manifest at frame 0) that\n"
      "demand_paged_vm and frame_server can execute and serve\n"
      "--per-page (with --store) trial-encodes every frame through the\n"
      "--codec chain plus each comma-separated --chains candidate and\n"
      "keeps the smallest; a mixed outcome writes a manifest v4 image\n"
      "'profile' runs the program once, recording its block-level\n"
      "execution trace to a CCPF sidecar; compress --store --page-bytes N\n"
      "--profile FILE feeds it back so co-hot blocks share pages\n");
  return 2;
}

void listCodecs() {
  for (const auto &C : Registry::instance().all())
    std::printf("%-12s %s\n", C->name(), C->description());
}

void printStats(const std::vector<const Codec *> &Chain) {
  std::printf("%-12s %8s %12s %12s %7s %8s %9s\n", "codec", "calls", "in",
              "out", "ratio", "errors", "ms");
  for (const Codec *C : Chain) {
    // snapshot() re-reads until the counter set is mutually consistent;
    // never read the individual atomics piecemeal in output paths.
    CodecStats S = C->snapshot();
    double Ratio = S.BytesIn ? double(S.BytesOut) / double(S.BytesIn) : 0.0;
    double Ms = double(S.CompressNanos + S.DecompressNanos) / 1e6;
    std::printf("%-12s %8llu %12llu %12llu %7.3f %8llu %9.2f\n", C->name(),
                (unsigned long long)(S.CompressCalls + S.DecompressCalls),
                (unsigned long long)S.BytesIn, (unsigned long long)S.BytesOut,
                Ratio, (unsigned long long)S.DecodeErrors, Ms);
  }
}

size_t totalBytes(const std::vector<std::vector<uint8_t>> &Items) {
  size_t N = 0;
  for (const std::vector<uint8_t> &I : Items)
    N += I.size();
  return N;
}

struct Flags {
  std::string Chain = "brisc";
  unsigned Jobs = 1;
  bool Stats = false;
  bool Store = false;
  bool PerPage = false;
  size_t PageBytes = 0;
  std::vector<std::string> CandidateChains;
  std::string ProfilePath;
  std::vector<const char *> Positional;
};

bool parseFlags(int argc, char **argv, int First, Flags &F) {
  for (int I = First; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--codec") && I + 1 < argc) {
      F.Chain = argv[++I];
    } else if (!std::strcmp(argv[I], "--jobs") && I + 1 < argc) {
      // Checked parsing: "0", "-3", "4x", "" and overflow all fail here
      // with a typed message instead of atoi's silent zero.
      uint64_t N = 0;
      if (!parseUnsigned(argv[++I], 1, 1024, N)) {
        std::fprintf(stderr,
                     "--jobs wants an integer in [1, 1024], got '%s'\n",
                     argv[I]);
        return false;
      }
      F.Jobs = static_cast<unsigned>(N);
    } else if (!std::strcmp(argv[I], "--stats")) {
      F.Stats = true;
    } else if (!std::strcmp(argv[I], "--store")) {
      F.Store = true;
    } else if (!std::strcmp(argv[I], "--per-page")) {
      F.PerPage = true;
    } else if (!std::strcmp(argv[I], "--chains") && I + 1 < argc) {
      std::string List = argv[++I];
      for (size_t Pos = 0; Pos <= List.size();) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        std::string Spec = List.substr(Pos, Comma - Pos);
        if (Spec.empty()) {
          std::fprintf(stderr, "--chains holds an empty chain spec\n");
          return false;
        }
        F.CandidateChains.push_back(std::move(Spec));
        Pos = Comma + 1;
      }
    } else if (!std::strcmp(argv[I], "--page-bytes") && I + 1 < argc) {
      uint64_t N = 0;
      if (!parseUnsigned(argv[++I], 0, uint64_t(1) << 30, N)) {
        std::fprintf(stderr,
                     "--page-bytes wants an integer in [0, 2^30], got '%s'\n",
                     argv[I]);
        return false;
      }
      F.PageBytes = static_cast<size_t>(N);
    } else if (!std::strcmp(argv[I], "--profile") && I + 1 < argc) {
      F.ProfilePath = argv[++I];
    } else if (argv[I][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[I]);
      return false;
    } else {
      F.Positional.push_back(argv[I]);
    }
  }
  return true;
}

bool compileProgram(const char *Input, std::unique_ptr<ir::Module> &M,
                    codegen::Result &CG) {
  std::vector<uint8_t> SrcBytes;
  if (!readFile(Input, SrcBytes)) {
    std::fprintf(stderr, "cannot read %s\n", Input);
    return false;
  }
  std::string Src(SrcBytes.begin(), SrcBytes.end());
  minic::CompileResult CR = minic::compile(Src);
  if (!CR.ok()) {
    std::fprintf(stderr, "%s: %s\n", Input, CR.Error.c_str());
    return false;
  }
  CG = codegen::generate(*CR.M);
  if (!CG.ok()) {
    std::fprintf(stderr, "%s: %s\n", Input, CG.Error.c_str());
    return false;
  }
  M = std::move(CR.M);
  return true;
}

int doProfile(const Flags &F) {
  if (F.Positional.size() != 2)
    return usage();
  const char *Input = F.Positional[0], *Output = F.Positional[1];
  std::unique_ptr<ir::Module> M;
  codegen::Result CG;
  if (!compileProgram(Input, M, CG))
    return 1;
  store::TraceRunResult R = store::recordTrace(CG.P);
  if (!R.Run.Ok) {
    std::fprintf(stderr, "%s: profiling run trapped: %s\n", Input,
                 R.Run.Trap.c_str());
    return 1;
  }
  std::vector<uint8_t> Sidecar = R.Trace.serialize();
  if (!writeFile(Output, Sidecar)) {
    std::fprintf(stderr, "cannot write %s\n", Output);
    return 1;
  }
  std::printf("%s: %zu trace event(s) over %u function(s) in %llu steps "
              "-> %zu sidecar bytes%s\n",
              Output, R.Trace.Events.size(), R.Trace.FuncCount,
              (unsigned long long)R.Run.Steps, Sidecar.size(),
              R.Trace.Truncated ? " (truncated)" : "");
  return 0;
}

int doCompress(const Flags &F) {
  if (F.Positional.size() != 2)
    return usage();
  const char *Input = F.Positional[0], *Output = F.Positional[1];

  std::string Error;
  std::vector<const Codec *> Chain = parseChain(F.Chain, Error);
  if (Chain.empty()) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 1;
  }

  if (F.PerPage && !F.Store) {
    std::fprintf(stderr, "--per-page needs --store (per-frame chains live "
                         "in the store manifest)\n");
    return 2;
  }
  if (F.PerPage && F.CandidateChains.empty()) {
    std::fprintf(stderr, "--per-page needs --chains A,B,.. (candidate "
                         "chains beside --codec)\n");
    return 2;
  }
  if (!F.CandidateChains.empty() && !F.PerPage) {
    std::fprintf(stderr, "--chains does nothing without --per-page\n");
    return 2;
  }

  std::unique_ptr<ir::Module> M;
  codegen::Result CG;
  if (!compileProgram(Input, M, CG))
    return 1;

  if (F.Store) {
    // A servable image: the store packs the same codec frames but puts
    // its manifest at frame 0, which demand_paged_vm, frame_server, and
    // every FrameSource require.
    store::StoreOptions Opts;
    Opts.BuildJobs = F.Jobs;
    Opts.PageTargetBytes = F.PageBytes;
    if (F.PerPage)
      Opts.CandidateChains = F.CandidateChains;
    pipeline::ExecutionTrace Trace;
    if (!F.ProfilePath.empty()) {
      std::vector<uint8_t> Sidecar;
      if (!readFile(F.ProfilePath.c_str(), Sidecar)) {
        std::fprintf(stderr, "cannot read %s\n", F.ProfilePath.c_str());
        return 1;
      }
      Result<pipeline::ExecutionTrace> T =
          pipeline::ExecutionTrace::tryDeserialize(Sidecar);
      if (!T.ok()) {
        std::fprintf(stderr, "%s: %s\n", F.ProfilePath.c_str(),
                     T.error().message().c_str());
        return 1;
      }
      Trace = T.take();
      Opts.Profile = &Trace;
      if (!Opts.PageTargetBytes)
        std::fprintf(stderr,
                     "note: --profile shapes the page layout only with "
                     "--page-bytes; the trace still drives prefetch\n");
    }
    std::string Err;
    std::unique_ptr<store::CodeStore> S =
        store::CodeStore::build(CG.P, F.Chain, Opts, Err);
    if (!S) {
      std::fprintf(stderr, "%s: %s\n", Input, Err.c_str());
      return 1;
    }
    std::vector<uint8_t> Packed = S->save();
    if (!writeFile(Output, Packed)) {
      std::fprintf(stderr, "cannot write %s\n", Output);
      return 1;
    }
    std::printf("%s: store image, %u function(s), %u frame(s) + manifest -> "
                "%zu container bytes (chain %s, %u job(s)%s%s%s)\n",
                Output, S->functionCount(), S->frameCount(), Packed.size(),
                F.Chain.c_str(), F.Jobs, S->paged() ? ", paged" : "",
                S->perPageChains() ? ", per-page chains"
                                   : (F.PerPage ? ", uniform selection" : ""),
                F.ProfilePath.empty() ? "" : ", profiled layout");
    if (F.Stats)
      printStats(Chain);
    return 0;
  }

  std::vector<std::vector<uint8_t>> Payloads =
      makePayloads(*Chain.front(), CG.P, M.get());
  std::vector<std::vector<uint8_t>> Frames =
      compressAll(Chain, Payloads, F.Jobs);
  std::vector<uint8_t> Packed = packContainer(F.Chain, Frames);
  if (!writeFile(Output, Packed)) {
    std::fprintf(stderr, "cannot write %s\n", Output);
    return 1;
  }
  std::printf("%s: %zu item(s), %zu payload bytes -> %zu container bytes "
              "(chain %s, %u job(s))\n",
              Output, Payloads.size(), totalBytes(Payloads), Packed.size(),
              F.Chain.c_str(), F.Jobs);
  if (F.Stats)
    printStats(Chain);
  return 0;
}

int doDecompress(const Flags &F) {
  if (F.Positional.size() != 1)
    return usage();
  const char *Input = F.Positional[0];

  std::vector<uint8_t> Bytes;
  if (!readFile(Input, Bytes)) {
    std::fprintf(stderr, "cannot read %s\n", Input);
    return 1;
  }
  Result<Container> C = tryUnpackContainer(Bytes);
  if (!C.ok()) {
    std::fprintf(stderr, "%s: %s\n", Input, C.error().message().c_str());
    return 1;
  }
  std::string Error;
  std::vector<const Codec *> Chain = parseChain(C.value().ChainSpec, Error);
  if (Chain.empty()) {
    std::fprintf(stderr, "%s: %s\n", Input, Error.c_str());
    return 1;
  }
  // A store image (--store / CodeStore::save) carries its manifest at
  // frame 0; the manifest is not codec-compressed, so skip it and
  // decompress the function frames that follow.
  bool StoreImage =
      !C.value().Frames.empty() && store::isStoreManifest(C.value().Frames[0]);
  // A per-page image (manifest v4, version byte right after the CCSM
  // magic) mixes chains across frames, so the container's single chain
  // cannot decode it; route it through the store, which faults every
  // function through its own per-frame chain.
  if (StoreImage && C.value().Frames[0].size() > 4 &&
      C.value().Frames[0][4] == 4) {
    Result<std::unique_ptr<store::CodeStore>> S =
        store::CodeStore::tryLoad(Bytes, store::StoreOptions());
    if (!S.ok()) {
      std::fprintf(stderr, "%s: %s\n", Input, S.error().message().c_str());
      return 1;
    }
    store::CodeStore &St = *S.value();
    size_t DecodedInstrs = 0;
    for (uint32_t I = 0; I != St.functionCount(); ++I) {
      Result<std::shared_ptr<const vm::VMFunction>> R = St.fault(I);
      if (!R.ok()) {
        std::fprintf(stderr, "%s: function '%s': %s\n", Input,
                     St.functionName(I).c_str(),
                     R.error().message().c_str());
        return 1;
      }
      DecodedInstrs += R.value()->Code.size();
    }
    std::printf("%s: per-page store image, %u function(s), %u frame(s), "
                "%zu frame bytes -> %zu instruction(s) (primary chain %s)\n",
                Input, St.functionCount(), St.frameCount(), St.frameBytes(),
                DecodedInstrs, St.chainSpec().c_str());
    if (F.Stats)
      printStats(Chain);
    return 0;
  }
  if (StoreImage) {
    std::printf("%s: store image, skipping the manifest frame\n", Input);
    C.value().Frames.erase(C.value().Frames.begin());
  }
  Result<std::vector<std::vector<uint8_t>>> Payloads =
      tryDecompressAll(Chain, C.value().Frames, F.Jobs);
  if (!Payloads.ok()) {
    std::fprintf(stderr, "%s: %s\n", Input,
                 Payloads.error().message().c_str());
    return 1;
  }
  std::printf("%s: %zu item(s), %zu frame bytes -> %zu payload bytes "
              "(chain %s, %u job(s))\n",
              Input, Payloads.value().size(),
              totalBytes(C.value().Frames), totalBytes(Payloads.value()),
              C.value().ChainSpec.c_str(), F.Jobs);
  if (F.Stats)
    printStats(Chain);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  if (!std::strcmp(argv[1], "--list")) {
    listCodecs();
    return 0;
  }
  Flags F;
  if (!parseFlags(argc, argv, 2, F))
    return 2;
  if (!std::strcmp(argv[1], "compress"))
    return doCompress(F);
  if (!std::strcmp(argv[1], "decompress"))
    return doDecompress(F);
  if (!std::strcmp(argv[1], "profile"))
    return doProfile(F);
  return usage();
}

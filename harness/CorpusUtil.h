//===- harness/CorpusUtil.h - Shared corpus/build/timing helpers *- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The corpus-building and timing helpers shared by the test suite and
/// the experiment harness. Everything here aborts on error (the inputs
/// are all under our control) and has no gtest dependency; the
/// gtest-flavored wrappers live in tests/TestUtil.h.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_HARNESS_CORPUSUTIL_H
#define CCOMP_HARNESS_CORPUSUTIL_H

#include "codegen/Codegen.h"
#include "corpus/Corpus.h"
#include "ir/Link.h"
#include "minic/Compile.h"
#include "support/Support.h"
#include "vm/Machine.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace ccomp {
namespace harness {

/// Compiles C source to IR; aborts on a front-end error.
inline std::unique_ptr<ir::Module> mustCompile(const std::string &Src) {
  minic::CompileResult CR = minic::compile(Src);
  if (!CR.ok())
    reportFatal("harness: compile failed: " + CR.Error);
  return std::move(CR.M);
}

/// Compiles C source all the way to a linked VM program; aborts on error.
inline vm::VMProgram mustBuild(const std::string &Src,
                               codegen::Options Opts = codegen::Options()) {
  std::unique_ptr<ir::Module> M = mustCompile(Src);
  codegen::Result CG = codegen::generate(*M, Opts);
  if (!CG.ok())
    reportFatal("harness: codegen failed: " + CG.Error);
  return std::move(CG.P);
}

/// Links every hand-written corpus program into one suite module (the
/// realistic mid-size input: real algorithms, no synthetic repetition).
inline std::unique_ptr<ir::Module> suiteModule() {
  std::vector<std::unique_ptr<ir::Module>> Units;
  for (const corpus::Program &P : corpus::programs()) {
    minic::CompileResult CR = minic::compile(P.Source);
    if (!CR.ok())
      reportFatal(std::string("suite: ") + P.Name + ": " + CR.Error);
    Units.push_back(std::move(CR.M));
  }
  return ir::linkModules(std::move(Units));
}

inline vm::VMProgram suiteProgram() {
  std::unique_ptr<ir::Module> M = suiteModule();
  codegen::Result CG = codegen::generate(*M);
  if (!CG.ok())
    reportFatal("suite codegen failed: " + CG.Error);
  return std::move(CG.P);
}

/// Builds a structurally varied C source with \p NumFuncs functions, big
/// enough for the compressors to amortize their dictionaries. Constants
/// come from small pools (real programs reuse a few favorite literals).
inline std::string syntheticSource(unsigned NumFuncs) {
  std::string Src = "int acc;\nint buf[256];\nchar bytes[512];\n";
  for (unsigned I = 0; I != NumFuncs; ++I) {
    std::string N = std::to_string(I);
    static const int Pool1[] = {1, 2, 4, 8, 16, 32, 100, 255};
    std::string K1 = std::to_string(Pool1[(I * 7 + 3) % 8]);
    std::string K2 = std::to_string(1 + I % 8);
    std::string K3 = std::to_string((I % 16) * 4);
    switch (I % 6) {
    case 0:
      Src += "int work" + N + "(int a, int b) {\n"
             "  int i, s = " + K1 + ";\n"
             "  for (i = 0; i < a; i++) s += buf[(i + b) & 255] * " + K2 +
             ";\n  acc += s;\n  return s;\n}\n";
      break;
    case 1:
      Src += "int work" + N + "(int a, int b) {\n"
             "  int s = a, n = 0;\n"
             "  while (s > " + K1 + " && n++ < 40) s = s / 2 + b % " + K2 +
             ";\n"
             "  bytes[" + K3 + "] = s;\n  return s + bytes[" + K3 +
             "];\n}\n";
      break;
    case 2:
      Src += "int work" + N + "(int a, int b) {\n"
             "  if (a < b) return work" + std::to_string(I ? I - 1 : 0) +
             "(b, a);\n"
             "  switch (a & 3) {\n"
             "  case 0: return a + " + K1 + ";\n"
             "  case 1: return a - b;\n"
             "  case 2: return a * " + K2 + ";\n"
             "  default: return a ^ b;\n  }\n}\n";
      break;
    case 3:
      Src += "unsigned work" + N + "(unsigned a, unsigned b) {\n"
             "  unsigned h = " + K1 + "u, n = 0;\n"
             "  do { h = (h << 5) ^ (h >> 3) ^ a; a = a / 2 + b % " + K2 +
             "; } while (a > " + K3 + " && ++n < 48u);\n"
             "  return h;\n}\n";
      break;
    case 4:
      Src += "int work" + N + "(int n, int d) {\n"
             "  int i, j, t = 0;\n"
             "  for (i = 1; i <= n % 9 + 2; i++)\n"
             "    for (j = i; j; j--) t += i * j - d + " + K1 + ";\n"
             "  buf[" + std::to_string(I % 256) + "] = t;\n"
             "  return t;\n}\n";
      break;
    default:
      Src += "int work" + N + "(int a, int b) {\n"
             "  int *p = &buf[a & 127];\n"
             "  *p = b + " + K1 + ";\n"
             "  p[1] = *p - " + K2 + ";\n"
             "  return p[0] + p[1] + acc % " + K2 + ";\n}\n";
      break;
    }
  }
  Src += "int main(void) {\n  int r = 0;\n";
  for (unsigned I = 0; I != NumFuncs; ++I)
    Src += "  r += work" + std::to_string(I) + "(" +
           std::to_string(I % 13 + 1) + ", " + std::to_string(I % 5 + 1) +
           ");\n";
  Src += "  return r & 255;\n}\n";
  return Src;
}

/// Wall-clock seconds of a callable.
template <class Fn> double timeIt(Fn &&F) {
  auto T0 = std::chrono::steady_clock::now();
  F();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

/// Wall-clock seconds, repeating the callable until ~MinSeconds elapsed
/// and dividing (for very fast bodies).
template <class Fn> double timeStable(Fn &&F, double MinSeconds = 0.2) {
  unsigned Reps = 1;
  for (;;) {
    auto T0 = std::chrono::steady_clock::now();
    for (unsigned I = 0; I != Reps; ++I)
      F();
    auto T1 = std::chrono::steady_clock::now();
    double S = std::chrono::duration<double>(T1 - T0).count();
    if (S >= MinSeconds || Reps >= 1u << 20)
      return S / Reps;
    Reps *= 2;
  }
}

inline void hr() {
  std::printf("-------------------------------------------------------------"
              "-----------------\n");
}

} // namespace harness
} // namespace ccomp

#endif // CCOMP_HARNESS_CORPUSUTIL_H

//===- harness/NetLoad.h - Many-client frame-server load driver *- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reusable half of the frame-server scale harness: spawn N
/// concurrent VM clients against one net::FrameServer, each dialing its
/// own SocketFrameSource, loading a CodeStore over it, and executing
/// the stored program end-to-end; verify every client's output is
/// byte-identical to a reference run; and report throughput plus
/// p50/p95/p99 *fault latency* (wall time of each frame fetch,
/// measured at the FrameSource seam by a timing decorator so the
/// numbers include the full client-side round trip, not just server
/// service time). bench_frame_server drives this; tests reuse it at
/// smaller client counts.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_HARNESS_NETLOAD_H
#define CCOMP_HARNESS_NETLOAD_H

#include "net/SocketFrameSource.h"
#include "store/CodeStore.h"
#include "store/Resolver.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ccomp {
namespace harness {

/// Wraps any FrameSource and records the wall-clock seconds of every
/// fetch (frames and manifest alike) while forwarding everything else —
/// including the prefetchHint coalescing seam and the handshake content
/// hash, so timing a socket source changes nothing about its behavior.
class TimingFrameSource final : public store::FrameSource {
public:
  explicit TimingFrameSource(std::unique_ptr<store::FrameSource> Wrapped)
      : Inner(std::move(Wrapped)) {}

  const char *kind() const override { return Inner->kind(); }
  const std::string &chainSpec() const override { return Inner->chainSpec(); }
  uint32_t functionFrameCount() const override {
    return Inner->functionFrameCount();
  }
  size_t frameBytes() const override { return Inner->frameBytes(); }
  bool contentHash(uint64_t &H) override { return Inner->contentHash(H); }
  void prefetchHint(const std::vector<uint32_t> &Ids) override {
    Inner->prefetchHint(Ids);
  }

  store::FetchResult fetchFrame(uint32_t Id) override {
    return timed([&] { return Inner->fetchFrame(Id); });
  }
  store::FetchResult fetchManifest() override {
    return timed([&] { return Inner->fetchManifest(); });
  }

  /// The recorded per-fetch latencies, in seconds. Call after the runs
  /// that should be measured; the vector keeps growing while fetches
  /// happen.
  std::vector<double> takeSamples() {
    std::lock_guard<std::mutex> L(Mu);
    return std::move(Samples);
  }

private:
  template <class Fn> store::FetchResult timed(Fn &&F) {
    auto T0 = std::chrono::steady_clock::now();
    store::FetchResult R = F();
    double S = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - T0)
                   .count();
    std::lock_guard<std::mutex> L(Mu);
    Samples.push_back(S);
    return R;
  }

  std::unique_ptr<store::FrameSource> Inner;
  std::mutex Mu;
  std::vector<double> Samples;
};

/// Percentile over \p Sorted (ascending); \p Q in [0, 1].
inline double percentile(const std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  double Pos = Q * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Pos);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Pos - static_cast<double>(Lo);
  return Sorted[Lo] * (1.0 - Frac) + Sorted[Hi] * Frac;
}

struct LoadOptions {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  unsigned Clients = 256;
  /// Per-client decoded-cache budget (small budgets force re-fetches).
  size_t CacheBudgetBytes = 1u << 20;
  /// Per-client retry policy; RealTime is forced on (the transport is
  /// a real network — virtual deadlines would never fire).
  store::RetryPolicy Retry;
  /// When set, each client issues one coalesced prefetch of every
  /// function before executing.
  bool PrefetchAll = false;
  /// When set, each client runs with a PrefetchingResolver: every fault
  /// also warms the store's predicted-next frames (coalesced by the
  /// socket source into GetBatch round trips).
  bool Predictive = false;
  /// Optional recorded execution trace installed on each client's store
  /// before running (the predicted-successor graph Predictive consults).
  const pipeline::ExecutionTrace *Profile = nullptr;
};

struct LoadResult {
  unsigned Clients = 0;
  unsigned Failures = 0;         ///< Clients that could not run at all.
  unsigned OutputMismatches = 0; ///< Ran, but diverged from the reference.
  double WallSeconds = 0;        ///< Whole wave, dial to last exit.
  uint64_t Fetches = 0;          ///< Latency samples (= round-trip fetches).
  std::vector<double> LatencySorted; ///< Per-fetch seconds, ascending.
  // Client-side transport totals across the wave:
  uint64_t RoundTrips = 0;
  uint64_t BatchRoundTrips = 0;
  uint64_t Dials = 0;
  uint64_t StagedServes = 0;
  uint64_t BytesSent = 0;
  uint64_t BytesReceived = 0;

  double p50() const { return percentile(LatencySorted, 0.50); }
  double p95() const { return percentile(LatencySorted, 0.95); }
  double p99() const { return percentile(LatencySorted, 0.99); }
};

/// Runs \p Opts.Clients concurrent socket-backed VM clients against the
/// server at Host:Port and checks each one's program output against
/// \p ExpectedOutput / \p ExpectedExit. Every client failure mode is
/// counted, never thrown: a client that cannot connect, load, or run
/// increments Failures; one that runs but diverges increments
/// OutputMismatches.
inline LoadResult runSocketClients(const LoadOptions &Opts,
                                   const std::string &ExpectedOutput,
                                   int32_t ExpectedExit) {
  LoadResult R;
  R.Clients = Opts.Clients;

  std::atomic<unsigned> Failures{0}, Mismatches{0};
  std::atomic<uint64_t> RoundTrips{0}, BatchTrips{0}, Dials{0}, Staged{0},
      Sent{0}, Received{0};
  std::vector<std::vector<double>> PerClient(Opts.Clients);

  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  Threads.reserve(Opts.Clients);
  for (unsigned C = 0; C != Opts.Clients; ++C)
    Threads.emplace_back([&, C] {
      net::SocketOptions SO;
      SO.Host = Opts.Host;
      SO.Port = Opts.Port;
      Result<std::unique_ptr<net::SocketFrameSource>> Src =
          net::SocketFrameSource::connect(SO);
      if (!Src) {
        Failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      net::SocketFrameSource *Sock = Src.value().get();
      auto Timed = std::make_unique<TimingFrameSource>(Src.take());
      TimingFrameSource *Timer = Timed.get();

      store::StoreOptions StOpts;
      StOpts.CacheBudgetBytes = Opts.CacheBudgetBytes;
      StOpts.Retry = Opts.Retry;
      StOpts.Retry.RealTime = true;
      Result<std::unique_ptr<store::CodeStore>> St =
          store::CodeStore::tryFromSource(std::move(Timed), StOpts);
      if (!St) {
        Failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      store::CodeStore &Store = *St.value();
      if (Opts.Profile)
        Store.applyAccessProfile(*Opts.Profile);

      if (Opts.PrefetchAll) {
        // One coalesced wave: the socket source turns this into a
        // single GetBatch round trip (plus the faults that follow,
        // served from staging).
        std::vector<uint32_t> All(Store.functionCount());
        for (uint32_t I = 0; I != Store.functionCount(); ++I)
          All[I] = I;
        ThreadPool Pool(2);
        Store.prefetch(All, Pool);
        Pool.wait();
      }

      vm::RunResult Run;
      if (Opts.Predictive) {
        ThreadPool Pool(2);
        Run = store::runFromStorePrefetching(Store, Pool);
      } else {
        Run = store::runFromStore(Store);
      }
      if (!Run.Ok)
        Failures.fetch_add(1, std::memory_order_relaxed);
      else if (Run.Output != ExpectedOutput || Run.ExitCode != ExpectedExit)
        Mismatches.fetch_add(1, std::memory_order_relaxed);

      PerClient[C] = Timer->takeSamples();
      net::ClientStats CS = Sock->stats();
      RoundTrips.fetch_add(CS.RoundTrips, std::memory_order_relaxed);
      BatchTrips.fetch_add(CS.BatchRoundTrips, std::memory_order_relaxed);
      Dials.fetch_add(CS.Dials, std::memory_order_relaxed);
      Staged.fetch_add(CS.StagedServes, std::memory_order_relaxed);
      Sent.fetch_add(CS.BytesSent, std::memory_order_relaxed);
      Received.fetch_add(CS.BytesReceived, std::memory_order_relaxed);
    });
  for (std::thread &T : Threads)
    T.join();
  R.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();

  R.Failures = Failures.load();
  R.OutputMismatches = Mismatches.load();
  R.RoundTrips = RoundTrips.load();
  R.BatchRoundTrips = BatchTrips.load();
  R.Dials = Dials.load();
  R.StagedServes = Staged.load();
  R.BytesSent = Sent.load();
  R.BytesReceived = Received.load();
  for (std::vector<double> &S : PerClient) {
    R.Fetches += S.size();
    R.LatencySorted.insert(R.LatencySorted.end(), S.begin(), S.end());
  }
  std::sort(R.LatencySorted.begin(), R.LatencySorted.end());
  return R;
}

} // namespace harness
} // namespace ccomp

#endif // CCOMP_HARNESS_NETLOAD_H

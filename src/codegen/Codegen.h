//===- codegen/Codegen.h - Tree IR to VM code generation --------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles tree IR into linked VM programs: tree-walking instruction
/// selection with an evaluation-register stack (n4..n11), the paper's
/// prologue/epilogue shape (enter; spill.i ...; body; reload.i ...;
/// exit; rjr ra), and the section-6 de-tuning switches that remove
/// immediate instructions and/or register-displacement addressing to
/// measure how a minimal abstract machine compresses.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_CODEGEN_CODEGEN_H
#define CCOMP_CODEGEN_CODEGEN_H

#include "ir/IR.h"
#include "vm/Program.h"

#include <string>

namespace ccomp {
namespace codegen {

/// The section-6 abstract machine variants.
struct Options {
  /// Remove all immediate instructions except the load-immediate
  /// primitive (ALU-immediate forms and immediate branches are
  /// synthesized through li + register forms).
  bool NoImmediates = false;
  /// Remove all addressing modes except load-/store-indirect (nonzero
  /// displacements are synthesized through address arithmetic).
  bool NoRegDisp = false;
};

/// Result of code generation.
struct Result {
  vm::VMProgram P;
  std::string Error;
  bool ok() const { return Error.empty(); }
};

/// Generates a linked VM program from \p M. The entry point is "main"
/// when present, else the first function.
Result generate(const ir::Module &M, const Options &Opts = Options());

} // namespace codegen
} // namespace ccomp

#endif // CCOMP_CODEGEN_CODEGEN_H

//===- codegen/Codegen.cpp - Tree IR to VM code generation -------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Frame layout (offsets from sp after the prologue's ENTER):
//
//   [0, OutBytes)            outgoing stack arguments (args 4+)
//   [OutBytes, +SaveBytes)   ra and callee-saved spills
//   [LocalBase, +Locals)     the IR function's locals (ADDRL offsets)
//   [TempBase, +TempBytes)   deep-expression spill temporaries
//   Frame = align8(TempBase + TempBytes);   ADDRF[k] -> sp + Frame + k
//
// Because SaveBytes and TempBytes are only known after the body has been
// emitted, body instructions reference frame regions through fixups that
// are patched once the layout is final.
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"

#include "support/Support.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace ccomp;
using namespace ccomp::codegen;
using ir::Op;
using ir::Tree;
using ir::TypeSuffix;
using vm::Instr;
using vm::VMOp;

namespace {

/// Runtime builtins lowered to system calls.
struct Builtin {
  const char *Name;
  vm::Sys Id;
  bool Returns;
};
constexpr Builtin Builtins[] = {
    {"exit", vm::Sys::Exit, false},
    {"print_int", vm::Sys::PutInt, false},
    {"print_char", vm::Sys::PutChar, false},
    {"print_str", vm::Sys::PutStr, false},
    {"alloc", vm::Sys::Alloc, true},
};

const Builtin *findBuiltin(const std::string &Name) {
  for (const Builtin &B : Builtins)
    if (Name == B.Name)
      return &B;
  return nullptr;
}

/// How a symbol resolves at code generation time.
struct SymTarget {
  enum KindT { Func, Data, Sys, Undefined } Kind = Undefined;
  uint32_t FuncIdx = 0;
  uint32_t Addr = 0;
  const Builtin *B = nullptr;
};

class FunctionEmitter;

/// Whole-module code generator: lays out globals, indexes functions, and
/// then emits every function.
class Generator {
public:
  Generator(const ir::Module &M, const Options &Opts) : M(M), Opts(Opts) {}

  Result run();

  const ir::Module &M;
  const Options &Opts;
  std::vector<SymTarget> SymMap; ///< Per ir::Module symbol index.
  std::string Error;

  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
  }
};

/// Per-function emitter.
class FunctionEmitter {
public:
  FunctionEmitter(Generator &G, const ir::Function &IRF, vm::VMFunction &VF)
      : G(G), IRF(IRF), VF(VF) {}

  void run();

private:
  enum class Adj { None, LocalBase, FrameTotal, TempBase };

  //===-- Instruction emission with frame fixups --------------------------===

  uint32_t emit(Instr In, Adj A = Adj::None) {
    uint32_t Idx = static_cast<uint32_t>(Body.size());
    Body.push_back(In);
    if (A != Adj::None)
      Fixups.push_back({Idx, A});
    return Idx;
  }

  void emitRRR(VMOp Op, unsigned Rd, unsigned Rs1, unsigned Rs2) {
    Instr In;
    In.Op = Op;
    In.Rd = static_cast<uint8_t>(Rd);
    In.Rs1 = static_cast<uint8_t>(Rs1);
    In.Rs2 = static_cast<uint8_t>(Rs2);
    emit(In);
  }

  void emitRR(VMOp Op, unsigned Rd, unsigned Rs1) {
    Instr In;
    In.Op = Op;
    In.Rd = static_cast<uint8_t>(Rd);
    In.Rs1 = static_cast<uint8_t>(Rs1);
    emit(In);
  }

  void emitLI(unsigned Rd, int32_t V) {
    Instr In;
    In.Op = VMOp::LI;
    In.Rd = static_cast<uint8_t>(Rd);
    In.Imm = V;
    emit(In);
  }

  /// rd = rs + imm(+region base), honoring NoImmediates.
  void emitAddImm(unsigned Rd, unsigned Rs, int32_t Imm, Adj A) {
    if (!G.Opts.NoImmediates) {
      Instr In;
      In.Op = VMOp::ADDI;
      In.Rd = static_cast<uint8_t>(Rd);
      In.Rs1 = static_cast<uint8_t>(Rs);
      In.Imm = Imm;
      emit(In, A);
      return;
    }
    // li rd, imm ; add rd, rs, rd  -- rd may equal rs only if rd != rs.
    unsigned Tmp = Rd != Rs ? Rd : unsigned(vm::AT);
    Instr In;
    In.Op = VMOp::LI;
    In.Rd = static_cast<uint8_t>(Tmp);
    In.Imm = Imm;
    emit(In, A);
    emitRRR(VMOp::ADD, Rd, Rs, Tmp);
  }

  /// Emits a load/store with displacement, honoring NoRegDisp (which
  /// permits only zero displacements) and NoImmediates.
  void emitMem(VMOp Op, unsigned ValReg, unsigned Base, int32_t Off,
               Adj A) {
    if (!G.Opts.NoRegDisp || (Off == 0 && A == Adj::None)) {
      Instr In;
      In.Op = Op;
      In.Rd = static_cast<uint8_t>(ValReg);
      In.Rs1 = static_cast<uint8_t>(Base);
      In.Imm = Off;
      emit(In, A);
      return;
    }
    emitAddImm(vm::AT, Base, Off, A);
    Instr In;
    In.Op = Op;
    In.Rd = static_cast<uint8_t>(ValReg);
    In.Rs1 = vm::AT;
    In.Imm = 0;
    emit(In);
  }

  //===-- Evaluation registers ---------------------------------------------===

  static constexpr unsigned NumEvalRegs = 8; // n4..n11.

  unsigned evalReg(unsigned Depth) {
    assert(Depth < NumEvalRegs);
    MaxDepthUsed = std::max(MaxDepthUsed, Depth + 1);
    return vm::N4 + Depth;
  }

  uint32_t allocTempSlot() {
    uint32_t Slot = NumTempSlots++;
    return Slot * 4; // Offset within the temp region (TempBase fixup).
  }

  //===-- Type/size helpers -------------------------------------------------===

  static unsigned sizeOfSuffix(TypeSuffix S) {
    switch (S) {
    case TypeSuffix::C: return 1;
    case TypeSuffix::S: return 2;
    default: return 4;
    }
  }

  static VMOp loadOp(TypeSuffix S, bool Unsigned) {
    switch (S) {
    case TypeSuffix::C: return Unsigned ? VMOp::LD_BU : VMOp::LD_B;
    case TypeSuffix::S: return Unsigned ? VMOp::LD_HU : VMOp::LD_H;
    default: return VMOp::LD_W;
    }
  }

  static VMOp storeOp(TypeSuffix S) {
    switch (S) {
    case TypeSuffix::C: return VMOp::ST_B;
    case TypeSuffix::S: return VMOp::ST_H;
    default: return VMOp::ST_W;
    }
  }

  //===-- Addressing ---------------------------------------------------------

  /// A resolved memory operand: base register + displacement (+ region).
  struct MemAddr {
    unsigned Base = 0;
    int32_t Off = 0;
    Adj A = Adj::None;
  };

  /// Resolves an address tree into (base, offset) using register-
  /// displacement addressing where possible. \p Depth is the free
  /// evaluation depth for computed bases.
  MemAddr resolveAddr(const Tree *T, unsigned Depth) {
    switch (T->O) {
    case Op::ADDRL:
      return {vm::SP, static_cast<int32_t>(T->Literal), Adj::LocalBase};
    case Op::ADDRF:
      return {vm::SP, static_cast<int32_t>(T->Literal), Adj::FrameTotal};
    case Op::ADDRG: {
      const SymTarget &ST = G.SymMap[static_cast<size_t>(T->Literal)];
      if (ST.Kind != SymTarget::Data) {
        G.fail("address of non-data symbol in memory operand");
        return {vm::ZR, 0, Adj::None};
      }
      return {vm::ZR, static_cast<int32_t>(ST.Addr), Adj::None};
    }
    case Op::ADD:
      // base + constant: classic register-displacement.
      if (T->Suffix == TypeSuffix::P && T->Kids[1]->O == Op::CNST) {
        unsigned Base = evalExpr(T->Kids[0], Depth);
        return {Base, static_cast<int32_t>(T->Kids[1]->Literal),
                Adj::None};
      }
      break;
    default:
      break;
    }
    unsigned Base = evalExpr(T, Depth);
    return {Base, 0, Adj::None};
  }

  //===-- Expression evaluation ----------------------------------------------

  unsigned evalExpr(const Tree *T, unsigned Depth);
  void evalBinary(const Tree *T, unsigned Depth);
  void emitCall(const Tree *Call, unsigned ResultDepth);
  void emitBranchTree(const Tree *T);
  void emitStatement(const Tree *T);

  static bool isPow2(int64_t V) { return V > 0 && (V & (V - 1)) == 0; }
  static unsigned log2u(int64_t V) {
    unsigned L = 0;
    while ((1ll << L) < V)
      ++L;
    return L;
  }

  Generator &G;
  const ir::Function &IRF;
  vm::VMFunction &VF;

  std::vector<Instr> Body;
  std::vector<std::pair<uint32_t, Adj>> Fixups;
  std::vector<std::pair<uint32_t, uint32_t>> LabelDefs; ///< (label, bodyidx)

  std::vector<const Tree *> PendingArgs;

  unsigned MaxDepthUsed = 0;
  uint32_t NumTempSlots = 0;
  bool HasCall = false;
  uint32_t MaxOutArgs = 0;
  uint32_t RetLabel = 0;
};

//===----------------------------------------------------------------------===//
// Expression evaluation
//===----------------------------------------------------------------------===//

unsigned FunctionEmitter::evalExpr(const Tree *T, unsigned Depth) {
  switch (T->O) {
  case Op::CNST: {
    unsigned R = evalReg(Depth);
    emitLI(R, static_cast<int32_t>(T->Literal));
    return R;
  }
  case Op::ADDRL: {
    unsigned R = evalReg(Depth);
    emitAddImm(R, vm::SP, static_cast<int32_t>(T->Literal),
               Adj::LocalBase);
    return R;
  }
  case Op::ADDRF: {
    unsigned R = evalReg(Depth);
    emitAddImm(R, vm::SP, static_cast<int32_t>(T->Literal),
               Adj::FrameTotal);
    return R;
  }
  case Op::ADDRG: {
    unsigned R = evalReg(Depth);
    const SymTarget &ST = G.SymMap[static_cast<size_t>(T->Literal)];
    if (ST.Kind != SymTarget::Data) {
      G.fail("cannot take the value of symbol (function address?)");
      emitLI(R, 0);
      return R;
    }
    emitLI(R, static_cast<int32_t>(ST.Addr));
    return R;
  }
  case Op::INDIR: {
    unsigned R = evalReg(Depth);
    MemAddr A = resolveAddr(T->Kids[0], Depth);
    emitMem(loadOp(T->Suffix, /*Unsigned=*/false), R, A.Base, A.Off, A.A);
    return R;
  }
  case Op::ZXT8:
  case Op::ZXT16: {
    // Unsigned sub-word load idiom: ZXT(INDIR) selects ld.ibu / ld.ihu.
    const Tree *K = T->Kids[0];
    bool Byte = T->O == Op::ZXT8;
    if (K->O == Op::INDIR &&
        sizeOfSuffix(K->Suffix) == (Byte ? 1u : 2u)) {
      unsigned R = evalReg(Depth);
      MemAddr A = resolveAddr(K->Kids[0], Depth);
      emitMem(loadOp(K->Suffix, /*Unsigned=*/true), R, A.Base, A.Off, A.A);
      return R;
    }
    unsigned R = evalExpr(K, Depth);
    emitRR(Byte ? VMOp::ZXTB : VMOp::ZXTH, R, R);
    return R;
  }
  case Op::SXT8: {
    unsigned R = evalExpr(T->Kids[0], Depth);
    emitRR(VMOp::SXTB, R, R);
    return R;
  }
  case Op::SXT16: {
    unsigned R = evalExpr(T->Kids[0], Depth);
    emitRR(VMOp::SXTH, R, R);
    return R;
  }
  case Op::NEG: {
    unsigned R = evalExpr(T->Kids[0], Depth);
    emitRR(VMOp::NEG, R, R);
    return R;
  }
  case Op::BCOM: {
    unsigned R = evalExpr(T->Kids[0], Depth);
    emitRR(VMOp::NOT, R, R);
    return R;
  }
  case Op::ADD: case Op::SUB: case Op::MUL: case Op::DIV: case Op::MOD:
  case Op::BAND: case Op::BOR: case Op::BXOR: case Op::LSH: case Op::RSH:
    evalBinary(T, Depth);
    return evalReg(Depth);
  case Op::CALL: {
    emitCall(T, Depth);
    unsigned R = evalReg(Depth);
    emitRR(VMOp::MOV, R, vm::N0);
    return R;
  }
  default:
    G.fail(std::string("cannot evaluate IR op ") + ir::opName(T->O));
    return evalReg(Depth);
  }
}

void FunctionEmitter::evalBinary(const Tree *T, unsigned Depth) {
  bool Unsigned = T->Suffix == TypeSuffix::U;
  VMOp RegOp;
  VMOp ImmOp = VMOp::NumOps;
  switch (T->O) {
  case Op::ADD: RegOp = VMOp::ADD; ImmOp = VMOp::ADDI; break;
  case Op::SUB: RegOp = VMOp::SUB; break; // subi via addi -imm.
  case Op::MUL: RegOp = VMOp::MUL; ImmOp = VMOp::MULI; break;
  case Op::DIV: RegOp = Unsigned ? VMOp::DIVU : VMOp::DIV; break;
  case Op::MOD: RegOp = Unsigned ? VMOp::REMU : VMOp::REM; break;
  case Op::BAND: RegOp = VMOp::AND; ImmOp = VMOp::ANDI; break;
  case Op::BOR: RegOp = VMOp::OR; ImmOp = VMOp::ORI; break;
  case Op::BXOR: RegOp = VMOp::XOR; ImmOp = VMOp::XORI; break;
  case Op::LSH: RegOp = VMOp::SLL; ImmOp = VMOp::SLLI; break;
  case Op::RSH:
    RegOp = Unsigned ? VMOp::SRL : VMOp::SRA;
    ImmOp = Unsigned ? VMOp::SRLI : VMOp::SRAI;
    break;
  default:
    ccomp_unreachable("not a binary operator");
  }

  const Tree *L = T->Kids[0];
  const Tree *R = T->Kids[1];

  // Immediate right operand (if the machine variant allows it).
  if (R->O == Op::CNST && !G.Opts.NoImmediates) {
    int64_t V = R->Literal;
    // Strength reduction: multiply/divide/modulo by powers of two.
    if (T->O == Op::MUL && isPow2(V)) {
      unsigned RL = evalExpr(L, Depth);
      Instr In;
      In.Op = VMOp::SLLI;
      In.Rd = In.Rs1 = static_cast<uint8_t>(RL);
      In.Imm = static_cast<int32_t>(log2u(V));
      emit(In);
      return;
    }
    if (T->O == Op::DIV && Unsigned && isPow2(V)) {
      unsigned RL = evalExpr(L, Depth);
      Instr In;
      In.Op = VMOp::SRLI;
      In.Rd = In.Rs1 = static_cast<uint8_t>(RL);
      In.Imm = static_cast<int32_t>(log2u(V));
      emit(In);
      return;
    }
    if (T->O == Op::MOD && Unsigned && isPow2(V)) {
      unsigned RL = evalExpr(L, Depth);
      Instr In;
      In.Op = VMOp::ANDI;
      In.Rd = In.Rs1 = static_cast<uint8_t>(RL);
      In.Imm = static_cast<int32_t>(V - 1);
      emit(In);
      return;
    }
    if (T->O == Op::SUB) {
      unsigned RL = evalExpr(L, Depth);
      Instr In;
      In.Op = VMOp::ADDI;
      In.Rd = In.Rs1 = static_cast<uint8_t>(RL);
      In.Imm = static_cast<int32_t>(-V);
      emit(In);
      return;
    }
    if (ImmOp != VMOp::NumOps) {
      unsigned RL = evalExpr(L, Depth);
      Instr In;
      In.Op = ImmOp;
      In.Rd = In.Rs1 = static_cast<uint8_t>(RL);
      In.Imm = static_cast<int32_t>(V);
      emit(In);
      return;
    }
  }

  // General register-register path, with spilling at the depth limit.
  if (Depth + 1 >= NumEvalRegs) {
    uint32_t SlotOff = allocTempSlot();
    unsigned RL = evalExpr(L, Depth);
    emitMem(VMOp::ST_W, RL, vm::SP, static_cast<int32_t>(SlotOff),
            Adj::TempBase);
    unsigned RR = evalExpr(R, Depth);
    emitMem(VMOp::LD_W, vm::AT, vm::SP, static_cast<int32_t>(SlotOff),
            Adj::TempBase);
    emitRRR(RegOp, evalReg(Depth), vm::AT, RR);
    return;
  }
  unsigned RL = evalExpr(L, Depth);
  unsigned RR = evalExpr(R, Depth + 1);
  emitRRR(RegOp, RL, RL, RR);
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

void FunctionEmitter::emitCall(const Tree *Call, unsigned ResultDepth) {
  std::vector<const Tree *> Args = std::move(PendingArgs);
  PendingArgs.clear();
  MaxOutArgs = std::max<uint32_t>(MaxOutArgs,
                                  static_cast<uint32_t>(Args.size()));

  const Tree *Callee = Call->Kids[0];
  if (Callee->O != Op::ADDRG) {
    G.fail("indirect calls are not supported");
    return;
  }
  const SymTarget &ST = G.SymMap[static_cast<size_t>(Callee->Literal)];

  // Stack arguments first (they may use the evaluation stack freely).
  for (size_t I = 4; I < Args.size(); ++I) {
    unsigned R = evalExpr(Args[I]->Kids[0], ResultDepth);
    emitMem(VMOp::ST_W, R, vm::SP, static_cast<int32_t>(4 * (I - 4)),
            Adj::None);
  }
  // Register arguments: evaluate into the evaluation stack, then move
  // into n0..n3 (the moves mirror the paper's mov.i n1,n4 idiom).
  unsigned NReg = static_cast<unsigned>(std::min<size_t>(Args.size(), 4));
  std::vector<unsigned> Held(NReg);
  for (unsigned I = 0; I != NReg; ++I)
    Held[I] = evalExpr(Args[I]->Kids[0], ResultDepth + I);
  for (unsigned I = 0; I != NReg; ++I)
    emitRR(VMOp::MOV, vm::N0 + I, Held[I]);

  if (ST.Kind == SymTarget::Sys) {
    Instr In;
    In.Op = VMOp::SYS;
    In.Imm = static_cast<int32_t>(ST.B->Id);
    emit(In);
    HasCall = true; // Conservative: syscalls do not clobber ra, but the
                    // shared prologue shape is kept uniform.
    return;
  }
  if (ST.Kind != SymTarget::Func) {
    G.fail("call to non-function symbol");
    return;
  }
  Instr In;
  In.Op = VMOp::CALL;
  In.Target = ST.FuncIdx;
  emit(In);
  HasCall = true;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void FunctionEmitter::emitBranchTree(const Tree *T) {
  bool Unsigned = T->Suffix == TypeSuffix::U || T->Suffix == TypeSuffix::P;
  VMOp RegOp, ImmOp;
  switch (T->O) {
  case Op::EQ: RegOp = VMOp::BEQ; ImmOp = VMOp::BEQI; break;
  case Op::NE: RegOp = VMOp::BNE; ImmOp = VMOp::BNEI; break;
  case Op::LT:
    RegOp = Unsigned ? VMOp::BLTU : VMOp::BLT;
    ImmOp = Unsigned ? VMOp::BLTUI : VMOp::BLTI;
    break;
  case Op::LE:
    RegOp = Unsigned ? VMOp::BLEU : VMOp::BLE;
    ImmOp = Unsigned ? VMOp::BLEUI : VMOp::BLEI;
    break;
  case Op::GT:
    RegOp = Unsigned ? VMOp::BGTU : VMOp::BGT;
    ImmOp = Unsigned ? VMOp::BGTUI : VMOp::BGTI;
    break;
  case Op::GE:
    RegOp = Unsigned ? VMOp::BGEU : VMOp::BGE;
    ImmOp = Unsigned ? VMOp::BGEUI : VMOp::BGEI;
    break;
  default:
    ccomp_unreachable("not a branch tree");
  }
  uint32_t Label = static_cast<uint32_t>(T->Literal);

  unsigned RL = evalExpr(T->Kids[0], 0);
  if (T->Kids[1]->O == Op::CNST && !G.Opts.NoImmediates) {
    Instr In;
    In.Op = ImmOp;
    In.Rs1 = static_cast<uint8_t>(RL);
    In.Imm = static_cast<int32_t>(T->Kids[1]->Literal);
    In.Target = Label;
    emit(In);
    return;
  }
  unsigned RR = evalExpr(T->Kids[1], 1);
  Instr In;
  In.Op = RegOp;
  In.Rs1 = static_cast<uint8_t>(RL);
  In.Rs2 = static_cast<uint8_t>(RR);
  In.Target = Label;
  emit(In);
}

void FunctionEmitter::emitStatement(const Tree *T) {
  switch (T->O) {
  case Op::LABEL:
    LabelDefs.push_back({static_cast<uint32_t>(T->Literal),
                         static_cast<uint32_t>(Body.size())});
    return;
  case Op::JUMP: {
    Instr In;
    In.Op = VMOp::JMP;
    In.Target = static_cast<uint32_t>(T->Literal);
    emit(In);
    return;
  }
  case Op::EQ: case Op::NE: case Op::LT: case Op::LE: case Op::GT:
  case Op::GE:
    emitBranchTree(T);
    return;
  case Op::ARG:
    PendingArgs.push_back(T);
    return;
  case Op::CALL:
    emitCall(T, 0);
    return;
  case Op::ASGN: {
    const Tree *Addr = T->Kids[0];
    const Tree *Val = T->Kids[1];
    unsigned VR;
    if (Val->O == Op::CALL) {
      emitCall(Val, 0);
      VR = vm::N0;
    } else {
      VR = evalExpr(Val, 0);
    }
    // Resolve the address with the value's depth reserved.
    unsigned FreeDepth = VR == vm::N0 ? 0 : (VR - vm::N4 + 1);
    MemAddr A = resolveAddr(Addr, FreeDepth);
    emitMem(storeOp(T->Suffix), VR, A.Base, A.Off, A.A);
    return;
  }
  case Op::ASGNB: {
    unsigned RD = evalExpr(T->Kids[0], 0);
    unsigned RS = evalExpr(T->Kids[1], 1);
    Instr In;
    In.Op = VMOp::MCPY;
    In.Rd = static_cast<uint8_t>(RD);
    In.Rs1 = static_cast<uint8_t>(RS);
    In.Imm = static_cast<int32_t>(T->Literal);
    emit(In);
    return;
  }
  case Op::RET: {
    if (T->NKids == 1) {
      if (T->Kids[0]->O == Op::CALL) {
        emitCall(T->Kids[0], 0);
        // Result already in n0.
      } else {
        unsigned R = evalExpr(T->Kids[0], 0);
        if (R != vm::N0)
          emitRR(VMOp::MOV, vm::N0, R);
      }
    }
    Instr In;
    In.Op = VMOp::JMP;
    In.Target = RetLabel;
    emit(In);
    return;
  }
  default:
    // A pure expression used as a statement: evaluate for any traps it
    // may raise, discard the value.
    evalExpr(T, 0);
    return;
  }
}

//===----------------------------------------------------------------------===//
// Function assembly: prologue, body patching, epilogue
//===----------------------------------------------------------------------===//

void FunctionEmitter::run() {
  RetLabel = IRF.NumLabels;

  for (const Tree *T : IRF.Forest)
    emitStatement(T);

  // Layout now that SaveBytes/TempBytes are known.
  uint32_t OutBytes = MaxOutArgs > 4 ? 4 * (MaxOutArgs - 4) : 0;
  unsigned SavedRegs = MaxDepthUsed; // n4..n4+MaxDepthUsed-1.
  bool SaveRA = HasCall;
  uint32_t SaveBytes = 4 * (SavedRegs + (SaveRA ? 1 : 0));
  uint32_t LocalBase = OutBytes + SaveBytes;
  uint32_t TempBase = LocalBase + IRF.FrameSize;
  uint32_t Frame = (TempBase + 4 * NumTempSlots + 7) & ~7u;

  for (auto [Idx, A] : Fixups) {
    int32_t Delta = 0;
    switch (A) {
    case Adj::LocalBase: Delta = static_cast<int32_t>(LocalBase); break;
    case Adj::FrameTotal: Delta = static_cast<int32_t>(Frame); break;
    case Adj::TempBase: Delta = static_cast<int32_t>(TempBase); break;
    case Adj::None: break;
    }
    Body[Idx].Imm += Delta;
  }

  // Prologue: enter; spill callee-saved and ra; store register params.
  std::vector<Instr> Pro;
  auto ProInstr = [&Pro](VMOp Op, uint8_t Rd, uint8_t Rs1, int32_t Imm) {
    Instr In;
    In.Op = Op;
    In.Rd = Rd;
    In.Rs1 = Rs1;
    In.Imm = Imm;
    Pro.push_back(In);
  };
  if (Frame != 0)
    ProInstr(VMOp::ENTER, 0, 0, static_cast<int32_t>(Frame));
  uint32_t SaveOff = OutBytes;
  std::vector<vm::FuncMeta::Save> Saves;
  for (unsigned I = 0; I != SavedRegs; ++I) {
    ProInstr(VMOp::SPILL, static_cast<uint8_t>(vm::N4 + I), 0,
             static_cast<int32_t>(SaveOff));
    Saves.push_back({static_cast<uint8_t>(vm::N4 + I),
                     static_cast<int32_t>(SaveOff)});
    SaveOff += 4;
  }
  if (SaveRA) {
    ProInstr(VMOp::SPILL, vm::RA, 0, static_cast<int32_t>(SaveOff));
    Saves.push_back({vm::RA, static_cast<int32_t>(SaveOff)});
    SaveOff += 4;
  }
  // Register parameters into their frame slots.
  for (size_t I = 0; I != IRF.ParamSlots.size() && I < 4; ++I)
    ProInstr(VMOp::ST_W, static_cast<uint8_t>(vm::N0 + I), vm::SP,
             static_cast<int32_t>(LocalBase + IRF.ParamSlots[I]));

  // NoRegDisp legalization for the parameter stores (SPILL/RELOAD are
  // macro-ops and always allowed).
  if (G.Opts.NoRegDisp) {
    std::vector<Instr> Fixed;
    for (const Instr &In : Pro) {
      if (In.Op == VMOp::ST_W && In.Imm != 0) {
        if (!G.Opts.NoImmediates) {
          Instr AddI;
          AddI.Op = VMOp::ADDI;
          AddI.Rd = vm::AT;
          AddI.Rs1 = vm::SP;
          AddI.Imm = In.Imm;
          Fixed.push_back(AddI);
        } else {
          Instr Li;
          Li.Op = VMOp::LI;
          Li.Rd = vm::AT;
          Li.Imm = In.Imm;
          Fixed.push_back(Li);
          Instr Add;
          Add.Op = VMOp::ADD;
          Add.Rd = vm::AT;
          Add.Rs1 = vm::SP;
          Add.Rs2 = vm::AT;
          Fixed.push_back(Add);
        }
        Instr St = In;
        St.Rs1 = vm::AT;
        St.Imm = 0;
        Fixed.push_back(St);
      } else {
        Fixed.push_back(In);
      }
    }
    Pro = std::move(Fixed);
  }

  // Epilogue: shared return label; reload; exit; rjr ra.
  std::vector<Instr> Epi;
  for (size_t I = Saves.size(); I-- > 0;) {
    Instr In;
    In.Op = VMOp::RELOAD;
    In.Rd = Saves[I].Reg;
    In.Imm = Saves[I].Off;
    Epi.push_back(In);
  }
  if (Frame != 0) {
    Instr In;
    In.Op = VMOp::EXIT;
    In.Imm = static_cast<int32_t>(Frame);
    Epi.push_back(In);
  }
  {
    Instr In;
    In.Op = VMOp::RJR;
    In.Rd = vm::RA;
    Epi.push_back(In);
  }

  // Assemble: prologue + body + epilogue; labels shift by |Pro|.
  uint32_t ProLen = static_cast<uint32_t>(Pro.size());
  VF.FrameSize = Frame;
  VF.Code = std::move(Pro);
  VF.Code.insert(VF.Code.end(), Body.begin(), Body.end());
  uint32_t EpiStart = static_cast<uint32_t>(VF.Code.size());
  VF.Code.insert(VF.Code.end(), Epi.begin(), Epi.end());

  VF.LabelPos.assign(IRF.NumLabels + 1, 0);
  for (auto [L, Idx] : LabelDefs)
    VF.LabelPos[L] = Idx + ProLen;
  VF.LabelPos[RetLabel] = EpiStart;
}

//===----------------------------------------------------------------------===//
// Module-level generation
//===----------------------------------------------------------------------===//

Result Generator::run() {
  Result Res;
  vm::VMProgram &P = Res.P;

  // Function indices.
  std::map<std::string, uint32_t> FuncIdx;
  for (uint32_t I = 0; I != M.Functions.size(); ++I) {
    FuncIdx[M.Functions[I]->Name] = I;
    vm::VMFunction F;
    F.Name = M.Functions[I]->Name;
    P.Functions.push_back(std::move(F));
  }

  // Global layout.
  uint32_t Addr = P.GlobalBase;
  std::map<uint32_t, uint32_t> GlobalAddr; // symbol index -> address.
  for (const ir::Global &G : M.Globals) {
    uint32_t Align = std::max<uint32_t>(G.Align, 1);
    Addr = (Addr + Align - 1) & ~(Align - 1);
    vm::VMGlobal VG;
    VG.Name = M.Symbols[G.SymbolIndex].Name;
    VG.Addr = Addr;
    VG.Size = G.Size;
    VG.Init = G.Init;
    GlobalAddr[G.SymbolIndex] = Addr;
    Addr += G.Size;
    P.Globals.push_back(std::move(VG));
  }
  P.GlobalEnd = Addr;

  // Symbol resolution map.
  SymMap.resize(M.Symbols.size());
  for (uint32_t I = 0; I != M.Symbols.size(); ++I) {
    const ir::Symbol &S = M.Symbols[I];
    auto FIt = FuncIdx.find(S.Name);
    if (FIt != FuncIdx.end()) {
      SymMap[I].Kind = SymTarget::Func;
      SymMap[I].FuncIdx = FIt->second;
      continue;
    }
    auto GIt = GlobalAddr.find(I);
    if (GIt != GlobalAddr.end()) {
      SymMap[I].Kind = SymTarget::Data;
      SymMap[I].Addr = GIt->second;
      continue;
    }
    if (const Builtin *B = findBuiltin(S.Name)) {
      SymMap[I].Kind = SymTarget::Sys;
      SymMap[I].B = B;
      continue;
    }
    SymMap[I].Kind = SymTarget::Undefined;
  }

  // Emit every function.
  for (uint32_t I = 0; I != M.Functions.size(); ++I) {
    FunctionEmitter FE(*this, *M.Functions[I], P.Functions[I]);
    FE.run();
    if (!Error.empty()) {
      Res.Error = M.Functions[I]->Name + ": " + Error;
      return Res;
    }
  }

  int32_t Main = P.findFunction("main");
  P.Entry = Main >= 0 ? static_cast<uint32_t>(Main) : 0;

  std::string VErr = vm::verify(P);
  if (!VErr.empty())
    Res.Error = "internal: VM verification failed: " + VErr;
  return Res;
}

} // namespace

Result codegen::generate(const ir::Module &M, const Options &Opts) {
  Generator G(M, Opts);
  return G.run();
}

//===- sim/Paging.h - Demand-paging simulation ------------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LRU demand-paging simulator over code-page reference strings
/// (produced by the execution engines' page tracking). Reproduces the
/// introduction's motivating measurement: when memory is scarce the CPU
/// idles during paging, so executing compressed code — fewer, denser
/// pages — can cut total time even though each instruction costs more
/// to interpret.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_SIM_PAGING_H
#define CCOMP_SIM_PAGING_H

#include <cstdint>
#include <vector>

namespace ccomp {
namespace sim {

/// Result of replaying a page reference string.
struct PagingResult {
  uint64_t References = 0;
  uint64_t Faults = 0;
};

/// Replays \p Trace (a run-length page reference string: successive
/// entries are distinct pages) against an LRU-managed resident set of
/// \p ResidentPages frames.
PagingResult simulateLRU(const std::vector<uint32_t> &Trace,
                         unsigned ResidentPages);

/// Disk/backing-store model for turning faults into time.
struct DiskModel {
  double FaultSeconds = 0.012; ///< ~12ms seek+read, period-accurate.
  /// Sequential transfer rate for the bytes a fault reads, used by the
  /// page-granularity model where fault payloads vary in size (~2 MB/s,
  /// period-accurate commodity disk).
  double TransferBytesPerSecond = 2e6;
};

/// Total-time model: CPU execution time plus fault service time. The
/// CPU is idle during paging (the paper's observation), so the terms
/// add.
struct TotalTime {
  double CpuSeconds = 0;
  double PagingSeconds = 0;
  double total() const { return CpuSeconds + PagingSeconds; }
};

inline TotalTime totalTime(double CpuSeconds, const PagingResult &P,
                           const DiskModel &D) {
  return {CpuSeconds, static_cast<double>(P.Faults) * D.FaultSeconds};
}

/// Decode-on-fault variant for the store runtime (src/store): every
/// store miss pays one backing-store fetch, and the CPU additionally
/// runs the store's measured frame decompression — the "decompress the
/// page contents on page-in" configuration of section 1.
inline TotalTime storeTotalTime(double CpuSeconds, uint64_t Faults,
                                uint64_t DecodeNanos, const DiskModel &D) {
  return {CpuSeconds + static_cast<double>(DecodeNanos) / 1e9,
          static_cast<double>(Faults) * D.FaultSeconds};
}

/// Page-granularity variant of storeTotalTime: when the store faults
/// sub-function pages, the fixed per-fault seek still applies to every
/// fault, but the read size now varies with the page, so the transfer
/// term is modeled from the compressed bytes actually fetched
/// (store::StoreStats::FetchedBytes) instead of being folded into the
/// seek constant. Smaller pages trade more seeks for fewer wasted bytes
/// per fault — the sweep in EXPERIMENTS E7 measures where that trade
/// pays off.
inline TotalTime pagedStoreTotalTime(double CpuSeconds, uint64_t Faults,
                                     uint64_t FetchedCompressedBytes,
                                     uint64_t DecodeNanos,
                                     const DiskModel &D) {
  return {CpuSeconds + static_cast<double>(DecodeNanos) / 1e9,
          static_cast<double>(Faults) * D.FaultSeconds +
              static_cast<double>(FetchedCompressedBytes) /
                  D.TransferBytesPerSecond};
}

/// Remote-fetch variant: a store miss pays link transfer time instead of
/// a disk seek. \p FetchVirtualNanos is the virtual clock accumulated by
/// the store's frame source (store::StoreStats::FetchVirtualNanos —
/// transfer, injected failures, and retry backoff), and the CPU still
/// runs the frame decoder, so decode time stays a CPU term. This is the
/// mobile-code delivery scenario of section 1 at per-function
/// granularity.
inline TotalTime remoteTotalTime(double CpuSeconds, uint64_t DecodeNanos,
                                 uint64_t FetchVirtualNanos) {
  return {CpuSeconds + static_cast<double>(DecodeNanos) / 1e9,
          static_cast<double>(FetchVirtualNanos) / 1e9};
}

/// Multi-tenant variant: N tenant stores share one FrameRegistry, so the
/// decode and fault bills are *registry-global* — a frame decoded for
/// one tenant is a free hit for every other. \p TenantsCpuSeconds is the
/// summed interpreter CPU across tenants (each tenant still executes its
/// own instructions); \p RegistryDecodes and \p RegistryDecodeNanos come
/// from store::RegistryStats, which bill each shared decode exactly
/// once, process-wide. Contrast with N private stores, whose time is N
/// independent storeTotalTime bills: the difference is the paper's
/// memory-economics argument applied across tenants instead of across
/// functions.
inline TotalTime sharedStoreTotalTime(double TenantsCpuSeconds,
                                      uint64_t RegistryDecodes,
                                      uint64_t RegistryDecodeNanos,
                                      const DiskModel &D) {
  return {TenantsCpuSeconds + static_cast<double>(RegistryDecodeNanos) / 1e9,
          static_cast<double>(RegistryDecodes) * D.FaultSeconds};
}

/// JIT cost model: what compiling hot code to native form charges. The
/// paper's generator produces ~2.5 MB/s of native code, so a tiered run
/// pays CompiledBytes / BytesPerSecond of CPU before the hot set runs
/// at native speed.
struct JitModel {
  double BytesPerSecond = 2.5e6; ///< Paper's JIT rate headline.
};

/// Tiered-execution variant: the paged-store time model plus a compile
/// charge on the CPU term. \p CompiledBytes is the threaded code the
/// tier produced (store::TierStats::CompiledBytesTotal); compilation
/// runs on the CPU like decode does, while the paging terms are
/// unchanged — tiering trades a one-time compile charge for the
/// interpretation penalty on every hot instruction.
inline TotalTime tieredTotalTime(double CpuSeconds, uint64_t Faults,
                                 uint64_t FetchedCompressedBytes,
                                 uint64_t DecodeNanos, uint64_t CompiledBytes,
                                 const DiskModel &D, const JitModel &J) {
  TotalTime T = pagedStoreTotalTime(CpuSeconds, Faults,
                                    FetchedCompressedBytes, DecodeNanos, D);
  T.CpuSeconds += static_cast<double>(CompiledBytes) / J.BytesPerSecond;
  return T;
}

} // namespace sim
} // namespace ccomp

#endif // CCOMP_SIM_PAGING_H

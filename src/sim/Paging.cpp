//===- sim/Paging.cpp - Demand-paging simulation -------------------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/Paging.h"

#include <list>
#include <unordered_map>

using namespace ccomp;
using namespace ccomp::sim;

PagingResult sim::simulateLRU(const std::vector<uint32_t> &Trace,
                              unsigned ResidentPages) {
  PagingResult R;
  if (ResidentPages == 0) {
    R.References = Trace.size();
    R.Faults = Trace.size();
    return R;
  }
  // Classic LRU: list in recency order plus an index into it.
  std::list<uint32_t> Recency;
  std::unordered_map<uint32_t, std::list<uint32_t>::iterator> Where;
  for (uint32_t Page : Trace) {
    ++R.References;
    auto It = Where.find(Page);
    if (It != Where.end()) {
      Recency.splice(Recency.begin(), Recency, It->second);
      continue;
    }
    ++R.Faults;
    if (Where.size() == ResidentPages) {
      uint32_t Victim = Recency.back();
      Recency.pop_back();
      Where.erase(Victim);
    }
    Recency.push_front(Page);
    Where[Page] = Recency.begin();
  }
  return R;
}

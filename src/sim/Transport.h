//===- sim/Transport.h - Delivery link models -------------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Link models for the paper's delivery scenarios ("this fact is
/// self-evident when delivering code over 28.8kbaud modems, but it can
/// be true for faster networks"). The bench harness combines transfer
/// time from these models with measured client-side decompress/compile
/// times to reproduce the wire-vs-BRISC crossover: the wire format wins
/// over a modem, BRISC wins on a LAN.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_SIM_TRANSPORT_H
#define CCOMP_SIM_TRANSPORT_H

#include <cstddef>

namespace ccomp {
namespace sim {

/// A point-to-point link.
///
/// Two costing modes, because LatencySeconds is *per-transfer setup*
/// (modem dial/handshake, connection establishment), not a per-byte
/// cost:
///   - transferSeconds(): one self-contained transfer — setup plus
///     payload. Right for whole-image delivery (bench_delivery).
///   - streamSeconds(): payload only, over an already-open connection.
///     Right for per-frame fetch streams (a demand-paged store faulting
///     hundreds of frames over one session): pay LatencySeconds once
///     per session, then streamSeconds() per frame, or modem setup gets
///     overcounted N times.
struct Link {
  const char *Name;
  double BitsPerSecond;
  double LatencySeconds; ///< Per-transfer setup latency.

  /// Seconds to deliver \p Bytes as one transfer (setup + payload).
  double transferSeconds(size_t Bytes) const {
    return LatencySeconds + streamSeconds(Bytes);
  }

  /// Seconds to move \p Bytes across an established connection: the
  /// payload cost alone, no setup latency (the batched-latency mode).
  double streamSeconds(size_t Bytes) const {
    return static_cast<double>(Bytes) * 8.0 / BitsPerSecond;
  }
};

/// Period-accurate link presets.
inline Link modem28k() { return {"28.8k modem", 28800.0, 0.1}; }
inline Link isdn128k() { return {"128k ISDN", 128000.0, 0.05}; }
inline Link ethernet10M() { return {"10Mb LAN", 10000000.0, 0.005}; }
inline Link fast100M() { return {"100Mb LAN", 100000000.0, 0.001}; }

/// End-to-end delivery time: transfer plus measured client-side work
/// (decompression, code generation), in seconds.
struct Delivery {
  double TransferSeconds = 0;
  double ClientSeconds = 0;
  double total() const { return TransferSeconds + ClientSeconds; }
};

inline Delivery deliver(const Link &L, size_t Bytes,
                        double ClientSeconds) {
  return {L.transferSeconds(Bytes), ClientSeconds};
}

} // namespace sim
} // namespace ccomp

#endif // CCOMP_SIM_TRANSPORT_H

//===- native/Threaded.h - Threaded-code backend (the JIT target) -*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "native code" target: direct-threaded code — a flat array of
/// pre-decoded instructions, each carrying its handler function pointer,
/// with branch and call targets resolved to absolute indices. Converting
/// BRISC to this form is the paper's just-in-time native code
/// generation; its throughput (bytes of produced code per second) is the
/// 2.5 MB/s headline, and the runtime of threaded code is the "native"
/// baseline the ~12x interpretation penalty is measured against.
///
/// Substitution note (see DESIGN.md): the paper emits Pentium machine
/// code; we emit host-independent threaded code. Relative speeds keep
/// the paper's ordering (native < JIT-from-BRISC << interpretation).
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_NATIVE_THREADED_H
#define CCOMP_NATIVE_THREADED_H

#include "brisc/Brisc.h"
#include "vm/Machine.h"
#include "vm/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccomp {
namespace native {

struct State;
struct NInstr;

/// Instruction handler: executes one instruction, returns the next pc.
using Handler = uint32_t (*)(State &, const NInstr &, uint32_t);

/// One pre-decoded threaded instruction ("produced native code").
struct NInstr {
  Handler H = nullptr;
  uint8_t Rd = 0, Rs1 = 0, Rs2 = 0;
  int32_t Imm = 0;
  uint32_t Target = 0; ///< Absolute index (branch/call) / meta id (epi).
};

/// A threaded-code executable: one flat code array plus per-function
/// entry points and epilogue metadata.
struct NProgram {
  std::vector<NInstr> Code;
  std::vector<uint32_t> FuncEntry; ///< Absolute index of each function.
  std::vector<vm::FuncMeta> Metas; ///< For EPI, indexed per function.
  uint32_t Entry = 0;              ///< Entry function index.

  std::vector<vm::VMGlobal> Globals;
  uint32_t GlobalBase = 0x100;
  uint32_t GlobalEnd = 0x100;

  /// Bytes of produced code (the JIT-rate numerator).
  size_t codeBytes() const { return Code.size() * sizeof(NInstr); }
};

/// Code-generation statistics for the JIT-rate experiment.
struct GenStats {
  uint64_t InputInstrs = 0;
  uint64_t OutputBytes = 0;
  double Seconds = 0;
};

/// Generates threaded code from a decoded VM program.
NProgram generate(const vm::VMProgram &P, GenStats *Stats = nullptr);

/// The paper's client-side pipeline: decode BRISC and generate native
/// code in one step.
NProgram generateFromBrisc(const brisc::BriscProgram &B,
                           GenStats *Stats = nullptr);

/// Executes threaded code.
vm::RunResult run(const NProgram &P,
                  vm::RunOptions Opts = vm::RunOptions());

} // namespace native
} // namespace ccomp

#endif // CCOMP_NATIVE_THREADED_H

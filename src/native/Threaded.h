//===- native/Threaded.h - Threaded-code backend (the JIT target) -*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "native code" target: direct-threaded code — a flat array of
/// pre-decoded instructions, each carrying its handler function pointer,
/// with branch and call targets resolved to absolute indices. Converting
/// BRISC to this form is the paper's just-in-time native code
/// generation; its throughput (bytes of produced code per second) is the
/// 2.5 MB/s headline, and the runtime of threaded code is the "native"
/// baseline the ~12x interpretation penalty is measured against.
///
/// Substitution note (see DESIGN.md): the paper emits Pentium machine
/// code; we emit host-independent threaded code. Relative speeds keep
/// the paper's ordering (native < JIT-from-BRISC << interpretation).
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_NATIVE_THREADED_H
#define CCOMP_NATIVE_THREADED_H

#include "brisc/Brisc.h"
#include "vm/Machine.h"
#include "vm/Program.h"

#include <cstdint>
#include <string>
#include <vector>

#include <cstring>

namespace ccomp {
namespace native {

struct NInstr;
struct NProgram;
struct State;

/// Instruction handler: executes one instruction, returns the next pc.
using Handler = uint32_t (*)(State &, const NInstr &, uint32_t);

/// One pre-decoded threaded instruction ("produced native code").
struct NInstr {
  Handler H = nullptr;
  uint8_t Rd = 0, Rs1 = 0, Rs2 = 0;
  int32_t Imm = 0;
  uint32_t Target = 0; ///< Absolute index (branch/call) / meta id (epi).
};

/// A threaded-code executable: one flat code array plus per-function
/// entry points and epilogue metadata.
struct NProgram {
  std::vector<NInstr> Code;
  std::vector<uint32_t> FuncEntry; ///< Absolute index of each function.
  std::vector<vm::FuncMeta> Metas; ///< For EPI, indexed per function.
  uint32_t Entry = 0;              ///< Entry function index.

  std::vector<vm::VMGlobal> Globals;
  uint32_t GlobalBase = 0x100;
  uint32_t GlobalEnd = 0x100;

  /// Bytes of produced code (the JIT-rate numerator).
  size_t codeBytes() const { return Code.size() * sizeof(NInstr); }
};

/// Code-generation statistics for the JIT-rate experiment.
struct GenStats {
  uint64_t InputInstrs = 0;
  uint64_t OutputBytes = 0;
  double Seconds = 0;
};

/// Register/memory state for threaded execution. Semantics mirror
/// vm::Machine exactly; the engines are cross-checked by the
/// differential test suite.
///
/// The state *borrows* its storage: R/Mem/Out point at buffers owned by
/// the caller. native::run() aims them at scratch buffers for a
/// standalone whole-program run; the tiered entry point
/// (native/Tiered.h) aims them at a live vm::Machine, so threaded code
/// executes directly on the interpreter's architectural state and the
/// two tiers can hand control back and forth mid-run.
struct State {
  uint32_t *R = nullptr;   ///< The 16 architectural registers.
  uint8_t *Mem = nullptr;  ///< Flat little-endian memory.
  size_t MemSize = 0;
  std::string *Out = nullptr; ///< Put* system-call sink.
  uint32_t HeapPtr = 0;
  bool Halted = false;
  bool Trapped = false;
  int32_t Exit = 0;
  std::string TrapMsg;
  const NProgram *Prog = nullptr; ///< Whole-program runs (native::run).

  // Tiered (per-function unit) execution only — see native/Tiered.h.
  uint32_t CurFn = 0;                    ///< Function the unit executes.
  const vm::FuncMeta *CurMeta = nullptr; ///< EPI metadata for CurFn.
  bool Transfer = false;                 ///< Cross-function transfer pending.
  uint32_t XferFn = 0;                   ///< Pending transfer target...
  uint32_t XferIdx = 0;                  ///< ...and instruction index.

  void trap(const char *Msg) {
    if (!Trapped) {
      Trapped = true;
      TrapMsg = Msg;
    }
    Halted = true;
  }

  uint32_t load(uint32_t Addr, unsigned Size, bool Sign) {
    if (Addr < 0x100 || Addr + Size > MemSize) {
      trap("memory load out of range");
      return 0;
    }
    uint32_t V = 0;
    std::memcpy(&V, Mem + Addr, Size);
    if (Sign) {
      if (Size == 1)
        V = static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<int8_t>(V)));
      else if (Size == 2)
        V = static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<int16_t>(V)));
    }
    return V;
  }

  void store(uint32_t Addr, unsigned Size, uint32_t V) {
    if (Addr < 0x100 || Addr + Size > MemSize) {
      trap("memory store out of range");
      return;
    }
    std::memcpy(Mem + Addr, &V, Size);
  }
};

namespace detail {
/// The shared VMOp -> handler table (Threaded.cpp). Tiered codegen
/// (native/Tiered.h) reuses every data/branch handler from it and swaps
/// in its own transfer handlers (call/rjr/epi) that speak the
/// vm::Machine synthetic return-address encoding.
Handler handlerFor(vm::VMOp Op);
} // namespace detail

/// Generates threaded code from a decoded VM program.
NProgram generate(const vm::VMProgram &P, GenStats *Stats = nullptr);

/// The paper's client-side pipeline: decode BRISC and generate native
/// code in one step.
NProgram generateFromBrisc(const brisc::BriscProgram &B,
                           GenStats *Stats = nullptr);

/// Executes threaded code.
vm::RunResult run(const NProgram &P,
                  vm::RunOptions Opts = vm::RunOptions());

} // namespace native
} // namespace ccomp

#endif // CCOMP_NATIVE_THREADED_H

//===- native/Tiered.h - Function-granular threaded units -------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Entry-at-function threaded execution for the tiered runtime. Instead
/// of one whole-program NProgram, each hot function compiles to its own
/// NUnit: branch targets are function-local instruction indices, and
/// the call/return handlers speak the vm::Machine synthetic code
/// addresses (bit 31 | fn << 16 | idx) rather than NProgram's absolute
/// threaded pcs. Interpreted and native frames therefore interoperate
/// on one call stack — a native CALL can land in a cold (interpreted)
/// callee, and an interpreted RJR/EPI can return into the middle of a
/// compiled unit.
///
/// runTiered() borrows a live vm::Machine's architectural state and
/// executes units until control reaches a function with no unit (the
/// interpreter resumes there), the program halts/traps, or the step
/// budget runs out. Step accounting and the control-flow trap messages
/// (step limit, falling off a function's end, returns through non-code
/// addresses) mirror Machine::run exactly, so a tiered run's RunResult
/// is byte-identical to pure interpretation on any non-trapping
/// program; data-fault diagnostics (memory range traps) may differ in
/// wording only, never in whether they fire.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_NATIVE_TIERED_H
#define CCOMP_NATIVE_TIERED_H

#include "native/Threaded.h"
#include "vm/Machine.h"
#include "vm/Program.h"

#include <memory>
#include <string>
#include <vector>

namespace ccomp {
namespace native {

/// One function compiled to threaded code. Self-contained: carries its
/// own epilogue metadata and name, so a unit outlives any decode-cache
/// entry it was compiled from.
struct NUnit {
  std::vector<NInstr> Code; ///< Branch targets are function-local.
  vm::FuncMeta Meta;        ///< EPI reloads / frame pop for this function.
  std::string Name;         ///< For falloff diagnostics.
  uint32_t FuncIdx = 0;

  /// Bytes of produced code (what a compiled-code cache charges).
  size_t codeBytes() const { return Code.size() * sizeof(NInstr); }
};

/// Compiles one decoded function body to a threaded unit. \p Stats
/// accumulates the JIT-rate numbers (input instructions, produced
/// bytes, seconds).
NUnit generateUnit(const vm::VMFunction &F, uint32_t FuncIdx,
                   GenStats *Stats = nullptr);

/// Where runTiered gets compiled units. unitFor is consulted at tier
/// entry and at every cross-function transfer while native; returning
/// null sends that function (back) to the interpreter. Out-of-range ids
/// must yield null. The returned shared_ptr keeps the unit alive while
/// it executes even if a compiled-code cache evicts it concurrently.
class UnitSource {
public:
  virtual ~UnitSource();
  virtual std::shared_ptr<const NUnit> unitFor(uint32_t Fn) = 0;
};

/// What one runTiered entry did, for the tier's stats.
struct TierRunStats {
  uint64_t Steps = 0;     ///< Instructions executed natively.
  uint64_t Transfers = 0; ///< Cross-function transfers taken natively.
};

/// Executes from (\p Fn, \p Idx) on compiled units, borrowing \p M's
/// architectural state. Returns false without executing anything when
/// \p Units has no unit for Fn. Otherwise returns true with \p Steps
/// charged one per executed instruction and either (a) M halted or
/// trapped, or (b) Fn/Idx advanced to the cold location where control
/// left the tier — the caller (Machine::run's transfer path) resumes
/// interpreting there.
bool runTiered(vm::Machine &M, UnitSource &Units, uint32_t &Fn,
               uint32_t &Idx, uint64_t &Steps, TierRunStats *TS = nullptr);

} // namespace native
} // namespace ccomp

#endif // CCOMP_NATIVE_TIERED_H

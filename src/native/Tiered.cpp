//===- native/Tiered.cpp - Function-granular threaded units ---------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "native/Tiered.h"

#include <chrono>

using namespace ccomp;
using namespace ccomp::native;
using vm::VMOp;

UnitSource::~UnitSource() = default;

//===----------------------------------------------------------------------===//
// Tier transfer handlers
//===----------------------------------------------------------------------===//
//
// These replace NProgram's hCall/hRjr/hEpi inside a unit. NProgram
// encodes return addresses as RetBit | absolute-threaded-pc, which only
// means something inside one monolithic code array; a tiered unit
// instead writes the vm::Machine encoding (bit 31 | fn << 16 | idx) so
// a return address produced natively decodes in the interpreter and
// vice versa. The handlers never transfer directly: they record the
// (function, index) target in the State and let the dispatch loop in
// runTiered switch units or exit to the interpreter.

namespace {

inline int32_t S32(uint32_t V) { return static_cast<int32_t>(V); }

/// Common return-address decode for tRjr/tEpi. Mirrors the
/// interpreter's RJR/EPI tails, including the trap wording.
uint32_t tRet(State &S, uint32_t Addr, uint32_t Pc, const char *BadMsg) {
  if (Addr == vm::Machine::HaltRA) {
    S.Halted = true;
    S.Exit = S32(S.R[vm::N0]);
    return Pc;
  }
  if (!(Addr & 0x80000000u)) {
    S.trap(BadMsg);
    return Pc;
  }
  S.Transfer = true;
  S.XferFn = vm::Machine::retFunc(Addr);
  S.XferIdx = vm::Machine::retIdx(Addr);
  return Pc;
}

uint32_t tCall(State &S, const NInstr &I, uint32_t Pc) {
  S.R[vm::RA] = vm::Machine::encodeRet(S.CurFn, Pc + 1);
  S.Transfer = true;
  S.XferFn = I.Target;
  S.XferIdx = 0;
  return Pc;
}

uint32_t tRjr(State &S, const NInstr &I, uint32_t Pc) {
  return tRet(S, S.R[I.Rd], Pc, "rjr through non-code address");
}

uint32_t tEpi(State &S, const NInstr &, uint32_t Pc) {
  const vm::FuncMeta &Meta = *S.CurMeta;
  for (const vm::FuncMeta::Save &Sv : Meta.Saves)
    S.R[Sv.Reg] = S.load(S.R[vm::SP] + Sv.Off, 4, false);
  S.R[vm::SP] += Meta.FrameSize;
  S.R[vm::ZR] = 0;
  if (S.Trapped)
    return Pc; // A reload faulted; the loop observes the trap.
  return tRet(S, S.R[vm::RA], Pc, "epi return through non-code address");
}

} // namespace

//===----------------------------------------------------------------------===//
// Unit generation
//===----------------------------------------------------------------------===//

NUnit native::generateUnit(const vm::VMFunction &F, uint32_t FuncIdx,
                           GenStats *Stats) {
  auto T0 = std::chrono::steady_clock::now();
  NUnit U;
  U.Name = F.Name;
  U.FuncIdx = FuncIdx;
  U.Meta = vm::deriveMeta(F);
  U.Code.reserve(F.Code.size());
  for (const vm::Instr &In : F.Code) {
    NInstr NI;
    NI.H = detail::handlerFor(In.Op);
    NI.Rd = In.Rd;
    NI.Rs1 = In.Rs1;
    NI.Rs2 = In.Rs2;
    NI.Imm = In.Imm;
    if (vm::isBranch(In.Op))
      NI.Target = F.LabelPos[In.Target]; // Function-local target.
    else
      NI.Target = In.Target; // CALL keeps the raw function index.
    switch (In.Op) {
    case VMOp::CALL:
      NI.H = tCall;
      break;
    case VMOp::RJR:
      NI.H = tRjr;
      break;
    case VMOp::EPI:
      NI.H = tEpi;
      break;
    default:
      break;
    }
    U.Code.push_back(NI);
  }
  if (Stats) {
    auto T1 = std::chrono::steady_clock::now();
    Stats->InputInstrs += F.Code.size();
    Stats->OutputBytes += U.codeBytes();
    Stats->Seconds += std::chrono::duration<double>(T1 - T0).count();
  }
  return U;
}

//===----------------------------------------------------------------------===//
// Tiered execution
//===----------------------------------------------------------------------===//

bool native::runTiered(vm::Machine &M, UnitSource &Units, uint32_t &Fn,
                       uint32_t &Idx, uint64_t &Steps, TierRunStats *TS) {
  std::shared_ptr<const NUnit> U = Units.unitFor(Fn);
  if (!U)
    return false;

  State S;
  S.R = M.regs();
  S.Mem = M.memData();
  S.MemSize = M.memSize();
  S.Out = &M.outputBuffer();
  S.HeapPtr = M.heapPtr();
  S.CurFn = Fn;
  S.CurMeta = &U->Meta;

  const uint64_t MaxSteps = M.options().MaxSteps;
  uint32_t Pc = Idx;
  uint64_t Executed = 0;
  uint64_t TransfersTaken = 0;
  // A falloff is detected mid-loop but must trap with Machine::trap's
  // std::string overload; carry the message out instead of allocating
  // inside the hot loop's failure path twice.
  std::string PendingTrap;

  for (;;) {
    // Check order mirrors Machine::run: an out-of-range pc traps as a
    // falloff *without* counting a step; then the step limit; then the
    // instruction executes.
    if (Pc >= U->Code.size()) {
      PendingTrap = "fell off the end of function " + U->Name;
      break;
    }
    if (++Steps > MaxSteps) {
      PendingTrap = "step limit exceeded";
      break;
    }
    ++Executed;
    const NInstr &In = U->Code[Pc];
    Pc = In.H(S, In, Pc);
    if (S.Halted)
      break;
    if (S.Transfer) {
      S.Transfer = false;
      ++TransfersTaken;
      std::shared_ptr<const NUnit> Next = Units.unitFor(S.XferFn);
      if (!Next) {
        // Cold target: hand control back to the interpreter there.
        Fn = S.XferFn;
        Idx = S.XferIdx;
        break;
      }
      U = std::move(Next);
      S.CurFn = S.XferFn;
      S.CurMeta = &U->Meta;
      Pc = S.XferIdx;
    }
  }

  // Commit borrowed state the handlers mutated by value.
  M.setHeapPtr(S.HeapPtr);
  if (!PendingTrap.empty())
    M.trap(PendingTrap);
  else if (S.Trapped)
    M.trap(S.TrapMsg);
  else if (S.Halted)
    M.haltWithExit(S.Exit);
  if (TS) {
    TS->Steps += Executed;
    TS->Transfers += TransfersTaken;
  }
  return true;
}

//===- native/Threaded.cpp - Threaded-code backend -----------------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "native/Threaded.h"

#include "support/Support.h"

#include <chrono>
#include <cstring>

using namespace ccomp;
using namespace ccomp::native;
using vm::Instr;
using vm::VMOp;

namespace {

constexpr uint32_t HaltRA = 0xFFFFFFFFu;
constexpr uint32_t RetBit = 0x80000000u;

inline int32_t S32(uint32_t V) { return static_cast<int32_t>(V); }

//===----------------------------------------------------------------------===//
// Handlers
//===----------------------------------------------------------------------===//

#define H_PROLOG (void)I;

uint32_t hTrap(State &S, const NInstr &, uint32_t) {
  S.trap("unhandled instruction");
  return 0;
}

template <unsigned Size, bool Sign>
uint32_t hLoad(State &S, const NInstr &I, uint32_t Pc) {
  S.R[I.Rd] = S.load(S.R[I.Rs1] + I.Imm, Size, Sign);
  S.R[vm::ZR] = 0;
  return Pc + 1;
}

template <unsigned Size>
uint32_t hStore(State &S, const NInstr &I, uint32_t Pc) {
  S.store(S.R[I.Rs1] + I.Imm, Size, S.R[I.Rd]);
  return Pc + 1;
}

#define ALU_RR(NAME, EXPR)                                                     \
  uint32_t NAME(State &S, const NInstr &I, uint32_t Pc) {                      \
    uint32_t A = S.R[I.Rs1], B = S.R[I.Rs2];                                   \
    (void)A;                                                                   \
    (void)B;                                                                   \
    S.R[I.Rd] = (EXPR);                                                        \
    S.R[vm::ZR] = 0;                                                           \
    return Pc + 1;                                                             \
  }
#define ALU_RI(NAME, EXPR)                                                     \
  uint32_t NAME(State &S, const NInstr &I, uint32_t Pc) {                      \
    uint32_t A = S.R[I.Rs1];                                                   \
    uint32_t B = static_cast<uint32_t>(I.Imm);                                 \
    (void)A;                                                                   \
    (void)B;                                                                   \
    S.R[I.Rd] = (EXPR);                                                        \
    S.R[vm::ZR] = 0;                                                           \
    return Pc + 1;                                                             \
  }

ALU_RR(hAdd, A + B)
ALU_RR(hSub, A - B)
ALU_RR(hMul, A *B)
ALU_RR(hAnd, A &B)
ALU_RR(hOr, A | B)
ALU_RR(hXor, A ^ B)
ALU_RR(hSll, A << (B & 31))
ALU_RR(hSrl, A >> (B & 31))
ALU_RR(hSra, static_cast<uint32_t>(S32(A) >> (B & 31)))
ALU_RI(hAddI, A + B)
ALU_RI(hMulI, A *B)
ALU_RI(hAndI, A &B)
ALU_RI(hOrI, A | B)
ALU_RI(hXorI, A ^ B)
ALU_RI(hSllI, A << (B & 31))
ALU_RI(hSrlI, A >> (B & 31))
ALU_RI(hSraI, static_cast<uint32_t>(S32(A) >> (B & 31)))

uint32_t hDiv(State &S, const NInstr &I, uint32_t Pc) {
  int32_t D = S32(S.R[I.Rs2]);
  if (D == 0 || (S32(S.R[I.Rs1]) == INT32_MIN && D == -1)) {
    S.trap("integer division overflow");
    return Pc;
  }
  S.R[I.Rd] = static_cast<uint32_t>(S32(S.R[I.Rs1]) / D);
  S.R[vm::ZR] = 0;
  return Pc + 1;
}

uint32_t hDivU(State &S, const NInstr &I, uint32_t Pc) {
  if (S.R[I.Rs2] == 0) {
    S.trap("unsigned division by zero");
    return Pc;
  }
  S.R[I.Rd] = S.R[I.Rs1] / S.R[I.Rs2];
  S.R[vm::ZR] = 0;
  return Pc + 1;
}

uint32_t hRem(State &S, const NInstr &I, uint32_t Pc) {
  int32_t D = S32(S.R[I.Rs2]);
  if (D == 0 || (S32(S.R[I.Rs1]) == INT32_MIN && D == -1)) {
    S.trap("integer remainder overflow");
    return Pc;
  }
  S.R[I.Rd] = static_cast<uint32_t>(S32(S.R[I.Rs1]) % D);
  S.R[vm::ZR] = 0;
  return Pc + 1;
}

uint32_t hRemU(State &S, const NInstr &I, uint32_t Pc) {
  if (S.R[I.Rs2] == 0) {
    S.trap("unsigned remainder by zero");
    return Pc;
  }
  S.R[I.Rd] = S.R[I.Rs1] % S.R[I.Rs2];
  S.R[vm::ZR] = 0;
  return Pc + 1;
}

uint32_t hMov(State &S, const NInstr &I, uint32_t Pc) {
  S.R[I.Rd] = S.R[I.Rs1];
  S.R[vm::ZR] = 0;
  return Pc + 1;
}
uint32_t hNeg(State &S, const NInstr &I, uint32_t Pc) {
  S.R[I.Rd] = 0u - S.R[I.Rs1];
  S.R[vm::ZR] = 0;
  return Pc + 1;
}
uint32_t hNot(State &S, const NInstr &I, uint32_t Pc) {
  S.R[I.Rd] = ~S.R[I.Rs1];
  S.R[vm::ZR] = 0;
  return Pc + 1;
}
uint32_t hSxtb(State &S, const NInstr &I, uint32_t Pc) {
  S.R[I.Rd] = static_cast<uint32_t>(
      static_cast<int32_t>(static_cast<int8_t>(S.R[I.Rs1])));
  S.R[vm::ZR] = 0;
  return Pc + 1;
}
uint32_t hSxth(State &S, const NInstr &I, uint32_t Pc) {
  S.R[I.Rd] = static_cast<uint32_t>(
      static_cast<int32_t>(static_cast<int16_t>(S.R[I.Rs1])));
  S.R[vm::ZR] = 0;
  return Pc + 1;
}
uint32_t hZxtb(State &S, const NInstr &I, uint32_t Pc) {
  S.R[I.Rd] = S.R[I.Rs1] & 0xFF;
  S.R[vm::ZR] = 0;
  return Pc + 1;
}
uint32_t hZxth(State &S, const NInstr &I, uint32_t Pc) {
  S.R[I.Rd] = S.R[I.Rs1] & 0xFFFF;
  S.R[vm::ZR] = 0;
  return Pc + 1;
}
uint32_t hLi(State &S, const NInstr &I, uint32_t Pc) {
  S.R[I.Rd] = static_cast<uint32_t>(I.Imm);
  S.R[vm::ZR] = 0;
  return Pc + 1;
}

// Branches: Target is the absolute index of the destination.
#define BR_RR(NAME, COND)                                                      \
  uint32_t NAME(State &S, const NInstr &I, uint32_t Pc) {                      \
    uint32_t A = S.R[I.Rs1], B = S.R[I.Rs2];                                   \
    (void)A;                                                                   \
    (void)B;                                                                   \
    return (COND) ? I.Target : Pc + 1;                                         \
  }
#define BR_RI(NAME, COND)                                                      \
  uint32_t NAME(State &S, const NInstr &I, uint32_t Pc) {                      \
    uint32_t A = S.R[I.Rs1];                                                   \
    uint32_t B = static_cast<uint32_t>(I.Imm);                                 \
    (void)A;                                                                   \
    (void)B;                                                                   \
    return (COND) ? I.Target : Pc + 1;                                         \
  }

BR_RR(hBeq, A == B)
BR_RR(hBne, A != B)
BR_RR(hBlt, S32(A) < S32(B))
BR_RR(hBle, S32(A) <= S32(B))
BR_RR(hBgt, S32(A) > S32(B))
BR_RR(hBge, S32(A) >= S32(B))
BR_RR(hBltu, A < B)
BR_RR(hBleu, A <= B)
BR_RR(hBgtu, A > B)
BR_RR(hBgeu, A >= B)
BR_RI(hBeqI, A == B)
BR_RI(hBneI, A != B)
BR_RI(hBltI, S32(A) < S32(B))
BR_RI(hBleI, S32(A) <= S32(B))
BR_RI(hBgtI, S32(A) > S32(B))
BR_RI(hBgeI, S32(A) >= S32(B))
BR_RI(hBltuI, A < B)
BR_RI(hBleuI, A <= B)
BR_RI(hBgtuI, A > B)
BR_RI(hBgeuI, A >= B)

uint32_t hJmp(State &, const NInstr &I, uint32_t) { return I.Target; }

uint32_t hCall(State &S, const NInstr &I, uint32_t Pc) {
  S.R[vm::RA] = RetBit | (Pc + 1);
  return I.Target;
}

uint32_t hRjr(State &S, const NInstr &I, uint32_t Pc) {
  uint32_t Addr = S.R[I.Rd];
  if (Addr == HaltRA) {
    S.Halted = true;
    S.Exit = S32(S.R[vm::N0]);
    return Pc;
  }
  if (!(Addr & RetBit)) {
    S.trap("rjr through non-code address");
    return Pc;
  }
  return Addr & ~RetBit;
}

uint32_t hEpi(State &S, const NInstr &I, uint32_t Pc) {
  const vm::FuncMeta &Meta = S.Prog->Metas[I.Target];
  for (const vm::FuncMeta::Save &Sv : Meta.Saves)
    S.R[Sv.Reg] = S.load(S.R[vm::SP] + Sv.Off, 4, false);
  S.R[vm::SP] += Meta.FrameSize;
  S.R[vm::ZR] = 0;
  uint32_t Addr = S.R[vm::RA];
  if (Addr == HaltRA) {
    S.Halted = true;
    S.Exit = S32(S.R[vm::N0]);
    return Pc;
  }
  if (!(Addr & RetBit)) {
    S.trap("epi return through non-code address");
    return Pc;
  }
  return Addr & ~RetBit;
}

uint32_t hEnter(State &S, const NInstr &I, uint32_t Pc) {
  S.R[vm::SP] -= static_cast<uint32_t>(I.Imm);
  return Pc + 1;
}
uint32_t hExit(State &S, const NInstr &I, uint32_t Pc) {
  S.R[vm::SP] += static_cast<uint32_t>(I.Imm);
  return Pc + 1;
}
uint32_t hSpill(State &S, const NInstr &I, uint32_t Pc) {
  S.store(S.R[vm::SP] + I.Imm, 4, S.R[I.Rd]);
  return Pc + 1;
}
uint32_t hReload(State &S, const NInstr &I, uint32_t Pc) {
  S.R[I.Rd] = S.load(S.R[vm::SP] + I.Imm, 4, false);
  S.R[vm::ZR] = 0;
  return Pc + 1;
}

uint32_t hMcpy(State &S, const NInstr &I, uint32_t Pc) {
  uint32_t Dst = S.R[I.Rd], Src = S.R[I.Rs1];
  uint32_t Len = static_cast<uint32_t>(I.Imm);
  if (Dst < 0x100 || Src < 0x100 || Dst + Len > S.MemSize ||
      Src + Len > S.MemSize) {
    S.trap("mcpy out of range");
    return Pc;
  }
  std::memmove(S.Mem + Dst, S.Mem + Src, Len);
  return Pc + 1;
}

uint32_t hMset(State &S, const NInstr &I, uint32_t Pc) {
  uint32_t Dst = S.R[I.Rd];
  uint32_t Len = static_cast<uint32_t>(I.Imm);
  if (Dst < 0x100 || Dst + Len > S.MemSize) {
    S.trap("mset out of range");
    return Pc;
  }
  std::memset(S.Mem + Dst, static_cast<int>(S.R[I.Rs1] & 0xFF), Len);
  return Pc + 1;
}

uint32_t hSys(State &S, const NInstr &I, uint32_t Pc) {
  switch (static_cast<vm::Sys>(I.Imm)) {
  case vm::Sys::Exit:
    S.Halted = true;
    S.Exit = S32(S.R[vm::N0]);
    return Pc;
  case vm::Sys::PutInt:
    *S.Out += std::to_string(S32(S.R[vm::N0]));
    return Pc + 1;
  case vm::Sys::PutChar:
    S.Out->push_back(static_cast<char>(S.R[vm::N0] & 0xFF));
    return Pc + 1;
  case vm::Sys::PutStr: {
    uint32_t Addr = S.R[vm::N0];
    unsigned Guard = 0;
    while (Addr >= 0x100 && Addr < S.MemSize && S.Mem[Addr] != 0 &&
           Guard++ < (1u << 20))
      S.Out->push_back(static_cast<char>(S.Mem[Addr++]));
    return Pc + 1;
  }
  case vm::Sys::Alloc: {
    uint32_t Bytes = (S.R[vm::N0] + 7) & ~7u;
    if (S.HeapPtr + Bytes + 65536 > S.R[vm::SP]) {
      S.trap("out of heap memory");
      return Pc;
    }
    S.R[vm::N0] = S.HeapPtr;
    S.HeapPtr += Bytes;
    return Pc + 1;
  }
  }
  S.trap("unknown system call");
  return Pc;
}

} // namespace

/// Handler table indexed by VMOp.
Handler native::detail::handlerFor(VMOp Op) {
  switch (Op) {
  case VMOp::LD_B: return hLoad<1, true>;
  case VMOp::LD_BU: return hLoad<1, false>;
  case VMOp::LD_H: return hLoad<2, true>;
  case VMOp::LD_HU: return hLoad<2, false>;
  case VMOp::LD_W: return hLoad<4, false>;
  case VMOp::ST_B: return hStore<1>;
  case VMOp::ST_H: return hStore<2>;
  case VMOp::ST_W: return hStore<4>;
  case VMOp::ADD: return hAdd;
  case VMOp::SUB: return hSub;
  case VMOp::MUL: return hMul;
  case VMOp::DIV: return hDiv;
  case VMOp::DIVU: return hDivU;
  case VMOp::REM: return hRem;
  case VMOp::REMU: return hRemU;
  case VMOp::AND: return hAnd;
  case VMOp::OR: return hOr;
  case VMOp::XOR: return hXor;
  case VMOp::SLL: return hSll;
  case VMOp::SRL: return hSrl;
  case VMOp::SRA: return hSra;
  case VMOp::ADDI: return hAddI;
  case VMOp::MULI: return hMulI;
  case VMOp::ANDI: return hAndI;
  case VMOp::ORI: return hOrI;
  case VMOp::XORI: return hXorI;
  case VMOp::SLLI: return hSllI;
  case VMOp::SRLI: return hSrlI;
  case VMOp::SRAI: return hSraI;
  case VMOp::MOV: return hMov;
  case VMOp::NEG: return hNeg;
  case VMOp::NOT: return hNot;
  case VMOp::SXTB: return hSxtb;
  case VMOp::SXTH: return hSxth;
  case VMOp::ZXTB: return hZxtb;
  case VMOp::ZXTH: return hZxth;
  case VMOp::LI: return hLi;
  case VMOp::BEQ: return hBeq;
  case VMOp::BNE: return hBne;
  case VMOp::BLT: return hBlt;
  case VMOp::BLE: return hBle;
  case VMOp::BGT: return hBgt;
  case VMOp::BGE: return hBge;
  case VMOp::BLTU: return hBltu;
  case VMOp::BLEU: return hBleu;
  case VMOp::BGTU: return hBgtu;
  case VMOp::BGEU: return hBgeu;
  case VMOp::BEQI: return hBeqI;
  case VMOp::BNEI: return hBneI;
  case VMOp::BLTI: return hBltI;
  case VMOp::BLEI: return hBleI;
  case VMOp::BGTI: return hBgtI;
  case VMOp::BGEI: return hBgeI;
  case VMOp::BLTUI: return hBltuI;
  case VMOp::BLEUI: return hBleuI;
  case VMOp::BGTUI: return hBgtuI;
  case VMOp::BGEUI: return hBgeuI;
  case VMOp::JMP: return hJmp;
  case VMOp::CALL: return hCall;
  case VMOp::RJR: return hRjr;
  case VMOp::ENTER: return hEnter;
  case VMOp::EXIT: return hExit;
  case VMOp::SPILL: return hSpill;
  case VMOp::RELOAD: return hReload;
  case VMOp::EPI: return hEpi;
  case VMOp::MCPY: return hMcpy;
  case VMOp::MSET: return hMset;
  case VMOp::SYS: return hSys;
  case VMOp::NumOps: break;
  }
  return hTrap;
}

//===----------------------------------------------------------------------===//
// Code generation
//===----------------------------------------------------------------------===//

NProgram native::generate(const vm::VMProgram &P, GenStats *Stats) {
  auto T0 = std::chrono::steady_clock::now();
  NProgram N;
  N.FuncEntry.reserve(P.Functions.size());
  size_t Total = 0;
  for (const vm::VMFunction &F : P.Functions)
    Total += F.Code.size();
  N.Code.reserve(Total);

  for (uint32_t FI = 0; FI != P.Functions.size(); ++FI) {
    const vm::VMFunction &F = P.Functions[FI];
    uint32_t Base = static_cast<uint32_t>(N.Code.size());
    N.FuncEntry.push_back(Base);
    N.Metas.push_back(vm::deriveMeta(F));
    for (const Instr &In : F.Code) {
      NInstr NI;
      NI.H = detail::handlerFor(In.Op);
      NI.Rd = In.Rd;
      NI.Rs1 = In.Rs1;
      NI.Rs2 = In.Rs2;
      NI.Imm = In.Imm;
      if (vm::isBranch(In.Op))
        NI.Target = Base + F.LabelPos[In.Target];
      else if (In.Op == VMOp::EPI)
        NI.Target = FI;
      else
        NI.Target = In.Target; // Calls patched below; others unused.
      N.Code.push_back(NI);
    }
  }
  // Patch call targets to absolute entries.
  for (NInstr &NI : N.Code)
    if (NI.H == static_cast<Handler>(hCall))
      NI.Target = N.FuncEntry[NI.Target];

  N.Entry = P.Entry;
  N.Globals = P.Globals;
  N.GlobalBase = P.GlobalBase;
  N.GlobalEnd = P.GlobalEnd;

  if (Stats) {
    auto T1 = std::chrono::steady_clock::now();
    Stats->InputInstrs = Total;
    Stats->OutputBytes = N.codeBytes();
    Stats->Seconds = std::chrono::duration<double>(T1 - T0).count();
  }
  return N;
}

NProgram native::generateFromBrisc(const brisc::BriscProgram &B,
                                   GenStats *Stats) {
  auto T0 = std::chrono::steady_clock::now();
  vm::VMProgram P = brisc::decodeToVM(B);
  NProgram N = generate(P, nullptr);
  if (Stats) {
    auto T1 = std::chrono::steady_clock::now();
    Stats->InputInstrs = vm::countInstrs(P);
    Stats->OutputBytes = N.codeBytes();
    Stats->Seconds = std::chrono::duration<double>(T1 - T0).count();
  }
  return N;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

vm::RunResult native::run(const NProgram &P, vm::RunOptions Opts) {
  vm::RunResult Res;
  if (P.Code.empty()) {
    Res.Trap = "empty program";
    return Res;
  }
  // The standalone run owns the storage the State borrows.
  uint32_t Regs[16] = {0};
  std::vector<uint8_t> MemStore(Opts.MemBytes, 0);
  std::string OutStore;
  State S;
  S.Prog = &P;
  S.R = Regs;
  S.Mem = MemStore.data();
  S.MemSize = MemStore.size();
  S.Out = &OutStore;
  for (const vm::VMGlobal &G : P.Globals) {
    if (G.Addr + G.Size > S.MemSize) {
      Res.Trap = "global does not fit in memory";
      return Res;
    }
    if (!G.Init.empty())
      std::memcpy(S.Mem + G.Addr, G.Init.data(), G.Init.size());
  }
  S.HeapPtr = (P.GlobalEnd + 15) & ~15u;
  S.R[vm::SP] = static_cast<uint32_t>(S.MemSize) & ~15u;
  S.R[vm::RA] = HaltRA;

  uint32_t Pc = P.FuncEntry[P.Entry];
  uint64_t Steps = 0;
  const uint64_t MaxSteps = Opts.MaxSteps;
  const NInstr *Code = P.Code.data();
  const uint32_t CodeSize = static_cast<uint32_t>(P.Code.size());

  // The dispatch loop: check the budget in blocks to keep it tight.
  while (!S.Halted) {
    uint64_t Block = 65536;
    if (Steps + Block > MaxSteps)
      Block = MaxSteps > Steps ? MaxSteps - Steps : 0;
    if (Block == 0) {
      S.trap("step limit exceeded");
      break;
    }
    uint64_t I = 0;
    for (; I != Block; ++I) {
      if (Pc >= CodeSize) {
        S.trap("fell off the end of threaded code");
        break;
      }
      const NInstr &In = Code[Pc];
      Pc = In.H(S, In, Pc);
      if (S.Halted) {
        ++I; // The halting instruction still counts as executed.
        break;
      }
    }
    Steps += I;
  }

  Res.Ok = !S.Trapped;
  Res.ExitCode = S.Exit;
  Res.Steps = Steps;
  Res.Trap = S.TrapMsg;
  Res.Output = std::move(OutStore);
  return Res;
}

//===- wire/Wire.cpp - The wire-format code compressor ------------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Container layout:
//   u32 magic "CCWF"; u8 pipeline level
//   structure stream (flated): symbols, globals, function headers
//   shape dictionary stream (flated): tree patterns in first-use order
//   token streams: pattern-id stream + one literal stream per operator,
//   each encoded per the pipeline level and flated in isolation.
//
// Every token stream is a sequence of unsigned values (pattern ids,
// literal values zig-zagged, symbol indices, label ids). The MTF level
// rewrites them as move-to-front indices with 0 = "new symbol" followed
// by the symbol itself; the Full level Huffman-codes the MTF indices
// (alphabet 0..255 where 255 escapes larger indices) exactly as the
// paper's step 4 prescribes, leaving the escaped values as varints.
//
//===----------------------------------------------------------------------===//

#include "wire/Wire.h"

#include "flate/Flate.h"
#include "ir/Opcode.h"
#include "support/BitStream.h"
#include "support/ByteIO.h"
#include "support/Error.h"
#include "support/Huffman.h"
#include "support/MTF.h"
#include "support/Support.h"

#include <map>

using namespace ccomp;
using namespace ccomp::wire;
using ir::Op;
using ir::Tree;
using ir::TypeSuffix;

namespace {

constexpr uint32_t Magic = 0x46574343;     // "CCWF".
constexpr uint32_t FlatMagic = 0x4D464343; // "CCFM" (flat module).
constexpr uint8_t PatternStreamKey = 0xFF;

//===----------------------------------------------------------------------===//
// Shapes (patternized trees)
//===----------------------------------------------------------------------===//

/// Serializes the patternized shape of \p T (operators and suffixes, no
/// literals) in prefix order.
void shapeOf(const Tree *T, std::vector<uint8_t> &Out) {
  Out.push_back(static_cast<uint8_t>(T->O));
  Out.push_back(static_cast<uint8_t>(T->Suffix));
  for (unsigned I = 0; I != T->NKids; ++I)
    shapeOf(T->Kids[I], Out);
}

/// Zig-zag encoding for literal values.
uint64_t zz(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^ static_cast<uint64_t>(V >> 63);
}
int64_t unzz(uint64_t Z) {
  return static_cast<int64_t>((Z >> 1) ^ (~(Z & 1) + 1));
}

//===----------------------------------------------------------------------===//
// Token stream encoding (per pipeline level)
//===----------------------------------------------------------------------===//

std::vector<uint8_t> encodeRaw(const std::vector<uint64_t> &Vals) {
  ByteWriter W;
  W.writeVarU(Vals.size());
  for (uint64_t V : Vals)
    W.writeVarU(V);
  return W.take();
}

std::vector<uint64_t> decodeRaw(ByteReader &R) {
  size_t N = R.readVarU();
  // Every value occupies at least one byte, so an element count larger
  // than the remaining input is corrupt; checking up front stops a
  // corrupt count from demanding a huge reservation.
  if (N > R.remaining())
    decodeFail("wire: raw stream count exceeds input");
  std::vector<uint64_t> Out;
  Out.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Out.push_back(R.readVarU());
  return Out;
}

std::vector<uint8_t> encodeMTF(const std::vector<uint64_t> &Vals) {
  // Indices and new-symbol values go to separate sections so the
  // downstream flate stage sees two homogeneous streams (the same
  // stream-separation insight the wire format is built on).
  MTFEncoder Enc;
  ByteWriter Idx, NewSyms;
  for (uint64_t V : Vals) {
    MTFToken T = Enc.encode(V);
    Idx.writeVarU(T.Index);
    if (T.Index == 0)
      NewSyms.writeVarU(V);
  }
  ByteWriter W;
  W.writeVarU(Vals.size());
  W.writeVarU(Idx.size());
  W.writeBytes(Idx.bytes());
  W.writeBytes(NewSyms.bytes());
  return W.take();
}

std::vector<uint64_t> decodeMTF(ByteReader &R) {
  size_t N = R.readVarU();
  size_t IdxLen = R.readVarU();
  std::vector<uint8_t> IdxBytes = R.readBytes(IdxLen);
  // Each token takes at least one index byte.
  if (N > IdxBytes.size())
    decodeFail("wire: MTF token count exceeds index bytes");
  ByteReader IdxR(IdxBytes);
  std::vector<uint64_t> Out;
  Out.reserve(N);
  // At most one new symbol per token: N bounds the decoder table.
  MTFDecoder Dec(N);
  for (size_t I = 0; I != N; ++I) {
    uint32_t Idx = static_cast<uint32_t>(IdxR.readVarU());
    uint64_t NewSym = Idx == 0 ? R.readVarU() : 0;
    Out.push_back(Dec.decode(Idx, NewSym));
  }
  return Out;
}

/// Full pipeline: MTF, then canonical Huffman over the MTF indices.
/// Index alphabet is 0..255; index >= 255 is coded as the escape symbol
/// 255 followed by a varint of the full index in the escape section.
/// Streams too small to amortize the Huffman table fall back to plain
/// MTF varints; a leading submode byte records the choice.
std::vector<uint8_t> encodeHuffmanBody(const std::vector<uint64_t> &Vals) {
  MTFEncoder Enc;
  std::vector<uint32_t> Indices;
  ByteWriter Escapes;
  Indices.reserve(Vals.size());
  for (uint64_t V : Vals) {
    MTFToken T = Enc.encode(V);
    Indices.push_back(T.Index);
    if (T.Index == 0)
      Escapes.writeVarU(V);
    else if (T.Index >= 255)
      Escapes.writeVarU(T.Index);
  }

  std::vector<uint64_t> Freq(256, 0);
  for (uint32_t I : Indices)
    ++Freq[I >= 255 ? 255 : I];
  HuffmanCode Code(buildHuffmanLengths(Freq, 15));

  BitWriter BW;
  for (uint32_t I : Indices)
    Code.encode(BW, I >= 255 ? 255 : I);
  std::vector<uint8_t> Bits = BW.finish();

  ByteWriter W;
  W.writeVarU(Vals.size());
  // Code length table: 4-bit lengths with 15-as-zero-run escape reused
  // from the flate header encoding, byte-packed here for simplicity.
  for (unsigned I = 0; I != 256; ++I)
    W.writeU8(Code.lengths()[I]);
  W.writeVarU(Bits.size());
  W.writeBytes(Bits);
  W.writeVarU(Escapes.size());
  W.writeBytes(Escapes.bytes());
  return W.take();
}

std::vector<uint8_t> encodeHuffman(const std::vector<uint64_t> &Vals) {
  // The full pipeline picks, per stream, whichever coding survives the
  // downstream flate stage smallest: plain varints (when the raw values
  // carry LZ-visible sequence structure MTF would destroy), MTF varints
  // (high-locality streams), or MTF + Huffman (skewed index
  // distributions; the Huffman bitstream itself no longer deflates).
  // This is the "should the coder use MTF?" question of the paper's
  // design-space section, answered empirically per stream.
  struct Cand {
    uint8_t Submode;
    std::vector<uint8_t> Body;
  };
  Cand Cands[3] = {{0, encodeMTF(Vals)},
                   {1, encodeHuffmanBody(Vals)},
                   {2, encodeRaw(Vals)}};
  const Cand *Best = nullptr;
  size_t BestZ = 0;
  for (const Cand &C : Cands) {
    ByteWriter W;
    W.writeU8(C.Submode);
    W.writeBytes(C.Body);
    size_t Z = flate::compressedSize(W.bytes());
    if (!Best || Z < BestZ) {
      Best = &C;
      BestZ = Z;
    }
  }
  ByteWriter W;
  W.writeU8(Best->Submode);
  W.writeBytes(Best->Body);
  return W.take();
}

std::vector<uint64_t> decodeHuffmanBody(ByteReader &R) {
  size_t N = R.readVarU();
  std::vector<uint8_t> Lens(256);
  for (unsigned I = 0; I != 256; ++I)
    Lens[I] = R.readU8();
  std::vector<uint64_t> Out;
  if (N == 0) {
    // Skip the (empty) payload sections.
    size_t BitLen = R.readVarU();
    R.readBytes(BitLen);
    size_t EscLen = R.readVarU();
    R.readBytes(EscLen);
    return Out;
  }
  if (!HuffmanCode::isValidLengthSet(Lens))
    decodeFail("wire: corrupt Huffman table");
  HuffmanCode Code(std::move(Lens));
  size_t BitLen = R.readVarU();
  std::vector<uint8_t> Bits = R.readBytes(BitLen);
  size_t EscLen = R.readVarU();
  std::vector<uint8_t> Esc = R.readBytes(EscLen);
  // Each token consumes at least one bit of the code section.
  if (N > Bits.size() * 8)
    decodeFail("wire: Huffman token count exceeds code bits");
  Out.reserve(N);

  BitReader BR(Bits);
  ByteReader ER(Esc);
  // At most one new symbol per token: N bounds the decoder table.
  MTFDecoder Dec(N);
  for (size_t I = 0; I != N; ++I) {
    unsigned Sym = Code.decode(BR);
    uint32_t Index = Sym;
    uint64_t NewSym = 0;
    if (Sym == 255)
      Index = static_cast<uint32_t>(ER.readVarU());
    if (Index == 0)
      NewSym = ER.readVarU();
    Out.push_back(Dec.decode(Index, NewSym));
  }
  return Out;
}

std::vector<uint64_t> decodeHuffman(ByteReader &R) {
  uint8_t Submode = R.readU8();
  if (Submode == 0)
    return decodeMTF(R);
  if (Submode == 2)
    return decodeRaw(R);
  return decodeHuffmanBody(R);
}

std::vector<uint8_t> encodeStream(const std::vector<uint64_t> &Vals,
                                  Pipeline P) {
  switch (P) {
  case Pipeline::Naive:
  case Pipeline::Streams:
    return encodeRaw(Vals);
  case Pipeline::StreamsMTF:
    return encodeMTF(Vals);
  case Pipeline::Full:
    return encodeHuffman(Vals);
  }
  ccomp_unreachable("bad pipeline level");
}

std::vector<uint64_t> decodeStream(ByteReader &R, Pipeline P) {
  switch (P) {
  case Pipeline::Naive:
  case Pipeline::Streams:
    return decodeRaw(R);
  case Pipeline::StreamsMTF:
    return decodeMTF(R);
  case Pipeline::Full:
    return decodeHuffman(R);
  }
  ccomp_unreachable("bad pipeline level");
}

//===----------------------------------------------------------------------===//
// Module serialization
//===----------------------------------------------------------------------===//

std::vector<uint8_t> buildStructure(const ir::Module &M) {
  ByteWriter W;
  W.writeVarU(M.Symbols.size());
  for (const ir::Symbol &S : M.Symbols) {
    W.writeStr(S.Name);
    W.writeU8(S.IsFunction ? 1 : 0);
  }
  W.writeVarU(M.Globals.size());
  for (const ir::Global &G : M.Globals) {
    W.writeVarU(G.SymbolIndex);
    W.writeVarU(G.Size);
    W.writeVarU(G.Align);
    W.writeVarU(G.Init.size());
    W.writeBytes(G.Init);
  }
  W.writeVarU(M.Functions.size());
  for (const auto &F : M.Functions) {
    W.writeStr(F->Name);
    W.writeVarU(F->FrameSize);
    W.writeVarU(F->ParamBytes);
    W.writeVarU(F->NumLabels);
    W.writeVarU(F->ParamSlots.size());
    for (uint32_t S : F->ParamSlots)
      W.writeVarU(S);
    W.writeVarU(F->Forest.size());
  }
  return W.take();
}

/// Collects literals of \p T in prefix order into the per-op streams.
void collectLiterals(const Tree *T,
                     std::map<uint8_t, std::vector<uint64_t>> &Lits) {
  if (ir::hasLiteral(T->O))
    Lits[static_cast<uint8_t>(T->O)].push_back(zz(T->Literal));
  for (unsigned I = 0; I != T->NKids; ++I)
    collectLiterals(T->Kids[I], Lits);
}

/// Deepest tree a shape may describe; corrupt shapes past this are
/// rejected rather than risking unbounded recursion.
constexpr unsigned MaxTreeDepth = 4096;

/// Rebuilds one tree from shape bytes (prefix order), consuming literals
/// from the per-op streams.
const uint8_t *rebuildTree(ir::Function &F, const uint8_t *Shape,
                           const uint8_t *ShapeEnd,
                           std::map<uint8_t, std::vector<uint64_t>> &Lits,
                           std::map<uint8_t, size_t> &LitPos, Tree *&Out,
                           std::string &Error, unsigned Depth = 0) {
  if (Depth > MaxTreeDepth) {
    Error = "shape nesting too deep";
    return nullptr;
  }
  if (Shape + 2 > ShapeEnd) {
    Error = "truncated shape";
    return nullptr;
  }
  Op O = static_cast<Op>(Shape[0]);
  TypeSuffix S = static_cast<TypeSuffix>(Shape[1]);
  Shape += 2;
  if (O >= Op::NumOps || S >= TypeSuffix::NumSuffixes) {
    Error = "corrupt shape bytes";
    return nullptr;
  }
  Tree *T = F.newTree(O, S);
  if (ir::hasLiteral(O)) {
    uint8_t Key = static_cast<uint8_t>(O);
    size_t &Pos = LitPos[Key];
    std::vector<uint64_t> &Vals = Lits[Key];
    if (Pos >= Vals.size()) {
      Error = "literal stream underflow";
      return nullptr;
    }
    T->Literal = unzz(Vals[Pos++]);
  }
  unsigned Kids = ir::numKids(O);
  if (O == Op::RET && S == TypeSuffix::V)
    Kids = 0;
  for (unsigned I = 0; I != Kids; ++I) {
    Tree *Kid = nullptr;
    Shape = rebuildTree(F, Shape, ShapeEnd, Lits, LitPos, Kid, Error,
                        Depth + 1);
    if (!Shape)
      return nullptr;
    T->Kids[I] = Kid;
  }
  T->NKids = static_cast<uint8_t>(Kids);
  Out = T;
  return Shape;
}

//===----------------------------------------------------------------------===//
// Flat module container (shared by the Naive level and serializeModule)
//===----------------------------------------------------------------------===//

/// Appends the flat body: structure table, then per tree its shape and
/// literals inline.
void writeFlatBody(const ir::Module &M, ByteWriter &W) {
  W.writeBytes(buildStructure(M));
  for (const auto &F : M.Functions) {
    for (const Tree *T : F->Forest) {
      std::vector<uint8_t> Shape;
      shapeOf(T, Shape);
      W.writeVarU(Shape.size() / 2);
      W.writeBytes(Shape);
      // Literals inline, grouped by op key in prefix order.
      std::map<uint8_t, std::vector<uint64_t>> Tmp;
      collectLiterals(T, Tmp);
      for (auto &[K, Vs] : Tmp)
        for (uint64_t V : Vs) {
          (void)K;
          W.writeVarU(V);
        }
    }
  }
}

/// Reads the structure table into \p M; forest sizes go to
/// \p ForestSizes (one per function).
void readStructure(ByteReader &SR, ir::Module &M,
                   std::vector<size_t> &ForestSizes) {
  size_t NSyms = SR.readVarU();
  for (size_t I = 0; I != NSyms; ++I) {
    ir::Symbol S;
    S.Name = SR.readStr();
    S.IsFunction = SR.readU8() != 0;
    M.Symbols.push_back(std::move(S));
  }
  size_t NGlobals = SR.readVarU();
  for (size_t I = 0; I != NGlobals; ++I) {
    ir::Global G;
    G.SymbolIndex = static_cast<uint32_t>(SR.readVarU());
    G.Size = static_cast<uint32_t>(SR.readVarU());
    G.Align = static_cast<uint32_t>(SR.readVarU());
    size_t InitLen = SR.readVarU();
    G.Init = SR.readBytes(InitLen);
    M.Globals.push_back(std::move(G));
  }
  size_t NFuncs = SR.readVarU();
  for (size_t I = 0; I != NFuncs; ++I) {
    std::string Name = SR.readStr();
    ir::Function *F =
        M.Functions.emplace_back(std::make_unique<ir::Function>(Name))
            .get();
    F->FrameSize = static_cast<uint32_t>(SR.readVarU());
    F->ParamBytes = static_cast<uint32_t>(SR.readVarU());
    F->NumLabels = static_cast<uint32_t>(SR.readVarU());
    size_t NSlots = SR.readVarU();
    for (size_t K = 0; K != NSlots; ++K)
      F->ParamSlots.push_back(static_cast<uint32_t>(SR.readVarU()));
    ForestSizes.push_back(SR.readVarU());
  }
}

/// Parses a flat body; returns nullptr and sets \p Error on corruption.
std::unique_ptr<ir::Module> readFlatBody(ByteReader &SR,
                                         std::string &Error) {
  auto M = std::make_unique<ir::Module>();
  std::vector<size_t> ForestSizes;
  readStructure(SR, *M, ForestSizes);
  for (size_t FI = 0; FI != M->Functions.size(); ++FI) {
    ir::Function &F = *M->Functions[FI];
    for (size_t TI = 0; TI != ForestSizes[FI]; ++TI) {
      size_t Nodes = SR.readVarU();
      // Guard the Nodes * 2 byte count against overflow/inflation.
      if (Nodes > SR.remaining() / 2) {
        Error = "corrupt shape size";
        return nullptr;
      }
      std::vector<uint8_t> Shape = SR.readBytes(Nodes * 2);
      // Literals were written grouped by op key in prefix-order within
      // each key; reconstruct with the same grouping.
      std::map<uint8_t, std::vector<uint64_t>> Lits;
      // First pass: count literals per op from the shape.
      for (size_t K = 0; K != Nodes; ++K) {
        Op O = static_cast<Op>(Shape[K * 2]);
        if (O >= Op::NumOps) {
          Error = "corrupt shape";
          return nullptr;
        }
        if (ir::hasLiteral(O))
          Lits[static_cast<uint8_t>(O)].push_back(0);
      }
      for (auto &[K, Vs] : Lits)
        for (uint64_t &V : Vs) {
          (void)K;
          V = SR.readVarU();
        }
      std::map<uint8_t, size_t> LitPos;
      Tree *T = nullptr;
      const uint8_t *End = Shape.data() + Shape.size();
      if (!rebuildTree(F, Shape.data(), End, Lits, LitPos, T, Error))
        return nullptr;
      F.Forest.push_back(T);
    }
  }
  return M;
}

} // namespace

//===----------------------------------------------------------------------===//
// Compression
//===----------------------------------------------------------------------===//

std::vector<uint8_t> wire::compress(const ir::Module &M, Pipeline P,
                                    Stats *Out) {
  // Intern tree shapes and build the pattern-id and literal streams.
  std::map<std::vector<uint8_t>, uint32_t> ShapeIds;
  std::vector<std::vector<uint8_t>> Shapes;
  std::vector<uint64_t> PatternStream;
  std::map<uint8_t, std::vector<uint64_t>> LitStreams;

  size_t TreeCount = 0;
  for (const auto &F : M.Functions) {
    for (const Tree *T : F->Forest) {
      ++TreeCount;
      std::vector<uint8_t> Shape;
      shapeOf(T, Shape);
      auto [It, Inserted] =
          ShapeIds.insert({Shape, static_cast<uint32_t>(Shapes.size())});
      if (Inserted)
        Shapes.push_back(Shape);
      PatternStream.push_back(It->second);
      collectLiterals(T, LitStreams);
    }
  }

  // Shape dictionary bytes.
  ByteWriter ShapeW;
  ShapeW.writeVarU(Shapes.size());
  for (const auto &S : Shapes) {
    ShapeW.writeVarU(S.size() / 2); // Node count.
    ShapeW.writeBytes(S);
  }

  std::vector<uint8_t> Structure = buildStructure(M);

  ByteWriter File;
  File.writeU32(Magic);
  File.writeU8(static_cast<uint8_t>(P));

  auto AddStream = [&](const std::string &Name, uint8_t Key,
                       const std::vector<uint8_t> &Raw) {
    std::vector<uint8_t> Z = flate::compress(Raw);
    File.writeU8(Key);
    File.writeVarU(Z.size());
    File.writeBytes(Z);
    if (Out)
      Out->Streams.push_back({Name, Raw.size(), Z.size()});
  };

  if (P == Pipeline::Naive) {
    // Single stream: structure, shapes inline per tree, literals inline.
    ByteWriter W;
    writeFlatBody(M, W);
    File.writeVarU(1);
    AddStream("all", 0xFE, W.take());
  } else {
    File.writeVarU(3 + LitStreams.size());
    AddStream("structure", 0xFE, Structure);
    AddStream("shapes", 0xFD, ShapeW.take());
    AddStream("patterns", PatternStreamKey, encodeStream(PatternStream, P));
    for (auto &[Key, Vals] : LitStreams)
      AddStream(ir::opName(static_cast<Op>(Key)), Key,
                encodeStream(Vals, P));
  }

  std::vector<uint8_t> Bytes = File.take();
  if (Out) {
    Out->TotalBytes = Bytes.size();
    Out->PatternCount = Shapes.size();
    Out->TreeCount = TreeCount;
  }
  return Bytes;
}

//===----------------------------------------------------------------------===//
// Decompression
//===----------------------------------------------------------------------===//

namespace {

std::unique_ptr<ir::Module> decompressImpl(ByteSpan Bytes,
                                           std::string &Error) {
  ByteReader R(Bytes);
  if (R.remaining() < 5 || R.readU32() != Magic) {
    Error = "bad wire magic";
    return nullptr;
  }
  Pipeline P = static_cast<Pipeline>(R.readU8());
  if (P > Pipeline::Full) {
    Error = "bad pipeline level";
    return nullptr;
  }

  size_t NumStreams = R.readVarU();
  std::map<uint8_t, std::vector<uint8_t>> Raw;
  for (size_t I = 0; I != NumStreams; ++I) {
    uint8_t Key = R.readU8();
    size_t Len = R.readVarU();
    Result<std::vector<uint8_t>> Z = flate::tryDecompress(R.readBytes(Len));
    if (!Z.ok()) {
      Error = Z.error().message();
      return nullptr;
    }
    Raw[Key] = Z.take();
  }

  if (P == Pipeline::Naive) {
    auto It = Raw.find(0xFE);
    if (It == Raw.end()) {
      Error = "missing stream";
      return nullptr;
    }
    ByteReader SR(It->second);
    return readFlatBody(SR, Error);
  }

  auto M = std::make_unique<ir::Module>();

  // --- Split-stream levels ------------------------------------------------
  auto Need = [&](uint8_t Key) -> std::vector<uint8_t> * {
    auto It = Raw.find(Key);
    if (It == Raw.end())
      return nullptr;
    return &It->second;
  };

  std::vector<uint8_t> *Structure = Need(0xFE);
  std::vector<uint8_t> *ShapesB = Need(0xFD);
  std::vector<uint8_t> *Patterns = Need(PatternStreamKey);
  if (!Structure || !ShapesB || !Patterns) {
    Error = "missing stream";
    return nullptr;
  }

  std::vector<size_t> ForestSizes;
  {
    ByteReader SR(*Structure);
    readStructure(SR, *M, ForestSizes);
  }

  // Shape dictionary.
  std::vector<std::vector<uint8_t>> Shapes;
  {
    ByteReader SR(*ShapesB);
    size_t N = SR.readVarU();
    for (size_t I = 0; I != N; ++I) {
      size_t Nodes = SR.readVarU();
      if (Nodes > SR.remaining() / 2) {
        Error = "corrupt shape size";
        return nullptr;
      }
      Shapes.push_back(SR.readBytes(Nodes * 2));
    }
  }

  // Token streams.
  std::vector<uint64_t> PatternStream;
  {
    ByteReader SR(*Patterns);
    PatternStream = decodeStream(SR, P);
  }
  std::map<uint8_t, std::vector<uint64_t>> LitStreams;
  for (auto &[Key, Body] : Raw) {
    if (Key >= 0xFD)
      continue;
    ByteReader SR(Body);
    LitStreams[Key] = decodeStream(SR, P);
  }
  std::map<uint8_t, size_t> LitPos;

  size_t PatPos = 0;
  for (size_t FI = 0; FI != M->Functions.size(); ++FI) {
    ir::Function &F = *M->Functions[FI];
    for (size_t TI = 0; TI != ForestSizes[FI]; ++TI) {
      if (PatPos >= PatternStream.size()) {
        Error = "pattern stream underflow";
        return nullptr;
      }
      uint64_t Id = PatternStream[PatPos++];
      if (Id >= Shapes.size()) {
        Error = "bad pattern id";
        return nullptr;
      }
      const std::vector<uint8_t> &Shape = Shapes[Id];
      Tree *T = nullptr;
      if (!rebuildTree(F, Shape.data(), Shape.data() + Shape.size(),
                       LitStreams, LitPos, T, Error))
        return nullptr;
      F.Forest.push_back(T);
    }
  }
  return M;
}

} // namespace

std::unique_ptr<ir::Module> wire::decompress(ByteSpan Bytes,
                                             std::string &Error) {
  // The readers throw DecodeError on truncated or inflated fields; this
  // frame boundary converts every such failure into the (nullptr, Error)
  // contract so no malformed container can abort the process.
  Error.clear();
  try {
    return decompressImpl(Bytes, Error);
  } catch (const DecodeError &E) {
    Error = E.message();
  } catch (const std::bad_alloc &) {
    Error = "wire: allocation failed";
  } catch (const std::length_error &) {
    Error = "wire: length overflow";
  }
  return nullptr;
}

void wire::compressTo(const ir::Module &M, Sink &Out, Pipeline P,
                      Stats *StatsOut) {
  Out.write(compress(M, P, StatsOut));
}

//===----------------------------------------------------------------------===//
// Flat module container (public entry points)
//===----------------------------------------------------------------------===//

std::vector<uint8_t> wire::serializeModule(const ir::Module &M) {
  ByteWriter W;
  W.writeU32(FlatMagic);
  writeFlatBody(M, W);
  return W.take();
}

Result<std::unique_ptr<ir::Module>>
wire::tryDeserializeModule(ByteSpan Bytes) {
  return tryDecode([&]() -> std::unique_ptr<ir::Module> {
    ByteReader R(Bytes);
    if (R.readU32() != FlatMagic)
      decodeFail("flat module: bad magic");
    std::string Error;
    std::unique_ptr<ir::Module> M = readFlatBody(R, Error);
    if (!M)
      decodeFail("flat module: " + Error);
    return M;
  });
}

//===- wire/Wire.h - The wire-format code compressor ------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3's wire format: compile to trees, patternize out all
/// literals, form one stream of tree patterns and one literal stream per
/// operator class, move-to-front code each stream, Huffman-code the MTF
/// indices, and flate the streams in isolation. The decompressor
/// reconstructs a module whose canonical text equals the original's.
///
/// Pipeline levels expose the paper's design-space ablations:
///   Naive      - serialize + flate (the "just gzip it" baseline)
///   Streams    - split per-operator streams, flate each
///   StreamsMTF - + move-to-front coding
///   Full       - + Huffman coding of MTF indices (the paper's format)
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_WIRE_WIRE_H
#define CCOMP_WIRE_WIRE_H

#include "ir/IR.h"
#include "support/Error.h"
#include "support/Span.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ccomp {
namespace wire {

/// Which stages of the wire pipeline to run (ablation knob).
enum class Pipeline : uint8_t {
  Naive = 0,
  Streams = 1,
  StreamsMTF = 2,
  Full = 3,
};

/// Per-stream size accounting for the experiment harness.
struct StreamStat {
  std::string Name;
  size_t RawBytes = 0;        ///< Serialized stream before flate.
  size_t CompressedBytes = 0; ///< After flate.
};

struct Stats {
  std::vector<StreamStat> Streams;
  size_t TotalBytes = 0;
  size_t PatternCount = 0; ///< Distinct tree patterns in the dictionary.
  size_t TreeCount = 0;    ///< Statement trees compressed.
};

/// Compresses \p M into a self-contained wire file.
std::vector<uint8_t> compress(const ir::Module &M,
                              Pipeline P = Pipeline::Full,
                              Stats *Out = nullptr);

/// Compresses \p M, appending the wire file to \p Out.
void compressTo(const ir::Module &M, Sink &Out,
                Pipeline P = Pipeline::Full, Stats *Stats = nullptr);

/// Decompresses a wire file. Malformed input of any kind — truncated,
/// bit-flipped, inflated length fields — returns nullptr and sets
/// \p Error; no input aborts the process.
std::unique_ptr<ir::Module> decompress(ByteSpan Bytes, std::string &Error);

/// Serializes \p M into the plain (uncompressed) flat module container:
/// the structure table followed by each tree's shape and literals. This
/// is the wire codec's canonical byte payload — deterministic, and
/// byte-identical after a compress/decompress round trip.
std::vector<uint8_t> serializeModule(const ir::Module &M);

/// Parses a flat module container of unknown provenance. Corrupt input
/// yields a typed DecodeError.
Result<std::unique_ptr<ir::Module>> tryDeserializeModule(ByteSpan Bytes);

} // namespace wire
} // namespace ccomp

#endif // CCOMP_WIRE_WIRE_H

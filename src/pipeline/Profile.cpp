//===- pipeline/Profile.cpp - Execution traces and layout profiles --------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Profile.h"

#include "support/ByteIO.h"
#include "vm/Program.h"

#include <algorithm>

using namespace ccomp;
using namespace ccomp::pipeline;

namespace {
constexpr uint32_t ProfileMagic = 0x46504343; // "CCPF".
constexpr uint8_t ProfileVersion = 1;
constexpr uint8_t FlagTruncated = 1;
} // namespace

std::vector<uint8_t> ExecutionTrace::serialize() const {
  ByteWriter W;
  W.writeU32(ProfileMagic);
  W.writeU8(ProfileVersion);
  W.writeU8(Truncated ? FlagTruncated : 0);
  W.writeVarU(FuncCount);
  W.writeVarU(Events.size());
  for (const TraceEvent &E : Events) {
    W.writeVarU(E.Fn);
    W.writeVarU(E.Idx);
  }
  return W.take();
}

Result<ExecutionTrace> ExecutionTrace::tryDeserialize(ByteSpan Bytes) {
  return tryDecode([&] {
    ByteReader R(Bytes);
    if (R.readU32() != ProfileMagic)
      decodeFail("profile: bad magic");
    if (R.readU8() != ProfileVersion)
      decodeFail("profile: unsupported version");
    uint8_t Flags = R.readU8();
    if (Flags & ~FlagTruncated)
      decodeFail("profile: unknown flag bits");
    ExecutionTrace T;
    T.Truncated = Flags & FlagTruncated;
    T.FuncCount = static_cast<uint32_t>(R.readVarU());
    size_t N = R.readVarU();
    if (N > Bytes.size()) // Each event takes at least 2 bytes.
      decodeFail("profile: inflated event count");
    T.Events.reserve(N);
    for (size_t I = 0; I != N; ++I) {
      TraceEvent E;
      uint64_t Fn = R.readVarU();
      uint64_t Idx = R.readVarU();
      if (Fn >= T.FuncCount)
        decodeFail("profile: event function out of range");
      if (Idx >= MaxTraceInstrIdx)
        decodeFail("profile: block index out of range");
      E.Fn = static_cast<uint32_t>(Fn);
      E.Idx = static_cast<uint32_t>(Idx);
      T.Events.push_back(E);
    }
    if (!R.atEnd())
      decodeFail("profile: trailing bytes");
    return T;
  });
}

std::vector<FunctionProfile>
pipeline::digestTrace(const ExecutionTrace &T,
                      const std::vector<FunctionShape> &Shapes) {
  std::vector<FunctionProfile> Out(Shapes.size());
  std::vector<std::vector<uint32_t>> Cuts(Shapes.size());
  for (size_t F = 0; F != Shapes.size(); ++F) {
    Cuts[F] = vm::blockCuts(Shapes[F].LabelPos, Shapes[F].CodeLen);
    size_t Blocks = Shapes[F].CodeLen ? Cuts[F].size() - 1 : 0;
    Out[F].BlockHeat.assign(Blocks, 0);
    Out[F].EdgeAffinity.assign(Blocks > 1 ? Blocks - 1 : 0, 0);
  }

  uint32_t PrevFn = ~0u;
  uint32_t PrevBlock = 0;
  for (const TraceEvent &E : T.Events) {
    if (E.Fn >= Shapes.size() || E.Idx >= Shapes[E.Fn].CodeLen) {
      PrevFn = ~0u; // Advisory data: skip, and break the adjacency chain.
      continue;
    }
    const std::vector<uint32_t> &C = Cuts[E.Fn];
    auto It = std::upper_bound(C.begin(), C.end(), E.Idx);
    uint32_t Block = static_cast<uint32_t>(It - C.begin()) - 1;
    Out[E.Fn].BlockHeat[Block]++;
    if (E.Fn == PrevFn && Block != PrevBlock) {
      uint32_t Lo = std::min(Block, PrevBlock), Hi = std::max(Block, PrevBlock);
      if (Hi - Lo == 1)
        Out[E.Fn].EdgeAffinity[Lo]++;
    }
    PrevFn = E.Fn;
    PrevBlock = Block;
  }
  return Out;
}

//===- pipeline/Codecs.cpp - Built-in codec adapters ----------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The built-in adapters that put the project's compression stacks
/// behind the Codec seam:
///
///   flate       general LZ77+Huffman over arbitrary bytes
///   vm-compact  fixed-width VM code <-> CISC-class variable-length code
///   brisc       function image <-> BRISC Markov-coded executable
///   wire        flat module container <-> section-3 wire format
///   brisc-ctx   context-modeled instruction streams (BriscCtxCodec.cpp)
///   bwt-dict    BWT + MTF + Huffman over bytes (BwtDictCodec.cpp)
///
//===----------------------------------------------------------------------===//

#include "brisc/Brisc.h"
#include "flate/Flate.h"
#include "pipeline/Codec.h"
#include "pipeline/Payload.h"
#include "support/Support.h"
#include "vm/Encode.h"
#include "wire/Wire.h"

using namespace ccomp;
using namespace ccomp::pipeline;

namespace {

class FlateCodec final : public Codec {
public:
  const char *name() const override { return "flate"; }
  const char *description() const override {
    return "LZ77 + canonical Huffman over arbitrary bytes (the gzip-class "
           "baseline)";
  }
  PayloadKind payloadKind() const override { return PayloadKind::Raw; }

protected:
  std::vector<uint8_t> compressImpl(ByteSpan Payload) const override {
    return flate::compress(Payload);
  }
  Result<std::vector<uint8_t>> tryDecompressImpl(ByteSpan F) const override {
    return flate::tryDecompress(F);
  }
};

/// Transcodes a function's fixed-width code into the CISC-class compact
/// encoding (opcode byte, packed register nibbles, zig-zag varints) and
/// back. Pure re-encoding: both forms carry the same instruction fields,
/// so the round trip is byte-exact without any side tables.
class VMCompactCodec final : public Codec {
public:
  const char *name() const override { return "vm-compact"; }
  const char *description() const override {
    return "fixed-width VM code re-encoded variable-length (the "
           "Pentium-class size baseline)";
  }
  PayloadKind payloadKind() const override { return PayloadKind::FixedCode; }

protected:
  std::vector<uint8_t> compressImpl(ByteSpan Payload) const override {
    Result<std::vector<vm::Instr>> Code = vm::tryDecodeFunction(Payload);
    if (!Code.ok())
      reportFatal("vm-compact: payload is not fixed-width VM code: " +
                  Code.error().message());
    vm::VMFunction F;
    F.Code = Code.take();
    return vm::encodeFunctionCompact(F);
  }
  Result<std::vector<uint8_t>> tryDecompressImpl(ByteSpan F) const override {
    Result<std::vector<vm::Instr>> Code = vm::tryDecodeFunctionCompact(F);
    if (!Code.ok())
      return Code.error();
    vm::VMFunction Fn;
    Fn.Code = Code.take();
    return vm::encodeFunction(Fn);
  }
};

/// Compresses one function image into a self-contained BRISC executable.
/// Epilogue recognition stays off: EPI erases the reload sequence, and
/// this seam promises instruction-exact round trips.
class BriscCodec final : public Codec {
public:
  const char *name() const override { return "brisc"; }
  const char *description() const override {
    return "operand-specialized, Markov-coded BRISC image of one function "
           "(section 4)";
  }
  PayloadKind payloadKind() const override { return PayloadKind::FuncImage; }

protected:
  std::vector<uint8_t> compressImpl(ByteSpan Payload) const override {
    Result<vm::VMFunction> F = tryDecodeFuncImage(Payload);
    if (!F.ok())
      reportFatal("brisc codec: payload is not a function image: " +
                  F.error().message());
    vm::VMProgram P;
    P.Functions.push_back(F.take());
    brisc::CompressOptions Opts;
    Opts.EnableEpi = false;
    brisc::BriscProgram B = brisc::compress(P, Opts);
    return B.serialize(/*IncludeData=*/true);
  }
  Result<std::vector<uint8_t>> tryDecompressImpl(ByteSpan F) const override {
    Result<brisc::BriscProgram> B = brisc::BriscProgram::parse(F);
    if (!B.ok())
      return B.error();
    Result<vm::VMProgram> P = brisc::tryDecodeToVM(B.value());
    if (!P.ok())
      return P.error();
    if (P.value().Functions.size() != 1)
      return DecodeError("brisc codec: frame holds " +
                         std::to_string(P.value().Functions.size()) +
                         " functions, expected one");
    return encodeFuncImage(P.value().Functions[0]);
  }
};

/// Compresses a flat module container through the paper's full wire
/// pipeline (streams + MTF + Huffman + flate).
class WireCodec final : public Codec {
public:
  const char *name() const override { return "wire"; }
  const char *description() const override {
    return "split-stream MTF+Huffman wire format over a flat module "
           "container (section 3)";
  }
  PayloadKind payloadKind() const override { return PayloadKind::Module; }

protected:
  std::vector<uint8_t> compressImpl(ByteSpan Payload) const override {
    Result<std::unique_ptr<ir::Module>> M =
        wire::tryDeserializeModule(Payload);
    if (!M.ok())
      reportFatal("wire codec: payload is not a flat module container: " +
                  M.error().message());
    return wire::compress(*M.value(), wire::Pipeline::Full);
  }
  Result<std::vector<uint8_t>> tryDecompressImpl(ByteSpan F) const override {
    std::string Error;
    std::unique_ptr<ir::Module> M = wire::decompress(F, Error);
    if (!M)
      return DecodeError("wire codec: " + Error);
    return wire::serializeModule(*M);
  }
};

} // namespace

namespace ccomp {
namespace pipeline {

// Defined in BriscCtxCodec.cpp / BwtDictCodec.cpp.
std::unique_ptr<Codec> createBriscCtxCodec();
std::unique_ptr<Codec> createBwtDictCodec();

void registerBuiltinCodecs(Registry &R) {
  R.add(std::make_unique<FlateCodec>());
  R.add(std::make_unique<VMCompactCodec>());
  R.add(std::make_unique<BriscCodec>());
  R.add(std::make_unique<WireCodec>());
  R.add(createBriscCtxCodec());
  R.add(createBwtDictCodec());
}

} // namespace pipeline
} // namespace ccomp

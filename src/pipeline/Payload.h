//===- pipeline/Payload.h - Canonical codec payloads ------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical byte payloads the codecs compress. Each registered
/// codec round-trips its payload byte-identically, so the payload — not
/// the codec's in-memory structures — is the unit the pipeline hashes,
/// compares, and chains.
///
/// The function image is the per-function payload for code compressors:
/// name, frame size, and the fixed-width code with branch targets
/// resolved to *instruction indices*. Resolving targets removes the
/// label table from the format, so compressors that renumber labels
/// (BRISC rebuilds them from basic-block offsets) still round-trip the
/// image byte-exactly.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_PIPELINE_PAYLOAD_H
#define CCOMP_PIPELINE_PAYLOAD_H

#include "ir/IR.h"
#include "pipeline/Codec.h"
#include "support/Error.h"
#include "support/Span.h"
#include "vm/Program.h"

#include <vector>

namespace ccomp {
namespace pipeline {

/// Encodes \p F as a canonical function image. Branch targets must be
/// resolvable through F.LabelPos (a violation is a caller bug).
std::vector<uint8_t> encodeFuncImage(const vm::VMFunction &F);

/// Decodes a function image of unknown provenance back into a linked
/// function, rebuilding the label table from the branch targets (one
/// label per distinct target, in instruction order). Corrupt bytes
/// yield a typed DecodeError.
Result<vm::VMFunction> tryDecodeFuncImage(ByteSpan Bytes);

/// Builds the payload list \p C expects from one corpus program: one
/// payload per function for per-function codecs, a single flat module
/// container for module codecs. \p M may be null unless the codec takes
/// Module payloads.
std::vector<std::vector<uint8_t>> makePayloads(const Codec &C,
                                               const vm::VMProgram &P,
                                               const ir::Module *M);

} // namespace pipeline
} // namespace ccomp

#endif // CCOMP_PIPELINE_PAYLOAD_H

//===- pipeline/Payload.h - Canonical codec payloads ------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical byte payloads the codecs compress. Each registered
/// codec round-trips its payload byte-identically, so the payload — not
/// the codec's in-memory structures — is the unit the pipeline hashes,
/// compares, and chains.
///
/// The function image is the per-function payload for code compressors:
/// name, frame size, and the fixed-width code with branch targets
/// resolved to *instruction indices*. Resolving targets removes the
/// label table from the format, so compressors that renumber labels
/// (BRISC rebuilds them from basic-block offsets) still round-trip the
/// image byte-exactly.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_PIPELINE_PAYLOAD_H
#define CCOMP_PIPELINE_PAYLOAD_H

#include "ir/IR.h"
#include "pipeline/Codec.h"
#include "support/Error.h"
#include "support/Span.h"
#include "vm/Program.h"

#include <vector>

namespace ccomp {
namespace pipeline {

/// Encodes \p F as a canonical function image. Branch targets must be
/// resolvable through F.LabelPos (a violation is a caller bug).
std::vector<uint8_t> encodeFuncImage(const vm::VMFunction &F);

/// Decodes a function image of unknown provenance back into a linked
/// function, rebuilding the label table from the branch targets (one
/// label per distinct target, in instruction order). Corrupt bytes
/// yield a typed DecodeError.
Result<vm::VMFunction> tryDecodeFuncImage(ByteSpan Bytes);

/// Builds the payload list \p C expects from one corpus program: one
/// payload per function for per-function codecs, a single flat module
/// container for module codecs. \p M may be null unless the codec takes
/// Module payloads.
std::vector<std::vector<uint8_t>> makePayloads(const Codec &C,
                                               const vm::VMProgram &P,
                                               const ir::Module *M);

//===----------------------------------------------------------------------===//
// Page-chunked payloads (sub-function fault granularity)
//===----------------------------------------------------------------------===//

/// One page of a paged function: the instructions
/// [FirstInstr, FirstInstr + Code.size()) of the body, with branch
/// targets still expressed as function-label indices.
struct PageChunk {
  uint32_t FirstInstr = 0;
  std::vector<vm::Instr> Code;
};

/// Splits \p F at branch-label boundaries into basic blocks and greedily
/// packs adjacent blocks into pages holding at most \p TargetBytes of
/// fixed-width encoded code. A single block larger than the target still
/// forms one (oversized) page, so every split is a valid partition.
/// TargetBytes == 0 disables the limit: one page spans the whole
/// function.
std::vector<PageChunk> splitFunctionPages(const vm::VMFunction &F,
                                          size_t TargetBytes);

struct FunctionProfile;

/// Profile-guided variant. With a usable \p Profile (block/edge shapes
/// matching F, some nonzero heat, and a nonzero target) the cut points
/// are chosen by a dynamic program that clusters co-hot blocks onto
/// shared pages: a page containing any hot block costs its decoded
/// bytes plus one fault, a cut between source-order neighbours costs
/// their observed transfer affinity, and cold blocks are free — so hot
/// chains stay whole while cold arms split off. Every page is still a
/// run of adjacent blocks under the same TargetBytes budget (one
/// oversized block may form its own page), so the result is a valid
/// source-order partition: the manifest page table, the rank-rewritten
/// branch-target encoding, and the span-based interpreter need no
/// changes. With a null/unusable profile this is bit-identical to the
/// greedy overload.
std::vector<PageChunk> splitFunctionPages(const vm::VMFunction &F,
                                          size_t TargetBytes,
                                          const FunctionProfile *Profile);

/// Encodes one page's instructions as the payload kind \p K expects:
/// fixed-width code for Raw/FixedCode chains, a self-contained function
/// image for FuncImage chains. Image payloads rewrite each branch target
/// to its rank among the sorted distinct function-label indices the page
/// references (the image format validates targets against the page's own
/// length, which whole-function label indices would violate); the
/// rank -> label-index list is returned through \p PageLabels (required
/// for FuncImage, ignored otherwise) and must be presented back to
/// tryDecodePagePayload. \p K must not be Module.
std::vector<uint8_t> encodePagePayload(PayloadKind K,
                                       const std::vector<vm::Instr> &Code,
                                       std::vector<uint32_t> *PageLabels);

/// Decodes a page payload produced by encodePagePayload back into
/// instructions whose branch targets are function-label indices again.
/// Corrupt bytes — including rank targets outside \p PageLabels — yield
/// a typed DecodeError.
Result<std::vector<vm::Instr>>
tryDecodePagePayload(PayloadKind K, ByteSpan Bytes,
                     const std::vector<uint32_t> &PageLabels);

} // namespace pipeline
} // namespace ccomp

#endif // CCOMP_PIPELINE_PAYLOAD_H

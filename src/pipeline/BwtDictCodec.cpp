//===- pipeline/BwtDictCodec.cpp - BWT + MTF + Huffman byte codec ---------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bwt-dict codec: Burrows-Wheeler transform over the payload bytes,
/// move-to-front over the last column (sorting clusters equal contexts,
/// so MTF indices skew tiny), then canonical Huffman over the MTF
/// indices with raw 8-bit literals after each "new symbol" token. A Raw
/// codec, so it serves as a standalone byte chain or a back stage after
/// any instruction-recoding front (e.g. "brisc-ctx+bwt-dict").
///
/// Frame layout:
///   'B' 'D' version(1)
///   varU  OrigLen
///   -- nothing further when OrigLen == 0 --
///   varU  Primary            (< OrigLen)
///   varU  NumSyms            (Huffman alphabet over MTF indices, <= 257)
///   nibble-packed code lengths, (NumSyms+1)/2 bytes
///   varU  BitBytes
///   BitBytes bytes of LSB-first Huffman codes (+ 8-bit literals)
///
//===----------------------------------------------------------------------===//

#include "pipeline/Codec.h"
#include "support/BWT.h"
#include "support/ByteIO.h"
#include "support/Huffman.h"
#include "support/MTF.h"
#include "support/Support.h"

#include <algorithm>
#include <memory>

using namespace ccomp;
using namespace ccomp::pipeline;

namespace {

constexpr uint8_t FrameMagic0 = 'B';
constexpr uint8_t FrameMagic1 = 'D';
constexpr uint8_t FrameVersion = 1;

/// MTF over bytes: the table never exceeds 256 entries, so indices stay
/// in [0, 256] and the Huffman alphabet in [1, 257].
constexpr size_t ByteTableCap = 256;
constexpr uint64_t MaxNumSyms = ByteTableCap + 1;

std::vector<uint8_t> encodeBwtDict(ByteSpan Payload) {
  BWTResult B = bwtForward(Payload);

  ByteWriter W;
  W.writeU8(FrameMagic0);
  W.writeU8(FrameMagic1);
  W.writeU8(FrameVersion);
  W.writeVarU(Payload.size());
  if (Payload.empty())
    return W.take();

  // Pass 1: MTF the last column and collect index frequencies.
  MTFEncoder Freq1;
  std::vector<MTFToken> Tokens;
  Tokens.reserve(B.LastCol.size());
  uint32_t MaxIndex = 0;
  for (uint8_t C : B.LastCol) {
    MTFToken T = Freq1.encode(C);
    MaxIndex = std::max(MaxIndex, T.Index);
    Tokens.push_back(T);
  }
  std::vector<uint64_t> Freqs(MaxIndex + 1, 0);
  for (const MTFToken &T : Tokens)
    ++Freqs[T.Index];

  std::vector<uint8_t> Lens = buildHuffmanLengths(Freqs, 15);
  HuffmanCode Code(Lens);

  W.writeVarU(B.Primary);
  W.writeVarU(Lens.size());
  for (size_t I = 0; I < Lens.size(); I += 2) {
    uint8_t Packed = Lens[I];
    if (I + 1 < Lens.size())
      Packed = static_cast<uint8_t>(Packed | (Lens[I + 1] << 4));
    W.writeU8(Packed);
  }

  // Pass 2: emit the token stream.
  BitWriter BW;
  for (const MTFToken &T : Tokens) {
    Code.encode(BW, T.Index);
    if (T.Index == 0)
      BW.writeBits(static_cast<uint32_t>(T.NewSymbol), 8);
  }
  std::vector<uint8_t> Bits = BW.finish();
  W.writeVarU(Bits.size());
  W.writeBytes(Bits);
  return W.take();
}

std::vector<uint8_t> decodeBwtDictOrThrow(ByteSpan Frame) {
  ByteReader R(Frame);
  if (R.readU8() != FrameMagic0 || R.readU8() != FrameMagic1)
    decodeFail("bwt-dict: bad magic");
  if (R.readU8() != FrameVersion)
    decodeFail("bwt-dict: unsupported version");
  uint64_t OrigLen = R.readVarU();
  if (OrigLen == 0) {
    if (!R.atEnd())
      decodeFail("bwt-dict: trailing bytes after an empty transform");
    return {};
  }
  uint64_t Primary = R.readVarU();
  if (Primary >= OrigLen)
    decodeFail("bwt-dict: primary index out of range");
  uint64_t NumSyms = R.readVarU();
  if (NumSyms == 0 || NumSyms > MaxNumSyms)
    decodeFail("bwt-dict: Huffman alphabet size out of range");
  std::vector<uint8_t> Packed = R.readBytes((NumSyms + 1) / 2);
  std::vector<uint8_t> Lens(NumSyms);
  for (size_t I = 0; I != Lens.size(); ++I)
    Lens[I] = static_cast<uint8_t>(I % 2 ? Packed[I / 2] >> 4
                                         : Packed[I / 2] & 15);
  if (!HuffmanCode::isValidLengthSet(Lens))
    decodeFail("bwt-dict: oversubscribed Huffman lengths");
  HuffmanCode Code(std::move(Lens));

  uint64_t BitBytes = R.readVarU();
  std::vector<uint8_t> Bits = R.readBytes(BitBytes);
  if (!R.atEnd())
    decodeFail("bwt-dict: trailing bytes");
  // Each symbol consumes at least one bit: rejects inflated lengths
  // before the decode loop spends time (and memory) on them.
  if (OrigLen > Bits.size() * 8)
    decodeFail("bwt-dict: inflated length");

  BitReader BR(Bits);
  MTFDecoder Dec(ByteTableCap);
  std::vector<uint8_t> LastCol;
  // Reserve within the bit budget, not the raw claimed length: the
  // decode loop throws on bit exhaustion before a lie gets that far.
  LastCol.reserve(std::min<uint64_t>(OrigLen, Bits.size() * 8));
  for (uint64_t I = 0; I != OrigLen; ++I) {
    unsigned Sym = Code.decode(BR);
    uint64_t Val = Sym == 0 ? Dec.decode(0, BR.readBits(8))
                            : Dec.decode(static_cast<uint32_t>(Sym), 0);
    LastCol.push_back(static_cast<uint8_t>(Val));
  }
  if (!BR.nearEnd())
    decodeFail("bwt-dict: trailing bits");
  return bwtInverse(LastCol, static_cast<uint32_t>(Primary));
}

class BwtDictCodec final : public Codec {
public:
  const char *name() const override { return "bwt-dict"; }
  const char *description() const override {
    return "Burrows-Wheeler + MTF + canonical Huffman over arbitrary "
           "bytes (block-sorting dictionary coder)";
  }
  PayloadKind payloadKind() const override { return PayloadKind::Raw; }

protected:
  std::vector<uint8_t> compressImpl(ByteSpan Payload) const override {
    return encodeBwtDict(Payload);
  }
  Result<std::vector<uint8_t>> tryDecompressImpl(ByteSpan F) const override {
    return tryDecode([&] { return decodeBwtDictOrThrow(F); });
  }
};

} // namespace

namespace ccomp {
namespace pipeline {

std::unique_ptr<Codec> createBwtDictCodec() {
  return std::make_unique<BwtDictCodec>();
}

} // namespace pipeline
} // namespace ccomp

//===- pipeline/Payload.cpp - Canonical codec payloads --------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Payload.h"

#include "support/ByteIO.h"
#include "support/Support.h"
#include "vm/Encode.h"
#include "wire/Wire.h"

#include <algorithm>

using namespace ccomp;
using namespace ccomp::pipeline;
using vm::Instr;
using vm::VMFunction;
using vm::VMOp;

namespace {
constexpr uint32_t ImageMagic = 0x49464343; // "CCFI".
} // namespace

std::vector<uint8_t> pipeline::encodeFuncImage(const VMFunction &F) {
  ByteWriter W;
  W.writeU32(ImageMagic);
  W.writeStr(F.Name);
  W.writeVarU(F.FrameSize);
  W.writeVarU(F.Code.size());
  for (const Instr &In : F.Code) {
    Instr Out = In;
    if (vm::isBranch(In.Op)) {
      if (In.Target >= F.LabelPos.size())
        reportFatal("funcimage: branch to an out-of-range label");
      Out.Target = F.LabelPos[In.Target];
    }
    W.writeU8(static_cast<uint8_t>(Out.Op));
    W.writeU8(Out.Rd);
    W.writeU8(Out.Rs1);
    W.writeU8(Out.Rs2);
    W.writeU32(static_cast<uint32_t>(Out.Imm));
    W.writeU32(Out.Target);
  }
  return W.take();
}

namespace {

VMFunction decodeFuncImageOrThrow(ByteSpan Bytes) {
  ByteReader R(Bytes);
  if (R.readU32() != ImageMagic)
    decodeFail("funcimage: bad magic");
  VMFunction F;
  F.Name = R.readStr();
  F.FrameSize = static_cast<uint32_t>(R.readVarU());
  size_t N = R.readVarU();
  if (N > Bytes.size()) // Each instruction takes at least 12 bytes.
    decodeFail("funcimage: inflated instruction count");
  F.Code.reserve(N);
  for (size_t I = 0; I != N; ++I) {
    Instr In;
    uint8_t Op = R.readU8();
    if (Op >= static_cast<uint8_t>(VMOp::NumOps))
      decodeFail("funcimage: bad opcode");
    In.Op = static_cast<VMOp>(Op);
    In.Rd = R.readU8();
    In.Rs1 = R.readU8();
    In.Rs2 = R.readU8();
    In.Imm = static_cast<int32_t>(R.readU32());
    In.Target = R.readU32();
    F.Code.push_back(In);
  }
  if (!R.atEnd())
    decodeFail("funcimage: trailing bytes");

  // Rebuild the label table: one label per distinct branch-target
  // instruction index, in instruction order.
  std::vector<uint32_t> Targets;
  for (const Instr &In : F.Code)
    if (vm::isBranch(In.Op)) {
      if (In.Target >= F.Code.size())
        decodeFail("funcimage: branch past the end of the function");
      Targets.push_back(In.Target);
    }
  std::sort(Targets.begin(), Targets.end());
  Targets.erase(std::unique(Targets.begin(), Targets.end()), Targets.end());
  F.LabelPos = Targets;
  for (Instr &In : F.Code)
    if (vm::isBranch(In.Op)) {
      auto It = std::lower_bound(Targets.begin(), Targets.end(), In.Target);
      In.Target = static_cast<uint32_t>(It - Targets.begin());
    }
  return F;
}

} // namespace

Result<VMFunction> pipeline::tryDecodeFuncImage(ByteSpan Bytes) {
  return tryDecode([&] { return decodeFuncImageOrThrow(Bytes); });
}

std::vector<std::vector<uint8_t>>
pipeline::makePayloads(const Codec &C, const vm::VMProgram &P,
                       const ir::Module *M) {
  std::vector<std::vector<uint8_t>> Items;
  switch (C.payloadKind()) {
  case PayloadKind::Raw:
  case PayloadKind::FixedCode:
    for (const VMFunction &F : P.Functions)
      Items.push_back(vm::encodeFunction(F));
    break;
  case PayloadKind::FuncImage:
    for (const VMFunction &F : P.Functions)
      Items.push_back(encodeFuncImage(F));
    break;
  case PayloadKind::Module:
    if (!M)
      reportFatal("pipeline: module payload requested without a module");
    Items.push_back(wire::serializeModule(*M));
    break;
  }
  return Items;
}

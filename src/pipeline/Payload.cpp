//===- pipeline/Payload.cpp - Canonical codec payloads --------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Payload.h"

#include "pipeline/Profile.h"
#include "support/ByteIO.h"
#include "support/Support.h"
#include "vm/Encode.h"
#include "wire/Wire.h"

#include <algorithm>

using namespace ccomp;
using namespace ccomp::pipeline;
using vm::Instr;
using vm::VMFunction;
using vm::VMOp;

namespace {
constexpr uint32_t ImageMagic = 0x49464343; // "CCFI".
} // namespace

std::vector<uint8_t> pipeline::encodeFuncImage(const VMFunction &F) {
  ByteWriter W;
  W.writeU32(ImageMagic);
  W.writeStr(F.Name);
  W.writeVarU(F.FrameSize);
  W.writeVarU(F.Code.size());
  for (const Instr &In : F.Code) {
    Instr Out = In;
    if (vm::isBranch(In.Op)) {
      if (In.Target >= F.LabelPos.size())
        reportFatal("funcimage: branch to an out-of-range label");
      Out.Target = F.LabelPos[In.Target];
    }
    W.writeU8(static_cast<uint8_t>(Out.Op));
    W.writeU8(Out.Rd);
    W.writeU8(Out.Rs1);
    W.writeU8(Out.Rs2);
    W.writeU32(static_cast<uint32_t>(Out.Imm));
    W.writeU32(Out.Target);
  }
  return W.take();
}

namespace {

VMFunction decodeFuncImageOrThrow(ByteSpan Bytes) {
  ByteReader R(Bytes);
  if (R.readU32() != ImageMagic)
    decodeFail("funcimage: bad magic");
  VMFunction F;
  F.Name = R.readStr();
  F.FrameSize = static_cast<uint32_t>(R.readVarU());
  size_t N = R.readVarU();
  if (N > Bytes.size()) // Each instruction takes at least 12 bytes.
    decodeFail("funcimage: inflated instruction count");
  F.Code.reserve(N);
  for (size_t I = 0; I != N; ++I) {
    Instr In;
    uint8_t Op = R.readU8();
    if (Op >= static_cast<uint8_t>(VMOp::NumOps))
      decodeFail("funcimage: bad opcode");
    In.Op = static_cast<VMOp>(Op);
    In.Rd = R.readU8();
    In.Rs1 = R.readU8();
    In.Rs2 = R.readU8();
    In.Imm = static_cast<int32_t>(R.readU32());
    In.Target = R.readU32();
    F.Code.push_back(In);
  }
  if (!R.atEnd())
    decodeFail("funcimage: trailing bytes");

  // Rebuild the label table: one label per distinct branch-target
  // instruction index, in instruction order.
  std::vector<uint32_t> Targets;
  for (const Instr &In : F.Code)
    if (vm::isBranch(In.Op)) {
      if (In.Target >= F.Code.size())
        decodeFail("funcimage: branch past the end of the function");
      Targets.push_back(In.Target);
    }
  std::sort(Targets.begin(), Targets.end());
  Targets.erase(std::unique(Targets.begin(), Targets.end()), Targets.end());
  F.LabelPos = Targets;
  for (Instr &In : F.Code)
    if (vm::isBranch(In.Op)) {
      auto It = std::lower_bound(Targets.begin(), Targets.end(), In.Target);
      In.Target = static_cast<uint32_t>(It - Targets.begin());
    }
  return F;
}

} // namespace

Result<VMFunction> pipeline::tryDecodeFuncImage(ByteSpan Bytes) {
  return tryDecode([&] { return decodeFuncImageOrThrow(Bytes); });
}

namespace {

/// Materializes pages from block-index page starts (ascending, first 0).
std::vector<PageChunk> pagesFromStarts(const VMFunction &F,
                                       const std::vector<uint32_t> &Cuts,
                                       const std::vector<uint32_t> &Starts) {
  std::vector<PageChunk> Pages;
  for (size_t P = 0; P != Starts.size(); ++P) {
    uint32_t Lo = Cuts[Starts[P]];
    uint32_t Hi = P + 1 < Starts.size() ? Cuts[Starts[P + 1]]
                                        : static_cast<uint32_t>(F.Code.size());
    PageChunk C;
    C.FirstInstr = Lo;
    C.Code.assign(F.Code.begin() + Lo, F.Code.begin() + Hi);
    Pages.push_back(std::move(C));
  }
  if (Pages.empty())
    Pages.push_back(PageChunk{}); // An empty function still gets a page.
  return Pages;
}

} // namespace

std::vector<PageChunk> pipeline::splitFunctionPages(const VMFunction &F,
                                                    size_t TargetBytes) {
  const size_t Len = F.Code.size();
  // Block boundaries: the entry plus every label position inside the
  // body (a label at Len marks an empty trailing block; no cut needed).
  std::vector<uint32_t> Cuts = vm::blockCuts(F.LabelPos, Len);

  std::vector<PageChunk> Pages;
  uint32_t PageStart = 0;
  size_t PageBytes = 0;
  auto Flush = [&](uint32_t UpTo) {
    if (UpTo == PageStart)
      return;
    PageChunk P;
    P.FirstInstr = PageStart;
    P.Code.assign(F.Code.begin() + PageStart, F.Code.begin() + UpTo);
    Pages.push_back(std::move(P));
    PageStart = UpTo;
    PageBytes = 0;
  };
  for (size_t C = 0; C + 1 < Cuts.size(); ++C) {
    size_t BlockBytes = 0;
    for (uint32_t I = Cuts[C]; I != Cuts[C + 1]; ++I)
      BlockBytes += vm::encodedSize(F.Code[I]);
    if (TargetBytes && PageBytes && PageBytes + BlockBytes > TargetBytes)
      Flush(Cuts[C]);
    PageBytes += BlockBytes;
  }
  Flush(static_cast<uint32_t>(Len));
  if (Pages.empty())
    Pages.push_back(PageChunk{}); // An empty function still gets a page.
  return Pages;
}

std::vector<PageChunk> pipeline::splitFunctionPages(const VMFunction &F,
                                                    size_t TargetBytes,
                                                    const FunctionProfile *Profile) {
  const size_t Len = F.Code.size();
  std::vector<uint32_t> Cuts = vm::blockCuts(F.LabelPos, Len);
  const size_t N = Len ? Cuts.size() - 1 : 0; // Block count.
  // The profile is advisory: anything unusable (no profile, no byte
  // budget to trade against, a shape recorded against a different build,
  // or an all-cold function) falls back to the greedy packer so the
  // layout is bit-identical to the unprofiled build.
  bool Usable = Profile && TargetBytes && N && Profile->BlockHeat.size() == N &&
                Profile->EdgeAffinity.size() == (N > 1 ? N - 1 : 0) &&
                Profile->hot();
  if (!Usable)
    return splitFunctionPages(F, TargetBytes);

  std::vector<uint64_t> BlockBytes(N, 0);
  for (size_t B = 0; B != N; ++B)
    for (uint32_t I = Cuts[B]; I != Cuts[B + 1]; ++I)
      BlockBytes[B] += vm::encodedSize(F.Code[I]);

  // Minimum-cost partition of the block sequence into runs of at most
  // TargetBytes (a single oversized block is still a legal run). Costs,
  // all in byte units with W = TargetBytes as the fault weight: a page
  // holding any hot block is decoded whenever the function runs, so it
  // costs its bytes plus one fault W; an all-cold page is never decoded
  // and costs nothing; a cut between blocks with observed transfer
  // affinity a costs a*W (each crossing is a potential fault). O(n^2)
  // worst case, but the inner loop stops at the byte budget.
  const uint64_t W = TargetBytes;
  const std::vector<uint64_t> &Heat = Profile->BlockHeat;
  const std::vector<uint64_t> &Aff = Profile->EdgeAffinity;
  constexpr uint64_t Inf = ~0ull;
  std::vector<uint64_t> Cost(N + 1, Inf);
  std::vector<uint32_t> Choice(N + 1, 0);
  Cost[0] = 0;
  for (size_t J = 1; J <= N; ++J) {
    uint64_t Bytes = 0;
    bool Hot = false;
    for (size_t I = J; I-- > 0;) { // Page = blocks [I, J).
      Bytes += BlockBytes[I];
      Hot = Hot || Heat[I] != 0;
      if (Bytes > TargetBytes && I + 1 != J)
        break; // Over budget and not a lone oversized block.
      if (Cost[I] == Inf)
        continue;
      uint64_t C = Cost[I] + (Hot ? Bytes + W : 0) + (I ? Aff[I - 1] * W : 0);
      // <= so equal-cost ties take the longer page: cold runs pack to
      // the budget instead of fragmenting into per-block pages.
      if (C <= Cost[J]) {
        Cost[J] = C;
        Choice[J] = static_cast<uint32_t>(I);
      }
    }
  }

  std::vector<uint32_t> Starts;
  for (uint32_t J = static_cast<uint32_t>(N); J > 0; J = Choice[J])
    Starts.push_back(Choice[J]);
  std::reverse(Starts.begin(), Starts.end());
  return pagesFromStarts(F, Cuts, Starts);
}

std::vector<uint8_t>
pipeline::encodePagePayload(PayloadKind K, const std::vector<Instr> &Code,
                            std::vector<uint32_t> *PageLabels) {
  if (K == PayloadKind::Module)
    reportFatal("page payload requested from a module-granularity codec");
  VMFunction PF;
  PF.Code = Code;
  if (K != PayloadKind::FuncImage)
    return vm::encodeFunction(PF); // Targets stay function-label indices.

  // The image format resolves targets to instruction indices and its
  // decoder validates them against the page's own length, so
  // whole-function label indices cannot ride through it. Rewrite each
  // branch target to its rank among the page's referenced labels and
  // give the image the identity label table {0..k-1}: k never exceeds
  // the page's branch count, so every rank is a valid in-page
  // instruction index, and the decoder's canonical table rebuild maps
  // rank r back to exactly r.
  std::vector<uint32_t> Labels;
  for (const Instr &In : Code)
    if (vm::isBranch(In.Op))
      Labels.push_back(In.Target);
  std::sort(Labels.begin(), Labels.end());
  Labels.erase(std::unique(Labels.begin(), Labels.end()), Labels.end());
  for (Instr &In : PF.Code)
    if (vm::isBranch(In.Op)) {
      auto It = std::lower_bound(Labels.begin(), Labels.end(), In.Target);
      In.Target = static_cast<uint32_t>(It - Labels.begin());
    }
  PF.LabelPos.resize(Labels.size());
  for (uint32_t R = 0; R != PF.LabelPos.size(); ++R)
    PF.LabelPos[R] = R;
  if (PageLabels)
    *PageLabels = std::move(Labels);
  return encodeFuncImage(PF);
}

Result<std::vector<Instr>>
pipeline::tryDecodePagePayload(PayloadKind K, ByteSpan Bytes,
                               const std::vector<uint32_t> &PageLabels) {
  if (K != PayloadKind::FuncImage)
    return vm::tryDecodeFunction(Bytes);
  Result<VMFunction> Img = tryDecodeFuncImage(Bytes);
  if (!Img.ok())
    return Img.error();
  return tryDecode([&] {
    VMFunction F = Img.take();
    for (Instr &In : F.Code)
      if (vm::isBranch(In.Op)) {
        // The image's rebuilt label table holds the ranks encodePagePayload
        // assigned; map each back to its function-label index.
        uint32_t Rank = F.LabelPos[In.Target];
        if (Rank >= PageLabels.size())
          decodeFail("page: branch rank outside the page label table");
        In.Target = PageLabels[Rank];
      }
    return std::move(F.Code);
  });
}

std::vector<std::vector<uint8_t>>
pipeline::makePayloads(const Codec &C, const vm::VMProgram &P,
                       const ir::Module *M) {
  std::vector<std::vector<uint8_t>> Items;
  switch (C.payloadKind()) {
  case PayloadKind::Raw:
  case PayloadKind::FixedCode:
    for (const VMFunction &F : P.Functions)
      Items.push_back(vm::encodeFunction(F));
    break;
  case PayloadKind::FuncImage:
    for (const VMFunction &F : P.Functions)
      Items.push_back(encodeFuncImage(F));
    break;
  case PayloadKind::Module:
    if (!M)
      reportFatal("pipeline: module payload requested without a module");
    Items.push_back(wire::serializeModule(*M));
    break;
  }
  return Items;
}

//===- pipeline/Codec.cpp - Codec stats, registry, chain parsing ----------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Codec.h"

#include "support/Support.h"

#include <chrono>

using namespace ccomp;
using namespace ccomp::pipeline;

namespace ccomp {
namespace pipeline {
// Defined in Codecs.cpp; called once from the Registry constructor.
void registerBuiltinCodecs(Registry &R);
} // namespace pipeline
} // namespace ccomp

namespace {
uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
} // namespace

// Stats-ordering contract: writers publish the payload counters (bytes,
// nanos, errors) BEFORE bumping the call counter with a release RMW, and
// snapshot() loads the call counter FIRST with acquire. Release-sequence
// rules then guarantee a mid-run reader that observes CompressCalls == k
// also observes at least the bytes/nanos of those k calls — the previous
// order (calls first) let a snapshot report "k calls, k-1 calls' bytes",
// i.e. counts without their bytes, which the 8-thread hammer test in
// test_codec pins.

std::vector<uint8_t> Codec::compress(ByteSpan Payload) const {
  uint64_t Start = nowNanos();
  std::vector<uint8_t> Frame = compressImpl(Payload);
  CompressNanos.fetch_add(nowNanos() - Start, std::memory_order_release);
  BytesIn.fetch_add(Payload.size(), std::memory_order_release);
  BytesOut.fetch_add(Frame.size(), std::memory_order_release);
  CompressCalls.fetch_add(1, std::memory_order_release);
  return Frame;
}

Result<std::vector<uint8_t>> Codec::tryDecompress(ByteSpan Frame) const {
  uint64_t Start = nowNanos();
  Result<std::vector<uint8_t>> R = tryDecompressImpl(Frame);
  DecompressNanos.fetch_add(nowNanos() - Start, std::memory_order_release);
  if (!R.ok())
    DecodeErrors.fetch_add(1, std::memory_order_release);
  DecompressCalls.fetch_add(1, std::memory_order_release);
  return R;
}

CodecStats Codec::snapshot() const {
  auto ReadAll = [this] {
    CodecStats S;
    // Call counters first (acquire): everything their writers published
    // before the release bump — bytes, nanos, errors — is then visible.
    S.CompressCalls = CompressCalls.load(std::memory_order_acquire);
    S.DecompressCalls = DecompressCalls.load(std::memory_order_acquire);
    S.BytesIn = BytesIn.load(std::memory_order_acquire);
    S.BytesOut = BytesOut.load(std::memory_order_acquire);
    S.DecodeErrors = DecodeErrors.load(std::memory_order_acquire);
    S.CompressNanos = CompressNanos.load(std::memory_order_acquire);
    S.DecompressNanos = DecompressNanos.load(std::memory_order_acquire);
    return S;
  };
  // Two identical consecutive passes prove no update landed mid-read.
  // Under sustained concurrent traffic there is no consistent value to
  // report; after a few tries return the freshest pass.
  CodecStats Prev = ReadAll();
  for (int Try = 0; Try != 8; ++Try) {
    CodecStats Cur = ReadAll();
    if (Cur == Prev)
      return Cur;
    Prev = Cur;
  }
  return Prev;
}

void Codec::resetStats() const {
  CompressCalls.store(0, std::memory_order_relaxed);
  BytesIn.store(0, std::memory_order_relaxed);
  BytesOut.store(0, std::memory_order_relaxed);
  DecompressCalls.store(0, std::memory_order_relaxed);
  DecodeErrors.store(0, std::memory_order_relaxed);
  CompressNanos.store(0, std::memory_order_relaxed);
  DecompressNanos.store(0, std::memory_order_relaxed);
}

Registry &Registry::instance() {
  static Registry R;
  return R;
}

Registry::Registry() { registerBuiltinCodecs(*this); }

void Registry::add(std::unique_ptr<Codec> C) {
  if (find(C->name()))
    reportFatal(std::string("pipeline: duplicate codec name '") + C->name() +
                "'");
  Codecs.push_back(std::move(C));
}

const Codec *Registry::find(std::string_view Name) const {
  for (const std::unique_ptr<Codec> &C : Codecs)
    if (Name == C->name())
      return C.get();
  return nullptr;
}

std::vector<const Codec *> pipeline::parseChain(std::string_view Spec,
                                                std::string &Error) {
  std::vector<const Codec *> Chain;
  const Registry &R = Registry::instance();
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Plus = Spec.find('+', Pos);
    if (Plus == std::string_view::npos)
      Plus = Spec.size();
    std::string_view Name = Spec.substr(Pos, Plus - Pos);
    if (Name.empty()) {
      Error = "empty codec name in chain '" + std::string(Spec) + "'";
      return {};
    }
    const Codec *C = R.find(Name);
    if (!C) {
      Error = "unknown codec '" + std::string(Name) + "'";
      return {};
    }
    if (!Chain.empty() && C->payloadKind() != PayloadKind::Raw) {
      Error = "codec '" + std::string(Name) +
              "' cannot follow another codec: it does not accept raw bytes";
      return {};
    }
    Chain.push_back(C);
    Pos = Plus + 1;
  }
  return Chain;
}

//===- pipeline/Profile.h - Execution traces and layout profiles -*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile side of profile-guided page layout (Ozturk et al.,
/// "Access Pattern-Based Code Compression"): a compact execution trace
/// recorded from a block-granular profiling run, its sidecar
/// serialization (CCPF), and the digest that turns a trace into
/// per-function block heat + adjacency affinity for the page packer.
///
/// A trace is a sequence of (function, instruction-index) span-resolve
/// events — the entries the VM's FunctionResolver saw. Instruction
/// indices are layout-independent (they name positions in the decoded
/// body, not pages), so a trace recorded once stays valid for any page
/// target and any repack of the same program.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_PIPELINE_PROFILE_H
#define CCOMP_PIPELINE_PROFILE_H

#include "support/Error.h"
#include "support/Span.h"

#include <cstdint>
#include <vector>

namespace ccomp {
namespace pipeline {

/// One observed control transfer: the resolver was asked for the span
/// holding instruction \p Idx of function \p Fn.
struct TraceEvent {
  uint32_t Fn = 0;
  uint32_t Idx = 0;
};

inline bool operator==(const TraceEvent &A, const TraceEvent &B) {
  return A.Fn == B.Fn && A.Idx == B.Idx;
}

/// Hard cap on the instruction index a serialized trace may carry; a
/// value at or above this is a corrupt sidecar, not a real function.
constexpr uint32_t MaxTraceInstrIdx = 1u << 20;

/// A recorded profiling run, serializable to the CCPF sidecar format:
///
///   u32 magic "CCPF" | u8 version (1) | u8 flags (bit0 = truncated) |
///   varU function-count | varU event-count |
///   event-count x (varU fn | varU idx)
///
/// The decoder rejects, typed and recoverable: bad magic/version,
/// unknown flag bits, event counts larger than the byte budget could
/// hold (reserve bomb), fn >= function-count, idx >= MaxTraceInstrIdx,
/// truncated event streams, and trailing bytes.
struct ExecutionTrace {
  std::vector<TraceEvent> Events;
  /// Function-index space the events were recorded against (validates
  /// Fn on deserialize; recordTrace sets it to the program's count).
  uint32_t FuncCount = 0;
  /// Set when the recorder hit its event cap and dropped the tail.
  bool Truncated = false;

  std::vector<uint8_t> serialize() const;
  static Result<ExecutionTrace> tryDeserialize(ByteSpan Bytes);
};

/// The shape a profile is digested against: one entry per function, in
/// function-index order. Only cut points matter, so label order and
/// duplicates are irrelevant (vm::blockCuts canonicalizes).
struct FunctionShape {
  std::vector<uint32_t> LabelPos;
  uint32_t CodeLen = 0;
};

/// Per-function layout signal for the affinity-aware packer, indexed by
/// basic block (vm::blockCuts order).
struct FunctionProfile {
  /// BlockHeat[i]: how often control entered block i (= the faults block
  /// i would take if it always lived on a cold page).
  std::vector<uint64_t> BlockHeat;
  /// EdgeAffinity[i]: observed transfers between source-order neighbours
  /// block i and block i+1 (either direction) — what a page cut between
  /// them would cost. Size is BlockHeat.size() - 1 (empty when <= 1).
  std::vector<uint64_t> EdgeAffinity;

  bool hot() const {
    for (uint64_t H : BlockHeat)
      if (H)
        return true;
    return false;
  }
};

/// Digests \p T into per-function profiles for \p Shapes. Events whose
/// function or instruction index falls outside the shapes are skipped:
/// a profile is advisory data and never fails a build. Consecutive
/// events within the same function feed edge affinity; transfers across
/// functions only feed heat.
std::vector<FunctionProfile> digestTrace(const ExecutionTrace &T,
                                         const std::vector<FunctionShape> &Shapes);

} // namespace pipeline
} // namespace ccomp

#endif // CCOMP_PIPELINE_PROFILE_H

//===- pipeline/Pipeline.h - Parallel compression driver --------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The driver that fans per-item compression jobs across a fixed-size
/// thread pool. Output is deterministic: results land in slots indexed
/// by item number, so the bytes are identical to a serial run for any
/// job count, and the first (lowest-index) decode failure is the one
/// reported.
///
/// A packed container ("CCPK") bundles the chain spec and the per-item
/// frames into one self-describing blob so a tool can decompress without
/// being told which codecs produced it.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_PIPELINE_PIPELINE_H
#define CCOMP_PIPELINE_PIPELINE_H

#include "pipeline/Codec.h"
#include "support/Error.h"
#include "support/Span.h"

#include <string>
#include <vector>

namespace ccomp {
namespace pipeline {

/// Runs every payload through \p Chain (first codec first), fanning
/// items across \p Jobs worker threads (<=1 runs serially on the caller
/// thread). Frame I is the compressed form of payload I.
std::vector<std::vector<uint8_t>>
compressAll(const std::vector<const Codec *> &Chain,
            const std::vector<std::vector<uint8_t>> &Payloads, unsigned Jobs);

/// Inverts compressAll: runs every frame through \p Chain in reverse.
/// On failure the error of the lowest-index failing frame is returned,
/// independent of scheduling.
Result<std::vector<std::vector<uint8_t>>>
tryDecompressAll(const std::vector<const Codec *> &Chain,
                 const std::vector<std::vector<uint8_t>> &Frames,
                 unsigned Jobs);

/// selectChainsPerItem's result: for every payload, the frame produced
/// by the chain that won it and the index of that chain in the
/// candidate list. Uniform means every item picked chain 0, i.e. the
/// selection degenerated to the primary chain and a caller can drop the
/// per-item table entirely (bit-identical to a plain compressAll).
struct ChainSelection {
  std::vector<std::vector<uint8_t>> Frames;
  std::vector<uint32_t> ChainIdx;
  bool Uniform = true;
};

/// Trial-encodes every payload through every candidate chain and picks,
/// per item, the chain with the smallest frame among those that (a)
/// round-trip the payload byte-exactly and (b) fit the decode-time
/// budget. Decode time is modeled from the codecs' own snapshot()
/// deltas over the trial traffic: the verify pass decompresses exactly
/// what was compressed, so DecompressNanos/BytesIn is each codec's
/// nanoseconds per decompressed byte, and a chain's modeled cost is the
/// sum over its stages of (stage payload bytes x stage rate).
///
/// \p DecodeBudgetNanos 0 means unlimited, which also makes the
/// selection fully deterministic (pure size comparison; a nonzero
/// budget depends on measured rates). Ties go to the lower chain
/// index; an item with no qualifying chain falls back to chain 0.
/// Chains must be non-empty and their first codecs must accept the
/// payloads the caller built (the caller aligns payload kinds).
ChainSelection
selectChainsPerItem(const std::vector<std::vector<const Codec *>> &Chains,
                    const std::vector<std::vector<uint8_t>> &Payloads,
                    uint64_t DecodeBudgetNanos, unsigned Jobs);

/// Packs a chain spec and its frames into one self-describing container.
std::vector<uint8_t> packContainer(const std::string &ChainSpec,
                                   const std::vector<std::vector<uint8_t>> &Frames);

/// A parsed container: the chain that produced it and the raw frames.
struct Container {
  std::string ChainSpec;
  std::vector<std::vector<uint8_t>> Frames;
};

/// Parses a container of unknown provenance; corrupt input yields a
/// typed DecodeError.
Result<Container> tryUnpackContainer(ByteSpan Bytes);

/// Content hash of a store container's payload: the chain spec plus
/// every compressed frame, in frame order, each frame prefixed by its
/// length so frame boundaries are part of the identity. FNV-1a over
/// the bytes, avalanched through a final mixer. Deterministic across
/// platforms and builds — two containers hash equal iff spec and
/// frames are byte-identical — so the value can serve as the
/// content-addressed key of a process-wide frame registry. The store
/// excludes its manifest frame from \p Frames: the hash rides *inside*
/// the manifest (manifest v3), so it cannot cover it.
uint64_t hashContainerFrames(const std::string &ChainSpec,
                             const std::vector<std::vector<uint8_t>> &Frames);

} // namespace pipeline
} // namespace ccomp

#endif // CCOMP_PIPELINE_PIPELINE_H

//===- pipeline/Pipeline.cpp - Parallel compression driver ----------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include "support/ByteIO.h"
#include "support/PRNG.h"
#include "support/Support.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <optional>

using namespace ccomp;
using namespace ccomp::pipeline;

namespace {

constexpr uint32_t PackMagic = 0x4B504343; // "CCPK".

std::vector<uint8_t> compressOne(const std::vector<const Codec *> &Chain,
                                 const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> Cur = Payload;
  for (const Codec *C : Chain)
    Cur = C->compress(Cur);
  return Cur;
}

Result<std::vector<uint8_t>>
decompressOne(const std::vector<const Codec *> &Chain,
              const std::vector<uint8_t> &Frame) {
  std::vector<uint8_t> Cur = Frame;
  for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
    Result<std::vector<uint8_t>> R = (*It)->tryDecompress(Cur);
    if (!R.ok())
      return R;
    Cur = R.take();
  }
  return Cur;
}

} // namespace

std::vector<std::vector<uint8_t>>
pipeline::compressAll(const std::vector<const Codec *> &Chain,
                      const std::vector<std::vector<uint8_t>> &Payloads,
                      unsigned Jobs) {
  if (Chain.empty())
    reportFatal("pipeline: empty codec chain");
  std::vector<std::vector<uint8_t>> Frames(Payloads.size());
  if (Jobs <= 1 || Payloads.size() <= 1) {
    for (size_t I = 0; I != Payloads.size(); ++I)
      Frames[I] = compressOne(Chain, Payloads[I]);
    return Frames;
  }
  // Each worker writes only its own pre-sized slot, so the result is
  // byte-identical to the serial loop for any job count.
  ThreadPool Pool(Jobs);
  Pool.parallelFor(Payloads.size(), [&](size_t I) {
    Frames[I] = compressOne(Chain, Payloads[I]);
  });
  return Frames;
}

Result<std::vector<std::vector<uint8_t>>>
pipeline::tryDecompressAll(const std::vector<const Codec *> &Chain,
                           const std::vector<std::vector<uint8_t>> &Frames,
                           unsigned Jobs) {
  if (Chain.empty())
    reportFatal("pipeline: empty codec chain");
  std::vector<std::vector<uint8_t>> Payloads(Frames.size());
  std::vector<std::optional<DecodeError>> Errors(Frames.size());
  auto RunOne = [&](size_t I) {
    Result<std::vector<uint8_t>> R = decompressOne(Chain, Frames[I]);
    if (R.ok())
      Payloads[I] = R.take();
    else
      Errors[I] = R.error();
  };
  if (Jobs <= 1 || Frames.size() <= 1) {
    for (size_t I = 0; I != Frames.size(); ++I)
      RunOne(I);
  } else {
    ThreadPool Pool(Jobs);
    Pool.parallelFor(Frames.size(), RunOne);
  }
  // Report the lowest-index failure so diagnostics do not depend on
  // worker scheduling.
  for (std::optional<DecodeError> &E : Errors)
    if (E)
      return *E;
  return Payloads;
}

ChainSelection pipeline::selectChainsPerItem(
    const std::vector<std::vector<const Codec *>> &Chains,
    const std::vector<std::vector<uint8_t>> &Payloads,
    uint64_t DecodeBudgetNanos, unsigned Jobs) {
  if (Chains.empty())
    reportFatal("pipeline: no candidate chains");
  for (const std::vector<const Codec *> &C : Chains)
    if (C.empty())
      reportFatal("pipeline: empty codec chain");

  // The decode-rate model reads snapshot() deltas over the trial
  // traffic, so other traffic on the same process-wide codecs between
  // the two snapshots would pollute the rates (never the frames).
  std::vector<const Codec *> Distinct;
  for (const std::vector<const Codec *> &C : Chains)
    for (const Codec *K : C)
      if (std::find(Distinct.begin(), Distinct.end(), K) == Distinct.end())
        Distinct.push_back(K);
  std::vector<CodecStats> Before;
  Before.reserve(Distinct.size());
  for (const Codec *K : Distinct)
    Before.push_back(K->snapshot());

  struct Trial {
    std::vector<uint8_t> Frame;
    std::vector<size_t> StageIn; // payload bytes entering each stage
    bool Verified = false;
  };
  std::vector<std::vector<Trial>> Trials(Payloads.size(),
                                         std::vector<Trial>(Chains.size()));
  auto RunItem = [&](size_t I) {
    for (size_t C = 0; C != Chains.size(); ++C) {
      Trial &T = Trials[I][C];
      const std::vector<const Codec *> &Chain = Chains[C];
      std::vector<std::vector<uint8_t>> Inputs;
      std::vector<uint8_t> Cur = Payloads[I];
      for (const Codec *K : Chain) {
        T.StageIn.push_back(Cur.size());
        Inputs.push_back(Cur);
        Cur = K->compress(Cur);
      }
      T.Frame = std::move(Cur);
      // Verify stage by stage: a chain only qualifies if decoding its
      // frame reproduces every intermediate payload byte-exactly.
      std::vector<uint8_t> Back = T.Frame;
      T.Verified = true;
      for (size_t J = Chain.size(); J-- > 0;) {
        Result<std::vector<uint8_t>> R = Chain[J]->tryDecompress(Back);
        if (!R.ok() || R.value() != Inputs[J]) {
          T.Verified = false;
          break;
        }
        Back = R.take();
      }
    }
  };
  if (Jobs <= 1 || Payloads.size() <= 1) {
    for (size_t I = 0; I != Payloads.size(); ++I)
      RunItem(I);
  } else {
    ThreadPool Pool(Jobs);
    Pool.parallelFor(Payloads.size(), RunItem);
  }

  // ns per decompressed byte, per codec. The verify pass decompressed
  // exactly what the trial pass compressed, so the delta in compress
  // input bytes is also the delta in decompressed output bytes.
  std::vector<double> NsPerByte(Distinct.size(), 0.0);
  for (size_t K = 0; K != Distinct.size(); ++K) {
    CodecStats After = Distinct[K]->snapshot();
    uint64_t Nanos = After.DecompressNanos - Before[K].DecompressNanos;
    uint64_t Bytes = After.BytesIn - Before[K].BytesIn;
    NsPerByte[K] = static_cast<double>(Nanos) /
                   static_cast<double>(std::max<uint64_t>(Bytes, 1));
  }
  auto RateOf = [&](const Codec *K) {
    for (size_t J = 0; J != Distinct.size(); ++J)
      if (Distinct[J] == K)
        return NsPerByte[J];
    return 0.0; // unreachable: every chain codec is in Distinct
  };

  ChainSelection Sel;
  Sel.Frames.resize(Payloads.size());
  Sel.ChainIdx.resize(Payloads.size());
  for (size_t I = 0; I != Payloads.size(); ++I) {
    size_t Best = 0;
    bool Have = false;
    for (size_t C = 0; C != Chains.size(); ++C) {
      const Trial &T = Trials[I][C];
      if (!T.Verified)
        continue;
      if (DecodeBudgetNanos != 0) {
        double ModelNs = 0.0;
        for (size_t J = 0; J != Chains[C].size(); ++J)
          ModelNs += static_cast<double>(T.StageIn[J]) * RateOf(Chains[C][J]);
        if (ModelNs > static_cast<double>(DecodeBudgetNanos))
          continue;
      }
      if (!Have || T.Frame.size() < Trials[I][Best].Frame.size()) {
        Best = C;
        Have = true;
      }
    }
    // No chain qualified: fall back to the primary chain, which the
    // caller guarantees works (it is the container's global chain).
    Sel.ChainIdx[I] = static_cast<uint32_t>(Best);
    Sel.Frames[I] = std::move(Trials[I][Best].Frame);
    if (Best != 0)
      Sel.Uniform = false;
  }
  return Sel;
}

std::vector<uint8_t>
pipeline::packContainer(const std::string &ChainSpec,
                        const std::vector<std::vector<uint8_t>> &Frames) {
  ByteWriter W;
  W.writeU32(PackMagic);
  W.writeStr(ChainSpec);
  W.writeVarU(Frames.size());
  for (const std::vector<uint8_t> &F : Frames) {
    W.writeVarU(F.size());
    W.writeBytes(F);
  }
  return W.take();
}

Result<Container> pipeline::tryUnpackContainer(ByteSpan Bytes) {
  return tryDecode([&] {
    ByteReader R(Bytes);
    if (R.readU32() != PackMagic)
      decodeFail("container: bad magic");
    Container C;
    C.ChainSpec = R.readStr();
    size_t N = R.readVarU();
    if (N > Bytes.size())
      decodeFail("container: inflated frame count");
    for (size_t I = 0; I != N; ++I) {
      size_t Len = R.readVarU();
      C.Frames.push_back(R.readBytes(Len));
    }
    if (!R.atEnd())
      decodeFail("container: trailing bytes");
    return C;
  });
}

uint64_t
pipeline::hashContainerFrames(const std::string &ChainSpec,
                              const std::vector<std::vector<uint8_t>> &Frames) {
  // FNV-1a 64: simple, dependency-free, and byte-order independent of
  // the host. The length prefix keeps frame boundaries in the identity
  // (frames {"ab",""} and {"a","b"} must not collide structurally).
  constexpr uint64_t Offset = 0xcbf29ce484222325ull;
  constexpr uint64_t Prime = 0x100000001b3ull;
  uint64_t H = Offset;
  auto Fold = [&H](const uint8_t *P, size_t N) {
    for (size_t I = 0; I != N; ++I) {
      H ^= P[I];
      H *= Prime;
    }
  };
  auto FoldU64 = [&Fold](uint64_t V) {
    uint8_t B[8];
    for (int I = 0; I != 8; ++I)
      B[I] = static_cast<uint8_t>(V >> (8 * I));
    Fold(B, 8);
  };
  FoldU64(ChainSpec.size());
  Fold(reinterpret_cast<const uint8_t *>(ChainSpec.data()), ChainSpec.size());
  FoldU64(Frames.size());
  for (const std::vector<uint8_t> &F : Frames) {
    FoldU64(F.size());
    Fold(F.data(), F.size());
  }
  return mix64(H);
}

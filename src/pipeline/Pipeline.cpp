//===- pipeline/Pipeline.cpp - Parallel compression driver ----------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include "support/ByteIO.h"
#include "support/PRNG.h"
#include "support/Support.h"
#include "support/ThreadPool.h"

#include <optional>

using namespace ccomp;
using namespace ccomp::pipeline;

namespace {

constexpr uint32_t PackMagic = 0x4B504343; // "CCPK".

std::vector<uint8_t> compressOne(const std::vector<const Codec *> &Chain,
                                 const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> Cur = Payload;
  for (const Codec *C : Chain)
    Cur = C->compress(Cur);
  return Cur;
}

Result<std::vector<uint8_t>>
decompressOne(const std::vector<const Codec *> &Chain,
              const std::vector<uint8_t> &Frame) {
  std::vector<uint8_t> Cur = Frame;
  for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
    Result<std::vector<uint8_t>> R = (*It)->tryDecompress(Cur);
    if (!R.ok())
      return R;
    Cur = R.take();
  }
  return Cur;
}

} // namespace

std::vector<std::vector<uint8_t>>
pipeline::compressAll(const std::vector<const Codec *> &Chain,
                      const std::vector<std::vector<uint8_t>> &Payloads,
                      unsigned Jobs) {
  if (Chain.empty())
    reportFatal("pipeline: empty codec chain");
  std::vector<std::vector<uint8_t>> Frames(Payloads.size());
  if (Jobs <= 1 || Payloads.size() <= 1) {
    for (size_t I = 0; I != Payloads.size(); ++I)
      Frames[I] = compressOne(Chain, Payloads[I]);
    return Frames;
  }
  // Each worker writes only its own pre-sized slot, so the result is
  // byte-identical to the serial loop for any job count.
  ThreadPool Pool(Jobs);
  Pool.parallelFor(Payloads.size(), [&](size_t I) {
    Frames[I] = compressOne(Chain, Payloads[I]);
  });
  return Frames;
}

Result<std::vector<std::vector<uint8_t>>>
pipeline::tryDecompressAll(const std::vector<const Codec *> &Chain,
                           const std::vector<std::vector<uint8_t>> &Frames,
                           unsigned Jobs) {
  if (Chain.empty())
    reportFatal("pipeline: empty codec chain");
  std::vector<std::vector<uint8_t>> Payloads(Frames.size());
  std::vector<std::optional<DecodeError>> Errors(Frames.size());
  auto RunOne = [&](size_t I) {
    Result<std::vector<uint8_t>> R = decompressOne(Chain, Frames[I]);
    if (R.ok())
      Payloads[I] = R.take();
    else
      Errors[I] = R.error();
  };
  if (Jobs <= 1 || Frames.size() <= 1) {
    for (size_t I = 0; I != Frames.size(); ++I)
      RunOne(I);
  } else {
    ThreadPool Pool(Jobs);
    Pool.parallelFor(Frames.size(), RunOne);
  }
  // Report the lowest-index failure so diagnostics do not depend on
  // worker scheduling.
  for (std::optional<DecodeError> &E : Errors)
    if (E)
      return *E;
  return Payloads;
}

std::vector<uint8_t>
pipeline::packContainer(const std::string &ChainSpec,
                        const std::vector<std::vector<uint8_t>> &Frames) {
  ByteWriter W;
  W.writeU32(PackMagic);
  W.writeStr(ChainSpec);
  W.writeVarU(Frames.size());
  for (const std::vector<uint8_t> &F : Frames) {
    W.writeVarU(F.size());
    W.writeBytes(F);
  }
  return W.take();
}

Result<Container> pipeline::tryUnpackContainer(ByteSpan Bytes) {
  return tryDecode([&] {
    ByteReader R(Bytes);
    if (R.readU32() != PackMagic)
      decodeFail("container: bad magic");
    Container C;
    C.ChainSpec = R.readStr();
    size_t N = R.readVarU();
    if (N > Bytes.size())
      decodeFail("container: inflated frame count");
    for (size_t I = 0; I != N; ++I) {
      size_t Len = R.readVarU();
      C.Frames.push_back(R.readBytes(Len));
    }
    if (!R.atEnd())
      decodeFail("container: trailing bytes");
    return C;
  });
}

uint64_t
pipeline::hashContainerFrames(const std::string &ChainSpec,
                              const std::vector<std::vector<uint8_t>> &Frames) {
  // FNV-1a 64: simple, dependency-free, and byte-order independent of
  // the host. The length prefix keeps frame boundaries in the identity
  // (frames {"ab",""} and {"a","b"} must not collide structurally).
  constexpr uint64_t Offset = 0xcbf29ce484222325ull;
  constexpr uint64_t Prime = 0x100000001b3ull;
  uint64_t H = Offset;
  auto Fold = [&H](const uint8_t *P, size_t N) {
    for (size_t I = 0; I != N; ++I) {
      H ^= P[I];
      H *= Prime;
    }
  };
  auto FoldU64 = [&Fold](uint64_t V) {
    uint8_t B[8];
    for (int I = 0; I != 8; ++I)
      B[I] = static_cast<uint8_t>(V >> (8 * I));
    Fold(B, 8);
  };
  FoldU64(ChainSpec.size());
  Fold(reinterpret_cast<const uint8_t *>(ChainSpec.data()), ChainSpec.size());
  FoldU64(Frames.size());
  for (const std::vector<uint8_t> &F : Frames) {
    FoldU64(F.size());
    Fold(F.data(), F.size());
  }
  return mix64(H);
}

//===- pipeline/Codec.h - Uniform codec interface and registry --*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The uniform compressor interface that puts every compression stack in
/// the project behind one seam, in the style of the tudocomp framework:
/// a Codec maps a byte payload to a compressed frame and back, a static
/// Registry names them, and per-codec atomic counters make every call
/// measurable. Benches, tests, and the compressor tool all drive the
/// same registry instead of re-implementing per-module plumbing.
///
/// Payload contracts (what the input span must hold):
///   flate       - arbitrary bytes
///   vm-compact  - a function's fixed-width VM code (vm::encodeFunction)
///   brisc       - a canonical function image (pipeline/Payload.h)
///   wire        - a flat module container (wire::serializeModule)
///
/// Every codec's tryDecompress(compress(x)) returns x byte-identically;
/// that property is what lets chains (e.g. "brisc+flate") invert.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_PIPELINE_CODEC_H
#define CCOMP_PIPELINE_CODEC_H

#include "support/Error.h"
#include "support/Span.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ccomp {
namespace pipeline {

/// What a codec expects its input payload to be. Drives corpus/job
/// construction: per-function payloads fan out across the thread pool;
/// module payloads are one job per module.
enum class PayloadKind : uint8_t {
  Raw,       ///< Arbitrary bytes.
  FixedCode, ///< One function's fixed-width VM code.
  FuncImage, ///< One function's canonical image (name/frame/labels/code).
  Module,    ///< A flat module container.
};

/// Monotonic per-codec counters. Snapshot of the atomics in Codec.
struct CodecStats {
  uint64_t CompressCalls = 0;
  uint64_t BytesIn = 0;       ///< Payload bytes given to compress().
  uint64_t BytesOut = 0;      ///< Frame bytes produced by compress().
  uint64_t DecompressCalls = 0;
  uint64_t DecodeErrors = 0;  ///< tryDecompress() calls that failed.
  uint64_t CompressNanos = 0; ///< Wall time inside compress().
  uint64_t DecompressNanos = 0;

  friend bool operator==(const CodecStats &A, const CodecStats &B) {
    return A.CompressCalls == B.CompressCalls && A.BytesIn == B.BytesIn &&
           A.BytesOut == B.BytesOut && A.DecompressCalls == B.DecompressCalls &&
           A.DecodeErrors == B.DecodeErrors &&
           A.CompressNanos == B.CompressNanos &&
           A.DecompressNanos == B.DecompressNanos;
  }
};

/// A registered compressor. Thread-safe: compress/tryDecompress may be
/// called concurrently from pipeline workers; the stat counters are
/// atomics.
class Codec {
public:
  virtual ~Codec() = default;

  virtual const char *name() const = 0;
  virtual const char *description() const = 0;
  virtual PayloadKind payloadKind() const = 0;

  /// Compresses a payload honoring this codec's payload contract (a
  /// violated contract is a caller bug and aborts). Counts bytes and
  /// wall time.
  std::vector<uint8_t> compress(ByteSpan Payload) const;

  /// Decompresses a frame of unknown provenance back into the payload;
  /// malformed frames yield a typed error and bump the error counter.
  Result<std::vector<uint8_t>> tryDecompress(ByteSpan Frame) const;

  /// Mutually consistent snapshot of this codec's counters since process
  /// start (or the last resetStats()). The counters are independent
  /// atomics; snapshot() re-reads until two consecutive passes agree
  /// (bounded retries), so a quiescent codec always reports a consistent
  /// set. Under sustained concurrent traffic the retries can exhaust,
  /// but the write/read ordering still guarantees no "counts without
  /// bytes" tear: writers publish bytes/nanos before the release bump of
  /// the call counter, and the snapshot loads call counters first with
  /// acquire, so a pass reporting k calls has seen at least those k
  /// calls' bytes. This is what every stats output path should use.
  CodecStats snapshot() const;

  void resetStats() const;

protected:
  virtual std::vector<uint8_t> compressImpl(ByteSpan Payload) const = 0;
  virtual Result<std::vector<uint8_t>>
  tryDecompressImpl(ByteSpan Frame) const = 0;

private:
  mutable std::atomic<uint64_t> CompressCalls{0}, BytesIn{0}, BytesOut{0},
      DecompressCalls{0}, DecodeErrors{0}, CompressNanos{0},
      DecompressNanos{0};
};

/// The static codec registry. Construction registers the four built-in
/// adapters (flate, vm-compact, brisc, wire); further codecs can be
/// added at runtime.
class Registry {
public:
  static Registry &instance();

  /// Registers \p C; duplicate names are a caller bug.
  void add(std::unique_ptr<Codec> C);

  /// Finds a codec by name; null if absent.
  const Codec *find(std::string_view Name) const;

  /// All codecs in registration order.
  const std::vector<std::unique_ptr<Codec>> &all() const { return Codecs; }

private:
  Registry();
  std::vector<std::unique_ptr<Codec>> Codecs;
};

/// Parses a '+'-separated codec chain ("brisc+flate"). Every codec must
/// exist and every codec after the first must accept Raw payloads (it
/// sees the previous stage's frames). Returns the chain, or empty and
/// sets \p Error.
std::vector<const Codec *> parseChain(std::string_view Spec,
                                      std::string &Error);

} // namespace pipeline
} // namespace ccomp

#endif // CCOMP_PIPELINE_CODEC_H

//===- pipeline/BriscCtxCodec.cpp - Context-modeled instruction codec -----===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The brisc-ctx codec: a context-modeled instruction-stream coder in
/// the spirit of Hirvola's MIPS compressor. The fixed-width payload is
/// decoded to instructions, each instruction is split into four streams
/// (opcode, register, immediate, branch/call target), and every stream
/// is MTF + Huffman coded under a model conditioned on the CLASS of the
/// previous instruction (start / memory / ALU / branch / call). Opcode
/// and register locality differ sharply after a load versus after a
/// compare-and-branch, so the per-context tables buy ratio the flat
/// BRISC opcode model leaves behind.
///
/// Like vm-compact, decode reconstructs the instruction fields and
/// re-emits them through vm::encodeFunction, so the round trip is
/// byte-exact by construction.
///
/// Frame layout:
///   'C' 'X' version(1)
///   varU  InstrCount
///   20 models (5 contexts x 4 streams), each:
///     varU NumSyms; nibble-packed code lengths, (NumSyms+1)/2 bytes
///   varU  BitBytes
///   BitBytes bytes of LSB-first interleaved Huffman codes + literals
///     (op literal: 8 bits; reg literal: 4 bits; imm literal: zig-zag
///      byte groups with continuation bits; target literal: raw byte
///      groups with continuation bits)
///
//===----------------------------------------------------------------------===//

#include "pipeline/Codec.h"
#include "support/ByteIO.h"
#include "support/Huffman.h"
#include "support/MTF.h"
#include "support/Support.h"
#include "vm/Encode.h"
#include "vm/ISA.h"

#include <algorithm>
#include <memory>

using namespace ccomp;
using namespace ccomp::pipeline;
using vm::FieldKind;
using vm::Instr;
using vm::VMOp;

namespace {

constexpr uint8_t FrameMagic0 = 'C';
constexpr uint8_t FrameMagic1 = 'X';
constexpr uint8_t FrameVersion = 1;

/// Conditioning contexts: the class of the previous instruction (Start
/// before the first one).
enum Ctx : unsigned { CtxStart = 0, CtxMem, CtxAlu, CtxBranch, CtxCall };
constexpr unsigned NumCtx = 5;

/// The four per-context streams.
enum Stream : unsigned { StreamOp = 0, StreamReg, StreamImm, StreamTarget };
constexpr unsigned NumStreams = 4;
constexpr unsigned NumModels = NumCtx * NumStreams;

unsigned classOf(VMOp Op) {
  if (Op >= VMOp::LD_B && Op <= VMOp::ST_W)
    return CtxMem;
  if (Op >= VMOp::ADD && Op <= VMOp::LI)
    return CtxAlu;
  if (Op >= VMOp::BEQ && Op <= VMOp::JMP)
    return CtxBranch;
  return CtxCall; // CALL, RJR, macros, SYS.
}

unsigned modelOf(unsigned Ctx, unsigned Stream) {
  return Ctx * NumStreams + Stream;
}

uint64_t zigzag(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63);
}

int64_t unzigzag(uint64_t U) {
  return static_cast<int64_t>((U >> 1) ^ (~(U & 1) + 1));
}

/// Writes \p V as 8-bit groups, each followed by a continuation bit.
void writeVarBits(BitWriter &BW, uint64_t V) {
  do {
    BW.writeBits(static_cast<uint32_t>(V & 0xFF), 8);
    V >>= 8;
    BW.writeBits(V ? 1 : 0, 1);
  } while (V);
}

uint64_t readVarBits(BitReader &BR) {
  uint64_t V = 0;
  unsigned Shift = 0;
  for (;;) {
    V |= static_cast<uint64_t>(BR.readBits(8)) << Shift;
    if (!BR.readBit())
      return V;
    Shift += 8;
    if (Shift >= 64)
      decodeFail("brisc-ctx: literal overflows 64 bits");
  }
}

/// The MTF symbol for one field token (what the per-model tables code).
uint64_t fieldSymbol(Stream S, int64_t FieldVal) {
  return S == StreamImm ? zigzag(FieldVal)
                        : static_cast<uint64_t>(FieldVal);
}

Stream streamOf(FieldKind K) {
  switch (K) {
  case FieldKind::Reg:
    return StreamReg;
  case FieldKind::Imm:
    return StreamImm;
  case FieldKind::Label:
  case FieldKind::Func:
    return StreamTarget;
  case FieldKind::None:
    break;
  }
  ccomp_unreachable("fieldless kind has no stream");
}

void writeLiteral(BitWriter &BW, Stream S, uint64_t Sym) {
  switch (S) {
  case StreamOp:
    BW.writeBits(static_cast<uint32_t>(Sym), 8);
    return;
  case StreamReg:
    BW.writeBits(static_cast<uint32_t>(Sym), 4);
    return;
  case StreamImm:
  case StreamTarget:
    writeVarBits(BW, Sym);
    return;
  }
}

uint64_t readLiteral(BitReader &BR, Stream S) {
  switch (S) {
  case StreamOp:
    return BR.readBits(8);
  case StreamReg:
    return BR.readBits(4);
  case StreamImm:
  case StreamTarget:
    return readVarBits(BR);
  }
  ccomp_unreachable("bad stream");
}

/// Per-model MTF table caps for the decoder: ops and registers have
/// closed alphabets; immediates and targets are bounded only by the
/// generic anti-bomb cap.
size_t tableCapOf(Stream S) {
  switch (S) {
  case StreamOp:
    return 256;
  case StreamReg:
    return 16;
  case StreamImm:
  case StreamTarget:
    return MTFDecoder::DefaultMaxTable;
  }
  ccomp_unreachable("bad stream");
}

/// One (model, symbol) emission in instruction order.
struct TokenRef {
  uint8_t Model;
  uint64_t Symbol;
};

std::vector<uint8_t> encodeCtx(const std::vector<Instr> &Code) {
  // Pass 1: run the MTF models over the token sequence to learn index
  // frequencies per model.
  std::vector<TokenRef> Tokens;
  Tokens.reserve(Code.size() * 3);
  unsigned Ctx = CtxStart;
  for (const Instr &In : Code) {
    Tokens.push_back({static_cast<uint8_t>(modelOf(Ctx, StreamOp)),
                      static_cast<uint64_t>(In.Op)});
    unsigned NF = vm::numFields(In.Op);
    const FieldKind *FK = vm::fieldKinds(In.Op);
    for (unsigned Fi = 0; Fi != NF; ++Fi) {
      Stream S = streamOf(FK[Fi]);
      Tokens.push_back({static_cast<uint8_t>(modelOf(Ctx, S)),
                        fieldSymbol(S, vm::getField(In, Fi))});
    }
    Ctx = classOf(In.Op);
  }

  MTFEncoder Learn[NumModels];
  std::vector<uint64_t> Freqs[NumModels];
  for (const TokenRef &T : Tokens) {
    uint32_t Idx = Learn[T.Model].encode(T.Symbol).Index;
    std::vector<uint64_t> &F = Freqs[T.Model];
    if (Idx >= F.size())
      F.resize(Idx + 1, 0);
    ++F[Idx];
  }

  std::vector<uint8_t> Lens[NumModels];
  std::unique_ptr<HuffmanCode> Codes[NumModels];
  for (unsigned M = 0; M != NumModels; ++M) {
    if (Freqs[M].empty())
      continue;
    Lens[M] = buildHuffmanLengths(Freqs[M], 15);
    Codes[M] = std::make_unique<HuffmanCode>(Lens[M]);
  }

  ByteWriter W;
  W.writeU8(FrameMagic0);
  W.writeU8(FrameMagic1);
  W.writeU8(FrameVersion);
  W.writeVarU(Code.size());
  for (unsigned M = 0; M != NumModels; ++M) {
    W.writeVarU(Lens[M].size());
    for (size_t I = 0; I < Lens[M].size(); I += 2) {
      uint8_t Packed = Lens[M][I];
      if (I + 1 < Lens[M].size())
        Packed = static_cast<uint8_t>(Packed | (Lens[M][I + 1] << 4));
      W.writeU8(Packed);
    }
  }

  // Pass 2: fresh MTF state, identical token sequence, emit the bits.
  MTFEncoder Emit[NumModels];
  BitWriter BW;
  for (const TokenRef &T : Tokens) {
    MTFToken Tok = Emit[T.Model].encode(T.Symbol);
    Codes[T.Model]->encode(BW, Tok.Index);
    if (Tok.Index == 0)
      writeLiteral(BW, static_cast<Stream>(T.Model % NumStreams), T.Symbol);
  }
  std::vector<uint8_t> Bits = BW.finish();
  W.writeVarU(Bits.size());
  W.writeBytes(Bits);
  return W.take();
}

std::vector<Instr> decodeCtxOrThrow(ByteSpan Frame) {
  ByteReader R(Frame);
  if (R.readU8() != FrameMagic0 || R.readU8() != FrameMagic1)
    decodeFail("brisc-ctx: bad magic");
  if (R.readU8() != FrameVersion)
    decodeFail("brisc-ctx: unsupported version");
  uint64_t InstrCount = R.readVarU();

  std::unique_ptr<HuffmanCode> Codes[NumModels];
  for (unsigned M = 0; M != NumModels; ++M) {
    uint64_t NumSyms = R.readVarU();
    if (NumSyms == 0)
      continue;
    if (NumSyms > (uint64_t(1) << 20))
      decodeFail("brisc-ctx: inflated model alphabet");
    std::vector<uint8_t> Packed = R.readBytes((NumSyms + 1) / 2);
    std::vector<uint8_t> Lens(NumSyms);
    for (size_t I = 0; I != Lens.size(); ++I)
      Lens[I] = static_cast<uint8_t>(I % 2 ? Packed[I / 2] >> 4
                                           : Packed[I / 2] & 15);
    if (!HuffmanCode::isValidLengthSet(Lens))
      decodeFail("brisc-ctx: oversubscribed Huffman lengths");
    Codes[M] = std::make_unique<HuffmanCode>(std::move(Lens));
  }

  uint64_t BitBytes = R.readVarU();
  std::vector<uint8_t> Bits = R.readBytes(BitBytes);
  if (!R.atEnd())
    decodeFail("brisc-ctx: trailing bytes");
  // Every instruction consumes at least its opcode token's bit.
  if (InstrCount > Bits.size() * 8)
    decodeFail("brisc-ctx: inflated instruction count");

  std::unique_ptr<MTFDecoder> Dec[NumModels];
  for (unsigned M = 0; M != NumModels; ++M)
    Dec[M] = std::make_unique<MTFDecoder>(
        tableCapOf(static_cast<Stream>(M % NumStreams)));

  BitReader BR(Bits);
  auto Token = [&](unsigned M) -> uint64_t {
    if (!Codes[M])
      decodeFail("brisc-ctx: token from an empty model");
    unsigned Idx = Codes[M]->decode(BR);
    if (Idx == 0)
      return Dec[M]->decode(
          0, readLiteral(BR, static_cast<Stream>(M % NumStreams)));
    return Dec[M]->decode(Idx, 0);
  };

  std::vector<Instr> Out;
  // Reserve only what the bit budget could really hold (never the raw
  // claimed count): the loop throws on bit exhaustion long before a
  // lying InstrCount could force the vector to that size.
  Out.reserve(std::min<uint64_t>(InstrCount, Bits.size()));
  unsigned Ctx = CtxStart;
  for (uint64_t I = 0; I != InstrCount; ++I) {
    uint64_t OpSym = Token(modelOf(Ctx, StreamOp));
    if (OpSym >= static_cast<uint64_t>(VMOp::NumOps))
      decodeFail("brisc-ctx: bad opcode");
    Instr In;
    In.Op = static_cast<VMOp>(OpSym);
    unsigned NF = vm::numFields(In.Op);
    const FieldKind *FK = vm::fieldKinds(In.Op);
    for (unsigned Fi = 0; Fi != NF; ++Fi) {
      Stream S = streamOf(FK[Fi]);
      uint64_t Sym = Token(modelOf(Ctx, S));
      int64_t Val = S == StreamImm ? unzigzag(Sym)
                                   : static_cast<int64_t>(Sym);
      vm::setField(In, Fi, Val);
    }
    Out.push_back(In);
    Ctx = classOf(In.Op);
  }
  if (!BR.nearEnd())
    decodeFail("brisc-ctx: trailing bits");
  return Out;
}

/// The Codec adapter: fixed-width VM code in, context-coded frame out,
/// mirroring VMCompactCodec's contract (a payload that is not valid
/// fixed-width code is a fatal caller bug; a corrupt frame is a typed
/// DecodeError).
class BriscCtxCodec final : public Codec {
public:
  const char *name() const override { return "brisc-ctx"; }
  const char *description() const override {
    return "context-modeled instruction streams: per-previous-class "
           "MTF+Huffman over split opcode/register/operand streams";
  }
  PayloadKind payloadKind() const override { return PayloadKind::FixedCode; }

protected:
  std::vector<uint8_t> compressImpl(ByteSpan Payload) const override {
    Result<std::vector<Instr>> Code = vm::tryDecodeFunction(Payload);
    if (!Code.ok())
      reportFatal("brisc-ctx: payload is not fixed-width VM code: " +
                  Code.error().message());
    return encodeCtx(Code.value());
  }
  Result<std::vector<uint8_t>> tryDecompressImpl(ByteSpan F) const override {
    return tryDecode([&]() -> std::vector<uint8_t> {
      vm::VMFunction Fn;
      Fn.Code = decodeCtxOrThrow(F);
      return vm::encodeFunction(Fn);
    });
  }
};

} // namespace

namespace ccomp {
namespace pipeline {

std::unique_ptr<Codec> createBriscCtxCodec() {
  return std::make_unique<BriscCtxCodec>();
}

} // namespace pipeline
} // namespace ccomp

//===- net/FrameServer.cpp - Multi-threaded TCP frame server --------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/FrameServer.h"

#include "net/Message.h"
#include "pipeline/Pipeline.h"

using namespace ccomp;
using namespace ccomp::net;
using namespace ccomp::store;

/// Per-connection state. The handler thread owns Sock's IO; stop()
/// only ever calls shutdownBoth() under SockMu to evict it, and the
/// descriptor is closed by the handler on exit (so a server that
/// churns thousands of connections never accumulates descriptors).
struct FrameServer::Conn {
  uint64_t Id = 0;
  Socket Sock;
  std::mutex SockMu; ///< Serializes shutdown/close against each other.
  std::atomic<bool> Open{true};
  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> Batches{0};
  std::atomic<uint64_t> FramesServed{0};
  std::atomic<uint64_t> BytesIn{0};
  std::atomic<uint64_t> BytesOut{0};
  std::atomic<uint64_t> FetchErrors{0};
  std::atomic<uint64_t> ProtocolErrors{0};
};

namespace {

/// Outcome of reading one length-prefixed message.
enum class RecvOutcome { Ok, Closed, TimedOut, Oversized, Error };

/// Reads one framed message payload (length prefix stripped). The
/// length prefix is validated against MaxMessageBytes *before* any
/// allocation.
RecvOutcome recvMessage(Socket &S, std::vector<uint8_t> &Payload,
                        unsigned FirstByteTimeoutMillis,
                        unsigned IoTimeoutMillis, uint64_t &BytesIn,
                        std::string &Err) {
  uint8_t Prefix[LengthPrefixBytes];
  IoStatus St = S.recvAll(Prefix, sizeof(Prefix), FirstByteTimeoutMillis, Err);
  if (St != IoStatus::Ok)
    return St == IoStatus::Closed    ? RecvOutcome::Closed
           : St == IoStatus::TimedOut ? RecvOutcome::TimedOut
                                      : RecvOutcome::Error;
  uint32_t Len = static_cast<uint32_t>(Prefix[0]) |
                 (static_cast<uint32_t>(Prefix[1]) << 8) |
                 (static_cast<uint32_t>(Prefix[2]) << 16) |
                 (static_cast<uint32_t>(Prefix[3]) << 24);
  if (Len == 0 || Len > MaxMessageBytes) {
    Err = "net: message length " + std::to_string(Len) +
          " outside (0, " + std::to_string(MaxMessageBytes) + "]";
    return RecvOutcome::Oversized;
  }
  Payload.resize(Len);
  St = S.recvAll(Payload.data(), Len, IoTimeoutMillis, Err);
  if (St != IoStatus::Ok)
    return St == IoStatus::Closed    ? RecvOutcome::Closed
           : St == IoStatus::TimedOut ? RecvOutcome::TimedOut
                                      : RecvOutcome::Error;
  BytesIn += LengthPrefixBytes + Len;
  return RecvOutcome::Ok;
}

} // namespace

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

Result<std::unique_ptr<FrameServer>>
FrameServer::start(std::unique_ptr<store::FrameSource> SrcIn,
                   ServerOptions Opts) {
  std::unique_ptr<FrameServer> S(new FrameServer());
  S->Src = std::move(SrcIn);
  S->Opts = Opts;

  // The handshake advertises the container's content identity. Sources
  // that can hash themselves (in-memory) answer directly; for the rest
  // (on-demand files) every frame is fetched once at startup — the
  // price of never advertising a hash the bytes don't back.
  if (!S->Src->contentHash(S->Hash)) {
    std::vector<std::vector<uint8_t>> Frames;
    uint32_t N = S->Src->functionFrameCount();
    Frames.reserve(N);
    for (uint32_t I = 0; I != N; ++I) {
      FetchResult R = S->Src->fetchFrame(I);
      if (!R.Ok)
        return DecodeError("frame server: cannot hash the container: "
                           "frame " +
                           std::to_string(I) + " unavailable [" +
                           fetchErrorKindName(R.Err) + "]: " + R.Msg);
      Frames.push_back(std::move(R.Bytes));
    }
    S->Hash = pipeline::hashContainerFrames(S->Src->chainSpec(), Frames);
  }

  Result<Listener> L =
      Listener::listenOn(Opts.BindAddress, Opts.Port, /*Backlog=*/512);
  if (!L.ok())
    return L.error();
  S->Listen = L.take();
  S->Acceptor = std::thread([Raw = S.get()] { Raw->acceptLoop(); });
  return S;
}

FrameServer::~FrameServer() { stop(); }

void FrameServer::stop() {
  bool Expected = false;
  if (!Stopping.compare_exchange_strong(Expected, true)) {
    // Another stop() ran or is running; still wait for the threads so
    // every caller returns to a quiesced server.
    if (Acceptor.joinable())
      Acceptor.join();
    std::unique_lock<std::mutex> Lk(ConnMu);
    HandlersDone.wait(Lk, [&] { return ActiveHandlers == 0; });
    return;
  }
  Listen.close(); // Unblocks the accept poll.
  if (Acceptor.joinable())
    Acceptor.join();
  std::unique_lock<std::mutex> Lk(ConnMu);
  for (const std::shared_ptr<Conn> &C : Conns)
    if (C->Open.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> SL(C->SockMu);
      C->Sock.shutdownBoth(); // Kicks the handler out of its poll.
    }
  HandlersDone.wait(Lk, [&] { return ActiveHandlers == 0; });
}

//===----------------------------------------------------------------------===//
// Accept loop
//===----------------------------------------------------------------------===//

void FrameServer::acceptLoop() {
  uint64_t NextId = 1;
  while (!Stopping.load(std::memory_order_relaxed)) {
    std::string Err;
    Socket S = Listen.accept(/*TimeoutMillis=*/100, Err);
    if (!S.valid())
      continue; // Timeout, shutdown, or a transient accept error.
    Agg.Accepted.fetch_add(1, std::memory_order_relaxed);

    auto C = std::make_shared<Conn>();
    C->Id = NextId++;
    C->Sock = std::move(S);
    {
      std::lock_guard<std::mutex> Lk(ConnMu);
      unsigned OpenNow = 0;
      for (const std::shared_ptr<Conn> &E : Conns)
        if (E->Open.load(std::memory_order_relaxed))
          ++OpenNow;
      if (OpenNow >= Opts.MaxConnections) {
        Agg.Rejected.fetch_add(1, std::memory_order_relaxed);
        continue; // C (and its socket) die here: connection refused.
      }
      Conns.push_back(C);
      ++ActiveHandlers;
    }
    std::thread([this, C] { serveConnection(C); }).detach();
  }
}

//===----------------------------------------------------------------------===//
// Per-connection service
//===----------------------------------------------------------------------===//

bool FrameServer::sendOn(Conn &C, const std::vector<uint8_t> &Msg) {
  std::string Err;
  IoStatus St = C.Sock.sendAll(Msg.data(), Msg.size(), Opts.IoTimeoutMillis,
                               Err);
  if (St != IoStatus::Ok)
    return false;
  C.BytesOut.fetch_add(Msg.size(), std::memory_order_relaxed);
  Agg.BytesOut.fetch_add(Msg.size(), std::memory_order_relaxed);
  return true;
}

store::FetchResult FrameServer::fetchFor(uint32_t Id) {
  return Id == ManifestFrameId ? Src->fetchManifest() : Src->fetchFrame(Id);
}

/// Serves one parsed request message. Returns false when the
/// connection must close (protocol violation or a dead socket).
bool FrameServer::handleMessage(Conn &C, const std::vector<uint8_t> &Payload) {
  Result<Message> MR = tryParseMessage(Payload);
  if (!MR.ok()) {
    C.ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
    Agg.ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
    (void)sendOn(C, encodeErrorReply(ManifestFrameId, FetchErrorKind::Corrupt,
                                     "protocol: " + MR.error().message()));
    return false; // Framing can't be trusted past a malformed body.
  }
  Message &M = MR.value();
  switch (M.Type) {
  case MsgType::GetFrame: {
    C.Requests.fetch_add(1, std::memory_order_relaxed);
    Agg.Requests.fetch_add(1, std::memory_order_relaxed);
    FetchResult R = fetchFor(M.Id);
    if (!R.Ok) {
      C.FetchErrors.fetch_add(1, std::memory_order_relaxed);
      Agg.FetchErrors.fetch_add(1, std::memory_order_relaxed);
      return sendOn(C, encodeErrorReply(M.Id, R.Err, R.Msg));
    }
    C.FramesServed.fetch_add(1, std::memory_order_relaxed);
    Agg.FramesServed.fetch_add(1, std::memory_order_relaxed);
    return sendOn(C, encodeFrameData(M.Id, R.Bytes));
  }
  case MsgType::GetBatch: {
    C.Requests.fetch_add(1, std::memory_order_relaxed);
    Agg.Requests.fetch_add(1, std::memory_order_relaxed);
    C.Batches.fetch_add(1, std::memory_order_relaxed);
    Agg.Batches.fetch_add(1, std::memory_order_relaxed);
    if (M.Ids.size() > Opts.MaxBatchIds) {
      C.ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      Agg.ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      (void)sendOn(C,
                   encodeErrorReply(ManifestFrameId, FetchErrorKind::Corrupt,
                                    "protocol: batch of " +
                                        std::to_string(M.Ids.size()) +
                                        " ids exceeds the server cap of " +
                                        std::to_string(Opts.MaxBatchIds)));
      return false;
    }
    std::vector<BatchEntry> Entries;
    Entries.reserve(M.Ids.size());
    // One reply message serves the whole batch, but the reply must stay
    // under MaxMessageBytes or the client would reject it: frames past
    // the budget fail soft and the client fetches them singly.
    size_t Budget = MaxMessageBytes / 2;
    for (uint32_t Id : M.Ids) {
      BatchEntry E;
      E.Id = Id;
      FetchResult R = fetchFor(Id);
      if (R.Ok && R.Bytes.size() <= Budget) {
        E.Ok = true;
        Budget -= R.Bytes.size();
        E.Bytes = std::move(R.Bytes);
        C.FramesServed.fetch_add(1, std::memory_order_relaxed);
        Agg.FramesServed.fetch_add(1, std::memory_order_relaxed);
      } else if (R.Ok) {
        E.Err = FetchErrorKind::Io;
        E.Msg = "batch reply budget exhausted; fetch singly";
        C.FetchErrors.fetch_add(1, std::memory_order_relaxed);
        Agg.FetchErrors.fetch_add(1, std::memory_order_relaxed);
      } else {
        E.Err = R.Err;
        E.Msg = std::move(R.Msg);
        C.FetchErrors.fetch_add(1, std::memory_order_relaxed);
        Agg.FetchErrors.fetch_add(1, std::memory_order_relaxed);
      }
      Entries.push_back(std::move(E));
    }
    return sendOn(C, encodeBatchData(Entries));
  }
  case MsgType::Hello:
    // A second Hello mid-session is harmless; re-welcome (a client
    // library reconnect path may resend it).
    return sendOn(C, encodeWelcome(Hash, Src->chainSpec(),
                                   Src->functionFrameCount(),
                                   Src->frameBytes()));
  default:
    C.ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
    Agg.ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
    (void)sendOn(C, encodeErrorReply(ManifestFrameId, FetchErrorKind::Corrupt,
                                     "protocol: unexpected message type on "
                                     "the server side"));
    return false;
  }
}

void FrameServer::serveConnection(std::shared_ptr<Conn> C) {
  // The handshake: the first message must be Hello.
  std::vector<uint8_t> Payload;
  std::string Err;
  uint64_t In = 0;
  RecvOutcome RO = recvMessage(C->Sock, Payload, Opts.IdleTimeoutMillis,
                               Opts.IoTimeoutMillis, In, Err);
  bool Live = false;
  if (RO == RecvOutcome::Ok) {
    C->BytesIn.fetch_add(In, std::memory_order_relaxed);
    Agg.BytesIn.fetch_add(In, std::memory_order_relaxed);
    Result<Message> MR = tryParseMessage(Payload);
    if (MR.ok() && MR.value().Type == MsgType::Hello) {
      Live = sendOn(*C, encodeWelcome(Hash, Src->chainSpec(),
                                      Src->functionFrameCount(),
                                      Src->frameBytes()));
    } else {
      C->ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      Agg.ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      (void)sendOn(*C,
                   encodeErrorReply(ManifestFrameId, FetchErrorKind::Corrupt,
                                    MR.ok() ? std::string(
                                                  "protocol: expected Hello")
                                            : "protocol: " +
                                                  MR.error().message()));
    }
  } else if (RO == RecvOutcome::Oversized) {
    C->ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
    Agg.ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
    (void)sendOn(*C, encodeErrorReply(ManifestFrameId,
                                      FetchErrorKind::Corrupt, Err));
  }

  while (Live && !Stopping.load(std::memory_order_relaxed)) {
    In = 0;
    RO = recvMessage(C->Sock, Payload, Opts.IdleTimeoutMillis,
                     Opts.IoTimeoutMillis, In, Err);
    if (RO != RecvOutcome::Ok) {
      if (RO == RecvOutcome::Oversized) {
        C->ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
        Agg.ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
        (void)sendOn(*C, encodeErrorReply(ManifestFrameId,
                                          FetchErrorKind::Corrupt, Err));
      }
      break; // Closed / idle timeout / dead socket: connection over.
    }
    C->BytesIn.fetch_add(In, std::memory_order_relaxed);
    Agg.BytesIn.fetch_add(In, std::memory_order_relaxed);
    Live = handleMessage(*C, Payload);
  }

  {
    std::lock_guard<std::mutex> SL(C->SockMu);
    C->Sock.close();
  }
  C->Open.store(false, std::memory_order_relaxed);
  {
    // Notify under the mutex: stop() may destroy this server the
    // instant its predicate holds, so the condvar must not be touched
    // after the lock is released.
    std::lock_guard<std::mutex> Lk(ConnMu);
    --ActiveHandlers;
    HandlersDone.notify_all();
  }
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

ServerStats FrameServer::stats() const {
  ServerStats S;
  S.Accepted = Agg.Accepted.load(std::memory_order_relaxed);
  S.Rejected = Agg.Rejected.load(std::memory_order_relaxed);
  S.Requests = Agg.Requests.load(std::memory_order_relaxed);
  S.Batches = Agg.Batches.load(std::memory_order_relaxed);
  S.FramesServed = Agg.FramesServed.load(std::memory_order_relaxed);
  S.BytesIn = Agg.BytesIn.load(std::memory_order_relaxed);
  S.BytesOut = Agg.BytesOut.load(std::memory_order_relaxed);
  S.FetchErrors = Agg.FetchErrors.load(std::memory_order_relaxed);
  S.ProtocolErrors = Agg.ProtocolErrors.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lk(ConnMu);
  for (const std::shared_ptr<Conn> &C : Conns)
    if (C->Open.load(std::memory_order_relaxed))
      ++S.OpenConnections;
  return S;
}

std::vector<ConnectionStats> FrameServer::connectionStats() const {
  std::lock_guard<std::mutex> Lk(ConnMu);
  std::vector<ConnectionStats> Out;
  Out.reserve(Conns.size());
  for (const std::shared_ptr<Conn> &C : Conns) {
    ConnectionStats S;
    S.Id = C->Id;
    S.Open = C->Open.load(std::memory_order_relaxed);
    S.Requests = C->Requests.load(std::memory_order_relaxed);
    S.Batches = C->Batches.load(std::memory_order_relaxed);
    S.FramesServed = C->FramesServed.load(std::memory_order_relaxed);
    S.BytesIn = C->BytesIn.load(std::memory_order_relaxed);
    S.BytesOut = C->BytesOut.load(std::memory_order_relaxed);
    S.FetchErrors = C->FetchErrors.load(std::memory_order_relaxed);
    S.ProtocolErrors = C->ProtocolErrors.load(std::memory_order_relaxed);
    Out.push_back(S);
  }
  return Out;
}

//===- net/FrameServer.h - Multi-threaded TCP frame server -----*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving side of the CCPK frame protocol (net/Message.h): a
/// FrameServer owns a loaded container — any store::FrameSource, so the
/// same server fronts an in-memory module, an on-disk .ccpk, or
/// whatever else implements the seam — and serves its compressed frames
/// to any number of concurrent TCP clients. One accept thread hands
/// each connection to its own handler thread; handlers run the
/// handshake (Hello -> Welcome carrying the container's manifest-v3
/// content hash), then answer GetFrame and GetBatch until the peer
/// leaves. A batch is one request message and one reply message however
/// many frames it names — the round-trip economics the client's
/// prefetch coalescing banks on.
///
/// Failure discipline mirrors the rest of the fetch stack: a frame the
/// source cannot produce becomes a typed ErrorReply (the
/// FetchErrorKind crosses the wire intact) and the connection lives
/// on; a *protocol* violation — bad magic, unknown type, malformed
/// body, an oversized length prefix — is answered with a Corrupt
/// ErrorReply when possible and the connection is closed, because the
/// framing can no longer be trusted. Nothing a client sends can make
/// the server allocate beyond MaxMessageBytes, abort, or hang: every
/// socket operation is deadline-bounded and stop() evicts every live
/// connection before returning.
///
/// Counters come in two ranks: aggregate ServerStats for the whole
/// process, and per-connection ConnectionStats (requests, batches,
/// frames, bytes, errors) so a load harness can see the skew across
/// hundreds of clients.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_NET_FRAMESERVER_H
#define CCOMP_NET_FRAMESERVER_H

#include "net/Socket.h"
#include "store/FrameSource.h"
#include "support/Error.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ccomp {
namespace net {

struct ServerOptions {
  std::string BindAddress = "127.0.0.1";
  uint16_t Port = 0; ///< 0 picks an ephemeral port (see port()).
  /// Deadline for each send/recv once a message has started moving.
  unsigned IoTimeoutMillis = 10'000;
  /// How long a connection may sit idle between requests.
  unsigned IdleTimeoutMillis = 60'000;
  /// Most ids one GetBatch may name; beyond this is a protocol error.
  size_t MaxBatchIds = 1u << 16;
  /// Open-connection cap; excess accepts are closed immediately.
  unsigned MaxConnections = 4096;
};

/// One connection's lifetime counters (a snapshot; the connection may
/// still be live).
struct ConnectionStats {
  uint64_t Id = 0;
  bool Open = false;
  uint64_t Requests = 0;     ///< GetFrame + GetBatch messages.
  uint64_t Batches = 0;      ///< GetBatch messages alone.
  uint64_t FramesServed = 0; ///< Frames delivered (batch entries count each).
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;
  uint64_t FetchErrors = 0;    ///< Typed ErrorReply / failed batch entries.
  uint64_t ProtocolErrors = 0; ///< Malformed traffic (connection dropped).
};

/// Aggregate counters across every connection, live or closed.
struct ServerStats {
  uint64_t Accepted = 0;
  uint64_t OpenConnections = 0; ///< Gauge.
  uint64_t Rejected = 0;        ///< Closed at accept (connection cap).
  uint64_t Requests = 0;        ///< GetFrame + GetBatch messages (round trips).
  uint64_t Batches = 0;
  uint64_t FramesServed = 0;
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;
  uint64_t FetchErrors = 0;
  uint64_t ProtocolErrors = 0;
};

/// Serves one container's frames over TCP. Thread-safe throughout;
/// stop() (or destruction) evicts every connection and joins every
/// thread — a FrameServer can never outlive its threads.
class FrameServer {
public:
  /// Binds, computes the container's content hash (from the source
  /// directly when it can be hashed, else by fetching every frame once
  /// — a one-time startup scan), and starts accepting. Fails typed if
  /// the bind fails or the source cannot produce its frames.
  static Result<std::unique_ptr<FrameServer>>
  start(std::unique_ptr<store::FrameSource> Src, ServerOptions Opts);

  ~FrameServer();

  uint16_t port() const { return Listen.port(); }
  const std::string &address() const { return Listen.address(); }
  /// The hash the handshake advertises (manifest-v3 content hash).
  uint64_t contentHash() const { return Hash; }
  const store::FrameSource &source() const { return *Src; }

  ServerStats stats() const;
  /// Every connection ever accepted (closed ones keep their counters).
  std::vector<ConnectionStats> connectionStats() const;

  /// Stops accepting, evicts live connections (their in-flight requests
  /// fail with a socket close on the client, which maps to a transient
  /// typed error there), and joins every thread. Idempotent.
  void stop();

private:
  struct Conn;

  FrameServer() = default;
  void acceptLoop();
  void serveConnection(std::shared_ptr<Conn> C);
  bool handleMessage(Conn &C, const std::vector<uint8_t> &Payload);
  store::FetchResult fetchFor(uint32_t Id);
  bool sendOn(Conn &C, const std::vector<uint8_t> &Msg);

  std::unique_ptr<store::FrameSource> Src;
  ServerOptions Opts;
  Listener Listen;
  uint64_t Hash = 0;

  std::thread Acceptor;
  std::atomic<bool> Stopping{false};

  mutable std::mutex ConnMu; ///< Guards Conns and the handler count.
  std::vector<std::shared_ptr<Conn>> Conns;
  unsigned ActiveHandlers = 0;
  std::condition_variable HandlersDone;

  struct Aggregate {
    std::atomic<uint64_t> Accepted{0};
    std::atomic<uint64_t> Rejected{0};
    std::atomic<uint64_t> Requests{0};
    std::atomic<uint64_t> Batches{0};
    std::atomic<uint64_t> FramesServed{0};
    std::atomic<uint64_t> BytesIn{0};
    std::atomic<uint64_t> BytesOut{0};
    std::atomic<uint64_t> FetchErrors{0};
    std::atomic<uint64_t> ProtocolErrors{0};
  };
  mutable Aggregate Agg;
};

} // namespace net
} // namespace ccomp

#endif // CCOMP_NET_FRAMESERVER_H

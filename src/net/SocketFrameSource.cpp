//===- net/SocketFrameSource.cpp - FrameSource over real TCP --------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/SocketFrameSource.h"

#include <algorithm>
#include <chrono>

using namespace ccomp;
using namespace ccomp::net;
using namespace ccomp::store;

namespace {

enum class RecvOutcome : uint8_t { Ok, Closed, TimedOut, Oversized, Error };

/// Reads one length-prefixed message payload (prefix stripped) within
/// one IO deadline. Mirrors the server's receive loop: the length is
/// validated against MaxMessageBytes *before* any allocation.
RecvOutcome recvPayload(Socket &S, std::vector<uint8_t> &Payload,
                        unsigned TimeoutMillis, uint64_t &BytesIn,
                        std::string &Err) {
  uint8_t Prefix[LengthPrefixBytes];
  IoStatus St = S.recvAll(Prefix, sizeof(Prefix), TimeoutMillis, Err);
  if (St != IoStatus::Ok)
    return St == IoStatus::Closed    ? RecvOutcome::Closed
           : St == IoStatus::TimedOut ? RecvOutcome::TimedOut
                                      : RecvOutcome::Error;
  uint32_t Len = static_cast<uint32_t>(Prefix[0]) |
                 (static_cast<uint32_t>(Prefix[1]) << 8) |
                 (static_cast<uint32_t>(Prefix[2]) << 16) |
                 (static_cast<uint32_t>(Prefix[3]) << 24);
  if (Len == 0 || Len > MaxMessageBytes) {
    Err = "net: reply length prefix " + std::to_string(Len) +
          " outside (0, " + std::to_string(MaxMessageBytes) + "]";
    return RecvOutcome::Oversized;
  }
  Payload.resize(Len);
  St = S.recvAll(Payload.data(), Len, TimeoutMillis, Err);
  if (St != IoStatus::Ok)
    return St == IoStatus::Closed    ? RecvOutcome::Closed
           : St == IoStatus::TimedOut ? RecvOutcome::TimedOut
                                      : RecvOutcome::Error;
  BytesIn += LengthPrefixBytes + Len;
  return RecvOutcome::Ok;
}

double elapsedSeconds(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

SocketFrameSource::~SocketFrameSource() = default;

Result<std::unique_ptr<SocketFrameSource>>
SocketFrameSource::connect(SocketOptions Opts) {
  std::unique_ptr<SocketFrameSource> Src(
      new SocketFrameSource(std::move(Opts)));
  Result<Socket> First = Src->dial(/*FirstHandshake=*/true);
  if (!First)
    return First.error();
  Src->checkin(First.take());
  return Src;
}

Result<Socket> SocketFrameSource::dial(bool FirstHandshake) {
  Result<Socket> SR =
      Socket::connectTo(Opts.Host, Opts.Port, Opts.ConnectTimeoutMillis);
  if (!SR)
    return SR.error();
  Socket S = SR.take();
  Cnt.Dials.fetch_add(1, std::memory_order_relaxed);

  std::vector<uint8_t> Hello = encodeHello();
  std::string Err;
  if (S.sendAll(Hello.data(), Hello.size(), Opts.IoTimeoutMillis, Err) !=
      IoStatus::Ok)
    return DecodeError("net: handshake send failed: " + Err);
  Cnt.BytesSent.fetch_add(Hello.size(), std::memory_order_relaxed);

  std::vector<uint8_t> Payload;
  uint64_t BytesIn = 0;
  if (recvPayload(S, Payload, Opts.IoTimeoutMillis, BytesIn, Err) !=
      RecvOutcome::Ok)
    return DecodeError("net: handshake receive failed: " +
                       (Err.empty() ? std::string("malformed reply") : Err));
  Cnt.BytesReceived.fetch_add(BytesIn, std::memory_order_relaxed);

  Result<Message> MR = tryParseMessage(ByteSpan(Payload));
  if (!MR)
    return MR.error();
  Message &W = MR.value();
  if (W.Type != MsgType::Welcome)
    return DecodeError("net: expected Welcome, got message type " +
                       std::to_string(static_cast<unsigned>(W.Type)));

  if (FirstHandshake) {
    Hash = W.ContentHash;
    Spec = W.ChainSpec;
    FrameCount = W.FrameCount;
    TotalFrameBytes = W.FrameBytes;
  } else if (W.ContentHash != Hash) {
    // The server now serves a different container than the one this
    // source handshook with; every cached identity fact (hash, census,
    // staged frames) would be a lie. Refuse the connection.
    return DecodeError("net: server container changed across redial "
                       "(content hash mismatch)");
  }
  return S;
}

Result<Socket> SocketFrameSource::checkout() {
  {
    std::lock_guard<std::mutex> L(PoolMu);
    if (!Pool.empty()) {
      Socket S = std::move(Pool.back());
      Pool.pop_back();
      return S;
    }
  }
  return dial(/*FirstHandshake=*/false);
}

void SocketFrameSource::checkin(Socket S) {
  std::lock_guard<std::mutex> L(PoolMu);
  if (Pool.size() < Opts.MaxPooledConnections)
    Pool.push_back(std::move(S));
  // Else: S closes on destruction; the pool stays bounded.
}

bool SocketFrameSource::exchange(const std::vector<uint8_t> &Request,
                                 Message &Reply, store::FetchResult &Fail) {
  Result<Socket> SR = checkout();
  if (!SR) {
    // Dial failures are treated transient (Timeout): the server may be
    // restarting, and the retry deadline bounds how long we care.
    Cnt.TransportErrors.fetch_add(1, std::memory_order_relaxed);
    Fail = FetchResult::failure(FetchErrorKind::Timeout,
                                "net: dial failed: " + SR.error().message());
    return false;
  }
  Socket S = SR.take();
  Cnt.RoundTrips.fetch_add(1, std::memory_order_relaxed);

  std::string Err;
  IoStatus St =
      S.sendAll(Request.data(), Request.size(), Opts.IoTimeoutMillis, Err);
  if (St != IoStatus::Ok) {
    Cnt.TransportErrors.fetch_add(1, std::memory_order_relaxed);
    Fail = FetchResult::failure(St == IoStatus::TimedOut
                                    ? FetchErrorKind::Timeout
                                : St == IoStatus::Closed
                                    ? FetchErrorKind::ShortRead
                                    : FetchErrorKind::Io,
                                "net: request send failed: " + Err);
    return false; // Connection dropped (S closes here).
  }
  Cnt.BytesSent.fetch_add(Request.size(), std::memory_order_relaxed);

  std::vector<uint8_t> Payload;
  uint64_t BytesIn = 0;
  RecvOutcome RO =
      recvPayload(S, Payload, Opts.IoTimeoutMillis, BytesIn, Err);
  if (RO != RecvOutcome::Ok) {
    Cnt.TransportErrors.fetch_add(1, std::memory_order_relaxed);
    FetchErrorKind K = RO == RecvOutcome::TimedOut ? FetchErrorKind::Timeout
                       : RO == RecvOutcome::Closed ? FetchErrorKind::ShortRead
                       : RO == RecvOutcome::Oversized
                           ? FetchErrorKind::Corrupt
                           : FetchErrorKind::Io;
    Fail = FetchResult::failure(K, "net: reply receive failed: " + Err);
    return false;
  }
  Cnt.BytesReceived.fetch_add(BytesIn, std::memory_order_relaxed);

  Result<Message> MR = tryParseMessage(ByteSpan(Payload));
  if (!MR) {
    Cnt.TransportErrors.fetch_add(1, std::memory_order_relaxed);
    Fail = FetchResult::failure(FetchErrorKind::Corrupt,
                                "net: malformed reply: " +
                                    MR.error().message());
    return false; // Framing no longer trusted; drop the connection.
  }
  Reply = MR.take();

  if (Reply.Type == MsgType::ErrorReply) {
    // A typed failure, but a healthy stream: the kind crosses the wire
    // intact and the connection goes back to the pool.
    Cnt.TransportErrors.fetch_add(1, std::memory_order_relaxed);
    Fail = FetchResult::failure(Reply.Err, Reply.Msg);
    checkin(std::move(S));
    return false;
  }
  checkin(std::move(S));
  return true;
}

store::FetchResult SocketFrameSource::fetchFrame(uint32_t Id) {
  if (Id != ManifestFrameId && Id >= FrameCount)
    return FetchResult::failure(FetchErrorKind::NotFound,
                                "net: no frame " + std::to_string(Id) +
                                    " (container has " +
                                    std::to_string(FrameCount) + ")");
  if (Id != ManifestFrameId) {
    std::lock_guard<std::mutex> L(StageMu);
    auto It = Staged.find(Id);
    if (It != Staged.end()) {
      std::vector<uint8_t> Bytes = std::move(It->second);
      Staged.erase(It);
      Cnt.StagedServes.fetch_add(1, std::memory_order_relaxed);
      // The network cost was paid by the batch round trip that staged
      // these bytes; the serve itself is free.
      return FetchResult::success(std::move(Bytes), 0);
    }
  }

  auto Start = std::chrono::steady_clock::now();
  Message Reply;
  FetchResult Fail;
  if (!exchange(encodeGetFrame(Id), Reply, Fail)) {
    Fail.VirtualSeconds = elapsedSeconds(Start);
    return Fail;
  }
  double Seconds = elapsedSeconds(Start);
  if (Reply.Type != MsgType::FrameData || Reply.Id != Id)
    return FetchResult::failure(FetchErrorKind::Corrupt,
                                "net: reply does not answer frame " +
                                    std::to_string(Id),
                                Seconds);
  return FetchResult::success(std::move(Reply.Bytes), Seconds);
}

store::FetchResult SocketFrameSource::fetchManifest() {
  return fetchFrame(ManifestFrameId);
}

void SocketFrameSource::prefetchHint(const std::vector<uint32_t> &FrameIds) {
  std::vector<uint32_t> Want;
  Want.reserve(FrameIds.size());
  {
    std::lock_guard<std::mutex> L(StageMu);
    for (uint32_t Id : FrameIds)
      if (Id < FrameCount && !Staged.count(Id))
        Want.push_back(Id);
  }
  std::sort(Want.begin(), Want.end());
  Want.erase(std::unique(Want.begin(), Want.end()), Want.end());
  if (Want.empty())
    return;

  Message Reply;
  FetchResult Fail;
  if (!exchange(encodeGetBatch(Want), Reply, Fail))
    return; // Soft: unstaged ids fault through the retried path.
  Cnt.BatchRoundTrips.fetch_add(1, std::memory_order_relaxed);
  if (Reply.Type != MsgType::BatchData)
    return;

  std::lock_guard<std::mutex> L(StageMu);
  for (BatchEntry &E : Reply.Entries)
    if (E.Ok && E.Id < FrameCount)
      Staged[E.Id] = std::move(E.Bytes);
}

ClientStats SocketFrameSource::stats() const {
  ClientStats S;
  S.RoundTrips = Cnt.RoundTrips.load(std::memory_order_relaxed);
  S.BatchRoundTrips = Cnt.BatchRoundTrips.load(std::memory_order_relaxed);
  S.Dials = Cnt.Dials.load(std::memory_order_relaxed);
  S.BytesSent = Cnt.BytesSent.load(std::memory_order_relaxed);
  S.BytesReceived = Cnt.BytesReceived.load(std::memory_order_relaxed);
  S.StagedServes = Cnt.StagedServes.load(std::memory_order_relaxed);
  S.TransportErrors = Cnt.TransportErrors.load(std::memory_order_relaxed);
  return S;
}

//===- net/Message.h - CCPK frame-service wire protocol --------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one message codec behind every CCPK frame transport, real or
/// simulated. A frame-service conversation is length-prefixed binary
/// messages over a byte stream:
///
///   u32   payload length (bytes after this prefix; bounded by
///         MaxMessageBytes so a corrupt prefix can never drive an
///         allocation)
///   u8    message type (MsgType)
///   ...   type-specific body (ByteWriter little-endian conventions)
///
/// The conversation: the client opens with Hello (magic + protocol
/// version); the server answers Welcome carrying the container's
/// manifest-v3 content hash, chain spec, and frame census — the
/// handshake is what lets a SocketFrameSource answer contentHash()
/// without fetching, so the shared-registry trust check works
/// end-to-end over the network. After that the client sends GetFrame
/// (one id; ManifestFrameId for the manifest) or GetBatch (many ids,
/// one round trip) and the server answers FrameData / BatchData, or
/// ErrorReply carrying a typed store::FetchErrorKind so transport
/// failures keep their transient/permanent classification across the
/// wire.
///
/// Everything here is inline and allocation-transparent: encode*()
/// builds the full message (prefix included), wireSize*() computes the
/// exact encoded size without building (the simulated transport charges
/// link time for these sizes, so sim and socket agree byte-for-byte on
/// what the wire carries), and tryParseMessage() inverts any payload
/// under the usual tryDecode/DecodeError rules.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_NET_MESSAGE_H
#define CCOMP_NET_MESSAGE_H

#include "store/FrameSource.h"
#include "support/ByteIO.h"
#include "support/Error.h"
#include "support/Span.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccomp {
namespace net {

/// First field of Hello/Welcome; "CCPN" on the wire (CCPK-over-network).
constexpr uint32_t WireMagic = 0x4E504343;
constexpr uint8_t WireVersion = 1;

/// Hard cap on one message's payload. Both ends reject a length prefix
/// beyond this before allocating anything, so a corrupt or hostile
/// 4 GiB prefix costs nothing; large modules must batch under it.
constexpr size_t MaxMessageBytes = 64u << 20;

/// Bytes of the length prefix itself.
constexpr size_t LengthPrefixBytes = 4;

enum class MsgType : uint8_t {
  Hello = 1,     ///< Client -> server: magic, version.
  Welcome = 2,   ///< Server -> client: magic, version, hash, spec, census.
  GetFrame = 3,  ///< Client -> server: one frame id.
  GetBatch = 4,  ///< Client -> server: many frame ids, one round trip.
  FrameData = 5, ///< Server -> client: one frame's bytes.
  BatchData = 6, ///< Server -> client: per-id bytes or typed error.
  ErrorReply = 7 ///< Server -> client: typed failure for one request.
};

/// One entry of a BatchData reply: the frame's bytes, or why not.
struct BatchEntry {
  uint32_t Id = 0;
  bool Ok = false;
  std::vector<uint8_t> Bytes;
  store::FetchErrorKind Err = store::FetchErrorKind::Io;
  std::string Msg;
};

/// A parsed message, tagged by Type; only the fields of that type are
/// meaningful. One flat struct (rather than a variant) keeps the parse
/// API a single call for a dispatching server loop.
struct Message {
  MsgType Type = MsgType::Hello;
  uint8_t Version = 0; ///< Hello / Welcome.
  // Welcome:
  uint64_t ContentHash = 0;
  std::string ChainSpec;
  uint32_t FrameCount = 0;
  uint64_t FrameBytes = 0;
  // GetFrame / FrameData / ErrorReply:
  uint32_t Id = 0;
  std::vector<uint8_t> Bytes; ///< FrameData payload.
  // GetBatch:
  std::vector<uint32_t> Ids;
  // BatchData:
  std::vector<BatchEntry> Entries;
  // ErrorReply:
  store::FetchErrorKind Err = store::FetchErrorKind::Io;
  std::string Msg;
};

//===----------------------------------------------------------------------===//
// Size helpers (no allocation)
//===----------------------------------------------------------------------===//

inline size_t varUSize(uint64_t V) {
  size_t N = 1;
  while (V >= 0x80) {
    V >>= 7;
    ++N;
  }
  return N;
}

inline size_t wireSizeHello() {
  return LengthPrefixBytes + 1 + 4 + 1; // type, magic, version.
}

inline size_t wireSizeWelcome(const std::string &ChainSpec) {
  return LengthPrefixBytes + 1 + 4 + 1 + 8 +
         varUSize(ChainSpec.size()) + ChainSpec.size() + 4 + 8;
}

inline size_t wireSizeGetFrame() {
  return LengthPrefixBytes + 1 + 4; // type, id.
}

inline size_t wireSizeGetBatch(size_t NumIds) {
  return LengthPrefixBytes + 1 + varUSize(NumIds) + 4 * NumIds;
}

inline size_t wireSizeFrameData(size_t PayloadLen) {
  return LengthPrefixBytes + 1 + 4 + varUSize(PayloadLen) + PayloadLen;
}

inline size_t wireSizeErrorReply(const std::string &Msg) {
  return LengthPrefixBytes + 1 + 4 + 1 + varUSize(Msg.size()) + Msg.size();
}

/// What one successful single-frame fetch of \p PayloadLen bytes puts
/// on the wire, both directions: the GetFrame request plus its
/// FrameData reply. This is the quantity the simulated transport
/// charges per fetch when RemoteOptions::WireFraming is on, so the sim
/// and a real loopback server account identical byte counts.
inline size_t wireSizeFetch(size_t PayloadLen) {
  return wireSizeGetFrame() + wireSizeFrameData(PayloadLen);
}

//===----------------------------------------------------------------------===//
// Encoding (full messages, length prefix included)
//===----------------------------------------------------------------------===//

namespace detail {

/// Stamps the u32 length prefix over bytes [0,4) once the payload is
/// fully written.
inline std::vector<uint8_t> seal(ByteWriter &W) {
  std::vector<uint8_t> Out = W.take();
  uint32_t Len = static_cast<uint32_t>(Out.size() - LengthPrefixBytes);
  Out[0] = static_cast<uint8_t>(Len);
  Out[1] = static_cast<uint8_t>(Len >> 8);
  Out[2] = static_cast<uint8_t>(Len >> 16);
  Out[3] = static_cast<uint8_t>(Len >> 24);
  return Out;
}

inline ByteWriter open(MsgType T) {
  ByteWriter W;
  W.writeU32(0); // Length placeholder, sealed later.
  W.writeU8(static_cast<uint8_t>(T));
  return W;
}

} // namespace detail

inline std::vector<uint8_t> encodeHello() {
  ByteWriter W = detail::open(MsgType::Hello);
  W.writeU32(WireMagic);
  W.writeU8(WireVersion);
  return detail::seal(W);
}

inline std::vector<uint8_t> encodeWelcome(uint64_t ContentHash,
                                          const std::string &ChainSpec,
                                          uint32_t FrameCount,
                                          uint64_t FrameBytes) {
  ByteWriter W = detail::open(MsgType::Welcome);
  W.writeU32(WireMagic);
  W.writeU8(WireVersion);
  W.writeU64(ContentHash);
  W.writeStr(ChainSpec);
  W.writeU32(FrameCount);
  W.writeU64(FrameBytes);
  return detail::seal(W);
}

inline std::vector<uint8_t> encodeGetFrame(uint32_t Id) {
  ByteWriter W = detail::open(MsgType::GetFrame);
  W.writeU32(Id);
  return detail::seal(W);
}

inline std::vector<uint8_t> encodeGetBatch(const std::vector<uint32_t> &Ids) {
  ByteWriter W = detail::open(MsgType::GetBatch);
  W.writeVarU(Ids.size());
  for (uint32_t Id : Ids)
    W.writeU32(Id);
  return detail::seal(W);
}

inline std::vector<uint8_t> encodeFrameData(uint32_t Id, ByteSpan Payload) {
  ByteWriter W = detail::open(MsgType::FrameData);
  W.writeU32(Id);
  W.writeVarU(Payload.size());
  W.writeBytes(Payload.data(), Payload.size());
  return detail::seal(W);
}

inline std::vector<uint8_t> encodeBatchData(const std::vector<BatchEntry> &Es) {
  ByteWriter W = detail::open(MsgType::BatchData);
  W.writeVarU(Es.size());
  for (const BatchEntry &E : Es) {
    W.writeU32(E.Id);
    W.writeU8(E.Ok ? 1 : 0);
    if (E.Ok) {
      W.writeVarU(E.Bytes.size());
      W.writeBytes(E.Bytes);
    } else {
      W.writeU8(static_cast<uint8_t>(E.Err));
      W.writeStr(E.Msg);
    }
  }
  return detail::seal(W);
}

inline std::vector<uint8_t> encodeErrorReply(uint32_t Id,
                                             store::FetchErrorKind K,
                                             const std::string &Msg) {
  ByteWriter W = detail::open(MsgType::ErrorReply);
  W.writeU32(Id);
  W.writeU8(static_cast<uint8_t>(K));
  W.writeStr(Msg);
  return detail::seal(W);
}

//===----------------------------------------------------------------------===//
// Decoding
//===----------------------------------------------------------------------===//

namespace detail {

inline store::FetchErrorKind parseKind(uint8_t Raw) {
  if (Raw > static_cast<uint8_t>(store::FetchErrorKind::Io))
    decodeFail("net message: unknown fetch-error kind " +
               std::to_string(Raw));
  return static_cast<store::FetchErrorKind>(Raw);
}

inline void parseMagicVersion(ByteReader &R, Message &M, const char *Who) {
  if (R.readU32() != WireMagic)
    decodeFail(std::string("net message: bad magic in ") + Who);
  M.Version = R.readU8();
  if (M.Version != WireVersion)
    decodeFail(std::string("net message: unsupported protocol version ") +
               std::to_string(M.Version) + " in " + Who);
}

} // namespace detail

/// Parses one message payload (the bytes *after* the length prefix).
/// Malformed input — unknown type, bad magic, truncated body, trailing
/// bytes, inflated counts — yields a typed DecodeError, never UB or an
/// allocation driven by a lying count.
inline Result<Message> tryParseMessage(ByteSpan Payload) {
  return tryDecode([&] {
    Message M;
    ByteReader R(Payload);
    uint8_t RawType = R.readU8();
    if (RawType < static_cast<uint8_t>(MsgType::Hello) ||
        RawType > static_cast<uint8_t>(MsgType::ErrorReply))
      decodeFail("net message: unknown message type " +
                 std::to_string(RawType));
    M.Type = static_cast<MsgType>(RawType);
    switch (M.Type) {
    case MsgType::Hello:
      detail::parseMagicVersion(R, M, "Hello");
      break;
    case MsgType::Welcome:
      detail::parseMagicVersion(R, M, "Welcome");
      M.ContentHash = R.readU64();
      M.ChainSpec = R.readStr();
      M.FrameCount = R.readU32();
      M.FrameBytes = R.readU64();
      break;
    case MsgType::GetFrame:
      M.Id = R.readU32();
      break;
    case MsgType::GetBatch: {
      uint64_t N = R.readVarU();
      // Each id costs 4 bytes on the wire; a count beyond the payload
      // is lying (and must not reach a reserve).
      if (N > R.remaining() / 4)
        decodeFail("net message: GetBatch id count overruns the payload");
      M.Ids.reserve(static_cast<size_t>(N));
      for (uint64_t I = 0; I != N; ++I)
        M.Ids.push_back(R.readU32());
      break;
    }
    case MsgType::FrameData: {
      M.Id = R.readU32();
      uint64_t Len = R.readVarU();
      if (Len > R.remaining())
        decodeFail("net message: FrameData length overruns the payload");
      M.Bytes = R.readBytes(static_cast<size_t>(Len));
      break;
    }
    case MsgType::BatchData: {
      uint64_t N = R.readVarU();
      // Each entry costs at least 6 bytes (id + flag + one more).
      if (N > R.remaining() / 6 + 1)
        decodeFail("net message: BatchData entry count overruns the payload");
      M.Entries.reserve(static_cast<size_t>(N));
      for (uint64_t I = 0; I != N; ++I) {
        BatchEntry E;
        E.Id = R.readU32();
        E.Ok = R.readU8() != 0;
        if (E.Ok) {
          uint64_t Len = R.readVarU();
          if (Len > R.remaining())
            decodeFail("net message: batch entry overruns the payload");
          E.Bytes = R.readBytes(static_cast<size_t>(Len));
        } else {
          E.Err = detail::parseKind(R.readU8());
          E.Msg = R.readStr();
        }
        M.Entries.push_back(std::move(E));
      }
      break;
    }
    case MsgType::ErrorReply:
      M.Id = R.readU32();
      M.Err = detail::parseKind(R.readU8());
      M.Msg = R.readStr();
      break;
    }
    if (!R.atEnd())
      decodeFail("net message: trailing bytes after the message body");
    return M;
  });
}

} // namespace net
} // namespace ccomp

#endif // CCOMP_NET_MESSAGE_H

//===- net/Socket.h - Deadline-bounded POSIX TCP sockets -------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thin RAII layer between the frame service and the kernel: a
/// move-only Socket whose every read and write is bounded by a
/// wall-clock deadline (poll + loop, never a bare blocking recv), and a
/// Listener that binds an ephemeral loopback port and accepts with a
/// timeout so an accept loop can notice shutdown. Nothing here knows
/// about frames or messages; recvMessage/sendMessage in the server and
/// client layer the net::Message framing on top.
///
/// Why deadlines everywhere: the whole net subsystem promises that a
/// killed or wedged peer yields a *typed* error, never a hang. A poll
/// timeout maps to IoStatus::TimedOut, a peer close mid-buffer to
/// IoStatus::Closed, and everything else to IoStatus::Error with the
/// errno text — the caller translates these into FetchErrorKind.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_NET_SOCKET_H
#define CCOMP_NET_SOCKET_H

#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace ccomp {
namespace net {

/// Outcome of one bounded IO operation.
enum class IoStatus : uint8_t {
  Ok,
  TimedOut, ///< The deadline passed before the full buffer moved.
  Closed,   ///< The peer closed the connection mid-operation.
  Error,    ///< The kernel refused (errno text in the message).
};

/// A connected TCP socket (move-only, closes on destruction). All IO is
/// deadline-bounded; TCP_NODELAY is set on creation (the protocol's
/// requests are small and latency-sensitive).
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd);
  Socket(Socket &&O) noexcept;
  Socket &operator=(Socket &&O) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;
  ~Socket();

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Closes the descriptor (idempotent).
  void close();
  /// Shuts down both directions without closing, unblocking any thread
  /// polling on this socket (the server uses this to evict connections
  /// at stop()).
  void shutdownBoth();

  /// Dials \p Host:\p Port with a connect deadline. Failure carries the
  /// reason ("connection refused", "connect timed out", ...).
  static Result<Socket> connectTo(const std::string &Host, uint16_t Port,
                                  unsigned TimeoutMillis);

  /// Writes all \p N bytes or reports why not; \p Err is filled on
  /// non-Ok. Uses MSG_NOSIGNAL so a dead peer yields Closed, not
  /// SIGPIPE.
  IoStatus sendAll(const uint8_t *Data, size_t N, unsigned TimeoutMillis,
                   std::string &Err);

  /// Reads exactly \p N bytes or reports why not. A clean EOF before
  /// any byte and a drop mid-buffer both return Closed (the caller
  /// distinguishes by position when it matters).
  IoStatus recvAll(uint8_t *Data, size_t N, unsigned TimeoutMillis,
                   std::string &Err);

private:
  int Fd = -1;
};

/// A bound, listening TCP socket on a concrete address/port.
class Listener {
public:
  Listener() = default;
  Listener(Listener &&O) noexcept;
  Listener &operator=(Listener &&O) noexcept;
  Listener(const Listener &) = delete;
  Listener &operator=(const Listener &) = delete;
  ~Listener();

  /// Binds \p Address:\p Port (0 picks an ephemeral port; the chosen
  /// one is in port()) and listens.
  static Result<Listener> listenOn(const std::string &Address, uint16_t Port,
                                   int Backlog = 256);

  bool valid() const { return Fd.load(std::memory_order_acquire) >= 0; }
  uint16_t port() const { return BoundPort; }
  const std::string &address() const { return Address; }

  /// Waits up to \p TimeoutMillis for a connection. Returns an invalid
  /// Socket on timeout or if the listener was closed; \p Err is set
  /// only for real errors.
  Socket accept(unsigned TimeoutMillis, std::string &Err);

  /// Closes the listening descriptor; a blocked accept() returns.
  /// Safe to call from a thread other than the accepting one — this is
  /// how a server's stop() unblocks its accept loop (Fd is atomic and
  /// swapped out before the close, so the two never double-close).
  void close();

private:
  std::atomic<int> Fd{-1};
  uint16_t BoundPort = 0;
  std::string Address;
};

} // namespace net
} // namespace ccomp

#endif // CCOMP_NET_SOCKET_H

//===- net/Socket.cpp - Deadline-bounded POSIX TCP sockets ----------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace ccomp;
using namespace ccomp::net;

namespace {

std::string errnoText(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

/// Milliseconds left until \p Deadline, clamped to [0, INT_MAX] for
/// poll(). A whole IO operation shares one deadline across however many
/// poll/read iterations it takes.
int remainingMillis(std::chrono::steady_clock::time_point Deadline) {
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
      Deadline - std::chrono::steady_clock::now());
  if (Left.count() <= 0)
    return 0;
  if (Left.count() > 0x7FFFFFFF)
    return 0x7FFFFFFF;
  return static_cast<int>(Left.count());
}

void setNoDelay(int Fd) {
  int One = 1;
  (void)::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

bool parseAddr(const std::string &Host, uint16_t Port, sockaddr_in &Out,
               std::string &Err) {
  std::memset(&Out, 0, sizeof(Out));
  Out.sin_family = AF_INET;
  Out.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Out.sin_addr) != 1) {
    Err = "socket: bad IPv4 address '" + Host + "'";
    return false;
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Socket
//===----------------------------------------------------------------------===//

Socket::Socket(int Fd) : Fd(Fd) {
  if (Fd >= 0)
    setNoDelay(Fd);
}

Socket::Socket(Socket &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }

Socket &Socket::operator=(Socket &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

Socket::~Socket() { close(); }

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void Socket::shutdownBoth() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}

Result<Socket> Socket::connectTo(const std::string &Host, uint16_t Port,
                                 unsigned TimeoutMillis) {
  sockaddr_in Addr;
  std::string Err;
  if (!parseAddr(Host, Port, Addr, Err))
    return DecodeError(Err);

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return DecodeError(errnoText("socket: socket()"));
  Socket S(Fd);

  // Non-blocking connect so the dial itself honors the deadline.
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  (void)::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  int RC = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  if (RC != 0) {
    if (errno != EINPROGRESS)
      return DecodeError(errnoText("socket: connect"));
    pollfd P{Fd, POLLOUT, 0};
    int PR = ::poll(&P, 1, static_cast<int>(TimeoutMillis));
    if (PR == 0)
      return DecodeError("socket: connect to " + Host + ":" +
                         std::to_string(Port) + " timed out");
    if (PR < 0)
      return DecodeError(errnoText("socket: poll"));
    int SoErr = 0;
    socklen_t Len = sizeof(SoErr);
    if (::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoErr, &Len) != 0 || SoErr) {
      errno = SoErr ? SoErr : errno;
      return DecodeError(errnoText("socket: connect"));
    }
  }
  (void)::fcntl(Fd, F_SETFL, Flags); // Back to blocking; IO polls itself.
  return S;
}

IoStatus Socket::sendAll(const uint8_t *Data, size_t N, unsigned TimeoutMillis,
                         std::string &Err) {
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(TimeoutMillis);
  size_t Off = 0;
  while (Off != N) {
    pollfd P{Fd, POLLOUT, 0};
    int PR = ::poll(&P, 1, remainingMillis(Deadline));
    if (PR == 0) {
      Err = "socket: send timed out";
      return IoStatus::TimedOut;
    }
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      Err = errnoText("socket: poll");
      return IoStatus::Error;
    }
    ssize_t W = ::send(Fd, Data + Off, N - Off, MSG_NOSIGNAL);
    if (W > 0) {
      Off += static_cast<size_t>(W);
      continue;
    }
    if (W < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR))
      continue;
    if (W < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      Err = "socket: peer closed during send";
      return IoStatus::Closed;
    }
    Err = errnoText("socket: send");
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

IoStatus Socket::recvAll(uint8_t *Data, size_t N, unsigned TimeoutMillis,
                         std::string &Err) {
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(TimeoutMillis);
  size_t Off = 0;
  while (Off != N) {
    pollfd P{Fd, POLLIN, 0};
    int PR = ::poll(&P, 1, remainingMillis(Deadline));
    if (PR == 0) {
      Err = "socket: receive timed out";
      return IoStatus::TimedOut;
    }
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      Err = errnoText("socket: poll");
      return IoStatus::Error;
    }
    ssize_t R = ::recv(Fd, Data + Off, N - Off, 0);
    if (R > 0) {
      Off += static_cast<size_t>(R);
      continue;
    }
    if (R == 0) {
      Err = Off ? "socket: peer closed mid-message"
                : "socket: peer closed the connection";
      return IoStatus::Closed;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
      continue;
    if (errno == ECONNRESET) {
      Err = "socket: connection reset";
      return IoStatus::Closed;
    }
    Err = errnoText("socket: recv");
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

//===----------------------------------------------------------------------===//
// Listener
//===----------------------------------------------------------------------===//

Listener::Listener(Listener &&O) noexcept
    : Fd(O.Fd.exchange(-1)), BoundPort(O.BoundPort),
      Address(std::move(O.Address)) {}

Listener &Listener::operator=(Listener &&O) noexcept {
  if (this != &O) {
    close();
    Fd.store(O.Fd.exchange(-1), std::memory_order_release);
    BoundPort = O.BoundPort;
    Address = std::move(O.Address);
  }
  return *this;
}

Listener::~Listener() { close(); }

void Listener::close() {
  // Swap the descriptor out first so a concurrent close (or a close
  // racing the accept loop's read) can never double-close.
  int Old = Fd.exchange(-1, std::memory_order_acq_rel);
  if (Old >= 0)
    ::close(Old);
}

Result<Listener> Listener::listenOn(const std::string &Address, uint16_t Port,
                                    int Backlog) {
  sockaddr_in Addr;
  std::string Err;
  if (!parseAddr(Address, Port, Addr, Err))
    return DecodeError(Err);

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return DecodeError(errnoText("socket: socket()"));
  Listener L;
  L.Fd = Fd;
  L.Address = Address;
  int One = 1;
  (void)::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return DecodeError(errnoText("socket: bind"));
  if (::listen(Fd, Backlog) != 0)
    return DecodeError(errnoText("socket: listen"));

  sockaddr_in Bound;
  socklen_t Len = sizeof(Bound);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &Len) != 0)
    return DecodeError(errnoText("socket: getsockname"));
  L.BoundPort = ntohs(Bound.sin_port);
  return L;
}

Socket Listener::accept(unsigned TimeoutMillis, std::string &Err) {
  // One load for the whole call: a concurrent close() swaps Fd to -1
  // and closes the descriptor, which wakes the poll below (POLLNVAL)
  // and fails the accept — the caller sees an invalid Socket either
  // way and checks its own stop condition.
  int LFd = Fd.load(std::memory_order_acquire);
  if (LFd < 0)
    return Socket();
  pollfd P{LFd, POLLIN, 0};
  int PR = ::poll(&P, 1, static_cast<int>(TimeoutMillis));
  if (PR <= 0) {
    if (PR < 0 && errno != EINTR)
      Err = errnoText("socket: poll(listen)");
    return Socket();
  }
  if (P.revents & (POLLNVAL | POLLERR | POLLHUP))
    return Socket(); // Listener closed under us.
  int CFd = ::accept(LFd, nullptr, nullptr);
  if (CFd < 0) {
    if (errno != EINTR && errno != ECONNABORTED)
      Err = errnoText("socket: accept");
    return Socket();
  }
  return Socket(CFd);
}

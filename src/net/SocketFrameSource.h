//===- net/SocketFrameSource.h - FrameSource over real TCP -----*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the frame service: a store::FrameSource whose
/// frames live behind a net::FrameServer. Because the FrameSource seam
/// is where the CodeStore stops caring about transport, everything
/// above this class — retry masking, typed errors, single-flight,
/// shared registries, tiered execution — runs unchanged over a real
/// network; this file only turns fetchFrame into a deadline-bounded
/// TCP round trip.
///
/// What it adds over the simulated remote:
///
///   - Connection pooling: round trips check a connection out of a
///     small idle pool and return it after; concurrent faults dial
///     extra connections on demand (each handshaking afresh) rather
///     than serializing behind one socket.
///   - Handshake identity: the Welcome message carries the server
///     container's manifest-v3 content hash, so contentHash() answers
///     from the handshake without fetching a byte — the shared-registry
///     trust check (claimed manifest hash vs server-computed hash)
///     works end-to-end over the network, and every *re*-dial verifies
///     the server still serves the same container.
///   - Request coalescing: prefetchHint(ids) fetches every wanted
///     frame in ONE GetBatch round trip and stages the bytes; the
///     store's subsequent per-frame fetches are served from the staging
///     area with no further network traffic. Hundreds of frames cost
///     one latency instead of hundreds.
///
/// Failures are typed per the FetchErrorKind taxonomy: a recv deadline
/// maps to Timeout, a dropped connection to ShortRead, a malformed or
/// oversized reply to Corrupt (all transient — fetchWithRetry masks
/// them, and RetryPolicy::RealTime bounds the storm with a wall-clock
/// deadline), a server-side NotFound/Io crosses the wire permanent. A
/// fetch's VirtualSeconds is the measured wall time of the round trip,
/// so StoreStats::FetchVirtualNanos reads as real time for this source.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_NET_SOCKETFRAMESOURCE_H
#define CCOMP_NET_SOCKETFRAMESOURCE_H

#include "net/Message.h"
#include "net/Socket.h"
#include "store/FrameSource.h"
#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ccomp {
namespace net {

struct SocketOptions {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  unsigned ConnectTimeoutMillis = 5'000;
  /// Deadline for each send/recv of one round trip.
  unsigned IoTimeoutMillis = 10'000;
  /// Idle connections kept for reuse; extra ones close at check-in.
  unsigned MaxPooledConnections = 2;
};

/// Client-side transport counters (independent of the store's fetch
/// stats: these count wire traffic, including staged-batch savings).
struct ClientStats {
  uint64_t RoundTrips = 0;      ///< Request/reply exchanges, batches included.
  uint64_t BatchRoundTrips = 0; ///< GetBatch exchanges alone.
  uint64_t Dials = 0;           ///< Connections established (incl. redials).
  uint64_t BytesSent = 0;
  uint64_t BytesReceived = 0;
  uint64_t StagedServes = 0;    ///< Fetches answered from batch staging.
  uint64_t TransportErrors = 0; ///< Round trips that failed typed.
};

class SocketFrameSource final : public store::FrameSource {
public:
  /// Dials the server once, handshakes, and learns the container's
  /// identity (hash, chain spec, frame census). Fails typed if the
  /// server is unreachable or speaks a different protocol.
  static Result<std::unique_ptr<SocketFrameSource>>
  connect(SocketOptions Opts);

  ~SocketFrameSource() override;

  const char *kind() const override { return "socket"; }
  const std::string &chainSpec() const override { return Spec; }
  uint32_t functionFrameCount() const override { return FrameCount; }
  size_t frameBytes() const override { return TotalFrameBytes; }

  store::FetchResult fetchFrame(uint32_t Id) override;
  store::FetchResult fetchManifest() override;

  /// Answered from the handshake — no fetching, no trust in the
  /// manifest claim: the server computed this hash from the frame
  /// bytes it actually serves.
  bool contentHash(uint64_t &H) override {
    H = Hash;
    return true;
  }

  /// One GetBatch round trip for every id not already staged; results
  /// are staged and served by later fetchFrame calls for free. Batch
  /// failures are soft: ids the server could not produce simply stay
  /// unstaged and fault through the usual retried path.
  void prefetchHint(const std::vector<uint32_t> &FrameIds) override;

  ClientStats stats() const;
  const SocketOptions &options() const { return Opts; }

private:
  explicit SocketFrameSource(SocketOptions O) : Opts(std::move(O)) {}

  /// Dials + handshakes one connection; verifies the container hash on
  /// redials. On success the socket is ready for requests.
  Result<Socket> dial(bool FirstHandshake);
  /// Checks a pooled connection out (dialing if the pool is empty).
  Result<Socket> checkout();
  void checkin(Socket S);

  /// One request/reply exchange. On success \p Reply holds the parsed
  /// message and the connection returns to the pool. On failure \p
  /// Fail is a typed FetchResult and the connection is dropped (unless
  /// the failure was a well-formed ErrorReply, which leaves the stream
  /// healthy and pooled).
  bool exchange(const std::vector<uint8_t> &Request, Message &Reply,
                store::FetchResult &Fail);

  SocketOptions Opts;
  std::string Spec;
  uint32_t FrameCount = 0;
  uint64_t TotalFrameBytes = 0;
  uint64_t Hash = 0;

  std::mutex PoolMu;
  std::vector<Socket> Pool;

  std::mutex StageMu;
  std::unordered_map<uint32_t, std::vector<uint8_t>> Staged;

  struct Counters {
    std::atomic<uint64_t> RoundTrips{0};
    std::atomic<uint64_t> BatchRoundTrips{0};
    std::atomic<uint64_t> Dials{0};
    std::atomic<uint64_t> BytesSent{0};
    std::atomic<uint64_t> BytesReceived{0};
    std::atomic<uint64_t> StagedServes{0};
    std::atomic<uint64_t> TransportErrors{0};
  };
  mutable Counters Cnt;
};

} // namespace net
} // namespace ccomp

#endif // CCOMP_NET_SOCKETFRAMESOURCE_H

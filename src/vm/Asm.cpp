//===- vm/Asm.cpp - VM assembler / disassembler ------------------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/Asm.h"

#include "support/Support.h"

#include <cctype>
#include <cstring>
#include <map>
#include <sstream>

using namespace ccomp;
using namespace ccomp::vm;

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

std::string vm::printInstr(const Instr &In, const VMProgram *P) {
  std::ostringstream OS;
  OS << opMnemonic(In.Op);
  VMOp Op = In.Op;

  auto Reg = [](unsigned R) { return std::string(regName(R)); };

  switch (Op) {
  case VMOp::LD_B: case VMOp::LD_BU: case VMOp::LD_H: case VMOp::LD_HU:
  case VMOp::LD_W: case VMOp::ST_B: case VMOp::ST_H: case VMOp::ST_W:
    OS << ' ' << Reg(In.Rd) << ',' << In.Imm << '(' << Reg(In.Rs1) << ')';
    break;
  case VMOp::SPILL: case VMOp::RELOAD:
    OS << ' ' << Reg(In.Rd) << ',' << In.Imm << "(sp)";
    break;
  case VMOp::ENTER: case VMOp::EXIT:
    OS << " sp,sp," << In.Imm;
    break;
  case VMOp::EPI:
    break;
  case VMOp::SYS:
    OS << ' ' << In.Imm;
    break;
  case VMOp::JMP:
    OS << " $L" << In.Target;
    break;
  case VMOp::CALL:
    if (P && In.Target < P->Functions.size())
      OS << ' ' << P->Functions[In.Target].Name;
    else
      OS << " #" << In.Target;
    break;
  case VMOp::RJR:
    OS << ' ' << Reg(In.Rd);
    break;
  case VMOp::LI:
    OS << ' ' << Reg(In.Rd) << ',' << In.Imm;
    break;
  default:
    if (isBranchImm(Op)) {
      OS << ' ' << Reg(In.Rs1) << ',' << In.Imm << ",$L" << In.Target;
    } else if (isBranch(Op)) {
      OS << ' ' << Reg(In.Rs1) << ',' << Reg(In.Rs2) << ",$L" << In.Target;
    } else {
      // Generic register/imm forms driven by the field descriptors.
      unsigned N = numFields(Op);
      const FieldKind *FK = fieldKinds(Op);
      for (unsigned I = 0; I != N; ++I) {
        OS << (I ? "," : " ");
        int64_t V = getField(In, I);
        if (FK[I] == FieldKind::Reg)
          OS << Reg(static_cast<unsigned>(V));
        else
          OS << V;
      }
    }
    break;
  }
  return OS.str();
}

std::string vm::printFunction(const VMFunction &F, const VMProgram *P) {
  std::ostringstream OS;
  OS << "func " << F.Name << " frame " << F.FrameSize << '\n';
  // Labels at each instruction index.
  std::multimap<uint32_t, uint32_t> LabelsAt;
  for (uint32_t L = 0; L != F.LabelPos.size(); ++L)
    LabelsAt.insert({F.LabelPos[L], L});
  for (uint32_t I = 0; I <= F.Code.size(); ++I) {
    auto [B, E] = LabelsAt.equal_range(I);
    for (auto It = B; It != E; ++It)
      OS << "$L" << It->second << ":\n";
    if (I < F.Code.size())
      OS << "  " << printInstr(F.Code[I], P) << '\n';
  }
  OS << "endfunc\n";
  return OS.str();
}

std::string vm::printProgram(const VMProgram &P) {
  std::ostringstream OS;
  for (const VMGlobal &G : P.Globals) {
    OS << "global " << G.Name << " size " << G.Size << " init ";
    if (G.Init.empty()) {
      OS << '-';
    } else {
      static const char *Hex = "0123456789abcdef";
      for (uint8_t B : G.Init)
        OS << Hex[B >> 4] << Hex[B & 15];
    }
    OS << '\n';
  }
  for (const VMFunction &F : P.Functions)
    OS << printFunction(F, &P);
  if (!P.Functions.empty())
    OS << "entry " << P.Functions[P.Entry].Name << '\n';
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Assembler
//===----------------------------------------------------------------------===//

namespace {

/// One-pass tokenizer + two-pass symbol resolution assembler.
class Assembler {
public:
  Assembler(const std::string &Text, VMProgram &Out, std::string &Error)
      : S(Text.c_str()), Out(Out), Error(Error) {}

  bool run() {
    Out = VMProgram();
    while (!atEnd()) {
      skipWs();
      if (atEnd())
        break;
      if (tryWord("global")) {
        if (!parseGlobal())
          return false;
        continue;
      }
      if (tryWord("func")) {
        if (!parseFunc())
          return false;
        continue;
      }
      if (tryWord("entry")) {
        EntryName = parseName();
        continue;
      }
      return fail("unexpected input at top level");
    }
    // Resolve calls and the entry point.
    for (auto &[FnIdx, InstrIdx, Name] : CallFixups) {
      int32_t T = Out.findFunction(Name);
      if (T < 0)
        return fail("call to undefined function '" + Name + "'");
      Out.Functions[FnIdx].Code[InstrIdx].Target =
          static_cast<uint32_t>(T);
    }
    if (!EntryName.empty()) {
      int32_t E = Out.findFunction(EntryName);
      if (E < 0)
        return fail("entry function '" + EntryName + "' not found");
      Out.Entry = static_cast<uint32_t>(E);
    }
    // Lay out globals.
    uint32_t Addr = Out.GlobalBase;
    for (VMGlobal &G : Out.Globals) {
      Addr = (Addr + 3) & ~3u;
      G.Addr = Addr;
      Addr += G.Size;
    }
    Out.GlobalEnd = Addr;
    // Resolve global-address loads: "li rd,&name".
    for (auto &[FnIdx, InstrIdx, Name] : AddrFixups) {
      const VMGlobal *G = Out.findGlobal(Name);
      if (!G)
        return fail("address of undefined global '" + Name + "'");
      Out.Functions[FnIdx].Code[InstrIdx].Imm =
          static_cast<int32_t>(G->Addr);
    }
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
    return false;
  }

  bool atEnd() {
    skipWs();
    return *S == 0;
  }

  void skipWs() {
    for (;;) {
      while (*S && std::isspace(static_cast<unsigned char>(*S)))
        ++S;
      if (*S == ';' || *S == '#') { // Comment to end of line.
        while (*S && *S != '\n')
          ++S;
        continue;
      }
      return;
    }
  }

  bool tryWord(const char *W) {
    skipWs();
    size_t N = std::strlen(W);
    if (std::strncmp(S, W, N) != 0)
      return false;
    char After = S[N];
    if (After && (std::isalnum(static_cast<unsigned char>(After)) ||
                  After == '_' || After == '.'))
      return false;
    S += N;
    return true;
  }

  std::string parseName() {
    skipWs();
    std::string Out;
    while (*S && (std::isalnum(static_cast<unsigned char>(*S)) ||
                  *S == '_' || *S == '$' || *S == '.'))
      Out.push_back(*S++);
    return Out;
  }

  int64_t parseInt() {
    skipWs();
    bool Neg = *S == '-';
    if (Neg)
      ++S;
    int64_t V = 0;
    if (S[0] == '0' && (S[1] == 'x' || S[1] == 'X')) {
      S += 2;
      while (std::isxdigit(static_cast<unsigned char>(*S))) {
        char C = *S++;
        int Nib = C <= '9' ? C - '0' : (std::tolower(C) - 'a' + 10);
        V = V * 16 + Nib;
      }
    } else {
      while (std::isdigit(static_cast<unsigned char>(*S)))
        V = V * 10 + (*S++ - '0');
    }
    return Neg ? -V : V;
  }

  bool parseGlobal() {
    VMGlobal G;
    G.Name = parseName();
    if (!tryWord("size"))
      return fail("expected 'size' in global");
    G.Size = static_cast<uint32_t>(parseInt());
    if (tryWord("init")) {
      skipWs();
      if (*S == '-') {
        ++S;
      } else {
        while (std::isxdigit(static_cast<unsigned char>(S[0])) &&
               std::isxdigit(static_cast<unsigned char>(S[1]))) {
          auto Hex = [](char C) {
            return C <= '9' ? C - '0' : (std::tolower(C) - 'a' + 10);
          };
          G.Init.push_back(
              static_cast<uint8_t>(Hex(S[0]) * 16 + Hex(S[1])));
          S += 2;
        }
      }
    }
    Out.Globals.push_back(std::move(G));
    return true;
  }

  int parseReg() {
    std::string N = parseName();
    for (unsigned I = 0; I != 16; ++I)
      if (N == regName(I))
        return static_cast<int>(I);
    fail("bad register '" + N + "'");
    return -1;
  }

  bool expectChar(char C) {
    skipWs();
    if (*S != C)
      return fail(std::string("expected '") + C + "'");
    ++S;
    return true;
  }

  uint32_t labelIndex(VMFunction &F, const std::string &Name) {
    auto It = LabelIds.find(Name);
    if (It != LabelIds.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(F.LabelPos.size());
    F.LabelPos.push_back(~0u);
    LabelIds[Name] = Id;
    return Id;
  }

  bool parseFunc() {
    VMFunction F;
    F.Name = parseName();
    if (tryWord("frame"))
      F.FrameSize = static_cast<uint32_t>(parseInt());
    LabelIds.clear();
    uint32_t FnIdx = static_cast<uint32_t>(Out.Functions.size());

    while (!tryWord("endfunc")) {
      skipWs();
      if (*S == 0)
        return fail("unterminated function " + F.Name);
      if (*S == '$') {
        // Label definition: $name:
        std::string L = parseName();
        if (!expectChar(':'))
          return false;
        uint32_t Id = labelIndex(F, L);
        if (F.LabelPos[Id] != ~0u)
          return fail("label " + L + " redefined");
        F.LabelPos[Id] = static_cast<uint32_t>(F.Code.size());
        continue;
      }
      if (!parseInstr(F, FnIdx))
        return false;
    }
    for (uint32_t Pos : F.LabelPos)
      if (Pos == ~0u)
        return fail("undefined label in " + F.Name);
    Out.Functions.push_back(std::move(F));
    return true;
  }

  bool parseInstr(VMFunction &F, uint32_t FnIdx) {
    std::string Mn = parseName();
    int OpIdx = -1;
    for (unsigned I = 0; I != static_cast<unsigned>(VMOp::NumOps); ++I)
      if (Mn == opMnemonic(static_cast<VMOp>(I))) {
        OpIdx = static_cast<int>(I);
        break;
      }
    Instr In;
    // Same-mnemonic immediate forms: the RI ALU opcodes share mnemonics
    // with their RR counterparts in print (addi.i is distinct), so no
    // disambiguation is needed here; but branches share "ble.i" between
    // register and immediate forms and are resolved by operand shape.
    if (OpIdx < 0)
      return fail("unknown mnemonic '" + Mn + "'");
    In.Op = static_cast<VMOp>(OpIdx);

    switch (In.Op) {
    case VMOp::LD_B: case VMOp::LD_BU: case VMOp::LD_H: case VMOp::LD_HU:
    case VMOp::LD_W: case VMOp::ST_B: case VMOp::ST_H: case VMOp::ST_W: {
      int Rd = parseReg();
      if (Rd < 0 || !expectChar(','))
        return false;
      In.Rd = static_cast<uint8_t>(Rd);
      In.Imm = static_cast<int32_t>(parseInt());
      if (!expectChar('('))
        return false;
      int Rs = parseReg();
      if (Rs < 0 || !expectChar(')'))
        return false;
      In.Rs1 = static_cast<uint8_t>(Rs);
      break;
    }
    case VMOp::SPILL: case VMOp::RELOAD: {
      int Rd = parseReg();
      if (Rd < 0 || !expectChar(','))
        return false;
      In.Rd = static_cast<uint8_t>(Rd);
      In.Imm = static_cast<int32_t>(parseInt());
      if (!expectChar('('))
        return false;
      parseReg(); // sp, fixed.
      if (!expectChar(')'))
        return false;
      break;
    }
    case VMOp::ENTER: case VMOp::EXIT:
      parseReg();
      expectChar(',');
      parseReg();
      expectChar(',');
      In.Imm = static_cast<int32_t>(parseInt());
      break;
    case VMOp::EPI:
      break;
    case VMOp::SYS:
      In.Imm = static_cast<int32_t>(parseInt());
      break;
    case VMOp::JMP: {
      std::string L = parseName();
      In.Target = labelIndex(F, L);
      break;
    }
    case VMOp::CALL: {
      std::string Name = parseName();
      CallFixups.push_back({FnIdx, static_cast<uint32_t>(F.Code.size()),
                            Name});
      break;
    }
    case VMOp::RJR: {
      int Rd = parseReg();
      if (Rd < 0)
        return false;
      In.Rd = static_cast<uint8_t>(Rd);
      break;
    }
    case VMOp::LI: {
      int Rd = parseReg();
      if (Rd < 0 || !expectChar(','))
        return false;
      In.Rd = static_cast<uint8_t>(Rd);
      skipWs();
      if (*S == '&') {
        ++S;
        std::string GName = parseName();
        AddrFixups.push_back({FnIdx, static_cast<uint32_t>(F.Code.size()),
                              GName});
      } else {
        In.Imm = static_cast<int32_t>(parseInt());
      }
      break;
    }
    default: {
      if (isBranch(In.Op)) {
        int Rs1 = parseReg();
        if (Rs1 < 0 || !expectChar(','))
          return false;
        In.Rs1 = static_cast<uint8_t>(Rs1);
        skipWs();
        if (*S == '$') {
          return fail("branch needs two comparands");
        }
        if (std::isdigit(static_cast<unsigned char>(*S)) || *S == '-') {
          // Immediate comparand: switch to the immediate opcode.
          if (!isBranchImm(In.Op)) {
            unsigned Delta = static_cast<unsigned>(VMOp::BEQI) -
                             static_cast<unsigned>(VMOp::BEQ);
            In.Op = static_cast<VMOp>(static_cast<unsigned>(In.Op) + Delta);
          }
          In.Imm = static_cast<int32_t>(parseInt());
        } else {
          int Rs2 = parseReg();
          if (Rs2 < 0)
            return false;
          if (isBranchImm(In.Op))
            return fail("immediate branch with register comparand");
          In.Rs2 = static_cast<uint8_t>(Rs2);
        }
        if (!expectChar(','))
          return false;
        std::string L = parseName();
        In.Target = labelIndex(F, L);
        break;
      }
      // Generic field-driven parse (RRR, RRI, RR forms). The paper's
      // assembly uses one mnemonic for both register and immediate ALU
      // forms (add.i n0,n4,-1); switch opcodes by operand shape.
      unsigned N = numFields(In.Op);
      const FieldKind *FK = fieldKinds(In.Op);
      for (unsigned I = 0; I != N; ++I) {
        if (I && !expectChar(','))
          return false;
        skipWs();
        bool Numeric = std::isdigit(static_cast<unsigned char>(*S)) ||
                       *S == '-';
        if (FK[I] == FieldKind::Reg && Numeric && I == N - 1) {
          VMOp ImmOp;
          bool Negate = false;
          switch (In.Op) {
          case VMOp::ADD: ImmOp = VMOp::ADDI; break;
          case VMOp::SUB: ImmOp = VMOp::ADDI; Negate = true; break;
          case VMOp::MUL: ImmOp = VMOp::MULI; break;
          case VMOp::AND: ImmOp = VMOp::ANDI; break;
          case VMOp::OR: ImmOp = VMOp::ORI; break;
          case VMOp::XOR: ImmOp = VMOp::XORI; break;
          case VMOp::SLL: ImmOp = VMOp::SLLI; break;
          case VMOp::SRL: ImmOp = VMOp::SRLI; break;
          case VMOp::SRA: ImmOp = VMOp::SRAI; break;
          default:
            return fail("immediate operand for a register field");
          }
          In.Op = ImmOp;
          int64_t V = parseInt();
          setField(In, I, Negate ? -V : V);
          continue;
        }
        if (FK[I] == FieldKind::Reg) {
          int R = parseReg();
          if (R < 0)
            return false;
          setField(In, I, R);
        } else {
          setField(In, I, parseInt());
        }
      }
      break;
    }
    }
    F.Code.push_back(In);
    return true;
  }

  const char *S;
  VMProgram &Out;
  std::string &Error;
  std::map<std::string, uint32_t> LabelIds;
  std::vector<std::tuple<uint32_t, uint32_t, std::string>> CallFixups;
  std::vector<std::tuple<uint32_t, uint32_t, std::string>> AddrFixups;
  std::string EntryName;
};

} // namespace

bool vm::parseProgram(const std::string &Text, VMProgram &Out,
                      std::string &Error) {
  Error.clear();
  Assembler A(Text, Out, Error);
  if (A.run())
    return true;
  if (Error.empty())
    Error = "assembly parse error";
  return false;
}

//===- vm/Program.h - Linked VM programs ------------------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fully linked VM executables: functions with resolved label tables,
/// call targets as function indices, and global data laid out at absolute
/// addresses. This is the input representation of the BRISC compressor
/// ("the Omniware system compresses fully linked executable programs").
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_VM_PROGRAM_H
#define CCOMP_VM_PROGRAM_H

#include "vm/ISA.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccomp {
namespace vm {

/// One function's code. Branch targets are label indices resolved through
/// LabelPos.
struct VMFunction {
  std::string Name;
  uint32_t FrameSize = 0; ///< Bytes subtracted by the prologue's ENTER.
  std::vector<Instr> Code;
  std::vector<uint32_t> LabelPos; ///< Label index -> instruction index.
};

/// A global data object placed at an absolute address.
struct VMGlobal {
  std::string Name;
  uint32_t Addr = 0;
  uint32_t Size = 0;
  std::vector<uint8_t> Init; ///< Empty = zero-initialized.
};

/// Prologue summary used to execute the EPI macro-instruction: which
/// registers the prologue spilled (and where), and the frame size.
struct FuncMeta {
  uint32_t FrameSize = 0;
  struct Save {
    uint8_t Reg;
    int32_t Off;
  };
  std::vector<Save> Saves;
};

/// A linked executable.
struct VMProgram {
  std::vector<VMFunction> Functions;
  std::vector<VMGlobal> Globals;
  uint32_t Entry = 0;       ///< Index of the start function (main).
  uint32_t GlobalBase = 0x100;
  uint32_t GlobalEnd = 0x100; ///< First free address after globals.

  int32_t findFunction(const std::string &Name) const {
    for (uint32_t I = 0; I != Functions.size(); ++I)
      if (Functions[I].Name == Name)
        return static_cast<int32_t>(I);
    return -1;
  }

  const VMGlobal *findGlobal(const std::string &Name) const {
    for (const VMGlobal &G : Globals)
      if (G.Name == Name)
        return &G;
    return nullptr;
  }
};

/// Derives the EPI metadata of \p F by scanning its prologue
/// (ENTER followed by SPILLs).
FuncMeta deriveMeta(const VMFunction &F);

/// Basic-block cut points of a function body with label table
/// \p LabelPos and \p Len instructions: {0} ∪ {labels < Len} ∪ {Len},
/// sorted and deduplicated. Cuts[i]..Cuts[i+1] is block i; every page
/// split and block-granular span in the project derives from this one
/// definition so layouts and traces agree on block identity.
std::vector<uint32_t> blockCuts(const std::vector<uint32_t> &LabelPos,
                                size_t Len);

/// Total instruction count of a program.
uint64_t countInstrs(const VMProgram &P);

/// Validates label/function/register ranges; returns "" or a diagnostic.
std::string verify(const VMProgram &P);

} // namespace vm
} // namespace ccomp

#endif // CCOMP_VM_PROGRAM_H

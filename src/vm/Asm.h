//===- vm/Asm.h - VM assembler / disassembler -------------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual assembly in the paper's notation (ld.iw n0,4(sp); mov.i n4,n0;
/// ble.i n4,0,$L56; spill.i ra,20(sp); ...) with a program-level
/// assembler for tests and a disassembler for debugging and examples.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_VM_ASM_H
#define CCOMP_VM_ASM_H

#include "vm/Program.h"

#include <string>

namespace ccomp {
namespace vm {

/// Prints one instruction (no newline). Branch targets appear as "$Ln",
/// call targets as function names resolved through \p P (or "#idx" when
/// \p P is null).
std::string printInstr(const Instr &In, const VMProgram *P = nullptr);

/// Prints a whole function with labels interleaved.
std::string printFunction(const VMFunction &F, const VMProgram *P = nullptr);

/// Prints a whole program (functions, globals, entry).
std::string printProgram(const VMProgram &P);

/// Parses the printProgram format. Returns false and sets \p Error on
/// malformed input.
bool parseProgram(const std::string &Text, VMProgram &Out,
                  std::string &Error);

} // namespace vm
} // namespace ccomp

#endif // CCOMP_VM_ASM_H

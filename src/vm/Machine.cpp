//===- vm/Machine.cpp - VM state and interpreter ----------------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/Machine.h"

#include "support/Support.h"

#include <algorithm>
#include <cstring>

using namespace ccomp;
using namespace ccomp::vm;

FunctionResolver::~FunctionResolver() = default;

bool FunctionResolver::enterNative(Machine &, uint32_t &, uint32_t &,
                                   uint64_t &) {
  return false; // Default tier: interpret everything.
}

bool FunctionResolver::resolveSpan(uint32_t Fn, uint32_t Idx, CodeSpan &Out,
                                   std::string &Err) {
  (void)Idx; // Whole-function resolvers serve every index from one span.
  std::shared_ptr<const VMFunction> H = resolve(Fn, Err);
  if (!H)
    return false;
  Out.Code = H->Code.data();
  Out.Begin = 0;
  Out.End = static_cast<uint32_t>(H->Code.size());
  Out.FuncLen = Out.End;
  Out.Labels = &H->LabelPos;
  Out.Name = &H->Name;
  Out.Keep = std::move(H);
  return true;
}

ProgramSpanResolver::ProgramSpanResolver(const VMProgram &P) : Prog(P) {
  Cuts.reserve(P.Functions.size());
  for (const VMFunction &F : P.Functions)
    Cuts.push_back(blockCuts(F.LabelPos, F.Code.size()));
}

uint32_t ProgramSpanResolver::functionCount() const {
  return static_cast<uint32_t>(Prog.Functions.size());
}

std::shared_ptr<const VMFunction> ProgramSpanResolver::resolve(uint32_t Fn,
                                                               std::string &Err) {
  if (Fn >= Prog.Functions.size()) {
    Err = "function index out of range";
    return nullptr;
  }
  // Non-owning alias: the program outlives the resolver by contract.
  return std::shared_ptr<const VMFunction>(std::shared_ptr<const VMFunction>(),
                                           &Prog.Functions[Fn]);
}

bool ProgramSpanResolver::resolveSpan(uint32_t Fn, uint32_t Idx, CodeSpan &Out,
                                      std::string &Err) {
  if (Fn >= Prog.Functions.size()) {
    Err = "function index out of range";
    return false;
  }
  const VMFunction &F = Prog.Functions[Fn];
  const std::vector<uint32_t> &C = Cuts[Fn];
  uint32_t Len = static_cast<uint32_t>(F.Code.size());
  if (Len == 0) {
    Out = CodeSpan{};
    Out.Labels = &F.LabelPos;
    Out.Name = &F.Name;
    return true;
  }
  // Clamp like a paged resolver: an Idx at/past the end serves the last
  // block and the interpreter traps on Pc >= FuncLen itself.
  uint32_t I = Idx < Len ? Idx : Len - 1;
  auto It = std::upper_bound(C.begin(), C.end(), I);
  uint32_t Block = static_cast<uint32_t>(It - C.begin()) - 1;
  Out.Keep.reset();
  Out.Code = F.Code.data() + C[Block];
  Out.Begin = C[Block];
  Out.End = C[Block + 1];
  Out.FuncLen = Len;
  Out.Labels = &F.LabelPos;
  Out.Name = &F.Name;
  return true;
}

Machine::Machine(const VMProgram &P, RunOptions Options)
    : Prog(P), Opts(Options) {
  resetState();
}

void Machine::resetState() {
  Mem.assign(Opts.MemBytes, 0);
  for (const VMGlobal &G : Prog.Globals) {
    if (G.Addr + G.Size > Mem.size()) {
      trap("global '" + G.Name + "' does not fit in memory");
      return;
    }
    if (!G.Init.empty())
      std::memcpy(Mem.data() + G.Addr, G.Init.data(), G.Init.size());
  }
  HeapPtr = (Prog.GlobalEnd + 15) & ~15u;
  for (uint32_t &V : R)
    V = 0;
  R[SP] = static_cast<uint32_t>(Mem.size()) & ~15u;
  R[RA] = HaltRA;
}

uint32_t Machine::load(uint32_t Addr, unsigned Size, bool SignExtend) {
  if (Addr < 0x100 || Addr + Size > Mem.size()) {
    trap("load of " + std::to_string(Size) + " bytes at " +
         std::to_string(Addr) + " out of range");
    return 0;
  }
  uint32_t V = 0;
  std::memcpy(&V, Mem.data() + Addr, Size);
  if (SignExtend) {
    if (Size == 1)
      V = static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(V)));
    else if (Size == 2)
      V = static_cast<uint32_t>(
          static_cast<int32_t>(static_cast<int16_t>(V)));
  }
  return V;
}

void Machine::store(uint32_t Addr, unsigned Size, uint32_t V) {
  if (Addr < 0x100 || Addr + Size > Mem.size()) {
    trap("store of " + std::to_string(Size) + " bytes at " +
         std::to_string(Addr) + " out of range");
    return;
  }
  std::memcpy(Mem.data() + Addr, &V, Size);
}

bool Machine::dataStep(const Instr &In) {
  uint32_t *Regs = R;
  auto S32 = [](uint32_t V) { return static_cast<int32_t>(V); };
  switch (In.Op) {
  case VMOp::LD_B:
    setReg(In.Rd, load(Regs[In.Rs1] + In.Imm, 1, true));
    return true;
  case VMOp::LD_BU:
    setReg(In.Rd, load(Regs[In.Rs1] + In.Imm, 1, false));
    return true;
  case VMOp::LD_H:
    setReg(In.Rd, load(Regs[In.Rs1] + In.Imm, 2, true));
    return true;
  case VMOp::LD_HU:
    setReg(In.Rd, load(Regs[In.Rs1] + In.Imm, 2, false));
    return true;
  case VMOp::LD_W:
    setReg(In.Rd, load(Regs[In.Rs1] + In.Imm, 4, false));
    return true;
  case VMOp::ST_B:
    store(Regs[In.Rs1] + In.Imm, 1, Regs[In.Rd]);
    return true;
  case VMOp::ST_H:
    store(Regs[In.Rs1] + In.Imm, 2, Regs[In.Rd]);
    return true;
  case VMOp::ST_W:
    store(Regs[In.Rs1] + In.Imm, 4, Regs[In.Rd]);
    return true;

  case VMOp::ADD: setReg(In.Rd, Regs[In.Rs1] + Regs[In.Rs2]); return true;
  case VMOp::SUB: setReg(In.Rd, Regs[In.Rs1] - Regs[In.Rs2]); return true;
  case VMOp::MUL: setReg(In.Rd, Regs[In.Rs1] * Regs[In.Rs2]); return true;
  case VMOp::DIV: {
    int32_t D = S32(Regs[In.Rs2]);
    if (D == 0 || (S32(Regs[In.Rs1]) == INT32_MIN && D == -1)) {
      trap("integer division overflow");
      return true;
    }
    setReg(In.Rd, static_cast<uint32_t>(S32(Regs[In.Rs1]) / D));
    return true;
  }
  case VMOp::DIVU:
    if (Regs[In.Rs2] == 0) {
      trap("unsigned division by zero");
      return true;
    }
    setReg(In.Rd, Regs[In.Rs1] / Regs[In.Rs2]);
    return true;
  case VMOp::REM: {
    int32_t D = S32(Regs[In.Rs2]);
    if (D == 0 || (S32(Regs[In.Rs1]) == INT32_MIN && D == -1)) {
      trap("integer remainder overflow");
      return true;
    }
    setReg(In.Rd, static_cast<uint32_t>(S32(Regs[In.Rs1]) % D));
    return true;
  }
  case VMOp::REMU:
    if (Regs[In.Rs2] == 0) {
      trap("unsigned remainder by zero");
      return true;
    }
    setReg(In.Rd, Regs[In.Rs1] % Regs[In.Rs2]);
    return true;
  case VMOp::AND: setReg(In.Rd, Regs[In.Rs1] & Regs[In.Rs2]); return true;
  case VMOp::OR:  setReg(In.Rd, Regs[In.Rs1] | Regs[In.Rs2]); return true;
  case VMOp::XOR: setReg(In.Rd, Regs[In.Rs1] ^ Regs[In.Rs2]); return true;
  case VMOp::SLL:
    setReg(In.Rd, Regs[In.Rs1] << (Regs[In.Rs2] & 31));
    return true;
  case VMOp::SRL:
    setReg(In.Rd, Regs[In.Rs1] >> (Regs[In.Rs2] & 31));
    return true;
  case VMOp::SRA:
    setReg(In.Rd,
           static_cast<uint32_t>(S32(Regs[In.Rs1]) >> (Regs[In.Rs2] & 31)));
    return true;

  case VMOp::ADDI:
    setReg(In.Rd, Regs[In.Rs1] + static_cast<uint32_t>(In.Imm));
    return true;
  case VMOp::MULI:
    setReg(In.Rd, Regs[In.Rs1] * static_cast<uint32_t>(In.Imm));
    return true;
  case VMOp::ANDI:
    setReg(In.Rd, Regs[In.Rs1] & static_cast<uint32_t>(In.Imm));
    return true;
  case VMOp::ORI:
    setReg(In.Rd, Regs[In.Rs1] | static_cast<uint32_t>(In.Imm));
    return true;
  case VMOp::XORI:
    setReg(In.Rd, Regs[In.Rs1] ^ static_cast<uint32_t>(In.Imm));
    return true;
  case VMOp::SLLI: setReg(In.Rd, Regs[In.Rs1] << (In.Imm & 31)); return true;
  case VMOp::SRLI: setReg(In.Rd, Regs[In.Rs1] >> (In.Imm & 31)); return true;
  case VMOp::SRAI:
    setReg(In.Rd, static_cast<uint32_t>(S32(Regs[In.Rs1]) >> (In.Imm & 31)));
    return true;

  case VMOp::MOV: setReg(In.Rd, Regs[In.Rs1]); return true;
  case VMOp::NEG: setReg(In.Rd, 0u - Regs[In.Rs1]); return true;
  case VMOp::NOT: setReg(In.Rd, ~Regs[In.Rs1]); return true;
  case VMOp::SXTB:
    setReg(In.Rd, static_cast<uint32_t>(
                      static_cast<int32_t>(static_cast<int8_t>(Regs[In.Rs1]))));
    return true;
  case VMOp::SXTH:
    setReg(In.Rd,
           static_cast<uint32_t>(
               static_cast<int32_t>(static_cast<int16_t>(Regs[In.Rs1]))));
    return true;
  case VMOp::ZXTB: setReg(In.Rd, Regs[In.Rs1] & 0xFF); return true;
  case VMOp::ZXTH: setReg(In.Rd, Regs[In.Rs1] & 0xFFFF); return true;

  case VMOp::LI:
    setReg(In.Rd, static_cast<uint32_t>(In.Imm));
    return true;

  case VMOp::ENTER:
    setReg(SP, R[SP] - static_cast<uint32_t>(In.Imm));
    return true;
  case VMOp::EXIT:
    setReg(SP, R[SP] + static_cast<uint32_t>(In.Imm));
    return true;
  case VMOp::SPILL:
    store(R[SP] + In.Imm, 4, Regs[In.Rd]);
    return true;
  case VMOp::RELOAD:
    setReg(In.Rd, load(R[SP] + In.Imm, 4, false));
    return true;

  case VMOp::MCPY: {
    uint32_t Dst = Regs[In.Rd], Src = Regs[In.Rs1];
    uint32_t Len = static_cast<uint32_t>(In.Imm);
    if (Dst < 0x100 || Src < 0x100 || Dst + Len > Mem.size() ||
        Src + Len > Mem.size()) {
      trap("mcpy out of range");
      return true;
    }
    std::memmove(Mem.data() + Dst, Mem.data() + Src, Len);
    return true;
  }
  case VMOp::MSET: {
    uint32_t Dst = Regs[In.Rd];
    uint32_t Len = static_cast<uint32_t>(In.Imm);
    if (Dst < 0x100 || Dst + Len > Mem.size()) {
      trap("mset out of range");
      return true;
    }
    std::memset(Mem.data() + Dst, static_cast<int>(Regs[In.Rs1] & 0xFF),
                Len);
    return true;
  }

  case VMOp::SYS:
    doSys(In.Imm);
    return true;

  default:
    return false; // Control-flow instruction.
  }
}

bool Machine::branchTaken(const Instr &In) const {
  auto S32 = [](uint32_t V) { return static_cast<int32_t>(V); };
  uint32_t A = R[In.Rs1];
  uint32_t B;
  if (isBranchImm(In.Op))
    B = static_cast<uint32_t>(In.Imm);
  else
    B = R[In.Rs2];
  switch (In.Op) {
  case VMOp::BEQ: case VMOp::BEQI: return A == B;
  case VMOp::BNE: case VMOp::BNEI: return A != B;
  case VMOp::BLT: case VMOp::BLTI: return S32(A) < S32(B);
  case VMOp::BLE: case VMOp::BLEI: return S32(A) <= S32(B);
  case VMOp::BGT: case VMOp::BGTI: return S32(A) > S32(B);
  case VMOp::BGE: case VMOp::BGEI: return S32(A) >= S32(B);
  case VMOp::BLTU: case VMOp::BLTUI: return A < B;
  case VMOp::BLEU: case VMOp::BLEUI: return A <= B;
  case VMOp::BGTU: case VMOp::BGTUI: return A > B;
  case VMOp::BGEU: case VMOp::BGEUI: return A >= B;
  default:
    ccomp_unreachable("not a conditional branch");
  }
}

void Machine::doSys(int32_t Id) {
  switch (static_cast<Sys>(Id)) {
  case Sys::Exit:
    Halted = true;
    Exit = static_cast<int32_t>(R[N0]);
    return;
  case Sys::PutInt:
    Out += std::to_string(static_cast<int32_t>(R[N0]));
    return;
  case Sys::PutChar:
    Out.push_back(static_cast<char>(R[N0] & 0xFF));
    return;
  case Sys::PutStr: {
    uint32_t Addr = R[N0];
    unsigned Guard = 0;
    while (Addr >= 0x100 && Addr < Mem.size() && Mem[Addr] != 0 &&
           Guard++ < (1u << 20))
      Out.push_back(static_cast<char>(Mem[Addr++]));
    return;
  }
  case Sys::Alloc: {
    uint32_t Bytes = (R[N0] + 7) & ~7u;
    // The heap grows toward the stack; leave a 64 KiB safety gap.
    if (HeapPtr + Bytes + 65536 > R[SP]) {
      trap("out of heap memory");
      return;
    }
    uint32_t Addr = HeapPtr;
    HeapPtr += Bytes;
    setReg(N0, Addr);
    return;
  }
  }
  trap("unknown system call " + std::to_string(Id));
}

void Machine::touchCode(uint32_t Fn, uint32_t Idx) {
  if (!Opts.Layout)
    return;
  const CodeLayout &L = *Opts.Layout;
  uint32_t Off = L.FuncBase[Fn] + L.InstrOff[Fn][Idx];
  uint32_t Page = Off / Opts.PageSize;
  if (Page == LastPage)
    return;
  LastPage = Page;
  if (Page >= PageSeen.size())
    PageSeen.resize(Page + 1, 0);
  PageSeen[Page] = 1;
  if (PageTrace.size() < Opts.MaxPageTrace)
    PageTrace.push_back(Page);
}

uint64_t Machine::pagesTouched() const {
  uint64_t N = 0;
  for (uint8_t B : PageSeen)
    N += B;
  return N;
}

uint32_t Machine::execEpi(const FuncMeta &Meta) {
  for (const FuncMeta::Save &S : Meta.Saves)
    setReg(S.Reg, load(R[SP] + S.Off, 4, false));
  setReg(SP, R[SP] + Meta.FrameSize);
  return R[RA];
}

RunResult Machine::run() {
  RunResult Res;
  if (Trapped) {
    Res.Trap = TrapMsg;
    return Res;
  }
  FunctionResolver *Rv = Opts.Resolver;
  const uint32_t FnCount =
      Rv ? Rv->functionCount() : static_cast<uint32_t>(Prog.Functions.size());
  if (FnCount == 0) {
    Res.Trap = "empty program";
    return Res;
  }

  // Per-function EPI metadata, derived on first entry so a resolver-fed
  // run only pays for functions it actually executes.
  std::vector<FuncMeta> Metas(FnCount);
  std::vector<uint8_t> MetaKnown(FnCount, 0);

  uint32_t Fn = Prog.Entry;
  uint32_t Pc = 0;
  uint64_t Steps = 0;

  // The span of code currently executing. Without a resolver (or with a
  // whole-function one) this is the entire body; a page-granular
  // resolver hands out one decoded page at a time, and Span.Keep pins
  // exactly that page while control stays inside it. Any transfer that
  // leaves the span — call, return, a branch to a cold page, or
  // fallthrough off the page's end — re-resolves, so evicted code
  // faults back in at the resolver's granularity.
  CodeSpan Span;
  auto Resolve = [&](uint32_t Id, uint32_t Idx, CodeSpan &Out) -> bool {
    if (!Rv) {
      const VMFunction &Body = Prog.Functions[Id];
      Out = CodeSpan();
      Out.Code = Body.Code.data();
      Out.Begin = 0;
      Out.End = static_cast<uint32_t>(Body.Code.size());
      Out.FuncLen = Out.End;
      Out.Labels = &Body.LabelPos;
      Out.Name = &Body.Name;
      return true;
    }
    std::string Err;
    Out = CodeSpan();
    if (!Rv->resolveSpan(Id, Idx, Out, Err)) {
      trap("resolve function " + std::to_string(Id) + ": " + Err);
      return false;
    }
    return true;
  };
  auto Enter = [&](uint32_t NewFn, uint32_t NewPc) -> bool {
    // A tiering resolver may run hot functions on a faster backend:
    // each time control leaves the fast tier at a cross-function
    // transfer, the hook is consulted again with the new target, until
    // the target is cold (the hook declines) or the run ended inside
    // the tier.
    for (;;) {
      if (NewFn >= FnCount) {
        trap("transfer to unknown function " + std::to_string(NewFn));
        return false;
      }
      if (!Rv || !Rv->enterNative(*this, NewFn, NewPc, Steps))
        break;
      if (Halted || Trapped) {
        // The main loop observes the halt/trap; no span is needed.
        Fn = NewFn;
        Pc = NewPc;
        return true;
      }
    }
    if (!Resolve(NewFn, NewPc, Span))
      return false;
    Fn = NewFn;
    Pc = NewPc;
    return true;
  };
  // EPI metadata scan: walk the prologue (ENTER at instruction 0, then
  // SPILLs) across spans, so a page-granular resolver only decodes the
  // page(s) the prologue occupies. Reuses the executing span when it
  // already covers the scan position. Null on a resolve failure (trap
  // is already set).
  auto MetaOf = [&](uint32_t Id) -> const FuncMeta * {
    if (MetaKnown[Id])
      return &Metas[Id];
    FuncMeta M;
    uint32_t I = 0;
    bool More = true;
    while (More) {
      CodeSpan Local;
      const CodeSpan *S;
      if (Id == Fn && Span.contains(I)) {
        S = &Span;
      } else {
        if (!Resolve(Id, I, Local))
          return nullptr;
        S = &Local;
      }
      More = false;
      while (I < S->End) {
        const Instr &In = S->Code[I - S->Begin];
        if (I == 0 && In.Op == VMOp::ENTER) {
          M.FrameSize = static_cast<uint32_t>(In.Imm);
          ++I;
          continue;
        }
        if (In.Op == VMOp::SPILL) {
          M.Saves.push_back({In.Rd, In.Imm});
          ++I;
          continue;
        }
        break; // First non-prologue instruction ends the scan.
      }
      // The prologue ran to the span's edge with function left to scan.
      if (I == S->End && I < S->FuncLen)
        More = true;
    }
    Metas[Id] = std::move(M);
    MetaKnown[Id] = 1;
    return &Metas[Id];
  };

  if (!Enter(Fn, 0)) {
    Res.Trap = TrapMsg;
    return Res;
  }

  while (!Halted && !Trapped) {
    if (!Span.contains(Pc)) {
      if (Pc >= Span.FuncLen) {
        trap("fell off the end of function " +
             (Span.Name ? *Span.Name : std::string("?")));
        break;
      }
      // Pc is a valid instruction outside the resident span: a page
      // fault. Re-resolve; the resolver decodes just that page.
      if (!Resolve(Fn, Pc, Span))
        break;
      if (!Span.contains(Pc)) {
        trap("resolver span does not cover instruction " +
             std::to_string(Pc));
        break;
      }
    }
    if (++Steps > Opts.MaxSteps) {
      trap("step limit exceeded");
      break;
    }
    touchCode(Fn, Pc);
    const Instr &In = Span.Code[Pc - Span.Begin];
    if (dataStep(In)) {
      ++Pc;
      continue;
    }
    switch (In.Op) {
    case VMOp::JMP:
      Pc = (*Span.Labels)[In.Target];
      break;
    case VMOp::BEQ: case VMOp::BNE: case VMOp::BLT: case VMOp::BLE:
    case VMOp::BGT: case VMOp::BGE: case VMOp::BLTU: case VMOp::BLEU:
    case VMOp::BGTU: case VMOp::BGEU:
    case VMOp::BEQI: case VMOp::BNEI: case VMOp::BLTI: case VMOp::BLEI:
    case VMOp::BGTI: case VMOp::BGEI: case VMOp::BLTUI: case VMOp::BLEUI:
    case VMOp::BGTUI: case VMOp::BGEUI:
      Pc = branchTaken(In) ? (*Span.Labels)[In.Target] : Pc + 1;
      break;
    case VMOp::CALL: {
      // Copy the target out first: Enter() releases the current span,
      // and In points into it.
      uint32_t Callee = In.Target;
      setReg(RA, encodeRet(Fn, Pc + 1));
      Enter(Callee, 0);
      break;
    }
    case VMOp::RJR: {
      uint32_t Addr = R[In.Rd]; // RJR's single register field lives in Rd.
      if (Addr == HaltRA) {
        Halted = true;
        Exit = static_cast<int32_t>(R[N0]);
        break;
      }
      if (!(Addr & 0x80000000u)) {
        trap("rjr through non-code address");
        break;
      }
      Enter(retFunc(Addr), retIdx(Addr));
      break;
    }
    case VMOp::EPI: {
      const FuncMeta *Meta = MetaOf(Fn);
      if (!Meta)
        break; // Trapped while resolving the prologue.
      uint32_t Addr = execEpi(*Meta);
      if (Addr == HaltRA) {
        Halted = true;
        Exit = static_cast<int32_t>(R[N0]);
        break;
      }
      if (!(Addr & 0x80000000u)) {
        trap("epi return through non-code address");
        break;
      }
      Enter(retFunc(Addr), retIdx(Addr));
      break;
    }
    default:
      trap("unhandled opcode in interpreter");
      break;
    }
  }

  Res.Ok = !Trapped;
  Res.ExitCode = Exit;
  Res.Steps = Steps;
  Res.Trap = TrapMsg;
  Res.Output = Out;
  Res.PagesTouched = pagesTouched();
  Res.PageTrace = PageTrace;
  return Res;
}

RunResult vm::runProgram(const VMProgram &P, RunOptions Opts) {
  Machine M(P, Opts);
  return M.run();
}

//===- vm/Encode.cpp - Fixed-width native encoding ---------------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Word layout (little-endian):
//   byte 0: opcode
//   byte 1: (A << 4) | B   -- two register nibbles (or flags, see below)
//   bytes 2-3: 16-bit payload (imm16 / label / function index / rs2)
// A second 4-byte word carries a full 32-bit immediate when the payload
// cannot: payload == 0x8000 marks the extension for imm-payload formats;
// immediate compare-and-branch uses bit 0 of nibble B as the marker (the
// label occupies the payload).
//
//===----------------------------------------------------------------------===//

#include "vm/Encode.h"

#include "support/ByteIO.h"
#include "support/Support.h"

using namespace ccomp;
using namespace ccomp::vm;

namespace {

constexpr uint16_t ExtMarker = 0x8000;

/// Payload classification for an opcode.
enum class PayloadKind { None, Imm, Label, Func, Rs2 };

PayloadKind payloadKind(VMOp Op) {
  if (isBranchImm(Op))
    return PayloadKind::Label; // Imm goes to the extension word.
  switch (Op) {
  case VMOp::JMP:
    return PayloadKind::Label;
  case VMOp::CALL:
    return PayloadKind::Func;
  case VMOp::EPI:
  case VMOp::RJR:
  case VMOp::MOV: case VMOp::NEG: case VMOp::NOT: case VMOp::SXTB:
  case VMOp::SXTH: case VMOp::ZXTB: case VMOp::ZXTH:
    return PayloadKind::None;
  case VMOp::ADD: case VMOp::SUB: case VMOp::MUL: case VMOp::DIV:
  case VMOp::DIVU: case VMOp::REM: case VMOp::REMU: case VMOp::AND:
  case VMOp::OR: case VMOp::XOR: case VMOp::SLL: case VMOp::SRL:
  case VMOp::SRA:
    return PayloadKind::Rs2;
  default:
    if (isBranch(Op))
      return PayloadKind::Label; // Register-register branches.
    return PayloadKind::Imm;
  }
}

bool fitsI16(int32_t V) { return V >= -32768 + 1 && V <= 32767; }

} // namespace

unsigned vm::encodedSize(const Instr &In) {
  PayloadKind K = payloadKind(In.Op);
  if (K == PayloadKind::Imm && !fitsI16(In.Imm))
    return 8;
  if (isBranchImm(In.Op) && In.Imm != 0)
    return 8;
  return 4;
}

std::vector<uint8_t> vm::encodeFunction(const VMFunction &F) {
  std::vector<uint8_t> Out;
  auto Word = [&Out](uint8_t B0, uint8_t B1, uint16_t P) {
    Out.push_back(B0);
    Out.push_back(B1);
    Out.push_back(static_cast<uint8_t>(P));
    Out.push_back(static_cast<uint8_t>(P >> 8));
  };
  auto ExtWord = [&Out](int32_t V) {
    uint32_t U = static_cast<uint32_t>(V);
    Out.push_back(static_cast<uint8_t>(U));
    Out.push_back(static_cast<uint8_t>(U >> 8));
    Out.push_back(static_cast<uint8_t>(U >> 16));
    Out.push_back(static_cast<uint8_t>(U >> 24));
  };

  for (const Instr &In : F.Code) {
    uint8_t Op = static_cast<uint8_t>(In.Op);
    switch (payloadKind(In.Op)) {
    case PayloadKind::None:
      Word(Op, static_cast<uint8_t>((In.Rd << 4) | In.Rs1), 0);
      break;
    case PayloadKind::Rs2:
      Word(Op, static_cast<uint8_t>((In.Rd << 4) | In.Rs1), In.Rs2);
      break;
    case PayloadKind::Func:
      Word(Op, 0, static_cast<uint16_t>(In.Target));
      break;
    case PayloadKind::Label:
      if (isBranchImm(In.Op)) {
        bool Ext = In.Imm != 0;
        Word(Op, static_cast<uint8_t>((In.Rs1 << 4) | (Ext ? 1 : 0)),
             static_cast<uint16_t>(In.Target));
        if (Ext)
          ExtWord(In.Imm);
      } else if (In.Op == VMOp::JMP) {
        Word(Op, 0, static_cast<uint16_t>(In.Target));
      } else {
        // Register-register branch.
        Word(Op, static_cast<uint8_t>((In.Rs1 << 4) | In.Rs2),
             static_cast<uint16_t>(In.Target));
      }
      break;
    case PayloadKind::Imm:
      if (fitsI16(In.Imm)) {
        Word(Op, static_cast<uint8_t>((In.Rd << 4) | In.Rs1),
             static_cast<uint16_t>(In.Imm));
      } else {
        Word(Op, static_cast<uint8_t>((In.Rd << 4) | In.Rs1), ExtMarker);
        ExtWord(In.Imm);
      }
      break;
    }
  }
  return Out;
}

namespace {

std::vector<Instr> decodeFunctionOrThrow(ByteSpan Bytes) {
  std::vector<Instr> Out;
  size_t Pos = 0;
  auto ReadExt = [&]() {
    if (Pos + 4 > Bytes.size())
      decodeFail("vm decode: truncated extension word");
    uint32_t V = Bytes[Pos] | (Bytes[Pos + 1] << 8) |
                 (Bytes[Pos + 2] << 16) |
                 (static_cast<uint32_t>(Bytes[Pos + 3]) << 24);
    Pos += 4;
    return static_cast<int32_t>(V);
  };
  while (Pos + 4 <= Bytes.size()) {
    Instr In;
    In.Op = static_cast<VMOp>(Bytes[Pos]);
    if (In.Op >= VMOp::NumOps)
      decodeFail("vm decode: bad opcode");
    uint8_t Regs = Bytes[Pos + 1];
    uint16_t P = static_cast<uint16_t>(Bytes[Pos + 2] |
                                       (Bytes[Pos + 3] << 8));
    Pos += 4;
    switch (payloadKind(In.Op)) {
    case PayloadKind::None:
      In.Rd = Regs >> 4;
      In.Rs1 = Regs & 15;
      break;
    case PayloadKind::Rs2:
      In.Rd = Regs >> 4;
      In.Rs1 = Regs & 15;
      In.Rs2 = static_cast<uint8_t>(P & 15);
      break;
    case PayloadKind::Func:
      In.Target = P;
      break;
    case PayloadKind::Label:
      if (isBranchImm(In.Op)) {
        In.Rs1 = Regs >> 4;
        In.Target = P;
        if (Regs & 1)
          In.Imm = ReadExt();
      } else if (In.Op == VMOp::JMP) {
        In.Target = P;
      } else {
        In.Rs1 = Regs >> 4;
        In.Rs2 = Regs & 15;
        In.Target = P;
      }
      break;
    case PayloadKind::Imm:
      In.Rd = Regs >> 4;
      In.Rs1 = Regs & 15;
      if (P == ExtMarker)
        In.Imm = ReadExt();
      else
        In.Imm = static_cast<int16_t>(P);
      break;
    }
    Out.push_back(In);
  }
  if (Pos != Bytes.size())
    decodeFail("vm decode: trailing bytes");
  return Out;
}

} // namespace

Result<std::vector<Instr>> vm::tryDecodeFunction(ByteSpan Bytes) {
  return tryDecode([&] { return decodeFunctionOrThrow(Bytes); });
}

std::vector<Instr> vm::decodeFunction(ByteSpan Bytes) {
  Result<std::vector<Instr>> R = tryDecodeFunction(Bytes);
  if (!R.ok())
    reportFatal(R.error().message());
  return R.take();
}

std::vector<uint8_t> vm::encodeProgram(const VMProgram &P) {
  VectorSink Out;
  encodeProgramTo(P, Out);
  return Out.take();
}

void vm::encodeProgramTo(const VMProgram &P, Sink &Out) {
  for (const VMFunction &F : P.Functions)
    Out.write(encodeFunction(F));
}

CodeLayout vm::nativeLayout(const VMProgram &P) {
  CodeLayout L;
  uint32_t Base = 0;
  for (const VMFunction &F : P.Functions) {
    L.FuncBase.push_back(Base);
    std::vector<uint32_t> Offs;
    uint32_t Off = 0;
    for (const Instr &In : F.Code) {
      Offs.push_back(Off);
      Off += encodedSize(In);
    }
    L.InstrOff.push_back(std::move(Offs));
    Base += Off;
  }
  L.TotalBytes = Base;
  return L;
}

//===----------------------------------------------------------------------===//
// Compact (CISC-class) encoding
//===----------------------------------------------------------------------===//

namespace {

/// Zig-zag LEB128 byte length of a value.
unsigned varLen(int64_t V) {
  uint64_t Z = (static_cast<uint64_t>(V) << 1) ^
               static_cast<uint64_t>(V >> 63);
  unsigned N = 1;
  while (Z >= 0x80) {
    Z >>= 7;
    ++N;
  }
  return N;
}

} // namespace

unsigned vm::encodedSizeCompact(const Instr &In) {
  unsigned Bytes = 1; // Opcode.
  unsigned Nibbles = 0;
  unsigned NF = numFields(In.Op);
  const FieldKind *FK = fieldKinds(In.Op);
  for (unsigned F = 0; F != NF; ++F) {
    switch (FK[F]) {
    case FieldKind::Reg:
      ++Nibbles;
      break;
    case FieldKind::Imm:
    case FieldKind::Label:
    case FieldKind::Func:
      Bytes += varLen(getField(In, F));
      break;
    case FieldKind::None:
      break;
    }
  }
  return Bytes + (Nibbles + 1) / 2;
}

std::vector<uint8_t> vm::encodeFunctionCompact(const VMFunction &F) {
  ByteWriter W;
  for (const Instr &In : F.Code) {
    W.writeU8(static_cast<uint8_t>(In.Op));
    unsigned NF = numFields(In.Op);
    const FieldKind *FK = fieldKinds(In.Op);
    // Register nibbles first (packed), then varint fields.
    uint8_t Pending = 0;
    bool Have = false;
    for (unsigned Fi = 0; Fi != NF; ++Fi) {
      if (FK[Fi] != FieldKind::Reg)
        continue;
      uint8_t R = static_cast<uint8_t>(getField(In, Fi)) & 15;
      if (Have) {
        W.writeU8(static_cast<uint8_t>(Pending | (R << 4)));
        Have = false;
      } else {
        Pending = R;
        Have = true;
      }
    }
    if (Have)
      W.writeU8(Pending);
    for (unsigned Fi = 0; Fi != NF; ++Fi)
      if (FK[Fi] == FieldKind::Imm || FK[Fi] == FieldKind::Label ||
          FK[Fi] == FieldKind::Func)
        W.writeVarS(getField(In, Fi));
  }
  return W.take();
}

namespace {

std::vector<Instr> decodeFunctionCompactOrThrow(ByteSpan Bytes) {
  ByteReader R(Bytes);
  std::vector<Instr> Out;
  while (!R.atEnd()) {
    Instr In;
    In.Op = static_cast<VMOp>(R.readU8());
    if (In.Op >= VMOp::NumOps)
      decodeFail("compact decode: bad opcode");
    unsigned NF = numFields(In.Op);
    const FieldKind *FK = fieldKinds(In.Op);
    unsigned Regs = 0;
    for (unsigned Fi = 0; Fi != NF; ++Fi)
      if (FK[Fi] == FieldKind::Reg)
        ++Regs;
    std::vector<uint8_t> Nib;
    for (unsigned I = 0; I < Regs; I += 2) {
      uint8_t B = R.readU8();
      Nib.push_back(B & 15);
      if (I + 1 < Regs)
        Nib.push_back(B >> 4);
    }
    unsigned NibI = 0;
    for (unsigned Fi = 0; Fi != NF; ++Fi)
      if (FK[Fi] == FieldKind::Reg)
        setField(In, Fi, Nib[NibI++]);
    for (unsigned Fi = 0; Fi != NF; ++Fi)
      if (FK[Fi] == FieldKind::Imm || FK[Fi] == FieldKind::Label ||
          FK[Fi] == FieldKind::Func)
        setField(In, Fi, R.readVarS());
    Out.push_back(In);
  }
  return Out;
}

} // namespace

Result<std::vector<Instr>> vm::tryDecodeFunctionCompact(ByteSpan Bytes) {
  return tryDecode([&] { return decodeFunctionCompactOrThrow(Bytes); });
}

std::vector<Instr> vm::decodeFunctionCompact(ByteSpan Bytes) {
  Result<std::vector<Instr>> R = tryDecodeFunctionCompact(Bytes);
  if (!R.ok())
    reportFatal(R.error().message());
  return R.take();
}

std::vector<uint8_t> vm::encodeProgramCompact(const VMProgram &P) {
  std::vector<uint8_t> Out;
  for (const VMFunction &F : P.Functions) {
    std::vector<uint8_t> B = encodeFunctionCompact(F);
    Out.insert(Out.end(), B.begin(), B.end());
  }
  return Out;
}

CodeLayout vm::compactLayout(const VMProgram &P) {
  CodeLayout L;
  uint32_t Base = 0;
  for (const VMFunction &F : P.Functions) {
    L.FuncBase.push_back(Base);
    std::vector<uint32_t> Offs;
    uint32_t Off = 0;
    for (const Instr &In : F.Code) {
      Offs.push_back(Off);
      Off += encodedSizeCompact(In);
    }
    L.InstrOff.push_back(std::move(Offs));
    Base += Off;
  }
  L.TotalBytes = Base;
  return L;
}

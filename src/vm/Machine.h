//===- vm/Machine.h - VM state and interpreter ------------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual machine: registers, flat little-endian memory, system
/// calls, and the reference interpreter. The BRISC in-place interpreter
/// and the threaded-code backend reuse Machine for all architectural
/// state and for the data-instruction semantics, so all three execution
/// engines share one definition of the ISA's behaviour.
///
/// Code addresses (the values in ra) are synthetic: bit 31 set,
/// bits 30..16 = function index, bits 15..0 = instruction index.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_VM_MACHINE_H
#define CCOMP_VM_MACHINE_H

#include "vm/Program.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ccomp {
namespace vm {

class Machine;

/// A resolved, contiguous slice of one function's code — the unit the
/// interpreter executes from. A whole-function resolver hands out the
/// entire body as one span; a page-granular resolver (a paged CodeStore)
/// hands out the decoded page containing the requested instruction, so
/// control transfers into cold pages fault only that page in.
///
/// Code points at the instructions of [Begin, End); indexing is
/// Code[Pc - Begin]. Labels and Name describe the *whole* function (a
/// branch target may land outside this span, which makes the
/// interpreter re-resolve). Keep pins whatever storage Code points
/// into; Labels/Name must outlive the span's use (they typically point
/// into the resolver's own tables or into *Keep). Keep is also what
/// makes multi-tenant serving safe: a shared frame registry may evict
/// the cache entry behind this span at any moment on another tenant's
/// fault, and the shared_ptr keeps the decoded body alive until the
/// interpreter is done with it regardless.
struct CodeSpan {
  std::shared_ptr<const VMFunction> Keep;
  const Instr *Code = nullptr;
  uint32_t Begin = 0;   ///< First instruction index covered.
  uint32_t End = 0;     ///< One past the last instruction covered.
  uint32_t FuncLen = 0; ///< Total instruction count of the function.
  const std::vector<uint32_t> *Labels = nullptr; ///< Function label table.
  const std::string *Name = nullptr;             ///< For diagnostics.

  bool contains(uint32_t Idx) const { return Idx >= Begin && Idx < End; }
};

/// Supplies function bodies to the interpreter on demand. The default
/// (no resolver) executes straight out of VMProgram::Functions; a
/// resolver lets call/return transfers fault bodies in lazily from a
/// compressed store (store::StoreBackedResolver) instead of requiring a
/// fully decoded module up front.
///
/// Thread-safety: resolve()/resolveSpan() may be called from whichever
/// thread runs the Machine; implementations shared between machines must
/// synchronize internally.
class FunctionResolver {
public:
  virtual ~FunctionResolver();

  /// Number of resolvable functions (indices [0, count)).
  virtual uint32_t functionCount() const = 0;

  /// Returns function \p Fn, keeping the body alive at least as long as
  /// the returned handle. Null with \p Err set on a recoverable failure
  /// (e.g. a corrupt compressed frame): the interpreter traps that run
  /// and the process carries on.
  virtual std::shared_ptr<const VMFunction> resolve(uint32_t Fn,
                                                    std::string &Err) = 0;

  /// Resolves the span containing instruction \p Idx of function \p Fn.
  /// The base implementation forwards to resolve() and returns the whole
  /// body as one span; page-granular resolvers override it to decode
  /// only the page holding \p Idx. An \p Idx at or past the end of the
  /// function must still yield a valid span (clamp to the last page) —
  /// the interpreter detects the out-of-range Pc against FuncLen and
  /// traps with the function's name. Returns false with \p Err set on a
  /// recoverable failure.
  virtual bool resolveSpan(uint32_t Fn, uint32_t Idx, CodeSpan &Out,
                           std::string &Err);

  /// Optional execution-tier hook, consulted at every cross-function
  /// transfer (initial entry, call, return) before the span resolve. A
  /// tiering resolver (store::TieredResolver) may run (\p Fn, \p Idx)
  /// on a faster backend: if it executed anything it returns true with
  /// Fn/Idx advanced to where control left the fast tier (or with \p M
  /// halted/trapped), and \p Steps charged one step per executed
  /// instruction exactly as the interpreter would have. The interpreter
  /// re-consults the hook with the updated target, so an implementation
  /// must either make progress or decline. The default declines:
  /// everything interprets.
  virtual bool enterNative(Machine &M, uint32_t &Fn, uint32_t &Idx,
                           uint64_t &Steps);
};

/// A block-granular resolver over a fully decoded program: resolveSpan
/// hands out exactly the basic block (blockCuts) containing the
/// requested instruction, so every control transfer that leaves the
/// current block re-resolves — the same fault pattern a paged CodeStore
/// would see. This is what the trace recorder runs under to observe
/// block-level transfers without any store in the loop. The program must
/// outlive the resolver; spans alias its storage (non-owning Keep).
class ProgramSpanResolver : public FunctionResolver {
public:
  explicit ProgramSpanResolver(const VMProgram &P);

  uint32_t functionCount() const override;
  std::shared_ptr<const VMFunction> resolve(uint32_t Fn,
                                            std::string &Err) override;
  bool resolveSpan(uint32_t Fn, uint32_t Idx, CodeSpan &Out,
                   std::string &Err) override;

private:
  const VMProgram &Prog;
  std::vector<std::vector<uint32_t>> Cuts; ///< Per-function block cuts.
};

/// Optional mapping from (function, instruction) to code byte offsets in
/// some concrete encoding, used for working-set / paging measurements.
struct CodeLayout {
  std::vector<uint32_t> FuncBase;              ///< Per-function byte base.
  std::vector<std::vector<uint32_t>> InstrOff; ///< Per-instr offset in fn.
  uint32_t TotalBytes = 0;
};

/// Interpreter limits and instrumentation switches.
struct RunOptions {
  uint64_t MaxSteps = 4ull << 30;
  size_t MemBytes = 8u << 20;
  const CodeLayout *Layout = nullptr; ///< Enable page tracking when set.
  uint32_t PageSize = 4096;
  size_t MaxPageTrace = 1u << 22;
  /// When set, function bodies come from the resolver and
  /// VMProgram::Functions may be empty (a skeleton holding only
  /// globals/entry). The resolver must outlive the run.
  FunctionResolver *Resolver = nullptr;
};

/// Outcome of a run.
struct RunResult {
  bool Ok = false;          ///< False on trap or step-limit exhaustion.
  int32_t ExitCode = 0;
  uint64_t Steps = 0;
  std::string Trap;         ///< Diagnostic when !Ok.
  std::string Output;       ///< Bytes written by Put* system calls.
  uint64_t PagesTouched = 0;          ///< Distinct code pages executed.
  std::vector<uint32_t> PageTrace;    ///< Run-length page reference string.
};

/// VM architectural state plus the reference interpreter.
class Machine {
public:
  explicit Machine(const VMProgram &P, RunOptions Opts = RunOptions());

  /// Interprets from the entry function until exit/trap/step limit.
  RunResult run();

  //===--------------------------------------------------------------------===
  // Building blocks shared with the BRISC interpreter and the threaded
  // backend. These manipulate this Machine's state directly.
  //===--------------------------------------------------------------------===

  /// Executes a non-control-flow instruction (ALU, loads/stores, LI,
  /// ENTER/EXIT/SPILL/RELOAD, MCPY/MSET). Returns false if \p In is a
  /// control instruction the caller must handle.
  bool dataStep(const Instr &In);

  /// Evaluates a compare-and-branch condition.
  bool branchTaken(const Instr &In) const;

  /// Executes SYS \p Id. Sets Halted on Sys::Exit.
  void doSys(int32_t Id);

  /// Synthetic code addresses.
  static uint32_t encodeRet(uint32_t Func, uint32_t Idx) {
    return 0x80000000u | (Func << 16) | Idx;
  }
  static uint32_t retFunc(uint32_t RA) { return (RA >> 16) & 0x7FFF; }
  static uint32_t retIdx(uint32_t RA) { return RA & 0xFFFF; }
  static constexpr uint32_t HaltRA = 0xFFFFFFFFu;

  /// Halts as if the program returned from its entry function: the exit
  /// status is n0. Used by the alternate execution engines when control
  /// returns through the sentinel ra value.
  void haltWithN0() {
    Halted = true;
    Exit = static_cast<int32_t>(R[N0]);
  }

  /// Halts with an explicit exit status; how the native tier commits a
  /// Sys::Exit or halt-through-ra it executed on borrowed state.
  void haltWithExit(int32_t Code) {
    Halted = true;
    Exit = Code;
  }

  void trap(const std::string &Msg) {
    if (Trapped)
      return;
    Trapped = true;
    TrapMsg = Msg;
  }

  bool halted() const { return Halted || Trapped; }
  bool trapped() const { return Trapped; }
  const std::string &trapMessage() const { return TrapMsg; }
  int32_t exitCode() const { return Exit; }
  const std::string &output() const { return Out; }

  uint32_t reg(unsigned I) const { return R[I]; }
  void setReg(unsigned I, uint32_t V) {
    R[I] = V;
    R[ZR] = 0;
  }

  const VMProgram &program() const { return Prog; }
  const RunOptions &options() const { return Opts; }

  //===--------------------------------------------------------------------===
  // Raw architectural state, for the native tier (native::runTiered):
  // threaded code borrows the register file, memory, heap pointer, and
  // output buffer, executes in place, and commits halts/traps back
  // through haltWithExit()/trap().
  //===--------------------------------------------------------------------===
  uint32_t *regs() { return R; }
  uint8_t *memData() { return Mem.data(); }
  size_t memSize() const { return Mem.size(); }
  uint32_t heapPtr() const { return HeapPtr; }
  void setHeapPtr(uint32_t V) { HeapPtr = V; }
  std::string &outputBuffer() { return Out; }

  /// Records execution of code byte range for instruction \p Idx of
  /// function \p Fn (no-op unless a layout is configured).
  void touchCode(uint32_t Fn, uint32_t Idx);

  uint64_t pagesTouched() const;
  const std::vector<uint32_t> &pageTrace() const { return PageTrace; }

  /// Executes the reloads/exit/return of EPI using \p Meta; returns the
  /// new ra value to jump through.
  uint32_t execEpi(const FuncMeta &Meta);

  // Memory access (bounds-checked; traps on violation).
  uint32_t load(uint32_t Addr, unsigned Size, bool SignExtend);
  void store(uint32_t Addr, unsigned Size, uint32_t V);

private:
  void resetState();

  const VMProgram &Prog;
  RunOptions Opts;

  uint32_t R[16] = {0};
  std::vector<uint8_t> Mem;
  uint32_t HeapPtr = 0;

  bool Halted = false;
  bool Trapped = false;
  int32_t Exit = 0;
  std::string TrapMsg;
  std::string Out;

  // Page tracking.
  std::vector<uint8_t> PageSeen;
  std::vector<uint32_t> PageTrace;
  uint32_t LastPage = ~0u;
};

/// Convenience: build a Machine, run, return the result.
RunResult runProgram(const VMProgram &P, RunOptions Opts = RunOptions());

} // namespace vm
} // namespace ccomp

#endif // CCOMP_VM_MACHINE_H

//===- vm/ISA.h - OmniVM-style RISC instruction set -------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register virtual machine BRISC compresses: a 32-bit RISC with 16
/// integer registers (n0..n11, at, sp, ra, zr), register-displacement
/// addressing, immediate ALU forms, compare-and-branch, and the paper's
/// macro-instructions (enter/exit/spill/reload/epi plus block move/set).
/// This is the stand-in for OmniVM (Adl-Tabatabai et al., PLDI'96).
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_VM_ISA_H
#define CCOMP_VM_ISA_H

#include <cstdint>

namespace ccomp {
namespace vm {

/// Register names. n0..n3 are caller-saved argument/result registers,
/// n4..n11 are callee-saved, at is the assembler temporary, zr reads 0.
enum Reg : uint8_t {
  N0 = 0, N1, N2, N3, N4, N5, N6, N7, N8, N9, N10, N11,
  AT = 12,
  SP = 13,
  RA = 14,
  ZR = 15,
};

/// Base instruction set. Immediate forms are separate opcodes so the
/// de-tuning experiment (section 6) can remove them wholesale.
enum class VMOp : uint8_t {
  // Loads: rd, imm(rs1). Sub-word loads extend per the U suffix.
  LD_B, LD_BU, LD_H, LD_HU, LD_W,
  // Stores: rd (value), imm(rs1).
  ST_B, ST_H, ST_W,

  // Three-register ALU: rd, rs1, rs2.
  ADD, SUB, MUL, DIV, DIVU, REM, REMU,
  AND, OR, XOR, SLL, SRL, SRA,

  // Register-immediate ALU: rd, rs1, imm.
  ADDI, MULI, ANDI, ORI, XORI, SLLI, SRLI, SRAI,

  // Moves and unaries: rd, rs1.
  MOV, NEG, NOT, SXTB, SXTH, ZXTB, ZXTH,

  // Load immediate: rd, imm32.
  LI,

  // Compare-and-branch, register-register: rs1, rs2, label.
  BEQ, BNE, BLT, BLE, BGT, BGE, BLTU, BLEU, BGTU, BGEU,
  // Compare-and-branch, register-immediate: rs1, imm, label.
  BEQI, BNEI, BLTI, BLEI, BGTI, BGEI, BLTUI, BLEUI, BGTUI, BGEUI,

  JMP,  ///< label.
  CALL, ///< function index; sets ra.
  RJR,  ///< rs1: jump through register (function return).

  // Macro-instructions.
  ENTER,  ///< imm: sp -= imm.
  EXIT,   ///< imm: sp += imm.
  SPILL,  ///< rd, imm: store rd at sp+imm (prologue save).
  RELOAD, ///< rd, imm: load rd from sp+imm (epilogue restore).
  EPI,    ///< Whole epilogue: reloads, exit, rjr ra. BRISC-only.
  MCPY,   ///< rd=dst, rs1=src, imm=len: block copy.
  MSET,   ///< rd=dst, rs1=value byte, imm=len: block fill.

  SYS, ///< imm: system call, arguments in n0..; result in n0.

  NumOps
};

/// System call numbers (SYS imm).
enum class Sys : int32_t {
  Exit = 0,     ///< n0 = exit code.
  PutInt = 1,   ///< n0 = value, printed in decimal.
  PutChar = 2,  ///< n0 = character.
  PutStr = 3,   ///< n0 = address of NUL-terminated string.
  Alloc = 4,    ///< n0 = byte count; returns address in n0.
};

/// Kinds of instruction fields, in assembly operand order. These drive
/// BRISC's operand specialization and packing.
enum class FieldKind : uint8_t {
  None,
  Reg,   ///< 4-bit register number.
  Imm,   ///< 32-bit immediate (frame offsets, constants, lengths).
  Label, ///< Branch target: label index within the function.
  Func,  ///< Call target: function index within the program.
};

/// Maximum operand fields of any instruction.
constexpr unsigned MaxFields = 3;

/// A decoded instruction. Field mapping depends on the opcode; see
/// fieldKinds(). Rd doubles as the stored value register for ST_* and as
/// the destination for everything else.
struct Instr {
  VMOp Op = VMOp::NumOps;
  uint8_t Rd = 0;
  uint8_t Rs1 = 0;
  uint8_t Rs2 = 0;
  int32_t Imm = 0;
  uint32_t Target = 0; ///< Label index (branches/JMP) or function (CALL).

  bool operator==(const Instr &O) const {
    return Op == O.Op && Rd == O.Rd && Rs1 == O.Rs1 && Rs2 == O.Rs2 &&
           Imm == O.Imm && Target == O.Target;
  }
};

/// Returns the mnemonic ("ld.iw", "add.i", ...).
const char *opMnemonic(VMOp Op);

/// Returns the operand field kinds of \p Op in assembly order;
/// unused slots are FieldKind::None.
const FieldKind *fieldKinds(VMOp Op);

/// Number of operand fields of \p Op.
unsigned numFields(VMOp Op);

/// Reads operand field \p I (assembly order) from \p In.
int64_t getField(const Instr &In, unsigned I);

/// Writes operand field \p I (assembly order) of \p In.
void setField(Instr &In, unsigned I, int64_t V);

/// True for compare-and-branch / JMP (instructions with a Label field).
bool isBranch(VMOp Op);

/// True for the register-immediate compare-and-branch forms.
bool isBranchImm(VMOp Op);

/// True for opcodes removed by the "minus immediates" de-tuning
/// (immediate ALU forms and immediate branches; LI is the surviving
/// primitive).
bool isImmediateForm(VMOp Op);

/// Register name ("n0".."n11", "at", "sp", "ra", "zr").
const char *regName(unsigned R);

} // namespace vm
} // namespace ccomp

#endif // CCOMP_VM_ISA_H

//===- vm/Program.cpp - Linked VM programs ----------------------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/Program.h"

#include <algorithm>
#include <sstream>

using namespace ccomp;
using namespace ccomp::vm;

FuncMeta vm::deriveMeta(const VMFunction &F) {
  FuncMeta Meta;
  size_t I = 0;
  if (I < F.Code.size() && F.Code[I].Op == VMOp::ENTER) {
    Meta.FrameSize = static_cast<uint32_t>(F.Code[I].Imm);
    ++I;
  }
  while (I < F.Code.size() && F.Code[I].Op == VMOp::SPILL) {
    Meta.Saves.push_back({F.Code[I].Rd, F.Code[I].Imm});
    ++I;
  }
  return Meta;
}

std::vector<uint32_t> vm::blockCuts(const std::vector<uint32_t> &LabelPos,
                                    size_t Len) {
  // A label at Len marks an empty trailing block; no cut needed.
  std::vector<uint32_t> Cuts;
  Cuts.reserve(LabelPos.size() + 2);
  Cuts.push_back(0);
  for (uint32_t L : LabelPos)
    if (L < Len)
      Cuts.push_back(L);
  Cuts.push_back(static_cast<uint32_t>(Len));
  std::sort(Cuts.begin(), Cuts.end());
  Cuts.erase(std::unique(Cuts.begin(), Cuts.end()), Cuts.end());
  return Cuts;
}

uint64_t vm::countInstrs(const VMProgram &P) {
  uint64_t N = 0;
  for (const VMFunction &F : P.Functions)
    N += F.Code.size();
  return N;
}

std::string vm::verify(const VMProgram &P) {
  std::ostringstream Err;
  for (const VMFunction &F : P.Functions) {
    for (size_t I = 0; I != F.Code.size(); ++I) {
      const Instr &In = F.Code[I];
      if (In.Op >= VMOp::NumOps) {
        Err << F.Name << ": bad opcode at " << I;
        return Err.str();
      }
      if (In.Rd > 15 || In.Rs1 > 15 || In.Rs2 > 15) {
        Err << F.Name << ": bad register at " << I;
        return Err.str();
      }
      if (isBranch(In.Op) && In.Target >= F.LabelPos.size()) {
        Err << F.Name << ": branch to unknown label at " << I;
        return Err.str();
      }
      if (In.Op == VMOp::CALL && In.Target >= P.Functions.size()) {
        Err << F.Name << ": call to unknown function at " << I;
        return Err.str();
      }
    }
    for (uint32_t L : F.LabelPos)
      if (L > F.Code.size()) {
        Err << F.Name << ": label position out of range";
        return Err.str();
      }
  }
  return std::string();
}

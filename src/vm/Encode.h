//===- vm/Encode.h - Fixed-width native encoding ----------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "conventional code" encoding: fixed 4-byte instruction words (with
/// a second word for immediates that do not fit in 16 bits, mirroring
/// SPARC's sethi pairs). This is the uncompressed size baseline standing
/// in for the paper's SPARC/Pentium executables, and the byte stream the
/// "gzipped native" baseline compresses.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_VM_ENCODE_H
#define CCOMP_VM_ENCODE_H

#include "support/Error.h"
#include "support/Span.h"
#include "vm/Machine.h"
#include "vm/Program.h"

#include <cstdint>
#include <vector>

namespace ccomp {
namespace vm {

/// Encodes one function's code.
std::vector<uint8_t> encodeFunction(const VMFunction &F);

/// Decodes a function body of unknown provenance. Corrupt bytes yield a
/// typed DecodeError. Label positions are not part of the encoding; pass
/// the original count so the caller can re-attach them.
Result<std::vector<Instr>> tryDecodeFunction(ByteSpan Bytes);

/// Thin aborting wrapper over tryDecodeFunction() for internal callers
/// round-tripping buffers produced by encodeFunction.
std::vector<Instr> decodeFunction(ByteSpan Bytes);

/// Concatenated encoding of every function (the program's code segment).
std::vector<uint8_t> encodeProgram(const VMProgram &P);

/// Same, appending into \p Out without the intermediate whole-program
/// buffer.
void encodeProgramTo(const VMProgram &P, Sink &Out);

/// Byte size of the encoded form of \p In (4 or 8).
unsigned encodedSize(const Instr &In);

/// Builds the CodeLayout of the fixed-width encoding, for working-set
/// measurements of "native" code.
CodeLayout nativeLayout(const VMProgram &P);

//===----------------------------------------------------------------------===//
// Compact (CISC-class) encoding
//===----------------------------------------------------------------------===//
//
// The paper's BRISC table normalizes against Pentium executables, whose
// variable-length encoding averages ~3 bytes per instruction. This
// encoding is that stand-in: opcode byte, register nibbles packed in
// pairs, immediates/labels as zig-zag varints.

/// Byte size of \p In under the compact encoding.
unsigned encodedSizeCompact(const Instr &In);

/// Compact encoding of one function's code.
std::vector<uint8_t> encodeFunctionCompact(const VMFunction &F);

/// Decodes a compact function body of unknown provenance; corrupt bytes
/// yield a typed DecodeError.
Result<std::vector<Instr>> tryDecodeFunctionCompact(ByteSpan Bytes);

/// Thin aborting wrapper over tryDecodeFunctionCompact() (round-trip
/// check for internally produced buffers).
std::vector<Instr> decodeFunctionCompact(ByteSpan Bytes);

/// Compact encoding of the whole program's code segment.
std::vector<uint8_t> encodeProgramCompact(const VMProgram &P);

/// CodeLayout of the compact encoding (working-set measurements against
/// the CISC-class baseline).
CodeLayout compactLayout(const VMProgram &P);

} // namespace vm
} // namespace ccomp

#endif // CCOMP_VM_ENCODE_H

//===- vm/ISA.cpp - OmniVM-style RISC instruction set ----------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/ISA.h"

#include "support/Support.h"

using namespace ccomp;
using namespace ccomp::vm;

const char *vm::opMnemonic(VMOp Op) {
  switch (Op) {
  case VMOp::LD_B: return "ld.ib";
  case VMOp::LD_BU: return "ld.ibu";
  case VMOp::LD_H: return "ld.ih";
  case VMOp::LD_HU: return "ld.ihu";
  case VMOp::LD_W: return "ld.iw";
  case VMOp::ST_B: return "st.ib";
  case VMOp::ST_H: return "st.ih";
  case VMOp::ST_W: return "st.iw";
  case VMOp::ADD: return "add.i";
  case VMOp::SUB: return "sub.i";
  case VMOp::MUL: return "mul.i";
  case VMOp::DIV: return "div.i";
  case VMOp::DIVU: return "div.u";
  case VMOp::REM: return "rem.i";
  case VMOp::REMU: return "rem.u";
  case VMOp::AND: return "and.i";
  case VMOp::OR: return "or.i";
  case VMOp::XOR: return "xor.i";
  case VMOp::SLL: return "sll.i";
  case VMOp::SRL: return "srl.i";
  case VMOp::SRA: return "sra.i";
  case VMOp::ADDI: return "addi.i";
  case VMOp::MULI: return "muli.i";
  case VMOp::ANDI: return "andi.i";
  case VMOp::ORI: return "ori.i";
  case VMOp::XORI: return "xori.i";
  case VMOp::SLLI: return "slli.i";
  case VMOp::SRLI: return "srli.i";
  case VMOp::SRAI: return "srai.i";
  case VMOp::MOV: return "mov.i";
  case VMOp::NEG: return "neg.i";
  case VMOp::NOT: return "not.i";
  case VMOp::SXTB: return "sxt.b";
  case VMOp::SXTH: return "sxt.h";
  case VMOp::ZXTB: return "zxt.b";
  case VMOp::ZXTH: return "zxt.h";
  case VMOp::LI: return "li";
  case VMOp::BEQ: return "beq.i";
  case VMOp::BNE: return "bne.i";
  case VMOp::BLT: return "blt.i";
  case VMOp::BLE: return "ble.i";
  case VMOp::BGT: return "bgt.i";
  case VMOp::BGE: return "bge.i";
  case VMOp::BLTU: return "blt.u";
  case VMOp::BLEU: return "ble.u";
  case VMOp::BGTU: return "bgt.u";
  case VMOp::BGEU: return "bge.u";
  case VMOp::BEQI: return "beqi.i";
  case VMOp::BNEI: return "bnei.i";
  case VMOp::BLTI: return "blti.i";
  case VMOp::BLEI: return "blei.i";
  case VMOp::BGTI: return "bgti.i";
  case VMOp::BGEI: return "bgei.i";
  case VMOp::BLTUI: return "blti.u";
  case VMOp::BLEUI: return "blei.u";
  case VMOp::BGTUI: return "bgti.u";
  case VMOp::BGEUI: return "bgei.u";
  case VMOp::JMP: return "jmp";
  case VMOp::CALL: return "call";
  case VMOp::RJR: return "rjr";
  case VMOp::ENTER: return "enter";
  case VMOp::EXIT: return "exit";
  case VMOp::SPILL: return "spill.i";
  case VMOp::RELOAD: return "reload.i";
  case VMOp::EPI: return "epi";
  case VMOp::MCPY: return "mcpy";
  case VMOp::MSET: return "mset";
  case VMOp::SYS: return "sys";
  case VMOp::NumOps: break;
  }
  ccomp_unreachable("bad VM opcode");
}

namespace {
using FK = FieldKind;
struct FieldDesc {
  FK F[MaxFields];
};
} // namespace

static const FieldDesc &descOf(VMOp Op) {
  static const FieldDesc LdSt = {{FK::Reg, FK::Imm, FK::Reg}};
  static const FieldDesc RRR = {{FK::Reg, FK::Reg, FK::Reg}};
  static const FieldDesc RRI = {{FK::Reg, FK::Reg, FK::Imm}};
  static const FieldDesc RR = {{FK::Reg, FK::Reg, FK::None}};
  static const FieldDesc RI = {{FK::Reg, FK::Imm, FK::None}};
  static const FieldDesc BrRR = {{FK::Reg, FK::Reg, FK::Label}};
  static const FieldDesc BrRI = {{FK::Reg, FK::Imm, FK::Label}};
  static const FieldDesc Lab = {{FK::Label, FK::None, FK::None}};
  static const FieldDesc Fn = {{FK::Func, FK::None, FK::None}};
  static const FieldDesc R1 = {{FK::Reg, FK::None, FK::None}};
  static const FieldDesc I1 = {{FK::Imm, FK::None, FK::None}};
  static const FieldDesc None = {{FK::None, FK::None, FK::None}};

  switch (Op) {
  case VMOp::LD_B: case VMOp::LD_BU: case VMOp::LD_H: case VMOp::LD_HU:
  case VMOp::LD_W: case VMOp::ST_B: case VMOp::ST_H: case VMOp::ST_W:
    return LdSt;
  case VMOp::ADD: case VMOp::SUB: case VMOp::MUL: case VMOp::DIV:
  case VMOp::DIVU: case VMOp::REM: case VMOp::REMU: case VMOp::AND:
  case VMOp::OR: case VMOp::XOR: case VMOp::SLL: case VMOp::SRL:
  case VMOp::SRA:
    return RRR;
  case VMOp::ADDI: case VMOp::MULI: case VMOp::ANDI: case VMOp::ORI:
  case VMOp::XORI: case VMOp::SLLI: case VMOp::SRLI: case VMOp::SRAI:
  case VMOp::MCPY: case VMOp::MSET:
    return RRI;
  case VMOp::MOV: case VMOp::NEG: case VMOp::NOT: case VMOp::SXTB:
  case VMOp::SXTH: case VMOp::ZXTB: case VMOp::ZXTH:
    return RR;
  case VMOp::LI: case VMOp::SPILL: case VMOp::RELOAD:
    return RI;
  case VMOp::BEQ: case VMOp::BNE: case VMOp::BLT: case VMOp::BLE:
  case VMOp::BGT: case VMOp::BGE: case VMOp::BLTU: case VMOp::BLEU:
  case VMOp::BGTU: case VMOp::BGEU:
    return BrRR;
  case VMOp::BEQI: case VMOp::BNEI: case VMOp::BLTI: case VMOp::BLEI:
  case VMOp::BGTI: case VMOp::BGEI: case VMOp::BLTUI: case VMOp::BLEUI:
  case VMOp::BGTUI: case VMOp::BGEUI:
    return BrRI;
  case VMOp::JMP:
    return Lab;
  case VMOp::CALL:
    return Fn;
  case VMOp::RJR:
    return R1;
  case VMOp::ENTER: case VMOp::EXIT: case VMOp::SYS:
    return I1;
  case VMOp::EPI:
    return None;
  case VMOp::NumOps:
    break;
  }
  ccomp_unreachable("bad VM opcode");
}

const FieldKind *vm::fieldKinds(VMOp Op) { return descOf(Op).F; }

unsigned vm::numFields(VMOp Op) {
  const FieldDesc &D = descOf(Op);
  unsigned N = 0;
  while (N < MaxFields && D.F[N] != FK::None)
    ++N;
  return N;
}

/// Maps (opcode, assembly field index) onto Instr storage. Register
/// fields fill Rd, Rs1, Rs2 in order of appearance; Imm and Label/Func
/// use their dedicated slots. Compare-and-branch instructions have no
/// destination, so their register fields start at Rs1 (matching the
/// interpreter's reads).
int64_t vm::getField(const Instr &In, unsigned I) {
  const FieldDesc &D = descOf(In.Op);
  unsigned RegSeen = isBranch(In.Op) ? 1 : 0;
  for (unsigned K = 0; K != MaxFields; ++K) {
    FK F = D.F[K];
    if (F == FK::Reg) {
      if (K == I)
        return RegSeen == 0 ? In.Rd : (RegSeen == 1 ? In.Rs1 : In.Rs2);
      ++RegSeen;
      continue;
    }
    if (K == I) {
      if (F == FK::Imm)
        return In.Imm;
      if (F == FK::Label || F == FK::Func)
        return In.Target;
      break;
    }
  }
  ccomp_unreachable("field index out of range");
}

void vm::setField(Instr &In, unsigned I, int64_t V) {
  const FieldDesc &D = descOf(In.Op);
  unsigned RegSeen = isBranch(In.Op) ? 1 : 0;
  for (unsigned K = 0; K != MaxFields; ++K) {
    FK F = D.F[K];
    if (F == FK::Reg) {
      if (K == I) {
        uint8_t R = static_cast<uint8_t>(V);
        if (RegSeen == 0)
          In.Rd = R;
        else if (RegSeen == 1)
          In.Rs1 = R;
        else
          In.Rs2 = R;
        return;
      }
      ++RegSeen;
      continue;
    }
    if (K == I) {
      if (F == FK::Imm) {
        In.Imm = static_cast<int32_t>(V);
        return;
      }
      if (F == FK::Label || F == FK::Func) {
        In.Target = static_cast<uint32_t>(V);
        return;
      }
      break;
    }
  }
  ccomp_unreachable("field index out of range");
}

bool vm::isBranch(VMOp Op) {
  const FieldDesc &D = descOf(Op);
  for (unsigned K = 0; K != MaxFields; ++K)
    if (D.F[K] == FK::Label)
      return true;
  return false;
}

bool vm::isBranchImm(VMOp Op) {
  return Op >= VMOp::BEQI && Op <= VMOp::BGEUI;
}

bool vm::isImmediateForm(VMOp Op) {
  // The surviving primitive under "minus immediates" is LI; SPILL/RELOAD,
  // ENTER/EXIT, MCPY/MSET and SYS are macro forms the experiment keeps.
  if (Op >= VMOp::ADDI && Op <= VMOp::SRAI)
    return true;
  return isBranchImm(Op);
}

const char *vm::regName(unsigned R) {
  static const char *Names[16] = {"n0", "n1", "n2",  "n3", "n4", "n5",
                                  "n6", "n7", "n8",  "n9", "n10", "n11",
                                  "at", "sp", "ra",  "zr"};
  if (R >= 16)
    return "r?";
  return Names[R];
}

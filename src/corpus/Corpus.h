//===- corpus/Corpus.h - Benchmark program corpus ---------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark corpus standing in for the paper's inputs (icc, gcc,
/// wep, Word97): real algorithmic programs written in the C subset,
/// embedded as source strings, plus a seeded synthetic program generator
/// that scales to gcc-class sizes. Every program is deterministic,
/// self-checking, and prints a final checksum so the three execution
/// engines can be differentially tested on it.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_CORPUS_CORPUS_H
#define CCOMP_CORPUS_CORPUS_H

#include <cstdint>
#include <string>
#include <vector>

namespace ccomp {
namespace corpus {

/// One corpus entry.
struct Program {
  const char *Name;
  const char *Description;
  const char *Source;
};

/// All hand-written corpus programs.
const std::vector<Program> &programs();

/// Finds a program by name; null if absent.
const Program *find(const std::string &Name);

/// Generates a deterministic synthetic translation unit with
/// \p NumFuncs functions whose statement/operator mix follows realistic
/// frequencies. Used to reach the paper's gcc-scale input sizes.
std::string synthesize(unsigned NumFuncs, uint64_t Seed);

/// The three size classes of the paper's wire table (icc / gcc / wep).
/// Small and large are synthesized around the hand-written core.
std::string sizeClassSource(const std::string &Cls);

} // namespace corpus
} // namespace ccomp

#endif // CCOMP_CORPUS_CORPUS_H

//===- corpus/Programs.cpp - Hand-written corpus programs ---------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Each program is deterministic and prints a checksum; exit status is
// checksum & 255. They are written in the compiler's C subset (no
// preprocessor, no floats, no function pointers).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace ccomp;
using namespace ccomp::corpus;

namespace {

//===----------------------------------------------------------------------===//
// expr: a little expression-language interpreter (the icc stand-in: a
// lexer, a recursive-descent parser and a stack machine).
//===----------------------------------------------------------------------===//
const char *ExprSrc = R"CC(
char src[] = "1+2*3; (4+5)*(6-2); 100/5-3*4; 2*(3+4*(5+6)); 7%3+1; "
             "8*8-16/4; (1+2+3+4+5)*6; 9-(8-(7-(6-5))); 3*3*3*3; "
             "(10+20)*(30-40)/5; 1+2-3+4-5+6-7+8-9; 42;";
int pos;
int token;   /* 0 eof, 1 num, 2 op */
int tokval;

int stack[64];
int sp;

void push(int v) { stack[sp++] = v; }
int pop(void) { return stack[--sp]; }

void nexttok(void) {
  char c;
  while (src[pos] == ' ') pos++;
  c = src[pos];
  if (c == 0) { token = 0; return; }
  if (c >= '0' && c <= '9') {
    int v = 0;
    while (src[pos] >= '0' && src[pos] <= '9') {
      v = v * 10 + (src[pos] - '0');
      pos++;
    }
    token = 1;
    tokval = v;
    return;
  }
  token = 2;
  tokval = c;
  pos++;
}

void expr(void);

void primary(void) {
  if (token == 1) {
    push(tokval);
    nexttok();
    return;
  }
  if (token == 2 && tokval == '(') {
    nexttok();
    expr();
    nexttok(); /* ')' */
    return;
  }
  if (token == 2 && tokval == '-') {
    nexttok();
    primary();
    push(-pop());
    return;
  }
  push(0);
}

void term(void) {
  primary();
  while (token == 2 && (tokval == '*' || tokval == '/' || tokval == '%')) {
    int op = tokval;
    int b, a;
    nexttok();
    primary();
    b = pop();
    a = pop();
    if (op == '*') push(a * b);
    else if (op == '/') push(b ? a / b : 0);
    else push(b ? a % b : 0);
  }
}

void expr(void) {
  term();
  while (token == 2 && (tokval == '+' || tokval == '-')) {
    int op = tokval;
    int b, a;
    nexttok();
    term();
    b = pop();
    a = pop();
    if (op == '+') push(a + b);
    else push(a - b);
  }
}

int main(void) {
  int sum = 0;
  int count = 0;
  pos = 0;
  nexttok();
  while (token != 0) {
    expr();
    sum = sum * 31 + pop();
    count++;
    if (token == 2 && tokval == ';') nexttok();
  }
  sum = sum ^ (count << 16);
  print_int(sum);
  print_char('\n');
  return sum & 255;
}
)CC";

//===----------------------------------------------------------------------===//
// pack: an LZSS-style compressor/decompressor with verification (the
// wep compression-utility stand-in).
//===----------------------------------------------------------------------===//
const char *PackSrc = R"CC(
unsigned char data[4096];
unsigned char packed[8192];
unsigned char out[4096];
int datalen;

void builddata(void) {
  int i;
  unsigned seed = 12345;
  datalen = 4096;
  for (i = 0; i < datalen; i++) {
    seed = seed * 1103515245 + 12345;
    if ((seed >> 16) % 4 == 0)
      data[i] = (unsigned char)((seed >> 8) & 63);
    else
      data[i] = (unsigned char)('a' + i % 7);
  }
}

int match(int pos, int cand, int limit) {
  int n = 0;
  while (n < limit && data[cand + n] == data[pos + n]) n++;
  return n;
}

int compress(void) {
  int pos = 0;
  int outp = 0;
  while (pos < datalen) {
    int bestlen = 0, bestoff = 0;
    int start = pos - 255;
    int cand;
    if (start < 0) start = 0;
    for (cand = start; cand < pos; cand++) {
      int limit = datalen - pos;
      int n;
      if (limit > 63) limit = 63;
      n = match(pos, cand, limit);
      if (n > bestlen) { bestlen = n; bestoff = pos - cand; }
    }
    if (bestlen >= 3) {
      packed[outp++] = (unsigned char)(128 + bestlen);
      packed[outp++] = (unsigned char)bestoff;
      pos += bestlen;
    } else {
      packed[outp++] = data[pos] & 127;
      pos++;
    }
  }
  return outp;
}

int expand(int plen) {
  int inp = 0, outp = 0;
  while (inp < plen) {
    int b = packed[inp++];
    if (b >= 128) {
      int len = b - 128;
      int off = packed[inp++];
      int i;
      for (i = 0; i < len; i++) {
        out[outp] = out[outp - off];
        outp++;
      }
    } else {
      out[outp++] = (unsigned char)b;
    }
  }
  return outp;
}

int main(void) {
  int plen, olen, i, ok, sum;
  builddata();
  plen = compress();
  olen = expand(plen);
  ok = olen == datalen;
  for (i = 0; i < datalen && ok; i++)
    if ((data[i] & 127) != out[i]) ok = 0;
  sum = plen * 2 + ok * 100000;
  print_int(sum);
  print_char('\n');
  return sum & 255;
}
)CC";

//===----------------------------------------------------------------------===//
// qsort: quicksort with insertion-sort finish over a PRNG array.
//===----------------------------------------------------------------------===//
const char *QsortSrc = R"CC(
int a[2000];
unsigned seed;

int nextrand(void) {
  seed = seed * 1103515245 + 12345;
  return (int)((seed >> 8) & 32767);
}

void sort(int lo, int hi) {
  int i, j, pivot, t;
  if (hi - lo < 8) {
    for (i = lo + 1; i <= hi; i++) {
      t = a[i];
      j = i - 1;
      while (j >= lo && a[j] > t) { a[j + 1] = a[j]; j--; }
      a[j + 1] = t;
    }
    return;
  }
  pivot = a[(lo + hi) / 2];
  i = lo; j = hi;
  while (i <= j) {
    while (a[i] < pivot) i++;
    while (a[j] > pivot) j--;
    if (i <= j) {
      t = a[i]; a[i] = a[j]; a[j] = t;
      i++; j--;
    }
  }
  if (lo < j) sort(lo, j);
  if (i < hi) sort(i, hi);
}

int main(void) {
  int i, sum = 0, sorted = 1;
  seed = 42;
  for (i = 0; i < 2000; i++) a[i] = nextrand();
  sort(0, 1999);
  for (i = 1; i < 2000; i++) if (a[i - 1] > a[i]) sorted = 0;
  for (i = 0; i < 2000; i += 97) sum = sum * 17 + a[i];
  sum = sum + sorted * 1000000;
  print_int(sum);
  print_char('\n');
  return sum & 255;
}
)CC";

//===----------------------------------------------------------------------===//
// matmul: fixed-point matrix multiply with a checksum.
//===----------------------------------------------------------------------===//
const char *MatmulSrc = R"CC(
int A[40][40];
int B[40][40];
int C[40][40];

int main(void) {
  int i, j, k, sum = 0;
  for (i = 0; i < 40; i++)
    for (j = 0; j < 40; j++) {
      A[i][j] = (i * 7 + j * 3) % 64 - 32;
      B[i][j] = (i * 5 - j * 11) % 64;
    }
  for (i = 0; i < 40; i++)
    for (j = 0; j < 40; j++) {
      int acc = 0;
      for (k = 0; k < 40; k++) acc += A[i][k] * B[k][j];
      C[i][j] = acc >> 4;
    }
  for (i = 0; i < 40; i++) sum = sum * 13 + C[i][(i * 3) % 40];
  print_int(sum);
  print_char('\n');
  return sum & 255;
}
)CC";

//===----------------------------------------------------------------------===//
// crc: CRC-32 table generation and message hashing.
//===----------------------------------------------------------------------===//
const char *CrcSrc = R"CC(
unsigned table[256];
char msg[] = "the quick brown fox jumps over the lazy dog";

void buildtable(void) {
  unsigned c;
  int n, k;
  for (n = 0; n < 256; n++) {
    c = (unsigned)n;
    for (k = 0; k < 8; k++) {
      if (c & 1) c = 0xedb88320u ^ (c >> 1);
      else c = c >> 1;
    }
    table[n] = c;
  }
}

unsigned crc32(char *buf, int len) {
  unsigned c = 0xffffffffu;
  int i;
  for (i = 0; i < len; i++)
    c = table[(c ^ (unsigned char)buf[i]) & 255] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

int main(void) {
  unsigned h = 0;
  int round;
  int len = 0;
  buildtable();
  while (msg[len]) len++;
  for (round = 0; round < 200; round++) {
    msg[0] = (char)('a' + round % 26);
    h = h * 31 + crc32(msg, len);
  }
  print_int((int)h);
  print_char('\n');
  return (int)(h & 255u);
}
)CC";

//===----------------------------------------------------------------------===//
// sieve: prime sieve plus simple factor counting.
//===----------------------------------------------------------------------===//
const char *SieveSrc = R"CC(
char flags[10000];

int main(void) {
  int i, k, count = 0, sum = 0;
  for (i = 2; i < 10000; i++) flags[i] = 1;
  for (i = 2; i < 10000; i++) {
    if (!flags[i]) continue;
    count++;
    if (count % 100 == 0) sum += i;
    for (k = i + i; k < 10000; k += i) flags[k] = 0;
  }
  sum = sum * 100 + count;
  print_int(sum);
  print_char('\n');
  return sum & 255;
}
)CC";

//===----------------------------------------------------------------------===//
// lists: heap-allocated singly linked lists (insert, reverse, merge).
//===----------------------------------------------------------------------===//
const char *ListsSrc = R"CC(
struct Node { int value; struct Node *next; };

struct Node *cons(int v, struct Node *rest) {
  struct Node *n = alloc(sizeof(struct Node));
  n->value = v;
  n->next = rest;
  return n;
}

struct Node *reverse(struct Node *l) {
  struct Node *r = 0;
  while (l) {
    struct Node *next = l->next;
    l->next = r;
    r = l;
    l = next;
  }
  return r;
}

struct Node *merge(struct Node *a, struct Node *b) {
  struct Node *head = 0;
  struct Node **tail = &head;
  while (a && b) {
    if (a->value <= b->value) { *tail = a; tail = &a->next; a = a->next; }
    else { *tail = b; tail = &b->next; b = b->next; }
  }
  *tail = a ? a : b;
  return head;
}

int sumlist(struct Node *l) {
  int s = 0;
  while (l) { s = s * 3 + l->value; l = l->next; }
  return s;
}

int main(void) {
  struct Node *evens = 0;
  struct Node *odds = 0;
  struct Node *all;
  int i, sum;
  for (i = 40; i > 0; i--) {
    if (i % 2 == 0) evens = cons(i, evens);
    else odds = cons(i, odds);
  }
  all = merge(evens, odds);
  all = reverse(all);
  sum = sumlist(all);
  print_int(sum);
  print_char('\n');
  return sum & 255;
}
)CC";

//===----------------------------------------------------------------------===//
// strings: a small string library and its self-test.
//===----------------------------------------------------------------------===//
const char *StringsSrc = R"CC(
int slen(char *s) { int n = 0; while (s[n]) n++; return n; }

void scpy(char *d, char *s) { while ((*d++ = *s++)) ; }

int scmp(char *a, char *b) {
  while (*a && *a == *b) { a++; b++; }
  return *a - *b;
}

void scat(char *d, char *s) {
  while (*d) d++;
  scpy(d, s);
}

void srev(char *s) {
  int i = 0, j = slen(s) - 1;
  while (i < j) {
    char t = s[i];
    s[i] = s[j];
    s[j] = t;
    i++; j--;
  }
}

void itoa(int v, char *out) {
  char tmp[16];
  int n = 0, neg = 0, i = 0;
  if (v < 0) { neg = 1; v = -v; }
  do { tmp[n++] = (char)('0' + v % 10); v /= 10; } while (v);
  if (neg) out[i++] = '-';
  while (n) out[i++] = tmp[--n];
  out[i] = 0;
}

int atoi_(char *s) {
  int v = 0, neg = 0;
  if (*s == '-') { neg = 1; s++; }
  while (*s >= '0' && *s <= '9') v = v * 10 + (*s++ - '0');
  return neg ? -v : v;
}

char buf[128];
char buf2[64];

int main(void) {
  int sum = 0, i;
  scpy(buf, "code");
  scat(buf, " compression");
  sum += slen(buf);                      /* 16 */
  srev(buf);
  sum = sum * 31 + buf[0];               /* 'n' */
  srev(buf);
  sum = sum * 31 + (scmp(buf, "code compression") == 0);
  for (i = -3; i <= 3; i++) {
    itoa(i * 1234, buf2);
    sum = sum * 7 + atoi_(buf2);
  }
  print_str(buf);
  print_char(' ');
  print_int(sum);
  print_char('\n');
  return sum & 255;
}
)CC";

//===----------------------------------------------------------------------===//
// life: Conway's game of life on a torus, checksummed generations.
//===----------------------------------------------------------------------===//
const char *LifeSrc = R"CC(
char grid[32][32];
char next[32][32];

int main(void) {
  int gen, x, y, sum = 0;
  unsigned seed = 7;
  for (y = 0; y < 32; y++)
    for (x = 0; x < 32; x++) {
      seed = seed * 1103515245 + 12345;
      grid[y][x] = (char)((seed >> 20) & 1);
    }
  for (gen = 0; gen < 24; gen++) {
    for (y = 0; y < 32; y++)
      for (x = 0; x < 32; x++) {
        int n = 0, dy, dx;
        for (dy = -1; dy <= 1; dy++)
          for (dx = -1; dx <= 1; dx++) {
            if (dy == 0 && dx == 0) continue;
            n += grid[(y + dy + 32) & 31][(x + dx + 32) & 31];
          }
        if (grid[y][x]) next[y][x] = (char)(n == 2 || n == 3);
        else next[y][x] = (char)(n == 3);
      }
    for (y = 0; y < 32; y++)
      for (x = 0; x < 32; x++) grid[y][x] = next[y][x];
  }
  for (y = 0; y < 32; y++)
    for (x = 0; x < 32; x++) sum += grid[y][x] << ((x + y) & 7);
  print_int(sum);
  print_char('\n');
  return sum & 255;
}
)CC";

//===----------------------------------------------------------------------===//
// queens: N-queens backtracking counter.
//===----------------------------------------------------------------------===//
const char *QueensSrc = R"CC(
int cols[16];
int diag1[32];
int diag2[32];
int n;

int solve(int row) {
  int c, found = 0;
  if (row == n) return 1;
  for (c = 0; c < n; c++) {
    if (cols[c] || diag1[row + c] || diag2[row - c + n]) continue;
    cols[c] = diag1[row + c] = diag2[row - c + n] = 1;
    found += solve(row + 1);
    cols[c] = diag1[row + c] = diag2[row - c + n] = 0;
  }
  return found;
}

int main(void) {
  int total = 0;
  for (n = 4; n <= 9; n++) {
    int i;
    for (i = 0; i < 16; i++) cols[i] = 0;
    for (i = 0; i < 32; i++) { diag1[i] = 0; diag2[i] = 0; }
    total = total * 10 + solve(0) % 10;
  }
  print_int(total);
  print_char('\n');
  return total & 255;
}
)CC";

//===----------------------------------------------------------------------===//
// dhry: a dhrystone-flavored mix of records, strings and control flow.
//===----------------------------------------------------------------------===//
const char *DhrySrc = R"CC(
struct Record {
  int kind;
  int intcomp;
  char strcomp[32];
  struct Record *ptrcomp;
};

struct Record recA;
struct Record recB;
int intglob;
char chglob;

int func1(char c1, char c2) {
  char loc = c1;
  if (loc != c2) return 0;
  chglob = loc;
  return 1;
}

int func2(char *s1, char *s2) {
  int i = 0;
  while (s1[i] == s2[i] && s1[i]) i++;
  if (s1[i] == 0 && s2[i] == 0) {
    chglob = 'A';
    return 0;
  }
  if (s1[i] > s2[i]) {
    intglob = intglob + 10;
    return 1;
  }
  return -1;
}

void proc3(struct Record **target) {
  if (recA.ptrcomp) *target = recA.ptrcomp;
  intglob = 5;
}

void proc2(int *x) {
  int loc = *x + 10;
  for (;;) {
    if (chglob == 'A') { loc--; *x = loc - intglob; break; }
  }
}

void proc1(struct Record *p) {
  struct Record *nx = p->ptrcomp;
  *nx = *p;
  nx->intcomp = 5;
  proc3(&nx->ptrcomp);
  if (nx->kind == 0) {
    nx->intcomp = 6;
    proc2(&nx->intcomp);
  }
}

void scopy(char *d, char *s) { while ((*d++ = *s++)) ; }

int main(void) {
  int run, sum = 0;
  scopy(recB.strcomp, "DHRYSTONE PROGRAM");
  recA.ptrcomp = &recB;
  recA.kind = 0;
  recA.intcomp = 40;
  scopy(recA.strcomp, "DHRYSTONE PROGRAM");
  for (run = 0; run < 500; run++) {
    int v = run % 7;
    chglob = 'A';
    proc1(&recA);
    if (func1((char)('A' + v % 2), 'A')) sum += 1;
    if (func2(recA.strcomp, recB.strcomp) == 0) sum += 2;
    sum = sum * 3 + recB.intcomp + intglob;
    sum &= 0xffffff;
  }
  print_int(sum);
  print_char('\n');
  return sum & 255;
}
)CC";

//===----------------------------------------------------------------------===//
// huff: byte-frequency Huffman tree construction and coding cost.
//===----------------------------------------------------------------------===//
const char *HuffSrc = R"CC(
char text[] = "this is a test of the huffman tree builder; "
              "the builder builds a tree of the byte frequencies "
              "and computes the total coded size in bits.";
int freq[128];
int left[256];
int right[256];
int weight[256];
int alive[256];

int main(void) {
  int i, nodes = 0, bits = 0, n;
  for (i = 0; text[i]; i++) freq[text[i] & 127]++;
  for (i = 0; i < 128; i++)
    if (freq[i]) {
      weight[nodes] = freq[i];
      left[nodes] = -1;
      right[nodes] = -1 - i;
      alive[nodes] = 1;
      nodes++;
    }
  n = nodes;
  while (n > 1) {
    int a = -1, b = -1;
    for (i = 0; i < nodes; i++) {
      if (!alive[i]) continue;
      if (a < 0 || weight[i] < weight[a]) { b = a; a = i; }
      else if (b < 0 || weight[i] < weight[b]) b = i;
    }
    alive[a] = 0;
    alive[b] = 0;
    weight[nodes] = weight[a] + weight[b];
    left[nodes] = a;
    right[nodes] = b;
    alive[nodes] = 1;
    nodes++;
    n--;
  }
  /* Total bits = sum over internal nodes of their weights. */
  for (i = 0; i < nodes; i++)
    if (left[i] >= 0) bits += weight[i];
  bits = bits * 1000 + nodes;
  print_int(bits);
  print_char('\n');
  return bits & 255;
}
)CC";

//===----------------------------------------------------------------------===//
// hash: open-addressing hash table workout.
//===----------------------------------------------------------------------===//
const char *HashSrc = R"CC(
int keys[1024];
int vals[1024];
char used[1024];

unsigned hash(unsigned k) {
  k ^= k >> 16;
  k *= 0x45d9f3bu;
  k ^= k >> 16;
  return k;
}

void insert(int k, int v) {
  unsigned i = hash((unsigned)k) & 1023;
  while (used[i] && keys[i] != k) i = (i + 1) & 1023;
  used[i] = 1;
  keys[i] = k;
  vals[i] = v;
}

int get(int k) {
  unsigned i = hash((unsigned)k) & 1023;
  while (used[i]) {
    if (keys[i] == k) return vals[i];
    i = (i + 1) & 1023;
  }
  return -1;
}

int main(void) {
  int i, sum = 0;
  for (i = 0; i < 700; i++) insert(i * 37 + 11, i * i);
  for (i = 0; i < 700; i++) {
    int v = get(i * 37 + 11);
    if (v != i * i) sum += 1000000;
    sum = (sum + v) & 0xfffffff;
  }
  if (get(99999) != -1) sum += 5000000;
  print_int(sum);
  print_char('\n');
  return sum & 255;
}
)CC";

const std::vector<Program> AllPrograms = {
    {"expr", "expression-language interpreter (icc stand-in)", ExprSrc},
    {"pack", "LZSS-style compressor with verification (wep stand-in)",
     PackSrc},
    {"qsort", "quicksort with insertion-sort finish", QsortSrc},
    {"matmul", "fixed-point matrix multiply", MatmulSrc},
    {"crc", "CRC-32 table generation and hashing", CrcSrc},
    {"sieve", "prime sieve", SieveSrc},
    {"lists", "heap-allocated linked lists", ListsSrc},
    {"strings", "string library self-test", StringsSrc},
    {"life", "Conway's game of life", LifeSrc},
    {"queens", "N-queens backtracking", QueensSrc},
    {"dhry", "dhrystone-flavored record/string mix", DhrySrc},
    {"huff", "Huffman tree construction", HuffSrc},
    {"hash", "open-addressing hash table", HashSrc},
};

} // namespace

const std::vector<Program> &corpus::programs() { return AllPrograms; }

const Program *corpus::find(const std::string &Name) {
  for (const Program &P : AllPrograms)
    if (Name == P.Name)
      return &P;
  return nullptr;
}

//===- corpus/Synth.cpp - Synthetic program generator --------------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Generates deterministic C-subset translation units whose statement and
// operator mixes follow realistic frequencies (assignments and loops
// dominate; constants come from small pools; functions call earlier
// functions). This is how the harness reaches the paper's gcc-class
// input sizes without shipping gcc.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include "support/PRNG.h"
#include "support/Support.h"

#include <sstream>

using namespace ccomp;
using namespace ccomp::corpus;

namespace {

/// Small constant pools: real code reuses a handful of literals.
const int SmallConsts[] = {0, 1, 2, 3, 4, 8, 10, 16, 32, 64, 100, 255};

class Synth {
public:
  Synth(unsigned NumFuncs, uint64_t Seed) : N(NumFuncs), Rng(Seed) {}

  std::string run() {
    OS << "/* synthetic translation unit: " << N << " functions */\n";
    OS << "int sdata[512];\n";
    OS << "char sbytes[256];\n";
    OS << "int sacc;\n";
    OS << "struct SPair { int first; int second; };\n";
    OS << "struct SPair spairs[64];\n";
    for (unsigned I = 0; I != N; ++I)
      genFunction(I);
    genMain();
    return OS.str();
  }

private:
  std::string smallConst() {
    return std::to_string(SmallConsts[Rng.below(12)]);
  }

  /// Medium constants give each call site distinct immediate bytes, the
  /// way real programs mix favorite literals with one-off offsets.
  std::string mixedConst() {
    if (Rng.chance(3, 5))
      return smallConst();
    return std::to_string(Rng.below(4096));
  }

  std::string var(unsigned NumLocals) {
    unsigned I = static_cast<unsigned>(Rng.below(NumLocals + 2));
    if (I == 0)
      return "a";
    if (I == 1)
      return "b";
    return "v" + std::to_string(I - 2);
  }

  std::string arith(unsigned NumLocals, int Depth = 0) {
    if (Depth > 2 || Rng.chance(2, 5)) {
      if (Rng.chance(1, 8))
        return "salt";
      return Rng.chance(3, 5) ? var(NumLocals) : mixedConst();
    }
    static const char *Ops[] = {" + ", " - ", " * ", " & ", " | ",
                                " ^ ", " << ", " >> "};
    const char *Op = Ops[Rng.below(8)];
    std::string L = arith(NumLocals, Depth + 1);
    std::string R = arith(NumLocals, Depth + 1);
    if (Op[1] == '<' || Op[1] == '>')
      R = "(" + R + " & 7)";
    return "(" + L + Op + R + ")";
  }

  std::string cond(unsigned NumLocals) {
    static const char *Rel[] = {" < ", " > ", " <= ", " >= ", " == ",
                                " != "};
    return var(NumLocals) + Rel[Rng.below(6)] +
           (Rng.chance(1, 2) ? smallConst() : var(NumLocals));
  }

  void genStatement(unsigned NumLocals, unsigned FuncIdx, int Indent) {
    std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
    switch (Rng.below(10)) {
    case 0: // Array store.
      OS << Pad << "sdata[(" << var(NumLocals) << " + "
         << Rng.below(512) << ") & 511] = " << arith(NumLocals) << ";\n";
      break;
    case 1: // Byte store.
      OS << Pad << "sbytes[" << var(NumLocals) << " & 255] = (char)("
         << arith(NumLocals) << ");\n";
      break;
    case 2: // Bounded for loop.
      OS << Pad << "for (i = 0; i < (" << var(NumLocals)
         << " & 7) + 2; i++) {\n";
      OS << Pad << "  s += sdata[(i + " << var(NumLocals) << " + "
         << Rng.below(512) << ") & 511] "
         << (Rng.chance(1, 2) ? "*" : "+") << " " << mixedConst()
         << ";\n";
      if (Rng.chance(1, 2))
        OS << Pad << "  s ^= i << (" << smallConst() << " & 7);\n";
      OS << Pad << "}\n";
      break;
    case 3: // If/else.
      OS << Pad << "if (" << cond(NumLocals) << ") s += "
         << arith(NumLocals) << ";\n";
      if (Rng.chance(1, 2))
        OS << Pad << "else s -= " << var(NumLocals) << ";\n";
      break;
    case 4: // Call an earlier function.
      if (FuncIdx > 0) {
        unsigned Callee = static_cast<unsigned>(Rng.below(FuncIdx));
        OS << Pad << "s += syn" << Callee << "(" << var(NumLocals)
           << " & 15, " << smallConst() << ");\n";
        break;
      }
      OS << Pad << "sacc += " << var(NumLocals) << ";\n";
      break;
    case 5: // Switch.
      OS << Pad << "switch (" << var(NumLocals) << " & 3) {\n";
      OS << Pad << "case 0: s += " << smallConst() << "; break;\n";
      OS << Pad << "case 1: s ^= " << var(NumLocals) << "; break;\n";
      OS << Pad << "case 2: s = s * 3 + 1; break;\n";
      OS << Pad << "default: s--; break;\n";
      OS << Pad << "}\n";
      break;
    case 6: // Struct field work.
      OS << Pad << "spairs[" << var(NumLocals) << " & 63].first = "
         << arith(NumLocals) << ";\n";
      OS << Pad << "s += spairs[" << var(NumLocals)
         << " & 63].first - spairs[" << smallConst()
         << " & 63].second;\n";
      break;
    case 7: // While with explicit bound.
      OS << Pad << "{ int n = 0; while (s > " << smallConst()
         << " && n++ < 8) s = s / 2 + " << var(NumLocals) << "; }\n";
      break;
    case 8: // Plain assignments.
      OS << Pad << var(NumLocals) << " = " << arith(NumLocals) << ";\n";
      break;
    default: // Accumulate.
      OS << Pad << "s = s * " << (1 + Rng.below(7)) << " + ("
         << arith(NumLocals) << ");\n";
      break;
    }
  }

  void genFunction(unsigned Idx) {
    unsigned NumLocals = 1 + static_cast<unsigned>(Rng.below(4));
    OS << "int syn" << Idx << "(int a, int b) {\n";
    OS << "  int i, s = " << smallConst() << ";\n";
    OS << "  int salt = " << Rng.below(8192) << ";\n";
    for (unsigned I = 0; I != NumLocals; ++I)
      OS << "  int v" << I << " = "
         << (Rng.chance(1, 2) ? ("a + " + smallConst())
                              : ("b * " + std::to_string(1 + Rng.below(5))))
         << ";\n";
    unsigned Stmts = 3 + static_cast<unsigned>(Rng.below(8));
    for (unsigned S = 0; S != Stmts; ++S)
      genStatement(NumLocals, Idx, 1);
    OS << "  sacc = sacc * 5 + s;\n";
    OS << "  return s & 0xffff;\n";
    OS << "}\n";
  }

  void genMain() {
    OS << "int main(void) {\n";
    OS << "  int r = 0, rep;\n";
    // Call a bounded sample, repeatedly, so the unit has measurable
    // runtime without depending on its size.
    OS << "  for (rep = 0; rep < 8; rep++) {\n";
    unsigned Stride = N > 64 ? N / 64 : 1;
    for (unsigned I = 0; I < N; I += Stride)
      OS << "    r = r * 31 + syn" << I << "(" << (I % 13 + 1) << ", "
         << (I % 7 + 1) << ");\n";
    OS << "  }\n";
    OS << "  r ^= sacc;\n";
    OS << "  print_int(r);\n";
    OS << "  print_char('\\n');\n";
    OS << "  return r & 255;\n";
    OS << "}\n";
  }

  unsigned N;
  PRNG Rng;
  std::ostringstream OS;
};

} // namespace

std::string corpus::synthesize(unsigned NumFuncs, uint64_t Seed) {
  Synth S(NumFuncs, Seed);
  return S.run();
}

std::string corpus::sizeClassSource(const std::string &Cls) {
  // The three size classes of the paper's wire-format table.
  if (Cls == "wep")
    return synthesize(120, 1997);   // Small utility (~wep).
  if (Cls == "icc")
    return synthesize(700, 2001);   // Mid-size compiler (~icc).
  if (Cls == "gcc")
    return synthesize(2500, 42);    // Large compiler (~gcc).
  reportFatal("unknown size class '" + Cls + "'");
}

//===- store/CodeStore.h - Demand-paged compressed-code store ---*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-shaped runtime layer over the codec registry: a CodeStore
/// holds a module's functions as *compressed frames* and materializes
/// decoded vm::Functions lazily at first call. This is the paper's
/// section-1 economic argument made executable — when memory is scarce,
/// keep the compact form resident and pay a decode on fault instead of
/// keeping every function decoded.
///
/// Pieces:
///   - a sharded, byte-budgeted LRU decode cache (shard = id mod N, the
///     budget is split across shards with the remainder distributed so
///     the effective capacity equals the configured bytes; each shard
///     owns its own mutex and counters, so faults on different shards
///     never contend);
///   - single-flight deduplication: N threads faulting the same frame
///     perform exactly one decode, the rest block on a shared_future;
///   - recoverable errors: a corrupt frame fails that fault with a typed
///     DecodeError while every other frame stays servable;
///   - pin/prefetch: pinned entries are never evicted (under the
///     pin-aware policy), prefetch warms ids through the support
///     ThreadPool without skewing the demand hit/miss counters;
///   - a Stats snapshot (consistent per construction: counters live
///     under the shard locks) that feeds sim::DiskModel for end-to-end
///     time estimates.
///
/// Fault granularity. By default a frame is one whole function. With
/// StoreOptions::PageTargetBytes set, build() splits each function at
/// branch-label boundaries into basic blocks, greedily packs adjacent
/// blocks into *pages* of roughly that many fixed-width code bytes, and
/// compresses each page as its own frame; the manifest carries a
/// per-function page table. The cache then faults, evicts, pins, and
/// single-flights at page granularity: faultSpan() decodes only the page
/// holding the requested instruction (the vm::FunctionResolver hook the
/// interpreter drives), while fault() assembles the full body from its
/// pages — byte-identical to what an unpaged store would decode.
///
/// Frames are produced by any registered pipeline::Codec chain whose
/// first codec accepts per-function payloads (Raw, FixedCode or
/// FuncImage). Module-granularity codecs (wire) cannot represent a
/// single function and are rejected at build/load time with a clear
/// error. The on-disk form is a standard CCPK container whose frame 0 is
/// the store manifest (globals/entry skeleton plus per-function headers,
/// manifest version 2 when paged) and whose frames 1..N are the
/// compressed bodies (functions, or pages in manifest order).
///
/// Frames live behind a FrameSource (store/FrameSource.h), so the same
/// fault path serves frames held in memory (LocalFrameSource), read on
/// demand from a container file (FileFrameSource), or fetched over a
/// simulated flaky link (SimulatedRemoteFrameSource). Fetches run under
/// the store's RetryPolicy: transient transport failures are retried
/// with backed-off virtual delays, permanent ones fail that fault with a
/// typed error, and either way concurrent single-flight waiters all
/// observe the same outcome.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_STORE_CODESTORE_H
#define CCOMP_STORE_CODESTORE_H

#include "pipeline/Codec.h"
#include "store/FrameSource.h"
#include "support/Error.h"
#include "support/Span.h"
#include "vm/Machine.h"
#include "vm/Program.h"

#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ccomp {

class ThreadPool;

namespace store {

/// Cache replacement policies.
enum class EvictPolicy : uint8_t {
  LRU,         ///< Strict LRU; pin marks are recorded but not honored.
  PinAwareLRU, ///< LRU that skips pinned entries (the default).
};

/// Store construction knobs.
struct StoreOptions {
  /// Total decoded-bytes budget, split across shards (remainder bytes go
  /// one each to the first shards, so the shard budgets always sum to
  /// this value). The budget is a target, not a hard cap: the entry
  /// faulted in most recently is never evicted, so any budget >= 1
  /// frame still executes.
  size_t CacheBudgetBytes = 1u << 20;
  unsigned Shards = 8;       ///< Clamped to [1, frame count].
  EvictPolicy Policy = EvictPolicy::PinAwareLRU;
  unsigned BuildJobs = 1;    ///< Compression fan-out in build().
  /// build() only: when nonzero, split functions at basic-block
  /// boundaries into pages of at most this many fixed-width code bytes
  /// (an oversized single block still forms one page) and compress each
  /// page as its own frame. Zero keeps whole-function frames. Loading
  /// infers the granularity from the container's manifest version.
  size_t PageTargetBytes = 0;
  /// How frame fetches behave on a flaky source (ignored by sources that
  /// cannot fail transiently).
  RetryPolicy Retry;
};

/// Monotonic counters plus residency gauges. Snapshots are consistent:
/// the counters are plain integers mutated under the shard locks, and
/// stats() locks every shard before summing. Hits/Misses/Decodes count
/// cache entries — whole functions, or pages for a paged store.
struct StoreStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;            ///< Demand faults (cold or re-fetch after evict).
  uint64_t Decodes = 0;           ///< All decodes executed (demand + prefetch).
  uint64_t PrefetchDecodes = 0;   ///< Decodes issued by prefetch() warms; these
                                  ///< never count as Hits/Misses, so miss-rate
                                  ///< lines reflect demand traffic only.
  uint64_t SingleFlightWaits = 0; ///< Demand faults served by another thread's decode.
  uint64_t DecodeErrors = 0;
  uint64_t Evictions = 0;
  uint64_t DecodeNanos = 0;  ///< Wall time inside frame decodes.
  uint64_t DecodedBytes = 0; ///< Decoded cost bytes produced by decodes.
  // Frame-source fetch counters (all zero for in-memory sources unless a
  // flaky link is injected in front).
  uint64_t FetchAttempts = 0;     ///< Fetch attempts, including retries.
  uint64_t FetchRetries = 0;      ///< Transient failures masked by retry.
  uint64_t FetchFailures = 0;     ///< Fetches that failed for good.
  uint64_t FetchedBytes = 0;      ///< Compressed bytes fetched successfully.
  uint64_t FetchVirtualNanos = 0; ///< Virtual link clock: transfer + backoff.
  // Gauges (current state, unaffected by resetStats).
  uint64_t ResidentBytes = 0;
  uint64_t ResidentFunctions = 0; ///< Resident cache entries (functions or pages).
  uint64_t PinnedFunctions = 0;   ///< Pinned cache entries (functions or pages).

  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total) : 0.0;
  }
};

/// A module's functions as compressed frames with a decode-on-fault
/// cache in front. Thread-safe: fault/faultSpan/pin/prefetch/stats may
/// be called concurrently.
class CodeStore {
public:
  /// Compresses every function of \p P through \p ChainSpec (splitting
  /// into pages first when Opts.PageTargetBytes is set). Returns null
  /// and sets \p Error if the chain does not exist or cannot serve
  /// per-function frames (module-granularity first codec).
  static std::unique_ptr<CodeStore> build(const vm::VMProgram &P,
                                          const std::string &ChainSpec,
                                          StoreOptions Opts,
                                          std::string &Error);

  /// Serializes manifest + frames into a CCPK container, fetching every
  /// frame from the source. Fails typed if the source cannot produce
  /// some frame (e.g. a dead backing file).
  Result<std::vector<uint8_t>> trySave();
  /// Aborting wrapper for stores whose source cannot fail (in-memory).
  std::vector<uint8_t> save();

  /// Parses a container of unknown provenance. Corrupt manifests yield a
  /// typed DecodeError here; corrupt *frames* surface later, as
  /// recoverable per-fault errors.
  static Result<std::unique_ptr<CodeStore>> tryLoad(ByteSpan Bytes,
                                                    StoreOptions Opts);

  /// Opens a store container file, reading frames on demand through a
  /// FileFrameSource: the manifest is fetched and parsed now, the frames
  /// stay on disk until faulted.
  static Result<std::unique_ptr<CodeStore>> tryOpenFile(const std::string &Path,
                                                        StoreOptions Opts);

  /// The general entry: serve frames from any FrameSource whose backing
  /// medium carries a store manifest (containers made by save()). The
  /// manifest is fetched through Opts.Retry, so a flaky remote source
  /// can fail this typed — but a transient-only fault rate below 1
  /// usually just costs retries.
  static Result<std::unique_ptr<CodeStore>>
  tryFromSource(std::unique_ptr<FrameSource> Src, StoreOptions Opts);

  /// The program skeleton (globals, entry, no function bodies) to build
  /// a vm::Machine around; pair with a StoreBackedResolver.
  const vm::VMProgram &skeleton() const { return Skel; }

  uint32_t functionCount() const {
    return static_cast<uint32_t>(Funcs.size());
  }
  const std::string &functionName(uint32_t Id) const {
    return Funcs[Id].Name;
  }
  const std::string &chainSpec() const { return Spec; }

  /// True when this store serves sub-function pages (built with
  /// PageTargetBytes, or loaded from a version-2 container).
  bool paged() const { return Paged; }
  /// Total frames behind the source: pages when paged, else functions.
  uint32_t frameCount() const {
    return Paged ? TotalPages : functionCount();
  }
  /// Number of pages function \p Id was split into (1 when not paged).
  uint32_t pageCountOf(uint32_t Id) const {
    return Paged ? static_cast<uint32_t>(Funcs[Id].Pages.size()) : 1;
  }

  /// Where this store's frames come from.
  const FrameSource &source() const { return *Source; }

  /// Total compressed frame bytes held by the store's source.
  size_t frameBytes() const { return Source->frameBytes(); }

  /// Effective cache capacity: the sum of all shard budgets. Always
  /// equals the configured CacheBudgetBytes.
  size_t cacheBudgetBytes() const;

  /// The fault path: returns the decoded function, decoding each frame
  /// at most once no matter how many threads fault it concurrently. On
  /// a paged store this assembles the body from its pages (faulting
  /// every page in) — byte-identical to the unpaged decode. A corrupt
  /// frame fails this call (and every retry) with a typed error; other
  /// functions stay servable.
  Result<std::shared_ptr<const vm::VMFunction>> fault(uint32_t Id);

  /// Page-granular fault: decodes only the page of function \p Fn
  /// holding instruction \p Idx and returns it as an executable span
  /// (whole body when not paged). An \p Idx past the end of the
  /// function clamps to the last page, so the interpreter can trap on
  /// the out-of-range Pc itself.
  Result<vm::CodeSpan> faultSpan(uint32_t Fn, uint32_t Idx);

  /// Faults \p Id in and marks it pinned (every page of it, when
  /// paged); pinned entries are never evicted under
  /// EvictPolicy::PinAwareLRU.
  Result<std::shared_ptr<const vm::VMFunction>> pin(uint32_t Id);
  void unpin(uint32_t Id);

  /// Warms \p Ids (function ids; all their pages when paged) through
  /// \p Pool; call Pool.wait() to block until done. Prefetch warms are
  /// accounted as PrefetchDecodes, never as demand Hits/Misses. Decode
  /// failures are absorbed into the DecodeErrors counter.
  void prefetch(const std::vector<uint32_t> &Ids, ThreadPool &Pool);

  /// True if \p Id (every page of it, when paged) is decoded and
  /// resident right now (no LRU effect).
  bool isResident(uint32_t Id) const;

  /// Consistent totals across all shards (locks every shard).
  StoreStats stats() const;
  /// Zeroes the monotonic counters; residency gauges are preserved.
  /// Heat counters (frameHeat/functionHeat) are *not* cleared: they are
  /// the tiered runtime's access-pattern signal, and resetting the
  /// stats between benchmark phases must not cool compiled code.
  void resetStats();

  /// Demand touches (hits + misses, prefetch excluded) of frame \p Id.
  /// Monotonic; approximate under concurrency (relaxed atomics).
  uint64_t frameHeat(uint32_t Id) const;
  /// Demand touches summed over every frame of function \p Fn — the
  /// hotness signal a TieredResolver's HotThreshold tests.
  uint64_t functionHeat(uint32_t Fn) const;

private:
  CodeStore() = default;
  void initRuntime(StoreOptions Opts);
  void indexPages();

  using FaultOutcome = Result<std::shared_ptr<const vm::VMFunction>>;
  /// Faults one cache entry (a function frame, or a page frame when
  /// paged). \p Prefetch suppresses the demand Hit/Miss/wait counters
  /// and counts successful decodes as PrefetchDecodes.
  FaultOutcome faultImpl(uint32_t Id, bool Pin, bool Prefetch);
  /// Faults every page of \p Fn and concatenates them into a full body.
  FaultOutcome assembleFunction(uint32_t Fn, bool Pin);
  /// Fetches frame \p Id from the source (under Opts.Retry, charging \p
  /// M) and decodes it through the chain.
  FaultOutcome decodeFrame(uint32_t Id, FetchMetrics &M);
  void unpinEntry(uint32_t Id);
  bool entryResident(uint32_t Id) const;

  /// One page's manifest entry: which slice of the function it holds,
  /// and (FuncImage chains only) the rank -> function-label-index list
  /// its payload's branch targets were rewritten through.
  struct PageRec {
    uint32_t FirstInstr = 0;
    uint32_t InstrCount = 0;
    std::vector<uint32_t> Labels;
  };

  /// One compressed function's manifest header: what decodeFrame needs
  /// to reassemble a VMFunction when the payload is code-only. The
  /// frames themselves live in the FrameSource.
  struct FuncRecord {
    std::string Name;
    uint32_t FrameSize = 0;
    std::vector<uint32_t> LabelPos; ///< Empty for unpaged FuncImage payloads.
    // Paged stores only:
    uint32_t CodeLen = 0;   ///< Total instruction count.
    uint32_t FirstPage = 0; ///< Frame id of this function's first page.
    std::vector<PageRec> Pages;
  };

  struct Entry {
    std::shared_ptr<const vm::VMFunction> Fn;
    size_t Cost = 0;
    bool Pinned = false;
    std::list<uint32_t>::iterator LruIt;
  };

  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<uint32_t, Entry> Map;
    std::list<uint32_t> Lru; ///< Front = most recently used.
    std::unordered_map<uint32_t, std::shared_future<FaultOutcome>> InFlight;
    StoreStats S; ///< Counters + this shard's gauges, guarded by Mu.
    size_t Budget = 0;
  };

  Shard &shardOf(uint32_t Id) { return Shards[Id % Shards.size()]; }
  const Shard &shardOf(uint32_t Id) const { return Shards[Id % Shards.size()]; }
  void evictOver(Shard &Sh, uint32_t Keep);

  std::string Spec;
  std::vector<const pipeline::Codec *> Chain;
  pipeline::PayloadKind Kind = pipeline::PayloadKind::FuncImage;
  vm::VMProgram Skel;
  std::vector<FuncRecord> Funcs;
  bool Paged = false;
  uint32_t TotalPages = 0;
  std::vector<uint32_t> FrameFunc; ///< Frame id -> owning function (paged).
  std::unique_ptr<FrameSource> Source;

  StoreOptions Opts;
  std::vector<Shard> Shards;
  /// Hotness signal for the tiered runtime: demand touches per frame
  /// and per owning function, accumulated relaxed outside the shard
  /// counters (ordering does not matter — the values only gate when a
  /// function is worth compiling). Sized at initRuntime.
  std::unique_ptr<std::atomic<uint64_t>[]> FrameHeat;
  std::unique_ptr<std::atomic<uint64_t>[]> FuncHeat;
};

/// Decoded in-memory footprint we charge the cache for one function (or
/// one page body).
size_t decodedCostBytes(const vm::VMFunction &F);

} // namespace store
} // namespace ccomp

#endif // CCOMP_STORE_CODESTORE_H

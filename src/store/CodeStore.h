//===- store/CodeStore.h - Demand-paged compressed-code store ---*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-shaped runtime layer over the codec registry: a CodeStore
/// holds a module's functions as *compressed frames* and materializes
/// decoded vm::Functions lazily at first call. This is the paper's
/// section-1 economic argument made executable — when memory is scarce,
/// keep the compact form resident and pay a decode on fault instead of
/// keeping every function decoded.
///
/// Architecture. A CodeStore is a per-tenant *view* over a
/// store::FrameRegistry (store/FrameRegistry.h), which owns the cache
/// proper: a sharded, byte-budgeted, pin-aware LRU of decoded bodies
/// with single-flight dedup, keyed by (container content hash, frame
/// id). By default each store constructs a private registry sized from
/// its StoreOptions — single-tenant behavior, indistinguishable from a
/// store owning its cache outright. Injecting a registry via
/// StoreOptions::SharedRegistry instead makes N stores of the same
/// module (same content hash) share one decode, one resident copy, one
/// global byte budget, and one heat table, while stores of different
/// modules stay isolated by hash. The tenant keeps what is per-client:
///   - its FrameSource and RetryPolicy — the faulting tenant fetches
///     compressed bytes through its *own* transport, so two tenants of
///     one module may pull frames from different media;
///   - its pins, generation-tagged in the registry so tenants cannot
///     release each other's;
///   - its traffic counters: Hits/Misses/SingleFlightWaits and the
///     fetch bill are attributed per tenant, while decode execution
///     counters and residency gauges are registry-global (a shared
///     decode ran once, so it is counted once). stats() merges both
///     sides into one StoreStats; registryStats() exposes the global
///     side alone. resetStats() clears this tenant's counters and only
///     touches the registry's when it is private.
///
/// Fault granularity. By default a frame is one whole function. With
/// StoreOptions::PageTargetBytes set, build() splits each function at
/// branch-label boundaries into basic blocks, greedily packs adjacent
/// blocks into *pages* of roughly that many fixed-width code bytes, and
/// compresses each page as its own frame; the manifest carries a
/// per-function page table. The cache then faults, evicts, pins, and
/// single-flights at page granularity: faultSpan() decodes only the page
/// holding the requested instruction (the vm::FunctionResolver hook the
/// interpreter drives), while fault() assembles the full body from its
/// pages — byte-identical to what an unpaged store would decode.
///
/// Frames are produced by any registered pipeline::Codec chain whose
/// first codec accepts per-function payloads (Raw, FixedCode or
/// FuncImage). Module-granularity codecs (wire) cannot represent a
/// single function and are rejected at build/load time with a clear
/// error. The on-disk form is a standard CCPK container whose frame 0 is
/// the store manifest (globals/entry skeleton plus per-function headers;
/// manifest v3 additionally carries the container's content hash and a
/// paged flag — v1/v2 containers still load) and whose frames 1..N are
/// the compressed bodies (functions, or pages in manifest order).
///
/// Per-frame codec selection. build() with StoreOptions::CandidateChains
/// trial-encodes every frame through the primary chain plus each
/// candidate and keeps the smallest verified frame
/// (pipeline::selectChainsPerItem) — hot loops of fixed-width code may
/// win with a context-modeled instruction codec while string-heavy data
/// pages win with a block-sorting byte codec. A non-uniform outcome is
/// recorded as manifest v4: a chain table (entry 0 is the container's
/// chain spec) plus one chain index per frame, and decodeFrame routes
/// each frame through its own chain. A uniform outcome normalizes back
/// to manifest v3, bit-identical to a build without candidates.
///
/// Content addressing and trust. The registry key's hash half is
/// pipeline::hashContainerFrames over (chain spec, frame bytes),
/// computed by build() and recomputed at load time whenever the source
/// can produce its content (in-memory containers; simulated-remote
/// origins). A v3 manifest's *claimed* hash is checked against the
/// recomputed one before a store may join a shared registry — a
/// doctored or corrupt container fails typed instead of poisoning
/// another tenant's frames. Sources that cannot be content-hashed
/// (on-demand files) trust the manifest claim, and legacy v1/v2
/// containers from such sources have no claim at all, so they are
/// refused shared registration outright; private stores accept all of
/// these (a corrupt frame still surfaces as a typed per-fault error,
/// never anyone else's problem).
///
/// Frames live behind a FrameSource (store/FrameSource.h), so the same
/// fault path serves frames held in memory (LocalFrameSource), read on
/// demand from a container file (FileFrameSource), or fetched over a
/// simulated flaky link (SimulatedRemoteFrameSource). Fetches run under
/// the store's RetryPolicy: transient transport failures are retried
/// with backed-off virtual delays, permanent ones fail that fault with a
/// typed error, and either way concurrent single-flight waiters all
/// observe the same outcome.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_STORE_CODESTORE_H
#define CCOMP_STORE_CODESTORE_H

#include "pipeline/Codec.h"
#include "store/FrameRegistry.h"
#include "store/FrameSource.h"
#include "support/Error.h"
#include "support/Span.h"
#include "vm/Machine.h"
#include "vm/Program.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ccomp {

class ThreadPool;

namespace pipeline {
struct ExecutionTrace;
} // namespace pipeline

namespace store {

/// Store construction knobs.
struct StoreOptions {
  /// Total decoded-bytes budget for the store's *private* registry,
  /// split across shards (remainder bytes go one each to the first
  /// shards, so the shard budgets always sum to this value). The budget
  /// is a target, not a hard cap: the entry faulted in most recently is
  /// never evicted, so any budget >= 1 frame still executes. Ignored —
  /// along with Shards and Policy — when SharedRegistry is set: a
  /// shared registry brings its own RegistryOptions.
  size_t CacheBudgetBytes = 1u << 20;
  unsigned Shards = 8; ///< Clamped to [1, frame count] (private registry).
  EvictPolicy Policy = EvictPolicy::PinAwareLRU;
  unsigned BuildJobs = 1; ///< Compression fan-out in build().
  /// build() only: when nonzero, split functions at basic-block
  /// boundaries into pages of at most this many fixed-width code bytes
  /// (an oversized single block still forms one page) and compress each
  /// page as its own frame. Zero keeps whole-function frames. Loading
  /// infers the granularity from the container's manifest.
  size_t PageTargetBytes = 0;
  /// build() only: additional candidate chain specs for per-frame codec
  /// selection. When non-empty, every frame (page or whole function) is
  /// trial-encoded through the primary chain *and* each candidate, and
  /// the smallest verified frame wins (pipeline::selectChainsPerItem).
  /// Candidates must exist in the registry and serve the same manifest
  /// body kind as the primary chain (FuncImage chains pair only with
  /// FuncImage candidates; Raw and FixedCode mix freely — their
  /// payloads are the same bytes). A non-uniform selection is recorded
  /// in a manifest v4 per-frame chain table; when every frame picks the
  /// primary chain the container stays manifest v3, bit-identical to a
  /// build without candidates.
  std::vector<std::string> CandidateChains;
  /// build() only, with CandidateChains: reject candidate chains whose
  /// modeled per-frame decode time exceeds this many nanoseconds (rates
  /// come from the codecs' own snapshot() deltas over the trial
  /// traffic). Zero means unlimited, which keeps the selection fully
  /// deterministic — a pure compressed-size comparison.
  uint64_t FrameDecodeBudgetNanos = 0;
  /// How frame fetches behave on a flaky source (ignored by sources that
  /// cannot fail transiently).
  RetryPolicy Retry;
  /// build() only: an execution trace recorded by store::recordTrace.
  /// With PageTargetBytes set, splitFunctionPages packs co-hot blocks
  /// onto shared pages instead of splitting in source order, and the
  /// trace seeds the predictive-prefetch successor graph
  /// (applyAccessProfile). The chosen layout rides in the ordinary
  /// manifest page table, so load paths neither see nor trust the
  /// profile. Read only during build(); need not outlive it.
  const pipeline::ExecutionTrace *Profile = nullptr;
  /// The multi-tenant seam: when set, this store becomes a tenant view
  /// over the given process-wide registry instead of constructing a
  /// private one. Joining requires a trustworthy content hash (see the
  /// file comment) and a module shape consistent with any tenant that
  /// registered the same hash first.
  std::shared_ptr<FrameRegistry> SharedRegistry;
};

/// Monotonic counters plus residency gauges, as seen by one store.
/// Traffic counters (Hits/Misses/SingleFlightWaits/DecodeErrors and the
/// Fetch* family) are this tenant's own; decode-execution counters
/// (Decodes/PrefetchDecodes/DecodeNanos/DecodedBytes/Evictions) and the
/// gauges come from the registry, so under a shared registry they
/// aggregate every tenant (the decode ran once — it is counted once).
/// Hits/Misses/Decodes count cache entries — whole functions, or pages
/// for a paged store.
struct StoreStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;            ///< Demand faults (cold or re-fetch after evict).
  uint64_t Decodes = 0;           ///< All decodes executed (demand + prefetch).
  uint64_t PrefetchDecodes = 0;   ///< Decodes issued by prefetch() warms; these
                                  ///< never count as Hits/Misses, so miss-rate
                                  ///< lines reflect demand traffic only.
  uint64_t SingleFlightWaits = 0; ///< Demand faults served by another thread's decode.
  uint64_t DecodeErrors = 0;      ///< Failed faults this tenant led.
  uint64_t Evictions = 0;
  uint64_t DecodeNanos = 0;  ///< Wall time inside frame decodes.
  uint64_t DecodedBytes = 0; ///< Decoded cost bytes produced by decodes.
  // Frame-source fetch counters (all zero for in-memory sources unless a
  // flaky link is injected in front). Always this tenant's own traffic:
  // fetches run on the tenant's transport even when the decode cache is
  // shared.
  uint64_t FetchAttempts = 0;     ///< Fetch attempts, including retries.
  uint64_t FetchRetries = 0;      ///< Transient failures masked by retry.
  uint64_t FetchFailures = 0;     ///< Fetches that failed for good.
  uint64_t FetchedBytes = 0;      ///< Compressed bytes fetched successfully.
  uint64_t FetchVirtualNanos = 0; ///< Virtual link clock: transfer + backoff.
  // Gauges (current state, unaffected by resetStats; registry-global).
  uint64_t ResidentBytes = 0;
  uint64_t ResidentFunctions = 0; ///< Resident cache entries (functions or pages).
  uint64_t PinnedFunctions = 0;   ///< Pinned cache entries (functions or pages).

  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total) : 0.0;
  }
};

/// A module's functions as compressed frames with a decode-on-fault
/// cache in front. Thread-safe: fault/faultSpan/pin/prefetch/stats may
/// be called concurrently, on one store or on several tenant views of
/// one shared registry.
class CodeStore {
public:
  /// Compresses every function of \p P through \p ChainSpec (splitting
  /// into pages first when Opts.PageTargetBytes is set). Returns null
  /// and sets \p Error if the chain does not exist, cannot serve
  /// per-function frames (module-granularity first codec), or the
  /// shared registry refuses the module (hash-collision shape check).
  static std::unique_ptr<CodeStore> build(const vm::VMProgram &P,
                                          const std::string &ChainSpec,
                                          StoreOptions Opts,
                                          std::string &Error);

  ~CodeStore();

  /// Serializes manifest + frames into a CCPK container, fetching every
  /// frame from the source. Fails typed if the source cannot produce
  /// some frame (e.g. a dead backing file). Writes manifest v3 (with
  /// the content-hash claim) whatever version was loaded — or v4 when
  /// the store carries a per-frame chain table, which v4 preserves.
  Result<std::vector<uint8_t>> trySave();
  /// Aborting wrapper for stores whose source cannot fail (in-memory).
  std::vector<uint8_t> save();

  /// Parses a container of unknown provenance. Corrupt manifests yield a
  /// typed DecodeError here; corrupt *frames* surface later, as
  /// recoverable per-fault errors — except when joining a shared
  /// registry, where a frame/claim hash mismatch is refused at load
  /// time (see the file comment).
  static Result<std::unique_ptr<CodeStore>> tryLoad(ByteSpan Bytes,
                                                    StoreOptions Opts);

  /// Opens a store container file, reading frames on demand through a
  /// FileFrameSource: the manifest is fetched and parsed now, the frames
  /// stay on disk until faulted.
  static Result<std::unique_ptr<CodeStore>> tryOpenFile(const std::string &Path,
                                                        StoreOptions Opts);

  /// The general entry: serve frames from any FrameSource whose backing
  /// medium carries a store manifest (containers made by save()). The
  /// manifest is fetched through Opts.Retry, so a flaky remote source
  /// can fail this typed — but a transient-only fault rate below 1
  /// usually just costs retries.
  static Result<std::unique_ptr<CodeStore>>
  tryFromSource(std::unique_ptr<FrameSource> Src, StoreOptions Opts);

  /// The program skeleton (globals, entry, no function bodies) to build
  /// a vm::Machine around; pair with a StoreBackedResolver.
  const vm::VMProgram &skeleton() const { return Skel; }

  uint32_t functionCount() const {
    return static_cast<uint32_t>(Funcs.size());
  }
  const std::string &functionName(uint32_t Id) const {
    return Funcs[Id].Name;
  }
  const std::string &chainSpec() const { return Spec; }

  /// True when frames decode through per-frame chains (manifest v4,
  /// built with StoreOptions::CandidateChains and a non-uniform
  /// outcome); chainSpec() then names the primary chain only.
  bool perPageChains() const { return !FrameChain.empty(); }
  /// The chain spec that decodes frame \p Id (== chainSpec() unless
  /// perPageChains()).
  const std::string &frameChainSpec(uint32_t Id) const {
    return FrameChain.empty() ? Spec : ChainSpecs[FrameChain[Id]];
  }

  /// True when this store serves sub-function pages (built with
  /// PageTargetBytes, or loaded from a paged container).
  bool paged() const { return Paged; }
  /// Total frames behind the source: pages when paged, else functions.
  uint32_t frameCount() const {
    return Paged ? TotalPages : functionCount();
  }
  /// Number of pages function \p Id was split into (1 when not paged).
  uint32_t pageCountOf(uint32_t Id) const {
    return Paged ? static_cast<uint32_t>(Funcs[Id].Pages.size()) : 1;
  }

  /// Where this store's frames come from.
  const FrameSource &source() const { return *Source; }

  /// Total compressed frame bytes held by the store's source.
  size_t frameBytes() const { return Source->frameBytes(); }

  /// The container content hash this store's frames are registered
  /// under — the module half of every registry key.
  uint64_t containerHash() const { return Hash; }

  /// The registry serving this store's decoded frames (private unless
  /// StoreOptions::SharedRegistry was set).
  FrameRegistry &registry() { return *Reg; }
  const FrameRegistry &registry() const { return *Reg; }
  /// True when the registry is shared with other stores.
  bool sharesRegistry() const { return !PrivateReg; }
  /// The registry-global side of the stats (shortcut for
  /// registry().stats()).
  RegistryStats registryStats() const { return Reg->stats(); }

  /// Effective cache capacity: the registry's budget (equals the
  /// configured CacheBudgetBytes for a private registry).
  size_t cacheBudgetBytes() const { return Reg->cacheBudgetBytes(); }

  /// The fault path: returns the decoded function, decoding each frame
  /// at most once no matter how many threads — or tenants — fault it
  /// concurrently. On a paged store this assembles the body from its
  /// pages (faulting every page in) — byte-identical to the unpaged
  /// decode. A corrupt frame fails this call (and every retry) with a
  /// typed error; other functions stay servable.
  Result<std::shared_ptr<const vm::VMFunction>> fault(uint32_t Id);

  /// Page-granular fault: decodes only the page of function \p Fn
  /// holding instruction \p Idx and returns it as an executable span
  /// (whole body when not paged). An \p Idx past the end of the
  /// function clamps to the last page, so the interpreter can trap on
  /// the out-of-range Pc itself.
  Result<vm::CodeSpan> faultSpan(uint32_t Fn, uint32_t Idx);

  /// Faults \p Id in and marks it pinned (every page of it, when
  /// paged); pinned entries are never evicted under
  /// EvictPolicy::PinAwareLRU. Pins are per tenant: two stores pinning
  /// the same shared frame hold independent references, and unpin
  /// releases only this store's.
  Result<std::shared_ptr<const vm::VMFunction>> pin(uint32_t Id);
  void unpin(uint32_t Id);

  /// Warms \p Ids (function ids; all their pages when paged) through
  /// \p Pool; call Pool.wait() to block until done. Prefetch warms are
  /// accounted as PrefetchDecodes, never as demand Hits/Misses. Decode
  /// failures are absorbed into the DecodeErrors counter. The wave is
  /// clamped to what cache admission would accept (clampToAdmission):
  /// frames past the decode budget are neither hinted to the source nor
  /// warmed, so a tiny budget cannot be tricked into fetching bytes it
  /// must immediately evict.
  void prefetch(const std::vector<uint32_t> &Ids, ThreadPool &Pool);

  /// The frame serving instruction \p Idx of function \p Fn: the page
  /// holding it when paged (out-of-range \p Idx clamps like faultSpan),
  /// the function frame otherwise.
  uint32_t frameOf(uint32_t Fn, uint32_t Idx) const;

  /// Digests \p T into the predictive successor graph: consecutive
  /// trace events become frame->frame transfer counts, and each frame
  /// keeps its most-frequent successors (ties broken by lower frame id,
  /// so the graph is deterministic). Replaces the static graph build()
  /// derived from the call/fall-through structure. Not synchronized
  /// against in-flight prefetchPredicted calls — install profiles
  /// before serving, like the rest of construction.
  void applyAccessProfile(const pipeline::ExecutionTrace &T);
  /// True when applyAccessProfile installed a recorded graph (build()
  /// applies StoreOptions::Profile automatically).
  bool hasAccessProfile() const;

  /// How many non-resident predicted frames one fault warms.
  static constexpr unsigned DefaultPredictions = 4;

  /// Most-likely next frames after \p Frame, best first: the recorded
  /// successor graph when a profile was applied, else the static graph
  /// (the function's next page plus the first pages of called
  /// functions; loaded stores lack code to scan, so only next-page
  /// edges). Empty when nothing is known.
  std::vector<uint32_t> predictedSuccessors(
      uint32_t Frame, unsigned Max = DefaultPredictions) const;

  /// Targeted prefetch: warms the predicted successors of the frame
  /// serving (\p Fn, \p Idx) — one admission-clamped prefetchHint batch
  /// plus pool warms — instead of warming everything. No-op when
  /// nothing is predicted or everything predicted is resident.
  void prefetchPredicted(uint32_t Fn, uint32_t Idx, ThreadPool &Pool);

  /// Decoded-bytes estimate for one frame before decoding it: exact for
  /// pages (the manifest carries the instruction count and page bodies
  /// have no name/label table), a floor for whole-function frames (the
  /// manifest does not record unpaged code length). Admission clamping
  /// is advisory either way.
  size_t estimatedDecodedCost(uint32_t FrameId) const;

  /// Longest prefix of \p Frames whose summed estimated decoded cost
  /// fits the cache budget — what admission would accept. Never drops
  /// the first frame: the most-recently-faulted entry is never evicted,
  /// so one frame is always admissible.
  std::vector<uint32_t> clampToAdmission(std::vector<uint32_t> Frames) const;

  /// True if \p Id (every page of it, when paged) is decoded and
  /// resident right now (no LRU effect).
  bool isResident(uint32_t Id) const;

  /// This tenant's traffic counters merged with the registry's decode
  /// counters and gauges into one StoreStats (see the struct comment
  /// for which is which).
  StoreStats stats() const;
  /// Zeroes this tenant's monotonic counters. A *private* registry's
  /// counters are cleared too (single-tenant behavior: stats() reads
  /// zero decodes afterwards); a shared registry is left untouched —
  /// one tenant resetting must not erase another tenant's view or the
  /// process-wide decode bill. Residency gauges are preserved either
  /// way, and heat counters (frameHeat/functionHeat) are *never*
  /// cleared: they are the tiered runtime's access-pattern signal, and
  /// resetting the stats between benchmark phases must not cool
  /// compiled code.
  void resetStats();

  /// Demand touches (hits + misses, prefetch excluded) of frame \p Id,
  /// pooled across every tenant of this module. Monotonic; approximate
  /// under concurrency (relaxed atomics).
  uint64_t frameHeat(uint32_t Id) const { return Heat->frameHeat(Id); }
  /// Demand touches summed over every frame of function \p Fn — the
  /// hotness signal a TieredResolver's HotThreshold tests.
  uint64_t functionHeat(uint32_t Fn) const { return Heat->functionHeat(Fn); }

private:
  CodeStore() = default;
  /// Joins or constructs the registry and registers the module; fails
  /// typed on a shared-registry shape conflict.
  Result<bool> initRuntime(StoreOptions Opts);
  void indexPages();

  using FaultOutcome = Result<std::shared_ptr<const vm::VMFunction>>;
  /// Faults one cache entry (a function frame, or a page frame when
  /// paged). \p Prefetch suppresses the demand Hit/Miss/wait counters
  /// and counts successful decodes as PrefetchDecodes.
  FaultOutcome faultImpl(uint32_t Id, bool Pin, bool Prefetch);
  /// The registry round trip for one frame: fetch+decode callback,
  /// traffic attribution, pin-generation bookkeeping. \p Held is the
  /// pin generation this tenant already holds (0 for none); on success
  /// with \p Pin, \p PinGenOut receives the generation the pin now
  /// holds. Caller holds PinMu when \p Pin is set.
  FaultOutcome registryFault(uint32_t Id, bool Pin, uint64_t Held,
                             bool Prefetch, uint64_t *PinGenOut);
  /// Faults every page of \p Fn and concatenates them into a full body.
  FaultOutcome assembleFunction(uint32_t Fn, bool Pin);
  /// Fetches frame \p Id from the source (under Opts.Retry, charging \p
  /// M) and decodes it through the chain.
  FaultOutcome decodeFrame(uint32_t Id, FetchMetrics &M);
  void unpinEntry(uint32_t Id);
  bool entryResident(uint32_t Id) const;
  FrameKey keyOf(uint32_t Id) const { return FrameKey{Hash, Id}; }
  /// The no-trace fallback graph: next-page edges, plus call edges from
  /// \p P's code when building (null when loading a container).
  void initStaticSuccessors(const vm::VMProgram *P);
  /// Hints \p Frames to the source and warms each through \p Pool; the
  /// caller has already filtered residency and clamped to admission.
  void warmFrames(const std::vector<uint32_t> &Frames, ThreadPool &Pool);

  /// One page's manifest entry: which slice of the function it holds,
  /// and (FuncImage chains only) the rank -> function-label-index list
  /// its payload's branch targets were rewritten through.
  struct PageRec {
    uint32_t FirstInstr = 0;
    uint32_t InstrCount = 0;
    std::vector<uint32_t> Labels;
  };

  /// One compressed function's manifest header: what decodeFrame needs
  /// to reassemble a VMFunction when the payload is code-only. The
  /// frames themselves live in the FrameSource.
  struct FuncRecord {
    std::string Name;
    uint32_t FrameSize = 0;
    std::vector<uint32_t> LabelPos; ///< Empty for unpaged FuncImage payloads.
    // Paged stores only:
    uint32_t CodeLen = 0;   ///< Total instruction count.
    uint32_t FirstPage = 0; ///< Frame id of this function's first page.
    std::vector<PageRec> Pages;
  };

  /// Page index of instruction \p Idx within \p Rec (clamping).
  static uint32_t pageIndexOf(const FuncRecord &Rec, uint32_t Idx);

  /// This tenant's traffic counters. Relaxed atomics: each counter is
  /// independently monotonic, and stats() takes an approximate-but-
  /// monotone snapshot — the per-shard-lock consistency the old
  /// embedded cache provided mattered only because gauges and counters
  /// shared storage, which they no longer do.
  struct TenantCounters {
    std::atomic<uint64_t> Hits{0};
    std::atomic<uint64_t> Misses{0};
    std::atomic<uint64_t> SingleFlightWaits{0};
    std::atomic<uint64_t> DecodeErrors{0};
    std::atomic<uint64_t> FetchAttempts{0};
    std::atomic<uint64_t> FetchRetries{0};
    std::atomic<uint64_t> FetchFailures{0};
    std::atomic<uint64_t> FetchedBytes{0};
    std::atomic<uint64_t> FetchVirtualNanos{0};
  };

  std::string Spec;
  std::vector<const pipeline::Codec *> Chain;
  /// Per-frame codec selection (manifest v4). Empty FrameChain means
  /// every frame decodes through Chain (v1-v3 containers and uniform
  /// builds). Otherwise ChainSpecs/Chains is the candidate table with
  /// entry 0 == Spec/Chain, and FrameChain[Id] indexes it per frame.
  std::vector<std::string> ChainSpecs;
  std::vector<std::vector<const pipeline::Codec *>> Chains;
  std::vector<uint32_t> FrameChain;
  pipeline::PayloadKind Kind = pipeline::PayloadKind::FuncImage;
  vm::VMProgram Skel;
  std::vector<FuncRecord> Funcs;
  bool Paged = false;
  uint32_t TotalPages = 0;
  std::vector<uint32_t> FrameFunc; ///< Frame id -> owning function (paged).
  std::unique_ptr<FrameSource> Source;

  StoreOptions Opts;
  uint64_t Hash = 0; ///< Container content hash (registry key half).
  std::shared_ptr<FrameRegistry> Reg;
  bool PrivateReg = true;
  std::shared_ptr<ModuleHeat> Heat; ///< Shared across tenants of the module.
  mutable TenantCounters Cnt;

  /// Predicted-next frames, best first, indexed by frame id. Swapped
  /// wholesale under SuccMu (readers snapshot the shared_ptr), built by
  /// initStaticSuccessors or replaced by applyAccessProfile.
  struct SuccessorGraph {
    std::vector<std::vector<uint32_t>> Next;
    bool FromTrace = false;
  };
  mutable std::mutex SuccMu;
  std::shared_ptr<const SuccessorGraph> Succ;

  /// Per-tenant pin bookkeeping: which frames this store pinned, and at
  /// which registry entry generation. Guarded by PinMu, which is held
  /// across a pinning fault so two threads pinning the same frame on
  /// one tenant take exactly one registry reference.
  mutable std::mutex PinMu;
  std::vector<uint8_t> PinnedByMe;
  std::vector<uint64_t> PinGens;
};

/// Decoded in-memory footprint we charge the cache for one function (or
/// one page body).
size_t decodedCostBytes(const vm::VMFunction &F);

/// True when \p Frame begins with the store-manifest magic ("CCSM").
/// Frame 0 of every image written by CodeStore::save is a manifest; a
/// bare codec archive (compressor_tool without --store) is not, and the
/// frame sources use this to reject it up front instead of letting a
/// function payload masquerade as a manifest.
bool isStoreManifest(ByteSpan Frame);

} // namespace store
} // namespace ccomp

#endif // CCOMP_STORE_CODESTORE_H

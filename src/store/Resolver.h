//===- store/Resolver.h - Store-backed VM function resolver -----*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The glue between the interpreter's resolver hook (vm::FunctionResolver)
/// and the CodeStore: every cross-function control transfer the Machine
/// makes becomes a store fault, so code executes straight out of the
/// compressed store with only the cache-resident working set decoded.
///
/// A resolver binds to one CodeStore — one *tenant view*. When several
/// stores share a FrameRegistry, each Machine still gets its own
/// resolver over its own store; the sharing happens a layer down, in
/// the registry's cache. The spans a resolver hands out stay valid even
/// if another tenant's fault evicts the shared entry mid-execution:
/// vm::CodeSpan::Keep holds the decoded body alive independently of
/// cache residency.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_STORE_RESOLVER_H
#define CCOMP_STORE_RESOLVER_H

#include "store/CodeStore.h"
#include "vm/Machine.h"

namespace ccomp {
namespace store {

/// Routes vm::Machine call/return faults through a CodeStore. A decode
/// failure surfaces as a resolver failure, which the interpreter turns
/// into a trap for that run — the process (and the store's other
/// functions) carry on. Subclassable: store::TieredResolver layers the
/// native execution tier on this fault path.
class StoreBackedResolver : public vm::FunctionResolver {
public:
  explicit StoreBackedResolver(CodeStore &S) : Store(S) {}

  uint32_t functionCount() const override { return Store.functionCount(); }

  std::shared_ptr<const vm::VMFunction> resolve(uint32_t Fn,
                                                std::string &Err) override;

  /// Page-granular resolve: on a paged store only the page holding \p
  /// Idx is decoded (hot pages of the same function stay resident while
  /// cold ones fault on first touch); otherwise this is the whole body.
  bool resolveSpan(uint32_t Fn, uint32_t Idx, vm::CodeSpan &Out,
                   std::string &Err) override;

protected:
  CodeStore &Store;
};

/// Trace-driven prefetch on the fault path: after each successful span
/// resolve, asks the store to warm the predicted successors of the
/// faulted frame (recorded successor graph when a profile was applied,
/// static call/fall-through graph otherwise) through \p Pool. Warms are
/// asynchronous — call Pool.wait() (or destroy the pool) before tearing
/// down the store.
class PrefetchingResolver : public StoreBackedResolver {
public:
  PrefetchingResolver(CodeStore &S, ThreadPool &Pool)
      : StoreBackedResolver(S), Pool(Pool) {}

  bool resolveSpan(uint32_t Fn, uint32_t Idx, vm::CodeSpan &Out,
                   std::string &Err) override {
    if (!StoreBackedResolver::resolveSpan(Fn, Idx, Out, Err))
      return false;
    Store.prefetchPredicted(Fn, Idx, Pool);
    return true;
  }

private:
  ThreadPool &Pool;
};

/// Convenience: interpret the store's program end-to-end, decoding
/// functions on fault. Opts.Resolver is overwritten.
vm::RunResult runFromStore(CodeStore &S,
                           vm::RunOptions Opts = vm::RunOptions());

/// runFromStore with predictive prefetch: every fault also warms the
/// store's predicted-next frames through \p Pool.
vm::RunResult runFromStorePrefetching(CodeStore &S, ThreadPool &Pool,
                                      vm::RunOptions Opts = vm::RunOptions());

} // namespace store
} // namespace ccomp

#endif // CCOMP_STORE_RESOLVER_H

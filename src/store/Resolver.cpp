//===- store/Resolver.cpp - Store-backed VM function resolver -------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "store/Resolver.h"

#include "support/ThreadPool.h"

using namespace ccomp;
using namespace ccomp::store;

std::shared_ptr<const vm::VMFunction>
StoreBackedResolver::resolve(uint32_t Fn, std::string &Err) {
  Result<std::shared_ptr<const vm::VMFunction>> R = Store.fault(Fn);
  if (!R.ok()) {
    Err = R.error().message();
    return nullptr;
  }
  return R.take();
}

bool StoreBackedResolver::resolveSpan(uint32_t Fn, uint32_t Idx,
                                      vm::CodeSpan &Out, std::string &Err) {
  Result<vm::CodeSpan> R = Store.faultSpan(Fn, Idx);
  if (!R.ok()) {
    Err = R.error().message();
    return false;
  }
  Out = R.take();
  return true;
}

vm::RunResult store::runFromStore(CodeStore &S, vm::RunOptions Opts) {
  StoreBackedResolver Rv(S);
  Opts.Resolver = &Rv;
  vm::Machine M(S.skeleton(), Opts);
  return M.run();
}

vm::RunResult store::runFromStorePrefetching(CodeStore &S, ThreadPool &Pool,
                                             vm::RunOptions Opts) {
  PrefetchingResolver Rv(S, Pool);
  Opts.Resolver = &Rv;
  vm::Machine M(S.skeleton(), Opts);
  vm::RunResult R = M.run();
  Pool.wait(); // Outstanding warms reference the store; drain them here.
  return R;
}

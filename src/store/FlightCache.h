//===- store/FlightCache.h - Sharded LRU + single-flight cache --*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one cache engine behind every decode-on-fault path in the store
/// layer. Before this header existed the CodeStore's frame cache and
/// the TieredResolver's compiled-unit cache were two hand-rolled copies
/// of the same machinery (byte-budgeted LRU, pin-aware eviction,
/// single-flight dedup via shared_future); FlightCache is that
/// machinery extracted once, parameterized over the key and the cached
/// value:
///
///   - sharded: the byte budget is split across shards with the
///     remainder distributed one byte each to the first shards, so the
///     shard budgets always sum to the configured total and faults on
///     different shards never contend;
///   - single-flight: N callers faulting the same key run the compute
///     callback exactly once — one leader computes outside the lock,
///     the rest block on a shared_future and observe the same outcome
///     (including a typed error);
///   - pin-aware eviction: eviction walks from the cold end, never
///     evicts the entry inserted by the fault in progress, and (when
///     pins are honored) skips pinned entries; a budget of one byte
///     still serves;
///   - generation-tagged pins: every insert stamps a fresh generation,
///     and pins are counted per entry generation so two *tenants*
///     pinning the same entry hold independent references — an unpin
///     with a stale generation (the pinned entry was evicted under the
///     plain-LRU policy and re-inserted) is a no-op instead of
///     releasing someone else's pin;
///   - an optional admission gate, consulted only at the moment a
///     caller would become the compute leader. Callers that find the
///     value resident or an in-flight compute are served regardless —
///     this is exactly the TieredResolver's hotness-gate contract.
///
/// The cache deliberately counts only what it can observe: evictions
/// and the residency gauges. Hit/miss/wait classification is returned
/// per call in a FlightCache::Info so each caller (a tenant view over a
/// shared registry, say) attributes traffic to its *own* counters; the
/// compute callback's cost (decode time, fetch bill) is likewise the
/// caller's to measure and attribute.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_STORE_FLIGHTCACHE_H
#define CCOMP_STORE_FLIGHTCACHE_H

#include "support/Error.h"

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace ccomp {
namespace store {

/// Counters plus residency gauges a FlightCache maintains itself.
/// Everything per-caller (hits, misses, waits, compute cost) is
/// reported through FlightCache::Info instead.
struct FlightCounters {
  uint64_t Evictions = 0; ///< Entries evicted over budget (monotonic).
  // Gauges (current state, unaffected by resetCounters).
  uint64_t ResidentBytes = 0;
  uint64_t ResidentEntries = 0;
  uint64_t PinnedEntries = 0; ///< Entries with at least one pin.
};

/// A byte-budgeted, sharded, pin-aware LRU with single-flight compute
/// dedup. Thread-safe. \p Value must be cheap to copy (a shared_ptr in
/// both existing users).
template <typename Key, typename Value, typename Hasher = std::hash<Key>>
class FlightCache {
public:
  using Outcome = Result<Value>;
  using Compute = std::function<Outcome()>;
  using Gate = std::function<bool()>;
  using CostFn = std::function<size_t(const Value &)>;

  /// What one fault call observed, for caller-side stats attribution.
  /// Hits/Misses/Waits are counts, not flags: a pin-requesting call
  /// that waited on another caller's compute re-enters through the hit
  /// path to record its pin, observing one miss and then one hit —
  /// the same classification the pre-extraction caches produced.
  struct Info {
    unsigned Hits = 0;
    unsigned Misses = 0;
    unsigned Waits = 0;     ///< Joined another caller's in-flight compute.
    bool Led = false;       ///< This call ran the compute callback.
    bool Declined = false;  ///< The admission gate said no; nothing ran.
    uint64_t PinGen = 0;    ///< Entry generation a requested pin holds.
  };

  /// \p HonorPins false records pins (for the gauges) but lets eviction
  /// take pinned entries anyway — the CodeStore's plain-LRU policy.
  FlightCache(size_t BudgetBytes, unsigned NumShards, bool HonorPins,
              CostFn Cost)
      : HonorPins(HonorPins), Cost(std::move(Cost)),
        Shards(std::max(1u, NumShards)) {
    // Split the budget so the shard budgets sum to exactly the
    // configured bytes: budget/N each, remainder spread one byte per
    // shard. (A plain budget/N truncates — a 7-byte budget over 4
    // shards would silently serve only 4 bytes of capacity.)
    size_t N = Shards.size();
    size_t Base = BudgetBytes / N;
    size_t Rem = BudgetBytes % N;
    for (size_t I = 0; I != N; ++I)
      Shards[I].Budget = Base + (I < Rem ? 1 : 0);
  }

  /// Returns the cached value for \p K, computing it via \p Fn at most
  /// once across concurrent callers. \p AddPin requests a pin on the
  /// entry; \p HeldGen is the generation of a pin this caller already
  /// holds (0 for none), so re-pinning the same generation is not
  /// double-counted. \p G, when set, is consulted only if this call
  /// would become the compute leader; a false return declines the fault
  /// (Info.Declined) without computing.
  Outcome fault(const Key &K, bool AddPin, uint64_t HeldGen,
                const Compute &Fn, Info &I, const Gate &G = Gate()) {
    Shard &Sh = shardOf(K);
    for (;;) {
      std::shared_future<Outcome> Wait;
      std::promise<Outcome> Pr;
      {
        std::lock_guard<std::mutex> L(Sh.Mu);
        auto It = Sh.Map.find(K);
        if (It != Sh.Map.end()) {
          Sh.Lru.splice(Sh.Lru.begin(), Sh.Lru, It->second.LruIt);
          ++I.Hits;
          if (AddPin && It->second.Gen != HeldGen) {
            if (It->second.PinCount++ == 0)
              ++Sh.C.PinnedEntries;
          }
          I.PinGen = It->second.Gen;
          return Outcome(It->second.Val);
        }
        ++I.Misses;
        auto FIt = Sh.InFlight.find(K);
        if (FIt != Sh.InFlight.end()) {
          ++I.Waits;
          Wait = FIt->second;
        } else {
          if (G && !G()) {
            I.Declined = true;
            return Outcome(DecodeError("cache: admission gate declined"));
          }
          Sh.InFlight.emplace(K, Pr.get_future().share());
        }
      }
      if (Wait.valid()) {
        Outcome Out = Wait.get();
        if (!Out.ok() || !AddPin)
          return Out;
        continue; // Pin requested: record it through the hit path.
      }

      // Single-flight leader: compute outside the lock.
      I.Led = true;
      Outcome Out = [&]() -> Outcome {
        try {
          return Fn();
        } catch (const std::bad_alloc &) {
          return Outcome(DecodeError("cache: allocation failed in compute"));
        }
      }();
      {
        std::lock_guard<std::mutex> L(Sh.Mu);
        Sh.InFlight.erase(K);
        if (Out.ok()) {
          size_t C = Cost(Out.value());
          auto [MIt, Inserted] = Sh.Map.emplace(K, Entry());
          (void)Inserted; // InFlight excluded any concurrent compute of K.
          MIt->second.Val = Out.value();
          MIt->second.Cost = C;
          MIt->second.Gen = ++Sh.NextGen;
          Sh.Lru.push_front(K);
          MIt->second.LruIt = Sh.Lru.begin();
          Sh.C.ResidentBytes += C;
          ++Sh.C.ResidentEntries;
          if (AddPin) {
            MIt->second.PinCount = 1;
            ++Sh.C.PinnedEntries;
          }
          I.PinGen = MIt->second.Gen;
          evictOver(Sh, K);
        }
      }
      Pr.set_value(Out);
      return Out;
    }
  }

  /// Releases one pin taken at generation \p HeldGen. A stale
  /// generation (the entry was evicted and re-created since) is a
  /// no-op: the pin it names no longer exists.
  void unpin(const Key &K, uint64_t HeldGen) {
    Shard &Sh = shardOf(K);
    std::lock_guard<std::mutex> L(Sh.Mu);
    auto It = Sh.Map.find(K);
    if (It == Sh.Map.end() || It->second.Gen != HeldGen ||
        It->second.PinCount == 0)
      return;
    if (--It->second.PinCount == 0)
      --Sh.C.PinnedEntries;
  }

  /// True if \p K is resident right now (no LRU effect).
  bool resident(const Key &K) const {
    const Shard &Sh = shardOf(K);
    std::lock_guard<std::mutex> L(Sh.Mu);
    return Sh.Map.count(K) != 0;
  }

  /// Consistent totals across all shards (locks every shard, in index
  /// order).
  FlightCounters counters() const {
    std::vector<std::unique_lock<std::mutex>> Locks;
    Locks.reserve(Shards.size());
    for (const Shard &Sh : Shards)
      Locks.emplace_back(Sh.Mu);
    FlightCounters T;
    for (const Shard &Sh : Shards) {
      T.Evictions += Sh.C.Evictions;
      T.ResidentBytes += Sh.C.ResidentBytes;
      T.ResidentEntries += Sh.C.ResidentEntries;
      T.PinnedEntries += Sh.C.PinnedEntries;
    }
    return T;
  }

  /// Zeroes the monotonic eviction counter; gauges are preserved.
  void resetCounters() {
    for (Shard &Sh : Shards) {
      std::lock_guard<std::mutex> L(Sh.Mu);
      Sh.C.Evictions = 0;
    }
  }

  /// Effective capacity: the sum of all shard budgets. Always equals
  /// the configured budget.
  size_t budgetBytes() const {
    size_t Total = 0;
    for (const Shard &Sh : Shards)
      Total += Sh.Budget;
    return Total;
  }

  unsigned shardCount() const { return static_cast<unsigned>(Shards.size()); }

private:
  struct Entry {
    Value Val{};
    size_t Cost = 0;
    uint32_t PinCount = 0;
    uint64_t Gen = 0; ///< Stamped at insert; pins are per generation.
    typename std::list<Key>::iterator LruIt;
  };

  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<Key, Entry, Hasher> Map;
    std::list<Key> Lru; ///< Front = most recently used.
    std::unordered_map<Key, std::shared_future<Outcome>, Hasher> InFlight;
    FlightCounters C; ///< Guarded by Mu.
    size_t Budget = 0;
    uint64_t NextGen = 0;
  };

  Shard &shardOf(const Key &K) {
    return Shards[Hasher()(K) % Shards.size()];
  }
  const Shard &shardOf(const Key &K) const {
    return Shards[Hasher()(K) % Shards.size()];
  }

  /// Evicts from the cold end until under budget. The entry faulted in
  /// most recently (\p Keep) is never a victim, so a budget smaller
  /// than one entry still serves; pinned entries are skipped when pins
  /// are honored, and a pinned victim under the plain policy releases
  /// its pins with it (the gauge drops accordingly).
  void evictOver(Shard &Sh, const Key &Keep) {
    while (Sh.C.ResidentBytes > Sh.Budget && Sh.Map.size() > 1) {
      auto VictimIt = Sh.Lru.end();
      for (auto R = Sh.Lru.rbegin(); R != Sh.Lru.rend(); ++R) {
        if (*R == Keep)
          continue;
        if (HonorPins && Sh.Map.find(*R)->second.PinCount > 0)
          continue;
        VictimIt = std::prev(R.base());
        break;
      }
      if (VictimIt == Sh.Lru.end())
        return; // Everything else is pinned; stay over budget.
      auto MIt = Sh.Map.find(*VictimIt);
      Sh.C.ResidentBytes -= MIt->second.Cost;
      --Sh.C.ResidentEntries;
      if (MIt->second.PinCount > 0)
        --Sh.C.PinnedEntries; // Only reachable under the plain policy.
      Sh.Map.erase(MIt);
      Sh.Lru.erase(VictimIt);
      ++Sh.C.Evictions;
    }
  }

  bool HonorPins;
  CostFn Cost;
  std::vector<Shard> Shards;
};

} // namespace store
} // namespace ccomp

#endif // CCOMP_STORE_FLIGHTCACHE_H

//===- store/FrameSource.cpp - Where compressed frames come from ----------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "store/FrameSource.h"

#include "net/Message.h" // Header-only codec; no link dependency.
#include "pipeline/Pipeline.h"
#include "store/CodeStore.h" // isStoreManifest.
#include "support/ByteIO.h"
#include "support/PRNG.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

using namespace ccomp;
using namespace ccomp::store;

FrameSource::~FrameSource() = default;

const char *store::fetchErrorKindName(FetchErrorKind K) {
  switch (K) {
  case FetchErrorKind::Timeout:
    return "timeout";
  case FetchErrorKind::ShortRead:
    return "short-read";
  case FetchErrorKind::Corrupt:
    return "corrupt";
  case FetchErrorKind::NotFound:
    return "not-found";
  case FetchErrorKind::Io:
    return "io";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// Retry policy
//===----------------------------------------------------------------------===//

namespace {

/// Uniform double in [0, 1) from a 64-bit hash.
double unitDouble(uint64_t H) {
  return static_cast<double>(H >> 11) * 0x1.0p-53;
}

} // namespace

uint64_t store::drawKey(uint64_t Seed, uint32_t Frame, unsigned Attempt,
                        DrawPurpose Purpose) {
  uint64_t Pair = (static_cast<uint64_t>(Frame) << 32) |
                  (static_cast<uint64_t>(Attempt) & 0xFFFFFFFFu);
  return mix64(Seed ^ mix64(Pair) ^
               (static_cast<uint64_t>(Purpose) << 60));
}

double RetryPolicy::backoffSeconds(uint32_t Frame, unsigned Attempt) const {
  // Grow the base in closed form. The loop this replaces ran for
  // Attempt iterations whenever BackoffMultiplier <= 1 (the growth
  // never reached the cap), so a degenerate policy combined with a huge
  // attempt count could spin for billions of iterations. A multiplier
  // at or below 1 now means flat backoff (never decay), and growth
  // saturates at the cap in O(1) regardless of Attempt; pow overflowing
  // to +inf is caught by the same clamp.
  double Grown = BaseBackoffSeconds;
  if (BackoffMultiplier > 1.0 && Grown > 0.0 && Attempt > 0)
    Grown *= std::pow(BackoffMultiplier, static_cast<double>(Attempt));
  // Once growth saturates (or the base already exceeds the cap), every
  // later attempt charges exactly the cap: jittering at the ceiling
  // would let the sequence dip back below it non-monotonically.
  if (Grown >= MaxBackoffSeconds)
    return std::max(0.0, MaxBackoffSeconds);
  // Jitter is a pure function of (seed, frame, attempt): concurrent
  // fetches replay the same delays no matter how threads interleave.
  uint64_t H = drawKey(JitterSeed, Frame, Attempt, DrawPurpose::BackoffJitter);
  double Factor = 1.0 + JitterFraction * (2.0 * unitDouble(H) - 1.0);
  // Clamp after jitter too: MaxBackoffSeconds is a hard bound on the
  // charged delay.
  return std::min(std::max(0.0, Grown * Factor), MaxBackoffSeconds);
}

FetchResult store::fetchWithRetry(FrameSource &Src, uint32_t Id,
                                  const RetryPolicy &Policy,
                                  FetchMetrics &M) {
  unsigned Max = std::max(1u, Policy.MaxAttempts);
  // Under RealTime the deadline is measured against this wall clock and
  // backoff actually sleeps; otherwise both live on the virtual clock
  // and no real time ever passes here.
  auto Start = std::chrono::steady_clock::now();
  auto wallSeconds = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  };
  FetchResult Last;
  for (unsigned A = 0; A != Max; ++A) {
    FetchResult R =
        Id == ManifestFrameId ? Src.fetchManifest() : Src.fetchFrame(Id);
    ++M.Attempts;
    M.VirtualSeconds += R.VirtualSeconds;
    if (R.Ok) {
      M.FetchedBytes += R.Bytes.size();
      R.VirtualSeconds = M.VirtualSeconds;
      return R;
    }
    if (!isTransient(R.Err)) {
      // A dead frame will not come back; do not burn the retry budget.
      R.VirtualSeconds = M.VirtualSeconds;
      return R;
    }
    ++M.TransientFailures;
    Last = std::move(R);
    double Spent = Policy.RealTime ? wallSeconds() : M.VirtualSeconds;
    if (Spent > Policy.DeadlineSeconds)
      return FetchResult::failure(
          FetchErrorKind::Timeout,
          "fetch deadline exceeded after " + std::to_string(A + 1) +
              " attempt(s): " + Last.Msg,
          M.VirtualSeconds);
    if (A + 1 != Max) {
      double Backoff = Policy.backoffSeconds(Id, A);
      M.VirtualSeconds += Backoff;
      if (Policy.RealTime && Backoff > 0) {
        // Never sleep past the deadline: cap the nap at what is left,
        // so a dead server costs DeadlineSeconds, not deadline + one
        // full backoff.
        double Left = Policy.DeadlineSeconds - wallSeconds();
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::max(0.0, std::min(Backoff, Left))));
      }
    }
  }
  return FetchResult::failure(Last.Err,
                              "fetch failed after " + std::to_string(Max) +
                                  " attempt(s): " + Last.Msg,
                              M.VirtualSeconds);
}

//===----------------------------------------------------------------------===//
// LocalFrameSource
//===----------------------------------------------------------------------===//

LocalFrameSource::LocalFrameSource(std::string ChainSpec,
                                   std::vector<std::vector<uint8_t>> FuncFrames)
    : Spec(std::move(ChainSpec)), Frames(std::move(FuncFrames)) {}

Result<std::unique_ptr<LocalFrameSource>>
LocalFrameSource::fromContainerBytes(ByteSpan Bytes) {
  Result<pipeline::Container> C = pipeline::tryUnpackContainer(Bytes);
  if (!C.ok())
    return C.error();
  if (C.value().Frames.empty())
    return DecodeError("frame source: container has no manifest frame");
  if (!isStoreManifest(C.value().Frames[0]))
    return DecodeError("frame source: frame 0 is not a store manifest (a "
                       "bare codec archive? build the image with "
                       "CodeStore::save, e.g. compressor_tool --store)");
  std::vector<std::vector<uint8_t>> Funcs(
      std::make_move_iterator(C.value().Frames.begin() + 1),
      std::make_move_iterator(C.value().Frames.end()));
  std::unique_ptr<LocalFrameSource> S(
      new LocalFrameSource(std::move(C.value().ChainSpec), std::move(Funcs)));
  S->Manifest = std::move(C.value().Frames[0]);
  S->HasManifest = true;
  return S;
}

size_t LocalFrameSource::frameBytes() const {
  size_t N = 0;
  for (const std::vector<uint8_t> &F : Frames)
    N += F.size();
  return N;
}

FetchResult LocalFrameSource::fetchFrame(uint32_t Id) {
  if (Id >= Frames.size())
    return FetchResult::failure(FetchErrorKind::NotFound,
                                "local source: no frame " +
                                    std::to_string(Id));
  return FetchResult::success(Frames[Id]);
}

FetchResult LocalFrameSource::fetchManifest() {
  if (!HasManifest)
    return FetchResult::failure(FetchErrorKind::NotFound,
                                "local source: built in memory, no manifest");
  return FetchResult::success(Manifest);
}

bool LocalFrameSource::contentHash(uint64_t &H) {
  // Frames are immutable once constructed, so the hash is computed on
  // first ask and cached.
  std::call_once(HashOnce,
                 [&] { Hash = pipeline::hashContainerFrames(Spec, Frames); });
  H = Hash;
  return true;
}

//===----------------------------------------------------------------------===//
// FileFrameSource
//===----------------------------------------------------------------------===//

namespace {

constexpr uint32_t PackMagic = 0x4B504343; // "CCPK", pipeline/Pipeline.cpp.

/// Reads \p N bytes at absolute \p Offset; short result means EOF.
std::vector<uint8_t> readAt(std::ifstream &In, uint64_t Offset, size_t N) {
  In.clear();
  In.seekg(static_cast<std::streamoff>(Offset));
  std::vector<uint8_t> Buf(N);
  In.read(reinterpret_cast<char *>(Buf.data()),
          static_cast<std::streamsize>(N));
  Buf.resize(static_cast<size_t>(In.gcount()));
  return Buf;
}

} // namespace

Result<std::unique_ptr<FileFrameSource>>
FileFrameSource::open(const std::string &Path) {
  return tryDecode([&]() -> std::unique_ptr<FileFrameSource> {
    std::unique_ptr<FileFrameSource> S(new FileFrameSource());
    S->Path = Path;
    S->In.open(Path, std::ios::binary);
    if (!S->In)
      decodeFail("file source: cannot open '" + Path + "'");
    S->In.seekg(0, std::ios::end);
    uint64_t FileSize = static_cast<uint64_t>(S->In.tellg());

    // Parse magic + chain spec + frame count from a bounded prefix; a
    // store container's header is tiny, so a spec that does not fit
    // here is corruption, not a real chain.
    std::vector<uint8_t> Head =
        readAt(S->In, 0, static_cast<size_t>(std::min<uint64_t>(
                             FileSize, 64 * 1024)));
    ByteReader R(Head);
    if (R.readU32() != PackMagic)
      decodeFail("file source: bad container magic in '" + Path + "'");
    S->Spec = R.readStr();
    uint64_t NumFrames = R.readVarU();
    // Reserve-bomb guard: each frame costs at least one length byte, so
    // a count beyond the file size is lying about what is stored.
    if (NumFrames == 0 || NumFrames > FileSize)
      decodeFail("file source: inflated frame count in '" + Path + "'");

    // Walk the frame length prefixes to build the offset table; only
    // the ~10-byte varints are read, never the frame payloads.
    uint64_t Pos = R.pos();
    S->Slots.reserve(static_cast<size_t>(NumFrames));
    for (uint64_t I = 0; I != NumFrames; ++I) {
      if (Pos >= FileSize)
        decodeFail("file source: truncated frame table in '" + Path + "'");
      std::vector<uint8_t> VarBuf = readAt(
          S->In, Pos,
          static_cast<size_t>(std::min<uint64_t>(10, FileSize - Pos)));
      ByteReader VR(VarBuf);
      uint64_t Len = VR.readVarU();
      uint64_t PayloadOff = Pos + VR.pos();
      // The claimed length must fit in the bytes that actually exist:
      // this is what keeps a corrupt "4 GiB frame" from ever reaching
      // an allocation.
      if (Len > FileSize - PayloadOff)
        decodeFail("file source: frame " + std::to_string(I) +
                   " overruns the file in '" + Path + "'");
      S->Slots.push_back({PayloadOff, Len});
      Pos = PayloadOff + Len;
    }
    if (Pos != FileSize)
      decodeFail("file source: trailing bytes in '" + Path + "'");

    // Frame 0 must be a store manifest, or every byte served from this
    // file would be misattributed (a function payload masquerading as
    // the manifest fails only much later, at the client's decode).
    const FrameSlot &M = S->Slots.front();
    std::vector<uint8_t> Magic = readAt(
        S->In, M.Offset, static_cast<size_t>(std::min<uint64_t>(4, M.Size)));
    if (!isStoreManifest(Magic))
      decodeFail("file source: '" + Path +
                 "' has no store manifest (a bare codec archive? rebuild "
                 "with compressor_tool compress --store)");
    return S;
  });
}

size_t FileFrameSource::frameBytes() const {
  size_t N = 0;
  for (size_t I = 1; I < Slots.size(); ++I)
    N += static_cast<size_t>(Slots[I].Size);
  return N;
}

FetchResult FileFrameSource::readSlot(size_t Slot) {
  const FrameSlot &F = Slots[Slot];
  std::lock_guard<std::mutex> L(Mu);
  In.clear();
  In.seekg(static_cast<std::streamoff>(F.Offset));
  // Size was validated against the file size at open(); this cannot be
  // a reserve bomb.
  std::vector<uint8_t> Buf(static_cast<size_t>(F.Size));
  In.read(reinterpret_cast<char *>(Buf.data()),
          static_cast<std::streamsize>(F.Size));
  if (static_cast<uint64_t>(In.gcount()) != F.Size)
    return FetchResult::failure(FetchErrorKind::Io,
                                "file source: short read from '" + Path +
                                    "'");
  return FetchResult::success(std::move(Buf));
}

FetchResult FileFrameSource::fetchFrame(uint32_t Id) {
  if (Id >= functionFrameCount())
    return FetchResult::failure(FetchErrorKind::NotFound,
                                "file source: no frame " + std::to_string(Id) +
                                    " in '" + Path + "'");
  return readSlot(Id + 1);
}

FetchResult FileFrameSource::fetchManifest() {
  if (Slots.empty())
    return FetchResult::failure(FetchErrorKind::NotFound,
                                "file source: no manifest in '" + Path + "'");
  return readSlot(0);
}

//===----------------------------------------------------------------------===//
// SimulatedRemoteFrameSource
//===----------------------------------------------------------------------===//

SimulatedRemoteFrameSource::SimulatedRemoteFrameSource(
    std::unique_ptr<FrameSource> OriginSrc, RemoteOptions O)
    : Origin(std::move(OriginSrc)), Opts(O) {
  size_t N = static_cast<size_t>(Origin->functionFrameCount()) + 1;
  Attempts = std::make_unique<std::atomic<uint32_t>[]>(N);
  for (size_t I = 0; I != N; ++I)
    Attempts[I].store(0, std::memory_order_relaxed);
}

double SimulatedRemoteFrameSource::payloadSeconds(size_t Bytes) {
  // Batched mode opens the link once per session; every later frame
  // rides the established connection (sim::Link::streamSeconds).
  double Setup = Opts.Link.LatencySeconds;
  if (Opts.Latency == LatencyMode::Batched &&
      SessionOpen.exchange(true, std::memory_order_relaxed))
    Setup = 0;
  // Under WireFraming the link carries what a real frame-server
  // conversation would: the GetFrame request plus the framed FrameData
  // reply, not the bare payload.
  size_t Wire = Opts.WireFraming ? net::wireSizeFetch(Bytes) : Bytes;
  return Setup + Opts.Link.streamSeconds(Wire);
}

FetchResult SimulatedRemoteFrameSource::transport(uint32_t DrawId,
                                                  FetchResult FromOrigin) {
  if (!FromOrigin.Ok) {
    // The origin's own failure (missing frame, dead file) rides back
    // over the link: charge a round trip, keep the typed error.
    FromOrigin.VirtualSeconds += payloadSeconds(0);
    return FromOrigin;
  }
  size_t Slot = DrawId == ManifestFrameId ? Origin->functionFrameCount()
                                          : DrawId;
  uint32_t Attempt = Attempts[Slot].fetch_add(1, std::memory_order_relaxed);
  // The failure draw is a pure function of (seed, frame, attempt#): the
  // Nth attempt at a frame behaves identically across runs and thread
  // schedules. The shared drawKey guarantees it can never alias the
  // backoff-jitter stream for the same (seed, frame, attempt).
  uint64_t H = drawKey(Opts.FaultSeed, DrawId, Attempt,
                       DrawPurpose::TransportFault);
  double Transfer = payloadSeconds(FromOrigin.Bytes.size());
  if (unitDouble(H) >= Opts.TransientFailureRate)
    return FetchResult::success(std::move(FromOrigin.Bytes), Transfer);

  std::string Frame = DrawId == ManifestFrameId ? std::string("manifest")
                                                : std::to_string(DrawId);
  switch (mix64(H) % 3) {
  case 0:
    // Timeout: the full transfer window passed and nothing usable came.
    return FetchResult::failure(FetchErrorKind::Timeout,
                                "remote: fetch of frame " + Frame +
                                    " timed out",
                                Transfer);
  case 1: {
    // Short read: the connection dropped partway through the payload.
    double Fraction = unitDouble(mix64(H ^ 0x5DEECE66Dull));
    size_t Wire = Opts.WireFraming ? net::wireSizeFetch(FromOrigin.Bytes.size())
                                   : FromOrigin.Bytes.size();
    return FetchResult::failure(FetchErrorKind::ShortRead,
                                "remote: connection dropped mid-frame " +
                                    Frame,
                                Opts.Link.LatencySeconds +
                                    Fraction * Opts.Link.streamSeconds(Wire));
  }
  default:
    // Detected corruption: the bytes arrived (full transfer paid) but
    // the transfer checksum rejected them, so nothing is delivered.
    return FetchResult::failure(FetchErrorKind::Corrupt,
                                "remote: checksum rejected frame " + Frame,
                                Transfer);
  }
}

FetchResult SimulatedRemoteFrameSource::fetchFrame(uint32_t Id) {
  if (Id >= Origin->functionFrameCount())
    return Origin->fetchFrame(Id); // NotFound, untouched by the link model.
  return transport(Id, Origin->fetchFrame(Id));
}

FetchResult SimulatedRemoteFrameSource::fetchManifest() {
  return transport(ManifestFrameId, Origin->fetchManifest());
}

//===- store/FrameRegistry.h - Process-wide shared frame cache --*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-tenant core of the code store: a process-scoped,
/// content-addressed registry of decoded frames keyed by
/// (container hash, frame id). N CodeStore views serving the *same*
/// module (same container hash, computed from the CCPK bytes at
/// build/load time and carried in manifest v3) share one decode, one
/// resident copy, and one global byte budget; tenants of *different*
/// modules can share the budget but never each other's frames — their
/// hashes differ, so their keys cannot collide.
///
/// Division of labor with CodeStore:
///   - the registry owns what is inherently per-module-content or
///     process-global: the FlightCache of decoded bodies (sharded
///     byte-budgeted pin-aware LRU + single-flight), decode execution
///     counters (Decodes, DecodeNanos, DecodedBytes, evictions), and
///     the per-module heat tables (demand-touch counters gate the
///     tiered JIT, so two tenants hammering one module pool their
///     heat);
///   - the CodeStore tenant owns what is per-client: its FrameSource
///     and RetryPolicy (the registry never fetches — the faulting
///     tenant fetches through *its own* transport and hands the
///     registry a decode callback), its pins (generation-tagged in the
///     FlightCache so tenants cannot release each other's), and its
///     traffic counters (hits/misses/waits/fetch bill), classified
///     from the per-call FlightCache::Info.
///
/// Sharing is safe because decoded bodies are immutable
/// (shared_ptr<const VMFunction>) and keys are content-addressed: a
/// tenant can only ever be served bytes that decode from a container
/// hashing to its own module's hash. registerModule() additionally
/// pins down the module's shape (chain spec, frame/function counts,
/// granularity) the first time a hash appears, and rejects a
/// same-hash registration with a different shape as a typed error —
/// a doctored manifest claiming another module's hash cannot poison
/// that module's resident frames.
///
/// resetStats() on the registry zeroes the monotonic decode counters
/// but never the heat tables (they are the tiered runtime's
/// access-pattern signal) and never a tenant's own counters; a tenant's
/// resetStats() conversely never touches a *shared* registry.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_STORE_FRAMEREGISTRY_H
#define CCOMP_STORE_FRAMEREGISTRY_H

#include "store/FlightCache.h"
#include "support/Error.h"
#include "support/PRNG.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace ccomp {

namespace vm {
struct VMFunction;
}

namespace store {

/// Cache replacement policies (shared by StoreOptions and
/// RegistryOptions).
enum class EvictPolicy : uint8_t {
  LRU,         ///< Strict LRU; pin marks are recorded but not honored.
  PinAwareLRU, ///< LRU that skips pinned entries (the default).
};

/// Registry construction knobs. These govern the *process-wide* cache;
/// a CodeStore joining a shared registry brings its own FrameSource and
/// RetryPolicy but inherits the registry's budget, sharding, and
/// eviction policy.
struct RegistryOptions {
  /// Total decoded-bytes budget across every tenant and module, split
  /// over shards with the remainder distributed (the shard budgets
  /// always sum to this value). A target, not a hard cap: the entry
  /// faulted in most recently is never evicted.
  size_t CacheBudgetBytes = 1u << 20;
  unsigned Shards = 8; ///< Clamped to >= 1.
  EvictPolicy Policy = EvictPolicy::PinAwareLRU;
};

/// Registry-global counters and gauges. Decode counters are
/// process-wide by design: the decode ran once no matter how many
/// tenants benefit, so it is counted once, here — per-tenant StoreStats
/// carry the traffic (hit/miss/fetch) attribution instead.
struct RegistryStats {
  uint64_t Decodes = 0;         ///< All decodes executed (demand + prefetch).
  uint64_t PrefetchDecodes = 0; ///< Decodes whose leader was a prefetch warm.
  uint64_t DecodeErrors = 0;    ///< Leader faults that failed (fetch or decode).
  uint64_t DecodeNanos = 0;     ///< Wall time inside frame decodes.
  uint64_t DecodedBytes = 0;    ///< Decoded cost bytes produced by decodes.
  uint64_t Evictions = 0;
  // Gauges (current state, unaffected by resetStats).
  uint64_t ResidentBytes = 0;
  uint64_t ResidentFrames = 0;
  uint64_t PinnedFrames = 0;
  uint64_t Modules = 0; ///< Distinct container hashes registered.
};

/// The registry's content-addressed key: which module, which frame.
struct FrameKey {
  uint64_t Hash = 0;  ///< Container content hash (pipeline::hashContainerFrames).
  uint32_t Frame = 0; ///< Frame id within the module (function or page).

  bool operator==(const FrameKey &O) const {
    return Hash == O.Hash && Frame == O.Frame;
  }
};

struct FrameKeyHasher {
  size_t operator()(const FrameKey &K) const {
    return static_cast<size_t>(mix64(K.Hash ^ K.Frame));
  }
};

/// The shape of a module behind a container hash, fixed at first
/// registration. A second registration of the same hash must present
/// the same shape; anything else is treated as a forged or corrupt
/// manifest and rejected typed before it can touch the cache.
struct ModuleIdent {
  std::string ChainSpec;
  uint32_t FrameCount = 0; ///< Pages when paged, else functions.
  uint32_t FuncCount = 0;
  bool Paged = false;

  bool operator==(const ModuleIdent &O) const {
    return ChainSpec == O.ChainSpec && FrameCount == O.FrameCount &&
           FuncCount == O.FuncCount && Paged == O.Paged;
  }
};

/// Per-module demand-heat tables, shared by every tenant of the module:
/// demand touches (hits + misses, prefetch excluded) per frame and per
/// owning function, accumulated relaxed — the values only gate when a
/// function is worth compiling, so ordering does not matter. Owned by
/// the registry so heat survives any single tenant and pools across
/// tenants; never cleared by resetStats.
class ModuleHeat {
public:
  explicit ModuleHeat(ModuleIdent Id);

  const ModuleIdent &ident() const { return Id; }

  /// One demand touch of frame \p Frame belonging to function \p Fn.
  void touch(uint32_t Frame, uint32_t Fn) {
    if (Frame < Id.FrameCount)
      FrameHeat[Frame].fetch_add(1, std::memory_order_relaxed);
    if (Fn < Id.FuncCount)
      FuncHeat[Fn].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t frameHeat(uint32_t Frame) const {
    return Frame < Id.FrameCount
               ? FrameHeat[Frame].load(std::memory_order_relaxed)
               : 0;
  }
  uint64_t functionHeat(uint32_t Fn) const {
    return Fn < Id.FuncCount ? FuncHeat[Fn].load(std::memory_order_relaxed)
                             : 0;
  }

private:
  ModuleIdent Id;
  std::unique_ptr<std::atomic<uint64_t>[]> FrameHeat;
  std::unique_ptr<std::atomic<uint64_t>[]> FuncHeat;
};

/// The process-wide decoded-frame cache. Thread-safe; one instance may
/// serve any number of CodeStore tenants concurrently. Constructed
/// explicitly and injected via StoreOptions::SharedRegistry — there is
/// deliberately no ambient global instance, so tests and benchmarks
/// control exactly which stores share.
class FrameRegistry {
public:
  using Body = std::shared_ptr<const vm::VMFunction>;
  using Outcome = Result<Body>;
  using Cache = FlightCache<FrameKey, Body, FrameKeyHasher>;
  using Info = Cache::Info;

  /// The tenant's fetch+decode callback. \p DecoderRan must be set true
  /// when the frame's bytes were fetched and the decoder actually
  /// executed (successfully or not), and left false when the fetch
  /// itself failed — the registry only bills Decodes/DecodeNanos for
  /// decoder executions, keeping the fetch-failure/decode-error split
  /// exact.
  using Decoder = std::function<Outcome(bool &DecoderRan)>;

  explicit FrameRegistry(RegistryOptions O = RegistryOptions());

  /// Registers module \p Hash with shape \p Id, returning its shared
  /// heat table. The first registration of a hash fixes the shape;
  /// a later registration with a different shape fails typed (see file
  /// comment). Idempotent otherwise — every tenant of a module calls
  /// this and receives the same table.
  Result<std::shared_ptr<ModuleHeat>> registerModule(uint64_t Hash,
                                                     const ModuleIdent &Id);

  /// Faults (Hash, Frame): returns the resident body or runs \p Decode
  /// exactly once across all concurrent tenants. \p AddPin/\p HeldGen
  /// and the returned \p I are FlightCache semantics — the caller
  /// attributes I.Hits/Misses/Waits to its own counters. \p Prefetch
  /// only affects how a *led* decode is billed (PrefetchDecodes).
  Outcome fault(const FrameKey &K, bool AddPin, uint64_t HeldGen,
                bool Prefetch, const Decoder &Decode, Info &I);

  void unpin(const FrameKey &K, uint64_t HeldGen) { C.unpin(K, HeldGen); }
  bool resident(const FrameKey &K) const { return C.resident(K); }

  RegistryStats stats() const;
  /// Zeroes the monotonic counters; gauges and heat tables survive.
  void resetStats();

  /// Effective capacity (sum of shard budgets == configured budget).
  size_t cacheBudgetBytes() const { return C.budgetBytes(); }

  const RegistryOptions &options() const { return Opts; }

private:
  RegistryOptions Opts;
  Cache C;

  mutable std::mutex ModMu;
  std::unordered_map<uint64_t, std::shared_ptr<ModuleHeat>> Modules;

  // Decode billing, accumulated relaxed outside the cache locks.
  std::atomic<uint64_t> Decodes{0};
  std::atomic<uint64_t> PrefetchDecodes{0};
  std::atomic<uint64_t> DecodeErrors{0};
  std::atomic<uint64_t> DecodeNanos{0};
  std::atomic<uint64_t> DecodedBytes{0};
};

} // namespace store
} // namespace ccomp

#endif // CCOMP_STORE_FRAMEREGISTRY_H

//===- store/Trace.cpp - Execution-trace recording run mode ---------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "store/Trace.h"

using namespace ccomp;
using namespace ccomp::store;

TraceRunResult store::recordTrace(const vm::VMProgram &P, vm::RunOptions Opts,
                                  size_t MaxEvents) {
  TraceRunResult R;
  vm::ProgramSpanResolver Spans(P);
  TracingResolver Recorder(Spans, R.Trace, MaxEvents);
  Opts.Resolver = &Recorder;
  vm::Machine M(P, Opts);
  R.Run = M.run();
  return R;
}

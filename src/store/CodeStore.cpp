//===- store/CodeStore.cpp - Demand-paged compressed-code store -----------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "store/CodeStore.h"

#include "pipeline/Payload.h"
#include "pipeline/Pipeline.h"
#include "pipeline/Profile.h"
#include "support/ByteIO.h"
#include "support/Support.h"
#include "support/ThreadPool.h"
#include "vm/Encode.h"

#include <algorithm>
#include <unordered_map>

using namespace ccomp;
using namespace ccomp::store;
using pipeline::PayloadKind;

namespace {

constexpr uint32_t ManifestMagic = 0x4D534343; // "CCSM".
constexpr uint8_t ManifestVersion = 1;        // Whole-function frames.
constexpr uint8_t ManifestVersionPaged = 2;   // Sub-function page frames.
constexpr uint8_t ManifestVersionHashed = 3;  // Flags + content-hash claim.
constexpr uint8_t ManifestVersionPerPage = 4; // v3 + per-frame chain table.

constexpr uint8_t ManifestFlagPaged = 1; // v3/v4 flags bit 0.

/// v4 chain-table bounds: a per-frame table needs at least one
/// alternative beside the primary, and a container naming dozens of
/// chains is a lie (the registry holds a handful of codecs).
constexpr uint64_t MinPerPageChains = 2;
constexpr uint64_t MaxPerPageChains = 64;

/// Manifest tag for what the decompressed frame body holds.
uint8_t bodyTag(PayloadKind K) {
  return K == PayloadKind::FuncImage ? 0 : 1; // 1 = fixed-width code only.
}

/// Digest of a per-frame chain assignment, folded into the module
/// identity's chain-spec string: two tenants whose containers hash
/// equal (the hash covers frames, not the manifest) but disagree on
/// which chain decodes which frame must not share decoded bodies.
uint64_t perPageDigest(const std::vector<std::string> &Specs,
                       const std::vector<uint32_t> &FrameChain) {
  ByteWriter W;
  W.writeVarU(Specs.size());
  for (const std::string &S : Specs)
    W.writeStr(S);
  W.writeVarU(FrameChain.size());
  for (uint32_t C : FrameChain)
    W.writeVarU(C);
  return pipeline::hashContainerFrames("store-perpage", {W.take()});
}

} // namespace

size_t store::decodedCostBytes(const vm::VMFunction &F) {
  return sizeof(vm::VMFunction) + F.Code.size() * sizeof(vm::Instr) +
         F.LabelPos.size() * sizeof(uint32_t) + F.Name.size();
}

bool store::isStoreManifest(ByteSpan Frame) {
  return Frame.size() >= 4 &&
         (uint32_t(Frame[0]) | uint32_t(Frame[1]) << 8 |
          uint32_t(Frame[2]) << 16 | uint32_t(Frame[3]) << 24) == ManifestMagic;
}

//===----------------------------------------------------------------------===//
// Build / save / load
//===----------------------------------------------------------------------===//

Result<bool> CodeStore::initRuntime(StoreOptions O) {
  Opts = O;
  if (O.SharedRegistry) {
    Reg = O.SharedRegistry;
    PrivateReg = false;
  } else {
    RegistryOptions RO;
    RO.CacheBudgetBytes = O.CacheBudgetBytes;
    unsigned N = std::max(1u, O.Shards);
    N = std::min<unsigned>(N, std::max<uint32_t>(1, frameCount()));
    RO.Shards = N;
    RO.Policy = O.Policy;
    Reg = std::make_shared<FrameRegistry>(RO);
    PrivateReg = true;
  }
  ModuleIdent Id;
  Id.ChainSpec = Spec;
  if (!FrameChain.empty())
    Id.ChainSpec += "#perpage-" +
                    std::to_string(perPageDigest(ChainSpecs, FrameChain));
  Id.FrameCount = frameCount();
  Id.FuncCount = functionCount();
  Id.Paged = Paged;
  Result<std::shared_ptr<ModuleHeat>> H = Reg->registerModule(Hash, Id);
  if (!H.ok())
    return H.error();
  Heat = H.take();
  PinnedByMe.assign(frameCount(), 0);
  PinGens.assign(frameCount(), 0);
  return true;
}

CodeStore::~CodeStore() {
  // A private registry dies with the store. On a shared one, release
  // every pin this tenant still holds so a departed tenant cannot keep
  // frames unevictable forever.
  if (PrivateReg || !Reg)
    return;
  std::lock_guard<std::mutex> L(PinMu);
  for (uint32_t I = 0; I != PinnedByMe.size(); ++I)
    if (PinnedByMe[I])
      Reg->unpin(keyOf(I), PinGens[I]);
}

void CodeStore::indexPages() {
  FrameFunc.clear();
  if (!Paged)
    return;
  FrameFunc.reserve(TotalPages);
  for (uint32_t F = 0; F != Funcs.size(); ++F)
    for (size_t K = 0; K != Funcs[F].Pages.size(); ++K)
      FrameFunc.push_back(F);
}

std::unique_ptr<CodeStore> CodeStore::build(const vm::VMProgram &P,
                                            const std::string &ChainSpec,
                                            StoreOptions Opts,
                                            std::string &Error) {
  std::vector<const pipeline::Codec *> Chain =
      pipeline::parseChain(ChainSpec, Error);
  if (Chain.empty())
    return nullptr;
  if (Chain.front()->payloadKind() == PayloadKind::Module) {
    Error = std::string("store: codec '") + Chain.front()->name() +
            "' compresses whole modules; the store needs per-function frames";
    return nullptr;
  }
  if (P.Functions.empty()) {
    Error = "store: program has no functions";
    return nullptr;
  }
  if (P.Entry >= P.Functions.size()) {
    Error = "store: entry function out of range";
    return nullptr;
  }

  std::unique_ptr<CodeStore> S(new CodeStore());
  S->Spec = ChainSpec;
  S->Chain = std::move(Chain);
  S->Kind = S->Chain.front()->payloadKind();
  S->Skel.Entry = P.Entry;
  S->Skel.Globals = P.Globals;
  S->Skel.GlobalBase = P.GlobalBase;
  S->Skel.GlobalEnd = P.GlobalEnd;
  S->Paged = Opts.PageTargetBytes > 0;

  // Per-function (or per-page) payloads, matching makePayloads' contract
  // per kind.
  std::vector<std::vector<uint8_t>> Payloads;
  if (!S->Paged) {
    Payloads.reserve(P.Functions.size());
    for (const vm::VMFunction &F : P.Functions)
      Payloads.push_back(S->Kind == PayloadKind::FuncImage
                             ? pipeline::encodeFuncImage(F)
                             : vm::encodeFunction(F));
    S->Funcs.reserve(P.Functions.size());
    for (size_t I = 0; I != P.Functions.size(); ++I) {
      FuncRecord Rec;
      Rec.Name = P.Functions[I].Name;
      Rec.FrameSize = P.Functions[I].FrameSize;
      // The function image carries its own label table; code-only bodies
      // need the manifest to preserve it.
      if (S->Kind != PayloadKind::FuncImage)
        Rec.LabelPos = P.Functions[I].LabelPos;
      S->Funcs.push_back(std::move(Rec));
    }
  } else {
    // Digest the access profile (when given) into per-function layout
    // signals. Shapes come from the original functions: image
    // canonicalization only sorts/dedups the label table, and blockCuts
    // canonicalizes the same way, so block identity is unchanged.
    std::vector<pipeline::FunctionProfile> Profiles;
    if (Opts.Profile && !Opts.Profile->Events.empty()) {
      std::vector<pipeline::FunctionShape> Shapes;
      Shapes.reserve(P.Functions.size());
      for (const vm::VMFunction &F : P.Functions)
        Shapes.push_back(pipeline::FunctionShape{
            F.LabelPos, static_cast<uint32_t>(F.Code.size())});
      Profiles = pipeline::digestTrace(*Opts.Profile, Shapes);
    }
    S->Funcs.reserve(P.Functions.size());
    for (size_t FnIdx = 0; FnIdx != P.Functions.size(); ++FnIdx) {
      const vm::VMFunction &F = P.Functions[FnIdx];
      const vm::VMFunction *Use = &F;
      vm::VMFunction Canon;
      if (S->Kind == PayloadKind::FuncImage) {
        // Canonicalize through the image round trip first (sorted,
        // deduplicated label table), so the pages' label references,
        // the manifest's label table, and what an unpaged store would
        // decode all agree — fault() reassembles a byte-identical body.
        Result<vm::VMFunction> C =
            pipeline::tryDecodeFuncImage(pipeline::encodeFuncImage(F));
        if (!C.ok()) {
          Error = "store: function '" + F.Name +
                  "' does not round-trip as an image: " + C.error().message();
          return nullptr;
        }
        Canon = C.take();
        Use = &Canon;
      }
      FuncRecord Rec;
      Rec.Name = Use->Name;
      Rec.FrameSize = Use->FrameSize;
      Rec.LabelPos = Use->LabelPos;
      Rec.CodeLen = static_cast<uint32_t>(Use->Code.size());
      Rec.FirstPage = S->TotalPages;
      std::vector<pipeline::PageChunk> Chunks = pipeline::splitFunctionPages(
          *Use, Opts.PageTargetBytes,
          Profiles.empty() ? nullptr : &Profiles[FnIdx]);
      for (pipeline::PageChunk &C : Chunks) {
        PageRec PR;
        PR.FirstInstr = C.FirstInstr;
        PR.InstrCount = static_cast<uint32_t>(C.Code.size());
        Payloads.push_back(pipeline::encodePagePayload(
            S->Kind, C.Code,
            S->Kind == PayloadKind::FuncImage ? &PR.Labels : nullptr));
        Rec.Pages.push_back(std::move(PR));
      }
      S->TotalPages += static_cast<uint32_t>(Chunks.size());
      S->Funcs.push_back(std::move(Rec));
    }
  }
  // Candidate chains for per-frame selection: the primary chain first,
  // then every distinct candidate that parses and serves the same
  // manifest body kind (Raw and FixedCode payloads are the same bytes;
  // FuncImage is its own family).
  std::vector<std::string> CandSpecs{ChainSpec};
  std::vector<std::vector<const pipeline::Codec *>> CandChains{S->Chain};
  for (const std::string &CS : Opts.CandidateChains) {
    if (std::find(CandSpecs.begin(), CandSpecs.end(), CS) != CandSpecs.end())
      continue;
    std::vector<const pipeline::Codec *> C = pipeline::parseChain(CS, Error);
    if (C.empty())
      return nullptr;
    if (bodyTag(C.front()->payloadKind()) != bodyTag(S->Kind)) {
      Error = "store: candidate chain '" + CS +
              "' decodes to a different frame body kind than '" + ChainSpec +
              "'";
      return nullptr;
    }
    if (CandSpecs.size() == MaxPerPageChains) {
      Error = "store: more than " + std::to_string(MaxPerPageChains - 1) +
              " candidate chains";
      return nullptr;
    }
    CandSpecs.push_back(CS);
    CandChains.push_back(std::move(C));
  }

  std::vector<std::vector<uint8_t>> Frames;
  if (CandSpecs.size() > 1) {
    pipeline::ChainSelection Sel = pipeline::selectChainsPerItem(
        CandChains, Payloads, Opts.FrameDecodeBudgetNanos, Opts.BuildJobs);
    Frames = std::move(Sel.Frames);
    // A uniform outcome (every frame picked the primary) normalizes to
    // a plain single-chain store: the frames are exactly what
    // compressAll would have produced, so the container stays manifest
    // v3, bit-identical to a build without candidates.
    if (!Sel.Uniform) {
      S->ChainSpecs = std::move(CandSpecs);
      S->Chains = std::move(CandChains);
      S->FrameChain = std::move(Sel.ChainIdx);
    }
  } else {
    Frames = pipeline::compressAll(S->Chain, Payloads, Opts.BuildJobs);
  }

  // The content identity under which the registry knows this module:
  // rebuilds of the same program through the same chain produce the
  // same frames, so they land on the same key and share.
  S->Hash = pipeline::hashContainerFrames(ChainSpec, Frames);
  S->indexPages();
  S->Source =
      std::make_unique<LocalFrameSource>(ChainSpec, std::move(Frames));
  Result<bool> Init = S->initRuntime(Opts);
  if (!Init.ok()) {
    Error = Init.error().message();
    return nullptr;
  }
  S->initStaticSuccessors(&P);
  if (Opts.Profile && !Opts.Profile->Events.empty())
    S->applyAccessProfile(*Opts.Profile);
  // The profile was consumed above; the stored options must not dangle
  // on a caller-owned trace.
  S->Opts.Profile = nullptr;
  return S;
}

Result<std::vector<uint8_t>> CodeStore::trySave() {
  const bool PerPage = !FrameChain.empty();
  ByteWriter W;
  W.writeU32(ManifestMagic);
  W.writeU8(PerPage ? ManifestVersionPerPage : ManifestVersionHashed);
  W.writeU8(Paged ? ManifestFlagPaged : 0);
  // The claim a loader checks against the frames it can hash itself,
  // and trusts when it cannot. Written at a fixed offset (6) right
  // after magic/version/flags, so fault-injection tests can target it.
  W.writeU64(Hash);
  W.writeU8(bodyTag(Kind));
  if (PerPage) {
    // The chain table, primary first (entry 0 must match the container
    // spec); the per-frame indices follow the function records.
    W.writeVarU(ChainSpecs.size());
    for (const std::string &CS : ChainSpecs)
      W.writeStr(CS);
  }
  W.writeVarU(Skel.Entry);
  W.writeVarU(Skel.GlobalBase);
  W.writeVarU(Skel.GlobalEnd);
  W.writeVarU(Skel.Globals.size());
  for (const vm::VMGlobal &G : Skel.Globals) {
    W.writeStr(G.Name);
    W.writeVarU(G.Addr);
    W.writeVarU(G.Size);
    W.writeVarU(G.Init.size());
    W.writeBytes(G.Init);
  }
  W.writeVarU(Funcs.size());
  for (const FuncRecord &Rec : Funcs) {
    W.writeStr(Rec.Name);
    W.writeVarU(Rec.FrameSize);
    if (Paged)
      W.writeVarU(Rec.CodeLen);
    W.writeVarU(Rec.LabelPos.size());
    for (uint32_t L : Rec.LabelPos)
      W.writeVarU(L);
    if (Paged) {
      W.writeVarU(Rec.Pages.size());
      for (const PageRec &PR : Rec.Pages) {
        W.writeVarU(PR.InstrCount);
        if (Kind == PayloadKind::FuncImage) {
          W.writeVarU(PR.Labels.size());
          for (uint32_t L : PR.Labels)
            W.writeVarU(L);
        }
      }
    }
  }
  if (PerPage)
    for (uint32_t C : FrameChain)
      W.writeVarU(C);

  std::vector<std::vector<uint8_t>> Items;
  Items.reserve(frameCount() + 1);
  Items.push_back(W.take());
  for (uint32_t I = 0; I != frameCount(); ++I) {
    FetchMetrics M;
    FetchResult R = fetchWithRetry(*Source, I, Opts.Retry, M);
    if (!R.Ok) {
      const std::string &Name = Funcs[Paged ? FrameFunc[I] : I].Name;
      return DecodeError("store: save: fetch frame of '" + Name +
                         "' failed [" + fetchErrorKindName(R.Err) +
                         "]: " + R.Msg);
    }
    Items.push_back(std::move(R.Bytes));
  }
  return pipeline::packContainer(Spec, Items);
}

std::vector<uint8_t> CodeStore::save() {
  Result<std::vector<uint8_t>> R = trySave();
  if (!R.ok())
    reportFatal(R.error().message());
  return R.take();
}

Result<std::unique_ptr<CodeStore>> CodeStore::tryLoad(ByteSpan Bytes,
                                                      StoreOptions Opts) {
  Result<std::unique_ptr<LocalFrameSource>> Src =
      LocalFrameSource::fromContainerBytes(Bytes);
  if (!Src.ok())
    return Src.error();
  return tryFromSource(Src.take(), Opts);
}

Result<std::unique_ptr<CodeStore>>
CodeStore::tryOpenFile(const std::string &Path, StoreOptions Opts) {
  Result<std::unique_ptr<FileFrameSource>> Src = FileFrameSource::open(Path);
  if (!Src.ok())
    return Src.error();
  return tryFromSource(Src.take(), Opts);
}

Result<std::unique_ptr<CodeStore>>
CodeStore::tryFromSource(std::unique_ptr<FrameSource> Src, StoreOptions Opts) {
  std::string ChainError;
  std::vector<const pipeline::Codec *> Chain =
      pipeline::parseChain(Src->chainSpec(), ChainError);
  if (Chain.empty())
    return DecodeError("store: " + ChainError);
  if (Chain.front()->payloadKind() == PayloadKind::Module)
    return DecodeError(std::string("store: codec '") + Chain.front()->name() +
                       "' cannot serve per-function frames");

  // The manifest rides the same (possibly flaky) transport as frames.
  FetchMetrics MM;
  FetchResult MR = fetchWithRetry(*Src, ManifestFrameId, Opts.Retry, MM);
  if (!MR.Ok)
    return DecodeError("store: fetch manifest failed [" +
                       std::string(fetchErrorKindName(MR.Err)) +
                       "]: " + MR.Msg);

  return tryDecode([&] {
    std::unique_ptr<CodeStore> S(new CodeStore());
    S->Spec = Src->chainSpec();
    S->Chain = Chain;
    S->Kind = Chain.front()->payloadKind();

    const std::vector<uint8_t> &Manifest = MR.Bytes;
    ByteReader R(Manifest);
    if (R.readU32() != ManifestMagic)
      decodeFail("store: bad manifest magic");
    uint8_t Version = R.readU8();
    bool HaveClaim = false;
    bool PerPage = false;
    uint64_t Claim = 0;
    if (Version == ManifestVersionHashed ||
        Version == ManifestVersionPerPage) {
      PerPage = Version == ManifestVersionPerPage;
      uint8_t Flags = R.readU8();
      if (Flags & ~uint8_t(ManifestFlagPaged))
        decodeFail("store: unknown manifest flags");
      S->Paged = (Flags & ManifestFlagPaged) != 0;
      Claim = R.readU64();
      HaveClaim = true;
    } else if (Version == ManifestVersion ||
               Version == ManifestVersionPaged) {
      S->Paged = Version == ManifestVersionPaged;
    } else {
      decodeFail("store: unsupported manifest version");
    }
    if (R.readU8() != bodyTag(S->Kind))
      decodeFail("store: manifest payload kind does not match codec chain");
    if (PerPage) {
      // The v4 chain table. Entry 0 must restate the container spec —
      // the manifest cannot quietly reroute the primary chain — and
      // every entry must name a registered chain of the same frame
      // body kind.
      uint64_t NumChains = R.readVarU();
      if (NumChains < MinPerPageChains || NumChains > MaxPerPageChains)
        decodeFail("store: per-page chain count out of range");
      for (uint64_t I = 0; I != NumChains; ++I) {
        std::string CS = R.readStr();
        if (I == 0) {
          if (CS != S->Spec)
            decodeFail("store: per-page chain table head does not match "
                       "the container spec");
          S->ChainSpecs.push_back(std::move(CS));
          S->Chains.push_back(S->Chain);
          continue;
        }
        std::string CE;
        std::vector<const pipeline::Codec *> C = pipeline::parseChain(CS, CE);
        if (C.empty())
          decodeFail("store: per-page chain '" + CS + "': " + CE);
        if (bodyTag(C.front()->payloadKind()) != bodyTag(S->Kind))
          decodeFail("store: per-page chain '" + CS +
                     "' decodes to a different frame body kind");
        S->ChainSpecs.push_back(std::move(CS));
        S->Chains.push_back(std::move(C));
      }
    }
    S->Skel.Entry = static_cast<uint32_t>(R.readVarU());
    S->Skel.GlobalBase = static_cast<uint32_t>(R.readVarU());
    S->Skel.GlobalEnd = static_cast<uint32_t>(R.readVarU());
    size_t NumGlobals = R.readVarU();
    if (NumGlobals > Manifest.size())
      decodeFail("store: inflated global count");
    for (size_t I = 0; I != NumGlobals; ++I) {
      vm::VMGlobal G;
      G.Name = R.readStr();
      G.Addr = static_cast<uint32_t>(R.readVarU());
      G.Size = static_cast<uint32_t>(R.readVarU());
      G.Init = R.readBytes(R.readVarU());
      S->Skel.Globals.push_back(std::move(G));
    }
    size_t NumFuncs = R.readVarU();
    if (NumFuncs > Manifest.size())
      decodeFail("store: inflated function count");
    for (size_t I = 0; I != NumFuncs; ++I) {
      FuncRecord Rec;
      Rec.Name = R.readStr();
      Rec.FrameSize = static_cast<uint32_t>(R.readVarU());
      if (S->Paged)
        Rec.CodeLen = static_cast<uint32_t>(R.readVarU());
      size_t NumLabels = R.readVarU();
      if (NumLabels > Manifest.size())
        decodeFail("store: inflated label count");
      Rec.LabelPos.reserve(NumLabels);
      for (size_t L = 0; L != NumLabels; ++L)
        Rec.LabelPos.push_back(static_cast<uint32_t>(R.readVarU()));
      if (S->Paged) {
        // The interpreter branches through this table before the page
        // holding the target is decoded, so validate it here: every
        // label must land inside the function (== CodeLen means a
        // branch to the end, which traps cleanly).
        for (uint32_t L : Rec.LabelPos)
          if (L > Rec.CodeLen)
            decodeFail("store: label past the end of '" + Rec.Name + "'");
        size_t NumPages = R.readVarU();
        if (NumPages == 0)
          decodeFail("store: function '" + Rec.Name + "' has no pages");
        if (NumPages > Manifest.size())
          decodeFail("store: inflated page count");
        Rec.FirstPage = S->TotalPages;
        uint64_t Covered = 0;
        Rec.Pages.reserve(NumPages);
        for (size_t Pg = 0; Pg != NumPages; ++Pg) {
          PageRec PR;
          PR.FirstInstr = static_cast<uint32_t>(Covered);
          PR.InstrCount = static_cast<uint32_t>(R.readVarU());
          if (PR.InstrCount == 0 && Rec.CodeLen != 0)
            decodeFail("store: empty page in '" + Rec.Name + "'");
          Covered += PR.InstrCount;
          if (Covered > Rec.CodeLen)
            decodeFail("store: page table of '" + Rec.Name +
                       "' overruns the function");
          if (S->Kind == PayloadKind::FuncImage) {
            size_t NumPageLabels = R.readVarU();
            if (NumPageLabels > Manifest.size())
              decodeFail("store: inflated page label count");
            PR.Labels.reserve(NumPageLabels);
            for (size_t PL = 0; PL != NumPageLabels; ++PL) {
              uint32_t L = static_cast<uint32_t>(R.readVarU());
              // Page labels index the function label table and must be
              // strictly increasing (they are ranks' targets).
              if (L >= NumLabels)
                decodeFail("store: page label out of range in '" +
                           Rec.Name + "'");
              if (!PR.Labels.empty() && L <= PR.Labels.back())
                decodeFail("store: unsorted page labels in '" + Rec.Name +
                           "'");
              PR.Labels.push_back(L);
            }
          }
          Rec.Pages.push_back(std::move(PR));
        }
        if (Covered != Rec.CodeLen)
          decodeFail("store: page table of '" + Rec.Name +
                     "' does not cover the function");
        uint64_t Total = uint64_t(S->TotalPages) + NumPages;
        if (Total > Src->functionFrameCount())
          decodeFail("store: manifest page count does not match frames");
        S->TotalPages = static_cast<uint32_t>(Total);
      }
      S->Funcs.push_back(std::move(Rec));
    }
    if (PerPage) {
      // One chain index per frame, in frame order, after the function
      // records (the frame count is only known once those are parsed).
      size_t NFrames = S->Paged ? S->TotalPages : S->Funcs.size();
      S->FrameChain.reserve(NFrames);
      for (size_t I = 0; I != NFrames; ++I) {
        uint64_t C = R.readVarU();
        if (C >= S->Chains.size())
          decodeFail("store: per-page chain index out of range");
        S->FrameChain.push_back(static_cast<uint32_t>(C));
      }
    }
    if (!R.atEnd())
      decodeFail("store: trailing manifest bytes");
    if (S->Funcs.empty())
      decodeFail("store: container holds no functions");
    if (S->Skel.Entry >= S->Funcs.size())
      decodeFail("store: entry function out of range");
    size_t WantFrames = S->Paged ? S->TotalPages : S->Funcs.size();
    if (WantFrames != Src->functionFrameCount())
      decodeFail("store: manifest frame count does not match container");

    // Resolve the module's content identity. Recomputing from the
    // frames is the ground truth; the manifest claim is checked against
    // it before this store may join a *shared* registry (a forged or
    // corrupt claim must not key into another tenant's frames), and
    // trusted only when the source cannot be hashed (on-demand files).
    // A private store tolerates a mismatched claim — its registry
    // serves only itself, and a corrupt frame still fails its fault
    // typed.
    uint64_t Computed = 0;
    bool HaveComputed = Src->contentHash(Computed);
    if (Opts.SharedRegistry && HaveClaim && HaveComputed &&
        Claim != Computed)
      decodeFail("store: manifest container hash does not match the "
                 "frames; refusing to join the shared registry");
    if (HaveComputed)
      S->Hash = Computed;
    else if (HaveClaim)
      S->Hash = Claim;
    else if (!Opts.SharedRegistry)
      // Legacy container on an unhashable source: any stable value
      // works for a private registry.
      S->Hash = pipeline::hashContainerFrames(S->Spec, {Manifest});
    else
      decodeFail("store: legacy container carries no content hash and "
                 "the source cannot be hashed; cannot join a shared "
                 "registry");

    S->indexPages();
    S->Source = std::move(Src);
    Result<bool> Init = S->initRuntime(Opts);
    if (!Init.ok())
      decodeFail(Init.error().message());
    // No code to scan for call edges at load time: the static graph is
    // next-page fall-through only (a caller may applyAccessProfile a
    // recorded trace for the full picture).
    S->initStaticSuccessors(nullptr);
    // Charge the manifest's transport cost to this tenant so stats()
    // shows the whole session's fetch bill.
    S->Cnt.FetchAttempts.fetch_add(MM.Attempts, std::memory_order_relaxed);
    S->Cnt.FetchRetries.fetch_add(MM.TransientFailures,
                                  std::memory_order_relaxed);
    S->Cnt.FetchedBytes.fetch_add(MM.FetchedBytes, std::memory_order_relaxed);
    S->Cnt.FetchVirtualNanos.fetch_add(
        static_cast<uint64_t>(MM.VirtualSeconds * 1e9),
        std::memory_order_relaxed);
    return S;
  });
}

//===----------------------------------------------------------------------===//
// Fault path
//===----------------------------------------------------------------------===//

CodeStore::FaultOutcome CodeStore::decodeFrame(uint32_t Id, FetchMetrics &M) {
  const FuncRecord &Rec = Funcs[Paged ? FrameFunc[Id] : Id];
  FetchResult Fetched = fetchWithRetry(*Source, Id, Opts.Retry, M);
  if (!Fetched.Ok)
    return DecodeError("store: fetch frame of '" + Rec.Name + "' failed [" +
                       fetchErrorKindName(Fetched.Err) + "]: " + Fetched.Msg);
  std::vector<uint8_t> Cur = std::move(Fetched.Bytes);
  // Manifest v4 stores route each frame through its own chain; everyone
  // else decodes through the container's single chain.
  const std::vector<const pipeline::Codec *> &Decode =
      FrameChain.empty() ? Chain : Chains[FrameChain[Id]];
  for (auto It = Decode.rbegin(); It != Decode.rend(); ++It) {
    Result<std::vector<uint8_t>> R = (*It)->tryDecompress(Cur);
    if (!R.ok())
      return R.error();
    Cur = R.take();
  }
  std::shared_ptr<vm::VMFunction> F;
  if (Paged) {
    const PageRec &PR = Rec.Pages[Id - Rec.FirstPage];
    Result<std::vector<vm::Instr>> Code =
        pipeline::tryDecodePagePayload(Kind, Cur, PR.Labels);
    if (!Code.ok())
      return Code.error();
    F = std::make_shared<vm::VMFunction>();
    F->Code = Code.take();
    if (F->Code.size() != PR.InstrCount)
      return DecodeError("store: page of '" + Rec.Name +
                         "' decoded to the wrong instruction count");
    // The interpreter indexes the *function* label table unchecked.
    for (const vm::Instr &In : F->Code)
      if (vm::isBranch(In.Op) && In.Target >= Rec.LabelPos.size())
        return DecodeError("store: branch to a missing label in '" +
                           Rec.Name + "'");
    return std::shared_ptr<const vm::VMFunction>(std::move(F));
  }
  if (Kind == PayloadKind::FuncImage) {
    Result<vm::VMFunction> Img = pipeline::tryDecodeFuncImage(Cur);
    if (!Img.ok())
      return Img.error();
    F = std::make_shared<vm::VMFunction>(Img.take());
  } else {
    Result<std::vector<vm::Instr>> Code = vm::tryDecodeFunction(Cur);
    if (!Code.ok())
      return Code.error();
    F = std::make_shared<vm::VMFunction>();
    F->Name = Rec.Name;
    F->FrameSize = Rec.FrameSize;
    F->LabelPos = Rec.LabelPos;
    F->Code = Code.take();
  }
  // The interpreter indexes LabelPos[Target] unchecked; make malformed
  // frames a typed error here, never UB there.
  for (const vm::Instr &In : F->Code)
    if (vm::isBranch(In.Op) && In.Target >= F->LabelPos.size())
      return DecodeError("store: branch to a missing label in '" + Rec.Name +
                         "'");
  for (uint32_t L : F->LabelPos)
    if (L > F->Code.size())
      return DecodeError("store: label past the end of '" + Rec.Name + "'");
  return std::shared_ptr<const vm::VMFunction>(std::move(F));
}

CodeStore::FaultOutcome CodeStore::registryFault(uint32_t Id, bool Pin,
                                                 uint64_t Held, bool Prefetch,
                                                 uint64_t *PinGenOut) {
  FrameRegistry::Info I;
  FaultOutcome Out = Reg->fault(
      keyOf(Id), Pin, Held, Prefetch,
      [&](bool &DecoderRan) -> FaultOutcome {
        FetchMetrics M;
        FaultOutcome R = [&]() -> FaultOutcome {
          try {
            return decodeFrame(Id, M);
          } catch (const std::bad_alloc &) {
            return DecodeError("store: allocation failed while decoding");
          }
        }();
        Cnt.FetchAttempts.fetch_add(M.Attempts, std::memory_order_relaxed);
        Cnt.FetchRetries.fetch_add(M.TransientFailures,
                                   std::memory_order_relaxed);
        Cnt.FetchedBytes.fetch_add(M.FetchedBytes, std::memory_order_relaxed);
        Cnt.FetchVirtualNanos.fetch_add(
            static_cast<uint64_t>(M.VirtualSeconds * 1e9),
            std::memory_order_relaxed);
        // A failed fetch delivers no bytes, so no decode ran; a decode
        // failure comes after a successful (byte-delivering) fetch.
        if (M.Attempts > 0 && M.FetchedBytes == 0)
          Cnt.FetchFailures.fetch_add(1, std::memory_order_relaxed);
        else
          DecoderRan = true;
        return R;
      },
      I);
  if (!Prefetch) {
    Cnt.Hits.fetch_add(I.Hits, std::memory_order_relaxed);
    Cnt.Misses.fetch_add(I.Misses, std::memory_order_relaxed);
    Cnt.SingleFlightWaits.fetch_add(I.Waits, std::memory_order_relaxed);
  }
  if (I.Led && !Out.ok())
    Cnt.DecodeErrors.fetch_add(1, std::memory_order_relaxed);
  if (PinGenOut)
    *PinGenOut = I.PinGen;
  return Out;
}

CodeStore::FaultOutcome CodeStore::faultImpl(uint32_t Id, bool Pin,
                                             bool Prefetch) {
  if (Id >= frameCount())
    return DecodeError("store: frame id " + std::to_string(Id) +
                       " out of range");
  if (!Prefetch)
    // Heat accrues on every demand touch — hit or miss — so the signal
    // tracks the access pattern, not the cache's current luck.
    Heat->touch(Id, Paged ? FrameFunc[Id] : Id);
  if (!Pin)
    return registryFault(Id, /*Pin=*/false, /*Held=*/0, Prefetch, nullptr);

  // Pinning fault: PinMu serializes this tenant's pin bookkeeping so
  // two threads pinning the same frame take exactly one registry
  // reference. Lock order is always tenant PinMu -> registry shard
  // locks, never the reverse.
  std::lock_guard<std::mutex> L(PinMu);
  uint64_t Held = PinnedByMe[Id] ? PinGens[Id] : 0;
  uint64_t NewGen = 0;
  FaultOutcome Out = registryFault(Id, /*Pin=*/true, Held, Prefetch, &NewGen);
  if (Out.ok()) {
    PinnedByMe[Id] = 1;
    PinGens[Id] = NewGen;
  }
  return Out;
}

CodeStore::FaultOutcome CodeStore::assembleFunction(uint32_t Fn, bool Pin) {
  const FuncRecord &Rec = Funcs[Fn];
  auto F = std::make_shared<vm::VMFunction>();
  F->Name = Rec.Name;
  F->FrameSize = Rec.FrameSize;
  F->LabelPos = Rec.LabelPos;
  // A hostile manifest can claim any CodeLen it likes as long as its
  // page table sums to it; growth past this cap is paid for by actual
  // decoded pages, so a reserve bomb never allocates ahead of content.
  F->Code.reserve(std::min<size_t>(Rec.CodeLen, size_t(1) << 20));
  for (uint32_t K = 0; K != Rec.Pages.size(); ++K) {
    FaultOutcome R = faultImpl(Rec.FirstPage + K, Pin, /*Prefetch=*/false);
    if (!R.ok())
      return R.error();
    const std::shared_ptr<const vm::VMFunction> &Body = R.value();
    F->Code.insert(F->Code.end(), Body->Code.begin(), Body->Code.end());
  }
  return std::shared_ptr<const vm::VMFunction>(std::move(F));
}

Result<std::shared_ptr<const vm::VMFunction>> CodeStore::fault(uint32_t Id) {
  if (Id >= Funcs.size())
    return DecodeError("store: function id " + std::to_string(Id) +
                       " out of range");
  if (!Paged)
    return faultImpl(Id, /*Pin=*/false, /*Prefetch=*/false);
  return assembleFunction(Id, /*Pin=*/false);
}

Result<vm::CodeSpan> CodeStore::faultSpan(uint32_t Fn, uint32_t Idx) {
  if (Fn >= Funcs.size())
    return DecodeError("store: function id " + std::to_string(Fn) +
                       " out of range");
  vm::CodeSpan S;
  if (!Paged) {
    FaultOutcome R = faultImpl(Fn, /*Pin=*/false, /*Prefetch=*/false);
    if (!R.ok())
      return R.error();
    std::shared_ptr<const vm::VMFunction> B = R.take();
    S.Code = B->Code.data();
    S.Begin = 0;
    S.End = static_cast<uint32_t>(B->Code.size());
    S.FuncLen = S.End;
    S.Labels = &B->LabelPos;
    S.Name = &B->Name;
    S.Keep = std::move(B);
    return S;
  }
  const FuncRecord &Rec = Funcs[Fn];
  uint32_t K = pageIndexOf(Rec, Idx);
  FaultOutcome R = faultImpl(Rec.FirstPage + K, /*Pin=*/false,
                             /*Prefetch=*/false);
  if (!R.ok())
    return R.error();
  std::shared_ptr<const vm::VMFunction> B = R.take();
  const PageRec &PR = Rec.Pages[K];
  S.Code = B->Code.data();
  S.Begin = PR.FirstInstr;
  S.End = PR.FirstInstr + PR.InstrCount;
  S.FuncLen = Rec.CodeLen;
  S.Labels = &Rec.LabelPos;
  S.Name = &Rec.Name;
  S.Keep = std::move(B);
  return S;
}

Result<std::shared_ptr<const vm::VMFunction>> CodeStore::pin(uint32_t Id) {
  if (Id >= Funcs.size())
    return DecodeError("store: function id " + std::to_string(Id) +
                       " out of range");
  if (!Paged)
    return faultImpl(Id, /*Pin=*/true, /*Prefetch=*/false);
  return assembleFunction(Id, /*Pin=*/true);
}

void CodeStore::unpinEntry(uint32_t Id) {
  std::lock_guard<std::mutex> L(PinMu);
  if (!PinnedByMe[Id])
    return;
  PinnedByMe[Id] = 0;
  // A stale generation (the pinned entry was evicted under plain LRU
  // and possibly re-created) makes this a registry no-op — the pin
  // died with the eviction.
  Reg->unpin(keyOf(Id), PinGens[Id]);
  PinGens[Id] = 0;
}

void CodeStore::unpin(uint32_t Id) {
  if (Id >= Funcs.size())
    return;
  if (!Paged) {
    unpinEntry(Id);
    return;
  }
  const FuncRecord &Rec = Funcs[Id];
  for (uint32_t K = 0; K != Rec.Pages.size(); ++K)
    unpinEntry(Rec.FirstPage + K);
}

void CodeStore::warmFrames(const std::vector<uint32_t> &Frames,
                           ThreadPool &Pool) {
  // One advisory hint up front, naming every frame this wave will
  // fault, so a transport with per-request overhead (a socket) can
  // coalesce the whole wave into a single round trip and stage the
  // bytes; the pool jobs below then fetch from the staging area. For
  // local/file/simulated sources this is a no-op. Hint and warms cover
  // the *same* set — hinting what will not be warmed would fetch bytes
  // nobody admits, and warming what was not hinted would break the
  // transport's one-round-trip coalescing.
  if (Frames.empty())
    return;
  Source->prefetchHint(Frames);
  for (uint32_t Id : Frames)
    Pool.submit([this, Id] {
      try {
        (void)faultImpl(Id, /*Pin=*/false, /*Prefetch=*/true);
      } catch (...) {
        // Pool jobs must not throw; failures are already counted in
        // DecodeErrors by the fault path.
      }
    });
}

void CodeStore::prefetch(const std::vector<uint32_t> &Ids, ThreadPool &Pool) {
  std::vector<uint32_t> Want;
  for (uint32_t Id : Ids) {
    if (Id >= Funcs.size())
      continue;
    if (!Paged) {
      if (!entryResident(Id))
        Want.push_back(Id);
      continue;
    }
    const FuncRecord &Rec = Funcs[Id];
    for (uint32_t K = 0; K != Rec.Pages.size(); ++K)
      if (!entryResident(Rec.FirstPage + K))
        Want.push_back(Rec.FirstPage + K);
  }
  warmFrames(clampToAdmission(std::move(Want)), Pool);
}

uint32_t CodeStore::pageIndexOf(const FuncRecord &Rec, uint32_t Idx) {
  // Clamp an out-of-range Idx to the last page: the interpreter checks
  // the Pc against the function length itself and traps with the
  // function's name.
  uint32_t I = Idx;
  if (Rec.CodeLen == 0)
    I = 0;
  else if (I >= Rec.CodeLen)
    I = Rec.CodeLen - 1;
  auto It = std::upper_bound(
      Rec.Pages.begin(), Rec.Pages.end(), I,
      [](uint32_t V, const PageRec &P) { return V < P.FirstInstr; });
  return static_cast<uint32_t>(It - Rec.Pages.begin()) - 1;
}

uint32_t CodeStore::frameOf(uint32_t Fn, uint32_t Idx) const {
  if (!Paged)
    return Fn;
  const FuncRecord &Rec = Funcs[Fn];
  return Rec.FirstPage + pageIndexOf(Rec, Idx);
}

size_t CodeStore::estimatedDecodedCost(uint32_t FrameId) const {
  if (Paged) {
    // Exact: a decoded page body is bare code (decodeFrame leaves
    // Name/LabelPos empty; the function-level tables live in Funcs).
    const FuncRecord &Rec = Funcs[FrameFunc[FrameId]];
    const PageRec &PR = Rec.Pages[FrameId - Rec.FirstPage];
    return sizeof(vm::VMFunction) + size_t(PR.InstrCount) * sizeof(vm::Instr);
  }
  // Floor: the manifest records no code length for unpaged frames.
  const FuncRecord &Rec = Funcs[FrameId];
  return sizeof(vm::VMFunction) + Rec.Name.size() +
         Rec.LabelPos.size() * sizeof(uint32_t);
}

std::vector<uint32_t>
CodeStore::clampToAdmission(std::vector<uint32_t> Frames) const {
  const size_t Budget = cacheBudgetBytes();
  size_t Cost = 0, Keep = 0;
  for (uint32_t Id : Frames) {
    Cost += estimatedDecodedCost(Id);
    // The first frame always passes: the most-recently-faulted entry is
    // never evicted, so admission accepts at least one frame whatever
    // the budget.
    if (Keep && Cost > Budget)
      break;
    ++Keep;
  }
  Frames.resize(Keep);
  return Frames;
}

void CodeStore::initStaticSuccessors(const vm::VMProgram *P) {
  auto G = std::make_shared<SuccessorGraph>();
  G->Next.resize(frameCount());
  auto AddEdge = [&](uint32_t From, uint32_t To) {
    std::vector<uint32_t> &N = G->Next[From];
    if (std::find(N.begin(), N.end(), To) == N.end())
      N.push_back(To);
  };
  for (uint32_t Fn = 0; Fn != Funcs.size(); ++Fn) {
    const FuncRecord &Rec = Funcs[Fn];
    if (Paged)
      // Fall-through: after page K the likely next fault is page K+1.
      for (uint32_t K = 0; K + 1 < Rec.Pages.size(); ++K)
        AddEdge(Rec.FirstPage + K, Rec.FirstPage + K + 1);
    if (!P)
      continue;
    // Call edges from the code we are packing: the frame holding a CALL
    // predicts the callee's entry frame.
    const vm::VMFunction &F = P->Functions[Fn];
    for (uint32_t I = 0; I != F.Code.size(); ++I) {
      const vm::Instr &In = F.Code[I];
      if (In.Op != vm::VMOp::CALL || In.Target >= Funcs.size())
        continue;
      uint32_t From = Paged ? Rec.FirstPage + pageIndexOf(Rec, I) : Fn;
      uint32_t To = Paged ? Funcs[In.Target].FirstPage : In.Target;
      if (From != To)
        AddEdge(From, To);
    }
  }
  std::lock_guard<std::mutex> L(SuccMu);
  Succ = std::move(G);
}

void CodeStore::applyAccessProfile(const pipeline::ExecutionTrace &T) {
  // Count observed frame->frame transfers through this store's own page
  // tables; the trace speaks (function, instruction) so it is valid for
  // any layout of the same program.
  std::unordered_map<uint64_t, uint64_t> Edges;
  uint32_t Prev = ~0u;
  bool HavePrev = false;
  for (const pipeline::TraceEvent &E : T.Events) {
    if (E.Fn >= Funcs.size()) {
      HavePrev = false; // Advisory data: skip and break the chain.
      continue;
    }
    uint32_t Frame = frameOf(E.Fn, E.Idx);
    if (HavePrev && Frame != Prev)
      Edges[(uint64_t(Prev) << 32) | Frame]++;
    Prev = Frame;
    HavePrev = true;
  }

  auto G = std::make_shared<SuccessorGraph>();
  G->FromTrace = true;
  G->Next.resize(frameCount());
  std::vector<std::vector<std::pair<uint64_t, uint32_t>>> Ranked(frameCount());
  for (const auto &KV : Edges)
    Ranked[KV.first >> 32].push_back(
        {KV.second, static_cast<uint32_t>(KV.first)});
  constexpr size_t MaxStored = 8;
  for (uint32_t F = 0; F != Ranked.size(); ++F) {
    std::sort(Ranked[F].begin(), Ranked[F].end(),
              [](const std::pair<uint64_t, uint32_t> &A,
                 const std::pair<uint64_t, uint32_t> &B) {
                // Hotter first; ties by lower frame id for determinism.
                return A.first != B.first ? A.first > B.first
                                          : A.second < B.second;
              });
    if (Ranked[F].size() > MaxStored)
      Ranked[F].resize(MaxStored);
    for (const auto &E : Ranked[F])
      G->Next[F].push_back(E.second);
  }
  std::lock_guard<std::mutex> L(SuccMu);
  Succ = std::move(G);
}

bool CodeStore::hasAccessProfile() const {
  std::lock_guard<std::mutex> L(SuccMu);
  return Succ && Succ->FromTrace;
}

std::vector<uint32_t> CodeStore::predictedSuccessors(uint32_t Frame,
                                                     unsigned Max) const {
  std::shared_ptr<const SuccessorGraph> G;
  {
    std::lock_guard<std::mutex> L(SuccMu);
    G = Succ;
  }
  if (!G || Frame >= G->Next.size())
    return {};
  const std::vector<uint32_t> &N = G->Next[Frame];
  return std::vector<uint32_t>(N.begin(),
                               N.begin() + std::min<size_t>(Max, N.size()));
}

void CodeStore::prefetchPredicted(uint32_t Fn, uint32_t Idx,
                                  ThreadPool &Pool) {
  if (Fn >= Funcs.size())
    return;
  // Walk the whole ranked list and keep the first DefaultPredictions
  // frames that are NOT already resident: as earlier predictions land,
  // later faults advance down the list instead of re-predicting them.
  std::vector<uint32_t> Want;
  for (uint32_t Id : predictedSuccessors(frameOf(Fn, Idx), ~0u)) {
    if (entryResident(Id))
      continue;
    Want.push_back(Id);
    if (Want.size() == DefaultPredictions)
      break;
  }
  warmFrames(clampToAdmission(std::move(Want)), Pool);
}

bool CodeStore::entryResident(uint32_t Id) const {
  return Reg->resident(keyOf(Id));
}

bool CodeStore::isResident(uint32_t Id) const {
  if (Id >= Funcs.size())
    return false;
  if (!Paged)
    return entryResident(Id);
  const FuncRecord &Rec = Funcs[Id];
  for (uint32_t K = 0; K != Rec.Pages.size(); ++K)
    if (!entryResident(Rec.FirstPage + K))
      return false;
  return true;
}

StoreStats CodeStore::stats() const {
  StoreStats T;
  T.Hits = Cnt.Hits.load(std::memory_order_relaxed);
  T.Misses = Cnt.Misses.load(std::memory_order_relaxed);
  T.SingleFlightWaits =
      Cnt.SingleFlightWaits.load(std::memory_order_relaxed);
  T.DecodeErrors = Cnt.DecodeErrors.load(std::memory_order_relaxed);
  T.FetchAttempts = Cnt.FetchAttempts.load(std::memory_order_relaxed);
  T.FetchRetries = Cnt.FetchRetries.load(std::memory_order_relaxed);
  T.FetchFailures = Cnt.FetchFailures.load(std::memory_order_relaxed);
  T.FetchedBytes = Cnt.FetchedBytes.load(std::memory_order_relaxed);
  T.FetchVirtualNanos =
      Cnt.FetchVirtualNanos.load(std::memory_order_relaxed);
  RegistryStats R = Reg->stats();
  T.Decodes = R.Decodes;
  T.PrefetchDecodes = R.PrefetchDecodes;
  T.Evictions = R.Evictions;
  T.DecodeNanos = R.DecodeNanos;
  T.DecodedBytes = R.DecodedBytes;
  T.ResidentBytes = R.ResidentBytes;
  T.ResidentFunctions = R.ResidentFrames;
  T.PinnedFunctions = R.PinnedFrames;
  return T;
}

void CodeStore::resetStats() {
  Cnt.Hits.store(0, std::memory_order_relaxed);
  Cnt.Misses.store(0, std::memory_order_relaxed);
  Cnt.SingleFlightWaits.store(0, std::memory_order_relaxed);
  Cnt.DecodeErrors.store(0, std::memory_order_relaxed);
  Cnt.FetchAttempts.store(0, std::memory_order_relaxed);
  Cnt.FetchRetries.store(0, std::memory_order_relaxed);
  Cnt.FetchFailures.store(0, std::memory_order_relaxed);
  Cnt.FetchedBytes.store(0, std::memory_order_relaxed);
  Cnt.FetchVirtualNanos.store(0, std::memory_order_relaxed);
  // The single-tenant contract: resetting the only view clears the
  // decode counters too. A shared registry is deliberately untouched —
  // its counters belong to every tenant.
  if (PrivateReg)
    Reg->resetStats();
}

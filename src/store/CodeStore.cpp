//===- store/CodeStore.cpp - Demand-paged compressed-code store -----------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "store/CodeStore.h"

#include "pipeline/Payload.h"
#include "pipeline/Pipeline.h"
#include "support/ByteIO.h"
#include "support/Support.h"
#include "support/ThreadPool.h"
#include "vm/Encode.h"

#include <algorithm>
#include <chrono>

using namespace ccomp;
using namespace ccomp::store;
using pipeline::PayloadKind;

namespace {

constexpr uint32_t ManifestMagic = 0x4D534343; // "CCSM".
constexpr uint8_t ManifestVersion = 1;      // Whole-function frames.
constexpr uint8_t ManifestVersionPaged = 2; // Sub-function page frames.

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Manifest tag for what the decompressed frame body holds.
uint8_t bodyTag(PayloadKind K) {
  return K == PayloadKind::FuncImage ? 0 : 1; // 1 = fixed-width code only.
}

} // namespace

size_t store::decodedCostBytes(const vm::VMFunction &F) {
  return sizeof(vm::VMFunction) + F.Code.size() * sizeof(vm::Instr) +
         F.LabelPos.size() * sizeof(uint32_t) + F.Name.size();
}

//===----------------------------------------------------------------------===//
// Build / save / load
//===----------------------------------------------------------------------===//

void CodeStore::initRuntime(StoreOptions O) {
  Opts = O;
  unsigned N = std::max(1u, Opts.Shards);
  N = std::min<unsigned>(N, std::max<uint32_t>(1, frameCount()));
  Shards = std::vector<Shard>(N);
  // Split the budget so the shard budgets sum to exactly the configured
  // bytes: budget/N each, with the remainder spread one byte per shard.
  // (A plain budget/N truncates — a 7-byte budget over 4 shards would
  // silently serve only 4 bytes of capacity.)
  size_t Base = Opts.CacheBudgetBytes / N;
  size_t Rem = Opts.CacheBudgetBytes % N;
  for (unsigned I = 0; I != N; ++I)
    Shards[I].Budget = Base + (I < Rem ? 1 : 0);
  FrameHeat = std::make_unique<std::atomic<uint64_t>[]>(
      std::max<uint32_t>(1, frameCount()));
  FuncHeat = std::make_unique<std::atomic<uint64_t>[]>(
      std::max<uint32_t>(1, functionCount()));
  for (uint32_t I = 0; I != frameCount(); ++I)
    FrameHeat[I].store(0, std::memory_order_relaxed);
  for (uint32_t I = 0; I != functionCount(); ++I)
    FuncHeat[I].store(0, std::memory_order_relaxed);
}

uint64_t CodeStore::frameHeat(uint32_t Id) const {
  return Id < frameCount() ? FrameHeat[Id].load(std::memory_order_relaxed)
                           : 0;
}

uint64_t CodeStore::functionHeat(uint32_t Fn) const {
  return Fn < functionCount() ? FuncHeat[Fn].load(std::memory_order_relaxed)
                              : 0;
}

void CodeStore::indexPages() {
  FrameFunc.clear();
  if (!Paged)
    return;
  FrameFunc.reserve(TotalPages);
  for (uint32_t F = 0; F != Funcs.size(); ++F)
    for (size_t K = 0; K != Funcs[F].Pages.size(); ++K)
      FrameFunc.push_back(F);
}

size_t CodeStore::cacheBudgetBytes() const {
  size_t Total = 0;
  for (const Shard &Sh : Shards)
    Total += Sh.Budget;
  return Total;
}

std::unique_ptr<CodeStore> CodeStore::build(const vm::VMProgram &P,
                                            const std::string &ChainSpec,
                                            StoreOptions Opts,
                                            std::string &Error) {
  std::vector<const pipeline::Codec *> Chain =
      pipeline::parseChain(ChainSpec, Error);
  if (Chain.empty())
    return nullptr;
  if (Chain.front()->payloadKind() == PayloadKind::Module) {
    Error = std::string("store: codec '") + Chain.front()->name() +
            "' compresses whole modules; the store needs per-function frames";
    return nullptr;
  }
  if (P.Functions.empty()) {
    Error = "store: program has no functions";
    return nullptr;
  }
  if (P.Entry >= P.Functions.size()) {
    Error = "store: entry function out of range";
    return nullptr;
  }

  std::unique_ptr<CodeStore> S(new CodeStore());
  S->Spec = ChainSpec;
  S->Chain = std::move(Chain);
  S->Kind = S->Chain.front()->payloadKind();
  S->Skel.Entry = P.Entry;
  S->Skel.Globals = P.Globals;
  S->Skel.GlobalBase = P.GlobalBase;
  S->Skel.GlobalEnd = P.GlobalEnd;
  S->Paged = Opts.PageTargetBytes > 0;

  // Per-function (or per-page) payloads, matching makePayloads' contract
  // per kind.
  std::vector<std::vector<uint8_t>> Payloads;
  if (!S->Paged) {
    Payloads.reserve(P.Functions.size());
    for (const vm::VMFunction &F : P.Functions)
      Payloads.push_back(S->Kind == PayloadKind::FuncImage
                             ? pipeline::encodeFuncImage(F)
                             : vm::encodeFunction(F));
    S->Funcs.reserve(P.Functions.size());
    for (size_t I = 0; I != P.Functions.size(); ++I) {
      FuncRecord Rec;
      Rec.Name = P.Functions[I].Name;
      Rec.FrameSize = P.Functions[I].FrameSize;
      // The function image carries its own label table; code-only bodies
      // need the manifest to preserve it.
      if (S->Kind != PayloadKind::FuncImage)
        Rec.LabelPos = P.Functions[I].LabelPos;
      S->Funcs.push_back(std::move(Rec));
    }
  } else {
    S->Funcs.reserve(P.Functions.size());
    for (const vm::VMFunction &F : P.Functions) {
      const vm::VMFunction *Use = &F;
      vm::VMFunction Canon;
      if (S->Kind == PayloadKind::FuncImage) {
        // Canonicalize through the image round trip first (sorted,
        // deduplicated label table), so the pages' label references,
        // the manifest's label table, and what an unpaged store would
        // decode all agree — fault() reassembles a byte-identical body.
        Result<vm::VMFunction> C =
            pipeline::tryDecodeFuncImage(pipeline::encodeFuncImage(F));
        if (!C.ok()) {
          Error = "store: function '" + F.Name +
                  "' does not round-trip as an image: " + C.error().message();
          return nullptr;
        }
        Canon = C.take();
        Use = &Canon;
      }
      FuncRecord Rec;
      Rec.Name = Use->Name;
      Rec.FrameSize = Use->FrameSize;
      Rec.LabelPos = Use->LabelPos;
      Rec.CodeLen = static_cast<uint32_t>(Use->Code.size());
      Rec.FirstPage = S->TotalPages;
      std::vector<pipeline::PageChunk> Chunks =
          pipeline::splitFunctionPages(*Use, Opts.PageTargetBytes);
      for (pipeline::PageChunk &C : Chunks) {
        PageRec PR;
        PR.FirstInstr = C.FirstInstr;
        PR.InstrCount = static_cast<uint32_t>(C.Code.size());
        Payloads.push_back(pipeline::encodePagePayload(
            S->Kind, C.Code,
            S->Kind == PayloadKind::FuncImage ? &PR.Labels : nullptr));
        Rec.Pages.push_back(std::move(PR));
      }
      S->TotalPages += static_cast<uint32_t>(Chunks.size());
      S->Funcs.push_back(std::move(Rec));
    }
  }
  std::vector<std::vector<uint8_t>> Frames =
      pipeline::compressAll(S->Chain, Payloads, Opts.BuildJobs);

  S->indexPages();
  S->Source =
      std::make_unique<LocalFrameSource>(ChainSpec, std::move(Frames));
  S->initRuntime(Opts);
  return S;
}

Result<std::vector<uint8_t>> CodeStore::trySave() {
  ByteWriter W;
  W.writeU32(ManifestMagic);
  W.writeU8(Paged ? ManifestVersionPaged : ManifestVersion);
  W.writeU8(bodyTag(Kind));
  W.writeVarU(Skel.Entry);
  W.writeVarU(Skel.GlobalBase);
  W.writeVarU(Skel.GlobalEnd);
  W.writeVarU(Skel.Globals.size());
  for (const vm::VMGlobal &G : Skel.Globals) {
    W.writeStr(G.Name);
    W.writeVarU(G.Addr);
    W.writeVarU(G.Size);
    W.writeVarU(G.Init.size());
    W.writeBytes(G.Init);
  }
  W.writeVarU(Funcs.size());
  for (const FuncRecord &Rec : Funcs) {
    W.writeStr(Rec.Name);
    W.writeVarU(Rec.FrameSize);
    if (Paged)
      W.writeVarU(Rec.CodeLen);
    W.writeVarU(Rec.LabelPos.size());
    for (uint32_t L : Rec.LabelPos)
      W.writeVarU(L);
    if (Paged) {
      W.writeVarU(Rec.Pages.size());
      for (const PageRec &PR : Rec.Pages) {
        W.writeVarU(PR.InstrCount);
        if (Kind == PayloadKind::FuncImage) {
          W.writeVarU(PR.Labels.size());
          for (uint32_t L : PR.Labels)
            W.writeVarU(L);
        }
      }
    }
  }

  std::vector<std::vector<uint8_t>> Items;
  Items.reserve(frameCount() + 1);
  Items.push_back(W.take());
  for (uint32_t I = 0; I != frameCount(); ++I) {
    FetchMetrics M;
    FetchResult R = fetchWithRetry(*Source, I, Opts.Retry, M);
    if (!R.Ok) {
      const std::string &Name = Funcs[Paged ? FrameFunc[I] : I].Name;
      return DecodeError("store: save: fetch frame of '" + Name +
                         "' failed [" + fetchErrorKindName(R.Err) +
                         "]: " + R.Msg);
    }
    Items.push_back(std::move(R.Bytes));
  }
  return pipeline::packContainer(Spec, Items);
}

std::vector<uint8_t> CodeStore::save() {
  Result<std::vector<uint8_t>> R = trySave();
  if (!R.ok())
    reportFatal(R.error().message());
  return R.take();
}

Result<std::unique_ptr<CodeStore>> CodeStore::tryLoad(ByteSpan Bytes,
                                                      StoreOptions Opts) {
  Result<std::unique_ptr<LocalFrameSource>> Src =
      LocalFrameSource::fromContainerBytes(Bytes);
  if (!Src.ok())
    return Src.error();
  return tryFromSource(Src.take(), Opts);
}

Result<std::unique_ptr<CodeStore>>
CodeStore::tryOpenFile(const std::string &Path, StoreOptions Opts) {
  Result<std::unique_ptr<FileFrameSource>> Src = FileFrameSource::open(Path);
  if (!Src.ok())
    return Src.error();
  return tryFromSource(Src.take(), Opts);
}

Result<std::unique_ptr<CodeStore>>
CodeStore::tryFromSource(std::unique_ptr<FrameSource> Src, StoreOptions Opts) {
  std::string ChainError;
  std::vector<const pipeline::Codec *> Chain =
      pipeline::parseChain(Src->chainSpec(), ChainError);
  if (Chain.empty())
    return DecodeError("store: " + ChainError);
  if (Chain.front()->payloadKind() == PayloadKind::Module)
    return DecodeError(std::string("store: codec '") + Chain.front()->name() +
                       "' cannot serve per-function frames");

  // The manifest rides the same (possibly flaky) transport as frames.
  FetchMetrics MM;
  FetchResult MR = fetchWithRetry(*Src, ManifestFrameId, Opts.Retry, MM);
  if (!MR.Ok)
    return DecodeError("store: fetch manifest failed [" +
                       std::string(fetchErrorKindName(MR.Err)) +
                       "]: " + MR.Msg);

  return tryDecode([&] {
    std::unique_ptr<CodeStore> S(new CodeStore());
    S->Spec = Src->chainSpec();
    S->Chain = Chain;
    S->Kind = Chain.front()->payloadKind();

    const std::vector<uint8_t> &Manifest = MR.Bytes;
    ByteReader R(Manifest);
    if (R.readU32() != ManifestMagic)
      decodeFail("store: bad manifest magic");
    uint8_t Version = R.readU8();
    if (Version != ManifestVersion && Version != ManifestVersionPaged)
      decodeFail("store: unsupported manifest version");
    S->Paged = Version == ManifestVersionPaged;
    if (R.readU8() != bodyTag(S->Kind))
      decodeFail("store: manifest payload kind does not match codec chain");
    S->Skel.Entry = static_cast<uint32_t>(R.readVarU());
    S->Skel.GlobalBase = static_cast<uint32_t>(R.readVarU());
    S->Skel.GlobalEnd = static_cast<uint32_t>(R.readVarU());
    size_t NumGlobals = R.readVarU();
    if (NumGlobals > Manifest.size())
      decodeFail("store: inflated global count");
    for (size_t I = 0; I != NumGlobals; ++I) {
      vm::VMGlobal G;
      G.Name = R.readStr();
      G.Addr = static_cast<uint32_t>(R.readVarU());
      G.Size = static_cast<uint32_t>(R.readVarU());
      G.Init = R.readBytes(R.readVarU());
      S->Skel.Globals.push_back(std::move(G));
    }
    size_t NumFuncs = R.readVarU();
    if (NumFuncs > Manifest.size())
      decodeFail("store: inflated function count");
    for (size_t I = 0; I != NumFuncs; ++I) {
      FuncRecord Rec;
      Rec.Name = R.readStr();
      Rec.FrameSize = static_cast<uint32_t>(R.readVarU());
      if (S->Paged)
        Rec.CodeLen = static_cast<uint32_t>(R.readVarU());
      size_t NumLabels = R.readVarU();
      if (NumLabels > Manifest.size())
        decodeFail("store: inflated label count");
      Rec.LabelPos.reserve(NumLabels);
      for (size_t L = 0; L != NumLabels; ++L)
        Rec.LabelPos.push_back(static_cast<uint32_t>(R.readVarU()));
      if (S->Paged) {
        // The interpreter branches through this table before the page
        // holding the target is decoded, so validate it here: every
        // label must land inside the function (== CodeLen means a
        // branch to the end, which traps cleanly).
        for (uint32_t L : Rec.LabelPos)
          if (L > Rec.CodeLen)
            decodeFail("store: label past the end of '" + Rec.Name + "'");
        size_t NumPages = R.readVarU();
        if (NumPages == 0)
          decodeFail("store: function '" + Rec.Name + "' has no pages");
        if (NumPages > Manifest.size())
          decodeFail("store: inflated page count");
        Rec.FirstPage = S->TotalPages;
        uint64_t Covered = 0;
        Rec.Pages.reserve(NumPages);
        for (size_t Pg = 0; Pg != NumPages; ++Pg) {
          PageRec PR;
          PR.FirstInstr = static_cast<uint32_t>(Covered);
          PR.InstrCount = static_cast<uint32_t>(R.readVarU());
          if (PR.InstrCount == 0 && Rec.CodeLen != 0)
            decodeFail("store: empty page in '" + Rec.Name + "'");
          Covered += PR.InstrCount;
          if (Covered > Rec.CodeLen)
            decodeFail("store: page table of '" + Rec.Name +
                       "' overruns the function");
          if (S->Kind == PayloadKind::FuncImage) {
            size_t NumPageLabels = R.readVarU();
            if (NumPageLabels > Manifest.size())
              decodeFail("store: inflated page label count");
            PR.Labels.reserve(NumPageLabels);
            for (size_t PL = 0; PL != NumPageLabels; ++PL) {
              uint32_t L = static_cast<uint32_t>(R.readVarU());
              // Page labels index the function label table and must be
              // strictly increasing (they are ranks' targets).
              if (L >= NumLabels)
                decodeFail("store: page label out of range in '" +
                           Rec.Name + "'");
              if (!PR.Labels.empty() && L <= PR.Labels.back())
                decodeFail("store: unsorted page labels in '" + Rec.Name +
                           "'");
              PR.Labels.push_back(L);
            }
          }
          Rec.Pages.push_back(std::move(PR));
        }
        if (Covered != Rec.CodeLen)
          decodeFail("store: page table of '" + Rec.Name +
                     "' does not cover the function");
        uint64_t Total = uint64_t(S->TotalPages) + NumPages;
        if (Total > Src->functionFrameCount())
          decodeFail("store: manifest page count does not match frames");
        S->TotalPages = static_cast<uint32_t>(Total);
      }
      S->Funcs.push_back(std::move(Rec));
    }
    if (!R.atEnd())
      decodeFail("store: trailing manifest bytes");
    if (S->Funcs.empty())
      decodeFail("store: container holds no functions");
    if (S->Skel.Entry >= S->Funcs.size())
      decodeFail("store: entry function out of range");
    size_t WantFrames = S->Paged ? S->TotalPages : S->Funcs.size();
    if (WantFrames != Src->functionFrameCount())
      decodeFail("store: manifest frame count does not match container");
    S->indexPages();
    S->Source = std::move(Src);
    S->initRuntime(Opts);
    // Charge the manifest's transport cost to shard 0 so stats() shows
    // the whole session's fetch bill.
    Shard &Sh0 = S->Shards.front();
    Sh0.S.FetchAttempts += MM.Attempts;
    Sh0.S.FetchRetries += MM.TransientFailures;
    Sh0.S.FetchedBytes += MM.FetchedBytes;
    Sh0.S.FetchVirtualNanos +=
        static_cast<uint64_t>(MM.VirtualSeconds * 1e9);
    return S;
  });
}

//===----------------------------------------------------------------------===//
// Fault path
//===----------------------------------------------------------------------===//

CodeStore::FaultOutcome CodeStore::decodeFrame(uint32_t Id, FetchMetrics &M) {
  const FuncRecord &Rec = Funcs[Paged ? FrameFunc[Id] : Id];
  FetchResult Fetched = fetchWithRetry(*Source, Id, Opts.Retry, M);
  if (!Fetched.Ok)
    return DecodeError("store: fetch frame of '" + Rec.Name + "' failed [" +
                       fetchErrorKindName(Fetched.Err) + "]: " + Fetched.Msg);
  std::vector<uint8_t> Cur = std::move(Fetched.Bytes);
  for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
    Result<std::vector<uint8_t>> R = (*It)->tryDecompress(Cur);
    if (!R.ok())
      return R.error();
    Cur = R.take();
  }
  std::shared_ptr<vm::VMFunction> F;
  if (Paged) {
    const PageRec &PR = Rec.Pages[Id - Rec.FirstPage];
    Result<std::vector<vm::Instr>> Code =
        pipeline::tryDecodePagePayload(Kind, Cur, PR.Labels);
    if (!Code.ok())
      return Code.error();
    F = std::make_shared<vm::VMFunction>();
    F->Code = Code.take();
    if (F->Code.size() != PR.InstrCount)
      return DecodeError("store: page of '" + Rec.Name +
                         "' decoded to the wrong instruction count");
    // The interpreter indexes the *function* label table unchecked.
    for (const vm::Instr &In : F->Code)
      if (vm::isBranch(In.Op) && In.Target >= Rec.LabelPos.size())
        return DecodeError("store: branch to a missing label in '" +
                           Rec.Name + "'");
    return std::shared_ptr<const vm::VMFunction>(std::move(F));
  }
  if (Kind == PayloadKind::FuncImage) {
    Result<vm::VMFunction> Img = pipeline::tryDecodeFuncImage(Cur);
    if (!Img.ok())
      return Img.error();
    F = std::make_shared<vm::VMFunction>(Img.take());
  } else {
    Result<std::vector<vm::Instr>> Code = vm::tryDecodeFunction(Cur);
    if (!Code.ok())
      return Code.error();
    F = std::make_shared<vm::VMFunction>();
    F->Name = Rec.Name;
    F->FrameSize = Rec.FrameSize;
    F->LabelPos = Rec.LabelPos;
    F->Code = Code.take();
  }
  // The interpreter indexes LabelPos[Target] unchecked; make malformed
  // frames a typed error here, never UB there.
  for (const vm::Instr &In : F->Code)
    if (vm::isBranch(In.Op) && In.Target >= F->LabelPos.size())
      return DecodeError("store: branch to a missing label in '" + Rec.Name +
                         "'");
  for (uint32_t L : F->LabelPos)
    if (L > F->Code.size())
      return DecodeError("store: label past the end of '" + Rec.Name + "'");
  return std::shared_ptr<const vm::VMFunction>(std::move(F));
}

void CodeStore::evictOver(Shard &Sh, uint32_t Keep) {
  // Evict from the cold end until under budget. The entry faulted in
  // most recently (Keep) is never a victim, so a budget smaller than one
  // frame still serves; pinned entries are skipped under the pin-aware
  // policy.
  while (Sh.S.ResidentBytes > Sh.Budget && Sh.Map.size() > 1) {
    auto VictimIt = Sh.Lru.end();
    for (auto R = Sh.Lru.rbegin(); R != Sh.Lru.rend(); ++R) {
      if (*R == Keep)
        continue;
      if (Opts.Policy == EvictPolicy::PinAwareLRU &&
          Sh.Map.find(*R)->second.Pinned)
        continue;
      VictimIt = std::prev(R.base());
      break;
    }
    if (VictimIt == Sh.Lru.end())
      return; // Everything else is pinned; stay over budget.
    auto MIt = Sh.Map.find(*VictimIt);
    Sh.S.ResidentBytes -= MIt->second.Cost;
    --Sh.S.ResidentFunctions;
    if (MIt->second.Pinned)
      --Sh.S.PinnedFunctions; // Only reachable under plain LRU.
    Sh.Map.erase(MIt);
    Sh.Lru.erase(VictimIt);
    ++Sh.S.Evictions;
  }
}

CodeStore::FaultOutcome CodeStore::faultImpl(uint32_t Id, bool Pin,
                                             bool Prefetch) {
  if (Id >= frameCount())
    return DecodeError("store: frame id " + std::to_string(Id) +
                       " out of range");
  if (!Prefetch) {
    // Heat accrues on every demand touch — hit or miss — so the signal
    // tracks the access pattern, not the cache's current luck.
    FrameHeat[Id].fetch_add(1, std::memory_order_relaxed);
    FuncHeat[Paged ? FrameFunc[Id] : Id].fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  Shard &Sh = shardOf(Id);
  for (;;) {
    std::shared_future<FaultOutcome> Wait;
    std::promise<FaultOutcome> Pr;
    {
      std::lock_guard<std::mutex> L(Sh.Mu);
      auto It = Sh.Map.find(Id);
      if (It != Sh.Map.end()) {
        Sh.Lru.splice(Sh.Lru.begin(), Sh.Lru, It->second.LruIt);
        if (!Prefetch)
          ++Sh.S.Hits;
        if (Pin && !It->second.Pinned) {
          It->second.Pinned = true;
          ++Sh.S.PinnedFunctions;
        }
        return It->second.Fn;
      }
      if (!Prefetch)
        ++Sh.S.Misses;
      auto FIt = Sh.InFlight.find(Id);
      if (FIt != Sh.InFlight.end()) {
        if (!Prefetch)
          ++Sh.S.SingleFlightWaits;
        Wait = FIt->second;
      } else {
        Sh.InFlight.emplace(Id, Pr.get_future().share());
      }
    }
    if (Wait.valid()) {
      FaultOutcome Out = Wait.get();
      if (!Out.ok() || !Pin)
        return Out;
      continue; // Pin requested: mark it through the hit path.
    }

    // Single-flight leader: fetch + decode outside the lock.
    uint64_t T0 = nowNanos();
    FetchMetrics M;
    FaultOutcome Out = [&]() -> FaultOutcome {
      try {
        return decodeFrame(Id, M);
      } catch (const std::bad_alloc &) {
        return DecodeError("store: allocation failed while decoding");
      }
    }();
    uint64_t Nanos = nowNanos() - T0;

    {
      std::lock_guard<std::mutex> L(Sh.Mu);
      Sh.InFlight.erase(Id);
      Sh.S.FetchAttempts += M.Attempts;
      Sh.S.FetchRetries += M.TransientFailures;
      Sh.S.FetchedBytes += M.FetchedBytes;
      Sh.S.FetchVirtualNanos +=
          static_cast<uint64_t>(M.VirtualSeconds * 1e9);
      // A failed fetch delivers no bytes, so no decode ran; a decode
      // failure comes after a successful (byte-delivering) fetch.
      if (M.Attempts > 0 && M.FetchedBytes == 0) {
        ++Sh.S.FetchFailures;
      } else {
        ++Sh.S.Decodes;
        if (Prefetch)
          ++Sh.S.PrefetchDecodes;
        Sh.S.DecodeNanos += Nanos;
      }
      if (!Out.ok()) {
        ++Sh.S.DecodeErrors;
      } else {
        size_t Cost = decodedCostBytes(*Out.value());
        Sh.S.DecodedBytes += Cost;
        auto [MIt, Inserted] =
            Sh.Map.emplace(Id, Entry{Out.value(), Cost, Pin, {}});
        (void)Inserted; // InFlight excluded any concurrent decode of Id.
        Sh.Lru.push_front(Id);
        MIt->second.LruIt = Sh.Lru.begin();
        Sh.S.ResidentBytes += Cost;
        ++Sh.S.ResidentFunctions;
        if (Pin)
          ++Sh.S.PinnedFunctions;
        evictOver(Sh, Id);
      }
    }
    Pr.set_value(Out);
    return Out;
  }
}

CodeStore::FaultOutcome CodeStore::assembleFunction(uint32_t Fn, bool Pin) {
  const FuncRecord &Rec = Funcs[Fn];
  auto F = std::make_shared<vm::VMFunction>();
  F->Name = Rec.Name;
  F->FrameSize = Rec.FrameSize;
  F->LabelPos = Rec.LabelPos;
  // A hostile manifest can claim any CodeLen it likes as long as its
  // page table sums to it; growth past this cap is paid for by actual
  // decoded pages, so a reserve bomb never allocates ahead of content.
  F->Code.reserve(std::min<size_t>(Rec.CodeLen, size_t(1) << 20));
  for (uint32_t K = 0; K != Rec.Pages.size(); ++K) {
    FaultOutcome R = faultImpl(Rec.FirstPage + K, Pin, /*Prefetch=*/false);
    if (!R.ok())
      return R.error();
    const std::shared_ptr<const vm::VMFunction> &Body = R.value();
    F->Code.insert(F->Code.end(), Body->Code.begin(), Body->Code.end());
  }
  return std::shared_ptr<const vm::VMFunction>(std::move(F));
}

Result<std::shared_ptr<const vm::VMFunction>> CodeStore::fault(uint32_t Id) {
  if (Id >= Funcs.size())
    return DecodeError("store: function id " + std::to_string(Id) +
                       " out of range");
  if (!Paged)
    return faultImpl(Id, /*Pin=*/false, /*Prefetch=*/false);
  return assembleFunction(Id, /*Pin=*/false);
}

Result<vm::CodeSpan> CodeStore::faultSpan(uint32_t Fn, uint32_t Idx) {
  if (Fn >= Funcs.size())
    return DecodeError("store: function id " + std::to_string(Fn) +
                       " out of range");
  vm::CodeSpan S;
  if (!Paged) {
    FaultOutcome R = faultImpl(Fn, /*Pin=*/false, /*Prefetch=*/false);
    if (!R.ok())
      return R.error();
    std::shared_ptr<const vm::VMFunction> B = R.take();
    S.Code = B->Code.data();
    S.Begin = 0;
    S.End = static_cast<uint32_t>(B->Code.size());
    S.FuncLen = S.End;
    S.Labels = &B->LabelPos;
    S.Name = &B->Name;
    S.Keep = std::move(B);
    return S;
  }
  const FuncRecord &Rec = Funcs[Fn];
  // Clamp an out-of-range Idx to the last page: the interpreter checks
  // the Pc against the function length itself and traps with the
  // function's name.
  uint32_t I = Idx;
  if (Rec.CodeLen == 0)
    I = 0;
  else if (I >= Rec.CodeLen)
    I = Rec.CodeLen - 1;
  auto It = std::upper_bound(
      Rec.Pages.begin(), Rec.Pages.end(), I,
      [](uint32_t V, const PageRec &P) { return V < P.FirstInstr; });
  uint32_t K = static_cast<uint32_t>(It - Rec.Pages.begin()) - 1;
  FaultOutcome R = faultImpl(Rec.FirstPage + K, /*Pin=*/false,
                             /*Prefetch=*/false);
  if (!R.ok())
    return R.error();
  std::shared_ptr<const vm::VMFunction> B = R.take();
  const PageRec &PR = Rec.Pages[K];
  S.Code = B->Code.data();
  S.Begin = PR.FirstInstr;
  S.End = PR.FirstInstr + PR.InstrCount;
  S.FuncLen = Rec.CodeLen;
  S.Labels = &Rec.LabelPos;
  S.Name = &Rec.Name;
  S.Keep = std::move(B);
  return S;
}

Result<std::shared_ptr<const vm::VMFunction>> CodeStore::pin(uint32_t Id) {
  if (Id >= Funcs.size())
    return DecodeError("store: function id " + std::to_string(Id) +
                       " out of range");
  if (!Paged)
    return faultImpl(Id, /*Pin=*/true, /*Prefetch=*/false);
  return assembleFunction(Id, /*Pin=*/true);
}

void CodeStore::unpinEntry(uint32_t Id) {
  Shard &Sh = shardOf(Id);
  std::lock_guard<std::mutex> L(Sh.Mu);
  auto It = Sh.Map.find(Id);
  if (It != Sh.Map.end() && It->second.Pinned) {
    It->second.Pinned = false;
    --Sh.S.PinnedFunctions;
  }
}

void CodeStore::unpin(uint32_t Id) {
  if (Id >= Funcs.size())
    return;
  if (!Paged) {
    unpinEntry(Id);
    return;
  }
  const FuncRecord &Rec = Funcs[Id];
  for (uint32_t K = 0; K != Rec.Pages.size(); ++K)
    unpinEntry(Rec.FirstPage + K);
}

void CodeStore::prefetch(const std::vector<uint32_t> &Ids, ThreadPool &Pool) {
  for (uint32_t Id : Ids)
    Pool.submit([this, Id] {
      try {
        if (Id >= Funcs.size())
          return;
        if (!Paged) {
          (void)faultImpl(Id, /*Pin=*/false, /*Prefetch=*/true);
          return;
        }
        const FuncRecord &Rec = Funcs[Id];
        for (uint32_t K = 0; K != Rec.Pages.size(); ++K)
          (void)faultImpl(Rec.FirstPage + K, /*Pin=*/false,
                          /*Prefetch=*/true);
      } catch (...) {
        // Pool jobs must not throw; failures are already counted in
        // DecodeErrors by the fault path.
      }
    });
}

bool CodeStore::entryResident(uint32_t Id) const {
  const Shard &Sh = shardOf(Id);
  std::lock_guard<std::mutex> L(Sh.Mu);
  return Sh.Map.count(Id) != 0;
}

bool CodeStore::isResident(uint32_t Id) const {
  if (Id >= Funcs.size())
    return false;
  if (!Paged)
    return entryResident(Id);
  const FuncRecord &Rec = Funcs[Id];
  for (uint32_t K = 0; K != Rec.Pages.size(); ++K)
    if (!entryResident(Rec.FirstPage + K))
      return false;
  return true;
}

StoreStats CodeStore::stats() const {
  // Lock every shard (in index order) so the totals are one consistent
  // cut across the whole cache.
  std::vector<std::unique_lock<std::mutex>> Locks;
  Locks.reserve(Shards.size());
  for (const Shard &Sh : Shards)
    Locks.emplace_back(Sh.Mu);
  StoreStats T;
  for (const Shard &Sh : Shards) {
    T.Hits += Sh.S.Hits;
    T.Misses += Sh.S.Misses;
    T.Decodes += Sh.S.Decodes;
    T.PrefetchDecodes += Sh.S.PrefetchDecodes;
    T.SingleFlightWaits += Sh.S.SingleFlightWaits;
    T.DecodeErrors += Sh.S.DecodeErrors;
    T.Evictions += Sh.S.Evictions;
    T.DecodeNanos += Sh.S.DecodeNanos;
    T.DecodedBytes += Sh.S.DecodedBytes;
    T.FetchAttempts += Sh.S.FetchAttempts;
    T.FetchRetries += Sh.S.FetchRetries;
    T.FetchFailures += Sh.S.FetchFailures;
    T.FetchedBytes += Sh.S.FetchedBytes;
    T.FetchVirtualNanos += Sh.S.FetchVirtualNanos;
    T.ResidentBytes += Sh.S.ResidentBytes;
    T.ResidentFunctions += Sh.S.ResidentFunctions;
    T.PinnedFunctions += Sh.S.PinnedFunctions;
  }
  return T;
}

void CodeStore::resetStats() {
  std::vector<std::unique_lock<std::mutex>> Locks;
  Locks.reserve(Shards.size());
  for (Shard &Sh : Shards)
    Locks.emplace_back(Sh.Mu);
  for (Shard &Sh : Shards) {
    StoreStats Keep;
    Keep.ResidentBytes = Sh.S.ResidentBytes;
    Keep.ResidentFunctions = Sh.S.ResidentFunctions;
    Keep.PinnedFunctions = Sh.S.PinnedFunctions;
    Sh.S = Keep;
  }
}

//===- store/Tiered.h - Hotness-driven tiered execution ---------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's endgame wired together: interpret cold code straight out
/// of the compressed store, and JIT what gets hot. A TieredResolver
/// layers the native tier on StoreBackedResolver's fault path through
/// the vm::FunctionResolver::enterNative hook — at every cross-function
/// transfer the interpreter makes, the resolver checks whether the
/// target function's demand heat (CodeStore::functionHeat, fed by the
/// page cache's fault/hit counters) has crossed HotThreshold, compiles
/// the decoded body to a native::NUnit when it has, and runs compiled
/// functions on the threaded backend until control reaches a cold one.
///
/// Compiled units live in their own pin-aware LRU cache beside the
/// decode cache — the same store::FlightCache engine the FrameRegistry
/// runs on, instantiated over (function id -> compiled unit) with one
/// shard: byte-budgeted, single-flighted (N threads racing a hot
/// function produce exactly one compile), with pinCompiled/unpinCompiled
/// mirroring the decode cache's pin semantics and the hotness gate
/// expressed as the cache's admission gate (consulted only when a call
/// would become the compile leader). Fall-back rules: a function with
/// no unit (cold, over-budget-evicted, or failed to decode) interprets
/// via the span path; traps and halts inside compiled code commit back
/// to the Machine so RunResults are byte-identical to interpret-only
/// execution.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_STORE_TIERED_H
#define CCOMP_STORE_TIERED_H

#include "native/Tiered.h"
#include "store/CodeStore.h"
#include "store/FlightCache.h"
#include "store/Resolver.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

namespace ccomp {
namespace store {

/// Tiering knobs.
struct TierOptions {
  bool Enabled = true;
  /// Compile a function once its demand heat (page faults + hits) is at
  /// least this. 0 compiles at first entry.
  uint64_t HotThreshold = 8;
  /// Byte budget for compiled units. Like the decode cache's budget,
  /// it is a target: the most recently compiled unit is never evicted,
  /// and pinned units are skipped.
  size_t CompiledBudgetBytes = 16u << 20;
};

/// Monotonic counters plus gauges for the compiled-code cache. The
/// counters are relaxed atomics and the gauges live in the unit cache,
/// so tierStats() snapshots are approximate-but-monotone under
/// concurrency (each field is exact; cross-field skew is possible).
struct TierStats {
  uint64_t Compiles = 0;          ///< Units generated (one per function).
  uint64_t CompileErrors = 0;     ///< Decode failures on the compile path.
  uint64_t CompileNanos = 0;      ///< Wall time inside generateUnit + decode.
  uint64_t CompiledBytesTotal = 0; ///< Bytes of threaded code produced.
  uint64_t UnitHits = 0;          ///< Unit lookups served from the cache.
  uint64_t SingleFlightWaits = 0; ///< Lookups that waited on another compile.
  uint64_t Evictions = 0;         ///< Units evicted over budget.
  uint64_t NativeEnters = 0;      ///< enterNative calls that ran natively.
  uint64_t NativeSteps = 0;       ///< Instructions executed on the tier.
  uint64_t TierTransfers = 0;     ///< Cross-function transfers taken natively.
  // Gauges (current state, unaffected by resetTierStats).
  uint64_t ResidentUnits = 0;
  uint64_t ResidentBytes = 0;
  uint64_t PinnedUnits = 0;
};

/// StoreBackedResolver plus the native tier. Thread-safe like its base:
/// one TieredResolver may serve several Machines concurrently, and the
/// compiled cache single-flights so each function compiles once.
class TieredResolver : public StoreBackedResolver,
                       private native::UnitSource {
public:
  explicit TieredResolver(CodeStore &S, TierOptions TO = TierOptions());
  ~TieredResolver() override;

  /// The tier gate. Declines (interprets) when tiering is disabled or
  /// the run needs interpreter-only instrumentation (page tracking via
  /// RunOptions::Layout); otherwise compiles-on-hot and executes.
  bool enterNative(vm::Machine &M, uint32_t &Fn, uint32_t &Idx,
                   uint64_t &Steps) override;

  /// Compiles \p Fn now (ignoring HotThreshold) and marks its unit
  /// pinned: never evicted over budget. Returns false if the body
  /// cannot be decoded.
  bool pinCompiled(uint32_t Fn);
  void unpinCompiled(uint32_t Fn);

  /// True if \p Fn's unit is resident right now (no LRU effect).
  bool isCompiled(uint32_t Fn) const;

  const TierOptions &tierOptions() const { return TO; }
  TierStats tierStats() const;
  /// Zeroes the monotonic counters; residency gauges are preserved.
  void resetTierStats();

private:
  using UnitPtr = std::shared_ptr<const native::NUnit>;
  using Cache = FlightCache<uint32_t, UnitPtr>;

  /// native::UnitSource for runTiered: cache lookup without the
  /// hotness gate (already-compiled functions stay native even when an
  /// entry's heat is below threshold).
  UnitPtr unitFor(uint32_t Fn) override;

  /// The compile path: cache lookup, hotness gate (bypassed when \p
  /// Force), single-flight compile through the unit cache.
  UnitPtr unitForExecution(uint32_t Fn, bool Force, bool Pin);
  /// The compile leader's callback: decode the body, generate the unit,
  /// bill the compile counters.
  Result<UnitPtr> compileUnit(uint32_t Fn);

  TierOptions TO;
  /// The compiled-unit cache: one shard (compiles are rare and long;
  /// shard fan-out buys nothing), pins always honored.
  Cache Units;

  // Monotonic counters, accumulated relaxed (see TierStats).
  mutable std::atomic<uint64_t> Compiles{0};
  mutable std::atomic<uint64_t> CompileErrors{0};
  mutable std::atomic<uint64_t> CompileNanos{0};
  mutable std::atomic<uint64_t> CompiledBytesTotal{0};
  mutable std::atomic<uint64_t> UnitHits{0};
  mutable std::atomic<uint64_t> SingleFlightWaits{0};
  mutable std::atomic<uint64_t> NativeEnters{0};
  mutable std::atomic<uint64_t> NativeSteps{0};
  mutable std::atomic<uint64_t> TierTransfers{0};

  /// Guards Failed and PinHeld. Held across a pinning fault (lock order
  /// Mu -> cache locks) so two threads pinning one function take
  /// exactly one cache reference; the compile callback touches only the
  /// atomics above, so no cycle closes.
  mutable std::mutex Mu;
  /// Functions whose body failed to decode on the compile path: do not
  /// retry every entry, the interpreter's own fault will surface the
  /// typed error.
  std::unordered_set<uint32_t> Failed;
  /// Fn -> pin generation this resolver holds in the unit cache.
  std::unordered_map<uint32_t, uint64_t> PinHeld;
};

/// Convenience: run the store's program end-to-end with tiering.
/// Opts.Resolver is overwritten. \p StatsOut (optional) receives the
/// final tier stats.
vm::RunResult runTieredFromStore(CodeStore &S, TierOptions TO,
                                 vm::RunOptions Opts = vm::RunOptions(),
                                 TierStats *StatsOut = nullptr);

} // namespace store
} // namespace ccomp

#endif // CCOMP_STORE_TIERED_H

//===- store/FrameSource.h - Where compressed frames come from --*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fetch seam under the CodeStore: a FrameSource produces a
/// function's compressed frame on demand, so the store no longer
/// assumes every frame is resident in memory. Three backends:
///
///   - LocalFrameSource: frames held in memory (the original store
///     behavior); fetches are free and infallible.
///   - FileFrameSource: frames read on demand from a CCPK container
///     file through an offset table built by scanning the frame
///     headers, so opening a store costs O(frames) small reads and the
///     container body never needs to be resident.
///   - SimulatedRemoteFrameSource: wraps another source in a sim::Link.
///     Every fetch charges deterministic *virtual* transfer time and
///     can inject transient failures (timeouts, short reads, detected
///     corruption) from a seeded hash, reproducing the paper's
///     mobile-code delivery scenario — a fault costs link time plus
///     decode time — and giving the tests a flaky transport whose
///     misbehavior replays exactly.
///
/// Failures are typed (FetchError) and classified transient vs
/// permanent so the RetryPolicy can mask line noise with bounded,
/// exponentially backed-off retries while surfacing dead frames
/// immediately. By default backoff advances the same virtual clock as
/// transfer time — fetchWithRetry never sleeps, so a retry storm can
/// slow a simulated run but can never hang a real thread. Sources with
/// a *real* transport behind them (net::SocketFrameSource) set
/// RetryPolicy::RealTime, which makes the backoff an actual sleep and
/// the deadline a wall-clock bound — without it, retries against a
/// dead server would spin at CPU speed and the virtual deadline would
/// never fire on a transport that charges no virtual time.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_STORE_FRAMESOURCE_H
#define CCOMP_STORE_FRAMESOURCE_H

#include "sim/Transport.h"
#include "support/Error.h"
#include "support/Span.h"

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ccomp {
namespace store {

//===----------------------------------------------------------------------===//
// Fetch outcomes
//===----------------------------------------------------------------------===//

/// Why a fetch failed. The kind fixes the transient/permanent split:
/// timeouts, short reads, and checksum-detected corruption are worth
/// retrying (the transport may behave next time); a missing frame or a
/// damaged backing file will not improve.
enum class FetchErrorKind : uint8_t {
  Timeout,   ///< Transient: the deadline passed with no full frame.
  ShortRead, ///< Transient: the connection dropped mid-frame.
  Corrupt,   ///< Transient: the transfer checksum rejected the bytes.
  NotFound,  ///< Permanent: the source has no such frame.
  Io,        ///< Permanent: the backing medium failed.
};

const char *fetchErrorKindName(FetchErrorKind K);

/// True for the kinds a RetryPolicy is allowed to retry.
inline bool isTransient(FetchErrorKind K) {
  return K == FetchErrorKind::Timeout || K == FetchErrorKind::ShortRead ||
         K == FetchErrorKind::Corrupt;
}

/// One fetch attempt's result. Success carries the frame bytes; failure
/// carries a typed error. Either way VirtualSeconds is the simulated
/// wall time the attempt consumed (zero for local/file sources), so the
/// caller can charge failed attempts too.
struct FetchResult {
  bool Ok = false;
  std::vector<uint8_t> Bytes;
  FetchErrorKind Err = FetchErrorKind::Io;
  std::string Msg;
  double VirtualSeconds = 0;

  static FetchResult success(std::vector<uint8_t> B, double Seconds = 0) {
    FetchResult R;
    R.Ok = true;
    R.Bytes = std::move(B);
    R.VirtualSeconds = Seconds;
    return R;
  }
  static FetchResult failure(FetchErrorKind K, std::string Msg,
                             double Seconds = 0) {
    FetchResult R;
    R.Err = K;
    R.Msg = std::move(Msg);
    R.VirtualSeconds = Seconds;
    return R;
  }
};

//===----------------------------------------------------------------------===//
// FrameSource interface
//===----------------------------------------------------------------------===//

/// Produces compressed frames by function id. Thread-safe: the store's
/// single-flight leaders call fetchFrame concurrently.
class FrameSource {
public:
  virtual ~FrameSource();

  virtual const char *kind() const = 0;
  virtual const std::string &chainSpec() const = 0;
  virtual uint32_t functionFrameCount() const = 0;
  /// Total compressed bytes across every function frame.
  virtual size_t frameBytes() const = 0;

  /// Fetches function \p Id's compressed frame.
  virtual FetchResult fetchFrame(uint32_t Id) = 0;

  /// Fetches the store manifest, for sources whose backing medium
  /// carries one (a CCPK store container's frame 0). Sources built from
  /// an in-memory program have none.
  virtual FetchResult fetchManifest() = 0;

  /// If this source can compute its container content hash
  /// (pipeline::hashContainerFrames over chain spec + function frames)
  /// without fetching — i.e. the frames are already resident somewhere
  /// trustworthy — sets \p H and returns true. Sources that would have
  /// to pay (and trust) a fetch per frame return false; the store then
  /// falls back to the manifest's claimed hash. In-memory sources
  /// compute it; file sources decline; a simulated remote forwards to
  /// its origin (the origin's bytes *are* what the transport serves).
  virtual bool contentHash(uint64_t &H) {
    (void)H;
    return false;
  }

  /// Advisory: the caller is about to fetch these frames. A source with
  /// per-request overhead (a network round trip) may coalesce them into
  /// one transfer and stage the results for the coming fetchFrame
  /// calls. Purely an optimization — the default does nothing, failures
  /// are invisible, and every frame must still be fetchable on its own.
  virtual void prefetchHint(const std::vector<uint32_t> &FrameIds) {
    (void)FrameIds;
  }
};

//===----------------------------------------------------------------------===//
// Retry policy
//===----------------------------------------------------------------------===//

/// Bounded-retry policy for flaky transports: exponential backoff with
/// deterministic jitter and a per-fetch virtual deadline. All delays
/// advance the virtual clock only — there is no real sleeping anywhere
/// in the retry path, so a permanently failing transport degrades to a
/// typed error after at most MaxAttempts draws, never a hang.
struct RetryPolicy {
  /// Total tries per fetch, including the first. 1 disables retries.
  unsigned MaxAttempts = 4;
  double BaseBackoffSeconds = 0.05;
  double BackoffMultiplier = 2.0;
  double MaxBackoffSeconds = 2.0;
  /// Backoff is scaled by a factor drawn uniformly from
  /// [1-JitterFraction, 1+JitterFraction], hashed from (JitterSeed,
  /// frame, attempt) so it replays identically regardless of thread
  /// interleaving.
  double JitterFraction = 0.25;
  uint64_t JitterSeed = 0x1234;
  /// Virtual-seconds budget for one fetch across all its attempts and
  /// backoffs; exceeding it fails the fetch with a Timeout error. Under
  /// RealTime the same budget is measured on the wall clock instead.
  double DeadlineSeconds = 120.0;
  /// When set, backoff really sleeps and the deadline is wall-clock:
  /// elapsed real time (attempt durations + sleeps) counts against
  /// DeadlineSeconds. For sources whose fetches take real time (TCP);
  /// the default keeps simulated runs at CPU speed and is bit-for-bit
  /// the old behavior.
  bool RealTime = false;

  /// The backoff charged after failed attempt \p Attempt (0-based) of
  /// frame \p Frame. Pure function of (policy, frame, attempt).
  double backoffSeconds(uint32_t Frame, unsigned Attempt) const;
};

/// Aggregate cost of one fetchWithRetry call, for the store's stats.
struct FetchMetrics {
  unsigned Attempts = 0;
  unsigned TransientFailures = 0;
  uint64_t FetchedBytes = 0;
  double VirtualSeconds = 0; ///< Transfer + backoff, all attempts.
};

/// Fetches frame \p Id from \p Src under \p Policy: transient failures
/// are retried with backoff until MaxAttempts or the deadline runs out;
/// permanent failures surface immediately. \p Id of ~0u means the
/// manifest. The returned FetchResult's VirtualSeconds equals
/// M.VirtualSeconds (the whole call, not just the last attempt).
FetchResult fetchWithRetry(FrameSource &Src, uint32_t Id,
                           const RetryPolicy &Policy, FetchMetrics &M);

/// Which deterministic draw a key feeds. Each purpose salts the key so
/// independent random streams over the same (seed, frame, attempt)
/// never share a value even when the caller reuses one seed for both.
enum class DrawPurpose : uint64_t {
  BackoffJitter = 1,  ///< RetryPolicy::backoffSeconds' jitter factor.
  TransportFault = 2, ///< SimulatedRemoteFrameSource's failure draws.
};

/// The single key function behind every deterministic per-attempt draw
/// in the fetch stack. (Frame, Attempt) packs injectively into one
/// 64-bit word — frame in the high half, attempt in the low half — so
/// two distinct (frame, attempt) pairs can never hash the same key.
/// The old per-site packings shifted Attempt by 32 or 33 bits, which
/// collided with the frame id for large attempt counts and could alias
/// the two streams for the same (seed, frame, attempt).
uint64_t drawKey(uint64_t Seed, uint32_t Frame, unsigned Attempt,
                 DrawPurpose Purpose);

/// Sentinel id for fetchWithRetry/SimulatedRemoteFrameSource: the
/// manifest rather than a function frame.
constexpr uint32_t ManifestFrameId = ~0u;

//===----------------------------------------------------------------------===//
// LocalFrameSource
//===----------------------------------------------------------------------===//

/// Frames held in memory; fetches are copies and never fail. This is
/// the CodeStore's original behavior, and the origin most remote
/// simulations wrap.
class LocalFrameSource final : public FrameSource {
public:
  /// From per-function frames (no manifest), as CodeStore::build makes.
  LocalFrameSource(std::string ChainSpec,
                   std::vector<std::vector<uint8_t>> FuncFrames);

  /// From a parsed CCPK store container: frame 0 is the manifest,
  /// frames 1..N the function bodies. Fails typed if \p Bytes is not a
  /// container with at least a manifest frame.
  static Result<std::unique_ptr<LocalFrameSource>>
  fromContainerBytes(ByteSpan Bytes);

  const char *kind() const override { return "local"; }
  const std::string &chainSpec() const override { return Spec; }
  uint32_t functionFrameCount() const override {
    return static_cast<uint32_t>(Frames.size());
  }
  size_t frameBytes() const override;
  FetchResult fetchFrame(uint32_t Id) override;
  FetchResult fetchManifest() override;
  bool contentHash(uint64_t &H) override;

private:
  std::string Spec;
  std::vector<std::vector<uint8_t>> Frames; ///< Function frames only.
  std::vector<uint8_t> Manifest;            ///< Empty when absent.
  bool HasManifest = false;
  /// Lazily computed content hash (guarded by HashOnce).
  std::once_flag HashOnce;
  uint64_t Hash = 0;
};

//===----------------------------------------------------------------------===//
// FileFrameSource
//===----------------------------------------------------------------------===//

/// Reads frames on demand from a CCPK store container file. open()
/// scans only the container header and the per-frame length prefixes to
/// build an offset table (validating every claimed length against the
/// real file size — a corrupt header cannot make us reserve gigabytes),
/// so memory holds the offsets, not the frames. fetchFrame seeks and
/// reads one frame.
class FileFrameSource final : public FrameSource {
public:
  static Result<std::unique_ptr<FileFrameSource>>
  open(const std::string &Path);

  const char *kind() const override { return "file"; }
  const std::string &chainSpec() const override { return Spec; }
  uint32_t functionFrameCount() const override {
    return static_cast<uint32_t>(Slots.size() ? Slots.size() - 1 : 0);
  }
  size_t frameBytes() const override;
  FetchResult fetchFrame(uint32_t Id) override;
  FetchResult fetchManifest() override;

private:
  FileFrameSource() = default;
  FetchResult readSlot(size_t Slot);

  struct FrameSlot {
    uint64_t Offset = 0;
    uint64_t Size = 0;
  };

  std::string Path;
  std::string Spec;
  std::vector<FrameSlot> Slots; ///< Slot 0 = manifest, 1..N = functions.
  std::mutex Mu;                ///< Guards In (streams are not thread-safe).
  std::ifstream In;
};

//===----------------------------------------------------------------------===//
// SimulatedRemoteFrameSource
//===----------------------------------------------------------------------===//

/// How a remote session pays the link's per-transfer setup latency.
enum class LatencyMode : uint8_t {
  PerFetch, ///< Every frame is its own transfer (latency each time).
  Batched,  ///< One session: latency once, then stream cost per frame.
};

/// Knobs for the simulated transport.
struct RemoteOptions {
  sim::Link Link = sim::ethernet10M();
  LatencyMode Latency = LatencyMode::PerFetch;
  /// Probability that any single fetch attempt fails with an injected
  /// transient fault (timeout / short read / detected corruption),
  /// drawn deterministically from (FaultSeed, frame, attempt#). 1.0
  /// makes every attempt fail, so retries exhaust and faults surface as
  /// typed errors.
  double TransientFailureRate = 0.0;
  uint64_t FaultSeed = 0;
  /// When set, transfer time is charged for what the CCPK wire protocol
  /// (net/Message.h) actually puts on the link for one fetch — request
  /// plus framed reply (net::wireSizeFetch) — rather than the bare
  /// payload bytes. Off by default: existing virtual-time baselines
  /// charge raw payloads. Turn it on to make the simulation agree
  /// byte-for-byte with a real net::FrameServer conversation.
  bool WireFraming = false;
};

/// Wraps an origin FrameSource in a simulated flaky link. Successful
/// fetches cost the link's (deterministic, virtual) transfer time;
/// injected failures cost the time wasted before the failure was
/// detected. The virtual clock is the fetch's VirtualSeconds — no real
/// time passes, so tests over a 28.8k modem run at CPU speed.
class SimulatedRemoteFrameSource final : public FrameSource {
public:
  SimulatedRemoteFrameSource(std::unique_ptr<FrameSource> Origin,
                             RemoteOptions Opts);

  const char *kind() const override { return "sim-remote"; }
  const std::string &chainSpec() const override {
    return Origin->chainSpec();
  }
  uint32_t functionFrameCount() const override {
    return Origin->functionFrameCount();
  }
  size_t frameBytes() const override { return Origin->frameBytes(); }
  FetchResult fetchFrame(uint32_t Id) override;
  FetchResult fetchManifest() override;
  /// The transport serves exactly the origin's bytes (corruption is
  /// *detected*, never delivered), so the origin's hash is this
  /// source's hash.
  bool contentHash(uint64_t &H) override { return Origin->contentHash(H); }

  const RemoteOptions &options() const { return Opts; }

private:
  FetchResult transport(uint32_t DrawId, FetchResult Origin);
  double payloadSeconds(size_t Bytes);

  std::unique_ptr<FrameSource> Origin;
  RemoteOptions Opts;
  /// Per-frame attempt counters (last slot = manifest) so failure draws
  /// are a pure function of (seed, frame, attempt#) and independent of
  /// which thread fetches when.
  std::unique_ptr<std::atomic<uint32_t>[]> Attempts;
  std::atomic<bool> SessionOpen{false}; ///< Batched: latency paid yet?
};

} // namespace store
} // namespace ccomp

#endif // CCOMP_STORE_FRAMESOURCE_H

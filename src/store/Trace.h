//===- store/Trace.h - Execution-trace recording run mode -------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace-recording run mode: run a program once under a
/// block-granular resolver, record every span resolve the interpreter
/// makes as a (function, instruction-index) event, and hand the result
/// to the build path (StoreOptions::Profile) or to
/// CodeStore::applyAccessProfile. Because events name instruction
/// indices — not pages — a trace recorded once drives any page target
/// and any repack of the same program.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_STORE_TRACE_H
#define CCOMP_STORE_TRACE_H

#include "pipeline/Profile.h"
#include "vm/Machine.h"

namespace ccomp {
namespace store {

/// Default event cap for a recording run; past it the recorder keeps
/// running but drops events and marks the trace truncated.
constexpr size_t DefaultMaxTraceEvents = 1u << 20;

/// Wraps any FunctionResolver and appends one TraceEvent per successful
/// span resolve — exactly the fault sequence a block-granular store
/// would see. The native-tier hook is deliberately declined: a
/// profiling run must observe every interpreter transfer, and the fast
/// tier would hide them.
class TracingResolver : public vm::FunctionResolver {
public:
  TracingResolver(vm::FunctionResolver &Inner, pipeline::ExecutionTrace &Out,
                  size_t MaxEvents = DefaultMaxTraceEvents)
      : Inner(Inner), Trace(Out), MaxEvents(MaxEvents) {
    Trace.FuncCount = Inner.functionCount();
  }

  uint32_t functionCount() const override { return Inner.functionCount(); }

  std::shared_ptr<const vm::VMFunction> resolve(uint32_t Fn,
                                                std::string &Err) override {
    return Inner.resolve(Fn, Err);
  }

  bool resolveSpan(uint32_t Fn, uint32_t Idx, vm::CodeSpan &Out,
                   std::string &Err) override {
    if (!Inner.resolveSpan(Fn, Idx, Out, Err))
      return false;
    if (Trace.Events.size() < MaxEvents)
      Trace.Events.push_back(pipeline::TraceEvent{Fn, Idx});
    else
      Trace.Truncated = true;
    return true;
  }

private:
  vm::FunctionResolver &Inner;
  pipeline::ExecutionTrace &Trace;
  size_t MaxEvents;
};

/// A profiling run's outcome: the ordinary run result plus the trace.
struct TraceRunResult {
  vm::RunResult Run;
  pipeline::ExecutionTrace Trace;
};

/// Runs \p P under a block-granular ProgramSpanResolver with a
/// TracingResolver on top: the recorded events are the block-entry
/// sequence of the run, deterministic for a deterministic program.
/// Opts.Resolver is overwritten.
TraceRunResult recordTrace(const vm::VMProgram &P,
                           vm::RunOptions Opts = vm::RunOptions(),
                           size_t MaxEvents = DefaultMaxTraceEvents);

} // namespace store
} // namespace ccomp

#endif // CCOMP_STORE_TRACE_H

//===- store/FrameRegistry.cpp - Process-wide shared frame cache ----------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "store/FrameRegistry.h"

#include "store/CodeStore.h"

#include <algorithm>
#include <chrono>

using namespace ccomp;
using namespace ccomp::store;

namespace {

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

ModuleHeat::ModuleHeat(ModuleIdent Ident) : Id(std::move(Ident)) {
  uint32_t NF = std::max<uint32_t>(1, Id.FrameCount);
  uint32_t NFn = std::max<uint32_t>(1, Id.FuncCount);
  FrameHeat = std::make_unique<std::atomic<uint64_t>[]>(NF);
  FuncHeat = std::make_unique<std::atomic<uint64_t>[]>(NFn);
  for (uint32_t I = 0; I != NF; ++I)
    FrameHeat[I].store(0, std::memory_order_relaxed);
  for (uint32_t I = 0; I != NFn; ++I)
    FuncHeat[I].store(0, std::memory_order_relaxed);
}

FrameRegistry::FrameRegistry(RegistryOptions O)
    : Opts(O), C(O.CacheBudgetBytes, std::max(1u, O.Shards),
                 O.Policy == EvictPolicy::PinAwareLRU,
                 [](const Body &B) { return decodedCostBytes(*B); }) {}

Result<std::shared_ptr<ModuleHeat>>
FrameRegistry::registerModule(uint64_t Hash, const ModuleIdent &Id) {
  std::lock_guard<std::mutex> L(ModMu);
  auto It = Modules.find(Hash);
  if (It == Modules.end()) {
    auto Heat = std::make_shared<ModuleHeat>(Id);
    Modules.emplace(Hash, Heat);
    return Result<std::shared_ptr<ModuleHeat>>(std::move(Heat));
  }
  if (!(It->second->ident() == Id))
    return DecodeError(
        "registry: container hash collision — a module with this hash is "
        "already registered with a different shape (chain '" +
        It->second->ident().ChainSpec + "', " +
        std::to_string(It->second->ident().FrameCount) +
        " frames); refusing to share frames with '" + Id.ChainSpec + "', " +
        std::to_string(Id.FrameCount) + " frames");
  return Result<std::shared_ptr<ModuleHeat>>(It->second);
}

FrameRegistry::Outcome FrameRegistry::fault(const FrameKey &K, bool AddPin,
                                            uint64_t HeldGen, bool Prefetch,
                                            const Decoder &Decode, Info &I) {
  Outcome Out = C.fault(
      K, AddPin, HeldGen,
      [&]() -> Outcome {
        // Leader: the tenant fetches through its own transport and
        // decodes; the registry bills the decode once, process-wide.
        bool DecoderRan = false;
        uint64_t T0 = nowNanos();
        Outcome R = Decode(DecoderRan);
        uint64_t Nanos = nowNanos() - T0;
        if (DecoderRan) {
          Decodes.fetch_add(1, std::memory_order_relaxed);
          if (Prefetch)
            PrefetchDecodes.fetch_add(1, std::memory_order_relaxed);
          DecodeNanos.fetch_add(Nanos, std::memory_order_relaxed);
        }
        if (!R.ok())
          DecodeErrors.fetch_add(1, std::memory_order_relaxed);
        else
          DecodedBytes.fetch_add(decodedCostBytes(*R.value()),
                                 std::memory_order_relaxed);
        return R;
      },
      I);
  return Out;
}

RegistryStats FrameRegistry::stats() const {
  RegistryStats S;
  S.Decodes = Decodes.load(std::memory_order_relaxed);
  S.PrefetchDecodes = PrefetchDecodes.load(std::memory_order_relaxed);
  S.DecodeErrors = DecodeErrors.load(std::memory_order_relaxed);
  S.DecodeNanos = DecodeNanos.load(std::memory_order_relaxed);
  S.DecodedBytes = DecodedBytes.load(std::memory_order_relaxed);
  FlightCounters FC = C.counters();
  S.Evictions = FC.Evictions;
  S.ResidentBytes = FC.ResidentBytes;
  S.ResidentFrames = FC.ResidentEntries;
  S.PinnedFrames = FC.PinnedEntries;
  {
    std::lock_guard<std::mutex> L(ModMu);
    S.Modules = Modules.size();
  }
  return S;
}

void FrameRegistry::resetStats() {
  Decodes.store(0, std::memory_order_relaxed);
  PrefetchDecodes.store(0, std::memory_order_relaxed);
  DecodeErrors.store(0, std::memory_order_relaxed);
  DecodeNanos.store(0, std::memory_order_relaxed);
  DecodedBytes.store(0, std::memory_order_relaxed);
  C.resetCounters();
}

//===- store/Tiered.cpp - Hotness-driven tiered execution -----------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "store/Tiered.h"

#include <chrono>

using namespace ccomp;
using namespace ccomp::store;

namespace {

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

TieredResolver::TieredResolver(CodeStore &S, TierOptions Opts)
    : StoreBackedResolver(S), TO(Opts),
      Units(Opts.CompiledBudgetBytes, /*NumShards=*/1, /*HonorPins=*/true,
            [](const UnitPtr &U) { return U->codeBytes(); }) {}

TieredResolver::~TieredResolver() = default;

bool TieredResolver::enterNative(vm::Machine &M, uint32_t &Fn, uint32_t &Idx,
                                 uint64_t &Steps) {
  // Page tracking (RunOptions::Layout) records per-instruction code
  // touches the native tier cannot observe; those runs interpret.
  if (!TO.Enabled || M.options().Layout)
    return false;
  native::TierRunStats TS;
  if (!native::runTiered(M, *this, Fn, Idx, Steps, &TS))
    return false;
  NativeEnters.fetch_add(1, std::memory_order_relaxed);
  NativeSteps.fetch_add(TS.Steps, std::memory_order_relaxed);
  TierTransfers.fetch_add(TS.Transfers, std::memory_order_relaxed);
  return true;
}

TieredResolver::UnitPtr TieredResolver::unitFor(uint32_t Fn) {
  // Called at tier entry and at every native cross-function transfer:
  // the hotness gate applies here too, so a callee that crossed the
  // threshold compiles at the call boundary and control never has to
  // leave the tier for it.
  return unitForExecution(Fn, /*Force=*/false, /*Pin=*/false);
}

Result<TieredResolver::UnitPtr> TieredResolver::compileUnit(uint32_t Fn) {
  // CompileNanos covers decode + generate, success or failure: the
  // tier paid that wall time either way. The store's own single-flight
  // dedups the decode; the unit cache dedups this whole callback.
  uint64_t T0 = nowNanos();
  UnitPtr Unit;
  Result<std::shared_ptr<const vm::VMFunction>> Body = Store.fault(Fn);
  if (Body.ok()) {
    native::GenStats G;
    Unit = std::make_shared<native::NUnit>(
        native::generateUnit(*Body.value(), Fn, &G));
  }
  CompileNanos.fetch_add(nowNanos() - T0, std::memory_order_relaxed);
  if (!Unit) {
    CompileErrors.fetch_add(1, std::memory_order_relaxed);
    return Body.error();
  }
  Compiles.fetch_add(1, std::memory_order_relaxed);
  CompiledBytesTotal.fetch_add(Unit->codeBytes(), std::memory_order_relaxed);
  return Result<UnitPtr>(std::move(Unit));
}

TieredResolver::UnitPtr TieredResolver::unitForExecution(uint32_t Fn,
                                                         bool Force,
                                                         bool Pin) {
  if (Fn >= Store.functionCount())
    return nullptr;
  std::unique_lock<std::mutex> L(Mu);
  if (Failed.count(Fn))
    return nullptr;
  uint64_t Held = 0;
  if (Pin) {
    auto It = PinHeld.find(Fn);
    if (It != PinHeld.end())
      Held = It->second;
  } else {
    // The non-pin fast path does not need the resolver lock; only pin
    // bookkeeping must be serialized across the fault.
    L.unlock();
  }
  Cache::Info I;
  Result<UnitPtr> Out = Units.fault(
      Fn, Pin, Held, [&] { return compileUnit(Fn); }, I,
      [&] { return Force || Store.functionHeat(Fn) >= TO.HotThreshold; });
  UnitHits.fetch_add(I.Hits, std::memory_order_relaxed);
  SingleFlightWaits.fetch_add(I.Waits, std::memory_order_relaxed);
  if (!Out.ok()) {
    // Gate-declined is not a failure — the function is just still cold.
    // A led compile that failed is: remember it so a hot broken
    // function does not retry its decode at every entry.
    if (I.Led) {
      if (!L.owns_lock())
        L.lock();
      Failed.insert(Fn);
    }
    return nullptr;
  }
  if (Pin)
    PinHeld[Fn] = I.PinGen; // Mu still held on this path.
  return Out.take();
}

bool TieredResolver::pinCompiled(uint32_t Fn) {
  return unitForExecution(Fn, /*Force=*/true, /*Pin=*/true) != nullptr;
}

void TieredResolver::unpinCompiled(uint32_t Fn) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = PinHeld.find(Fn);
  if (It == PinHeld.end())
    return;
  Units.unpin(Fn, It->second);
  PinHeld.erase(It);
}

bool TieredResolver::isCompiled(uint32_t Fn) const {
  return Units.resident(Fn);
}

TierStats TieredResolver::tierStats() const {
  TierStats S;
  S.Compiles = Compiles.load(std::memory_order_relaxed);
  S.CompileErrors = CompileErrors.load(std::memory_order_relaxed);
  S.CompileNanos = CompileNanos.load(std::memory_order_relaxed);
  S.CompiledBytesTotal = CompiledBytesTotal.load(std::memory_order_relaxed);
  S.UnitHits = UnitHits.load(std::memory_order_relaxed);
  S.SingleFlightWaits = SingleFlightWaits.load(std::memory_order_relaxed);
  S.NativeEnters = NativeEnters.load(std::memory_order_relaxed);
  S.NativeSteps = NativeSteps.load(std::memory_order_relaxed);
  S.TierTransfers = TierTransfers.load(std::memory_order_relaxed);
  FlightCounters C = Units.counters();
  S.Evictions = C.Evictions;
  S.ResidentUnits = C.ResidentEntries;
  S.ResidentBytes = C.ResidentBytes;
  S.PinnedUnits = C.PinnedEntries;
  return S;
}

void TieredResolver::resetTierStats() {
  Compiles.store(0, std::memory_order_relaxed);
  CompileErrors.store(0, std::memory_order_relaxed);
  CompileNanos.store(0, std::memory_order_relaxed);
  CompiledBytesTotal.store(0, std::memory_order_relaxed);
  UnitHits.store(0, std::memory_order_relaxed);
  SingleFlightWaits.store(0, std::memory_order_relaxed);
  NativeEnters.store(0, std::memory_order_relaxed);
  NativeSteps.store(0, std::memory_order_relaxed);
  TierTransfers.store(0, std::memory_order_relaxed);
  Units.resetCounters();
}

vm::RunResult store::runTieredFromStore(CodeStore &S, TierOptions TO,
                                        vm::RunOptions Opts,
                                        TierStats *StatsOut) {
  TieredResolver Rv(S, TO);
  Opts.Resolver = &Rv;
  vm::Machine M(S.skeleton(), Opts);
  vm::RunResult Res = M.run();
  if (StatsOut)
    *StatsOut = Rv.tierStats();
  return Res;
}

//===- store/Tiered.cpp - Hotness-driven tiered execution -----------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "store/Tiered.h"

#include <chrono>

using namespace ccomp;
using namespace ccomp::store;

namespace {

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

TieredResolver::TieredResolver(CodeStore &S, TierOptions Opts)
    : StoreBackedResolver(S), TO(Opts) {}

TieredResolver::~TieredResolver() = default;

bool TieredResolver::enterNative(vm::Machine &M, uint32_t &Fn, uint32_t &Idx,
                                 uint64_t &Steps) {
  // Page tracking (RunOptions::Layout) records per-instruction code
  // touches the native tier cannot observe; those runs interpret.
  if (!TO.Enabled || M.options().Layout)
    return false;
  native::TierRunStats TS;
  if (!native::runTiered(M, *this, Fn, Idx, Steps, &TS))
    return false;
  std::lock_guard<std::mutex> L(Mu);
  ++St.NativeEnters;
  St.NativeSteps += TS.Steps;
  St.TierTransfers += TS.Transfers;
  return true;
}

TieredResolver::UnitPtr TieredResolver::unitFor(uint32_t Fn) {
  // Called at tier entry and at every native cross-function transfer:
  // the hotness gate applies here too, so a callee that crossed the
  // threshold compiles at the call boundary and control never has to
  // leave the tier for it.
  return unitForExecution(Fn, /*Force=*/false, /*Pin=*/false);
}

TieredResolver::UnitPtr TieredResolver::unitForExecution(uint32_t Fn,
                                                         bool Force,
                                                         bool Pin) {
  if (Fn >= Store.functionCount())
    return nullptr;
  for (;;) {
    std::shared_future<UnitPtr> Wait;
    std::promise<UnitPtr> Pr;
    {
      std::lock_guard<std::mutex> L(Mu);
      auto It = Units.find(Fn);
      if (It != Units.end()) {
        Lru.splice(Lru.begin(), Lru, It->second.LruIt);
        ++St.UnitHits;
        if (Pin && !It->second.Pinned) {
          It->second.Pinned = true;
          ++St.PinnedUnits;
        }
        return It->second.Unit;
      }
      if (Failed.count(Fn))
        return nullptr;
      auto FIt = InFlight.find(Fn);
      if (FIt != InFlight.end()) {
        ++St.SingleFlightWaits;
        Wait = FIt->second;
      } else {
        if (!Force && Store.functionHeat(Fn) < TO.HotThreshold)
          return nullptr; // Still cold: keep interpreting.
        InFlight.emplace(Fn, Pr.get_future().share());
      }
    }
    if (Wait.valid()) {
      UnitPtr Out = Wait.get();
      if (!Out || !Pin)
        return Out;
      continue; // Pin requested: mark it through the hit path.
    }

    // Single-flight leader: decode the body and generate the unit
    // outside the lock. The store's own single-flight dedups the
    // decode; this layer dedups the compile.
    uint64_t T0 = nowNanos();
    UnitPtr Unit;
    Result<std::shared_ptr<const vm::VMFunction>> Body = Store.fault(Fn);
    if (Body.ok()) {
      native::GenStats G;
      Unit = std::make_shared<native::NUnit>(
          native::generateUnit(*Body.value(), Fn, &G));
    }
    uint64_t Nanos = nowNanos() - T0;

    {
      std::lock_guard<std::mutex> L(Mu);
      InFlight.erase(Fn);
      St.CompileNanos += Nanos;
      if (!Unit) {
        // A body that cannot decode will not improve; remember the
        // failure so a hot broken function does not retry its decode
        // at every entry. The interpreter's own fault path surfaces
        // the typed error as a trap.
        ++St.CompileErrors;
        Failed.insert(Fn);
      } else {
        ++St.Compiles;
        St.CompiledBytesTotal += Unit->codeBytes();
        auto [MIt, Inserted] =
            Units.emplace(Fn, CacheEntry{Unit, Unit->codeBytes(), Pin, {}});
        (void)Inserted; // InFlight excluded any concurrent compile of Fn.
        Lru.push_front(Fn);
        MIt->second.LruIt = Lru.begin();
        St.ResidentBytes += MIt->second.Cost;
        ++St.ResidentUnits;
        if (Pin)
          ++St.PinnedUnits;
        evictOverBudget(Fn);
      }
    }
    Pr.set_value(Unit);
    return Unit;
  }
}

void TieredResolver::evictOverBudget(uint32_t Keep) {
  // Mirror of CodeStore::evictOver for compiled units: evict from the
  // cold end until under budget, never the just-compiled unit, never a
  // pinned one.
  while (St.ResidentBytes > TO.CompiledBudgetBytes && Units.size() > 1) {
    auto VictimIt = Lru.end();
    for (auto R = Lru.rbegin(); R != Lru.rend(); ++R) {
      if (*R == Keep)
        continue;
      if (Units.find(*R)->second.Pinned)
        continue;
      VictimIt = std::prev(R.base());
      break;
    }
    if (VictimIt == Lru.end())
      return; // Everything else is pinned; stay over budget.
    auto MIt = Units.find(*VictimIt);
    St.ResidentBytes -= MIt->second.Cost;
    --St.ResidentUnits;
    Units.erase(MIt);
    Lru.erase(VictimIt);
    ++St.Evictions;
  }
}

bool TieredResolver::pinCompiled(uint32_t Fn) {
  return unitForExecution(Fn, /*Force=*/true, /*Pin=*/true) != nullptr;
}

void TieredResolver::unpinCompiled(uint32_t Fn) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Units.find(Fn);
  if (It != Units.end() && It->second.Pinned) {
    It->second.Pinned = false;
    --St.PinnedUnits;
  }
}

bool TieredResolver::isCompiled(uint32_t Fn) const {
  std::lock_guard<std::mutex> L(Mu);
  return Units.count(Fn) != 0;
}

TierStats TieredResolver::tierStats() const {
  std::lock_guard<std::mutex> L(Mu);
  return St;
}

void TieredResolver::resetTierStats() {
  std::lock_guard<std::mutex> L(Mu);
  TierStats Fresh;
  Fresh.ResidentUnits = St.ResidentUnits;
  Fresh.ResidentBytes = St.ResidentBytes;
  Fresh.PinnedUnits = St.PinnedUnits;
  St = Fresh;
}

vm::RunResult store::runTieredFromStore(CodeStore &S, TierOptions TO,
                                        vm::RunOptions Opts,
                                        TierStats *StatsOut) {
  TieredResolver Rv(S, TO);
  Opts.Resolver = &Rv;
  vm::Machine M(S.skeleton(), Opts);
  vm::RunResult Res = M.run();
  if (StatsOut)
    *StatsOut = Rv.tierStats();
  return Res;
}

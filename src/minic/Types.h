//===- minic/Types.h - C-subset type system ---------------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types for the C subset: void, the integer types (char/short/int with
/// signedness, all computing at 32 bits), 32-bit pointers, arrays, structs
/// and function types. Types are interned in a TypeTable and referenced by
/// TypeId.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_MINIC_TYPES_H
#define CCOMP_MINIC_TYPES_H

#include <cstdint>
#include <string>
#include <vector>

namespace ccomp {
namespace minic {

using TypeId = uint32_t;

enum class TyKind : uint8_t {
  Void,
  I8, U8, I16, U16, I32, U32,
  Ptr,
  Array,
  Struct,
  Func,
};

/// One interned type.
struct Type {
  TyKind K = TyKind::Void;
  TypeId Elem = 0;              ///< Pointee (Ptr) / element (Array) / return
                                ///< type (Func).
  uint32_t ArraySize = 0;       ///< Element count for Array.
  uint32_t StructIdx = 0;       ///< Index into TypeTable::Structs.
  std::vector<TypeId> Params;   ///< Parameter types for Func.
};

/// A struct member.
struct Field {
  std::string Name;
  TypeId Ty = 0;
  uint32_t Offset = 0;
};

/// A struct definition (or forward declaration while !Complete).
struct StructInfo {
  std::string Name;
  std::vector<Field> Fields;
  uint32_t Size = 0;
  uint32_t Align = 1;
  bool Complete = false;
};

/// Interning table for types; owns struct definitions.
class TypeTable {
public:
  TypeTable();

  // Predefined ids, fixed by the constructor.
  TypeId VoidTy, I8Ty, U8Ty, I16Ty, U16Ty, I32Ty, U32Ty;

  const Type &get(TypeId Id) const { return Types[Id]; }

  TypeId pointerTo(TypeId Elem);
  TypeId arrayOf(TypeId Elem, uint32_t Count);
  TypeId functionOf(TypeId Ret, std::vector<TypeId> Params);

  /// Finds a struct by tag, creating an incomplete one if absent.
  uint32_t structByName(const std::string &Name);
  TypeId structType(uint32_t StructIdx);

  StructInfo &structInfo(uint32_t Idx) { return Structs[Idx]; }
  const StructInfo &structInfo(uint32_t Idx) const { return Structs[Idx]; }

  uint32_t sizeOf(TypeId Id) const;
  uint32_t alignOf(TypeId Id) const;

  bool isInteger(TypeId Id) const {
    TyKind K = get(Id).K;
    return K >= TyKind::I8 && K <= TyKind::U32;
  }
  bool isUnsigned(TypeId Id) const {
    TyKind K = get(Id).K;
    return K == TyKind::U8 || K == TyKind::U16 || K == TyKind::U32;
  }
  bool isPointer(TypeId Id) const { return get(Id).K == TyKind::Ptr; }
  bool isArray(TypeId Id) const { return get(Id).K == TyKind::Array; }
  bool isStruct(TypeId Id) const { return get(Id).K == TyKind::Struct; }
  bool isFunc(TypeId Id) const { return get(Id).K == TyKind::Func; }
  bool isVoid(TypeId Id) const { return get(Id).K == TyKind::Void; }

  /// True for types that can appear in a scalar expression.
  bool isScalar(TypeId Id) const { return isInteger(Id) || isPointer(Id); }

  /// Human-readable type spelling for diagnostics.
  std::string name(TypeId Id) const;

private:
  TypeId intern(Type T);

  std::vector<Type> Types;
  std::vector<StructInfo> Structs;
};

} // namespace minic
} // namespace ccomp

#endif // CCOMP_MINIC_TYPES_H

//===- minic/Lexer.h - C-subset lexer ---------------------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the C subset compiled by ccomp_minic (the stand-in for
/// lcc / the Omniware C++ front end). Supports //- and /*-comments,
/// decimal/hex/char/string literals with the usual escapes, and all
/// operators of the subset.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_MINIC_LEXER_H
#define CCOMP_MINIC_LEXER_H

#include <cstdint>
#include <string>

namespace ccomp {
namespace minic {

/// Token kinds. Single-character punctuators use their character value;
/// multi-character ones and literals get named kinds.
enum class Tok : uint8_t {
  End,
  Ident,
  IntConst, ///< Value in Lexer::intValue().
  StrConst, ///< Bytes (no terminating NUL) in Lexer::strValue().

  // Keywords.
  KwVoid, KwChar, KwShort, KwInt, KwLong, KwUnsigned, KwSigned, KwStruct,
  KwIf, KwElse, KwWhile, KwFor, KwDo, KwReturn, KwBreak, KwContinue,
  KwSwitch, KwCase, KwDefault, KwSizeof, KwExtern, KwStatic, KwConst,
  KwGoto, KwEnum,

  // Punctuation and operators.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semi, Comma, Colon, Question,
  Assign,         // =
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Bang,
  Lt, Gt, Le, Ge, EqEq, NotEq,
  AmpAmp, PipePipe,
  Shl, Shr,
  PlusPlus, MinusMinus,
  PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
  AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign,
  Dot, Arrow,
};

/// Returns a printable spelling for diagnostics.
const char *tokName(Tok T);

/// One-token-lookahead lexer.
class Lexer {
public:
  explicit Lexer(const std::string &Source);

  Tok kind() const { return Kind; }
  const std::string &text() const { return Text; }
  int64_t intValue() const { return IntValue; }
  const std::string &strValue() const { return StrValue; }
  unsigned line() const { return TokLine; }

  /// Advances to the next token.
  void next();

  /// True and advances if the current token is \p T.
  bool accept(Tok T) {
    if (Kind != T)
      return false;
    next();
    return true;
  }

  /// Snapshot of the lexer position, for bounded lookahead.
  struct State {
    size_t Pos;
    unsigned Line;
    Tok Kind;
    std::string Text;
    int64_t IntValue;
    std::string StrValue;
    unsigned TokLine;
  };

  State save() const {
    return {Pos, Line, Kind, Text, IntValue, StrValue, TokLine};
  }

  void restore(const State &S) {
    Pos = S.Pos;
    Line = S.Line;
    Kind = S.Kind;
    Text = S.Text;
    IntValue = S.IntValue;
    StrValue = S.StrValue;
    TokLine = S.TokLine;
  }

private:
  void skipSpaceAndComments();
  void lexNumber();
  void lexCharConst();
  void lexString();
  int lexEscape();

  std::string Src;
  size_t Pos = 0;
  unsigned Line = 1;

  Tok Kind = Tok::End;
  std::string Text;     ///< Identifier spelling.
  int64_t IntValue = 0; ///< Integer/char constant value.
  std::string StrValue; ///< String literal bytes.
  unsigned TokLine = 1;
};

} // namespace minic
} // namespace ccomp

#endif // CCOMP_MINIC_LEXER_H

//===- minic/Compile.h - C subset to tree IR --------------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front-end driver: compiles C-subset source text to a tree-IR
/// Module (the representation the paper's wire format compresses).
/// Translation is single-pass and syntax-directed, in the style of lcc.
///
/// Runtime interface: calls to the following names are recognized by the
/// code generator and lowered to VM system calls; declaring them is
/// optional (implicit declarations are accepted):
///   void print_int(int), void print_char(int), void print_str(char *),
///   void *alloc(int bytes), void exit(int code).
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_MINIC_COMPILE_H
#define CCOMP_MINIC_COMPILE_H

#include "ir/IR.h"

#include <memory>
#include <string>

namespace ccomp {
namespace minic {

/// Result of a compilation: a module on success, else a diagnostic.
struct CompileResult {
  std::unique_ptr<ir::Module> M; ///< Null on error.
  std::string Error;             ///< First diagnostic, with line number.

  bool ok() const { return M != nullptr; }
};

/// Compiles \p Source (a full translation unit, no preprocessor).
CompileResult compile(const std::string &Source);

} // namespace minic
} // namespace ccomp

#endif // CCOMP_MINIC_COMPILE_H
